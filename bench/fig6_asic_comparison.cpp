// Fig. 6 — Application-specific CRC: throughput vs. look-ahead factor.
// Four series, as in the paper:
//   UCRC     — structural model of the OpenCores Ultimate CRC synthesized
//              on 65 nm LP (dense A^M in the loop; clock falls with M),
//   M theory — ideal Derby [7] speed-up applied to the serial UCRC clock,
//   M/2 theory — ideal Pei [6] speed-up (half),
//   DREAM    — kernel-only M bits/cycle at the fixed 200 MHz (no
//              communication overhead; infinite-message condition).
#include <iostream>
#include <vector>

#include "asicmodel/ucrc_model.hpp"
#include "lfsr/catalog.hpp"
#include "mapper/design_space.hpp"
#include "support/report.hpp"

int main() {
  using namespace plfsr;
  const Gf2Poly g = catalog::crc32_ethernet();
  const std::vector<std::size_t> ms = {2, 4, 8, 16, 32, 64, 128, 256, 512};
  const auto ucrc = ucrc_synthesis_curve(g, ms);
  const std::size_t dream_max_m = max_feasible_m(g);
  const PicogaConstraints pc;

  std::cout << "Fig. 6 — Application-specific CRC: throughput vs. "
               "look-ahead factor (CRC-32)\n"
            << "UCRC serial f_max (65nm LP model): "
            << ReportTable::num(ucrc_serial_fmax_ghz(g), 2) << " GHz\n\n";

  ReportTable table({"M", "UCRC fmax GHz", "UCRC Gbps", "M-theory Gbps",
                     "M/2-theory Gbps", "DREAM Gbps"});
  for (std::size_t i = 0; i < ms.size(); ++i) {
    const std::size_t m = ms[i];
    std::vector<std::string> row = {std::to_string(m),
                                    ReportTable::num(ucrc[i].f_max_ghz, 3),
                                    ReportTable::num(ucrc[i].throughput_gbps, 2),
                                    ReportTable::num(derby_theory_gbps(g, m), 2),
                                    ReportTable::num(pei_theory_gbps(g, m), 2)};
    if (m <= dream_max_m)
      row.push_back(ReportTable::num(
          static_cast<double>(m) * pc.freq_mhz * 1e6 / 1e9, 2));
    else
      row.push_back("n/a (>" + std::to_string(dream_max_m) + ")");
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  // Crossover summary.
  std::cout << "\nShape checks:\n";
  for (std::size_t i = 0; i < ms.size() && ms[i] <= dream_max_m; ++i) {
    const double dream =
        static_cast<double>(ms[i]) * pc.freq_mhz * 1e6 / 1e9;
    if (dream > ucrc[i].throughput_gbps) {
      std::cout << "  DREAM overtakes the UCRC ASIC at M = " << ms[i]
                << " (" << ReportTable::num(dream, 1) << " vs "
                << ReportTable::num(ucrc[i].throughput_gbps, 1)
                << " Gbit/s)\n";
      break;
    }
  }
  std::cout << "  DREAM peak (M = " << dream_max_m << "): "
            << ReportTable::num(
                   static_cast<double>(dream_max_m) * pc.freq_mhz * 1e6 / 1e9,
                   1)
            << " Gbit/s (paper: ~25 Gbit/s)\n\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
