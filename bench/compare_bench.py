#!/usr/bin/env python3
"""Benchmark-regression gate for CI.

Compares a fresh pair of benchmark JSON files against the committed
baseline (bench/baseline.json) and fails if any tracked metric regressed
by more than the threshold (default 40% — wide enough to absorb shared
CI-runner noise, tight enough to catch a real algorithmic regression
such as losing the CLMUL fast path or a pipeline stall bug).

Throughput metrics are compared one-sided: only slowdowns fail, speedups
just update the printed delta. Benchmarks present in the baseline but
missing from the fresh run fail the gate (a silently dropped benchmark
is how a perf regression hides). Fresh benchmarks absent from the
baseline also fail: a benchmark that never enters the baseline is never
gated, so adding one (or registering a new engine that appears in the
registry-enumerated sweeps) must append its entry to bench/baseline.json
in the same change. Pass --allow-new to downgrade that to informational
during a staged rollout.

Machine-dependent benchmarks (the pclmul ones register only on CPUs with
the instruction) are handled by recording the hardware ticket in the
baseline: entries under "requires_clmul" are only expected when the
fresh crc-engines run itself contains a pclmul benchmark. Matching is
case-insensitive ("clmul" registry keys and "Clmul" type names alike);
the portable-kernel benches are plain metrics, present on every host.

Gate policy — what fails and what only warns:

  FAIL  intra-run *ratio* invariants. Both sides of each ratio are
        measured in the same process on the same runner, so machine
        speed cancels out exactly and a violation is always a code
        regression, never a slow host:
          - the BM_CrcHandle/{direct,erased} pair must show the
            type-erased handle within --handle-min-ratio (default 0.95,
            i.e. <= 5% overhead) of the direct engine call;
          - on clmul hosts, BM_EngineBatch/clmul/64 must run at least
            --batch-min-ratio (default 5.0) times
            BM_EngineSingle/clmul/64 — the interleaved small-frame path
            must actually hide the fold latency chain, not just exist;
          - the pipeline's best sweep point must reach
            --pipeline-min-ratio (default 0.8) of the standalone CRC
            engine on the same frames — the stage/ring/fused executor
            may never silently reopen the gap pipeline v2 closed.
  FAIL  correctness bits carried in the bench JSONs (offload
        mismatches/timeouts, correctness_ok=false): deterministic,
        machine-independent.
  FAIL  arena zero-copy invariants: in the arena-recycled loops (the
        64 B small-frame stream and the 4 MiB jumbo row) the heap
        allocation counter must stay within the descriptor pool
        capacity — steady state allocates nothing. These are
        deterministic allocator counters, not rates, so a violation is
        always a code regression.
  WARN  absolute-rate floors (--small-min-fps, default 2e6 frames/s on
        the arena-recycled 64 B stream). An absolute frames/sec number
        depends on the runner class — a quota-capped single-core CI
        host legitimately sustains a fraction of a bare-metal rate, and
        failing CI on that taught people to ignore the gate. A floor
        miss is printed as WARN and surfaced in the step summary, where
        a human can tell "slow runner" from "regression"; the
        cross-run baseline deltas (threshold-relative, same runner
        class) remain the enforcement for real throughput regressions.

Host-dependent pipeline sweep rows (the threaded-shardN configurations
appear only when the runner has cores to spare) are informational: they
are excluded from --update baselines and never fail the append-to-
baseline rule.

When $GITHUB_STEP_SUMMARY is set, the pipeline sweep table and the
invariant results are appended to it as markdown.

Offload soak metrics (--offload BENCH_offload.json from offload_client)
are latency/throughput numbers of a networked soak — inherently
runner-class-dependent, so they are always informational (printed +
step summary, never baselined, never required). Only the correctness
bits inside them (mismatches, timeouts, correctness_ok) fail the gate.

Usage:
  compare_bench.py --baseline bench/baseline.json \
      --crc BENCH_crc_engines.json --pipeline BENCH_pipeline.json \
      --scrambler BENCH_scrambler.json --fec BENCH_fec.json \
      [--offload BENCH_offload.json] [--threshold 0.40]
  compare_bench.py --update --baseline bench/baseline.json \
      --crc BENCH_crc_engines.json --pipeline BENCH_pipeline.json \
      --scrambler BENCH_scrambler.json --fec BENCH_fec.json
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def is_host_gated(name):
    """True for sweep rows that exist only on hosts with spare cores.

    The threaded-shardN pipeline configurations are emitted only when the
    runner can feed the extra scramble workers; they are compared when
    both sides have them but never required.
    """
    return "-shard" in name


def is_clmul_gated(name):
    """True for metrics that exist only on pclmul hosts.

    Case-insensitive: the registry-enumerated benches use the lowercase
    engine key ("BM_Engine/clmul/65536"), the parameter sweeps the type
    name ("BM_ClmulCrc64"). The portable-kernel benches run everywhere.
    """
    low = name.lower()
    return "clmul" in low and "portable" not in low


def crc_metrics(bench_json):
    """google-benchmark JSON -> {name/arg: bytes_per_second}."""
    out = {}
    for b in bench_json.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        bps = b.get("bytes_per_second")
        if bps:
            out[b["name"]] = float(bps)
    return out


def pipeline_metrics(bench_json):
    """bench_pipeline --json -> {metric: value}."""
    out = {}
    base = bench_json.get("baseline", {})
    if "mb_per_s" in base:
        out["baseline_crc_mb_per_s"] = float(base["mb_per_s"])
    for p in bench_json.get("sweep", []):
        key = "sweep/mode={}/batch={}/depth={}".format(
            p.get("mode", "threaded"), p["batch"], p["depth"])
        out[key] = float(p["mb_per_s"])
    best = bench_json.get("best", {})
    if "ratio" in best:
        out["best_ratio"] = float(best["ratio"])
    if "frames_per_s" in best:
        out["best_frames_per_s"] = float(best["frames_per_s"])
    small = bench_json.get("small", {})
    for p in small.get("sweep", []):
        key = "small/mode={}/frames_per_s".format(p.get("mode", "threaded"))
        out[key] = float(p["frames_per_s"])
    if "best_frames_per_s" in small:
        out["small_best_frames_per_s"] = float(small["best_frames_per_s"])
    return out


def step_summary(pipeline_json, invariant_lines):
    """Append the pipeline sweep and invariant results to the CI job
    summary (no-op outside GitHub Actions)."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = ["### Pipeline sweep ({} x {} B frames)".format(
        pipeline_json.get("frames", "?"), pipeline_json.get("frame_bytes",
                                                            "?")), ""]
    base = pipeline_json.get("baseline", {})
    lines.append("baseline: `{}` at {} MB/s".format(
        base.get("engine", "?"), base.get("mb_per_s", "?")))
    lines.append("")
    lines.append("| mode | batch | depth | MB/s | Mframes/s | vs CRC |")
    lines.append("|---|---|---|---|---|---|")
    for p in pipeline_json.get("sweep", []):
        lines.append("| {} | {} | {} | {:.1f} | {:.2f} | {:.2f} |".format(
            p.get("mode", "threaded"), p["batch"], p["depth"],
            float(p["mb_per_s"]), float(p.get("frames_per_s", 0)) / 1e6,
            float(p["ratio"])))
    small = pipeline_json.get("small", {})
    if small:
        lines.append("")
        lines.append("small-frame loop ({} B, arena-recycled): best "
                     "{:.2f} Mframes/s".format(
                         small.get("frame_bytes", "?"),
                         float(small.get("best_frames_per_s", 0)) / 1e6))
    jumbo = pipeline_json.get("jumbo", {})
    for p in jumbo.get("sweep", []):
        lines.append("jumbo loop ({} MiB, {}): {:.1f} MB/s, {} heap "
                     "allocs / {} pool".format(
                         int(jumbo.get("frame_bytes", 0)) >> 20,
                         p.get("mode", "?"), float(p.get("mb_per_s", 0)),
                         p.get("arena_heap_allocs", "?"),
                         p.get("pool_capacity", "?")))
    if invariant_lines:
        lines.append("")
        lines.append("### Intra-run invariants")
        lines.append("")
        for line in invariant_lines:
            lines.append("- " + line)
    with open(path, "a", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")


def scrambler_metrics(bench_json):
    """bench_scrambler --json -> {metric: value}."""
    out = {}
    for key in ("serial_mb_per_s", "mlevel_mb_per_s",
                "block_keystream_mb_per_s", "block_mb_per_s"):
        if key in bench_json:
            out[key] = float(bench_json[key])
    for p in bench_json.get("parallel", []):
        out["parallel/shards={}".format(p["shards"])] = float(p["mb_per_s"])
    return out


def fec_metrics(bench_json):
    """bench_fec --json -> {metric: value}."""
    out = {}
    for key in ("rs_encode_table_mb_per_s", "rs_encode_swar_mb_per_s",
                "rs_decode_clean_mb_per_s", "rs_decode_errors_mb_per_s",
                "bch_encode_mb_per_s", "bch_decode_mb_per_s"):
        if key in bench_json:
            out[key] = float(bench_json[key])
    for p in bench_json.get("parallel", []):
        out["parallel/shards={}".format(p["shards"])] = float(p["mb_per_s"])
    return out


def collect(crc_path, pipeline_path, scrambler_path, fec_path):
    fresh = {}
    for name, value in crc_metrics(load(crc_path)).items():
        fresh["crc_engines/" + name] = value
    for name, value in pipeline_metrics(load(pipeline_path)).items():
        fresh["pipeline/" + name] = value
    if scrambler_path:
        for name, value in scrambler_metrics(load(scrambler_path)).items():
            fresh["scrambler/" + name] = value
    if fec_path:
        for name, value in fec_metrics(load(fec_path)).items():
            fresh["fec/" + name] = value
    return fresh


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--crc", required=True,
                    help="BENCH_crc_engines.json from bench_crc_engines")
    ap.add_argument("--pipeline", required=True,
                    help="BENCH_pipeline.json from bench_pipeline")
    ap.add_argument("--scrambler", default=None,
                    help="BENCH_scrambler.json from bench_scrambler")
    ap.add_argument("--fec", default=None,
                    help="BENCH_fec.json from bench_fec")
    ap.add_argument("--offload", default=None,
                    help="BENCH_offload.json from offload_client "
                         "(informational except its correctness bits)")
    ap.add_argument("--threshold", type=float, default=0.40,
                    help="max allowed fractional slowdown (default 0.40)")
    ap.add_argument("--handle-min-ratio", type=float, default=0.95,
                    help="min BM_CrcHandle erased/direct throughput ratio "
                         "(default 0.95 = at most 5%% erasure overhead)")
    ap.add_argument("--batch-min-ratio", type=float, default=5.0,
                    help="min BM_EngineBatch/BM_EngineSingle throughput "
                         "ratio for clmul at 64 B (default 5.0)")
    ap.add_argument("--pipeline-min-ratio", type=float, default=0.8,
                    help="min pipeline best-sweep-point / standalone-CRC "
                         "throughput ratio (default 0.8)")
    ap.add_argument("--small-min-fps", type=float, default=2e6,
                    help="informational floor for the arena-recycled 64 B "
                         "small-frame stream, frames/sec (default 2e6; a "
                         "miss WARNs in the step summary, never fails)")
    ap.add_argument("--allow-new", action="store_true",
                    help="report fresh metrics missing from the baseline "
                         "instead of failing on them")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from the fresh run instead "
                         "of comparing")
    args = ap.parse_args()

    fresh = collect(args.crc, args.pipeline, args.scrambler, args.fec)
    has_clmul = any(is_clmul_gated(k) for k in fresh)

    if args.update:
        doc = {
            "comment": "committed perf floor; compare_bench.py fails CI on "
                       "a > threshold slowdown vs these numbers",
            "threshold": args.threshold,
            "metrics": {
                k: round(v, 3) for k, v in sorted(fresh.items())
                if not is_clmul_gated(k) and not is_host_gated(k)
            },
            "requires_clmul": {
                k: round(v, 3) for k, v in sorted(fresh.items())
                if is_clmul_gated(k) and not is_host_gated(k)
            },
        }
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print("baseline updated: {} metrics ({} clmul-gated)".format(
            len(doc["metrics"]), len(doc["requires_clmul"])))
        return 0

    base_doc = load(args.baseline)
    threshold = float(base_doc.get("threshold", args.threshold))
    expected = dict(base_doc.get("metrics", {}))
    if has_clmul:
        expected.update(base_doc.get("requires_clmul", {}))
    else:
        skipped = len(base_doc.get("requires_clmul", {}))
        if skipped:
            print("note: no pclmul on this host; skipping {} clmul-gated "
                  "baseline entries".format(skipped))

    failures = []
    width = max((len(k) for k in expected), default=20)
    for name in sorted(expected):
        want = expected[name]
        got = fresh.get(name)
        if got is None:
            if is_host_gated(name):
                print("{:<{w}}  skipped (host lacks the cores for this "
                      "configuration)".format(name, w=width))
                continue
            failures.append("{}: missing from fresh run".format(name))
            print("{:<{w}}  MISSING (baseline {:.3g})".format(
                name, want, w=width))
            continue
        delta = (got - want) / want if want else 0.0
        status = "ok"
        if delta < -threshold:
            status = "REGRESSED"
            failures.append(
                "{}: {:.3g} -> {:.3g} ({:+.1%}, limit -{:.0%})".format(
                    name, want, got, delta, threshold))
        print("{:<{w}}  {:>12.4g}  vs {:>12.4g}  {:+7.1%}  {}".format(
            name, got, want, delta, status, w=width))

    # On a non-clmul host the clmul-gated fresh metrics cannot appear at
    # all, so only plain metrics are held to the append-to-baseline rule
    # there; a clmul host checks both maps.
    baselined = set(base_doc.get("metrics", {}))
    baselined.update(base_doc.get("requires_clmul", {}))
    for name in sorted(set(fresh) - baselined):
        if is_host_gated(name):
            print("{:<{w}}  {:>12.4g}  (host-dependent, informational)".
                  format(name, fresh[name], w=width))
        elif args.allow_new:
            print("{:<{w}}  {:>12.4g}  (new, not in baseline)".format(
                name, fresh[name], w=width))
        else:
            failures.append(
                "{}: not in baseline (append it to bench/baseline.json in "
                "the same change, or pass --allow-new)".format(name))
            print("{:<{w}}  {:>12.4g}  NOT IN BASELINE".format(
                name, fresh[name], w=width))

    invariants = []  # printable results for the CI step summary

    # Intra-run invariant: the type-erased handle must stay within
    # handle-min-ratio of the direct engine call. Compared within this
    # run (not against the baseline) so runner speed cancels out.
    direct = fresh.get("crc_engines/BM_CrcHandle/direct/65536")
    erased = fresh.get("crc_engines/BM_CrcHandle/erased/65536")
    if direct is None or erased is None:
        failures.append("BM_CrcHandle direct/erased pair missing from the "
                        "fresh crc-engines run")
    elif direct > 0:
        ratio = erased / direct
        status = "ok"
        if ratio < args.handle_min_ratio:
            status = "REGRESSED"
            failures.append(
                "CrcEngineHandle overhead: erased/direct = {:.3f} "
                "(min {:.3f})".format(ratio, args.handle_min_ratio))
        print("{:<{w}}  {:>12.3f}  (min {:.3f})  {}".format(
            "handle erased/direct ratio", ratio, args.handle_min_ratio,
            status, w=width))
        invariants.append("handle erased/direct: {:.3f} (min {:.3f}) "
                          "{}".format(ratio, args.handle_min_ratio, status))

    # Intra-run invariant: on clmul hosts the interleaved batch path must
    # beat the per-frame loop by batch-min-ratio at the smallest frame
    # size — the whole point of the batch API.
    single = fresh.get("crc_engines/BM_EngineSingle/clmul/64")
    batch = fresh.get("crc_engines/BM_EngineBatch/clmul/64")
    if has_clmul:
        if single is None or batch is None:
            failures.append("BM_EngineBatch/BM_EngineSingle clmul/64 pair "
                            "missing from the fresh crc-engines run")
        elif single > 0:
            ratio = batch / single
            status = "ok"
            if ratio < args.batch_min_ratio:
                status = "REGRESSED"
                failures.append(
                    "batched small-frame CRC: batch/single = {:.2f}x at "
                    "64 B (min {:.2f}x)".format(ratio, args.batch_min_ratio))
            print("{:<{w}}  {:>11.2f}x  (min {:.2f}x)  {}".format(
                "clmul batch/single @64B", ratio, args.batch_min_ratio,
                status, w=width))
            invariants.append("clmul batch/single @64B: {:.2f}x (min "
                              "{:.2f}x) {}".format(ratio,
                                                   args.batch_min_ratio,
                                                   status))

    # Intra-run invariant: the pipeline's best sweep point must hold the
    # closed gap against the standalone engine measured in the same run —
    # the un-regressable form of the pipeline-v2 acceptance criterion.
    best_ratio = fresh.get("pipeline/best_ratio")
    if best_ratio is None:
        failures.append("pipeline/best_ratio missing from the fresh "
                        "pipeline run")
    else:
        status = "ok"
        if best_ratio < args.pipeline_min_ratio:
            status = "REGRESSED"
            failures.append(
                "pipeline best sweep point: {:.3f}x standalone CRC "
                "(min {:.2f}x)".format(best_ratio, args.pipeline_min_ratio))
        print("{:<{w}}  {:>11.3f}x  (min {:.2f}x)  {}".format(
            "pipeline best/standalone", best_ratio, args.pipeline_min_ratio,
            status, w=width))
        invariants.append("pipeline best/standalone: {:.3f}x (min {:.2f}x) "
                          "{}".format(best_ratio, args.pipeline_min_ratio,
                                      status))

    # Absolute-rate floor: WARN-only (see the gate policy in the module
    # docstring — an absolute frames/sec number tracks the runner class,
    # not just the code, so a miss is surfaced for a human instead of
    # failing CI). A *missing* metric still fails: that is a dropped
    # benchmark, not a slow host.
    small_fps = fresh.get("pipeline/small_best_frames_per_s")
    if small_fps is None:
        failures.append("pipeline/small_best_frames_per_s missing from the "
                        "fresh pipeline run")
    else:
        status = "ok"
        if small_fps < args.small_min_fps:
            status = "WARN (below floor; informational on this runner)"
        print("{:<{w}}  {:>10.3g}/s  (floor {:.3g}/s)  {}".format(
            "64B arena frames/sec", small_fps, args.small_min_fps, status,
            w=width))
        invariants.append("64 B arena frames/sec: {:.3g}/s (floor "
                          "{:.3g}/s) {}".format(small_fps,
                                                args.small_min_fps, status))

    # Intra-run invariant: the arena-recycled loops must be carried by
    # recycling — heap allocations bounded by the descriptor pool
    # capacity, i.e. steady state allocates nothing per frame. These are
    # deterministic allocator counters (not rates), so a violation FAILs
    # on any runner. A missing jumbo section is a dropped benchmark.
    pipe_doc = load(args.pipeline)
    if not pipe_doc.get("jumbo", {}).get("sweep"):
        failures.append("pipeline jumbo sweep missing from the fresh "
                        "pipeline run")
    for section in ("small", "jumbo"):
        for p in pipe_doc.get(section, {}).get("sweep", []):
            cap = p.get("pool_capacity")
            if cap is None:
                continue
            allocs = int(p.get("arena_heap_allocs", 0))
            status = "ok"
            if allocs > int(cap):
                status = "REGRESSED"
                failures.append(
                    "{} arena loop (mode={}): {} heap allocations exceed "
                    "the {}-descriptor pool — the steady state "
                    "allocated".format(section, p.get("mode", "?"), allocs,
                                       cap))
            label = "{} heap-allocs<=pool ({})".format(
                section, p.get("mode", "?"))
            print("{:<{w}}  {:>6}/{:<6}  {}".format(
                label, allocs, cap, status, w=width))
            invariants.append("{} arena loop ({}): {} heap allocs / {} "
                              "pool {}".format(section, p.get("mode", "?"),
                                               allocs, cap, status))

    # Offload soak: informational metrics, enforced correctness.
    if args.offload:
        off = load(args.offload)
        print("offload soak ({} conns x depth {}): {} frames, "
              "{} frames/s, p50 {} us, p99 {} us".format(
                  off.get("connections", "?"), off.get("depth", "?"),
                  off.get("frames", "?"), off.get("frames_per_s", "?"),
                  off.get("p50_us", "?"), off.get("p99_us", "?")))
        invariants.append(
            "offload soak: {} conns, {} frames/s, p50 {} us, p99 {} us, "
            "p99.9 {} us (informational)".format(
                off.get("connections", "?"), off.get("frames_per_s", "?"),
                off.get("p50_us", "?"), off.get("p99_us", "?"),
                off.get("p999_us", "?")))
        mismatches = int(off.get("mismatches", 0))
        timeouts = int(off.get("timeouts", 0))
        if mismatches or timeouts or not off.get("correctness_ok", False):
            failures.append(
                "offload soak correctness: {} mismatches, {} timeouts, "
                "correctness_ok={}".format(mismatches, timeouts,
                                           off.get("correctness_ok")))

    step_summary(load(args.pipeline), invariants)

    if failures:
        print("\nFAIL: {} metric(s) regressed beyond {:.0%}:".format(
            len(failures), threshold))
        for f in failures:
            print("  " + f)
        return 1
    print("\nOK: no metric regressed beyond {:.0%}".format(threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main())
