// Fig. 4 — Throughput vs. message length, single message, for look-ahead
// factors M in {8, 16, 32, 64, 128}. The Ethernet window (368..12144
// bits) is marked as in the paper. Short messages are diluted by the
// processor control overhead and the op1->op2 configuration switch.
#include <cstdint>
#include <algorithm>
#include <iostream>
#include <vector>

#include "dream/dream_model.hpp"
#include "crc/ethernet.hpp"
#include "lfsr/catalog.hpp"
#include "support/report.hpp"

int main() {
  using namespace plfsr;
  const Gf2Poly g = catalog::crc32_ethernet();
  const std::vector<std::size_t> ms = {8, 16, 32, 64, 128};
  std::vector<DreamCrcModel> models;
  for (std::size_t m : ms) models.emplace_back(g, m);

  std::vector<std::uint64_t> lengths;
  for (std::uint64_t n = 128; n <= 65536; n *= 2) lengths.push_back(n);
  lengths.push_back(ethernet::kMinFrameBits);   // 368
  lengths.push_back(ethernet::kMaxFrameBits);   // 12144
  std::sort(lengths.begin(), lengths.end());

  ReportTable table({"msg bits", "M=8 Gbps", "M=16 Gbps", "M=32 Gbps",
                     "M=64 Gbps", "M=128 Gbps", "window"});
  for (std::uint64_t n : lengths) {
    std::vector<std::string> row = {std::to_string(n)};
    for (std::size_t i = 0; i < ms.size(); ++i) {
      const std::uint64_t padded = (n + ms[i] - 1) / ms[i] * ms[i];
      row.push_back(
          ReportTable::num(models[i].throughput_single_gbps(padded), 3));
    }
    const bool in_window = n >= ethernet::kMinFrameBits &&
                           n <= ethernet::kMaxFrameBits;
    row.push_back(in_window ? "ETH" : "");
    table.add_row(std::move(row));
  }

  std::cout << "Fig. 4 — CRC-32 throughput vs. message length (single "
               "message), DREAM @ 200 MHz\n"
            << "Ethernet window: " << ethernet::kMinFrameBits << ".."
            << ethernet::kMaxFrameBits << " bits (rows tagged ETH)\n\n";
  table.print(std::cout);

  std::cout << "\nAsymptotes (infinite message): ";
  for (std::size_t i = 0; i < ms.size(); ++i)
    std::cout << "M=" << ms[i] << ": "
              << ReportTable::num(models[i].peak_gbps(), 1)
              << (i + 1 < ms.size() ? " Gbps,  " : " Gbps\n");
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
