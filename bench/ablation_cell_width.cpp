// Ablation — why the 10-input XOR cell matters (§4: "we decided to
// massively use the 10-bit XOR operation which can be implemented in a
// single logic cell of PiCoGA"). The same CRC-32 B_Mt forest is mapped
// with cell fan-ins 2 (plain FPGA LUT2-equivalent), 4 (typical LUT4),
// 6, 8 and 10: cells and pipeline depth both collapse as the cell widens,
// which is the area/latency advantage of PiCoGA's wide-XOR mode over a
// conventional embedded FPGA.
#include <iostream>
#include <vector>

#include "lfsr/catalog.hpp"
#include "mapper/op_builder.hpp"
#include "support/report.hpp"

int main() {
  using namespace plfsr;
  const Gf2Poly g = catalog::crc32_ethernet();

  for (std::size_t m : {32u, 128u}) {
    std::cout << "CRC-32 op1 (state update), M = " << m << "\n\n";
    ReportTable table({"cell fan-in", "cells", "pipeline levels",
                       "rows (16 cells/row)", "vs fan-in 10"});
    std::size_t cells10 = 0;
    for (unsigned fanin : {10u, 8u, 6u, 4u, 2u}) {
      MapperOptions opts;
      opts.max_fanin = fanin;
      const CrcOpPlan plan = build_derby_crc_ops(g, m, opts);
      const std::size_t cells = plan.op1.stats.cells;
      if (fanin == 10) cells10 = cells;
      std::size_t rows = 0;
      for (std::size_t lc : plan.op1.netlist.level_histogram())
        rows += (lc + 15) / 16;
      table.add_row({std::to_string(fanin), std::to_string(cells),
                     std::to_string(plan.op1.netlist.depth()),
                     std::to_string(rows),
                     "x" + ReportTable::num(double(cells) / cells10, 2)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "A LUT4-grain fabric needs ~3x the cells and ~2x the\n"
               "pipeline depth of the 10-input XOR cell for the same\n"
               "matrix — the concrete form of the paper's claim that\n"
               "bit-level eFPGAs pay for their flexibility in speed.\n";
  return 0;
}
