// Fig. 7 — Energy efficiency (pJ/bit) of the DREAM CRC vs. message length
// and parallelization factor. Reference: a RISC processor at ~400 pJ/bit
// independent of message length; the paper reports DREAM 5-60x better in
// 90 nm.
#include <cstdint>
#include <algorithm>
#include <iostream>
#include <vector>

#include "crc/ethernet.hpp"
#include "dream/dream_model.hpp"
#include "lfsr/catalog.hpp"
#include "support/report.hpp"

int main() {
  using namespace plfsr;
  const Gf2Poly g = catalog::crc32_ethernet();
  const std::vector<std::size_t> ms = {32, 64, 128};
  const EnergyModel energy;
  std::vector<DreamCrcModel> models;
  for (std::size_t m : ms) models.emplace_back(g, m);

  std::vector<std::uint64_t> lengths = {368, 1024, 4096, 12144, 65536,
                                        1u << 20};

  ReportTable table({"msg bits", "RISC pJ/bit", "M=32 pJ/bit", "M=64 pJ/bit",
                     "M=128 pJ/bit", "best ratio"});
  for (std::uint64_t n : lengths) {
    std::vector<std::string> row = {std::to_string(n),
                                    ReportTable::num(energy.risc_pj_per_bit, 0)};
    double best = 0;
    for (std::size_t i = 0; i < ms.size(); ++i) {
      const std::uint64_t padded = (n + ms[i] - 1) / ms[i] * ms[i];
      const double pj =
          energy.dream_pj_per_bit(models[i].cycles_single(padded), padded);
      best = std::max(best, energy.risc_pj_per_bit / pj);
      row.push_back(ReportTable::num(pj, 1));
    }
    row.push_back("x" + ReportTable::num(best, 1));
    table.add_row(std::move(row));
  }

  std::cout << "Fig. 7 — Energy efficiency, DREAM (90 nm model, "
            << ReportTable::num(energy.dream_nj_per_cycle, 2)
            << " nJ/cycle) vs. RISC (" << energy.risc_pj_per_bit
            << " pJ/bit flat)\n\n";
  table.print(std::cout);
  std::cout << "\nPaper band: DREAM 5-60x better than the RISC reference "
               "across the swept lengths.\n\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
