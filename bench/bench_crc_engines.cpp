// google-benchmark microbenchmarks of the software CRC engines on this
// host — the "programmable processor" side of the paper's comparison.
// Not a paper figure by itself, but the measured cycles/byte of the table
// and slicing engines ground the RiscModel constants used in Table 1.
//
// The per-engine throughput benches and the sharded (ParallelCrc) shard
// curves enumerate the EngineRegistry rather than a hard-coded type
// list: registering a new engine automatically benches it (and, via the
// committed baseline + compare_bench.py, regression-gates it). Names are
// registry keys: BM_Engine/<name>/<bytes>, BM_Parallel/<name>/<shards>.
// Engines whose capability gate fails on this host (e.g. "clmul"
// without PCLMULQDQ) are skipped, exactly like the clmul-gated baseline
// entries in CI.
//
// BM_CrcHandle/{direct,erased}/65536 pins the cost of the type-erased
// CrcEngineHandle boundary against the direct engine call on the same
// 64 KiB CRC-32 buffer; compare_bench.py enforces <= 5% overhead
// within each run (the boundary is one indirect call per buffer).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "crc/clmul_crc.hpp"
#include "crc/crc_spec.hpp"
#include "crc/derby_crc.hpp"
#include "crc/engine.hpp"
#include "crc/engine_registry.hpp"
#include "crc/gfmac_crc.hpp"
#include "crc/matrix_crc.hpp"
#include "crc/parallel_crc.hpp"
#include "crc/slicing_crc.hpp"
#include "crc/wide_table_crc.hpp"
#include "support/cpu_features.hpp"
#include "support/rng.hpp"

namespace {

using namespace plfsr;

std::vector<std::uint8_t> payload(std::size_t n) {
  Rng rng(42);
  return rng.next_bytes(n);
}

// Registry-enumerated single-engine throughput: one virtual absorb per
// iteration over the whole buffer.
void register_engine_benches() {
  const EngineRegistry& reg = EngineRegistry::instance();
  const CrcSpec spec = crcspec::crc32_ethernet();
  for (const std::string& name : reg.available_names()) {
    for (const std::size_t n : {std::size_t{1518}, std::size_t{65536}}) {
      const CrcEngineHandle engine = reg.make(name, spec);
      benchmark::RegisterBenchmark(
          ("BM_Engine/" + name + "/" + std::to_string(n)).c_str(),
          [engine, n](benchmark::State& state) {
            const auto msg = payload(n);
            for (auto _ : state)
              benchmark::DoNotOptimize(engine.compute(msg));
            state.SetBytesProcessed(
                static_cast<std::int64_t>(state.iterations() * n));
          });
    }
  }
}

// Batched small-frame throughput — the software replay of the paper's
// 32-way message interleaving figures. BM_EngineBatch/<name>/<bytes>
// computes kBatchFrames independent frames per call through
// compute_many (the interleaved kernel where the engine has one);
// BM_EngineSingle/<name>/<bytes> is the same work as one compute call
// per frame. Both report frames_per_second; compare_bench.py enforces
// the intra-run batch/single >= 5x gate at 64 B for "clmul".
constexpr std::size_t kBatchFrames = 32;

void register_batch_benches() {
  const EngineRegistry& reg = EngineRegistry::instance();
  const CrcSpec spec = crcspec::crc32_ethernet();
  for (const char* name : {"table", "clmul"}) {
    const EngineInfo* info = reg.find(name);
    if (info == nullptr || !info->available()) continue;
    for (const std::size_t n :
         {std::size_t{64}, std::size_t{256}, std::size_t{1518}}) {
      const CrcEngineHandle engine = reg.make(name, spec);
      benchmark::RegisterBenchmark(
          ("BM_EngineBatch/" + std::string(name) + "/" +
           std::to_string(n))
              .c_str(),
          [engine, n](benchmark::State& state) {
            const auto msg = payload(n * kBatchFrames);
            std::vector<FrameView> frames;
            frames.reserve(kBatchFrames);
            for (std::size_t i = 0; i < kBatchFrames; ++i)
              frames.emplace_back(
                  std::span<const std::uint8_t>(msg).subspan(i * n, n));
            std::vector<std::uint64_t> crcs(kBatchFrames);
            for (auto _ : state) {
              engine.compute_many(frames, crcs);
              benchmark::DoNotOptimize(crcs.data());
            }
            state.SetBytesProcessed(static_cast<std::int64_t>(
                state.iterations() * n * kBatchFrames));
            state.counters["frames_per_second"] = benchmark::Counter(
                static_cast<double>(state.iterations() * kBatchFrames),
                benchmark::Counter::kIsRate);
          });
      benchmark::RegisterBenchmark(
          ("BM_EngineSingle/" + std::string(name) + "/" +
           std::to_string(n))
              .c_str(),
          [engine, n](benchmark::State& state) {
            const auto msg = payload(n * kBatchFrames);
            for (auto _ : state) {
              for (std::size_t i = 0; i < kBatchFrames; ++i)
                benchmark::DoNotOptimize(engine.compute(
                    std::span<const std::uint8_t>(msg).subspan(i * n, n)));
            }
            state.SetBytesProcessed(static_cast<std::int64_t>(
                state.iterations() * n * kBatchFrames));
            state.counters["frames_per_second"] = benchmark::Counter(
                static_cast<double>(state.iterations() * kBatchFrames),
                benchmark::Counter::kIsRate);
          });
    }
  }
}

// Sharded multi-core curves: single-thread vs 2/4/8-way shards on a
// 1 MiB buffer over the byte-wise registry engines worth sharding. The
// wrapped engine sets the per-core ceiling; the shard curve shows how
// close the combine-fold parallelization gets to core-count scaling.
void register_parallel_benches() {
  const EngineRegistry& reg = EngineRegistry::instance();
  for (const char* name : {"table", "slicing8", "clmul"}) {
    const EngineInfo* info = reg.find(name);
    if (info == nullptr || !info->available()) continue;
    for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
      const CrcEngineHandle engine =
          reg.make(name, crcspec::crc32_ethernet());
      benchmark::RegisterBenchmark(
          ("BM_Parallel/" + std::string(name) + "/" +
           std::to_string(shards))
              .c_str(),
          [engine, shards](benchmark::State& state) {
            const auto msg = payload(1 << 20);
            const ParallelCrc par(engine, shards);
            for (auto _ : state)
              benchmark::DoNotOptimize(par.compute(msg));
            state.SetBytesProcessed(
                static_cast<std::int64_t>(state.iterations() * (1 << 20)));
          })
          ->UseRealTime();
    }
  }
  // 64-bit register fold through the shard combine.
  for (const std::size_t shards : {1u, 4u}) {
    const CrcEngineHandle engine =
        reg.make("slicing8", crcspec::crc64_xz());
    benchmark::RegisterBenchmark(
        ("BM_Parallel64/slicing8/" + std::to_string(shards)).c_str(),
        [engine, shards](benchmark::State& state) {
          const auto msg = payload(1 << 20);
          const ParallelCrc par(engine, shards);
          for (auto _ : state)
            benchmark::DoNotOptimize(par.compute(msg));
          state.SetBytesProcessed(
              static_cast<std::int64_t>(state.iterations() * (1 << 20)));
        })
        ->UseRealTime();
  }
}

// Type-erasure overhead gate: the same slicing-by-8 engine called
// directly vs through CrcEngineHandle on one 64 KiB buffer.
// compare_bench.py fails CI if erased/direct drops below 0.95.
void BM_CrcHandleDirect(benchmark::State& state) {
  const auto msg = payload(65536);
  const SlicingBy8Crc engine(crcspec::crc32_ethernet());
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.compute(msg));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * 65536));
}
BENCHMARK(BM_CrcHandleDirect)->Name("BM_CrcHandle/direct/65536");

void BM_CrcHandleErased(benchmark::State& state) {
  const auto msg = payload(65536);
  const CrcEngineHandle engine(SlicingBy8Crc(crcspec::crc32_ethernet()),
                               "slicing8");
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.compute(msg));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * 65536));
}
BENCHMARK(BM_CrcHandleErased)->Name("BM_CrcHandle/erased/65536");

// Parameter sweeps the registry's fixed-default factories do not cover:
// the look-ahead/chunk factor M, the wide-table stride, and the CLMUL
// portable kernel (the accelerated one is enumerated as "clmul" above).
void BM_MatrixCrc32(benchmark::State& state) {
  const auto msg = payload(1518);
  const MatrixCrc engine(crcspec::crc32_ethernet(),
                         static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.compute(msg));
  state.SetBytesProcessed(state.iterations() * 1518);
}
BENCHMARK(BM_MatrixCrc32)->Arg(32)->Arg(128);

void BM_DerbyCrc32(benchmark::State& state) {
  const auto msg = payload(1518);
  const DerbyCrc engine(crcspec::crc32_ethernet(),
                        static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.compute(msg));
  state.SetBytesProcessed(state.iterations() * 1518);
}
BENCHMARK(BM_DerbyCrc32)->Arg(32)->Arg(128);

void BM_WideTableCrc32(benchmark::State& state) {
  Rng rng(9);
  const BitStream bits = rng.next_bits(1518 * 8);
  const WideTableCrc engine(crcspec::crc32_ethernet(),
                            static_cast<unsigned>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.raw_bits(bits, 0xFFFFFFFF));
  state.SetBytesProcessed(state.iterations() * 1518);
}
BENCHMARK(BM_WideTableCrc32)->Arg(4)->Arg(8)->Arg(16);

void BM_GfmacCrc32Horner(benchmark::State& state) {
  Rng rng(7);
  const BitStream bits = rng.next_bits(1518 * 8);
  const GfmacCrc engine(crcspec::crc32_ethernet(), 32);
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.raw_bits_horner(bits, 0xFFFFFFFF));
  state.SetBytesProcessed(state.iterations() * 1518);
}
BENCHMARK(BM_GfmacCrc32Horner);

void BM_ClmulCrc32Portable(benchmark::State& state) {
  const auto msg = payload(static_cast<std::size_t>(state.range(0)));
  const ClmulCrc engine(crcspec::crc32_ethernet(), ClmulKernel::kPortable);
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.compute(msg));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ClmulCrc32Portable)->Arg(1518)->Arg(65536);

// 64-bit spec through the accelerated folding kernel; registered only
// where the CPU can run it (the "clmul" registry entry covers CRC-32).
void BM_ClmulCrc64(benchmark::State& state) {
  const auto msg = payload(static_cast<std::size_t>(state.range(0)));
  const ClmulCrc engine(crcspec::crc64_xz(), ClmulKernel::kAccelerated);
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.compute(msg));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}

}  // namespace

// BENCHMARK_MAIN, plus two convenience flags:
//   --json   expands to the library's own JSON reporter writing
//            BENCH_crc_engines.json (so CI can archive machine-readable
//            numbers without remembering the long spelling);
//   --quick  caps measurement time per benchmark (the CI
//            bench-regression job's fast mode).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_crc_engines.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  // Bare-double seconds: accepted by every google-benchmark release
  // (newer ones also take the "0.05s" spelling, older ones only this).
  std::string quick_flag = "--benchmark_min_time=0.05";
  for (std::size_t i = 1; i < args.size();) {
    if (std::string(args[i]) == "--json") {
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      args.push_back(out_flag.data());
      args.push_back(fmt_flag.data());
    } else if (std::string(args[i]) == "--quick") {
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      args.push_back(quick_flag.data());
    } else {
      ++i;
    }
  }

  register_engine_benches();
  register_batch_benches();
  register_parallel_benches();
  if (plfsr::cpu_features().pclmul && plfsr::cpu_features().sse41)
    benchmark::RegisterBenchmark("BM_ClmulCrc64", BM_ClmulCrc64)
        ->Arg(65536);

  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
