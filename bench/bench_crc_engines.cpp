// google-benchmark microbenchmarks of the software CRC engines on this
// host — the "programmable processor" side of the paper's comparison.
// Not a paper figure by itself, but the measured cycles/byte of the table
// and slicing engines ground the RiscModel constants used in Table 1.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "crc/clmul_crc.hpp"
#include "crc/crc_spec.hpp"
#include "crc/derby_crc.hpp"
#include "crc/gfmac_crc.hpp"
#include "crc/matrix_crc.hpp"
#include "crc/parallel_crc.hpp"
#include "crc/serial_crc.hpp"
#include "crc/slicing_crc.hpp"
#include "crc/table_crc.hpp"
#include "crc/wide_table_crc.hpp"
#include "support/cpu_features.hpp"
#include "support/rng.hpp"

namespace {

using namespace plfsr;

std::vector<std::uint8_t> payload(std::size_t n) {
  Rng rng(42);
  return rng.next_bytes(n);
}

void BM_SerialCrc32(benchmark::State& state) {
  const auto msg = payload(static_cast<std::size_t>(state.range(0)));
  const CrcSpec spec = crcspec::crc32_ethernet();
  for (auto _ : state)
    benchmark::DoNotOptimize(serial_crc(spec, msg));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SerialCrc32)->Arg(64)->Arg(1518);

void BM_TableCrc32(benchmark::State& state) {
  const auto msg = payload(static_cast<std::size_t>(state.range(0)));
  const TableCrc engine(crcspec::crc32_ethernet());
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.compute(msg));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TableCrc32)->Arg(64)->Arg(1518)->Arg(65536);

void BM_SlicingBy4Crc32(benchmark::State& state) {
  const auto msg = payload(static_cast<std::size_t>(state.range(0)));
  const SlicingBy4Crc engine(crcspec::crc32_ethernet());
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.compute(msg));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SlicingBy4Crc32)->Arg(1518)->Arg(65536);

void BM_SlicingBy8Crc32(benchmark::State& state) {
  const auto msg = payload(static_cast<std::size_t>(state.range(0)));
  const SlicingBy8Crc engine(crcspec::crc32_ethernet());
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.compute(msg));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SlicingBy8Crc32)->Arg(1518)->Arg(65536);

// CLMUL folding engine, both kernels. The pclmul variants register only
// when the CPU can run them, so the suite (and the CI baseline check)
// stays meaningful on machines without the instruction.
void BM_ClmulCrc32(benchmark::State& state) {
  const auto msg = payload(static_cast<std::size_t>(state.range(0)));
  const ClmulCrc engine(crcspec::crc32_ethernet(),
                        ClmulKernel::kAccelerated);
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.compute(msg));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}

void BM_ClmulCrc64(benchmark::State& state) {
  const auto msg = payload(static_cast<std::size_t>(state.range(0)));
  const ClmulCrc engine(crcspec::crc64_xz(), ClmulKernel::kAccelerated);
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.compute(msg));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}

void BM_ClmulCrc32Portable(benchmark::State& state) {
  const auto msg = payload(static_cast<std::size_t>(state.range(0)));
  const ClmulCrc engine(crcspec::crc32_ethernet(), ClmulKernel::kPortable);
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.compute(msg));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ClmulCrc32Portable)->Arg(1518)->Arg(65536);

void BM_MatrixCrc32(benchmark::State& state) {
  const auto msg = payload(1518);
  const MatrixCrc engine(crcspec::crc32_ethernet(),
                         static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.compute(msg));
  state.SetBytesProcessed(state.iterations() * 1518);
}
BENCHMARK(BM_MatrixCrc32)->Arg(32)->Arg(128);

void BM_DerbyCrc32(benchmark::State& state) {
  const auto msg = payload(1518);
  const DerbyCrc engine(crcspec::crc32_ethernet(),
                        static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.compute(msg));
  state.SetBytesProcessed(state.iterations() * 1518);
}
BENCHMARK(BM_DerbyCrc32)->Arg(32)->Arg(128);

void BM_WideTableCrc32(benchmark::State& state) {
  Rng rng(9);
  const BitStream bits = rng.next_bits(1518 * 8);
  const WideTableCrc engine(crcspec::crc32_ethernet(),
                            static_cast<unsigned>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.raw_bits(bits, 0xFFFFFFFF));
  state.SetBytesProcessed(state.iterations() * 1518);
}
BENCHMARK(BM_WideTableCrc32)->Arg(4)->Arg(8)->Arg(16);

// Sharded multi-core engines: single-thread vs 2/4/8-way shard curves on
// a 1 MiB buffer (Arg = shard count). The wrapped byte-wise engine sets
// the per-core ceiling; the shard curve shows how close the combine-fold
// parallelization gets to core-count scaling on this host.
void BM_ParallelTableCrc32(benchmark::State& state) {
  const auto msg = payload(1 << 20);
  const ParallelCrc<TableCrc> engine(
      TableCrc(crcspec::crc32_ethernet()),
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.compute(msg));
  state.SetBytesProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_ParallelTableCrc32)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

void BM_ParallelSlicingBy8Crc32(benchmark::State& state) {
  const auto msg = payload(1 << 20);
  const ParallelCrc<SlicingBy8Crc> engine(
      SlicingBy8Crc(crcspec::crc32_ethernet()),
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.compute(msg));
  state.SetBytesProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_ParallelSlicingBy8Crc32)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

void BM_ParallelClmulCrc32(benchmark::State& state) {
  const auto msg = payload(1 << 20);
  const ParallelCrc<ClmulCrc> engine(
      ClmulCrc(crcspec::crc32_ethernet(), ClmulKernel::kAccelerated),
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.compute(msg));
  state.SetBytesProcessed(state.iterations() * (1 << 20));
}

void BM_ParallelSlicingBy8Crc64(benchmark::State& state) {
  const auto msg = payload(1 << 20);
  const ParallelCrc<SlicingBy8Crc> engine(
      SlicingBy8Crc(crcspec::crc64_xz()),
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.compute(msg));
  state.SetBytesProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_ParallelSlicingBy8Crc64)->Arg(1)->Arg(4)->UseRealTime();

void BM_GfmacCrc32Horner(benchmark::State& state) {
  Rng rng(7);
  const BitStream bits = rng.next_bits(1518 * 8);
  const GfmacCrc engine(crcspec::crc32_ethernet(), 32);
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.raw_bits_horner(bits, 0xFFFFFFFF));
  state.SetBytesProcessed(state.iterations() * 1518);
}
BENCHMARK(BM_GfmacCrc32Horner);

}  // namespace

// BENCHMARK_MAIN, plus two convenience flags:
//   --json   expands to the library's own JSON reporter writing
//            BENCH_crc_engines.json (so CI can archive machine-readable
//            numbers without remembering the long spelling);
//   --quick  caps measurement time per benchmark (the CI
//            bench-regression job's fast mode).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_crc_engines.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  // Bare-double seconds: accepted by every google-benchmark release
  // (newer ones also take the "0.05s" spelling, older ones only this).
  std::string quick_flag = "--benchmark_min_time=0.05";
  for (std::size_t i = 1; i < args.size();) {
    if (std::string(args[i]) == "--json") {
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      args.push_back(out_flag.data());
      args.push_back(fmt_flag.data());
    } else if (std::string(args[i]) == "--quick") {
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      args.push_back(quick_flag.data());
    } else {
      ++i;
    }
  }

  // The pclmul benchmarks only exist where the CPU can run them.
  if (plfsr::cpu_features().pclmul && plfsr::cpu_features().sse41) {
    benchmark::RegisterBenchmark("BM_ClmulCrc32", BM_ClmulCrc32)
        ->Arg(64)->Arg(1518)->Arg(65536);
    benchmark::RegisterBenchmark("BM_ClmulCrc64", BM_ClmulCrc64)
        ->Arg(65536);
    benchmark::RegisterBenchmark("BM_ParallelClmulCrc32",
                                 BM_ParallelClmulCrc32)
        ->Arg(1)->Arg(2)->Arg(4)->UseRealTime();
  }

  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
