// FEC bench: Reed–Solomon encode/decode throughput over GF(256) — the
// table kernel vs the gf256::mul8 SWAR lanes (the same 8-products-per-
// word parallelism the paper's PiCoGA rows apply to the CRC feedback
// loop), the binary BCH pair, and the sharded ParallelFec batch decode.
//
// The run starts with an untimed correctness gate: every engine in the
// FecRegistry is audited over every catalogue spec it claims — full
// error radius, full erasure budget (RS), and rs-table/rs-swar encode
// agreement byte-for-byte; any mismatch makes the process exit nonzero.
// The timed section reports payload MB/s. Two intra-run gates also exit
// nonzero on failure: the SWAR encoder must not fall below 0.8x the
// table kernel (losing the SWAR path is the regression this pins), and
// the shard curve must never scale backwards (>= 0.85x the 1-shard
// rate at every point).
//
//   $ ./bench_fec [--quick] [--json]   # --json writes BENCH_fec.json
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "fec/bch_codec.hpp"
#include "fec/fec_registry.hpp"
#include "fec/parallel_fec.hpp"
#include "fec/rs_codec.hpp"
#include "support/report.hpp"
#include "support/rng.hpp"

namespace {

using namespace plfsr;

// Stream sizes: the single-thread sections run a 64-block stream (about
// 14 KiB of RS(255,223) payload); the shard curve uses 1024 blocks so
// the split has something to chew on.
constexpr std::size_t kStreamBlocks = 64;
constexpr std::size_t kParBlocks = 1024;

// --quick (the CI bench-regression fast mode) drops repetitions and
// shrinks the iteration counts; throughputs stay comparable, only the
// noise floor rises.
int g_reps = 3;
std::size_t g_enc_iters = 300;
std::size_t g_dec_iters = 60;
std::size_t g_par_iters = 20;

volatile std::uint64_t g_sink;  // defeats dead-code elimination

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Best-of-g_reps wall-clock MB/s of `fn`, which must process
/// `bytes_per_call` bytes each call and fold something into g_sink.
template <typename Fn>
double time_mbps(std::size_t iters, std::size_t bytes_per_call, Fn&& fn) {
  double best = 0;
  for (int rep = 0; rep < g_reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double s = seconds_since(t0);
    const double mb = static_cast<double>(iters) * bytes_per_call / 1e6;
    best = std::max(best, mb / s);
  }
  return best;
}

std::vector<std::uint32_t> distinct_positions(Rng& rng, std::size_t len,
                                              std::size_t count) {
  std::vector<std::uint32_t> out;
  while (out.size() < count) {
    const auto p = static_cast<std::uint32_t>(rng.next_below(len));
    bool dup = false;
    for (const std::uint32_t q : out) dup = dup || q == p;
    if (!dup) out.push_back(p);
  }
  return out;
}

/// Untimed gate: every registry engine round-trips every catalogue spec
/// it claims at the full error radius and (for RS) the full erasure
/// budget, and the two RS kernels produce identical codewords.
bool validate() {
  Rng rng(47);
  const FecRegistry& reg = FecRegistry::instance();
  for (const FecSpec& spec : fec::all_fec_specs()) {
    std::vector<std::uint8_t> data;           // shared across the engines
    std::vector<std::uint8_t> reference_code;  // cross-engine agreement
    for (const std::string& name : reg.names()) {
      if (!reg.supports(name, spec)) continue;
      const FecCodecHandle codec = reg.make(name, spec);
      if (data.empty()) data = rng.next_bytes(codec->data_bytes());
      std::vector<std::uint8_t> clean(codec->code_bytes());
      codec->encode_block(data, clean);
      if (reference_code.empty()) {
        reference_code = clean;
      } else if (clean != reference_code) {
        std::cout << "MISMATCH: " << name << " encodes " << spec.name()
                  << " differently from its sibling engine\n";
        return false;
      }

      // Full error radius (bytes for RS, bits for BCH — corrupt bytes,
      // one flipped bit each, which is <= max_errors bit errors).
      std::vector<std::uint8_t> code = clean;
      for (const std::uint32_t p :
           distinct_positions(rng, code.size(), codec->max_errors()))
        code[p] ^= static_cast<std::uint8_t>(
            spec.family == FecFamily::kBch
                ? 0x80u >> rng.next_below(8)
                : 1 + rng.next_below(255));
      FecDecodeResult r = codec->decode_block(code);
      if (!r.ok || !std::equal(data.begin(), data.end(), code.begin())) {
        std::cout << "FAIL: " << name << " " << spec.name() << " at "
                  << codec->max_errors() << " errors\n";
        return false;
      }

      // Full erasure budget (RS only; BCH reports max_erasures() == 0).
      if (codec->max_erasures() > 0) {
        code = clean;
        const auto erased =
            distinct_positions(rng, code.size(), codec->max_erasures());
        for (const std::uint32_t p : erased)
          code[p] = static_cast<std::uint8_t>(rng.next_u64());
        r = codec->decode_block(code, erased);
        if (!r.ok || !std::equal(data.begin(), data.end(), code.begin())) {
          std::cout << "FAIL: " << name << " " << spec.name() << " at "
                    << codec->max_erasures() << " erasures\n";
          return false;
        }
      }
    }
  }
  return true;
}

/// Encoded stream with `errors_per_block` corrupted symbols per block —
/// the decode benches replay this fixed impairment each call.
struct Stream {
  std::vector<std::uint8_t> data;
  std::vector<std::uint8_t> clean;
  std::vector<std::uint8_t> dirty;
};

Stream make_stream(const ParallelFec& fec, std::size_t blocks,
                   std::size_t errors_per_block, Rng& rng) {
  Stream s;
  s.data = rng.next_bytes(blocks * fec.codec().data_bytes());
  s.clean.resize(fec.encoded_size(s.data.size()));
  fec.encode(s.data, s.clean);
  s.dirty = s.clean;
  const std::size_t cb = fec.codec().code_bytes();
  for (std::size_t b = 0; b < blocks; ++b)
    for (const std::uint32_t p : distinct_positions(rng, cb, errors_per_block))
      s.dirty[b * cb + p] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--quick") == 0) {
      g_reps = 1;
      g_enc_iters = 40;
      g_dec_iters = 10;
      g_par_iters = 4;
    }
  }

  std::cout << "correctness (registry audit: every engine x every claimed "
               "spec, full radius + erasures): ";
  if (!validate()) return 1;
  std::cout << "ok\n\n";

  Rng rng(2026);
  const FecSpec spec = fec::rs_255_223();
  const auto table =
      std::make_shared<RsCodec>(spec, RsKernel::kTable);
  const auto swar = std::make_shared<RsCodec>(spec, RsKernel::kSwar);
  const std::size_t payload = kStreamBlocks * table->data_bytes();

  ReportTable rtable({"operation", "MB/s"});

  // Encode: table vs SWAR kernel on the same 64-block stream.
  const ParallelFec enc_table(table, 1);
  const ParallelFec enc_swar(swar, 1);
  std::vector<std::uint8_t> data = rng.next_bytes(payload);
  std::vector<std::uint8_t> code(enc_table.encoded_size(payload));

  const double enc_table_mbps = time_mbps(g_enc_iters, payload, [&] {
    enc_table.encode(data, code);
    g_sink = code[0];
  });
  rtable.add_row({"RS(255,223) encode, table kernel",
                  ReportTable::num(enc_table_mbps, 1)});

  const double enc_swar_mbps = time_mbps(g_enc_iters, payload, [&] {
    enc_swar.encode(data, code);
    g_sink = code[0];
  });
  rtable.add_row({"RS(255,223) encode, SWAR kernel",
                  ReportTable::num(enc_swar_mbps, 1)});

  // Decode: clean channel (syndromes only) and 4 symbol errors per
  // block (syndromes + BM + Chien + Forney + recheck).
  const ParallelFec dec(swar, 1);
  const Stream rs_stream = make_stream(dec, kStreamBlocks, 4, rng);
  std::vector<std::uint8_t> out(payload);

  const double dec_clean_mbps = time_mbps(g_dec_iters, payload, [&] {
    dec.decode(rs_stream.clean, out);
    g_sink = out[0];
  });
  rtable.add_row({"RS(255,223) decode, clean",
                  ReportTable::num(dec_clean_mbps, 1)});

  const double dec_err_mbps = time_mbps(g_dec_iters, payload, [&] {
    dec.decode(rs_stream.dirty, out);
    g_sink = out[0];
  });
  rtable.add_row({"RS(255,223) decode, 4 errors/block",
                  ReportTable::num(dec_err_mbps, 1)});

  // BCH pair on the textbook t=4 geometry.
  const auto bch = std::make_shared<BchCodec>(fec::bch_255_t4());
  const ParallelFec bch_fec(bch, 1);
  const std::size_t bch_payload = kStreamBlocks * bch->data_bytes();
  const Stream bch_stream = make_stream(bch_fec, kStreamBlocks, 0, rng);
  std::vector<std::uint8_t> bch_code(bch_fec.encoded_size(bch_payload));
  std::vector<std::uint8_t> bch_out(bch_payload);

  const double bch_enc_mbps = time_mbps(g_enc_iters, bch_payload, [&] {
    bch_fec.encode(bch_stream.data, bch_code);
    g_sink = bch_code[0];
  });
  rtable.add_row({"BCH(255,223,t=4) encode",
                  ReportTable::num(bch_enc_mbps, 1)});

  const double bch_dec_mbps = time_mbps(g_dec_iters, bch_payload, [&] {
    bch_fec.decode(bch_stream.clean, bch_out);
    g_sink = bch_out[0];
  });
  rtable.add_row({"BCH(255,223,t=4) decode, clean",
                  ReportTable::num(bch_dec_mbps, 1)});

  // Shard curve: batch decode of a 1024-block stream with errors in
  // every block — the workload ParallelFec exists for. Scaling shows
  // only on multi-core hosts; overhead is visible everywhere.
  struct ShardPoint {
    std::size_t shards;
    double mbps;
  };
  std::vector<ShardPoint> par_points;
  const std::size_t par_payload = kParBlocks * table->data_bytes();
  {
    const ParallelFec seed_fec(swar, 1);
    const Stream par_stream = make_stream(seed_fec, kParBlocks, 4, rng);
    std::vector<std::uint8_t> par_out(par_payload);
    for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
      const ParallelFec par(swar, shards);
      const double mbps = time_mbps(g_par_iters, par_payload, [&] {
        par.decode(par_stream.dirty, par_out);
        g_sink = par_out[0];
      });
      par_points.push_back({shards, mbps});
      rtable.add_row({"ParallelFec decode x" + std::to_string(shards),
                      ReportTable::num(mbps, 1)});
    }
  }

  std::cout << "payload throughput, " << kStreamBlocks << "-block streams ("
            << g_reps << " rep best-of):\n";
  rtable.print(std::cout);

  // Intra-run gates (compared within this run, so host speed cancels).
  const double kernel_ratio = enc_swar_mbps / enc_table_mbps;
  const bool kernel_ok = kernel_ratio >= 0.8;
  std::cout << "\nSWAR/table encode ratio : " << ReportTable::num(kernel_ratio, 2)
            << "x " << (kernel_ok ? "(>= 0.8x)" : "(BELOW 0.8x — SWAR path lost?)")
            << "\n";

  bool shards_ok = true;
  for (const ShardPoint& p : par_points) {
    if (p.mbps < 0.85 * par_points[0].mbps) {
      shards_ok = false;
      std::cout << "SHARD REGRESSION: x" << p.shards << " = "
                << ReportTable::num(p.mbps, 1) << " MB/s < 0.85 * x1 = "
                << ReportTable::num(0.85 * par_points[0].mbps, 1) << " MB/s\n";
    }
  }
  if (shards_ok)
    std::cout << "shard scaling           : monotone within noise (>= 0.85x "
                 "the 1-shard rate at every point)\n";

  if (json) {
    std::ofstream jout("BENCH_fec.json");
    jout << "{\n  \"bench\": \"fec\",\n  \"stream_blocks\": " << kStreamBlocks
         << ",\n  \"rs_encode_table_mb_per_s\": "
         << ReportTable::num(enc_table_mbps, 1)
         << ",\n  \"rs_encode_swar_mb_per_s\": "
         << ReportTable::num(enc_swar_mbps, 1)
         << ",\n  \"rs_decode_clean_mb_per_s\": "
         << ReportTable::num(dec_clean_mbps, 1)
         << ",\n  \"rs_decode_errors_mb_per_s\": "
         << ReportTable::num(dec_err_mbps, 1)
         << ",\n  \"bch_encode_mb_per_s\": " << ReportTable::num(bch_enc_mbps, 1)
         << ",\n  \"bch_decode_mb_per_s\": " << ReportTable::num(bch_dec_mbps, 1)
         << ",\n  \"parallel\": [\n";
    for (std::size_t i = 0; i < par_points.size(); ++i)
      jout << "    {\"shards\": " << par_points[i].shards
           << ", \"mb_per_s\": " << ReportTable::num(par_points[i].mbps, 1)
           << "}" << (i + 1 < par_points.size() ? "," : "") << "\n";
    jout << "  ],\n  \"correctness_ok\": true\n}\n";
    std::cout << "wrote BENCH_fec.json\n";
  }
  return (kernel_ok && shards_ok) ? 0 : 1;
}
