// Ablations for the two design choices DESIGN.md calls out:
//  1. Derby state-space transform vs. direct look-ahead (Pei): the
//     state-dependent loop depth — hence the initiation interval and the
//     sustainable rate — of the two mappings.
//  2. 10-bit common-pattern sharing (CSE) on vs. off: mapped cell counts
//     of the CRC operations.
#include <iostream>
#include <vector>

#include "lfsr/catalog.hpp"
#include "mapper/design_space.hpp"
#include "mapper/op_builder.hpp"
#include "support/report.hpp"

int main() {
  using namespace plfsr;
  const Gf2Poly g = catalog::crc32_ethernet();
  const PicogaConstraints pc;

  std::cout << "Ablation 1 — Derby transform vs. direct look-ahead "
               "(CRC-32, state-dependent loop depth => II)\n\n";
  ReportTable t1({"M", "derby II", "direct II", "derby Gbps", "direct Gbps",
                  "derby advantage"});
  for (std::size_t m : {8u, 16u, 32u, 64u, 128u}) {
    const CrcOpPlan derby = build_derby_crc_ops(g, m);
    const MappedOp direct = build_direct_crc_op(g, m);
    const unsigned ii_derby = std::max(1u, derby.op1.loop_depth);
    const unsigned ii_direct = std::max(1u, direct.loop_depth);
    const double f = pc.freq_mhz * 1e6;
    const double g_derby = m * f / ii_derby / 1e9;
    const double g_direct = m * f / ii_direct / 1e9;
    t1.add_row({std::to_string(m), std::to_string(ii_derby),
                std::to_string(ii_direct), ReportTable::num(g_derby, 1),
                ReportTable::num(g_direct, 1),
                "x" + ReportTable::num(g_derby / g_direct, 2)});
  }
  t1.print(std::cout);
  std::cout << "\n(Pei's bound: direct exponentiation limits speed-up to "
               "~0.5 M — visible as II >= 2.)\n";

  std::cout << "\nAblation 2 — 10-bit common-pattern sharing (CSE)\n\n";
  ReportTable t2({"M", "op1 cells CSE", "op1 cells naive", "saved %",
                  "op2 cells CSE", "op2 cells naive", "saved %"});
  MapperOptions no_cse;
  no_cse.share_patterns = false;
  for (std::size_t m : {16u, 32u, 64u, 128u}) {
    const CrcOpPlan with = build_derby_crc_ops(g, m);
    const CrcOpPlan without = build_derby_crc_ops(g, m, no_cse);
    const auto pct = [](std::size_t a, std::size_t b) {
      return ReportTable::num(100.0 * (1.0 - double(a) / double(b)), 1);
    };
    t2.add_row({std::to_string(m), std::to_string(with.op1.stats.cells),
                std::to_string(without.op1.stats.cells),
                pct(with.op1.stats.cells, without.op1.stats.cells),
                std::to_string(with.op2.stats.cells),
                std::to_string(without.op2.stats.cells),
                pct(with.op2.stats.cells, without.op2.stats.cells)});
  }
  t2.print(std::cout);
  return 0;
}
