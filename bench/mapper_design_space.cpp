// §4 design exploration — the output of the paper's Matlab flow, in C++:
// for each look-ahead factor, the mapped resource cost of the two CRC
// operations (cells, rows, pipeline levels, loop depth) and feasibility
// on the DREAM PiCoGA (24 rows x 16 cells, 384/128 I/O, 200 MHz), ending
// with the headline "up to 128 bits per cycle".
#include <iostream>
#include <vector>

#include "lfsr/catalog.hpp"
#include "mapper/design_space.hpp"
#include "picoga/routing.hpp"
#include "support/report.hpp"

int main() {
  using namespace plfsr;
  const Gf2Poly g = catalog::crc32_ethernet();
  const std::vector<std::size_t> ms = {8, 16, 32, 64, 128, 256};

  std::cout << "CRC-32 two-operation mapping on PiCoGA (Derby form)\n\n";
  ReportTable table({"M", "op1 cells", "op1 rows", "op1 II", "op1 routing",
                     "op2 cells", "op2 rows", "feasible", "peak Gbps"});
  for (const auto& p : explore_crc_design_space(g, ms)) {
    // Routing pressure of op1 at the fabric's 2-bit wire granularity
    // (only computable when the op fits the array at all).
    std::string routing = "-";
    if (p.op1.fits) {
      const CrcOpPlan plan = build_derby_crc_ops(g, p.m);
      const PgaOp op1("op1", plan.op1.netlist, plan.width,
                      PicogaConstraints{});
      const RoutingReport rr = analyze_routing(op1);
      routing = std::to_string(rr.peak_granules_paired) + "/" +
                std::to_string(RoutingChannel{}.tracks) +
                (rr.feasible ? "" : "!");
    }
    table.add_row({std::to_string(p.m), std::to_string(p.op1.cells),
                   std::to_string(p.op1.rows), std::to_string(p.op1.ii),
                   routing, std::to_string(p.op2.cells),
                   std::to_string(p.op2.rows),
                   p.feasible ? "yes" : ("NO (" + p.limiting_factor + ")"),
                   ReportTable::num(p.peak_gbps, 1)});
  }
  table.print(std::cout);
  std::cout << "\nMax feasible power-of-two M: " << max_feasible_m(g)
            << " (paper: 128 bits per cycle)\n";

  std::cout << "\n802.11 scrambler single-operation mapping\n\n";
  ReportTable stable({"M", "cells", "rows", "II", "feasible", "peak Gbps"});
  for (const auto& p : explore_scrambler_design_space(
           catalog::scrambler_80211(), {8, 16, 32, 64, 128})) {
    stable.add_row({std::to_string(p.m), std::to_string(p.op.cells),
                    std::to_string(p.op.rows), std::to_string(p.op.ii),
                    p.feasible ? "yes" : "NO", ReportTable::num(p.peak_gbps, 1)});
  }
  stable.print(std::cout);

  std::cout << "\nSeed-vector (f) sensitivity of T's mapped complexity, "
               "CRC-32 M=32 (paper: no significant difference):\n  cells = ";
  for (std::size_t c : sweep_f_complexity(g, 32, 8)) std::cout << c << " ";
  std::cout << "\n";
  return 0;
}
