// Streaming-pipeline bench v2: a frame stream is driven through
// scramble → CRC → verify on the stage-graph executor, swept over
// executor mode (threaded / fused / threaded with a sharded scramble
// row) × batch size × queue depth, and compared against the best
// standalone CRC engine on the same frames — the software analogue of
// asking how close the PiCoGA row pipeline gets to the throughput of its
// slowest row. A second, arena-backed sweep streams 64 B frames through
// the recycling producer/sink loop and reports the millions-of-frames-
// per-second headline.
//
// The run starts with untimed validation passes (randomised frame sizes,
// including empty and 1-byte frames; every executor mode) that check the
// pipelined output bit-exactly against the serial composition of the
// same stages; any mismatch — there or in the on-line verify sink of a
// timed run — makes the process exit nonzero.
//
//   $ ./bench_pipeline [--quick] [--json]   # --json writes BENCH_pipeline.json
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "crc/crc_spec.hpp"
#include "crc/engine_registry.hpp"
#include "crc/slicing_crc.hpp"
#include "lfsr/catalog.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/sharded_stage.hpp"
#include "pipeline/stages.hpp"
#include "support/cpu_features.hpp"
#include "support/frame_arena.hpp"
#include "support/report.hpp"
#include "support/rng.hpp"

namespace {

using namespace plfsr;

constexpr std::uint64_t kScramblerSeed = 0x5D;  // 802.11 per-PPDU seed
constexpr std::size_t kFrameBytes = 1500;
constexpr std::size_t kSmallFrameBytes = 64;
constexpr std::uint64_t kVerifyStride = 256;

// --quick (the CI bench-regression fast mode) shrinks the streams and
// drops the best-of repetitions.
std::size_t g_frames = 16384;
std::size_t g_small_frames = 262144;
std::size_t g_jumbo_frames = 48;
int g_reps = 3;

constexpr std::size_t kJumboFrameBytes = 4u << 20;
constexpr std::size_t kJumboPoolFrames = 6;

/// The fastest FCS engine this machine can run, straight from the
/// registry's capability-aware policy (PLFSR_ENGINE overrides it,
/// PLFSR_FORCE_PORTABLE vetoes the accelerated kernels).
std::unique_ptr<Stage> make_fcs_stage() {
  return std::make_unique<FcsStage>(
      EngineRegistry::instance().best_for(crcspec::crc32_ethernet()));
}

volatile std::uint64_t g_sink;  // defeats dead-code elimination of baselines

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Shard width for the sharded-scramble sweep rows: enough workers to
/// widen the bottleneck row, but only when the host has cores to give
/// (3 pipeline stages + producer + shards). 0 disables the rows.
std::size_t sharded_scramble_workers() {
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores < 6) return 0;
  return std::min<std::size_t>(4, cores - 4);
}

std::unique_ptr<Stage> make_scramble_stage(std::size_t shards) {
  if (shards <= 1)
    return std::make_unique<ScrambleStage>(catalog::scrambler_80211(),
                                           kScramblerSeed);
  return std::make_unique<ShardedStage>(
      [] {
        return std::make_unique<ScrambleStage>(catalog::scrambler_80211(),
                                               kScramblerSeed);
      },
      shards);
}

std::vector<std::unique_ptr<Stage>> make_stages(std::size_t shards) {
  std::vector<std::unique_ptr<Stage>> st;
  st.push_back(make_scramble_stage(shards));
  st.push_back(make_fcs_stage());
  // No arena plumbing: dropping the verified batch drops the FrameBuf
  // descriptors, which routes the storage back to whatever arena the
  // producer acquired it from.
  st.push_back(std::make_unique<VerifySink>(
      EngineRegistry::instance().make("table", crcspec::crc32_ethernet()),
      kVerifyStride));
  return st;
}

/// Untimed functional gate: randomised frame sizes (empty and 1-byte
/// included) through the pipeline vs the serial composition, for one
/// executor configuration.
bool validate_mode(ExecMode mode, std::size_t shards) {
  Rng rng(7);
  std::vector<Frame> input(512);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i].id = i;
    const std::size_t len = i == 0 ? 0 : i == 1 ? 1 : rng.next_below(1519);
    input[i].bytes = rng.next_bytes(len);
  }

  // Serial reference: same stage types, fresh instances, one thread.
  FrameBatch expect;
  expect.reserve(input.size());
  for (const Frame& f : input) expect.push_back(f.clone());
  ScrambleStage ref_scramble(catalog::scrambler_80211(), kScramblerSeed);
  FcsStage ref_crc{SlicingBy8Crc(crcspec::crc32_ethernet())};
  ref_scramble.process(expect);
  ref_crc.process(expect);

  std::vector<std::unique_ptr<Stage>> st;
  st.push_back(make_scramble_stage(shards));
  st.push_back(make_fcs_stage());  // cross-engine: reference is slicing
  st.push_back(std::make_unique<CollectSink>());
  CollectSink* sink = static_cast<CollectSink*>(st.back().get());
  PipelinePlan plan;
  plan.mode = mode;
  plan.queue_depth = 4;
  Pipeline pipe(std::move(st), plan);
  pipe.start();
  for (std::size_t i = 0; i < input.size(); i += 7) {
    FrameBatch batch;
    for (std::size_t j = i; j < std::min(i + 7, input.size()); ++j)
      batch.push_back(input[j].clone());
    if (!pipe.push(std::move(batch))) return false;
  }
  pipe.wait();

  const std::vector<Frame>& got = sink->frames();
  if (got.size() != expect.size()) return false;
  for (std::size_t i = 0; i < got.size(); ++i)
    if (got[i].id != expect[i].id || got[i].bytes != expect[i].bytes ||
        got[i].crc != expect[i].crc)
      return false;
  return true;
}

struct StageOcc {
  std::string name;
  double busy_ms, mb_per_s, occupancy;
};

struct SweepPoint {
  std::string mode;  // "threaded" | "fused" | "threaded-shardN"
  std::size_t batch, depth;
  double mb_per_s, frames_per_s, ratio;
  std::uint64_t producer_stalls;
};

struct RunResult {
  double mb_per_s = 0;
  std::uint64_t producer_stalls = 0;
  bool ok = true;
  std::string stats_text;
  std::vector<StageOcc> occupancy;
};

/// One timed run of the 1500 B stream through a given configuration.
RunResult run_point(const std::vector<Frame>& stream, ExecMode mode,
                    std::size_t shards, std::size_t batch_size,
                    std::size_t depth, double total_mb) {
  std::vector<FrameBatch> batches;
  for (std::size_t i = 0; i < stream.size(); i += batch_size) {
    FrameBatch b;
    for (std::size_t j = i; j < std::min(i + batch_size, stream.size()); ++j)
      b.push_back(stream[j].clone());
    batches.push_back(std::move(b));
  }

  auto stages = make_stages(shards);
  auto* sink = static_cast<VerifySink*>(stages.back().get());
  PipelinePlan plan;
  plan.mode = mode;
  plan.queue_depth = depth;
  Pipeline pipe(std::move(stages), plan);
  const auto t0 = std::chrono::steady_clock::now();
  pipe.start();
  for (FrameBatch& b : batches) pipe.push(std::move(b));
  const std::uint64_t stalls = pipe.producer_stalls();
  pipe.wait();
  const double sec = seconds_since(t0);

  RunResult r;
  r.mb_per_s = total_mb / sec;
  r.producer_stalls = stalls;
  r.ok = sink->ok() && sink->frames() == stream.size();
  std::ostringstream os;
  pipe.stats_table().print(os);
  r.stats_text = os.str();
  const double wall_ns = sec * 1e9;
  for (const StageStats& s : pipe.stats()) {
    StageOcc o;
    o.name = s.name;
    o.busy_ms = static_cast<double>(s.busy_ns) / 1e6;
    o.mb_per_s = s.busy_ns == 0 ? 0.0
                                : static_cast<double>(s.bytes) /
                                      (static_cast<double>(s.busy_ns) / 1e9) /
                                      1e6;
    o.occupancy =
        wall_ns == 0 ? 0.0 : static_cast<double>(s.busy_ns) / wall_ns;
    r.occupancy.push_back(std::move(o));
  }
  return r;
}

struct SmallPoint {
  std::string mode;
  std::size_t batch;
  double frames_per_s, mb_per_s;
  std::uint64_t arena_heap_allocs, arena_recycles;
  std::uint64_t pool_capacity = 0;
};

/// Arena-backed frame stream at one size class: the producer acquires
/// every frame buffer from a bounded pool the sink's descriptor drops
/// release back into — steady state touches the heap never, and a full
/// pool backpressures the producer end to end. Runs the 64 B
/// small-frame headline and the 4 MiB jumbo row alike; the heap
/// allocation counter staying within the pool capacity is the CI-gated
/// zero-copy invariant at both extremes.
SmallPoint run_arena_stream(ExecMode mode, std::size_t batch_size,
                            std::size_t frame_bytes, std::size_t n,
                            std::size_t pool_frames) {
  FrameArena arena(pool_frames);
  const std::vector<std::uint8_t> payload_template = [frame_bytes] {
    Rng rng(404);
    return rng.next_bytes(frame_bytes);
  }();

  auto stages = make_stages(/*shards=*/1);
  auto* sink = static_cast<VerifySink*>(stages.back().get());
  PipelinePlan plan;
  plan.mode = mode;
  plan.queue_depth = 8;
  Pipeline pipe(std::move(stages), plan);
  const auto t0 = std::chrono::steady_clock::now();
  pipe.start();
  FrameBatch batch;
  batch.reserve(batch_size);
  for (std::size_t i = 0; i < n; ++i) {
    Frame f;
    f.id = i;
    if (!arena.acquire(f.bytes, frame_bytes)) break;
    std::memcpy(f.bytes.data(), payload_template.data(), frame_bytes);
    batch.push_back(std::move(f));
    if (batch.size() == batch_size) {
      if (!pipe.push(std::move(batch))) break;
      batch = FrameBatch();
      batch.reserve(batch_size);
    }
  }
  if (!batch.empty()) pipe.push(std::move(batch));
  pipe.wait();
  const double sec = seconds_since(t0);

  SmallPoint p;
  p.mode = mode == ExecMode::kFused ? "fused" : "threaded";
  p.batch = batch_size;
  p.frames_per_s = sink->frames() == n ? static_cast<double>(n) / sec : 0;
  p.mb_per_s =
      static_cast<double>(n) * frame_bytes / 1e6 / (sec > 0 ? sec : 1);
  p.arena_heap_allocs = arena.heap_allocations();
  p.arena_recycles = arena.recycles();
  p.pool_capacity = pool_frames;
  if (!sink->ok()) p.frames_per_s = 0;  // poison the point on mismatch
  return p;
}

SmallPoint run_small(ExecMode mode, std::size_t batch_size) {
  // Pool sized to cover the frames in flight (rings x batch) with slack;
  // small enough that recycling, not allocation, must carry the run.
  return run_arena_stream(mode, batch_size, kSmallFrameBytes,
                          g_small_frames, batch_size * 24);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--quick") == 0) {
      g_frames = 2048;
      g_small_frames = 65536;
      g_jumbo_frames = 12;
      g_reps = 1;
    }
  }

  const std::size_t shard_workers = sharded_scramble_workers();

  std::cout << "validation (randomised frames, pipeline vs serial "
               "composition, every executor mode): ";
  bool valid = validate_mode(ExecMode::kThreaded, 1) &&
               validate_mode(ExecMode::kFused, 1);
  if (valid && shard_workers > 1)
    valid = validate_mode(ExecMode::kThreaded, shard_workers);
  if (!valid) {
    std::cout << "MISMATCH\n";
    return 1;
  }
  std::cout << "bit-exact\n\n";

  // The timed frame set: a fixed-size stream, as a MAC would emit.
  Rng rng(2026);
  std::vector<Frame> stream(g_frames);
  for (std::size_t i = 0; i < g_frames; ++i) {
    stream[i].id = i;
    stream[i].bytes = rng.next_bytes(kFrameBytes);
  }
  const double total_mb =
      static_cast<double>(g_frames) * kFrameBytes / 1e6;

  // Baseline: the best standalone CRC engine over the same frames. The
  // pipeline adds a scramble stage and the executor hand-offs on top of
  // this, so baseline throughput is the bar the acceptance ratio is
  // against.
  double base_mbps = 0;
  std::string base_name;
  {
    // Candidates from the registry: the universal table floor, the best
    // portable software engine, and whatever the capability-aware
    // policy picks (clmul where the host allows it). Names are registry
    // keys, so the printed baseline matches the FCS stage's engine.
    const EngineRegistry& reg = EngineRegistry::instance();
    const auto time_engine = [&](const CrcEngineHandle& eng) {
      double best = 0;
      for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        std::uint64_t acc = 0;
        for (const Frame& f : stream) acc ^= eng.compute(f.bytes);
        const double s = seconds_since(t0);
        g_sink = acc;
        best = std::max(best, total_mb / s);
      }
      return best;
    };
    std::vector<CrcEngineHandle> candidates;
    candidates.push_back(reg.make("table", crcspec::crc32_ethernet()));
    candidates.push_back(reg.make("slicing8", crcspec::crc32_ethernet()));
    CrcEngineHandle policy = reg.best_for(crcspec::crc32_ethernet());
    if (policy.engine_name() != "table" &&
        policy.engine_name() != "slicing8")
      candidates.push_back(std::move(policy));
    for (const CrcEngineHandle& eng : candidates) {
      const double mbps = time_engine(eng);
      if (mbps > base_mbps) {
        base_mbps = mbps;
        base_name = eng.engine_name();
      }
    }
    std::cout << "baseline CRC engine : " << base_name << " at "
              << ReportTable::num(base_mbps, 1) << " MB/s ("
              << g_frames << " frames x " << kFrameBytes << " B)\n\n";
  }

  // The sweep grid: mode × batch × depth. Batches are pre-built outside
  // the timed region; the clock covers start → wait (drain included).
  // Each point runs g_reps times and keeps the fastest — same best-of
  // policy as the baseline, so scheduler noise hits both sides of the
  // ratio alike.
  struct GridPoint {
    ExecMode mode;
    std::size_t shards, batch, depth;
    std::string label;
  };
  std::vector<GridPoint> grid_points;
  for (const std::size_t batch : {16u, 64u, 128u})
    for (const std::size_t depth : {4u, 16u})
      grid_points.push_back(
          {ExecMode::kThreaded, 1, batch, depth, "threaded"});
  if (shard_workers > 1) {
    const std::string label =
        "threaded-shard" + std::to_string(shard_workers);
    for (const std::size_t batch : {64u, 128u})
      grid_points.push_back({ExecMode::kThreaded, shard_workers, batch,
                             /*depth=*/4, label});
  }
  // Fused has no rings; depth is moot (recorded as 1).
  for (const std::size_t batch : {16u, 64u, 128u})
    grid_points.push_back({ExecMode::kFused, 1, batch, /*depth=*/1, "fused"});

  std::vector<SweepPoint> sweep;
  ReportTable grid({"mode", "batch", "depth", "MB/s", "Mfps", "vs best CRC",
                    "prod-stalls"});
  double best_ratio = 0;
  std::size_t best_idx = 0;
  RunResult best_run;
  bool verify_ok = true;
  for (const GridPoint& gp : grid_points) {
    RunResult best_of;
    for (int rep = 0; rep < g_reps; ++rep) {
      RunResult r = run_point(stream, gp.mode, gp.shards, gp.batch,
                              gp.depth, total_mb);
      if (!r.ok) verify_ok = false;
      if (r.mb_per_s > best_of.mb_per_s) best_of = std::move(r);
    }
    const double ratio = best_of.mb_per_s / base_mbps;
    const double fps = best_of.mb_per_s * 1e6 / kFrameBytes;
    sweep.push_back({gp.label, gp.batch, gp.depth, best_of.mb_per_s, fps,
                     ratio, best_of.producer_stalls});
    grid.add_row({gp.label, std::to_string(gp.batch),
                  std::to_string(gp.depth),
                  ReportTable::num(best_of.mb_per_s, 1),
                  ReportTable::num(fps / 1e6, 2), ReportTable::num(ratio, 2),
                  std::to_string(best_of.producer_stalls)});
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best_idx = sweep.size() - 1;
      best_run = std::move(best_of);
    }
  }

  std::cout << "pipeline sweep (scramble -> crc -> verify, "
            << "spot-check stride " << kVerifyStride << "):\n";
  grid.print(std::cout);
  std::cout << "\nper-stage metrics of the best point (" << sweep[best_idx].mode
            << ", batch " << sweep[best_idx].batch << ", depth "
            << sweep[best_idx].depth << "):\n"
            << best_run.stats_text << "\nbest pipeline/CRC ratio : "
            << ReportTable::num(best_ratio, 2)
            << (best_ratio >= 0.9 ? "  (>= 0.9 target)" : "  (below 0.9)")
            << "\n";

  // Small-frame headline: millions of 64 B frames per second through the
  // arena-recycled zero-copy loop.
  std::vector<SmallPoint> small;
  double best_small_fps = 0;
  {
    ReportTable st({"mode", "batch", "Mframes/s", "MB/s", "heap-allocs",
                    "recycles"});
    for (const ExecMode mode : {ExecMode::kFused, ExecMode::kThreaded}) {
      for (const std::size_t batch : {256u}) {
        SmallPoint best_p;
        best_p.frames_per_s = -1;
        for (int rep = 0; rep < g_reps; ++rep) {
          SmallPoint p = run_small(mode, batch);
          if (p.frames_per_s > best_p.frames_per_s) best_p = p;
        }
        if (best_p.frames_per_s <= 0) verify_ok = false;
        st.add_row({best_p.mode, std::to_string(best_p.batch),
                    ReportTable::num(best_p.frames_per_s / 1e6, 2),
                    ReportTable::num(best_p.mb_per_s, 1),
                    std::to_string(best_p.arena_heap_allocs),
                    std::to_string(best_p.arena_recycles)});
        best_small_fps = std::max(best_small_fps, best_p.frames_per_s);
        small.push_back(std::move(best_p));
      }
    }
    std::cout << "\nsmall-frame stream (" << g_small_frames << " x "
              << kSmallFrameBytes
              << " B, arena-recycled zero-copy loop):\n";
    st.print(std::cout);
    std::cout << "best frames/sec : "
              << ReportTable::num(best_small_fps / 1e6, 2) << " M/s\n";
  }

  // Jumbo sweep row: 4 MiB frames through the same arena-recycled loop,
  // a 6-descriptor pool. The size-classed arena must carry this from
  // recycling alone — heap allocations staying within the pool capacity
  // is the zero-copy invariant at the opposite extreme from 64 B.
  std::vector<SmallPoint> jumbo;
  {
    ReportTable jt({"mode", "batch", "frames/s", "MB/s", "heap-allocs",
                    "pool-cap", "recycles"});
    for (const ExecMode mode : {ExecMode::kFused, ExecMode::kThreaded}) {
      SmallPoint best_p;
      best_p.frames_per_s = -1;
      for (int rep = 0; rep < g_reps; ++rep) {
        SmallPoint p = run_arena_stream(mode, /*batch_size=*/1,
                                        kJumboFrameBytes, g_jumbo_frames,
                                        kJumboPoolFrames);
        if (p.frames_per_s > best_p.frames_per_s) best_p = p;
      }
      if (best_p.frames_per_s <= 0) verify_ok = false;
      jt.add_row({best_p.mode, std::to_string(best_p.batch),
                  ReportTable::num(best_p.frames_per_s, 1),
                  ReportTable::num(best_p.mb_per_s, 1),
                  std::to_string(best_p.arena_heap_allocs),
                  std::to_string(best_p.pool_capacity),
                  std::to_string(best_p.arena_recycles)});
      jumbo.push_back(std::move(best_p));
    }
    std::cout << "\njumbo stream (" << g_jumbo_frames << " x "
              << (kJumboFrameBytes >> 20)
              << " MiB, arena-recycled zero-copy loop):\n";
    jt.print(std::cout);
  }

  if (!verify_ok)
    std::cout << "\nVERIFY SINK MISMATCH: pipelined CRCs disagree with the "
                 "reference engine\n";

  if (json) {
    std::ofstream out("BENCH_pipeline.json");
    out << "{\n  \"bench\": \"pipeline\",\n  \"frames\": " << g_frames
        << ",\n  \"frame_bytes\": " << kFrameBytes
        << ",\n  \"baseline\": {\"engine\": \"" << base_name
        << "\", \"mb_per_s\": " << ReportTable::num(base_mbps, 1)
        << "},\n  \"sweep\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const SweepPoint& p = sweep[i];
      out << "    {\"mode\": \"" << p.mode << "\", \"batch\": " << p.batch
          << ", \"depth\": " << p.depth
          << ", \"mb_per_s\": " << ReportTable::num(p.mb_per_s, 1)
          << ", \"frames_per_s\": " << ReportTable::num(p.frames_per_s, 0)
          << ", \"ratio\": " << ReportTable::num(p.ratio, 3)
          << ", \"producer_stalls\": " << p.producer_stalls << "}"
          << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"best\": {\"mode\": \"" << sweep[best_idx].mode
        << "\", \"batch\": " << sweep[best_idx].batch
        << ", \"depth\": " << sweep[best_idx].depth
        << ", \"mb_per_s\": " << ReportTable::num(sweep[best_idx].mb_per_s, 1)
        << ", \"frames_per_s\": "
        << ReportTable::num(sweep[best_idx].frames_per_s, 0)
        << ", \"ratio\": " << ReportTable::num(best_ratio, 3)
        << "},\n  \"best_stage_occupancy\": [\n";
    for (std::size_t i = 0; i < best_run.occupancy.size(); ++i) {
      const StageOcc& o = best_run.occupancy[i];
      out << "    {\"stage\": \"" << o.name
          << "\", \"busy_ms\": " << ReportTable::num(o.busy_ms, 2)
          << ", \"mb_per_s\": " << ReportTable::num(o.mb_per_s, 1)
          << ", \"occupancy\": " << ReportTable::num(o.occupancy, 3) << "}"
          << (i + 1 < best_run.occupancy.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"small\": {\n    \"frame_bytes\": " << kSmallFrameBytes
        << ",\n    \"frames\": " << g_small_frames << ",\n    \"sweep\": [\n";
    for (std::size_t i = 0; i < small.size(); ++i) {
      const SmallPoint& p = small[i];
      out << "      {\"mode\": \"" << p.mode << "\", \"batch\": " << p.batch
          << ", \"frames_per_s\": " << ReportTable::num(p.frames_per_s, 0)
          << ", \"mb_per_s\": " << ReportTable::num(p.mb_per_s, 1)
          << ", \"arena_heap_allocs\": " << p.arena_heap_allocs
          << ", \"arena_recycles\": " << p.arena_recycles
          << ", \"pool_capacity\": " << p.pool_capacity << "}"
          << (i + 1 < small.size() ? "," : "") << "\n";
    }
    out << "    ],\n    \"best_frames_per_s\": "
        << ReportTable::num(best_small_fps, 0)
        << "\n  },\n  \"jumbo\": {\n    \"frame_bytes\": " << kJumboFrameBytes
        << ",\n    \"frames\": " << g_jumbo_frames << ",\n    \"sweep\": [\n";
    for (std::size_t i = 0; i < jumbo.size(); ++i) {
      const SmallPoint& p = jumbo[i];
      out << "      {\"mode\": \"" << p.mode << "\", \"batch\": " << p.batch
          << ", \"frames_per_s\": " << ReportTable::num(p.frames_per_s, 1)
          << ", \"mb_per_s\": " << ReportTable::num(p.mb_per_s, 1)
          << ", \"arena_heap_allocs\": " << p.arena_heap_allocs
          << ", \"arena_recycles\": " << p.arena_recycles
          << ", \"pool_capacity\": " << p.pool_capacity << "}"
          << (i + 1 < jumbo.size() ? "," : "") << "\n";
    }
    out << "    ]\n  },\n  \"verify_ok\": "
        << (verify_ok ? "true" : "false") << "\n}\n";
    std::cout << "\nwrote BENCH_pipeline.json\n";
  }
  return verify_ok ? 0 : 1;
}
