// Streaming-pipeline bench: a frame stream is driven through
// scramble → CRC → verify on the stage-graph executor, swept over batch
// size × queue depth, and compared against the best standalone CRC engine
// on the same frames — the software analogue of asking how close the
// PiCoGA row pipeline gets to the throughput of its slowest row.
//
// The run starts with an untimed validation pass (randomised frame sizes,
// including empty and 1-byte frames) that checks the pipelined output
// bit-exactly against the serial composition of the same stages; any
// mismatch — there or in the on-line verify sink of a timed run — makes
// the process exit nonzero.
//
//   $ ./bench_pipeline [--json]     # --json also writes BENCH_pipeline.json
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "crc/crc_spec.hpp"
#include "crc/engine_registry.hpp"
#include "crc/slicing_crc.hpp"
#include "lfsr/catalog.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/stages.hpp"
#include "support/cpu_features.hpp"
#include "support/report.hpp"
#include "support/rng.hpp"

namespace {

using namespace plfsr;

constexpr std::uint64_t kScramblerSeed = 0x5D;  // 802.11 per-PPDU seed
constexpr std::size_t kFrameBytes = 1500;
constexpr std::uint64_t kVerifyStride = 256;

// --quick (the CI bench-regression fast mode) shrinks the stream and
// drops the best-of repetitions.
std::size_t g_frames = 16384;
int g_reps = 3;

/// The fastest FCS engine this machine can run, straight from the
/// registry's capability-aware policy (PLFSR_ENGINE overrides it,
/// PLFSR_FORCE_PORTABLE vetoes the accelerated kernels).
std::unique_ptr<Stage> make_fcs_stage() {
  return std::make_unique<FcsStage>(
      EngineRegistry::instance().best_for(crcspec::crc32_ethernet()));
}

volatile std::uint64_t g_sink;  // defeats dead-code elimination of baselines

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<std::unique_ptr<Stage>> make_stages() {
  std::vector<std::unique_ptr<Stage>> st;
  st.push_back(std::make_unique<ScrambleStage>(catalog::scrambler_80211(),
                                               kScramblerSeed));
  st.push_back(make_fcs_stage());
  st.push_back(std::make_unique<VerifySink>(
      EngineRegistry::instance().make("table", crcspec::crc32_ethernet()),
      kVerifyStride));
  return st;
}

/// Untimed functional gate: randomised frame sizes (empty and 1-byte
/// included) through the pipeline vs the serial composition.
bool validate() {
  Rng rng(7);
  std::vector<Frame> input(512);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i].id = i;
    const std::size_t len = i == 0 ? 0 : i == 1 ? 1 : rng.next_below(1519);
    input[i].bytes = rng.next_bytes(len);
  }

  // Serial reference: same stage types, fresh instances, one thread.
  FrameBatch expect(input);
  ScrambleStage ref_scramble(catalog::scrambler_80211(), kScramblerSeed);
  FcsStage ref_crc{SlicingBy8Crc(crcspec::crc32_ethernet())};
  ref_scramble.process(expect);
  ref_crc.process(expect);

  std::vector<std::unique_ptr<Stage>> st;
  st.push_back(std::make_unique<ScrambleStage>(catalog::scrambler_80211(),
                                               kScramblerSeed));
  st.push_back(make_fcs_stage());  // cross-engine: reference is slicing
  st.push_back(std::make_unique<CollectSink>());
  CollectSink* sink = static_cast<CollectSink*>(st.back().get());
  Pipeline pipe(std::move(st), {.queue_depth = 4});
  pipe.start();
  for (std::size_t i = 0; i < input.size(); i += 7) {
    FrameBatch batch;
    for (std::size_t j = i; j < std::min(i + 7, input.size()); ++j)
      batch.push_back(input[j]);
    if (!pipe.push(std::move(batch))) return false;
  }
  pipe.wait();

  const std::vector<Frame>& got = sink->frames();
  if (got.size() != expect.size()) return false;
  for (std::size_t i = 0; i < got.size(); ++i)
    if (got[i].id != expect[i].id || got[i].bytes != expect[i].bytes ||
        got[i].crc != expect[i].crc)
      return false;
  return true;
}

struct SweepPoint {
  std::size_t batch, depth;
  double mb_per_s, ratio;
  std::uint64_t producer_stalls;
};

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--quick") == 0) {
      g_frames = 2048;
      g_reps = 1;
    }
  }

  std::cout << "validation (randomised frames, pipeline vs serial "
               "composition): ";
  if (!validate()) {
    std::cout << "MISMATCH\n";
    return 1;
  }
  std::cout << "bit-exact\n\n";

  // The timed frame set: a fixed-size stream, as a MAC would emit.
  Rng rng(2026);
  std::vector<Frame> stream(g_frames);
  for (std::size_t i = 0; i < g_frames; ++i) {
    stream[i].id = i;
    stream[i].bytes = rng.next_bytes(kFrameBytes);
  }
  const double total_mb =
      static_cast<double>(g_frames) * kFrameBytes / 1e6;

  // Baseline: the best standalone CRC engine over the same frames. The
  // pipeline adds a scramble stage and the ring hand-offs on top of this,
  // so baseline throughput is the bar the acceptance ratio is against.
  double base_mbps = 0;
  std::string base_name;
  {
    // Candidates from the registry: the universal table floor, the best
    // portable software engine, and whatever the capability-aware
    // policy picks (clmul where the host allows it). Names are registry
    // keys, so the printed baseline matches the FCS stage's engine.
    const EngineRegistry& reg = EngineRegistry::instance();
    const auto time_engine = [&](const CrcEngineHandle& eng) {
      double best = 0;
      for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        std::uint64_t acc = 0;
        for (const Frame& f : stream) acc ^= eng.compute(f.bytes);
        const double s = seconds_since(t0);
        g_sink = acc;
        best = std::max(best, total_mb / s);
      }
      return best;
    };
    std::vector<CrcEngineHandle> candidates;
    candidates.push_back(reg.make("table", crcspec::crc32_ethernet()));
    candidates.push_back(reg.make("slicing8", crcspec::crc32_ethernet()));
    CrcEngineHandle policy = reg.best_for(crcspec::crc32_ethernet());
    if (policy.engine_name() != "table" &&
        policy.engine_name() != "slicing8")
      candidates.push_back(std::move(policy));
    for (const CrcEngineHandle& eng : candidates) {
      const double mbps = time_engine(eng);
      if (mbps > base_mbps) {
        base_mbps = mbps;
        base_name = eng.engine_name();
      }
    }
    std::cout << "baseline CRC engine : " << base_name << " at "
              << ReportTable::num(base_mbps, 1) << " MB/s ("
              << g_frames << " frames x " << kFrameBytes << " B)\n\n";
  }

  // Sweep batch size × queue depth. Batches are pre-built outside the
  // timed region; the clock covers start → wait (drain included). Each
  // point runs kReps times and keeps the fastest — same best-of policy as
  // the baseline, so scheduler noise hits both sides of the ratio alike.
  const int reps = g_reps;
  std::vector<SweepPoint> sweep;
  ReportTable grid({"batch", "depth", "MB/s", "vs best CRC", "prod-stalls"});
  double best_ratio = 0;
  std::size_t best_idx = 0;
  std::string best_stats;
  bool verify_ok = true;
  for (const std::size_t batch_size : {16u, 64u, 128u}) {
    for (const std::size_t depth : {4u, 16u}) {
      double mbps = 0;
      std::uint64_t producer_stalls = 0;
      std::string stats;
      for (int rep = 0; rep < reps; ++rep) {
        std::vector<FrameBatch> batches;
        for (std::size_t i = 0; i < stream.size(); i += batch_size) {
          FrameBatch b;
          for (std::size_t j = i;
               j < std::min(i + batch_size, stream.size()); ++j)
            b.push_back(stream[j]);
          batches.push_back(std::move(b));
        }

        auto stages = make_stages();
        auto* sink = static_cast<VerifySink*>(stages.back().get());
        Pipeline pipe(std::move(stages), {.queue_depth = depth});
        const auto t0 = std::chrono::steady_clock::now();
        pipe.start();
        for (FrameBatch& b : batches) pipe.push(std::move(b));
        const std::uint64_t stalls = pipe.producer_stalls();
        pipe.wait();
        const double sec = seconds_since(t0);

        if (!sink->ok() || sink->frames() != g_frames) verify_ok = false;
        if (total_mb / sec > mbps) {
          mbps = total_mb / sec;
          producer_stalls = stalls;
          std::ostringstream os;
          pipe.stats_table().print(os);
          stats = os.str();
        }
      }
      const double ratio = mbps / base_mbps;
      sweep.push_back({batch_size, depth, mbps, ratio, producer_stalls});
      grid.add_row({std::to_string(batch_size), std::to_string(depth),
                    ReportTable::num(mbps, 1), ReportTable::num(ratio, 2),
                    std::to_string(producer_stalls)});
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_idx = sweep.size() - 1;
        best_stats = stats;
      }
    }
  }

  std::cout << "pipeline sweep (scramble -> crc -> verify, "
            << "spot-check stride " << kVerifyStride << "):\n";
  grid.print(std::cout);
  std::cout << "\nper-stage metrics of the best point (batch "
            << sweep[best_idx].batch << ", depth " << sweep[best_idx].depth
            << "):\n"
            << best_stats << "\nbest pipeline/CRC ratio : "
            << ReportTable::num(best_ratio, 2)
            << (best_ratio >= 0.8 ? "  (>= 0.8 target)" : "  (below 0.8)")
            << "\n";
  if (!verify_ok)
    std::cout << "\nVERIFY SINK MISMATCH: pipelined CRCs disagree with the "
                 "reference engine\n";

  if (json) {
    std::ofstream out("BENCH_pipeline.json");
    out << "{\n  \"bench\": \"pipeline\",\n  \"frames\": " << g_frames
        << ",\n  \"frame_bytes\": " << kFrameBytes
        << ",\n  \"baseline\": {\"engine\": \"" << base_name
        << "\", \"mb_per_s\": " << ReportTable::num(base_mbps, 1)
        << "},\n  \"sweep\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const SweepPoint& p = sweep[i];
      out << "    {\"batch\": " << p.batch << ", \"depth\": " << p.depth
          << ", \"mb_per_s\": " << ReportTable::num(p.mb_per_s, 1)
          << ", \"ratio\": " << ReportTable::num(p.ratio, 3)
          << ", \"producer_stalls\": " << p.producer_stalls << "}"
          << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"best\": {\"batch\": " << sweep[best_idx].batch
        << ", \"depth\": " << sweep[best_idx].depth
        << ", \"ratio\": " << ReportTable::num(best_ratio, 3)
        << "},\n  \"verify_ok\": " << (verify_ok ? "true" : "false")
        << "\n}\n";
    std::cout << "\nwrote BENCH_pipeline.json\n";
  }
  return verify_ok ? 0 : 1;
}
