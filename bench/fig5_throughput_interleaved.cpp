// Fig. 5 — Throughput vs. message length with 32 interleaved messages
// (Kong & Parhi [13]). Interleaving amortises the per-message control
// overhead and the op1->op2 configuration switch across the batch, so the
// short-message penalty of Fig. 4 largely disappears.
#include <cstdint>
#include <algorithm>
#include <iostream>
#include <vector>

#include "crc/ethernet.hpp"
#include "dream/dream_model.hpp"
#include "lfsr/catalog.hpp"
#include "support/report.hpp"

int main() {
  using namespace plfsr;
  constexpr std::size_t kBatch = 32;
  const Gf2Poly g = catalog::crc32_ethernet();
  const std::vector<std::size_t> ms = {8, 16, 32, 64, 128};
  std::vector<DreamCrcModel> models;
  for (std::size_t m : ms) models.emplace_back(g, m);

  std::vector<std::uint64_t> lengths;
  for (std::uint64_t n = 128; n <= 65536; n *= 2) lengths.push_back(n);
  lengths.push_back(ethernet::kMinFrameBits);
  lengths.push_back(ethernet::kMaxFrameBits);
  std::sort(lengths.begin(), lengths.end());

  ReportTable table({"msg bits", "M=8 Gbps", "M=16 Gbps", "M=32 Gbps",
                     "M=64 Gbps", "M=128 Gbps", "vs single (M=128)"});
  for (std::uint64_t n : lengths) {
    std::vector<std::string> row = {std::to_string(n)};
    double inter128 = 0, single128 = 0;
    for (std::size_t i = 0; i < ms.size(); ++i) {
      const std::uint64_t padded = (n + ms[i] - 1) / ms[i] * ms[i];
      const double t = models[i].throughput_interleaved_gbps(padded, kBatch);
      row.push_back(ReportTable::num(t, 3));
      if (ms[i] == 128) {
        inter128 = t;
        single128 = models[i].throughput_single_gbps(padded);
      }
    }
    row.push_back("x" + ReportTable::num(inter128 / single128, 2));
    table.add_row(std::move(row));
  }

  std::cout << "Fig. 5 — CRC-32 throughput vs. message length, " << kBatch
            << " interleaved messages, DREAM @ 200 MHz\n\n";
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
