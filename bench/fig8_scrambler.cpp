// Fig. 8 — 802.11e scrambler throughput vs. look-ahead factor and block
// length. A single PiCoGA operation (no context switch), so short blocks
// only pay control overhead + pipeline fill; M = 128 reaches the maximum
// output bandwidth of the array (~25 Gbit/s), the paper's closing result.
#include <cstdint>
#include <iostream>
#include <vector>

#include "dream/scrambler_model.hpp"
#include "lfsr/catalog.hpp"
#include "support/report.hpp"

int main() {
  using namespace plfsr;
  const Gf2Poly g = catalog::scrambler_80211();
  const std::vector<std::size_t> ms = {8, 16, 32, 64, 128};
  std::vector<DreamScramblerModel> models;
  for (std::size_t m : ms) models.emplace_back(g, m);

  std::vector<std::uint64_t> lengths;
  for (std::uint64_t n = 64; n <= 65536; n *= 4) lengths.push_back(n);

  ReportTable table({"block bits", "M=8 Gbps", "M=16 Gbps", "M=32 Gbps",
                     "M=64 Gbps", "M=128 Gbps"});
  for (std::uint64_t n : lengths) {
    std::vector<std::string> row = {std::to_string(n)};
    for (std::size_t i = 0; i < ms.size(); ++i) {
      const std::uint64_t padded = (n + ms[i] - 1) / ms[i] * ms[i];
      row.push_back(ReportTable::num(models[i].throughput_gbps(padded), 3));
    }
    table.add_row(std::move(row));
  }

  std::cout << "Fig. 8 — 802.11e scrambler (x^7+x^4+1) throughput on DREAM, "
               "single PiCoGA operation\n\n";
  table.print(std::cout);
  std::cout << "\nPeak at M = 128: "
            << ReportTable::num(models.back().peak_gbps(), 1)
            << " Gbit/s — the maximum output bandwidth achievable "
               "(paper: ~25 Gbit/s)\n\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
