// Fig. 8 — 802.11e scrambler throughput vs. look-ahead factor and block
// length. A single PiCoGA operation (no context switch), so short blocks
// only pay control overhead + pipeline fill; M = 128 reaches the maximum
// output bandwidth of the array (~25 Gbit/s), the paper's closing result.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <vector>

#include "dream/scrambler_model.hpp"
#include "lfsr/catalog.hpp"
#include "scrambler/block_scrambler.hpp"
#include "support/report.hpp"
#include "support/rng.hpp"

namespace {

volatile std::uint8_t g_sink;

/// Measured Gbit/s of one scramble engine over `n` bytes (best of 3).
template <typename Fn>
double measured_gbps(std::size_t n, Fn&& scramble) {
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    constexpr int kIters = 64;
    for (int i = 0; i < kIters; ++i) scramble();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best = std::max(best, 8.0 * kIters * n / s / 1e9);
  }
  return best;
}

}  // namespace

int main() {
  using namespace plfsr;
  const Gf2Poly g = catalog::scrambler_80211();
  const std::vector<std::size_t> ms = {8, 16, 32, 64, 128};
  std::vector<DreamScramblerModel> models;
  for (std::size_t m : ms) models.emplace_back(g, m);

  std::vector<std::uint64_t> lengths;
  for (std::uint64_t n = 64; n <= 65536; n *= 4) lengths.push_back(n);

  ReportTable table({"block bits", "M=8 Gbps", "M=16 Gbps", "M=32 Gbps",
                     "M=64 Gbps", "M=128 Gbps"});
  for (std::uint64_t n : lengths) {
    std::vector<std::string> row = {std::to_string(n)};
    for (std::size_t i = 0; i < ms.size(); ++i) {
      const std::uint64_t padded = (n + ms[i] - 1) / ms[i] * ms[i];
      row.push_back(ReportTable::num(models[i].throughput_gbps(padded), 3));
    }
    table.add_row(std::move(row));
  }

  std::cout << "Fig. 8 — 802.11e scrambler (x^7+x^4+1) throughput on DREAM, "
               "single PiCoGA operation\n\n";
  table.print(std::cout);
  std::cout << "\nPeak at M = 128: "
            << ReportTable::num(models.back().peak_gbps(), 1)
            << " Gbit/s — the maximum output bandwidth achievable "
               "(paper: ~25 Gbit/s)\n";

  // Host counterpart of the same math: the word-parallel BlockScrambler
  // is the M = 64 column of the model executed as mask-parity gathers on
  // this machine, and ParallelScramble shards the message over cores.
  {
    constexpr std::size_t kBytes = 64 * 1024;
    Rng rng(8);
    std::vector<std::uint8_t> buf = rng.next_bytes(kBytes);
    BlockScrambler block(g, 0x5D);
    const double block_gbps = measured_gbps(kBytes, [&] {
      block.seek(0);
      block.process(buf);
      g_sink = buf[0];
    });
    ParallelScramble par(g, 0x5D, 4);
    const double par_gbps = measured_gbps(kBytes, [&] {
      par.process(buf);
      g_sink = buf[0];
    });
    std::cout << "\nMeasured on this host (64 KiB blocks, M = 64 word "
                 "form):\n  BlockScrambler    "
              << ReportTable::num(block_gbps, 2)
              << " Gbit/s\n  ParallelScramble  "
              << ReportTable::num(par_gbps, 2) << " Gbit/s (4 shards)\n";
  }

  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
