// google-benchmark microbenchmarks of the GF(2) kernels the whole stack
// rests on: matrix multiply/power/inverse at CRC-32 scale and the greedy
// common-pattern mapper at the paper's largest configuration.
#include <benchmark/benchmark.h>

#include "gf2/gf2_matrix.hpp"
#include "lfsr/catalog.hpp"
#include "lfsr/derby.hpp"
#include "lfsr/linear_system.hpp"
#include "lfsr/lookahead.hpp"
#include "mapper/matrix_mapper.hpp"
#include "support/rng.hpp"

namespace {

using namespace plfsr;

Gf2Matrix random_square(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Gf2Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) m.set(r, c, rng.next_bit());
  return m;
}

void BM_MatrixMultiply(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Gf2Matrix a = random_square(n, 1), b = random_square(n, 2);
  for (auto _ : state) benchmark::DoNotOptimize(a * b);
}
BENCHMARK(BM_MatrixMultiply)->Arg(32)->Arg(64)->Arg(128);

void BM_MatrixPower(benchmark::State& state) {
  const LinearSystem sys = make_crc_system(catalog::crc32_ethernet());
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sys.a.pow(static_cast<std::uint64_t>(state.range(0))));
}
BENCHMARK(BM_MatrixPower)->Arg(128)->Arg(1 << 20);

void BM_MatrixInverse(benchmark::State& state) {
  // The Derby T for CRC-32 at M=64 — the inversion the builder performs.
  const LinearSystem sys = make_crc_system(catalog::crc32_ethernet());
  const LookAhead la(sys, 64);
  const DerbyTransform d(la);
  for (auto _ : state) benchmark::DoNotOptimize(d.t().inverse());
}
BENCHMARK(BM_MatrixInverse);

void BM_DerbyConstruction(benchmark::State& state) {
  const LinearSystem sys = make_crc_system(catalog::crc32_ethernet());
  const LookAhead la(sys, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(DerbyTransform(la));
}
BENCHMARK(BM_DerbyConstruction)->Arg(32)->Arg(128);

void BM_MapBmtWithCse(benchmark::State& state) {
  const LinearSystem sys = make_crc_system(catalog::crc32_ethernet());
  const LookAhead la(sys, static_cast<std::size_t>(state.range(0)));
  const DerbyTransform d(la);
  for (auto _ : state) {
    MapperStats stats;
    benchmark::DoNotOptimize(map_matrix(d.bmt(), {}, &stats));
  }
}
BENCHMARK(BM_MapBmtWithCse)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
