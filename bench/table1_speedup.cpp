// Table 1 — Speed-up of the DREAM CRC-32 implementation vs. the "fast
// software CRC" (byte-table, Albertengo & Sisto style [8]) on a RISC
// processor running at the same 200 MHz clock.
//
// Rows: message length (bits). Columns: look-ahead factor M. Paper shape:
// speed-up grows with both M and message length; two orders of magnitude
// at M = 128 on Ethernet-sized messages.
#include <cstdint>
#include <iostream>
#include <vector>

#include "dream/dream_model.hpp"
#include "lfsr/catalog.hpp"
#include "support/report.hpp"

int main() {
  using namespace plfsr;
  const Gf2Poly g = catalog::crc32_ethernet();
  const std::vector<std::size_t> ms = {32, 64, 128};
  const std::vector<std::uint64_t> lengths = {128,  368,   512,  1024,
                                              4096, 12144, 65536};
  const RiscModel risc;

  std::vector<DreamCrcModel> dreams;
  for (std::size_t m : ms) dreams.emplace_back(g, m);

  ReportTable table({"msg bits", "RISC cycles", "M=32", "M=64", "M=128"});
  for (std::uint64_t n : lengths) {
    std::vector<std::string> row = {std::to_string(n),
                                    std::to_string(risc.crc_cycles_table(n))};
    for (std::size_t i = 0; i < ms.size(); ++i) {
      const std::uint64_t padded = (n + ms[i] - 1) / ms[i] * ms[i];
      const double speedup =
          static_cast<double>(risc.crc_cycles_table(n)) /
          static_cast<double>(dreams[i].cycles_single(padded));
      row.push_back(ReportTable::num(speedup, 1));
    }
    table.add_row(std::move(row));
  }

  std::cout << "Table 1 — DREAM speed-up vs. fast software CRC on a 200 MHz "
               "RISC (byte-table baseline)\n\n";
  table.print(std::cout);

  std::cout << "\nReference points:\n"
            << "  RISC table CRC sustained: "
            << ReportTable::num(risc.throughput_table_gbps(1 << 20), 3)
            << " Gbit/s\n"
            << "  DREAM M=128 sustained:    "
            << ReportTable::num(
                   dreams.back().throughput_single_gbps(1 << 20), 2)
            << " Gbit/s\n"
            << "  (paper: DREAM reaches bandwidths ~3 orders of magnitude\n"
            << "   beyond bit-serial software; vs. the byte-table baseline\n"
            << "   the long-message speed-up is ~"
            << ReportTable::num(
                   static_cast<double>(risc.crc_cycles_table(1 << 20)) /
                       static_cast<double>(
                           dreams.back().cycles_single(1 << 20)),
                   0)
            << "x)\n\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
