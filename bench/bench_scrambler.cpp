// Scrambler bench: the word-parallel BlockScrambler and its sharded form
// against the bit-serial AdditiveScrambler and the M-level block-form
// ParallelScrambler on a 64 KiB payload — the software replay of the
// paper's Fig. 8 comparison (scrambler throughput, serial vs block form),
// with the host's word width standing in for the PiCoGA row.
//
// The run starts with an untimed correctness gate: BlockScrambler and
// ParallelScramble are checked bit-exactly against AdditiveScrambler over
// every catalogue scrambler polynomial, several seeds and all tail-shape
// length classes; any mismatch makes the process exit nonzero. The timed
// section then reports MB/s for each engine and the block/serial speedup
// (the acceptance bar is >= 20x; failing it also exits nonzero).
//
//   $ ./bench_scrambler [--quick] [--json]   # --json writes BENCH_scrambler.json
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lfsr/catalog.hpp"
#include "scrambler/block_scrambler.hpp"
#include "scrambler/scrambler.hpp"
#include "support/bitstream.hpp"
#include "support/report.hpp"
#include "support/rng.hpp"

namespace {

using namespace plfsr;

constexpr std::size_t kBufBytes = 64 * 1024;
constexpr std::uint64_t kSeed = 0x5D;  // 802.11-style per-PPDU seed

// --quick (the CI bench-regression fast mode) drops repetitions and
// shrinks the iteration counts; throughputs stay comparable, only the
// noise floor rises.
int g_reps = 3;
std::size_t g_word_iters = 400;  // per-rep passes for the word-level engines

volatile std::uint64_t g_sink;  // defeats dead-code elimination

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::uint64_t seed_for(const Gf2Poly& g, Rng& rng) {
  const std::uint64_t mask =
      g.degree() >= 64 ? ~std::uint64_t{0} : (1ull << g.degree()) - 1;
  std::uint64_t s;
  do {
    s = rng.next_u64() & mask;
  } while (s == 0);
  return s;
}

/// Untimed gate: word-parallel engines vs the bit-serial reference across
/// the whole scrambler catalogue, seeds and tail-shape length classes.
bool validate() {
  Rng rng(41);
  for (const auto& [name, g] : catalog::all_scrambler_polys()) {
    for (int trial = 0; trial < 3; ++trial) {
      const std::uint64_t seed = seed_for(g, rng);
      BlockScrambler scr(g, seed);
      for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{8},
                                  std::size_t{63}, std::size_t{64},
                                  std::size_t{65}, std::size_t{777},
                                  std::size_t{4096}}) {
        const std::vector<std::uint8_t> orig = rng.next_bytes(n);
        AdditiveScrambler ref(g, seed);
        const std::vector<std::uint8_t> want =
            ref.process(BitStream::from_bytes_lsb_first(orig))
                .to_bytes_lsb_first();
        std::vector<std::uint8_t> got = orig;
        scr.seek(0);
        scr.process(got);
        if (got != want) {
          std::cout << "MISMATCH: BlockScrambler " << name << " seed=0x"
                    << std::hex << seed << std::dec << " n=" << n << "\n";
          return false;
        }
        for (const std::size_t shards : {2u, 4u}) {
          // cap_to_host off: the correctness gate must exercise the real
          // multi-shard split even on a single-core runner.
          ParallelScramble par(g, seed, shards, /*min_shard_bytes=*/1,
                               /*cap_to_host=*/false);
          std::vector<std::uint8_t> pgot = orig;
          par.process(pgot);
          if (pgot != want) {
            std::cout << "MISMATCH: ParallelScramble " << name
                      << " shards=" << shards << " n=" << n << "\n";
            return false;
          }
        }
      }
    }
  }
  return true;
}

/// Best-of-g_reps wall-clock MB/s of `fn`, which must process
/// `bytes_per_call` bytes each call and fold something into g_sink.
template <typename Fn>
double time_mbps(std::size_t iters, std::size_t bytes_per_call, Fn&& fn) {
  double best = 0;
  for (int rep = 0; rep < g_reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double s = seconds_since(t0);
    const double mb =
        static_cast<double>(iters) * bytes_per_call / 1e6;
    best = std::max(best, mb / s);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--quick") == 0) {
      g_reps = 1;
      g_word_iters = 64;
    }
  }

  std::cout << "correctness (catalogue polys x seeds x lengths, word-"
               "parallel vs bit-serial): ";
  if (!validate()) return 1;
  std::cout << "bit-exact\n\n";

  const Gf2Poly g = catalog::scrambler_80211();
  Rng rng(2026);
  std::vector<std::uint8_t> buf = rng.next_bytes(kBufBytes);

  ReportTable table({"engine", "MB/s", "vs serial"});

  // Bit-serial reference: one LFSR step per keystream bit.
  const double serial_mbps = time_mbps(1, kBufBytes, [&] {
    AdditiveScrambler ref(g, kSeed);
    const BitStream s = ref.keystream(8 * kBufBytes);
    g_sink = s.size() + s.get(0);
  });
  table.add_row({"serial (AdditiveScrambler)", ReportTable::num(serial_mbps, 1),
                 "1.00"});

  // M = 64 block form over BitStream — the paper's look-ahead math, still
  // paying bit-granular storage. Midpoint between serial and word level.
  const double mlevel_mbps = time_mbps(1, kBufBytes, [&] {
    ParallelScrambler par(g, 64, kSeed);
    const BitStream s = par.process(BitStream::from_bytes_lsb_first(buf));
    g_sink = s.size() + s.get(0);
  });
  table.add_row({"M=64 block (ParallelScrambler)",
                 ReportTable::num(mlevel_mbps, 1),
                 ReportTable::num(mlevel_mbps / serial_mbps, 1)});

  // Word-parallel engine: keystream generation and in-place scramble.
  BlockScrambler block(g, kSeed);
  std::vector<std::uint8_t> ks(kBufBytes);
  const double block_ks_mbps = time_mbps(g_word_iters, kBufBytes, [&] {
    block.seek(0);
    block.keystream_into(ks.data(), ks.size());
    g_sink = ks[0];
  });
  table.add_row({"BlockScrambler keystream",
                 ReportTable::num(block_ks_mbps, 1),
                 ReportTable::num(block_ks_mbps / serial_mbps, 1)});

  const double block_mbps = time_mbps(g_word_iters, kBufBytes, [&] {
    block.seek(0);
    block.process(buf);
    g_sink = buf[0];
  });
  table.add_row({"BlockScrambler scramble", ReportTable::num(block_mbps, 1),
                 ReportTable::num(block_mbps / serial_mbps, 1)});

  // Sharded scramble: seek makes the slices independent; scaling shows
  // only on multi-core hosts, but correctness and overhead are visible
  // everywhere.
  struct ShardPoint {
    std::size_t shards;
    double mbps;
  };
  std::vector<ShardPoint> par_points;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    ParallelScramble par(g, kSeed, shards);
    const double mbps = time_mbps(g_word_iters, kBufBytes, [&] {
      par.process(buf);
      g_sink = buf[0];
    });
    par_points.push_back({shards, mbps});
    table.add_row({"ParallelScramble x" + std::to_string(shards),
                   ReportTable::num(mbps, 1),
                   ReportTable::num(mbps / serial_mbps, 1)});
  }

  std::cout << "scramble throughput, " << kBufBytes / 1024
            << " KiB payload (" << g_reps << " rep best-of):\n";
  table.print(std::cout);

  const double speedup = block_mbps / serial_mbps;
  std::cout << "\nblock/serial speedup : " << ReportTable::num(speedup, 1)
            << "x " << (speedup >= 20 ? "(>= 20x target)" : "(BELOW 20x target)")
            << "\n";

  // Shard-scaling regression gate: asking for more shards must never
  // scale backwards. With the hardware cap and the per-shard slice floor
  // the engine falls back to fewer (or one) shard(s) when splitting
  // cannot pay, so every point must stay within noise of the 1-shard
  // rate (the 0.85 factor absorbs run-to-run jitter; the regression this
  // pins was a 2.1x slowdown at 8 shards).
  bool shards_ok = true;
  for (const ShardPoint& p : par_points) {
    if (p.mbps < 0.85 * par_points[0].mbps) {
      shards_ok = false;
      std::cout << "SHARD REGRESSION: x" << p.shards << " = "
                << ReportTable::num(p.mbps, 1) << " MB/s < 0.85 * x1 = "
                << ReportTable::num(0.85 * par_points[0].mbps, 1)
                << " MB/s\n";
    }
  }
  if (shards_ok)
    std::cout << "shard scaling        : monotone within noise (>= 0.85x "
                 "the 1-shard rate at every point)\n";

  if (json) {
    std::ofstream out("BENCH_scrambler.json");
    out << "{\n  \"bench\": \"scrambler\",\n  \"buf_bytes\": " << kBufBytes
        << ",\n  \"serial_mb_per_s\": " << ReportTable::num(serial_mbps, 1)
        << ",\n  \"mlevel_mb_per_s\": " << ReportTable::num(mlevel_mbps, 1)
        << ",\n  \"block_keystream_mb_per_s\": "
        << ReportTable::num(block_ks_mbps, 1)
        << ",\n  \"block_mb_per_s\": " << ReportTable::num(block_mbps, 1)
        << ",\n  \"speedup_vs_serial\": " << ReportTable::num(speedup, 1)
        << ",\n  \"parallel\": [\n";
    for (std::size_t i = 0; i < par_points.size(); ++i)
      out << "    {\"shards\": " << par_points[i].shards
          << ", \"mb_per_s\": " << ReportTable::num(par_points[i].mbps, 1)
          << "}" << (i + 1 < par_points.size() ? "," : "") << "\n";
    out << "  ],\n  \"correctness_ok\": true\n}\n";
    std::cout << "wrote BENCH_scrambler.json\n";
  }
  return (speedup >= 20 && shards_ok) ? 0 : 1;
}
