#include "mapper/xor_netlist.hpp"

#include <gtest/gtest.h>

namespace plfsr {
namespace {

TEST(XorNetlist, SingleGate) {
  XorNetlist nl(3);
  const SignalId g = nl.add_node({0, 1, 2});
  nl.add_output(g);
  EXPECT_EQ(nl.node_count(), 1u);
  EXPECT_EQ(nl.depth(), 1u);
  EXPECT_EQ(nl.evaluate(Gf2Vec::from_string("110")).to_string(), "0");
  EXPECT_EQ(nl.evaluate(Gf2Vec::from_string("100")).to_string(), "1");
}

TEST(XorNetlist, PassThroughOutput) {
  XorNetlist nl(2);
  nl.add_output(1);
  EXPECT_EQ(nl.depth(), 0u);
  EXPECT_EQ(nl.evaluate(Gf2Vec::from_string("01")).to_string(), "1");
}

TEST(XorNetlist, ZeroOutput) {
  XorNetlist nl(2);
  nl.add_output(kZeroSignal);
  EXPECT_EQ(nl.evaluate(Gf2Vec::from_string("11")).to_string(), "0");
}

TEST(XorNetlist, TwoLevelDepth) {
  XorNetlist nl(4);
  const SignalId a = nl.add_node({0, 1});
  const SignalId b = nl.add_node({2, 3});
  const SignalId c = nl.add_node({a, b});
  nl.add_output(c);
  EXPECT_EQ(nl.depth(), 2u);
  EXPECT_EQ(nl.level_histogram(), (std::vector<std::size_t>{2, 1}));
}

TEST(XorNetlist, FaninLimitEnforced) {
  XorNetlist nl(20, 10);
  std::vector<SignalId> eleven;
  for (SignalId i = 0; i < 11; ++i) eleven.push_back(i);
  EXPECT_THROW(nl.add_node(eleven), std::invalid_argument);
  EXPECT_THROW(nl.add_node({}), std::invalid_argument);
}

TEST(XorNetlist, ForwardReferenceRejected) {
  XorNetlist nl(2);
  EXPECT_THROW(nl.add_node({0, 5}), std::invalid_argument);
  EXPECT_THROW(nl.add_output(7), std::invalid_argument);
}

TEST(XorNetlist, DepthFromMask) {
  // inputs: 0 = state, 1..2 = data. Node A = data-only; node B mixes.
  XorNetlist nl(3);
  const SignalId a = nl.add_node({1, 2});   // depth 1, state-free
  const SignalId b = nl.add_node({0, a});   // state depth 1
  const SignalId c = nl.add_node({b, a});   // state depth 2
  nl.add_output(c);
  nl.add_output(a);
  EXPECT_EQ(nl.depth_from({true, false, false}), 2u);
  // Restricting to the second output (state-free) gives 0.
  EXPECT_EQ(nl.depth_from({true, false, false}, 1, 2), 0u);
  EXPECT_THROW(nl.depth_from({true}), std::invalid_argument);
}

TEST(XorNetlist, EvaluateChecksArity) {
  XorNetlist nl(3);
  nl.add_output(0);
  EXPECT_THROW(nl.evaluate(Gf2Vec(2)), std::invalid_argument);
}

}  // namespace
}  // namespace plfsr
