#include "gf2/gf2_vec.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace plfsr {
namespace {

TEST(Gf2Vec, ZeroInitialised) {
  const Gf2Vec v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_TRUE(v.is_zero());
  EXPECT_EQ(v.weight(), 0u);
}

TEST(Gf2Vec, UnitVector) {
  const Gf2Vec v = Gf2Vec::unit(8, 3);
  EXPECT_EQ(v.to_string(), "00010000");
  EXPECT_EQ(v.weight(), 1u);
  EXPECT_THROW(Gf2Vec::unit(8, 8), std::out_of_range);
}

TEST(Gf2Vec, AdditionIsXor) {
  const Gf2Vec a = Gf2Vec::from_string("1100");
  const Gf2Vec b = Gf2Vec::from_string("1010");
  EXPECT_EQ((a + b).to_string(), "0110");
}

TEST(Gf2Vec, AdditionSelfInverse) {
  Rng rng(7);
  const Gf2Vec a = Gf2Vec::from_word(64, rng.next_u64());
  EXPECT_TRUE((a + a).is_zero());
}

TEST(Gf2Vec, AdditionDimensionMismatchThrows) {
  EXPECT_THROW(Gf2Vec(3) + Gf2Vec(4), std::invalid_argument);
}

TEST(Gf2Vec, DotProduct) {
  const Gf2Vec a = Gf2Vec::from_string("1101");
  const Gf2Vec b = Gf2Vec::from_string("1011");
  // overlap at positions 0 and 3 -> parity 0
  EXPECT_FALSE(a.dot(b));
  const Gf2Vec c = Gf2Vec::from_string("1000");
  EXPECT_TRUE(a.dot(c));
}

TEST(Gf2Vec, WordRoundTrip) {
  const std::uint64_t w = 0xDEADBEEFCAFEF00DULL;
  EXPECT_EQ(Gf2Vec::from_word(64, w).to_word(), w);
  // Narrow vectors truncate high bits.
  EXPECT_EQ(Gf2Vec::from_word(8, w).to_word(), w & 0xFF);
}

TEST(Gf2Vec, WeightCountsAcrossWords) {
  Gf2Vec v(130);
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_EQ(v.weight(), 3u);
}

TEST(Gf2Vec, FromStringRejectsJunk) {
  EXPECT_THROW(Gf2Vec::from_string("012"), std::invalid_argument);
}

}  // namespace
}  // namespace plfsr
