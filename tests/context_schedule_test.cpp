#include "dream/context_schedule.hpp"

#include <gtest/gtest.h>

namespace plfsr {
namespace {

ContextScheduler four_kernel_cache() {
  ContextScheduler s(4, 2);
  s.register_kernel({"crc_op1", 960});
  s.register_kernel({"crc_op2", 384});
  s.register_kernel({"scrambler", 576});
  s.register_kernel({"crc16", 448});
  s.register_kernel({"crc24", 768});
  return s;
}

TEST(ContextScheduler, ColdStartPaysReload) {
  auto s = four_kernel_cache();
  EXPECT_EQ(s.activate("crc_op1"), 2u + 960u);
  EXPECT_EQ(s.reloads(), 1u);
}

TEST(ContextScheduler, ReactivatingActiveIsFree) {
  auto s = four_kernel_cache();
  s.activate("crc_op1");
  EXPECT_EQ(s.activate("crc_op1"), 0u);
}

TEST(ContextScheduler, CachedSwitchIsTwoCycles) {
  auto s = four_kernel_cache();
  s.activate("crc_op1");
  s.activate("crc_op2");
  // Back to op1: cached, just the 2-cycle layer exchange.
  EXPECT_EQ(s.activate("crc_op1"), 2u);
  EXPECT_EQ(s.hits(), 1u);
}

TEST(ContextScheduler, FourKernelsFitWithoutThrashing) {
  // The paper's working set — CRC op1/op2 + scrambler + one more — fits
  // the 4-context cache: after warm-up, no activation ever reloads.
  auto s = four_kernel_cache();
  const std::vector<std::string> warm = {"crc_op1", "crc_op2", "scrambler",
                                         "crc16"};
  s.run_sequence(warm);
  const std::uint64_t reloads_after_warmup = s.reloads();
  for (int round = 0; round < 10; ++round)
    s.run_sequence({"crc_op1", "crc_op2", "scrambler", "crc16"});
  EXPECT_EQ(s.reloads(), reloads_after_warmup);
}

TEST(ContextScheduler, FifthKernelThrashesLru) {
  auto s = four_kernel_cache();
  const std::vector<std::string> rotation = {"crc_op1", "crc_op2",
                                             "scrambler", "crc16", "crc24"};
  s.run_sequence(rotation);   // 5 cold loads
  const std::uint64_t before = s.reloads();
  s.run_sequence(rotation);   // LRU rotation of 5 over 4 slots: all miss
  EXPECT_EQ(s.reloads(), before + 5);
}

TEST(ContextScheduler, UnknownKernelThrows) {
  auto s = four_kernel_cache();
  EXPECT_THROW(s.activate("fft"), std::invalid_argument);
}

TEST(ContextScheduler, TotalsAccumulate) {
  auto s = four_kernel_cache();
  const std::uint64_t c =
      s.run_sequence({"crc_op1", "crc_op2", "crc_op1", "crc_op2"});
  EXPECT_EQ(c, s.total_cycles());
  EXPECT_EQ(c, (2u + 960) + (2u + 384) + 2u + 2u);
}

TEST(ContextScheduler, SingleContextAlwaysReloads) {
  ContextScheduler s(1, 2);
  s.register_kernel({"a", 100});
  s.register_kernel({"b", 100});
  s.run_sequence({"a", "b", "a", "b"});
  EXPECT_EQ(s.reloads(), 4u);
  EXPECT_EQ(s.hits(), 0u);
}

}  // namespace
}  // namespace plfsr
