// Sharded parallel CRC: algebraic laws of the GF(2) combine operator
// (identity, associativity, agreement with the look-ahead state advance)
// and bit-exact equivalence of the ParallelCrc engine against the serial
// byte-wise engines for every catalogue spec, shard count and length
// regime — including the empty message and inputs shorter than the shard
// count.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "crc/clmul_crc.hpp"
#include "crc/crc_combine.hpp"
#include "crc/gfmac_crc.hpp"
#include "crc/matrix_crc.hpp"
#include "crc/parallel_crc.hpp"
#include "crc/serial_crc.hpp"
#include "crc/slicing_crc.hpp"
#include "crc/table_crc.hpp"
#include "crc/wide_table_crc.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

/// A CRC'd message segment in combine-operator terms: the raw register it
/// produces when absorbed from the zero register, plus its byte length.
struct Segment {
  std::uint64_t raw;
  std::uint64_t len;
};

Segment make_segment(const TableCrc& t,
                     std::span<const std::uint8_t> bytes) {
  return {t.raw_register(t.absorb(t.state_from_raw(0), bytes)),
          bytes.size()};
}

Segment join(const CrcCombine& c, const Segment& a, const Segment& b) {
  return {c.combine(a.raw, b.raw, b.len), a.len + b.len};
}

TEST(CrcCombine, AdvanceAgreesWithMatrixCrcStateAdvance) {
  // A^n·raw == the look-ahead engine (and the serial register) clocked
  // over n zero bits — the combine operator and the paper's M-bit
  // look-ahead are the same algebra at different granularity.
  for (const CrcSpec& s : crcspec::all()) {
    const CrcCombine c(s);
    const MatrixCrc m(s, 8);
    Rng rng(100);
    for (std::size_t n : {0u, 1u, 7u, 8u, 63u, 64u, 65u, 1000u, 4096u}) {
      const std::uint64_t raw = rng.next_u64() & s.mask();
      const BitStream zeros(n);
      EXPECT_EQ(c.advance_bits(raw, n), m.raw_bits(zeros, raw))
          << s.name << " n=" << n;
      EXPECT_EQ(c.advance_bits(raw, n),
                serial_crc_bits(zeros, s.width, s.poly, raw))
          << s.name << " n=" << n;
    }
  }
}

TEST(CrcCombine, EmptySegmentIsIdentity) {
  for (const CrcSpec& s : crcspec::all()) {
    const CrcCombine c(s);
    Rng rng(200);
    for (int i = 0; i < 8; ++i) {
      const std::uint64_t raw = rng.next_u64() & s.mask();
      EXPECT_EQ(c.advance(raw, 0), raw) << s.name;
      EXPECT_EQ(c.combine(raw, 0, 0), raw) << s.name;
    }
  }
}

TEST(CrcCombine, CombineIsAssociative) {
  Rng rng(300);
  for (const CrcSpec& s : crcspec::all()) {
    const CrcCombine c(s);
    const TableCrc t(s);
    for (int trial = 0; trial < 4; ++trial) {
      const auto ab = rng.next_bytes(rng.next_below(200));
      const auto bb = rng.next_bytes(rng.next_below(200));
      const auto cb = rng.next_bytes(rng.next_below(200));
      const Segment sa = make_segment(t, ab);
      const Segment sb = make_segment(t, bb);
      const Segment sc = make_segment(t, cb);
      const Segment left = join(c, join(c, sa, sb), sc);
      const Segment right = join(c, sa, join(c, sb, sc));
      EXPECT_EQ(left.raw, right.raw) << s.name;
      EXPECT_EQ(left.len, right.len) << s.name;
      // And both equal the segment of the actual concatenation.
      std::vector<std::uint8_t> cat(ab);
      cat.insert(cat.end(), bb.begin(), bb.end());
      cat.insert(cat.end(), cb.begin(), cb.end());
      EXPECT_EQ(left.raw, make_segment(t, cat).raw) << s.name;
    }
  }
}

TEST(CrcCombine, CombineFromLiveInitMatchesSerialConcatenation) {
  // raw(A||B, init) == A^{|B|}·raw(A, init) + raw(B, 0) — the exact
  // decomposition ParallelCrc::absorb folds with.
  Rng rng(400);
  for (const CrcSpec& s : crcspec::all()) {
    const CrcCombine c(s);
    const TableCrc t(s);
    const auto a = rng.next_bytes(57);
    const auto b = rng.next_bytes(131);
    const std::uint64_t raw_a =
        t.raw_register(t.absorb(t.initial_state(), a));
    const std::uint64_t raw_b = make_segment(t, b).raw;
    std::vector<std::uint8_t> cat(a);
    cat.insert(cat.end(), b.begin(), b.end());
    const std::uint64_t expect =
        t.raw_register(t.absorb(t.initial_state(), cat));
    EXPECT_EQ(c.combine(raw_a, raw_b, b.size()), expect) << s.name;
  }
}

TEST(ParallelCrc, RejectsZeroShards) {
  EXPECT_THROW(
      ParallelCrc(TableCrc(crcspec::crc32_ethernet()), 0),
      std::invalid_argument);
}

/// Shard-count sweep: the acceptance grid of the parallel engine.
class ParallelShards : public ::testing::TestWithParam<int> {};

TEST_P(ParallelShards, MatchesSerialForEverySpecAndLength) {
  const std::size_t shards = static_cast<std::size_t>(GetParam());
  Rng rng(500 + shards);
  for (const CrcSpec& s : crcspec::all()) {
    const TableCrc ref(s);
    // min_shard_bytes = 1 forces the sharded fold whenever length
    // permits; lengths below the shard count take the serial fallback.
    const ParallelCrc par(TableCrc(s), shards,
                                    /*min_shard_bytes=*/1);
    std::vector<std::size_t> lengths = {0, 1, 2, 3, 7, 8, 9, 63, 256, 1000};
    if (shards > 1) {
      lengths.push_back(shards - 1);  // sub-shard-count input
      lengths.push_back(shards);
      lengths.push_back(shards + 1);
    }
    for (int i = 0; i < 3; ++i)
      lengths.push_back(rng.next_below(64 * 1024 + 1));
    for (std::size_t len : lengths) {
      const auto msg = rng.next_bytes(len);
      EXPECT_EQ(par.compute(msg), ref.compute(msg))
          << s.name << " shards=" << shards << " len=" << len;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ParallelShards,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelCrc, WorksOverEveryWrappedEngineKind) {
  Rng rng(600);
  const auto msg = rng.next_bytes(40000);
  {
    const CrcSpec s = crcspec::crc32_ethernet();
    const std::uint64_t expect = serial_crc(s, msg);
    EXPECT_EQ(ParallelCrc(SlicingCrc<4>(s), 4, 1).compute(msg),
              expect);
    EXPECT_EQ(ParallelCrc(SlicingCrc<8>(s), 4, 1).compute(msg),
              expect);
    EXPECT_EQ(
        ParallelCrc(WideTableCrc(s, 8), 4, 1).compute(msg),
        expect);
    // The CLMUL folding engine shards like any byte-wise engine, under
    // either kernel.
    EXPECT_EQ(ParallelCrc(ClmulCrc(s), 4, 1).compute(msg), expect);
    EXPECT_EQ(ParallelCrc(ClmulCrc(s, ClmulKernel::kPortable), 4, 1)
                  .compute(msg),
              expect);
  }
  {
    // Non-reflected spec through the WideTableCrc and ClmulCrc wrappers.
    const CrcSpec s = crcspec::crc32_mpeg2();
    EXPECT_EQ(
        ParallelCrc(WideTableCrc(s, 8), 4, 1).compute(msg),
        serial_crc(s, msg));
    EXPECT_EQ(ParallelCrc(ClmulCrc(s), 4, 1).compute(msg),
              serial_crc(s, msg));
  }
  {
    // 64-bit reflected spec: shard folding with a full-width register.
    const CrcSpec s = crcspec::crc64_xz();
    EXPECT_EQ(ParallelCrc(SlicingCrc<8>(s), 8, 1).compute(msg),
              serial_crc(s, msg));
  }
  {
    // The bit-granular engines gained the byte-streaming interface, so
    // they shard too (small input — their inner loops are slow).
    const CrcSpec s = crcspec::crc16_ccitt_false();
    const auto small = Rng(601).next_bytes(700);
    const std::uint64_t expect = serial_crc(s, small);
    EXPECT_EQ(
        ParallelCrc(MatrixCrc(s, 32), 4, 1).compute(small),
        expect);
    EXPECT_EQ(ParallelCrc(GfmacCrc(s, 32), 4, 1).compute(small),
              expect);
  }
}

TEST(ParallelCrc, StreamingAbsorbMatchesOneShot) {
  const CrcSpec s = crcspec::crc32_ethernet();
  const ParallelCrc par(TableCrc(s), 4, /*min_shard_bytes=*/1);
  const TableCrc ref(s);
  Rng rng(700);
  const auto msg = rng.next_bytes(10000);
  std::uint64_t st = par.initial_state();
  // Chunk boundaries chosen so some chunks shard and some fall back.
  const std::size_t cuts[] = {0, 3, 4096, 4100, 10000};
  for (std::size_t i = 0; i + 1 < std::size(cuts); ++i)
    st = par.absorb(st, {msg.data() + cuts[i], cuts[i + 1] - cuts[i]});
  EXPECT_EQ(par.finalize(st), ref.compute(msg));
  EXPECT_EQ(par.finalize(st), par.compute(msg));
}

}  // namespace
}  // namespace plfsr
