#include "lfsr/linear_system.hpp"

#include <gtest/gtest.h>

#include "crc/serial_crc.hpp"
#include "lfsr/catalog.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

TEST(LinearSystem, CrcSystemMatchesRegisterImplementation) {
  // The state-space recursion x(n+1) = A x(n) + b u(n) must agree with
  // the shift-register CRC bit for bit, for every generator and state.
  Rng rng(11);
  for (const auto& [name, g] : catalog::all_crc_polys()) {
    const LinearSystem sys = make_crc_system(g);
    const unsigned k = static_cast<unsigned>(g.degree());
    const std::uint64_t init = rng.next_u64() & ((k == 64) ? ~0ull : ((1ull << k) - 1));
    const BitStream msg = rng.next_bits(97);

    Gf2Vec x = Gf2Vec::from_word(k, init);
    sys.run(x, msg);
    const std::uint64_t poly_low = [&] {
      std::uint64_t v = 0;
      for (unsigned i = 0; i < k; ++i)
        if (g.coeff(i)) v |= 1ull << i;
      return v;
    }();
    EXPECT_EQ(x.to_word(), serial_crc_bits(msg, k, poly_low, init)) << name;
  }
}

TEST(LinearSystem, CrcFromZeroStateIsPolynomialRemainder) {
  // Feeding N bits from the zero state yields (message * x^k) mod g.
  const Gf2Poly g = catalog::crc16_ccitt();
  const LinearSystem sys = make_crc_system(g);
  Rng rng(12);
  const BitStream msg = rng.next_bits(64);

  Gf2Vec x(16);
  sys.run(x, msg);

  Gf2Poly a;  // message polynomial, first bit = highest power
  for (std::size_t i = 0; i < msg.size(); ++i)
    if (msg.get(i))
      a.set_coeff(static_cast<unsigned>(msg.size() - 1 - i), true);
  const Gf2Poly rem = (a * Gf2Poly::x_pow(16)) % g;
  for (unsigned i = 0; i < 16; ++i)
    EXPECT_EQ(x.get(i), rem.coeff(i)) << "coefficient " << i;
}

TEST(LinearSystem, ScramblerOutputIsFeedbackParityXorInput) {
  const LinearSystem sys = make_scrambler_system(catalog::scrambler_80211());
  Gf2Vec x = Gf2Vec::from_word(7, 0x7F);
  // First keystream bit of the all-ones 802.11 state is 0; with input 1
  // the scrambled bit must be 1.
  Gf2Vec x2 = x;
  EXPECT_FALSE(sys.step(x, false));
  EXPECT_TRUE(sys.step(x2, true));
  // Input does not influence the autonomous state.
  EXPECT_EQ(x.to_word(), x2.to_word());
}

TEST(LinearSystem, ScramblerIsItsOwnInverse) {
  const LinearSystem sys = make_scrambler_system(catalog::scrambler_dvb());
  Rng rng(13);
  const BitStream data = rng.next_bits(300);
  Gf2Vec x1 = Gf2Vec::from_word(15, 0x1234);
  Gf2Vec x2 = x1;
  const BitStream once = sys.run(x1, data);
  const BitStream twice = sys.run(x2, once);
  EXPECT_EQ(twice, data);
}

TEST(LinearSystem, PrbsHasFullPeriod) {
  const LinearSystem sys = make_prbs_system(catalog::prbs9());
  Gf2Vec x = Gf2Vec::from_word(9, 1);
  const Gf2Vec x0 = x;
  std::size_t period = 0;
  do {
    sys.step(x, false);
    ++period;
  } while (!(x == x0) && period <= 600);
  EXPECT_EQ(period, 511u);
}

TEST(LinearSystem, AdvanceFreeMatchesSteps) {
  const LinearSystem sys = make_prbs_system(catalog::prbs7());
  Gf2Vec a = Gf2Vec::from_word(7, 0x55);
  Gf2Vec b = a;
  for (int i = 0; i < 37; ++i) sys.step(a, false);
  sys.advance_free(b, 37);
  EXPECT_EQ(a.to_word(), b.to_word());
}

TEST(LinearSystem, StepRejectsWrongDimension) {
  const LinearSystem sys = make_crc_system(catalog::crc8_atm());
  Gf2Vec wrong(9);
  EXPECT_THROW(sys.step(wrong, false), std::invalid_argument);
}

}  // namespace
}  // namespace plfsr
