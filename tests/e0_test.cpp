#include "cipher/e0.hpp"

#include <gtest/gtest.h>

#include "lfsr/berlekamp_massey.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

std::array<std::uint64_t, 4> seeds() {
  return {0x155F0F5, 0x12345678, 0x1DEADBEEF, 0x2CAFEF00D};
}

TEST(E0, Deterministic) {
  E0 a(seeds()), b(seeds());
  EXPECT_EQ(a.keystream(256), b.keystream(256));
}

TEST(E0, EncryptDecryptIdentity) {
  Rng rng(1);
  const BitStream msg = rng.next_bits(1000);
  E0 tx(seeds()), rx(seeds());
  EXPECT_EQ(rx.process(tx.process(msg)), msg);
}

TEST(E0, SeedSensitivity) {
  auto s2 = seeds();
  s2[0] ^= 1;
  E0 a(seeds()), b(s2);
  EXPECT_NE(a.keystream(256), b.keystream(256));
}

TEST(E0, CarrySensitivity) {
  E0 a(seeds(), 0), b(seeds(), 3);
  EXPECT_NE(a.keystream(128), b.keystream(128));
}

TEST(E0, RejectsZeroRegister) {
  auto s = seeds();
  s[2] = 0;
  EXPECT_THROW(E0 e(s), std::invalid_argument);
}

TEST(E0, KeystreamBalanced) {
  E0 e(seeds());
  const BitStream ks = e.keystream(20000);
  const std::size_t ones = ks.weight();
  EXPECT_GT(ones, 9500u);
  EXPECT_LT(ones, 10500u);
}

TEST(E0, SummationCombinerDefeatsBerlekampMassey) {
  // A plain XOR of the four registers would synthesize at complexity
  // 25+31+33+39 = 128; the carry memory pushes E0's linear complexity
  // far beyond that — on 600 observed bits BM keeps climbing near n/2.
  E0 e(seeds());
  const auto syn = berlekamp_massey(e.keystream(600));
  EXPECT_GT(syn.complexity, 200u);
}

TEST(E0, CarryStateStaysWithinFourBits) {
  E0 e(seeds());
  for (int i = 0; i < 1000; ++i) {
    e.next_bit();
    EXPECT_LT(e.carry_state(), 16u);
  }
}

}  // namespace
}  // namespace plfsr
