// Offload service tests: protocol codec invariants, the malformed-input
// fuzz corpus (every entry must draw an *error reply*, never a crash or
// a disconnect), and a loopback round-trip sweep of op x frame-size
// proving the server's replies are bit-exact with local dispatch.
#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "offload/dispatch.hpp"
#include "offload/net.hpp"
#include "offload/protocol.hpp"
#include "offload/server.hpp"

namespace plfsr::offload {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<std::uint8_t>(seed + i * 7);
  return out;
}

// --- Protocol codec ------------------------------------------------------

TEST(OffloadProtocol, RequestRoundTrip) {
  Request req;
  req.op = Op::kScramble;
  req.param = 0x1A5A;
  req.name = "DVB (x15+x14+1)";
  req.payload = pattern_bytes(37, 3);
  const std::vector<std::uint8_t> wire = encode_request(req);
  ASSERT_GE(wire.size(), kLenBytes + kFixedBodyBytes);
  // Body length prefix must match the actual body size.
  const std::uint32_t blen = wire[0] | (wire[1] << 8) | (wire[2] << 16) |
                             (static_cast<std::uint32_t>(wire[3]) << 24);
  ASSERT_EQ(blen, wire.size() - kLenBytes);

  Request back;
  ASSERT_EQ(decode_request_body(
                std::span<const std::uint8_t>(wire).subspan(kLenBytes), back),
            Status::kOk);
  EXPECT_EQ(back.op, req.op);
  EXPECT_EQ(back.param, req.param);
  EXPECT_EQ(back.name, req.name);
  EXPECT_EQ(back.payload, req.payload);
}

TEST(OffloadProtocol, ResponseRoundTrip) {
  Response resp;
  resp.status = Status::kOk;
  resp.op = Op::kFecDecode;
  resp.result = make_fec_result(123, 4);
  resp.payload = pattern_bytes(9, 1);
  const std::vector<std::uint8_t> wire = encode_response(resp);
  Response back;
  ASSERT_TRUE(decode_response_body(
      std::span<const std::uint8_t>(wire).subspan(kLenBytes), back));
  EXPECT_EQ(back.status, resp.status);
  EXPECT_EQ(back.op, resp.op);
  EXPECT_EQ(fec_result_corrected(back.result), 123u);
  EXPECT_EQ(fec_result_failed_blocks(back.result), 4u);
  EXPECT_EQ(back.payload, resp.payload);
}

TEST(OffloadProtocol, DecodeRejectsMalformedBodies) {
  Request out;
  // Shorter than the fixed header.
  EXPECT_EQ(decode_request_body(std::vector<std::uint8_t>(5, 0), out),
            Status::kBadFrame);
  // Unknown op byte.
  std::vector<std::uint8_t> body(kFixedBodyBytes, 0);
  body[0] = 200;
  EXPECT_EQ(decode_request_body(body, out), Status::kUnknownOp);
  // Reserved flags set.
  body[0] = 0;
  body[2] = 1;
  EXPECT_EQ(decode_request_body(body, out), Status::kBadFrame);
  // name_len pointing past the end of the body.
  body[2] = 0;
  body[1] = 200;
  EXPECT_EQ(decode_request_body(body, out), Status::kBadFrame);
}

TEST(OffloadProtocol, PipelineOpsRoundTrip) {
  const std::vector<PipelineOp> ops = {
      {Op::kScramble, 0x5B, "802.11 (x7+x4+1)"},
      {Op::kCrc, 0, "CRC-32/ETHERNET"},
  };
  const Request req = make_pipeline_request(ops, pattern_bytes(33, 2));
  EXPECT_EQ(req.op, Op::kPipeline);
  EXPECT_TRUE(req.name.empty());

  std::vector<PipelineOp> back;
  std::span<const std::uint8_t> data;
  ASSERT_EQ(decode_pipeline_ops(req.payload, back, data), Status::kOk);
  ASSERT_EQ(back.size(), ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(back[i].op, ops[i].op) << "i=" << i;
    EXPECT_EQ(back[i].param, ops[i].param) << "i=" << i;
    EXPECT_EQ(back[i].name, ops[i].name) << "i=" << i;
  }
  EXPECT_TRUE(std::equal(data.begin(), data.end(),
                         pattern_bytes(33, 2).begin()));
}

TEST(OffloadProtocol, PipelineOpsRejectMalformedChains) {
  std::vector<PipelineOp> ops;
  std::span<const std::uint8_t> data;
  // Empty payload / empty op list.
  EXPECT_EQ(decode_pipeline_ops({}, ops, data), Status::kBadFrame);
  EXPECT_EQ(decode_pipeline_ops(std::vector<std::uint8_t>{0}, ops, data),
            Status::kBadFrame);
  // Oversized chain.
  std::vector<std::uint8_t> over{
      static_cast<std::uint8_t>(kMaxPipelineOps + 1)};
  EXPECT_EQ(decode_pipeline_ops(over, ops, data), Status::kBadFrame);
  // Truncated mid-op-header: count says 1, header bytes missing.
  EXPECT_EQ(decode_pipeline_ops(std::vector<std::uint8_t>{1, 1, 0}, ops, data),
            Status::kBadFrame);

  // A well-formed 2-op chain to mutate.
  const std::vector<PipelineOp> good = {
      {Op::kScramble, 0x5B, "802.11 (x7+x4+1)"},
      {Op::kCrc, 0, "CRC-32/ETHERNET"},
  };
  const Request req = make_pipeline_request(good, pattern_bytes(8, 1));

  // First op's name_len stretched across the second op header and off
  // the end — the cross-op length overflow shape.
  std::vector<std::uint8_t> overflow = req.payload;
  overflow[2] = 255;
  EXPECT_EQ(decode_pipeline_ops(overflow, ops, data), Status::kBadFrame);
  // Reserved bits in an op header.
  std::vector<std::uint8_t> reserved = req.payload;
  reserved[3] = 1;
  EXPECT_EQ(decode_pipeline_ops(reserved, ops, data), Status::kBadFrame);
  // Non-chainable ops: ping, nested pipeline, unknown byte.
  for (const std::uint8_t op : {std::uint8_t{0}, std::uint8_t{5},
                                std::uint8_t{99}}) {
    std::vector<std::uint8_t> bad = req.payload;
    bad[1] = op;
    EXPECT_EQ(decode_pipeline_ops(bad, ops, data), Status::kUnknownOp)
        << "op=" << int{op};
  }
}

// --- Dispatcher ----------------------------------------------------------

TEST(OffloadDispatch, CataloguesAreNonEmptyAndSorted) {
  const OffloadDispatcher d;
  EXPECT_FALSE(d.crc_names().empty());
  EXPECT_FALSE(d.scrambler_names().empty());
  EXPECT_FALSE(d.fec_names().empty());
}

TEST(OffloadDispatch, ScrambleRoundTripsAndRejectsZeroSeed) {
  const OffloadDispatcher d;
  Request req;
  req.op = Op::kScramble;
  req.name = "802.11 (x7+x4+1)";
  req.param = 0x5B;
  req.payload = pattern_bytes(100, 9);
  const Response once = d.dispatch(req);
  ASSERT_EQ(once.status, Status::kOk);
  EXPECT_NE(once.payload, req.payload);
  Request back = req;
  back.payload = once.payload;
  const Response twice = d.dispatch(back);  // scramble == descramble
  ASSERT_EQ(twice.status, Status::kOk);
  EXPECT_EQ(twice.payload, req.payload);

  req.param = 0;
  EXPECT_EQ(d.dispatch(req).status, Status::kBadPayload);
  req.param = 0x80;  // masks to zero in the 7-bit register
  EXPECT_EQ(d.dispatch(req).status, Status::kBadPayload);
}

TEST(OffloadDispatch, FecDecodeFailureIsDataNotAnError) {
  const OffloadDispatcher d;
  Request enc;
  enc.op = Op::kFecEncode;
  enc.name = "RS(204,188)";
  enc.payload = pattern_bytes(188, 2);
  Response code = d.dispatch(enc);
  ASSERT_EQ(code.status, Status::kOk);
  // More corrupt symbols than the code can correct: the reply is still
  // kOk — the failure rides in the result word.
  for (std::size_t i = 0; i < 20; ++i) code.payload[i] ^= 0xFF;
  Request dec;
  dec.op = Op::kFecDecode;
  dec.name = "RS(204,188)";
  dec.payload = code.payload;
  const Response out = d.dispatch(dec);
  ASSERT_EQ(out.status, Status::kOk);
  EXPECT_EQ(fec_result_failed_blocks(out.result), 1u);
}

TEST(OffloadDispatch, PipelineChainMatchesSerialComposition) {
  // The whole point of kPipeline: one request must equal the serial
  // composition of the single-op round trips it replaces.
  const OffloadDispatcher d;
  const std::vector<std::uint8_t> data = pattern_bytes(256, 5);

  Request scr;
  scr.op = Op::kScramble;
  scr.name = "802.11 (x7+x4+1)";
  scr.param = 0x5B;
  scr.payload = data;
  const Response scrambled = d.dispatch(scr);
  ASSERT_EQ(scrambled.status, Status::kOk);
  Request crc;
  crc.op = Op::kCrc;
  crc.name = "CRC-32/ETHERNET";
  crc.payload = scrambled.payload;
  const Response checked = d.dispatch(crc);
  ASSERT_EQ(checked.status, Status::kOk);

  const Request chain = make_pipeline_request(
      {{Op::kScramble, 0x5B, "802.11 (x7+x4+1)"},
       {Op::kCrc, 0, "CRC-32/ETHERNET"}},
      data);
  // Twice: the second run exercises the cached compiled chain.
  for (int round = 0; round < 2; ++round) {
    const Response got = d.dispatch(chain);
    ASSERT_EQ(got.status, Status::kOk) << "round " << round;
    EXPECT_EQ(got.op, Op::kPipeline);
    EXPECT_EQ(got.payload, scrambled.payload) << "round " << round;
    EXPECT_EQ(got.result, checked.result) << "round " << round;
  }
}

TEST(OffloadDispatch, PipelineFecChainRoundTrips) {
  // scramble -> RS encode across the wire, then decode -> descramble
  // in a second chain: the composition is the identity on the payload.
  const OffloadDispatcher d;
  const std::vector<std::uint8_t> data = pattern_bytes(188, 9);
  const Response coded = d.dispatch(make_pipeline_request(
      {{Op::kScramble, 0x2A, "SONET (x7+x6+1)"},
       {Op::kFecEncode, 0, "RS(204,188)"}},
      data));
  ASSERT_EQ(coded.status, Status::kOk);
  EXPECT_EQ(coded.result, 0u);  // no CRC op anywhere in the chain
  const Response back = d.dispatch(make_pipeline_request(
      {{Op::kFecDecode, 0, "RS(204,188)"},
       {Op::kScramble, 0x2A, "SONET (x7+x6+1)"}},
      coded.payload));
  ASSERT_EQ(back.status, Status::kOk);
  EXPECT_EQ(back.payload, data);
}

TEST(OffloadDispatch, PipelineChainErrorsClassifyLikeSingleOps) {
  const OffloadDispatcher d;
  // Unknown name mid-chain.
  EXPECT_EQ(d.dispatch(make_pipeline_request(
                            {{Op::kCrc, 0, "CRC-32/ETHERNET"},
                             {Op::kScramble, 1, "NO-SUCH-SPEC"}},
                            pattern_bytes(8, 1)))
                .status,
            Status::kUnknownName);
  // Zero scramble seed mid-chain.
  EXPECT_EQ(d.dispatch(make_pipeline_request(
                            {{Op::kScramble, 0, "802.11 (x7+x4+1)"}},
                            pattern_bytes(8, 1)))
                .status,
            Status::kBadPayload);
  // A payload no RS encode could have produced, thrown mid-run by the
  // decode stage: classified kBadPayload, and the dispatcher stays
  // usable for the next (valid) chain.
  EXPECT_EQ(d.dispatch(make_pipeline_request({{Op::kFecDecode, 0,
                                               "RS(204,188)"}},
                                             pattern_bytes(5, 1)))
                .status,
            Status::kBadPayload);
  const Response ok = d.dispatch(make_pipeline_request(
      {{Op::kCrc, 0, "CRC-32/ETHERNET"}}, pattern_bytes(8, 1)));
  EXPECT_EQ(ok.status, Status::kOk);
}

// --- Loopback ------------------------------------------------------------

/// One blocking test connection speaking whole frames.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port)
      : sock_(connect_tcp("127.0.0.1", port, 5000)) {}

  bool ok() const { return sock_.valid(); }

  bool send_raw(std::span<const std::uint8_t> bytes) {
    return write_full(sock_.fd(), bytes.data(), bytes.size(), 5000) ==
           IoResult::kOk;
  }

  bool read_reply(Response& out) {
    std::uint8_t len[kLenBytes];
    if (read_full(sock_.fd(), len, sizeof(len), 20000) != IoResult::kOk)
      return false;
    const std::uint32_t blen = len[0] | (len[1] << 8) | (len[2] << 16) |
                               (static_cast<std::uint32_t>(len[3]) << 24);
    std::vector<std::uint8_t> body(blen);
    if (blen != 0 &&
        read_full(sock_.fd(), body.data(), blen, 20000) != IoResult::kOk)
      return false;
    return decode_response_body(body, out);
  }

  bool call(const Request& req, Response& out) {
    return send_raw(encode_request(req)) && read_reply(out);
  }

  /// The liveness probe the fuzz corpus interleaves: after an error
  /// reply the connection must still answer a well-formed request.
  void expect_usable() {
    Request ping;
    ping.op = Op::kPing;
    ping.payload = {1, 2, 3};
    Response resp;
    ASSERT_TRUE(call(ping, resp));
    EXPECT_EQ(resp.status, Status::kOk);
    EXPECT_EQ(resp.payload, ping.payload);
  }

 private:
  Socket sock_;
};

class OffloadLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions opts;
    opts.max_frame = 1 << 20;  // 64 KiB sweep fits; fuzz can exceed it
    opts.read_timeout_ms = 30000;
    server_.emplace(opts);
    ASSERT_TRUE(server_->start());
  }
  void TearDown() override { server_->stop(); }

  std::optional<OffloadServer> server_;
};

TEST_F(OffloadLoopbackTest, SweepOpsAcrossFrameSizes) {
  const OffloadDispatcher golden;
  TestClient client(server_->port());
  ASSERT_TRUE(client.ok());
  const std::size_t sizes[] = {0, 1, 64, 1518, std::size_t{64} * 1024};
  for (const std::size_t n : sizes) {
    std::vector<Request> reqs;
    {
      Request r;
      r.op = Op::kPing;
      r.payload = pattern_bytes(n, 1);
      reqs.push_back(r);
      r.op = Op::kCrc;
      r.name = "CRC-32/ETHERNET";
      reqs.push_back(r);
      r.op = Op::kScramble;
      r.name = "SONET (x7+x6+1)";
      r.param = 0x2A;
      reqs.push_back(r);
      r.op = Op::kFecEncode;
      r.name = "RS(204,188)";
      r.param = 0;
      reqs.push_back(r);
      // Decode sweeps the matching encoded geometry for each size.
      const Response enc = golden.dispatch(r);
      ASSERT_EQ(enc.status, Status::kOk);
      r.op = Op::kFecDecode;
      r.payload = enc.payload;
      reqs.push_back(r);
    }
    for (const Request& req : reqs) {
      const Response want = golden.dispatch(req);
      Response got;
      ASSERT_TRUE(client.call(req, got))
          << "op " << static_cast<int>(req.op) << " size " << n;
      EXPECT_EQ(got.status, want.status);
      EXPECT_EQ(got.op, want.op);
      EXPECT_EQ(got.result, want.result);
      EXPECT_EQ(got.payload, want.payload)
          << "op " << static_cast<int>(req.op) << " size " << n;
    }
  }
}

TEST_F(OffloadLoopbackTest, FuzzCorpusDrawsErrorRepliesNotCrashes) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.ok());
  Response resp;

  // Zero-length body: too short for even the fixed header.
  ASSERT_TRUE(client.send_raw(std::vector<std::uint8_t>{0, 0, 0, 0}));
  ASSERT_TRUE(client.read_reply(resp));
  EXPECT_EQ(resp.status, Status::kBadFrame);
  client.expect_usable();

  // Body shorter than the fixed header.
  ASSERT_TRUE(
      client.send_raw(std::vector<std::uint8_t>{5, 0, 0, 0, 1, 0, 0, 0, 0}));
  ASSERT_TRUE(client.read_reply(resp));
  EXPECT_EQ(resp.status, Status::kBadFrame);
  client.expect_usable();

  // Unknown op byte.
  {
    Request req;
    req.op = Op::kPing;
    std::vector<std::uint8_t> wire = encode_request(req);
    wire[kLenBytes] = 99;
    ASSERT_TRUE(client.send_raw(wire));
    ASSERT_TRUE(client.read_reply(resp));
    EXPECT_EQ(resp.status, Status::kUnknownOp);
    client.expect_usable();
  }

  // Reserved flags set.
  {
    Request req;
    req.op = Op::kPing;
    std::vector<std::uint8_t> wire = encode_request(req);
    wire[kLenBytes + 2] = 1;
    ASSERT_TRUE(client.send_raw(wire));
    ASSERT_TRUE(client.read_reply(resp));
    EXPECT_EQ(resp.status, Status::kBadFrame);
    client.expect_usable();
  }

  // name_len larger than the remaining body (truncated-payload shape).
  {
    Request req;
    req.op = Op::kCrc;
    req.name = "CRC-32/ETHERNET";
    req.payload = pattern_bytes(8, 4);
    std::vector<std::uint8_t> wire = encode_request(req);
    wire[kLenBytes + 1] = 255;  // name_len
    ASSERT_TRUE(client.send_raw(wire));
    ASSERT_TRUE(client.read_reply(resp));
    EXPECT_EQ(resp.status, Status::kBadFrame);
    client.expect_usable();
  }

  // Unknown engine/spec names, one per family.
  for (const Op op : {Op::kCrc, Op::kScramble, Op::kFecEncode}) {
    Request req;
    req.op = op;
    req.name = "NO-SUCH-SPEC";
    req.param = 1;
    ASSERT_TRUE(client.call(req, resp));
    EXPECT_EQ(resp.status, Status::kUnknownName);
    EXPECT_EQ(resp.op, op);
    client.expect_usable();
  }

  // Payload the op cannot accept: an impossible FEC-decode length.
  {
    Request req;
    req.op = Op::kFecDecode;
    req.name = "RS(204,188)";
    req.payload = pattern_bytes(5, 6);  // <= parity bytes: no encode yields it
    ASSERT_TRUE(client.call(req, resp));
    EXPECT_EQ(resp.status, Status::kBadPayload);
    client.expect_usable();
  }

  // Zero scramble seed.
  {
    Request req;
    req.op = Op::kScramble;
    req.name = "PRBS-9";
    req.param = 0;
    req.payload = pattern_bytes(16, 7);
    ASSERT_TRUE(client.call(req, resp));
    EXPECT_EQ(resp.status, Status::kBadPayload);
    client.expect_usable();
  }

  // --- Malformed multi-op bodies -----------------------------------------
  const auto chain_req = [] {
    return make_pipeline_request({{Op::kScramble, 0x5B, "802.11 (x7+x4+1)"},
                                  {Op::kCrc, 0, "CRC-32/ETHERNET"}},
                                 pattern_bytes(16, 3));
  };

  // Empty op list.
  {
    Request req;
    req.op = Op::kPipeline;
    req.payload = {0};
    ASSERT_TRUE(client.call(req, resp));
    EXPECT_EQ(resp.status, Status::kBadFrame);
    EXPECT_EQ(resp.op, Op::kPipeline);
    client.expect_usable();
  }

  // Chain longer than kMaxPipelineOps.
  {
    Request req;
    req.op = Op::kPipeline;
    req.payload = {static_cast<std::uint8_t>(kMaxPipelineOps + 1)};
    ASSERT_TRUE(client.call(req, resp));
    EXPECT_EQ(resp.status, Status::kBadFrame);
    client.expect_usable();
  }

  // Non-chainable ops mid-chain: ping, nested pipeline, unknown byte.
  for (const std::uint8_t op :
       {std::uint8_t{0}, std::uint8_t{5}, std::uint8_t{77}}) {
    Request req = chain_req();
    req.payload[1 + kPipelineOpBytes + 16] = op;  // second op's op byte
    ASSERT_TRUE(client.call(req, resp));
    EXPECT_EQ(resp.status, Status::kUnknownOp) << "op=" << int{op};
    client.expect_usable();
  }

  // First op's name_len stretched across the second op and off the end —
  // the length-overflow-across-ops shape.
  {
    Request req = chain_req();
    req.payload[2] = 255;
    ASSERT_TRUE(client.call(req, resp));
    EXPECT_EQ(resp.status, Status::kBadFrame);
    client.expect_usable();
  }

  // Truncated mid-op-header: count promises 2 ops, body holds 1.
  {
    Request req = chain_req();
    req.payload.resize(1 + kPipelineOpBytes + 16);  // through op 1's name
    req.payload[0] = 2;
    ASSERT_TRUE(client.call(req, resp));
    EXPECT_EQ(resp.status, Status::kBadFrame);
    client.expect_usable();
  }

  // Unknown spec name and zero scramble seed inside a chain.
  {
    ASSERT_TRUE(client.call(
        make_pipeline_request({{Op::kCrc, 0, "NO-SUCH-SPEC"}},
                              pattern_bytes(4, 1)),
        resp));
    EXPECT_EQ(resp.status, Status::kUnknownName);
    client.expect_usable();
    ASSERT_TRUE(client.call(
        make_pipeline_request({{Op::kScramble, 0, "802.11 (x7+x4+1)"}},
                              pattern_bytes(4, 1)),
        resp));
    EXPECT_EQ(resp.status, Status::kBadPayload);
    client.expect_usable();
  }
}

TEST_F(OffloadLoopbackTest, PipelineChainRoundTripsBitExactly) {
  // The multi-op request over the wire: replies must be bit-exact with
  // local dispatch of the same chain AND with the serial composition of
  // the single-op requests it replaces — on the same connection.
  const OffloadDispatcher golden;
  TestClient client(server_->port());
  ASSERT_TRUE(client.ok());
  for (const std::size_t n : {std::size_t{0}, std::size_t{64},
                              std::size_t{1518}, std::size_t{64} * 1024}) {
    const std::vector<std::uint8_t> data = pattern_bytes(n, 11);
    const Request chain = make_pipeline_request(
        {{Op::kScramble, 0x2A, "SONET (x7+x6+1)"},
         {Op::kCrc, 0, "CRC-32/ETHERNET"}},
        data);
    const Response want = golden.dispatch(chain);
    ASSERT_EQ(want.status, Status::kOk) << "size " << n;

    // Golden serial composition: scramble round trip, then CRC.
    Request scr;
    scr.op = Op::kScramble;
    scr.name = "SONET (x7+x6+1)";
    scr.param = 0x2A;
    scr.payload = data;
    const Response scrambled = golden.dispatch(scr);
    Request crc;
    crc.op = Op::kCrc;
    crc.name = "CRC-32/ETHERNET";
    crc.payload = scrambled.payload;
    const Response checked = golden.dispatch(crc);
    ASSERT_EQ(want.payload, scrambled.payload) << "size " << n;
    ASSERT_EQ(want.result, checked.result) << "size " << n;

    // Twice per size: the second request rides the worker's cached chain.
    for (int round = 0; round < 2; ++round) {
      Response got;
      ASSERT_TRUE(client.call(chain, got)) << "size " << n;
      EXPECT_EQ(got.status, Status::kOk);
      EXPECT_EQ(got.op, Op::kPipeline);
      EXPECT_EQ(got.result, want.result) << "size " << n;
      EXPECT_EQ(got.payload, want.payload) << "size " << n;
    }
  }
}

TEST(OffloadServerTest, OverCapFrameIsDrainedAndRefused) {
  ServerOptions opts;
  opts.max_frame = 4096;
  OffloadServer server(opts);
  ASSERT_TRUE(server.start());
  TestClient client(server.port());
  ASSERT_TRUE(client.ok());

  Request req;
  req.op = Op::kCrc;
  req.name = "CRC-32/ETHERNET";
  req.payload = pattern_bytes(100000, 8);  // way past the 4 KiB cap
  Response resp;
  ASSERT_TRUE(client.call(req, resp));
  EXPECT_EQ(resp.status, Status::kFrameTooLarge);
  EXPECT_EQ(resp.op, Op::kCrc);  // op echo survives the drain
  client.expect_usable();        // framing stayed in sync

  server.stop();
  EXPECT_GE(server.error_replies(), 1u);
}

TEST(OffloadServerTest, TruncatedHeaderThenNewConnectionStillServes) {
  OffloadServer server;
  ASSERT_TRUE(server.start());
  {
    // Two bytes of length prefix, then vanish: no reply is possible, the
    // server just reaps the connection.
    TestClient half(server.port());
    ASSERT_TRUE(half.ok());
    ASSERT_TRUE(half.send_raw(std::vector<std::uint8_t>{0xAB, 0xCD}));
  }
  TestClient fresh(server.port());
  ASSERT_TRUE(fresh.ok());
  fresh.expect_usable();
  server.stop();
}

TEST(OffloadServerTest, StopDrainsInFlightFrames) {
  OffloadServer server;
  ASSERT_TRUE(server.start());
  TestClient client(server.port());
  ASSERT_TRUE(client.ok());
  Request req;
  req.op = Op::kCrc;
  req.name = "CRC-32C";
  req.payload = pattern_bytes(4096, 3);
  ASSERT_TRUE(client.send_raw(encode_request(req)));
  server.stop();  // must answer the frame above before closing
  Response resp;
  ASSERT_TRUE(client.read_reply(resp));
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(server.frames_served(), 1u);
}

}  // namespace
}  // namespace plfsr::offload
