// Offload service tests: protocol codec invariants, the malformed-input
// fuzz corpus (every entry must draw an *error reply*, never a crash or
// a disconnect), and a loopback round-trip sweep of op x frame-size
// proving the server's replies are bit-exact with local dispatch.
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "offload/dispatch.hpp"
#include "offload/net.hpp"
#include "offload/protocol.hpp"
#include "offload/server.hpp"

namespace plfsr::offload {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<std::uint8_t>(seed + i * 7);
  return out;
}

// --- Protocol codec ------------------------------------------------------

TEST(OffloadProtocol, RequestRoundTrip) {
  Request req;
  req.op = Op::kScramble;
  req.param = 0x1A5A;
  req.name = "DVB (x15+x14+1)";
  req.payload = pattern_bytes(37, 3);
  const std::vector<std::uint8_t> wire = encode_request(req);
  ASSERT_GE(wire.size(), kLenBytes + kFixedBodyBytes);
  // Body length prefix must match the actual body size.
  const std::uint32_t blen = wire[0] | (wire[1] << 8) | (wire[2] << 16) |
                             (static_cast<std::uint32_t>(wire[3]) << 24);
  ASSERT_EQ(blen, wire.size() - kLenBytes);

  Request back;
  ASSERT_EQ(decode_request_body(
                std::span<const std::uint8_t>(wire).subspan(kLenBytes), back),
            Status::kOk);
  EXPECT_EQ(back.op, req.op);
  EXPECT_EQ(back.param, req.param);
  EXPECT_EQ(back.name, req.name);
  EXPECT_EQ(back.payload, req.payload);
}

TEST(OffloadProtocol, ResponseRoundTrip) {
  Response resp;
  resp.status = Status::kOk;
  resp.op = Op::kFecDecode;
  resp.result = make_fec_result(123, 4);
  resp.payload = pattern_bytes(9, 1);
  const std::vector<std::uint8_t> wire = encode_response(resp);
  Response back;
  ASSERT_TRUE(decode_response_body(
      std::span<const std::uint8_t>(wire).subspan(kLenBytes), back));
  EXPECT_EQ(back.status, resp.status);
  EXPECT_EQ(back.op, resp.op);
  EXPECT_EQ(fec_result_corrected(back.result), 123u);
  EXPECT_EQ(fec_result_failed_blocks(back.result), 4u);
  EXPECT_EQ(back.payload, resp.payload);
}

TEST(OffloadProtocol, DecodeRejectsMalformedBodies) {
  Request out;
  // Shorter than the fixed header.
  EXPECT_EQ(decode_request_body(std::vector<std::uint8_t>(5, 0), out),
            Status::kBadFrame);
  // Unknown op byte.
  std::vector<std::uint8_t> body(kFixedBodyBytes, 0);
  body[0] = 200;
  EXPECT_EQ(decode_request_body(body, out), Status::kUnknownOp);
  // Reserved flags set.
  body[0] = 0;
  body[2] = 1;
  EXPECT_EQ(decode_request_body(body, out), Status::kBadFrame);
  // name_len pointing past the end of the body.
  body[2] = 0;
  body[1] = 200;
  EXPECT_EQ(decode_request_body(body, out), Status::kBadFrame);
}

// --- Dispatcher ----------------------------------------------------------

TEST(OffloadDispatch, CataloguesAreNonEmptyAndSorted) {
  const OffloadDispatcher d;
  EXPECT_FALSE(d.crc_names().empty());
  EXPECT_FALSE(d.scrambler_names().empty());
  EXPECT_FALSE(d.fec_names().empty());
}

TEST(OffloadDispatch, ScrambleRoundTripsAndRejectsZeroSeed) {
  const OffloadDispatcher d;
  Request req;
  req.op = Op::kScramble;
  req.name = "802.11 (x7+x4+1)";
  req.param = 0x5B;
  req.payload = pattern_bytes(100, 9);
  const Response once = d.dispatch(req);
  ASSERT_EQ(once.status, Status::kOk);
  EXPECT_NE(once.payload, req.payload);
  Request back = req;
  back.payload = once.payload;
  const Response twice = d.dispatch(back);  // scramble == descramble
  ASSERT_EQ(twice.status, Status::kOk);
  EXPECT_EQ(twice.payload, req.payload);

  req.param = 0;
  EXPECT_EQ(d.dispatch(req).status, Status::kBadPayload);
  req.param = 0x80;  // masks to zero in the 7-bit register
  EXPECT_EQ(d.dispatch(req).status, Status::kBadPayload);
}

TEST(OffloadDispatch, FecDecodeFailureIsDataNotAnError) {
  const OffloadDispatcher d;
  Request enc;
  enc.op = Op::kFecEncode;
  enc.name = "RS(204,188)";
  enc.payload = pattern_bytes(188, 2);
  Response code = d.dispatch(enc);
  ASSERT_EQ(code.status, Status::kOk);
  // More corrupt symbols than the code can correct: the reply is still
  // kOk — the failure rides in the result word.
  for (std::size_t i = 0; i < 20; ++i) code.payload[i] ^= 0xFF;
  Request dec;
  dec.op = Op::kFecDecode;
  dec.name = "RS(204,188)";
  dec.payload = code.payload;
  const Response out = d.dispatch(dec);
  ASSERT_EQ(out.status, Status::kOk);
  EXPECT_EQ(fec_result_failed_blocks(out.result), 1u);
}

// --- Loopback ------------------------------------------------------------

/// One blocking test connection speaking whole frames.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port)
      : sock_(connect_tcp("127.0.0.1", port, 5000)) {}

  bool ok() const { return sock_.valid(); }

  bool send_raw(std::span<const std::uint8_t> bytes) {
    return write_full(sock_.fd(), bytes.data(), bytes.size(), 5000) ==
           IoResult::kOk;
  }

  bool read_reply(Response& out) {
    std::uint8_t len[kLenBytes];
    if (read_full(sock_.fd(), len, sizeof(len), 20000) != IoResult::kOk)
      return false;
    const std::uint32_t blen = len[0] | (len[1] << 8) | (len[2] << 16) |
                               (static_cast<std::uint32_t>(len[3]) << 24);
    std::vector<std::uint8_t> body(blen);
    if (blen != 0 &&
        read_full(sock_.fd(), body.data(), blen, 20000) != IoResult::kOk)
      return false;
    return decode_response_body(body, out);
  }

  bool call(const Request& req, Response& out) {
    return send_raw(encode_request(req)) && read_reply(out);
  }

  /// The liveness probe the fuzz corpus interleaves: after an error
  /// reply the connection must still answer a well-formed request.
  void expect_usable() {
    Request ping;
    ping.op = Op::kPing;
    ping.payload = {1, 2, 3};
    Response resp;
    ASSERT_TRUE(call(ping, resp));
    EXPECT_EQ(resp.status, Status::kOk);
    EXPECT_EQ(resp.payload, ping.payload);
  }

 private:
  Socket sock_;
};

class OffloadLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions opts;
    opts.max_frame = 1 << 20;  // 64 KiB sweep fits; fuzz can exceed it
    opts.read_timeout_ms = 30000;
    server_.emplace(opts);
    ASSERT_TRUE(server_->start());
  }
  void TearDown() override { server_->stop(); }

  std::optional<OffloadServer> server_;
};

TEST_F(OffloadLoopbackTest, SweepOpsAcrossFrameSizes) {
  const OffloadDispatcher golden;
  TestClient client(server_->port());
  ASSERT_TRUE(client.ok());
  const std::size_t sizes[] = {0, 1, 64, 1518, std::size_t{64} * 1024};
  for (const std::size_t n : sizes) {
    std::vector<Request> reqs;
    {
      Request r;
      r.op = Op::kPing;
      r.payload = pattern_bytes(n, 1);
      reqs.push_back(r);
      r.op = Op::kCrc;
      r.name = "CRC-32/ETHERNET";
      reqs.push_back(r);
      r.op = Op::kScramble;
      r.name = "SONET (x7+x6+1)";
      r.param = 0x2A;
      reqs.push_back(r);
      r.op = Op::kFecEncode;
      r.name = "RS(204,188)";
      r.param = 0;
      reqs.push_back(r);
      // Decode sweeps the matching encoded geometry for each size.
      const Response enc = golden.dispatch(r);
      ASSERT_EQ(enc.status, Status::kOk);
      r.op = Op::kFecDecode;
      r.payload = enc.payload;
      reqs.push_back(r);
    }
    for (const Request& req : reqs) {
      const Response want = golden.dispatch(req);
      Response got;
      ASSERT_TRUE(client.call(req, got))
          << "op " << static_cast<int>(req.op) << " size " << n;
      EXPECT_EQ(got.status, want.status);
      EXPECT_EQ(got.op, want.op);
      EXPECT_EQ(got.result, want.result);
      EXPECT_EQ(got.payload, want.payload)
          << "op " << static_cast<int>(req.op) << " size " << n;
    }
  }
}

TEST_F(OffloadLoopbackTest, FuzzCorpusDrawsErrorRepliesNotCrashes) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.ok());
  Response resp;

  // Zero-length body: too short for even the fixed header.
  ASSERT_TRUE(client.send_raw(std::vector<std::uint8_t>{0, 0, 0, 0}));
  ASSERT_TRUE(client.read_reply(resp));
  EXPECT_EQ(resp.status, Status::kBadFrame);
  client.expect_usable();

  // Body shorter than the fixed header.
  ASSERT_TRUE(
      client.send_raw(std::vector<std::uint8_t>{5, 0, 0, 0, 1, 0, 0, 0, 0}));
  ASSERT_TRUE(client.read_reply(resp));
  EXPECT_EQ(resp.status, Status::kBadFrame);
  client.expect_usable();

  // Unknown op byte.
  {
    Request req;
    req.op = Op::kPing;
    std::vector<std::uint8_t> wire = encode_request(req);
    wire[kLenBytes] = 99;
    ASSERT_TRUE(client.send_raw(wire));
    ASSERT_TRUE(client.read_reply(resp));
    EXPECT_EQ(resp.status, Status::kUnknownOp);
    client.expect_usable();
  }

  // Reserved flags set.
  {
    Request req;
    req.op = Op::kPing;
    std::vector<std::uint8_t> wire = encode_request(req);
    wire[kLenBytes + 2] = 1;
    ASSERT_TRUE(client.send_raw(wire));
    ASSERT_TRUE(client.read_reply(resp));
    EXPECT_EQ(resp.status, Status::kBadFrame);
    client.expect_usable();
  }

  // name_len larger than the remaining body (truncated-payload shape).
  {
    Request req;
    req.op = Op::kCrc;
    req.name = "CRC-32/ETHERNET";
    req.payload = pattern_bytes(8, 4);
    std::vector<std::uint8_t> wire = encode_request(req);
    wire[kLenBytes + 1] = 255;  // name_len
    ASSERT_TRUE(client.send_raw(wire));
    ASSERT_TRUE(client.read_reply(resp));
    EXPECT_EQ(resp.status, Status::kBadFrame);
    client.expect_usable();
  }

  // Unknown engine/spec names, one per family.
  for (const Op op : {Op::kCrc, Op::kScramble, Op::kFecEncode}) {
    Request req;
    req.op = op;
    req.name = "NO-SUCH-SPEC";
    req.param = 1;
    ASSERT_TRUE(client.call(req, resp));
    EXPECT_EQ(resp.status, Status::kUnknownName);
    EXPECT_EQ(resp.op, op);
    client.expect_usable();
  }

  // Payload the op cannot accept: an impossible FEC-decode length.
  {
    Request req;
    req.op = Op::kFecDecode;
    req.name = "RS(204,188)";
    req.payload = pattern_bytes(5, 6);  // <= parity bytes: no encode yields it
    ASSERT_TRUE(client.call(req, resp));
    EXPECT_EQ(resp.status, Status::kBadPayload);
    client.expect_usable();
  }

  // Zero scramble seed.
  {
    Request req;
    req.op = Op::kScramble;
    req.name = "PRBS-9";
    req.param = 0;
    req.payload = pattern_bytes(16, 7);
    ASSERT_TRUE(client.call(req, resp));
    EXPECT_EQ(resp.status, Status::kBadPayload);
    client.expect_usable();
  }
}

TEST(OffloadServerTest, OverCapFrameIsDrainedAndRefused) {
  ServerOptions opts;
  opts.max_frame = 4096;
  OffloadServer server(opts);
  ASSERT_TRUE(server.start());
  TestClient client(server.port());
  ASSERT_TRUE(client.ok());

  Request req;
  req.op = Op::kCrc;
  req.name = "CRC-32/ETHERNET";
  req.payload = pattern_bytes(100000, 8);  // way past the 4 KiB cap
  Response resp;
  ASSERT_TRUE(client.call(req, resp));
  EXPECT_EQ(resp.status, Status::kFrameTooLarge);
  EXPECT_EQ(resp.op, Op::kCrc);  // op echo survives the drain
  client.expect_usable();        // framing stayed in sync

  server.stop();
  EXPECT_GE(server.error_replies(), 1u);
}

TEST(OffloadServerTest, TruncatedHeaderThenNewConnectionStillServes) {
  OffloadServer server;
  ASSERT_TRUE(server.start());
  {
    // Two bytes of length prefix, then vanish: no reply is possible, the
    // server just reaps the connection.
    TestClient half(server.port());
    ASSERT_TRUE(half.ok());
    ASSERT_TRUE(half.send_raw(std::vector<std::uint8_t>{0xAB, 0xCD}));
  }
  TestClient fresh(server.port());
  ASSERT_TRUE(fresh.ok());
  fresh.expect_usable();
  server.stop();
}

TEST(OffloadServerTest, StopDrainsInFlightFrames) {
  OffloadServer server;
  ASSERT_TRUE(server.start());
  TestClient client(server.port());
  ASSERT_TRUE(client.ok());
  Request req;
  req.op = Op::kCrc;
  req.name = "CRC-32C";
  req.payload = pattern_bytes(4096, 3);
  ASSERT_TRUE(client.send_raw(encode_request(req)));
  server.stop();  // must answer the frame above before closing
  Response resp;
  ASSERT_TRUE(client.read_reply(resp));
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(server.frames_served(), 1u);
}

}  // namespace
}  // namespace plfsr::offload
