#include "lfsr/derby.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "lfsr/catalog.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

/// Parameterized over (generator index, M): the transform must exist,
/// A_Mt must be companion, and the transformed recursion must track the
/// untransformed one exactly through the similarity.
class DerbyProperties
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  Gf2Poly generator() const {
    const auto polys = catalog::all_crc_polys();
    return polys[static_cast<std::size_t>(std::get<0>(GetParam())) %
                 polys.size()]
        .poly;
  }
  std::size_t m() const {
    return static_cast<std::size_t>(std::get<1>(GetParam()));
  }
};

TEST_P(DerbyProperties, TransformedMatrixIsCompanion) {
  const LinearSystem sys = make_crc_system(generator());
  const LookAhead la(sys, m());
  const DerbyTransform d(la);
  EXPECT_TRUE(d.amt().is_companion());
  // Similar matrices: A_Mt = T^{-1} A^M T reconstructs A^M.
  EXPECT_EQ(d.t() * d.amt() * d.t_inv(), la.am());
}

TEST_P(DerbyProperties, TransformedRecursionTracksOriginal) {
  const LinearSystem sys = make_crc_system(generator());
  const LookAhead la(sys, m());
  const DerbyTransform d(la);
  Rng rng(std::get<0>(GetParam()) * 131 + std::get<1>(GetParam()));

  Gf2Vec x(sys.dim());
  for (std::size_t i = 0; i < x.size(); ++i) x.set(i, rng.next_bit());
  Gf2Vec xt = d.transform_state(x);
  EXPECT_EQ(d.anti_transform(xt), x);  // T T^{-1} = I

  for (int round = 0; round < 4; ++round) {
    Gf2Vec u(m());
    for (std::size_t i = 0; i < m(); ++i) u.set(i, rng.next_bit());
    la.step_state(x, u);
    d.step_state(xt, u);
    EXPECT_EQ(d.anti_transform(xt), x) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolysAndM, DerbyProperties,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6),
                       ::testing::Values(2, 4, 8, 16, 32, 64, 128)));

TEST(Derby, PapersChoiceOfFWorksForCrc32) {
  // The paper settled on f = [1 0 ... 0]; for the Ethernet generator and
  // its M values this must produce a valid transform directly.
  const LinearSystem sys = make_crc_system(catalog::crc32_ethernet());
  for (std::size_t m : {8u, 16u, 32u, 64u, 128u}) {
    const LookAhead la(sys, m);
    const auto d = DerbyTransform::with_f(la, Gf2Vec::unit(32, 0));
    ASSERT_TRUE(d.has_value()) << "M=" << m;
    EXPECT_EQ(d->f(), Gf2Vec::unit(32, 0));
  }
}

TEST(Derby, TIsTheKrylovMatrix) {
  const LinearSystem sys = make_crc_system(catalog::crc16_ccitt());
  const LookAhead la(sys, 8);
  const DerbyTransform d(la);
  Gf2Vec v = d.f();
  for (std::size_t c = 0; c < 16; ++c) {
    EXPECT_EQ(d.t().column(c), v) << "column " << c;
    v = la.am() * v;
  }
}

TEST(Derby, BmtIsTransformedInputMatrix) {
  const LinearSystem sys = make_crc_system(catalog::crc8_atm());
  const LookAhead la(sys, 16);
  const DerbyTransform d(la);
  EXPECT_EQ(d.bmt(), d.t_inv() * la.bm());
}

TEST(Derby, RunStateMatchesChunkedSteps) {
  const LinearSystem sys = make_crc_system(catalog::crc32_ethernet());
  const LookAhead la(sys, 32);
  const DerbyTransform d(la);
  Rng rng(5);
  const BitStream msg = rng.next_bits(32 * 7);

  Gf2Vec xt1(32), xt2(32);
  d.run_state(xt1, msg);
  for (std::size_t pos = 0; pos < msg.size(); pos += 32)
    d.step_state(xt2, chunk_to_vec(msg, pos, 32));
  EXPECT_EQ(xt1, xt2);
}

TEST(Derby, WithFDimensionMismatchThrows) {
  const LinearSystem sys = make_crc_system(catalog::crc8_atm());
  const LookAhead la(sys, 4);
  EXPECT_THROW(DerbyTransform::with_f(la, Gf2Vec(9)), std::invalid_argument);
}

TEST(Derby, RepeatedFactorGeneratorHasNoTransform) {
  // CRC-64/ECMA-182 has a repeated factor, so A^2 is derogatory: over
  // GF(2), p(A)^2 = p(A^2), and the repeated factor p kills the minimal
  // polynomial's degree. The transform must fail for EVERY f — and the
  // library must say so rather than return something wrong.
  const Gf2Poly g = catalog::crc64_ecma();
  EXPECT_FALSE(g.is_squarefree());
  const LinearSystem sys = make_crc_system(g);
  const LookAhead la(sys, 2);
  EXPECT_FALSE(DerbyTransform::with_f(la, Gf2Vec::unit(64, 0)).has_value());
  EXPECT_THROW(DerbyTransform{la}, std::runtime_error);
}

TEST(Derby, CatalogueSquarefreeness) {
  // All other catalogue generators are squarefree, which is why the big
  // parameterized sweep may assume the transform exists for them.
  for (const auto& [name, g] : catalog::all_crc_polys()) {
    if (name == "CRC-64/ECMA") {
      EXPECT_FALSE(g.is_squarefree()) << name;
    } else {
      EXPECT_TRUE(g.is_squarefree()) << name;
    }
  }
}

TEST(Derby, LoopComplexityCollapsesVersusDirect) {
  // The whole point (§2): A_Mt rows carry at most 2 ones (shift + last
  // column) while A^M rows are dense.
  const LinearSystem sys = make_crc_system(catalog::crc32_ethernet());
  const LookAhead la(sys, 64);
  const DerbyTransform d(la);
  EXPECT_LE(d.amt().max_row_weight(), 2u);
  EXPECT_GT(la.am().max_row_weight(), 10u);
}

}  // namespace
}  // namespace plfsr
