// Reed–Solomon codec: randomized round-trips at every error weight up to
// t, erasure-only and mixed error+erasure channels up to 2e + r = n-k,
// shortened blocks down to one data byte, kernel (table vs SWAR)
// agreement, generic-m symbol codes, detected failure beyond the radius,
// the stream geometry helpers, and the FEC registry policy.
#include "fec/rs_codec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "fec/fec_registry.hpp"
#include "fec/parallel_fec.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

using Sym = GfmField::Sym;

/// Pick `count` distinct positions in [0, len).
std::vector<std::uint32_t> distinct_positions(Rng& rng, std::size_t len,
                                              std::size_t count) {
  std::vector<std::uint32_t> out;
  while (out.size() < count) {
    const auto p = static_cast<std::uint32_t>(rng.next_below(len));
    if (std::find(out.begin(), out.end(), p) == out.end()) out.push_back(p);
  }
  return out;
}

TEST(RsCodec, GeneratorHasTheConsecutiveRoots) {
  const RsCodec rs(fec::rs_255_223());
  const GfmField& f = rs.field();
  ASSERT_EQ(rs.generator().size(), 33u);
  EXPECT_EQ(rs.generator().back(), 1);  // monic
  for (unsigned i = 0; i < 32; ++i)
    EXPECT_EQ(f.poly_eval(rs.generator(), f.alpha_pow(i)), 0) << "root " << i;
}

TEST(RsCodec, EncodedBlockIsACodeword) {
  Rng rng(1);
  const RsCodec rs(fec::rs_255_239());
  const GfmField& f = rs.field();
  const auto data = rng.next_bytes(239);
  std::vector<std::uint8_t> code(255);
  rs.encode_block(data, code);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), code.begin()));
  for (unsigned j = 0; j < 16; ++j) {
    const Sym a = f.alpha_pow(j);
    Sym s = 0;
    for (const std::uint8_t b : code) s = f.add(f.mul(s, a), b);
    EXPECT_EQ(s, 0) << "syndrome " << j;
  }
}

TEST(RsCodec, TableAndSwarKernelsEncodeIdentically) {
  Rng rng(2);
  const RsCodec table(fec::rs_255_223(), RsKernel::kTable);
  const RsCodec swar(fec::rs_255_223(), RsKernel::kSwar);
  for (std::size_t len : {1u, 7u, 100u, 223u}) {
    const auto data = rng.next_bytes(len);
    std::vector<std::uint8_t> a(len + 32), b(len + 32);
    table.encode_block(data, a);
    swar.encode_block(data, b);
    EXPECT_EQ(a, b) << "len=" << len;
  }
}

TEST(RsCodec, RoundTripsEveryErrorWeightUpToT) {
  Rng rng(3);
  for (const RsKernel kernel : {RsKernel::kTable, RsKernel::kSwar}) {
    const RsCodec rs(fec::rs_255_223(), kernel);
    for (std::size_t errors = 0; errors <= rs.max_errors(); ++errors) {
      const auto data = rng.next_bytes(223);
      std::vector<std::uint8_t> code(255);
      rs.encode_block(data, code);
      for (const std::uint32_t p : distinct_positions(rng, 255, errors))
        code[p] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
      const FecDecodeResult r = rs.decode_block(code);
      ASSERT_TRUE(r.ok) << "errors=" << errors;
      EXPECT_EQ(r.corrected_errors, errors);
      EXPECT_EQ(r.corrected_erasures, 0u);
      EXPECT_TRUE(std::equal(data.begin(), data.end(), code.begin()));
    }
  }
}

TEST(RsCodec, RoundTripsFullErasureBudget) {
  Rng rng(4);
  const RsCodec rs(fec::rs_255_239());
  for (std::size_t erasures : {1u, 5u, 16u}) {  // up to n-k
    const auto data = rng.next_bytes(239);
    std::vector<std::uint8_t> code(255);
    rs.encode_block(data, code);
    const auto pos = distinct_positions(rng, 255, erasures);
    for (const std::uint32_t p : pos)
      code[p] = static_cast<std::uint8_t>(rng.next_u64());
    const FecDecodeResult r = rs.decode_block(code, pos);
    ASSERT_TRUE(r.ok) << "erasures=" << erasures;
    EXPECT_EQ(r.corrected_errors, 0u);
    EXPECT_TRUE(std::equal(data.begin(), data.end(), code.begin()));
  }
}

TEST(RsCodec, RoundTripsMixedErrorsAndErasures) {
  Rng rng(5);
  const RsCodec rs(fec::rs_255_223());  // n-k = 32
  for (std::size_t errors = 0; errors <= 16; errors += 2) {
    const std::size_t erasures = 32 - 2 * errors;  // saturate 2e + r = n-k
    const auto data = rng.next_bytes(223);
    std::vector<std::uint8_t> code(255);
    rs.encode_block(data, code);
    auto pos = distinct_positions(rng, 255, errors + erasures);
    const std::vector<std::uint32_t> erased(pos.begin() + errors, pos.end());
    for (std::size_t i = 0; i < errors; ++i)
      code[pos[i]] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    for (const std::uint32_t p : erased)
      code[p] = static_cast<std::uint8_t>(rng.next_u64());
    const FecDecodeResult r = rs.decode_block(code, erased);
    ASSERT_TRUE(r.ok) << "e=" << errors << " r=" << erasures;
    EXPECT_EQ(r.corrected_errors, errors);
    EXPECT_TRUE(std::equal(data.begin(), data.end(), code.begin()));
  }
}

TEST(RsCodec, ShortenedBlocksIncludingOneDataByte) {
  Rng rng(6);
  const RsCodec rs(fec::rs_204_188());
  for (std::size_t dlen : {1u, 2u, 50u, 187u, 188u}) {
    const auto data = rng.next_bytes(dlen);
    std::vector<std::uint8_t> code(dlen + 16);
    rs.encode_block(data, code);
    for (const std::uint32_t p : distinct_positions(rng, code.size(), 8))
      code[p] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    const FecDecodeResult r = rs.decode_block(code);
    ASSERT_TRUE(r.ok) << "dlen=" << dlen;
    EXPECT_TRUE(std::equal(data.begin(), data.end(), code.begin()));
  }
}

TEST(RsCodec, BeyondRadiusNeverReturnsTheOriginalAsOk) {
  Rng rng(7);
  const RsCodec rs(fec::rs_255_239());  // t = 8
  std::size_t detected = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto data = rng.next_bytes(239);
    std::vector<std::uint8_t> code(255);
    rs.encode_block(data, code);
    const std::vector<std::uint8_t> sent = code;
    for (const std::uint32_t p : distinct_positions(rng, 255, 9))  // t + 1
      code[p] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    const FecDecodeResult r = rs.decode_block(code);
    // A decoder correcting <= t symbols cannot undo t+1: either the
    // failure is detected, or it miscorrected to a *different* codeword.
    EXPECT_FALSE(r.ok &&
                 std::equal(data.begin(), data.end(), code.begin()));
    if (!r.ok) ++detected;
  }
  // Overwhelmingly the failure is detected outright.
  EXPECT_GE(detected, 45u);
}

TEST(RsCodec, TooManyErasuresIsADetectedFailure) {
  Rng rng(8);
  const RsCodec rs(fec::rs_255_239());
  const auto data = rng.next_bytes(239);
  std::vector<std::uint8_t> code(255);
  rs.encode_block(data, code);
  const auto pos = distinct_positions(rng, 255, 17);  // n-k + 1
  for (const std::uint32_t p : pos)
    code[p] = static_cast<std::uint8_t>(rng.next_u64());
  EXPECT_FALSE(rs.decode_block(code, pos).ok);
}

TEST(RsCodec, GenericMSymbolCodesRoundTrip) {
  Rng rng(9);
  for (const FecSpec spec :
       {fec::rs_15_11(), fec::rs(10, 1023, 1015), fec::rs(12, 100, 80),
        fec::rs(8, 255, 223, /*fcr=*/112)}) {
    const RsCodec rs(spec, RsKernel::kTable);
    const GfmField& f = rs.field();
    const std::size_t t = rs.max_errors();
    std::vector<Sym> data(spec.k);
    for (Sym& s : data) s = static_cast<Sym>(rng.next_below(f.order()));
    std::vector<Sym> code(spec.n);
    rs.encode_symbols(data, code);
    for (const std::uint32_t p : distinct_positions(rng, spec.n, t))
      code[p] = static_cast<Sym>(
          code[p] ^ (1 + rng.next_below(f.order() - 1)));
    const FecDecodeResult r = rs.decode_symbols(code);
    ASSERT_TRUE(r.ok) << spec.name();
    EXPECT_EQ(r.corrected_errors, t) << spec.name();
    EXPECT_TRUE(std::equal(data.begin(), data.end(), code.begin()))
        << spec.name();
  }
}

TEST(RsCodec, ByteTransportRejectsNonByteFields) {
  const RsCodec rs(fec::rs_15_11());
  std::vector<std::uint8_t> buf(15);
  EXPECT_THROW(
      rs.encode_block(std::span<const std::uint8_t>(buf.data(), 11), buf),
      std::logic_error);
  EXPECT_THROW(rs.decode_block(buf), std::logic_error);
}

TEST(RsCodec, RejectsBadSpecsAndSizes) {
  EXPECT_THROW(RsCodec(fec::rs(8, 256, 200)), std::invalid_argument);
  EXPECT_THROW(RsCodec(fec::rs(8, 200, 200)), std::invalid_argument);
  EXPECT_THROW(RsCodec(fec::rs(4, 15, 11), RsKernel::kSwar),
               std::invalid_argument);
  const RsCodec rs(fec::rs_255_239());
  std::vector<std::uint8_t> code(255);
  EXPECT_THROW(rs.decode_block(std::span<std::uint8_t>(code.data(), 16)),
               std::invalid_argument);  // parity only, no data
  EXPECT_THROW(rs.decode_block(code, std::vector<std::uint32_t>{255}),
               std::invalid_argument);  // erasure out of block
  EXPECT_THROW(rs.decode_block(code, std::vector<std::uint32_t>{3, 3}),
               std::invalid_argument);  // duplicate erasure
}

// --- Stream geometry -------------------------------------------------------

TEST(FecGeometry, EncodedAndDecodedSizesInvert) {
  const RsCodec rs(fec::rs_204_188());
  for (std::size_t len : {0u, 1u, 187u, 188u, 189u, 1000u, 4096u}) {
    const std::size_t enc = fec_encoded_size(rs, len);
    EXPECT_EQ(fec_decoded_size(rs, enc), len) << len;
    if (len > 0)
      EXPECT_EQ(fec_block_count(rs, enc), (len + 187) / 188) << len;
  }
  // A trailing fragment of parity bytes or fewer cannot occur.
  EXPECT_THROW(fec_decoded_size(rs, 204 + 16), std::invalid_argument);
  EXPECT_THROW(fec_decoded_size(rs, 16), std::invalid_argument);
}

// --- Registry --------------------------------------------------------------

TEST(FecRegistry, CatalogueAndPolicy) {
  FecRegistry& reg = FecRegistry::instance();
  const auto names = reg.names();
  ASSERT_TRUE(std::find(names.begin(), names.end(), "rs-swar") != names.end());
  ASSERT_TRUE(std::find(names.begin(), names.end(), "rs-table") !=
              names.end());
  ASSERT_TRUE(std::find(names.begin(), names.end(), "bch") != names.end());

  // Policy: the byte-block registry serves GF(256) codes; non-byte
  // symbol widths go through RsCodec's symbol API, not the registry.
  EXPECT_TRUE(reg.supports("rs-swar", fec::rs_255_223()));
  EXPECT_TRUE(reg.supports("rs-table", fec::rs_255_223()));
  EXPECT_FALSE(reg.supports("rs-swar", fec::rs_15_11()));
  EXPECT_FALSE(reg.supports("rs-table", fec::rs_15_11()));
  EXPECT_FALSE(reg.supports("rs-table", fec::bch_255_t2()));
  EXPECT_TRUE(reg.supports("bch", fec::bch_255_t2()));

  const FecCodecHandle best = reg.best_for(fec::rs_255_223());
  EXPECT_EQ(static_cast<const RsCodec&>(*best).kernel(), RsKernel::kSwar);
  EXPECT_THROW(reg.best_for(fec::rs_15_11()), std::runtime_error);

  EXPECT_THROW(reg.make("nope", fec::rs_255_223()), std::invalid_argument);
  EXPECT_THROW(reg.make("rs-swar", fec::rs_15_11()), std::runtime_error);

  // Env override is read per call.
  ASSERT_EQ(setenv("PLFSR_FEC_ENGINE", "rs-table", 1), 0);
  const FecCodecHandle forced = reg.best_for(fec::rs_255_223());
  EXPECT_EQ(static_cast<const RsCodec&>(*forced).kernel(), RsKernel::kTable);
  ASSERT_EQ(setenv("PLFSR_FEC_ENGINE", "nope", 1), 0);
  EXPECT_THROW(reg.best_for(fec::rs_255_223()), std::invalid_argument);
  ASSERT_EQ(unsetenv("PLFSR_FEC_ENGINE"), 0);
}

TEST(FecRegistry, EveryEngineRoundTripsEveryClaimedCatalogueSpec) {
  Rng rng(10);
  FecRegistry& reg = FecRegistry::instance();
  for (const std::string& name : reg.available_names()) {
    for (const FecSpec& spec : fec::all_fec_specs()) {
      if (!reg.supports(name, spec)) continue;
      const FecCodecHandle codec = reg.make(name, spec);
      const auto data = rng.next_bytes(codec->data_bytes());
      std::vector<std::uint8_t> code(codec->code_bytes());
      codec->encode_block(data, code);
      std::size_t flips = codec->max_errors();
      if (spec.family == FecFamily::kBch) {
        for (const std::uint32_t p :
             distinct_positions(rng, code.size() * 8, flips))
          code[p / 8] ^= static_cast<std::uint8_t>(0x80u >> (p % 8));
      } else {
        for (const std::uint32_t p :
             distinct_positions(rng, code.size(), flips))
          code[p] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
      }
      const FecDecodeResult r = codec->decode_block(code);
      ASSERT_TRUE(r.ok) << name << " " << spec.name();
      EXPECT_TRUE(std::equal(data.begin(), data.end(), code.begin()))
          << name << " " << spec.name();
    }
  }
}

// --- ParallelFec -----------------------------------------------------------

TEST(ParallelFec, ShardCountsAgreeAndCountersSum) {
  Rng rng(11);
  const FecCodecHandle codec =
      FecRegistry::instance().best_for(fec::rs_204_188());
  const auto data = rng.next_bytes(188 * 23 + 17);  // 24 blocks, last short
  const ParallelFec serial(codec, 1);
  std::vector<std::uint8_t> enc(serial.encoded_size(data.size()));
  ASSERT_EQ(serial.encode(data, enc).blocks, 24u);

  // Impair: 4 errors + 4 erasures per block (2e + r = 12 <= 16).
  std::vector<std::uint8_t> recv = enc;
  std::vector<std::uint32_t> erasures;
  for (std::size_t b = 0; b < 24; ++b) {
    const std::size_t off = b * 204;
    const std::size_t clen = std::min<std::size_t>(204, recv.size() - off);
    const auto pos = distinct_positions(rng, clen, 8);
    for (int i = 0; i < 4; ++i)
      recv[off + pos[i]] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    for (int i = 4; i < 8; ++i) {
      recv[off + pos[i]] = static_cast<std::uint8_t>(rng.next_u64());
      erasures.push_back(static_cast<std::uint32_t>(off + pos[i]));
    }
  }

  std::vector<std::uint8_t> ref;
  for (const std::size_t shards : {1u, 2u, 4u, 7u}) {
    const ParallelFec pf(codec, shards, /*min_blocks_per_shard=*/1);
    std::vector<std::uint8_t> enc2(pf.encoded_size(data.size()));
    pf.encode(data, enc2);
    EXPECT_EQ(enc2, enc) << "shards=" << shards;

    std::vector<std::uint8_t> out(pf.decoded_size(recv.size()));
    const ParallelFecResult r = pf.decode(recv, out, erasures);
    EXPECT_TRUE(r.ok) << "shards=" << shards;
    EXPECT_EQ(r.blocks, 24u);
    EXPECT_EQ(r.failed_blocks, 0u);
    EXPECT_EQ(r.corrected_errors, 4u * 24) << "shards=" << shards;
    EXPECT_EQ(out.size(), data.size());
    EXPECT_EQ(out, data) << "shards=" << shards;
    if (shards == 1)
      ref = out;
    else
      EXPECT_EQ(out, ref) << "shards=" << shards;
  }
}

TEST(ParallelFec, FailedBlocksPassThroughAndAreCounted) {
  Rng rng(12);
  const FecCodecHandle codec =
      FecRegistry::instance().best_for(fec::rs_255_239());
  const ParallelFec pf(codec, 3, /*min_blocks_per_shard=*/1);
  const auto data = rng.next_bytes(239 * 6);
  std::vector<std::uint8_t> enc(pf.encoded_size(data.size()));
  pf.encode(data, enc);
  // Kill block 2 outright (t+1 = 9 errors), lightly damage the rest.
  std::vector<std::uint8_t> recv = enc;
  for (const std::uint32_t p : distinct_positions(rng, 255, 9))
    recv[2 * 255 + p] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
  recv[0] ^= 0x40;
  recv[5 * 255 + 7] ^= 0x11;
  std::vector<std::uint8_t> out(pf.decoded_size(recv.size()));
  const ParallelFecResult r = pf.decode(recv, out);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.blocks, 6u);
  EXPECT_EQ(r.failed_blocks, 1u);
  // Every block but #2 decoded to the original payload.
  for (std::size_t b = 0; b < 6; ++b) {
    const bool match = std::equal(out.begin() + b * 239,
                                  out.begin() + (b + 1) * 239,
                                  data.begin() + b * 239);
    EXPECT_EQ(match, b != 2) << "block " << b;
  }
}

}  // namespace
}  // namespace plfsr
