// Whole-stack integration scenarios: realistic end-to-end flows crossing
// every layer at once (framing -> scrambling -> CRC -> hardware path ->
// verification), plus the VCD tracing of a real accelerator run.
#include <gtest/gtest.h>

#include "crc/crc_spec.hpp"
#include "crc/ethernet.hpp"
#include "crc/serial_crc.hpp"
#include "lfsr/catalog.hpp"
#include "picoga/crc_accelerator.hpp"
#include "picoga/vcd_trace.hpp"
#include "scrambler/dvb.hpp"
#include "scrambler/spreader.hpp"
#include "scrambler/wifi.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

TEST(Integration, WifiTxRxChain) {
  // TX: payload -> scramble -> spread. RX: despread -> descramble. The
  // chain must be transparent, and a mid-air chip error within the
  // processing gain must not reach the payload.
  Rng rng(1);
  const BitStream payload = rng.next_bits(800);

  ParallelScrambler tx_scr = wifi::make_parallel_scrambler(32, 0x6E);
  Spreader tx_spr(catalog::prbs15(), 0x4321, 11);
  BitStream air = tx_spr.spread(tx_scr.process(payload));

  air.set(100, !air.get(100));  // one chip error
  air.set(101, !air.get(101));  // and a second in the same group

  Spreader rx_spr(catalog::prbs15(), 0x4321, 11);
  ParallelScrambler rx_scr = wifi::make_parallel_scrambler(32, 0x6E);
  const BitStream received = rx_scr.process(rx_spr.despread(air));
  EXPECT_EQ(received, payload);
}

TEST(Integration, DvbTransportWithCrcPerPacketOnPicoga) {
  // DVB randomisation around a per-packet MPEG-2 CRC computed on the
  // simulated PiCoGA: build packets, attach CRC-32/MPEG-2 over the
  // payload, randomize, derandomize, verify every CRC through the
  // hardware path.
  const CrcSpec spec = crcspec::crc32_mpeg2();
  PicogaCrcAccelerator acc(spec.generator(), 32);

  const auto ts = dvb::make_test_stream(8, 7);
  const auto on_air = dvb::randomize(ts);
  const auto back = dvb::derandomize(on_air);
  ASSERT_EQ(back, ts);

  for (std::size_t p = 0; p < 8; ++p) {
    const std::uint8_t* pkt = back.data() + p * dvb::kPacketBytes;
    // CRC the 184-byte payload (skip sync + 3 header bytes).
    const std::span<const std::uint8_t> payload{pkt + 4,
                                                dvb::kPacketBytes - 4};
    BitStream bits = spec.message_bits(payload);
    ASSERT_EQ(bits.size() % 32, 0u);
    const auto res = acc.process(bits, spec.init);
    EXPECT_EQ(spec.finalize(res.raw), serial_crc(spec, payload))
        << "packet " << p;
  }
}

TEST(Integration, AcceleratorRunProducesAPlausibleVcd) {
  const Gf2Poly g = catalog::crc32_ethernet();
  PicogaCrcAccelerator acc(g, 64);
  Rng rng(3);
  VcdTrace trace;

  // Drive a message and record the coarse events the array reports.
  const BitStream bits = rng.next_bits(64 * 10);
  trace.record_context(0, 0);
  const auto res = acc.process(bits, 0xFFFFFFFF);
  trace.record_issue(res.cycles / 2, 15);
  trace.record_context(res.cycles - 5, 1);
  trace.record_context(res.cycles, 0);
  trace.record_stall(res.cycles, false);

  const std::string vcd = trace.render("dream");
  EXPECT_NE(vcd.find("$scope module dream $end"), std::string::npos);
  EXPECT_NE(vcd.find("#" + std::to_string(res.cycles)), std::string::npos);
  EXPECT_EQ(trace.event_count(), 5u);
}

TEST(Integration, EthernetEndToEndThroughEveryEngine) {
  // One frame, every path: software FCS, the hardware raw register, and
  // the receiver-side residue check must all agree.
  const CrcSpec spec = crcspec::crc32_ethernet();
  const auto frame = ethernet::make_test_frame(300, 11);
  ASSERT_TRUE(ethernet::verify(frame));

  const std::vector<std::uint8_t> body(frame.begin(), frame.end() - 4);
  PicogaCrcAccelerator acc(spec.generator(), 8);  // byte-aligned chunks
  const BitStream bits = spec.message_bits(body);
  const auto res = acc.process(bits, spec.init);
  EXPECT_EQ(spec.finalize(res.raw), ethernet::fcs(body));
}

}  // namespace
}  // namespace plfsr
