#include "scrambler/wifi.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace plfsr {
namespace {

TEST(Wifi, ReferenceSequenceIs127Bits) {
  EXPECT_EQ(std::string(wifi::kReferenceSequence127).size(), 127u);
}

TEST(Wifi, FrameScrambleRoundTrip) {
  Rng rng(1);
  const BitStream payload = rng.next_bits(1000);
  for (std::uint64_t seed = 1; seed < 128; seed += 13) {
    const BitStream scrambled = wifi::scramble_frame(payload, seed);
    EXPECT_EQ(wifi::scramble_frame(scrambled, seed), payload) << seed;
    EXPECT_FALSE(scrambled == payload) << seed;
  }
}

TEST(Wifi, DifferentSeedsDifferentOutput) {
  const BitStream payload(200);
  EXPECT_FALSE(wifi::scramble_frame(payload, 0x7F) ==
               wifi::scramble_frame(payload, 0x3F));
}

TEST(Wifi, ParallelScramblerMatchesSerialAtAllM) {
  Rng rng(2);
  const BitStream payload = rng.next_bits(1024);
  AdditiveScrambler serial = wifi::make_scrambler();
  const BitStream expect = serial.process(payload);
  for (std::size_t m : {8u, 16u, 64u, 128u}) {
    ParallelScrambler par = wifi::make_parallel_scrambler(m);
    EXPECT_EQ(par.process(payload), expect) << "M=" << m;
  }
}

}  // namespace
}  // namespace plfsr
