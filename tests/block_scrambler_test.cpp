// BlockScrambler / ParallelScramble vs the bit-serial AdditiveScrambler:
// the word-parallel engine must be bit-exact on every catalogue
// polynomial, every length class (empty, sub-word, non-word tails, large),
// and after seeks — and the sharded form must match the serial form for
// any shard count.
#include "scrambler/block_scrambler.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "lfsr/catalog.hpp"
#include "scrambler/scrambler.hpp"
#include "support/bitstream.hpp"
#include "support/host_threads.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

/// Nonzero seed fitting the generator's degree.
std::uint64_t seed_for(const Gf2Poly& g, Rng& rng) {
  const std::uint64_t mask =
      g.degree() >= 64 ? ~std::uint64_t{0} : (1ull << g.degree()) - 1;
  std::uint64_t s;
  do {
    s = rng.next_u64() & mask;
  } while (s == 0);
  return s;
}

/// Reference scramble via the bit-serial engine, LSB-first packing.
std::vector<std::uint8_t> serial_scramble(const Gf2Poly& g,
                                          std::uint64_t seed,
                                          const std::vector<std::uint8_t>& in) {
  AdditiveScrambler ref(g, seed);
  return ref.process(BitStream::from_bytes_lsb_first(in))
      .to_bytes_lsb_first();
}

TEST(BlockScrambler, BitExactAcrossCatalog) {
  Rng rng(11);
  for (const auto& [name, g] : catalog::all_scrambler_polys()) {
    const std::uint64_t seed = seed_for(g, rng);
    BlockScrambler scr(g, seed);
    EXPECT_EQ(scr.order(), g.degree()) << name;
    for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                std::size_t{7}, std::size_t{8},
                                std::size_t{63}, std::size_t{64},
                                std::size_t{65}, std::size_t{777},
                                std::size_t{4096}}) {
      std::vector<std::uint8_t> buf = rng.next_bytes(n);
      const std::vector<std::uint8_t> want = serial_scramble(g, seed, buf);
      scr.seek(0);
      scr.process(buf);
      EXPECT_EQ(buf, want) << name << " n=" << n;
    }
  }
}

TEST(BlockScrambler, LengthSweepWithRandomSeeds) {
  // Every length 0..300 (all tail shapes against the 64-byte superstep /
  // 8-byte / byte-tail path boundaries), fresh seed per length.
  const Gf2Poly g = catalog::scrambler_80211();
  Rng rng(12);
  for (std::size_t n = 0; n <= 300; ++n) {
    const std::uint64_t seed = seed_for(g, rng);
    std::vector<std::uint8_t> buf = rng.next_bytes(n);
    const std::vector<std::uint8_t> want = serial_scramble(g, seed, buf);
    BlockScrambler scr(g, seed);
    scr.process(buf);
    ASSERT_EQ(buf, want) << "n=" << n;
  }
}

TEST(BlockScrambler, SplitProcessingContinuesTheStream) {
  // Scrambling a buffer in arbitrary pieces (including tail-sized ones
  // that force the Gf2Advance hop) must equal one whole-buffer pass.
  const Gf2Poly g = catalog::scrambler_dvb();
  const std::uint64_t seed = 0x51AC;
  Rng rng(13);
  std::vector<std::uint8_t> whole = rng.next_bytes(1000);
  std::vector<std::uint8_t> pieces = whole;
  BlockScrambler a(g, seed);
  a.process(whole);
  BlockScrambler b(g, seed);
  std::size_t off = 0;
  for (const std::size_t len : {1u, 3u, 8u, 64u, 5u, 200u, 19u}) {
    b.process(pieces.data() + off, len);
    off += len;
  }
  b.process(pieces.data() + off, pieces.size() - off);
  EXPECT_EQ(pieces, whole);
  EXPECT_EQ(b.state(), a.state());
  EXPECT_EQ(b.position(), a.position());
}

TEST(BlockScrambler, KeystreamMatchesSerialGenerator) {
  for (const auto& [name, g] : catalog::all_scrambler_polys()) {
    const std::uint64_t seed = 1;  // valid for every degree
    AdditiveScrambler ref(g, seed);
    BlockScrambler scr(g, seed);
    const BitStream want = ref.keystream(8 * 129);
    const std::vector<std::uint8_t> got = scr.keystream_bytes(129);
    EXPECT_EQ(got, want.to_bytes_lsb_first()) << name;
    EXPECT_EQ(scr.state(), ref.state()) << name;
  }
}

TEST(BlockScrambler, KeystreamWordMatchesSerialBits) {
  const Gf2Poly g = catalog::prbs31();
  const std::uint64_t seed = 0xACE1;
  AdditiveScrambler ref(g, seed);
  BlockScrambler scr(g, seed);
  const BitStream bits = ref.keystream(3 * 64);
  for (int w = 0; w < 3; ++w) {
    std::uint64_t want = 0;
    for (int i = 0; i < 64; ++i)
      want |= static_cast<std::uint64_t>(bits.get(64 * w + i)) << i;
    EXPECT_EQ(scr.keystream_word(), want) << "word " << w;
  }
  EXPECT_EQ(scr.position(), 3u * 64u);
}

TEST(BlockScrambler, SeekEqualsDiscard) {
  Rng rng(14);
  for (const auto& [name, g] : catalog::all_scrambler_polys()) {
    const std::uint64_t seed = seed_for(g, rng);
    for (const std::uint64_t skip : {0ull, 1ull, 7ull, 64ull, 1234ull}) {
      AdditiveScrambler ref(g, seed);
      ref.keystream(skip);  // discard
      BlockScrambler scr(g, seed);
      scr.seek(skip);
      EXPECT_EQ(scr.state(), ref.state()) << name << " skip=" << skip;
      EXPECT_EQ(scr.position(), skip);
      EXPECT_EQ(scr.keystream_bytes(32),
                ref.keystream(8 * 32).to_bytes_lsb_first())
          << name << " skip=" << skip;
    }
  }
}

TEST(BlockScrambler, SeekIsRandomAccess) {
  // Seeks commute: any order of visits lands on the same keystream.
  const Gf2Poly g = catalog::prbs23();
  const std::uint64_t seed = 0xBEEF;
  BlockScrambler scr(g, seed);
  const std::vector<std::uint8_t> at0 = scr.keystream_bytes(16);
  scr.seek(1 << 20);
  const std::vector<std::uint8_t> far = scr.keystream_bytes(16);
  scr.seek(0);
  EXPECT_EQ(scr.keystream_bytes(16), at0);
  scr.seek(1 << 20);
  EXPECT_EQ(scr.keystream_bytes(16), far);
}

TEST(BlockScrambler, ProcessIsInvolution) {
  const Gf2Poly g = catalog::scrambler_80211();
  Rng rng(15);
  const std::vector<std::uint8_t> orig = rng.next_bytes(500);
  std::vector<std::uint8_t> buf = orig;
  BlockScrambler scr(g, 0x7F);
  scr.process(buf);
  EXPECT_NE(buf, orig);
  scr.seek(0);
  scr.process(buf);
  EXPECT_EQ(buf, orig);
}

TEST(BlockScrambler, BlockStepsStayLinear) {
  BlockScrambler scr(catalog::scrambler_80211(), 0x7F);
  std::vector<std::uint8_t> buf(4096);
  scr.process(buf);
  // One block step covers >= 8 bytes except a single tail chunk.
  EXPECT_LE(scr.block_steps(), buf.size() / 8 + 1);
}

TEST(BlockScrambler, RejectsBadArguments) {
  EXPECT_THROW(BlockScrambler(catalog::scrambler_80211(), 0),
               std::invalid_argument);
  // Seed bits above the degree are masked off; an all-high seed is zero.
  EXPECT_THROW(BlockScrambler(catalog::scrambler_80211(), 0xFF80),
               std::invalid_argument);
  EXPECT_THROW(BlockScrambler(Gf2Poly::from_exponents({65, 1, 0}), 1),
               std::invalid_argument);
}

TEST(ParallelScramble, ShardSweepMatchesSerial) {
  Rng rng(16);
  const Gf2Poly g = catalog::scrambler_dvb();
  const std::uint64_t seed = 0x1FFF;
  for (const std::size_t shards : {1u, 2u, 3u, 4u, 7u, 8u}) {
    // min_shard_bytes = 1 and cap_to_host = false force the full split
    // regardless of buffer size or host core count.
    ParallelScramble par(g, seed, shards, 1, /*cap_to_host=*/false);
    EXPECT_EQ(par.shards(), shards);
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{shards - 1},
          std::size_t{shards}, std::size_t{1000}, std::size_t{4096 + 13}}) {
      std::vector<std::uint8_t> buf = rng.next_bytes(n);
      const std::vector<std::uint8_t> want = serial_scramble(g, seed, buf);
      par.process(buf);
      ASSERT_EQ(buf, want) << "shards=" << shards << " n=" << n;
    }
  }
}

TEST(ParallelScramble, RepeatedCallsAreFrameSynchronous) {
  // Every process() call restarts at keystream position 0, so two calls
  // on the same data give the same result (and compose to the identity).
  const Gf2Poly g = catalog::scrambler_80211();
  ParallelScramble par(g, 0x5D, 4, 1, /*cap_to_host=*/false);
  Rng rng(17);
  const std::vector<std::uint8_t> orig = rng.next_bytes(2000);
  std::vector<std::uint8_t> a = orig;
  par.process(a);
  std::vector<std::uint8_t> b = orig;
  par.process(b);
  EXPECT_EQ(a, b);
  par.process(a);
  EXPECT_EQ(a, orig);
}

TEST(ParallelScramble, SmallBufferFallbackMatches) {
  // Below min_shard_bytes the serial path must still scramble from
  // position 0 (default threshold: one 64 KiB slice per shard).
  const Gf2Poly g = catalog::prbs9();
  const std::uint64_t seed = 0x1D5;
  ParallelScramble par(g, seed, 4);
  Rng rng(18);
  std::vector<std::uint8_t> buf = rng.next_bytes(512);
  const std::vector<std::uint8_t> want = serial_scramble(g, seed, buf);
  par.process(buf);
  EXPECT_EQ(buf, want);
}

TEST(ParallelScramble, EffectiveShardsScaleWithBufferSize) {
  // The per-call shard count ramps with n / min_shard_bytes instead of
  // flipping from 1 to shards() at a single threshold — every slice the
  // pool sees clears the amortization floor.
  const Gf2Poly g = catalog::scrambler_dvb();
  ParallelScramble par(g, 0x1FFF, 8, 100, /*cap_to_host=*/false);
  EXPECT_EQ(par.effective_shards(0), 1u);
  EXPECT_EQ(par.effective_shards(99), 1u);
  EXPECT_EQ(par.effective_shards(100), 1u);  // one slice of 100
  EXPECT_EQ(par.effective_shards(200), 2u);
  EXPECT_EQ(par.effective_shards(399), 3u);
  EXPECT_EQ(par.effective_shards(800), 8u);
  EXPECT_EQ(par.effective_shards(1u << 20), 8u);  // capped at shards()
}

TEST(ParallelScramble, PartialSplitMatchesSerial) {
  // Buffer sizes that engage only *some* of the shards (the gradual ramp
  // between serial and full split) must stay bit-exact, including sizes
  // that leave a near-equal remainder.
  Rng rng(19);
  const Gf2Poly g = catalog::scrambler_80211();
  const std::uint64_t seed = 0x6E;
  ParallelScramble par(g, seed, 8, 256, /*cap_to_host=*/false);
  for (const std::size_t n : {std::size_t{255}, std::size_t{256},
                              std::size_t{511}, std::size_t{513},
                              std::size_t{1023}, std::size_t{1999},
                              std::size_t{2048}, std::size_t{2049}}) {
    std::vector<std::uint8_t> buf = rng.next_bytes(n);
    const std::vector<std::uint8_t> want = serial_scramble(g, seed, buf);
    par.process(buf);
    ASSERT_EQ(buf, want) << "n=" << n;
  }
}

TEST(ParallelScramble, HostCapBoundsShardCount) {
  // With the default cap_to_host, an over-subscribed request clamps to
  // host_threads() — extra threads on a compute-bound kernel only add
  // hand-off cost (the shard-scaling regression this guards against).
  // host_threads() is never 0, so the clamp always engages.
  ParallelScramble par(catalog::prbs15(), 0x11, 1000);
  EXPECT_LE(par.shards(), host_threads());
  EXPECT_GE(par.shards(), 1u);
  // Capping never raises the count, and results stay bit-exact.
  Rng rng(20);
  std::vector<std::uint8_t> buf = rng.next_bytes(3000);
  const std::vector<std::uint8_t> want =
      serial_scramble(catalog::prbs15(), 0x11, buf);
  par.process(buf);
  EXPECT_EQ(buf, want);
}

TEST(BlockScrambler, ForwardSeekFromLiveStateMatchesAbsolute) {
  // seek() may hop from the live state instead of the seed when that is
  // cheaper; both anchors must land on the same keystream.
  const Gf2Poly g = catalog::prbs31();
  const std::uint64_t seed = 0xACE1;
  BlockScrambler a(g, seed), b(g, seed);
  b.seek(8 * 1024);  // b now has a live state ahead of 0
  for (const std::uint64_t pos : {8 * 1024ull, 8 * 1025ull, 8 * 4096ull,
                                  (8ull << 20) + 8}) {
    a.seek(pos);  // fresh-ish engine: absolute path
    b.seek(pos);  // forward path candidate
    ASSERT_EQ(a.state(), b.state()) << "pos=" << pos;
    ASSERT_EQ(a.keystream_bytes(16), b.keystream_bytes(16)) << "pos=" << pos;
    a.seek(0);
  }
}

TEST(ParallelScramble, RejectsZeroShards) {
  EXPECT_THROW(ParallelScramble(catalog::prbs7(), 1, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace plfsr
