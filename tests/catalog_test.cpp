#include "lfsr/catalog.hpp"

#include <gtest/gtest.h>

namespace plfsr {
namespace {

TEST(Catalog, CrcDegrees) {
  EXPECT_EQ(catalog::crc32_ethernet().degree(), 32);
  EXPECT_EQ(catalog::crc16_ccitt().degree(), 16);
  EXPECT_EQ(catalog::crc24_openpgp().degree(), 24);
  EXPECT_EQ(catalog::crc5_usb().degree(), 5);
  EXPECT_EQ(catalog::crc64_ecma().degree(), 64);
}

TEST(Catalog, ScramblerForms) {
  EXPECT_EQ(catalog::scrambler_80211().to_string(), "x^7 + x^4 + 1");
  EXPECT_EQ(catalog::scrambler_dvb().to_string(), "x^15 + x^14 + 1");
  EXPECT_EQ(catalog::prbs31().to_string(), "x^31 + x^28 + 1");
}

TEST(Catalog, A51RegisterDegrees) {
  EXPECT_EQ(catalog::a51_r1().degree(), 19);
  EXPECT_EQ(catalog::a51_r2().degree(), 22);
  EXPECT_EQ(catalog::a51_r3().degree(), 23);
}

TEST(Catalog, ListingsAreComplete) {
  EXPECT_EQ(catalog::all_crc_polys().size(), 11u);
  EXPECT_EQ(catalog::all_scrambler_polys().size(), 6u);
  for (const auto& [name, poly] : catalog::all_crc_polys()) {
    EXPECT_FALSE(name.empty());
    EXPECT_GE(poly.degree(), 5);
  }
}

TEST(Catalog, A51PolynomialsArePrimitive) {
  // GSM chose maximal-length registers.
  EXPECT_TRUE(catalog::a51_r1().is_primitive());
  EXPECT_TRUE(catalog::a51_r2().is_primitive());
  EXPECT_TRUE(catalog::a51_r3().is_primitive());
}

}  // namespace
}  // namespace plfsr
