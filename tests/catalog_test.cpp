#include "lfsr/catalog.hpp"

#include <gtest/gtest.h>

namespace plfsr {
namespace {

TEST(Catalog, CrcDegrees) {
  EXPECT_EQ(catalog::crc32_ethernet().degree(), 32);
  EXPECT_EQ(catalog::crc16_ccitt().degree(), 16);
  EXPECT_EQ(catalog::crc24_openpgp().degree(), 24);
  EXPECT_EQ(catalog::crc5_usb().degree(), 5);
  EXPECT_EQ(catalog::crc64_ecma().degree(), 64);
}

TEST(Catalog, ScramblerForms) {
  EXPECT_EQ(catalog::scrambler_80211().to_string(), "x^7 + x^4 + 1");
  EXPECT_EQ(catalog::scrambler_dvb().to_string(), "x^15 + x^14 + 1");
  EXPECT_EQ(catalog::prbs31().to_string(), "x^31 + x^28 + 1");
}

TEST(Catalog, A51RegisterDegrees) {
  EXPECT_EQ(catalog::a51_r1().degree(), 19);
  EXPECT_EQ(catalog::a51_r2().degree(), 22);
  EXPECT_EQ(catalog::a51_r3().degree(), 23);
}

TEST(Catalog, ListingsAreComplete) {
  EXPECT_EQ(catalog::all_crc_polys().size(), 11u);
  EXPECT_EQ(catalog::all_scrambler_polys().size(), 6u);
  for (const auto& [name, poly] : catalog::all_crc_polys()) {
    EXPECT_FALSE(name.empty());
    EXPECT_GE(poly.degree(), 5);
  }
}

TEST(Catalog, GfmFieldPolynomialsArePrimitive) {
  // The FEC symbol fields: one primitive polynomial per m, proven
  // primitive by the exact Gf2Poly test (not just irreducible).
  for (const unsigned m : {4u, 8u, 10u, 12u, 16u}) {
    const Gf2Poly p = catalog::gfm_primitive(m);
    EXPECT_EQ(p.degree(), static_cast<int>(m));
    EXPECT_TRUE(p.is_irreducible()) << "m=" << m;
    EXPECT_TRUE(p.is_primitive()) << "m=" << m;
  }
  // The named accessors agree with the parameterized entry.
  EXPECT_EQ(catalog::gf16_field().exponents(),
            catalog::gfm_primitive(4).exponents());
  EXPECT_EQ(catalog::gf256_field().exponents(),
            catalog::gfm_primitive(8).exponents());
  EXPECT_EQ(catalog::gf65536_field().exponents(),
            catalog::gfm_primitive(16).exponents());
  // GF(256) is the DVB/CCSDS Reed–Solomon field 0x11D.
  EXPECT_EQ(catalog::gf256_field().to_string(),
            "x^8 + x^4 + x^3 + x^2 + 1");
  EXPECT_EQ(catalog::all_gfm_field_polys().size(), 5u);
  for (const auto& [name, poly] : catalog::all_gfm_field_polys())
    EXPECT_TRUE(poly.is_primitive()) << name;
}

TEST(Catalog, A51PolynomialsArePrimitive) {
  // GSM chose maximal-length registers.
  EXPECT_TRUE(catalog::a51_r1().is_primitive());
  EXPECT_TRUE(catalog::a51_r2().is_primitive());
  EXPECT_TRUE(catalog::a51_r3().is_primitive());
}

}  // namespace
}  // namespace plfsr
