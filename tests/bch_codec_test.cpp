// Binary BCH codec: the generator must be the LCM of the right minimal
// polynomials (pinned against the textbook BCH(255,239)/BCH(255,223)
// geometries and by dividing x^n + 1), encode must be a codeword
// producer, and decode must correct every bit-error weight up to t,
// detect t+1, and handle shortened blocks.
#include "fec/bch_codec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "support/rng.hpp"

namespace plfsr {
namespace {

std::vector<std::uint32_t> distinct_positions(Rng& rng, std::size_t len,
                                              std::size_t count) {
  std::vector<std::uint32_t> out;
  while (out.size() < count) {
    const auto p = static_cast<std::uint32_t>(rng.next_below(len));
    if (std::find(out.begin(), out.end(), p) == out.end()) out.push_back(p);
  }
  return out;
}

void flip_bit(std::span<std::uint8_t> buf, std::uint32_t bit) {
  buf[bit / 8] ^= static_cast<std::uint8_t>(0x80u >> (bit % 8));
}

TEST(BchCodec, DerivesTheTextbookGeometries) {
  const BchCodec t2(fec::bch_255_t2());
  EXPECT_EQ(t2.spec().n, 255u);
  EXPECT_EQ(t2.spec().k, 239u);
  EXPECT_EQ(t2.parity_bits(), 16u);
  EXPECT_EQ(t2.data_bytes(), 29u);  // floor(239 / 8)
  EXPECT_EQ(t2.parity_bytes(), 2u);
  EXPECT_EQ(t2.max_errors(), 2u);

  const BchCodec t4(fec::bch_255_t4());
  EXPECT_EQ(t4.spec().k, 223u);
  EXPECT_EQ(t4.parity_bits(), 32u);
  EXPECT_EQ(t4.max_errors(), 4u);
}

TEST(BchCodec, GeneratorDividesXnPlusOneAndHasTheDesignedRoots) {
  for (const FecSpec spec : {fec::bch_255_t2(), fec::bch_255_t4()}) {
    const BchCodec bch(spec);
    // g | x^255 + 1 (every codeword generator of a cyclic code does).
    Gf2Poly xn1 = Gf2Poly::x_pow(255);
    xn1.set_coeff(0, true);
    EXPECT_TRUE((xn1 % bch.generator()).is_zero()) << spec.name();
    // alpha^1 .. alpha^2t are roots of g, evaluated in GF(2^m).
    const GfmField& f = bch.field();
    std::vector<GfmField::Sym> g;
    for (int i = 0; i <= bch.generator().degree(); ++i)
      g.push_back(bch.generator().coeff(static_cast<unsigned>(i)) ? 1 : 0);
    for (unsigned j = 1; j <= 2 * spec.t; ++j)
      EXPECT_EQ(f.poly_eval(g, f.alpha_pow(j)), 0)
          << spec.name() << " root " << j;
  }
}

TEST(BchCodec, RoundTripsEveryBitErrorWeightUpToT) {
  Rng rng(21);
  for (const FecSpec spec : {fec::bch_255_t2(), fec::bch_255_t4()}) {
    const BchCodec bch(spec);
    for (std::size_t errors = 0; errors <= bch.max_errors(); ++errors) {
      const auto data = rng.next_bytes(bch.data_bytes());
      std::vector<std::uint8_t> code(bch.code_bytes());
      bch.encode_block(data, code);
      for (const std::uint32_t b :
           distinct_positions(rng, code.size() * 8, errors))
        flip_bit(code, b);
      const FecDecodeResult r = bch.decode_block(code);
      ASSERT_TRUE(r.ok) << spec.name() << " errors=" << errors;
      EXPECT_EQ(r.corrected_errors, errors) << spec.name();
      EXPECT_TRUE(std::equal(data.begin(), data.end(), code.begin()))
          << spec.name();
    }
  }
}

TEST(BchCodec, ShortenedBlocksRoundTrip) {
  Rng rng(22);
  const BchCodec bch(fec::bch_255_t4());
  for (std::size_t dlen : {1u, 5u, 20u, 27u}) {
    const auto data = rng.next_bytes(dlen);
    std::vector<std::uint8_t> code(dlen + bch.parity_bytes());
    bch.encode_block(data, code);
    for (const std::uint32_t b : distinct_positions(rng, code.size() * 8, 4))
      flip_bit(code, b);
    const FecDecodeResult r = bch.decode_block(code);
    ASSERT_TRUE(r.ok) << "dlen=" << dlen;
    EXPECT_TRUE(std::equal(data.begin(), data.end(), code.begin()));
  }
}

TEST(BchCodec, BeyondRadiusNeverReturnsTheOriginalAsOk) {
  Rng rng(23);
  const BchCodec bch(fec::bch_255_t2());
  std::size_t detected = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const auto data = rng.next_bytes(bch.data_bytes());
    std::vector<std::uint8_t> code(bch.code_bytes());
    bch.encode_block(data, code);
    for (const std::uint32_t b :
         distinct_positions(rng, code.size() * 8, bch.max_errors() + 1))
      flip_bit(code, b);
    const FecDecodeResult r = bch.decode_block(code);
    EXPECT_FALSE(r.ok && std::equal(data.begin(), data.end(), code.begin()));
    if (!r.ok) ++detected;
  }
  // t+1 bit flips mostly land outside every decoding sphere; a binary
  // code this dense miscorrects sometimes, but detection must dominate.
  EXPECT_GE(detected, 50u);
}

TEST(BchCodec, RejectsBadSpecsAndSizes) {
  EXPECT_THROW(BchCodec{fec::rs_255_223()}, std::invalid_argument);
  EXPECT_THROW(BchCodec{fec::bch(8, 0)}, std::invalid_argument);
  // t = 1 gives deg g = 8? No: m = 8 gives deg M_1 = 8, so parity 8 bits
  // — byte aligned and fine. A mis-declared k must be rejected.
  FecSpec bad = fec::bch(8, 2);
  bad.n = 255;
  bad.k = 200;
  EXPECT_THROW(BchCodec{bad}, std::invalid_argument);

  const BchCodec bch(fec::bch_255_t2());
  std::vector<std::uint8_t> buf(bch.code_bytes() + 1);
  EXPECT_THROW(bch.encode_block(
                   std::span<const std::uint8_t>(buf.data(), 30), buf),
               std::invalid_argument);  // over data_bytes
  EXPECT_THROW(
      bch.decode_block(std::span<std::uint8_t>(buf.data(), 2)),
      std::invalid_argument);  // parity only
}

TEST(BchCodec, SingleBitErrorEveryPosition) {
  // Exhaustive single-bit sweep on the t=2 code: every one of the
  // 31 * 8 bit positions must come back corrected.
  Rng rng(24);
  const BchCodec bch(fec::bch_255_t2());
  const auto data = rng.next_bytes(bch.data_bytes());
  std::vector<std::uint8_t> clean(bch.code_bytes());
  bch.encode_block(data, clean);
  for (std::uint32_t b = 0; b < clean.size() * 8; ++b) {
    std::vector<std::uint8_t> code = clean;
    flip_bit(code, b);
    const FecDecodeResult r = bch.decode_block(code);
    ASSERT_TRUE(r.ok) << "bit " << b;
    ASSERT_EQ(r.corrected_errors, 1u) << "bit " << b;
    ASSERT_EQ(code, clean) << "bit " << b;
  }
}

}  // namespace
}  // namespace plfsr
