// GF(2^m) symbol fields: the catalogue polynomial of every m must be
// primitive, the field laws (associativity, distributivity, inverses,
// Frobenius) must hold — exhaustively for the small fields, on a
// randomized sweep for the large ones — and the compile-time GF(256)
// kernel (gf256.hpp) must agree with the table field everywhere,
// including its 8-lane SWAR multiply.
#include "gfm/gfm_field.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gfm/gf256.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

using Sym = GfmField::Sym;

TEST(GfmField, CataloguePolynomialsArePrimitiveForEveryM) {
  for (unsigned m = 1; m <= 16; ++m) {
    const Gf2Poly p = default_primitive_poly(m);
    EXPECT_EQ(p.degree(), static_cast<int>(m));
    EXPECT_TRUE(p.is_primitive()) << "m=" << m << ": " << p.to_string();
  }
}

TEST(GfmField, RejectsNonPrimitiveAndOutOfRange) {
  // x^4 + x^3 + x^2 + x + 1 is irreducible but not primitive (order 5).
  EXPECT_THROW(GfmField(Gf2Poly::from_exponents({4, 3, 2, 1, 0})),
               std::invalid_argument);
  // x^2 + 1 = (x+1)^2 is not even irreducible.
  EXPECT_THROW(GfmField(Gf2Poly::from_exponents({2, 0})),
               std::invalid_argument);
  EXPECT_THROW(GfmField::of(0), std::invalid_argument);
  EXPECT_THROW(GfmField::of(17), std::invalid_argument);
}

TEST(GfmField, AlphaGeneratesTheFullMultiplicativeGroup) {
  for (unsigned m : {2u, 4u, 8u, 10u}) {
    const GfmField& f = GfmField::of(m);
    std::vector<char> seen(f.order(), 0);
    Sym x = 1;
    for (std::uint32_t i = 0; i < f.order() - 1; ++i) {
      EXPECT_FALSE(seen[x]) << "m=" << m << " repeat at i=" << i;
      seen[x] = 1;
      EXPECT_EQ(f.alpha_pow(i), x) << "m=" << m;
      EXPECT_EQ(f.log(x), i) << "m=" << m;
      x = f.mul(x, f.alpha());
    }
    EXPECT_EQ(x, 1) << "m=" << m << ": alpha order is not q-1";
  }
}

// Field laws, exhaustive over all triples for m <= 4.
TEST(GfmField, LawsExhaustiveSmallFields) {
  for (unsigned m : {1u, 2u, 3u, 4u}) {
    const GfmField& f = GfmField::of(m);
    const std::uint32_t q = f.order();
    for (Sym a = 0; a < q; ++a) {
      if (a != 0) {
        EXPECT_EQ(f.mul(a, f.inv(a)), 1) << "m=" << m;
        EXPECT_EQ(f.div(a, a), 1) << "m=" << m;
      }
      for (Sym b = 0; b < q; ++b) {
        EXPECT_EQ(f.mul(a, b), f.mul(b, a)) << "m=" << m;
        // Frobenius: squaring is additive in characteristic 2.
        EXPECT_EQ(f.mul(f.add(a, b), f.add(a, b)),
                  f.add(f.mul(a, a), f.mul(b, b)))
            << "m=" << m;
        for (Sym c = 0; c < q; ++c) {
          EXPECT_EQ(f.mul(a, f.mul(b, c)), f.mul(f.mul(a, b), c))
              << "m=" << m;
          EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)))
              << "m=" << m;
        }
      }
    }
  }
}

// Field laws, randomized sweep for every supported m.
TEST(GfmField, LawsRandomizedAllFields) {
  Rng rng(0xF1E1D);
  for (unsigned m = 1; m <= 16; ++m) {
    const GfmField& f = GfmField::of(m);
    const std::uint32_t q = f.order();
    for (int it = 0; it < 500; ++it) {
      const Sym a = static_cast<Sym>(rng.next_below(q));
      const Sym b = static_cast<Sym>(rng.next_below(q));
      const Sym c = static_cast<Sym>(rng.next_below(q));
      EXPECT_EQ(f.mul(a, f.mul(b, c)), f.mul(f.mul(a, b), c)) << "m=" << m;
      EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)))
          << "m=" << m;
      EXPECT_EQ(f.mul(f.add(a, b), f.add(a, b)),
                f.add(f.mul(a, a), f.mul(b, b)))
          << "m=" << m;
      if (b != 0) {
        EXPECT_EQ(f.mul(f.div(a, b), b), a) << "m=" << m;
        EXPECT_EQ(f.mul(b, f.inv(b)), 1) << "m=" << m;
      }
      EXPECT_EQ(f.pow(a, 3), f.mul(a, f.mul(a, a))) << "m=" << m;
    }
  }
}

TEST(GfmField, PolyHelpersAgreeWithLonghand) {
  const GfmField& f = GfmField::of(8);
  // (x + 3)(x + 5) = x^2 + (3+5)x + 15 over GF(256).
  const std::vector<Sym> prod = f.poly_mul({3, 1}, {5, 1});
  ASSERT_EQ(prod.size(), 3u);
  EXPECT_EQ(prod[2], 1);
  EXPECT_EQ(prod[1], 3 ^ 5);
  EXPECT_EQ(prod[0], f.mul(3, 5));
  // Derivative keeps odd powers only.
  const std::vector<Sym> d = f.poly_derivative({7, 9, 11, 13});
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0], 9);
  EXPECT_EQ(d[1], 0);
  EXPECT_EQ(d[2], 13);
  // Horner agrees with term-by-term evaluation.
  Rng rng(11);
  for (int it = 0; it < 100; ++it) {
    std::vector<Sym> p;
    for (std::size_t i = rng.next_below(6) + 1; i-- > 0;)
      p.push_back(static_cast<Sym>(rng.next_below(256)));
    const Sym x = static_cast<Sym>(rng.next_below(256));
    Sym want = 0;
    for (std::size_t i = 0; i < p.size(); ++i)
      want = f.add(want, f.mul(p[i], f.pow(x, i)));
    EXPECT_EQ(f.poly_eval(p, x), want);
  }
}

// --- The compile-time GF(256) kernel ---------------------------------------

TEST(Gf256, MatchesTableFieldEverywhere) {
  const GfmField& f = GfmField::of(8);
  ASSERT_EQ(f.poly().exponents(),
            Gf2Poly::with_top_bit(8, gf256::kPolyLow).exponents());
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const auto a8 = static_cast<std::uint8_t>(a);
      const auto b8 = static_cast<std::uint8_t>(b);
      ASSERT_EQ(gf256::mul(a8, b8), f.mul(a8, b8)) << a << "*" << b;
      ASSERT_EQ(gf256::mul_bitwise(a8, b8), f.mul(a8, b8));
    }
    if (a != 0) {
      EXPECT_EQ(gf256::inv(static_cast<std::uint8_t>(a)),
                f.inv(static_cast<Sym>(a)));
    }
  }
}

TEST(Gf256, SwarMultiplyMatchesEightScalarLanes) {
  Rng rng(0x5A5A);
  for (int it = 0; it < 2000; ++it) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = rng.next_u64();
    const std::uint64_t r = gf256::mul8(a, b);
    for (int lane = 0; lane < 8; ++lane) {
      const auto al = static_cast<std::uint8_t>(a >> (8 * lane));
      const auto bl = static_cast<std::uint8_t>(b >> (8 * lane));
      ASSERT_EQ(static_cast<std::uint8_t>(r >> (8 * lane)),
                gf256::mul(al, bl))
          << "lane " << lane;
    }
  }
}

TEST(Gf256, SplatBroadcastsOneByte) {
  EXPECT_EQ(gf256::splat(0xAB), 0xABABABABABABABABULL);
  // splat + mul8 is the encoder's feedback broadcast: every lane times
  // the same scalar.
  const std::uint64_t lanes = 0x0102030405060708ULL;
  const std::uint64_t r = gf256::mul8(gf256::splat(0x1D), lanes);
  for (int lane = 0; lane < 8; ++lane)
    EXPECT_EQ(static_cast<std::uint8_t>(r >> (8 * lane)),
              gf256::mul(0x1D, static_cast<std::uint8_t>(lanes >> (8 * lane))));
}

}  // namespace
}  // namespace plfsr
