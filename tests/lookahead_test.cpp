#include "lfsr/lookahead.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "lfsr/catalog.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

/// One M-step of the block form must equal M serial steps, for the state
/// AND the outputs — the core identity of §2. Parameterized over
/// (system kind, generator index, M).
class LookAheadEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 protected:
  LinearSystem make_system() const {
    const auto [kind, poly_idx, m] = GetParam();
    const auto crcs = catalog::all_crc_polys();
    const auto scrs = catalog::all_scrambler_polys();
    switch (kind) {
      case 0:
        return make_crc_system(crcs[poly_idx % crcs.size()].poly);
      case 1:
        return make_scrambler_system(scrs[poly_idx % scrs.size()].poly);
      default:
        return make_prbs_system(scrs[poly_idx % scrs.size()].poly);
    }
  }
  std::size_t m() const { return static_cast<std::size_t>(std::get<2>(GetParam())); }
};

TEST_P(LookAheadEquivalence, BlockStepEqualsSerialSteps) {
  const LinearSystem sys = make_system();
  const LookAhead la(sys, m());
  Rng rng(std::get<0>(GetParam()) * 1000 + std::get<1>(GetParam()) * 10 +
          static_cast<std::uint64_t>(m()));

  Gf2Vec x_serial(sys.dim());
  for (std::size_t i = 0; i < sys.dim(); ++i)
    x_serial.set(i, rng.next_bit());
  Gf2Vec x_block = x_serial;

  for (int round = 0; round < 5; ++round) {
    Gf2Vec u(m());
    for (std::size_t i = 0; i < m(); ++i) u.set(i, rng.next_bit());

    Gf2Vec y_serial(m());
    for (std::size_t i = 0; i < m(); ++i)
      y_serial.set(i, sys.step(x_serial, u.get(i)));
    const Gf2Vec y_block = la.step(x_block, u);

    EXPECT_EQ(y_block, y_serial) << "round " << round;
    EXPECT_EQ(x_block, x_serial) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsPolysAndM, LookAheadEquivalence,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1, 2, 3, 7, 8, 16, 32, 33, 64, 128)));

TEST(LookAhead, PaperInputMatrixIsColumnReversed) {
  const LinearSystem sys = make_crc_system(catalog::crc8_atm());
  const LookAhead la(sys, 5);
  // Paper form: [b  Ab  A^2 b  A^3 b  A^4 b].
  const Gf2Matrix paper = la.paper_input_matrix();
  Gf2Vec acc = sys.b;
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_EQ(paper.column(j), acc) << "column " << j;
    acc = sys.a * acc;
  }
  // Natural form is the reverse.
  for (std::size_t j = 0; j < 5; ++j)
    EXPECT_EQ(la.bm().column(j), paper.column(4 - j));
}

TEST(LookAhead, AmIsMatrixPower) {
  const LinearSystem sys = make_crc_system(catalog::crc16_ccitt());
  const LookAhead la(sys, 24);
  EXPECT_EQ(la.am(), sys.a.pow(24));
}

TEST(LookAhead, DmIsLowerTriangularWithFeedthroughDiagonal) {
  const LinearSystem sys = make_scrambler_system(catalog::scrambler_80211());
  const LookAhead la(sys, 8);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j) {
      if (j > i) {
        EXPECT_FALSE(la.dm().get(i, j)) << i << "," << j;
      }
      if (j == i) {
        EXPECT_TRUE(la.dm().get(i, j));  // d = 1 for scramblers
      }
    }
}

TEST(LookAhead, RunMatchesSerialRunOnWholeStream) {
  const LinearSystem sys = make_scrambler_system(catalog::scrambler_dvb());
  const LookAhead la(sys, 16);
  Rng rng(77);
  const BitStream data = rng.next_bits(16 * 9);
  Gf2Vec xs = Gf2Vec::from_word(15, 0x35AB);
  Gf2Vec xb = xs;
  const BitStream ys = sys.run(xs, data);
  const BitStream yb = la.run(xb, data);
  EXPECT_EQ(yb, ys);
  EXPECT_EQ(xb, xs);
}

TEST(LookAhead, MOneDegeneratesToSerial) {
  const LinearSystem sys = make_crc_system(catalog::crc8_maxim());
  const LookAhead la(sys, 1);
  EXPECT_EQ(la.am(), sys.a);
  EXPECT_EQ(la.bm().column(0), sys.b);
}

TEST(LookAhead, RejectsZeroM) {
  const LinearSystem sys = make_crc_system(catalog::crc8_atm());
  EXPECT_THROW(LookAhead(sys, 0), std::invalid_argument);
}

}  // namespace
}  // namespace plfsr
