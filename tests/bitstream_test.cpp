#include "support/bitstream.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace plfsr {
namespace {

TEST(BitStream, EmptyByDefault) {
  BitStream s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(BitStream, PushBackAndGet) {
  BitStream s;
  s.push_back(true);
  s.push_back(false);
  s.push_back(true);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.get(0));
  EXPECT_FALSE(s.get(1));
  EXPECT_TRUE(s.get(2));
}

TEST(BitStream, SetOverwrites) {
  BitStream s(10);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_FALSE(s.get(i));
  s.set(7, true);
  EXPECT_TRUE(s.get(7));
  s.set(7, false);
  EXPECT_FALSE(s.get(7));
}

TEST(BitStream, CrossesWordBoundary) {
  BitStream s;
  for (int i = 0; i < 130; ++i) s.push_back(i % 3 == 0);
  ASSERT_EQ(s.size(), 130u);
  for (int i = 0; i < 130; ++i) EXPECT_EQ(s.get(i), i % 3 == 0) << i;
}

TEST(BitStream, FromBytesMsbFirst) {
  const std::uint8_t bytes[] = {0xA5};  // 1010 0101
  const BitStream s = BitStream::from_bytes_msb_first(bytes);
  EXPECT_EQ(s.to_string(), "10100101");
}

TEST(BitStream, FromBytesLsbFirst) {
  const std::uint8_t bytes[] = {0xA5};  // LSB first: 1,0,1,0,0,1,0,1
  const BitStream s = BitStream::from_bytes_lsb_first(bytes);
  EXPECT_EQ(s.to_string(), "10100101");
}

TEST(BitStream, ByteRoundTrips) {
  Rng rng(42);
  const auto bytes = rng.next_bytes(33);
  EXPECT_EQ(BitStream::from_bytes_lsb_first(bytes).to_bytes_lsb_first(),
            bytes);
  EXPECT_EQ(BitStream::from_bytes_msb_first(bytes).to_bytes_msb_first(),
            bytes);
}

TEST(BitStream, FromString) {
  const BitStream s = BitStream::from_string("0110");
  EXPECT_EQ(s.size(), 4u);
  EXPECT_FALSE(s.get(0));
  EXPECT_TRUE(s.get(1));
  EXPECT_THROW(BitStream::from_string("01x"), std::invalid_argument);
}

TEST(BitStream, ChunkReadsLowBitFirst) {
  const BitStream s = BitStream::from_string("1011");
  EXPECT_EQ(s.chunk(0, 4), 0b1101u);  // bit 0 of the chunk = stream bit 0
  EXPECT_EQ(s.chunk(1, 3), 0b110u);
}

TEST(BitStream, ChunkPastEndReadsZero) {
  const BitStream s = BitStream::from_string("11");
  EXPECT_EQ(s.chunk(0, 8), 0b11u);
  EXPECT_EQ(s.chunk(5, 8), 0u);
}

TEST(BitStream, ChunkRejectsOver64) {
  const BitStream s(4);
  EXPECT_THROW(s.chunk(0, 65), std::invalid_argument);
}

TEST(BitStream, AppendConcatenates) {
  BitStream a = BitStream::from_string("10");
  a.append(BitStream::from_string("01"));
  EXPECT_EQ(a.to_string(), "1001");
}

TEST(BitStream, EqualityIsContentBased) {
  EXPECT_EQ(BitStream::from_string("101"), BitStream::from_string("101"));
  EXPECT_FALSE(BitStream::from_string("101") == BitStream::from_string("100"));
  EXPECT_FALSE(BitStream::from_string("101") == BitStream::from_string("1010"));
}

}  // namespace
}  // namespace plfsr
