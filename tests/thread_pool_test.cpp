#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/thread_pool.hpp"

namespace plfsr {
namespace {

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.submit([&count] { ++count; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  int ran = 0;
  auto f = pool.submit([&ran] { ran = 1; });
  // Inline execution: the task has already run when submit returns.
  EXPECT_EQ(ran, 1);
  f.get();
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i)
      pool.submit([&count] { ++count; });
  }  // join happens here; queued work must not be dropped
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, StopWhileQueuedRunsEverything) {
  // Enter the destructor while the worker is still blocked inside the
  // first task and the rest of the queue is untouched: stop must finish
  // the backlog, not race past it. (The pipeline executor relies on this
  // to drain stage runners on shutdown.)
  std::atomic<int> count{0};
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::thread opener;
  {
    ThreadPool pool(1);
    pool.submit([opened] { opened.wait(); });
    for (int i = 0; i < 30; ++i)
      pool.submit([&count] { ++count; });
    // Release the gate only after ~ the destructor has started waiting.
    opener = std::thread([&gate] {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      gate.set_value();
    });
  }  // destructor: stop_ set with 30 tasks queued behind the blocker
  opener.join();
  EXPECT_EQ(count.load(), 30);
}

TEST(ThreadPool, WorkerSurvivesTaskException) {
  // An exception is confined to its future; the worker thread must keep
  // serving the queue afterwards.
  ThreadPool pool(1);
  auto bad = pool.submit([] { throw std::runtime_error("boom"); });
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 10; ++i)
    futs.push_back(pool.submit([&count] { ++count; }));
  EXPECT_THROW(bad.get(), std::runtime_error);
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ReuseAfterDrain) {
  // Submit a wave, drain it completely, then reuse the same pool for a
  // second wave — workers must still be parked on the condition variable,
  // not exited. Pipeline runs reuse one pool across start/wait cycles.
  ThreadPool pool(2);
  for (int wave = 0; wave < 3; ++wave) {
    std::atomic<int> count{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 50; ++i)
      futs.push_back(pool.submit([&count] { ++count; }));
    for (auto& f : futs) f.get();
    EXPECT_EQ(count.load(), 50) << "wave=" << wave;
  }
}

}  // namespace
}  // namespace plfsr
