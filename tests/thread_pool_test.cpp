#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "support/thread_pool.hpp"

namespace plfsr {
namespace {

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.submit([&count] { ++count; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  int ran = 0;
  auto f = pool.submit([&ran] { ran = 1; });
  // Inline execution: the task has already run when submit returns.
  EXPECT_EQ(ran, 1);
  f.get();
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i)
      pool.submit([&count] { ++count; });
  }  // join happens here; queued work must not be dropped
  EXPECT_EQ(count.load(), 20);
}

}  // namespace
}  // namespace plfsr
