#include "mapper/griffy.hpp"

#include <gtest/gtest.h>

#include "lfsr/catalog.hpp"
#include "mapper/op_builder.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

TEST(Griffy, ParseMinimalProgram) {
  const auto prog = griffy::parse(
      "; a 3-input parity\n"
      "op parity3 inputs=3\n"
      "n0 = xor in0 in1 in2\n"
      "out n0\n");
  EXPECT_EQ(prog.name, "parity3");
  EXPECT_EQ(prog.netlist.n_inputs(), 3u);
  EXPECT_EQ(prog.netlist.node_count(), 1u);
  EXPECT_TRUE(prog.netlist.evaluate(Gf2Vec::from_string("110")).is_zero());
  EXPECT_FALSE(prog.netlist.evaluate(Gf2Vec::from_string("100")).is_zero());
}

TEST(Griffy, OutputsSupportPassThroughAndZero) {
  const auto prog = griffy::parse(
      "op t inputs=2\n"
      "out in1 zero in0\n");
  const Gf2Vec out = prog.netlist.evaluate(Gf2Vec::from_string("10"));
  EXPECT_EQ(out.to_string(), "001");
}

TEST(Griffy, RoundTripMappedCrcOps) {
  // Print -> parse must reproduce the exact netlist for the real CRC
  // operations of the paper's mapping.
  for (std::size_t m : {16u, 64u}) {
    const CrcOpPlan plan =
        build_derby_crc_ops(catalog::crc32_ethernet(), m);
    for (const XorNetlist* nl : {&plan.op1.netlist, &plan.op2.netlist}) {
      const std::string text = griffy::print("crc_op", *nl);
      const auto back = griffy::parse(text);
      ASSERT_EQ(back.netlist.n_inputs(), nl->n_inputs());
      ASSERT_EQ(back.netlist.node_count(), nl->node_count());
      ASSERT_EQ(back.netlist.outputs(), nl->outputs());
      // And it computes the same function.
      Rng rng(m);
      for (int t = 0; t < 10; ++t) {
        Gf2Vec z(nl->n_inputs());
        for (std::size_t i = 0; i < z.size(); ++i) z.set(i, rng.next_bit());
        EXPECT_EQ(back.netlist.evaluate(z), nl->evaluate(z));
      }
    }
  }
}

TEST(Griffy, FaninDeclarationEnforced) {
  EXPECT_THROW(griffy::parse("op t inputs=4 fanin=2\n"
                             "n0 = xor in0 in1 in2\n"),
               std::invalid_argument);
}

TEST(Griffy, ErrorsCarryLineNumbers) {
  try {
    griffy::parse("op t inputs=2\n"
                  "n0 = xor in0 in5\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Griffy, RejectsMalformedPrograms) {
  EXPECT_THROW(griffy::parse(""), std::invalid_argument);
  EXPECT_THROW(griffy::parse("n0 = xor in0\n"), std::invalid_argument);
  EXPECT_THROW(griffy::parse("op t inputs=2\nop t2 inputs=2\n"),
               std::invalid_argument);
  EXPECT_THROW(griffy::parse("op t\n"), std::invalid_argument);
  EXPECT_THROW(griffy::parse("op t inputs=2 colour=red\n"),
               std::invalid_argument);
  EXPECT_THROW(griffy::parse("op t inputs=2\nn1 = xor in0\n"),
               std::invalid_argument);  // out-of-order id
  EXPECT_THROW(griffy::parse("op t inputs=2\nn0 = xor zero\n"),
               std::invalid_argument);  // zero not allowed in gates
  EXPECT_THROW(griffy::parse("op t inputs=2\nn0 = and in0 in1\n"),
               std::invalid_argument);
}

}  // namespace
}  // namespace plfsr
