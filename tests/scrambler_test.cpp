#include "scrambler/scrambler.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "lfsr/catalog.hpp"
#include "scrambler/wifi.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

TEST(AdditiveScrambler, MatchesPublished80211Sequence) {
  // All-ones seed -> the 127-bit sequence printed in IEEE 802.11.
  AdditiveScrambler s = wifi::make_scrambler(0x7F);
  const BitStream ks = s.keystream(127);
  EXPECT_EQ(ks.to_string(), std::string(wifi::kReferenceSequence127));
}

TEST(AdditiveScrambler, SequencePeriodIs127) {
  AdditiveScrambler s = wifi::make_scrambler(0x7F);
  const BitStream first = s.keystream(127);
  const BitStream second = s.keystream(127);
  EXPECT_EQ(first, second);
}

TEST(AdditiveScrambler, ScrambleDescrambleIdentity) {
  Rng rng(1);
  const BitStream data = rng.next_bits(1000);
  AdditiveScrambler tx = wifi::make_scrambler(0x5B);
  AdditiveScrambler rx = wifi::make_scrambler(0x5B);
  EXPECT_EQ(rx.process(tx.process(data)), data);
}

TEST(AdditiveScrambler, ZeroSeedRejected) {
  EXPECT_THROW(AdditiveScrambler(catalog::scrambler_80211(), 0),
               std::invalid_argument);
}

TEST(AdditiveScrambler, BreaksLongRuns) {
  // The paper's stated purpose: "avoid short repeating sequences of 0s or
  // 1s". An all-zero payload must come out with no run longer than the
  // register size.
  AdditiveScrambler s = wifi::make_scrambler(0x7F);
  const BitStream out = s.process(BitStream(500));
  int run = 0, max_run = 0;
  bool prev = out.get(0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    run = (out.get(i) == prev) ? run + 1 : 1;
    prev = out.get(i);
    max_run = std::max(max_run, run);
  }
  EXPECT_LE(max_run, 7);
}

/// Parallel == serial for every (generator, M, seed) combination.
class ParallelScramblerEquiv
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelScramblerEquiv, MatchesSerial) {
  const auto polys = catalog::all_scrambler_polys();
  const Gf2Poly g =
      polys[static_cast<std::size_t>(std::get<0>(GetParam())) % polys.size()]
          .poly;
  const std::size_t m = static_cast<std::size_t>(std::get<1>(GetParam()));
  const std::uint64_t seed = 0x2A ^ (std::get<0>(GetParam()) + 1);

  Rng rng(std::get<0>(GetParam()) * 100 + std::get<1>(GetParam()));
  const BitStream data = rng.next_bits(m * 6 + 5);  // force a serial tail

  AdditiveScrambler serial(g, seed);
  ParallelScrambler parallel(g, m, seed);
  EXPECT_EQ(parallel.process(data), serial.process(data));
  EXPECT_EQ(parallel.state(), serial.state());
}

INSTANTIATE_TEST_SUITE_P(
    PolysAndM, ParallelScramblerEquiv,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5),
                       ::testing::Values(1, 2, 8, 32, 64, 128)));

TEST(ParallelScrambler, ReseedRestartsSequence) {
  ParallelScrambler p(catalog::scrambler_80211(), 16, 0x7F);
  const BitStream a = p.process(BitStream(64));
  p.reseed(0x7F);
  const BitStream b = p.process(BitStream(64));
  EXPECT_EQ(a, b);
}

TEST(MultiplicativeScrambler, SelfSynchronizing) {
  MultiplicativeScrambler s(catalog::scrambler_sonet());
  Rng rng(2);
  const BitStream data = rng.next_bits(500);
  const BitStream scrambled = s.scramble(data);
  const BitStream recovered = s.descramble(scrambled);
  EXPECT_EQ(recovered, data);
}

TEST(MultiplicativeScrambler, RecoversAfterBitSlip) {
  // Drop the first k scrambled bits: after k more bits the descrambler
  // state realigns and everything that follows decodes correctly.
  const Gf2Poly g = catalog::scrambler_sonet();
  const unsigned k = static_cast<unsigned>(g.degree());
  MultiplicativeScrambler tx(g);
  Rng rng(3);
  const BitStream data = rng.next_bits(300);
  const BitStream scrambled = tx.scramble(data);

  BitStream clipped;
  for (std::size_t i = 10; i < scrambled.size(); ++i)
    clipped.push_back(scrambled.get(i));
  MultiplicativeScrambler rx(g);
  const BitStream out = rx.descramble(clipped);
  for (std::size_t i = k; i < out.size(); ++i)
    EXPECT_EQ(out.get(i), data.get(10 + i)) << "position " << i;
}

TEST(MultiplicativeScrambler, ScrambledDiffersFromInput) {
  MultiplicativeScrambler s(catalog::scrambler_dvb());
  Rng rng(4);
  const BitStream data = rng.next_bits(200);
  EXPECT_FALSE(s.scramble(data) == data);
}

}  // namespace
}  // namespace plfsr
