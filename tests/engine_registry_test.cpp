// EngineRegistry: the name -> configuration lookup every higher layer
// (ParallelCrc, FcsStage, benches, examples) now routes through. Covers
// construction of every claimed (engine, spec) pair, the capability
// gates under PLFSR_FORCE_PORTABLE, the PLFSR_ENGINE override and its
// error paths, and dispatch equivalence of the type-erased handle
// against the bit-serial reference including split-call continuation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "crc/crc_spec.hpp"
#include "crc/engine.hpp"
#include "crc/engine_registry.hpp"
#include "crc/serial_crc.hpp"
#include "crc/table_crc.hpp"
#include "support/cpu_features.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

const std::uint8_t kCheckMsg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};

/// Scoped environment override restoring the previous value on exit, so
/// a failing assertion cannot leak a veto into later tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value == nullptr)
      unsetenv(name);
    else
      setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_)
      setenv(name_, saved_.c_str(), 1);
    else
      unsetenv(name_);
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(EngineRegistry, BuiltinCatalogueIsComplete) {
  const auto names = EngineRegistry::instance().names();
  const std::set<std::string> got(names.begin(), names.end());
  const std::set<std::string> want = {"serial", "table",  "slicing4",
                                      "slicing8", "wide-table", "matrix",
                                      "gfmac",  "derby",  "clmul"};
  EXPECT_EQ(got, want);
}

TEST(EngineRegistry, EveryClaimedSpecConstructsAndHitsCheckValue) {
  // Every registered name must construct for every catalogue spec it
  // claims — and the result must be a real engine: spec() round-trips
  // and the standard "123456789" check value comes out.
  const EngineRegistry& reg = EngineRegistry::instance();
  for (const std::string& name : reg.available_names()) {
    const EngineInfo* info = reg.find(name);
    ASSERT_NE(info, nullptr) << name;
    std::size_t claimed = 0;
    for (const CrcSpec& s : crcspec::all()) {
      if (!info->supports(s)) continue;
      ++claimed;
      const CrcEngineHandle e = reg.make(name, s);
      EXPECT_EQ(e.engine_name(), name);
      EXPECT_EQ(e.spec().name, s.name) << name;
      EXPECT_EQ(e.compute(kCheckMsg), s.check) << name << " " << s.name;
    }
    // No registered engine may be dead weight: each claims at least one
    // catalogue spec, so the registry-enumerated audits exercise all.
    EXPECT_GE(claimed, 1u) << name;
  }
}

TEST(EngineRegistry, RegistryAuditCoversEveryAvailableEngine) {
  // The union of (engine, spec) pairs the enumerating audits walk must
  // touch every available engine — the guarantee that registering an
  // engine cannot silently skip testing.
  const EngineRegistry& reg = EngineRegistry::instance();
  std::set<std::string> exercised;
  for (const std::string& name : reg.available_names())
    for (const CrcSpec& s : crcspec::all())
      if (reg.supports(name, s)) exercised.insert(name);
  const auto avail = reg.available_names();
  EXPECT_EQ(exercised,
            std::set<std::string>(avail.begin(), avail.end()));
}

TEST(EngineRegistry, ClmulGateFollowsCpuProbe) {
  ScopedEnv clear_portable("PLFSR_FORCE_PORTABLE", nullptr);
  ScopedEnv clear_engine("PLFSR_ENGINE", nullptr);
  const EngineRegistry& reg = EngineRegistry::instance();
  const auto avail = reg.available_names();
  const bool listed =
      std::find(avail.begin(), avail.end(), "clmul") != avail.end();
  EXPECT_EQ(listed, clmul_allowed());
  EXPECT_EQ(reg.supports("clmul", crcspec::crc32_ethernet()),
            clmul_allowed());
}

TEST(EngineRegistry, ForcePortableVetoesClmulPerCall) {
  // available() is evaluated per query (not cached at registration), so
  // flipping the veto between calls must flip the listing.
  ScopedEnv clear_engine("PLFSR_ENGINE", nullptr);
  const EngineRegistry& reg = EngineRegistry::instance();
  {
    ScopedEnv portable("PLFSR_FORCE_PORTABLE", "1");
    const auto avail = reg.available_names();
    EXPECT_EQ(std::find(avail.begin(), avail.end(), "clmul"), avail.end());
    EXPECT_FALSE(reg.supports("clmul", crcspec::crc32_ethernet()));
    // All software engines stay listed under the veto.
    EXPECT_EQ(avail.size(), reg.names().size() - 1);
  }
  ScopedEnv clear_portable("PLFSR_FORCE_PORTABLE", nullptr);
  const auto avail = reg.available_names();
  EXPECT_EQ(std::find(avail.begin(), avail.end(), "clmul") != avail.end(),
            clmul_allowed());
}

TEST(EngineRegistry, BestForFollowsPreferenceAndCapability) {
  ScopedEnv clear_engine("PLFSR_ENGINE", nullptr);
  const EngineRegistry& reg = EngineRegistry::instance();
  {
    ScopedEnv clear_portable("PLFSR_FORCE_PORTABLE", nullptr);
    EXPECT_EQ(reg.best_for(crcspec::crc32_ethernet()).engine_name(),
              clmul_allowed() ? "clmul" : "slicing8");
  }
  ScopedEnv portable("PLFSR_FORCE_PORTABLE", "1");
  // Reflected spec: slicing-by-8 is the best portable engine.
  EXPECT_EQ(reg.best_for(crcspec::crc32_ethernet()).engine_name(),
            "slicing8");
  // Non-reflected spec: the slicing engines drop out, table wins.
  EXPECT_EQ(reg.best_for(crcspec::crc32_mpeg2()).engine_name(), "table");
}

TEST(EngineRegistry, EngineOverrideEnvWins) {
  ScopedEnv clear_portable("PLFSR_FORCE_PORTABLE", nullptr);
  ScopedEnv forced("PLFSR_ENGINE", "serial");
  EXPECT_EQ(engine_override(), "serial");
  const CrcEngineHandle e =
      EngineRegistry::instance().best_for(crcspec::crc32_ethernet());
  EXPECT_EQ(e.engine_name(), "serial");
  EXPECT_EQ(e.compute(kCheckMsg), crcspec::crc32_ethernet().check);
}

TEST(EngineRegistry, UnknownOverrideNameThrowsListingKnownNames) {
  ScopedEnv forced("PLFSR_ENGINE", "warp-drive");
  try {
    EngineRegistry::instance().best_for(crcspec::crc32_ethernet());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("warp-drive"), std::string::npos);
    EXPECT_NE(what.find("slicing8"), std::string::npos);  // lists known
  }
}

TEST(EngineRegistry, OverrideUnsupportedSpecOrVetoedEngineThrows) {
  {
    // slicing8 cannot serve a non-reflected spec.
    ScopedEnv forced("PLFSR_ENGINE", "slicing8");
    EXPECT_THROW(
        EngineRegistry::instance().best_for(crcspec::crc32_mpeg2()),
        std::runtime_error);
  }
  {
    // A forced engine whose capability gate fails is an error, not a
    // silent fallback to the policy pick.
    ScopedEnv forced("PLFSR_ENGINE", "clmul");
    ScopedEnv portable("PLFSR_FORCE_PORTABLE", "1");
    EXPECT_THROW(
        EngineRegistry::instance().best_for(crcspec::crc32_ethernet()),
        std::runtime_error);
  }
}

TEST(EngineRegistry, MakeUnknownNameThrows) {
  EXPECT_THROW(
      EngineRegistry::instance().make("nope", crcspec::crc32_ethernet()),
      std::invalid_argument);
}

TEST(EngineRegistry, RegisterEngineRejectsBadEntries) {
  EngineRegistry reg;
  const auto make = [](const CrcSpec& s) {
    return CrcEngineHandle(TableCrc(s), "t");
  };
  const auto yes = [] { return true; };
  const auto any = [](const CrcSpec&) { return true; };
  EXPECT_THROW(reg.register_engine({"", "d", yes, any, make, 0}),
               std::invalid_argument);
  EXPECT_THROW(reg.register_engine({"t", "no factory", yes, any, {}, 0}),
               std::invalid_argument);
  reg.register_engine({"t", "d", yes, any, make, 0});
  EXPECT_THROW(reg.register_engine({"t", "dup", yes, any, make, 1}),
               std::invalid_argument);
  EXPECT_EQ(reg.names(), std::vector<std::string>{"t"});
}

TEST(EngineRegistry, DispatchEquivalenceRandomLengthsWithSplits) {
  // The type-erased handle must agree with the bit-serial reference for
  // every available engine on random lengths 0..4096, and chunked
  // absorption across a random cut must continue exactly (the property
  // ParallelCrc and the pipeline stages build on).
  const EngineRegistry& reg = EngineRegistry::instance();
  Rng rng(0xE11);
  for (const CrcSpec& s :
       {crcspec::crc32_ethernet(), crcspec::crc32_mpeg2(),
        crcspec::crc64_xz(), crcspec::crc16_ccitt_false()}) {
    for (const std::string& name : reg.available_names()) {
      if (!reg.supports(name, s)) continue;
      const CrcEngineHandle e = reg.make(name, s);
      for (int round = 0; round < 8; ++round) {
        const std::size_t len =
            static_cast<std::size_t>(rng.next_u64() % 4097);
        const auto msg = rng.next_bytes(len);
        const std::uint64_t expect = serial_crc(s, msg);
        EXPECT_EQ(e.compute(msg), expect)
            << name << " " << s.name << " len=" << len;
        const std::size_t cut =
            len == 0 ? 0 : static_cast<std::size_t>(rng.next_u64() % len);
        std::uint64_t st = e.initial_state();
        st = e.absorb(st, {msg.data(), cut});
        st = e.state_from_raw(e.raw_register(st));  // round-trip mid-way
        st = e.absorb(st, {msg.data() + cut, msg.size() - cut});
        EXPECT_EQ(e.finalize(st), expect)
            << name << " " << s.name << " len=" << len << " cut=" << cut;
      }
    }
  }
}

TEST(EngineRegistry, HandleCopiesShareTheEngine) {
  const CrcEngineHandle a =
      EngineRegistry::instance().make("table", crcspec::crc32_ethernet());
  const CrcEngineHandle b = a;  // shallow copy of the immutable engine
  EXPECT_EQ(a.compute(kCheckMsg), b.compute(kCheckMsg));
  EXPECT_EQ(b.engine_name(), "table");
}

}  // namespace
}  // namespace plfsr
