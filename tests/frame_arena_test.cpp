// FrameArena: buffers must recycle (steady state does no heap work), a
// bounded arena must block the producer until the sink releases — the
// end-to-end backpressure the zero-copy pipeline relies on — and close()
// must unblock every waiter. The threaded-pipeline test at the bottom is
// the TSan target for the producer/sink recycling loop.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "crc/crc_spec.hpp"
#include "crc/table_crc.hpp"
#include "lfsr/catalog.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/stages.hpp"
#include "support/frame_arena.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

TEST(FrameArena, RecyclesReleasedBuffers) {
  FrameArena arena;
  std::vector<std::uint8_t> buf;
  ASSERT_TRUE(arena.acquire(buf, 64));
  EXPECT_EQ(buf.size(), 64u);
  EXPECT_EQ(arena.heap_allocations(), 1u);
  arena.release(std::move(buf));
  EXPECT_EQ(arena.pooled(), 1u);

  std::vector<std::uint8_t> again;
  ASSERT_TRUE(arena.acquire(again, 32));
  EXPECT_EQ(again.size(), 32u);
  EXPECT_EQ(arena.recycles(), 1u);
  EXPECT_EQ(arena.heap_allocations(), 1u);  // no second heap trip
  EXPECT_EQ(arena.acquires(), 2u);
}

TEST(FrameArena, UnboundedNeverBlocks) {
  FrameArena arena;  // capacity 0 = unbounded
  std::vector<std::vector<std::uint8_t>> bufs(100);
  for (auto& b : bufs) ASSERT_TRUE(arena.acquire(b, 16));
  EXPECT_EQ(arena.outstanding(), 100u);
  EXPECT_EQ(arena.acquire_stalls(), 0u);
}

TEST(FrameArena, TryAcquireFailsAtCapacity) {
  FrameArena arena(2);
  std::vector<std::uint8_t> a, b, c;
  ASSERT_TRUE(arena.try_acquire(a, 8));
  ASSERT_TRUE(arena.try_acquire(b, 8));
  EXPECT_FALSE(arena.try_acquire(c, 8));
  arena.release(std::move(a));
  EXPECT_TRUE(arena.try_acquire(c, 8));
}

TEST(FrameArena, BoundedAcquireBlocksUntilRelease) {
  // The backpressure contract: a producer blocked on an exhausted pool
  // must wake exactly when the sink releases a buffer.
  FrameArena arena(2);
  std::vector<std::uint8_t> a, b;
  ASSERT_TRUE(arena.acquire(a, 128));
  ASSERT_TRUE(arena.acquire(b, 128));

  std::atomic<bool> got{false};
  std::thread producer([&] {
    std::vector<std::uint8_t> c;
    if (arena.acquire(c, 128)) got.store(true);  // blocks until release
  });
  // The producer must actually stall (bounded wait for the counter so a
  // slow scheduler cannot make this flaky-fail; TSan hosts are slow).
  for (int i = 0; i < 2000 && arena.acquire_stalls() == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_FALSE(got.load());
  arena.release(std::move(a));
  producer.join();
  EXPECT_TRUE(got.load());
  EXPECT_GE(arena.acquire_stalls(), 1u);
  EXPECT_EQ(arena.recycles(), 1u);
}

TEST(FrameArena, CloseUnblocksWaitersAndFailsAcquires) {
  FrameArena arena(1);
  std::vector<std::uint8_t> a;
  ASSERT_TRUE(arena.acquire(a, 8));

  std::atomic<int> result{-1};
  std::thread waiter([&] {
    std::vector<std::uint8_t> c;
    result.store(arena.acquire(c, 8) ? 1 : 0);
  });
  arena.close();
  waiter.join();
  EXPECT_EQ(result.load(), 0);  // woke with failure, not a buffer
  std::vector<std::uint8_t> d;
  EXPECT_FALSE(arena.acquire(d, 8));
  EXPECT_FALSE(arena.try_acquire(d, 8));
  arena.release(std::move(a));  // releasing into a closed arena is a no-op
  EXPECT_EQ(arena.pooled(), 0u);
}

TEST(FrameArena, CloseServesPooledBuffersUntilDry) {
  // The drain contract: buffers pooled at close time keep serving — a
  // producer finishing its tail stays zero-alloc — then acquire fails
  // without ever blocking or touching the heap.
  FrameArena arena(4);
  std::vector<std::uint8_t> a, b;
  ASSERT_TRUE(arena.acquire(a, 32));
  ASSERT_TRUE(arena.acquire(b, 32));
  arena.release(std::move(a));
  arena.release(std::move(b));
  ASSERT_EQ(arena.pooled(), 2u);
  const std::uint64_t heap_before = arena.heap_allocations();

  arena.close();
  std::vector<std::uint8_t> c, d, e;
  EXPECT_TRUE(arena.acquire(c, 16));  // served from the pool
  EXPECT_TRUE(arena.try_acquire(d, 16));
  EXPECT_EQ(arena.heap_allocations(), heap_before);  // drain is alloc-free
  EXPECT_EQ(arena.recycles(), 2u);  // both drain acquires came from the pool
  EXPECT_FALSE(arena.acquire(e, 16));  // pool dry: fail, don't block
  EXPECT_FALSE(arena.try_acquire(e, 16));
}

TEST(FrameArena, CloseUnderLoadDrainsWithoutHeapGrowth) {
  // Regression for the shutdown race: a producer hammering a bounded
  // arena while another thread close()s it must neither deadlock nor
  // lose the zero-alloc guarantee mid-drain — every post-close acquire
  // is served from the pool (or cleanly refused), never from the heap.
  constexpr std::size_t kCapacity = 8;
  FrameArena arena(kCapacity);
  std::atomic<std::uint64_t> served{0};
  std::atomic<bool> started{false};
  std::thread producer([&] {
    std::vector<std::uint8_t> buf;
    while (arena.acquire(buf, 64)) {
      served.fetch_add(1);
      started.store(true);
      arena.release(std::move(buf));
      buf = {};
    }
  });
  while (!started.load()) std::this_thread::yield();
  arena.close();
  producer.join();  // acquire() must go false once the pool drains

  EXPECT_GE(served.load(), 1u);
  // Never more heap trips than the bound, close() notwithstanding.
  EXPECT_LE(arena.heap_allocations(), kCapacity);
  std::vector<std::uint8_t> after;
  EXPECT_FALSE(arena.acquire(after, 64));
}

TEST(FrameArena, RecyclesThroughThreadedPipeline) {
  // Producer acquires from a bounded arena, VerifySink releases back:
  // the arena must end balanced, with far fewer heap allocations than
  // frames, and the bounded pool must backpressure the producer through
  // the whole pipeline without deadlock. (Threaded explicitly — this is
  // the TSan coverage for the cross-thread recycling loop.)
  constexpr std::size_t kFrames = 256;
  constexpr std::size_t kBatch = 8;
  FrameArena arena(/*capacity=*/32);  // far fewer buffers than frames

  std::vector<std::unique_ptr<Stage>> stages;
  stages.push_back(
      std::make_unique<ScrambleStage>(catalog::scrambler_80211(), 0x5D));
  stages.push_back(
      std::make_unique<FcsStage>(TableCrc(crcspec::crc32_ethernet())));
  stages.push_back(std::make_unique<VerifySink>(
      TableCrc(crcspec::crc32_ethernet()), /*stride=*/1, &arena));
  auto* sink = static_cast<VerifySink*>(stages.back().get());

  Pipeline pipe(std::move(stages), PipelinePlan::threaded(/*depth=*/2));
  pipe.start();
  Rng rng(17);
  FrameBatch batch;
  for (std::size_t i = 0; i < kFrames; ++i) {
    Frame f;
    f.id = i;
    ASSERT_TRUE(arena.acquire(f.bytes, 64 + i % 64));  // blocks at the bound
    const auto payload = rng.next_bytes(f.bytes.size());
    std::copy(payload.begin(), payload.end(), f.bytes.begin());
    batch.push_back(std::move(f));
    if (batch.size() == kBatch) {
      ASSERT_TRUE(pipe.push(std::move(batch)));
      batch = FrameBatch();
    }
  }
  pipe.close();
  pipe.wait();

  EXPECT_TRUE(sink->ok());
  EXPECT_EQ(sink->frames(), kFrames);
  EXPECT_EQ(arena.outstanding(), 0u);
  EXPECT_EQ(arena.acquires(), kFrames);
  EXPECT_LE(arena.heap_allocations(), arena.capacity());
  EXPECT_GE(arena.recycles(), kFrames - arena.capacity());
}

}  // namespace
}  // namespace plfsr
