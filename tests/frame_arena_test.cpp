// FrameArena: descriptors must recycle (steady state does no heap work),
// a bounded arena must block the producer until the sink drops — the
// end-to-end backpressure the zero-copy pipeline relies on — and close()
// must unblock every waiter. The size-class tests pin the regression the
// classed design fixed: a jumbo request must never be "served" by a
// small recycled buffer that silently reallocates. The threaded-pipeline
// test at the bottom is the TSan target for the cross-thread recycling
// loop (release happens wherever the descriptor drops).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "crc/crc_spec.hpp"
#include "crc/table_crc.hpp"
#include "lfsr/catalog.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/stages.hpp"
#include "support/frame_arena.hpp"
#include "support/frame_buf.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

TEST(FrameArena, RecyclesDroppedDescriptors) {
  FrameArena arena;
  FrameBuf buf;
  ASSERT_TRUE(arena.acquire(buf, 64));
  EXPECT_EQ(buf.size(), 64u);
  EXPECT_TRUE(buf.arena_backed());
  EXPECT_EQ(arena.heap_allocations(), 1u);
  buf.reset();  // descriptor drop IS the release
  EXPECT_EQ(arena.pooled(), 1u);
  EXPECT_EQ(arena.outstanding(), 0u);

  FrameBuf again;
  ASSERT_TRUE(arena.acquire(again, 32));  // 32 rounds up into the 64 class
  EXPECT_EQ(again.size(), 32u);
  EXPECT_EQ(arena.recycles(), 1u);
  EXPECT_EQ(arena.heap_allocations(), 1u);  // no second heap trip
  EXPECT_EQ(arena.acquires(), 2u);
}

TEST(FrameArena, DestructorReleasesToo) {
  FrameArena arena;
  {
    FrameBuf buf;
    ASSERT_TRUE(arena.acquire(buf, 100));
  }  // scope exit drops the descriptor
  EXPECT_EQ(arena.pooled(), 1u);
  EXPECT_EQ(arena.outstanding(), 0u);
}

TEST(FrameArena, SizeClassMapping) {
  EXPECT_EQ(FrameArena::size_class(0), 64u);  // floor class
  EXPECT_EQ(FrameArena::size_class(1), 64u);
  EXPECT_EQ(FrameArena::size_class(64), 64u);
  EXPECT_EQ(FrameArena::size_class(65), 128u);
  EXPECT_EQ(FrameArena::size_class(1500), 2048u);
  EXPECT_EQ(FrameArena::size_class(4u << 20), 4u << 20);
  EXPECT_EQ(FrameArena::size_class((4u << 20) + 1), 8u << 20);
}

TEST(FrameArena, JumboNeverServedByRecycledSmallBuffer) {
  // Regression for the single-pool design: a 64 B buffer sat pooled, a
  // 4 MiB request "recycled" it, and the resize reallocated on the heap
  // while the counters claimed zero-alloc. Classed pools must route the
  // jumbo to a real heap trip with full capacity.
  constexpr std::size_t kJumbo = 4u << 20;
  FrameArena arena;
  {
    FrameBuf small;
    ASSERT_TRUE(arena.acquire(small, 64));
  }
  ASSERT_EQ(arena.pooled(), 1u);

  FrameBuf jumbo;
  ASSERT_TRUE(arena.acquire(jumbo, kJumbo));
  EXPECT_EQ(jumbo.size(), kJumbo);
  EXPECT_GE(jumbo.capacity(), kJumbo);
  EXPECT_EQ(arena.recycles(), 0u);          // the small buffer stayed put
  EXPECT_EQ(arena.heap_allocations(), 2u);  // honest accounting
  EXPECT_EQ(arena.pooled(), 1u);
}

TEST(FrameArena, MixedExtremesRecycleSteadyState) {
  // A 4 MiB jumbo and a 64 B telemetry frame alternating must both
  // recycle through their own class: after the first lap, zero heap
  // work at either extreme.
  constexpr std::size_t kJumbo = 4u << 20;
  FrameArena arena;
  for (int lap = 0; lap < 8; ++lap) {
    FrameBuf j, s;
    ASSERT_TRUE(arena.acquire(j, kJumbo));
    ASSERT_TRUE(arena.acquire(s, 64));
    EXPECT_GE(j.capacity(), kJumbo);
  }
  EXPECT_EQ(arena.heap_allocations(), 2u);  // one per class, first lap only
  EXPECT_EQ(arena.recycles(), 14u);
  EXPECT_EQ(arena.pooled_classes(), 2u);
}

TEST(FrameArena, EvictsWrongClassAtBound) {
  // Bound reached with only a wrong-class buffer pooled: the arena must
  // adapt (evict + allocate), not deadlock the producer.
  FrameArena arena(1);
  {
    FrameBuf small;
    ASSERT_TRUE(arena.acquire(small, 64));
  }
  ASSERT_EQ(arena.pooled(), 1u);
  FrameBuf jumbo;
  ASSERT_TRUE(arena.acquire(jumbo, 4096));  // different class, bound hit
  EXPECT_EQ(jumbo.size(), 4096u);
  EXPECT_EQ(arena.evictions(), 1u);
  EXPECT_EQ(arena.heap_allocations(), 2u);
  // The invariant the bench gate checks: heap trips never exceed the
  // bound plus the evictions that made room for them.
  EXPECT_LE(arena.heap_allocations(), arena.capacity() + arena.evictions());
}

TEST(FrameArena, UnboundedNeverBlocks) {
  FrameArena arena;  // capacity 0 = unbounded
  std::vector<FrameBuf> bufs(100);
  for (auto& b : bufs) ASSERT_TRUE(arena.acquire(b, 16));
  EXPECT_EQ(arena.outstanding(), 100u);
  EXPECT_EQ(arena.acquire_stalls(), 0u);
}

TEST(FrameArena, TryAcquireFailsAtCapacity) {
  FrameArena arena(2);
  FrameBuf a, b, c;
  ASSERT_TRUE(arena.try_acquire(a, 8));
  ASSERT_TRUE(arena.try_acquire(b, 8));
  EXPECT_FALSE(arena.try_acquire(c, 8));
  a.reset();
  EXPECT_TRUE(arena.try_acquire(c, 8));
}

TEST(FrameArena, AcquireIntoHeldDescriptorReleasesFirst) {
  // Re-acquiring into a descriptor that still holds the arena's only
  // buffer must not deadlock: acquire() releases `out` before waiting.
  FrameArena arena(1);
  FrameBuf buf;
  ASSERT_TRUE(arena.acquire(buf, 32));
  ASSERT_TRUE(arena.acquire(buf, 32));  // would deadlock without the reset
  EXPECT_EQ(arena.recycles(), 1u);
  EXPECT_EQ(arena.heap_allocations(), 1u);
}

TEST(FrameArena, BoundedAcquireBlocksUntilDrop) {
  // The backpressure contract: a producer blocked on an exhausted pool
  // must wake exactly when a sink drops a descriptor.
  FrameArena arena(2);
  FrameBuf a, b;
  ASSERT_TRUE(arena.acquire(a, 128));
  ASSERT_TRUE(arena.acquire(b, 128));

  std::atomic<bool> got{false};
  std::thread producer([&] {
    FrameBuf c;
    if (arena.acquire(c, 128)) got.store(true);  // blocks until a drop
  });
  // The producer must actually stall (bounded wait for the counter so a
  // slow scheduler cannot make this flaky-fail; TSan hosts are slow).
  for (int i = 0; i < 2000 && arena.acquire_stalls() == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_FALSE(got.load());
  a.reset();
  producer.join();
  EXPECT_TRUE(got.load());
  EXPECT_GE(arena.acquire_stalls(), 1u);
  EXPECT_EQ(arena.recycles(), 1u);
}

TEST(FrameArena, CloseUnblocksWaitersAndFailsAcquires) {
  FrameArena arena(1);
  FrameBuf a;
  ASSERT_TRUE(arena.acquire(a, 8));

  std::atomic<int> result{-1};
  std::thread waiter([&] {
    FrameBuf c;
    result.store(arena.acquire(c, 8) ? 1 : 0);
  });
  arena.close();
  waiter.join();
  EXPECT_EQ(result.load(), 0);  // woke with failure, not a buffer
  FrameBuf d;
  EXPECT_FALSE(arena.acquire(d, 8));
  EXPECT_FALSE(arena.try_acquire(d, 8));
  a.reset();  // dropping into a closed arena heap-frees, pools nothing
  EXPECT_EQ(arena.pooled(), 0u);
}

TEST(FrameArena, CloseServesPooledBuffersUntilDry) {
  // The drain contract: buffers pooled at close time keep serving — a
  // producer finishing its tail stays zero-alloc — then acquire fails
  // without ever blocking or touching the heap.
  FrameArena arena(4);
  {
    FrameBuf a, b;
    ASSERT_TRUE(arena.acquire(a, 32));
    ASSERT_TRUE(arena.acquire(b, 32));
  }
  ASSERT_EQ(arena.pooled(), 2u);
  const std::uint64_t heap_before = arena.heap_allocations();

  arena.close();
  FrameBuf c, d, e;
  EXPECT_TRUE(arena.acquire(c, 16));  // served from the pool
  EXPECT_TRUE(arena.try_acquire(d, 16));
  EXPECT_EQ(arena.heap_allocations(), heap_before);  // drain is alloc-free
  EXPECT_EQ(arena.recycles(), 2u);  // both drain acquires came from the pool
  EXPECT_FALSE(arena.acquire(e, 16));  // pool dry: fail, don't block
  EXPECT_FALSE(arena.try_acquire(e, 16));
}

TEST(FrameArena, CloseUnderLoadDrainsWithoutHeapGrowth) {
  // Regression for the shutdown race: a producer hammering a bounded
  // arena while another thread close()s it must neither deadlock nor
  // lose the zero-alloc guarantee mid-drain — every post-close acquire
  // is served from the pool (or cleanly refused), never from the heap.
  constexpr std::size_t kCapacity = 8;
  FrameArena arena(kCapacity);
  std::atomic<std::uint64_t> served{0};
  std::atomic<bool> started{false};
  std::thread producer([&] {
    FrameBuf buf;
    while (arena.acquire(buf, 64)) {  // each acquire drops the previous
      served.fetch_add(1);
      started.store(true);
    }
  });
  while (!started.load()) std::this_thread::yield();
  arena.close();
  producer.join();  // acquire() must go false once the pool drains

  EXPECT_GE(served.load(), 1u);
  // Never more heap trips than the bound (single class: no evictions).
  EXPECT_LE(arena.heap_allocations(), kCapacity);
  EXPECT_EQ(arena.evictions(), 0u);
  FrameBuf after;
  EXPECT_FALSE(arena.acquire(after, 64));
}

TEST(FrameArena, RecyclesThroughThreadedPipeline) {
  // Producer acquires from a bounded arena, VerifySink's batch.clear()
  // drops the descriptors back: the arena must end balanced, with far
  // fewer heap allocations than frames, and the bounded pool must
  // backpressure the producer through the whole pipeline without
  // deadlock. (Threaded explicitly — this is the TSan coverage for the
  // cross-thread recycling loop.)
  constexpr std::size_t kFrames = 256;
  constexpr std::size_t kBatch = 8;
  FrameArena arena(/*capacity=*/32);  // far fewer buffers than frames

  std::vector<std::unique_ptr<Stage>> stages;
  stages.push_back(
      std::make_unique<ScrambleStage>(catalog::scrambler_80211(), 0x5D));
  stages.push_back(
      std::make_unique<FcsStage>(TableCrc(crcspec::crc32_ethernet())));
  stages.push_back(std::make_unique<VerifySink>(
      TableCrc(crcspec::crc32_ethernet()), /*stride=*/1));
  auto* sink = static_cast<VerifySink*>(stages.back().get());

  Pipeline pipe(std::move(stages), PipelinePlan::threaded(/*depth=*/2));
  pipe.start();
  Rng rng(17);
  FrameBatch batch;
  for (std::size_t i = 0; i < kFrames; ++i) {
    Frame f;
    f.id = i;
    // 64..127 B: the frames straddle the 64/128 class split on purpose.
    ASSERT_TRUE(arena.acquire(f.bytes, 64 + i % 64));  // blocks at the bound
    const auto payload = rng.next_bytes(f.bytes.size());
    std::copy(payload.begin(), payload.end(), f.bytes.begin());
    batch.push_back(std::move(f));
    if (batch.size() == kBatch) {
      ASSERT_TRUE(pipe.push(std::move(batch)));
      batch = FrameBatch();
    }
  }
  pipe.close();
  pipe.wait();

  EXPECT_TRUE(sink->ok());
  EXPECT_EQ(sink->frames(), kFrames);
  EXPECT_EQ(arena.outstanding(), 0u);
  EXPECT_EQ(arena.acquires(), kFrames);
  // Two classes share the bound: heap trips are capped by capacity plus
  // whatever cross-class evictions made room at the bound.
  EXPECT_LE(arena.heap_allocations(), arena.capacity() + arena.evictions());
  EXPECT_GE(arena.recycles(), kFrames - arena.heap_allocations());
}

}  // namespace
}  // namespace plfsr
