// Fused executor: the single-thread fused mode must be bit-exact with
// the threaded mode (and the serial composition) on empty, 1-byte and
// bit-granular frames, keep the full stats/error contract, and the
// kAuto plan must resolve deterministically from the stage count and
// host core count.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "crc/crc_spec.hpp"
#include "crc/table_crc.hpp"
#include "lfsr/catalog.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/stages.hpp"
#include "support/bitstream.hpp"
#include "support/host_threads.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

constexpr std::uint64_t kSeed = 0x5D;

std::vector<Frame> edge_frames() {
  // Empty, 1-byte, bit-granular and a spread of sizes — the frames the
  // satellite checklist calls out for fused-vs-threaded equivalence.
  Rng rng(77);
  std::vector<Frame> frames;
  const std::size_t lens[] = {0, 1, 2, 63, 64, 65, 1500};
  for (std::size_t i = 0; i < std::size(lens); ++i) {
    Frame f;
    f.id = frames.size();
    f.bytes = rng.next_bytes(lens[i]);
    frames.push_back(std::move(f));
  }
  for (const std::uint64_t nbits : {1u, 7u, 9u, 100u}) {
    Frame f;
    f.id = frames.size();
    f.bytes = rng.next_bits(nbits).to_bytes_lsb_first();
    f.bits = nbits;
    frames.push_back(std::move(f));
  }
  return frames;
}

std::vector<std::unique_ptr<Stage>> scramble_crc_collect() {
  std::vector<std::unique_ptr<Stage>> st;
  st.push_back(
      std::make_unique<ScrambleStage>(catalog::scrambler_80211(), kSeed));
  st.push_back(
      std::make_unique<FcsStage>(TableCrc(crcspec::crc32_ethernet())));
  st.push_back(std::make_unique<CollectSink>());
  return st;
}

FrameBatch one(const Frame& f) {
  FrameBatch batch;
  batch.push_back(f.clone());
  return batch;
}

std::vector<Frame> run_mode(ExecMode mode, const std::vector<Frame>& input,
                            std::size_t batch_size) {
  auto stages = scramble_crc_collect();
  auto* sink = static_cast<CollectSink*>(stages.back().get());
  PipelinePlan plan;
  plan.mode = mode;
  plan.queue_depth = 2;
  Pipeline pipe(std::move(stages), plan);
  pipe.start();
  for (std::size_t i = 0; i < input.size(); i += batch_size) {
    FrameBatch b;
    for (std::size_t j = i; j < std::min(i + batch_size, input.size()); ++j)
      b.push_back(input[j].clone());
    EXPECT_TRUE(pipe.push(std::move(b)));
  }
  pipe.close();
  pipe.wait();
  return sink->take();
}

TEST(FusedPipeline, MatchesThreadedOnEdgeFrames) {
  const std::vector<Frame> input = edge_frames();
  for (const std::size_t batch_size : {1u, 3u, 16u}) {
    const std::vector<Frame> fused =
        run_mode(ExecMode::kFused, input, batch_size);
    const std::vector<Frame> threaded =
        run_mode(ExecMode::kThreaded, input, batch_size);
    ASSERT_EQ(fused.size(), threaded.size()) << "batch=" << batch_size;
    ASSERT_EQ(fused.size(), input.size());
    for (std::size_t i = 0; i < fused.size(); ++i) {
      EXPECT_EQ(fused[i].bytes, threaded[i].bytes)
          << "i=" << i << " batch=" << batch_size;
      EXPECT_EQ(fused[i].crc, threaded[i].crc) << "i=" << i;
      EXPECT_EQ(fused[i].bit_size(), threaded[i].bit_size()) << "i=" << i;
    }
  }
}

TEST(FusedPipeline, SpreadChainMatchesThreadedBitGranularly) {
  // A frame-size-changing chain (spread -> despread) in both modes: the
  // bit-granular length bookkeeping must survive fusion.
  const std::vector<Frame> input = edge_frames();
  auto make = [] {
    std::vector<std::unique_ptr<Stage>> st;
    st.push_back(std::make_unique<SpreadStage>(catalog::prbs9(), 0x1B, 3));
    st.push_back(std::make_unique<DespreadStage>(catalog::prbs9(), 0x1B, 3));
    st.push_back(std::make_unique<CollectSink>());
    return st;
  };
  for (const ExecMode mode : {ExecMode::kFused, ExecMode::kThreaded}) {
    auto stages = make();
    auto* sink = static_cast<CollectSink*>(stages.back().get());
    PipelinePlan plan;
    plan.mode = mode;
    Pipeline pipe(std::move(stages), plan);
    pipe.start();
    for (const Frame& f : input) ASSERT_TRUE(pipe.push(one(f)));
    pipe.close();
    pipe.wait();
    ASSERT_EQ(sink->frames().size(), input.size());
    for (std::size_t i = 0; i < input.size(); ++i) {
      EXPECT_EQ(sink->frames()[i].bytes, input[i].bytes) << "i=" << i;
      EXPECT_EQ(sink->frames()[i].bit_size(), input[i].bit_size())
          << "i=" << i;
    }
  }
}

TEST(FusedPipeline, StatsAccountEveryFrameWithoutStalls) {
  const std::vector<Frame> input = edge_frames();
  auto stages = scramble_crc_collect();
  Pipeline pipe(std::move(stages), PipelinePlan::fused());
  EXPECT_TRUE(pipe.fused());
  pipe.start();
  std::uint64_t bytes = 0;
  for (const Frame& f : input) {
    bytes += f.bytes.size();
    ASSERT_TRUE(pipe.push(one(f)));
  }
  pipe.close();
  pipe.wait();
  for (const StageStats& s : pipe.stats()) {
    EXPECT_EQ(s.frames, input.size()) << s.name;
    EXPECT_EQ(s.batches, input.size()) << s.name;
    // Stall/occupancy columns are structurally zero: there are no rings.
    EXPECT_EQ(s.pop_stalls, 0u) << s.name;
    EXPECT_EQ(s.push_stalls, 0u) << s.name;
    EXPECT_EQ(s.queue_high_water, 0u) << s.name;
  }
  EXPECT_EQ(pipe.stats()[0].bytes, bytes);
  EXPECT_EQ(pipe.producer_stalls(), 0u);
  EXPECT_EQ(pipe.stats_table().rows(), pipe.num_stages());
}

class BoomStage : public Stage {
 public:
  const char* name() const override { return "boom"; }
  void process(FrameBatch& batch) override {
    for (const Frame& f : batch)
      if (f.id == 3) throw std::runtime_error("boom");
  }
};

TEST(FusedPipeline, StageErrorFailsPushAndRethrowsInWait) {
  std::vector<std::unique_ptr<Stage>> stages;
  stages.push_back(std::make_unique<BoomStage>());
  stages.push_back(std::make_unique<CollectSink>());
  Pipeline pipe(std::move(stages), PipelinePlan::fused());
  pipe.start();
  std::size_t accepted = 0;
  for (const Frame& f : edge_frames()) {
    if (!pipe.push(one(f))) break;
    ++accepted;
  }
  EXPECT_EQ(accepted, 3u);  // ids 0..2 pass, id 3 throws inside push
  EXPECT_TRUE(pipe.failed());
  pipe.close();
  EXPECT_THROW(pipe.wait(), std::runtime_error);
}

TEST(FusedPipeline, AutoPlanResolvesFromCoresAndStageCount) {
  PipelinePlan plan;  // kAuto
  // A 1-stage graph always fuses: a ring hand-off to one worker buys
  // nothing.
  EXPECT_EQ(plan.resolve(1), ExecMode::kFused);
  // kAuto counts the threads the process may actually run (cgroup-quota
  // aware host_threads()), not the machine's logical CPUs — and the
  // PLFSR_THREADS override steers the resolution deterministically.
  const std::size_t cores = host_threads();
  const ExecMode want = cores >= 4 ? ExecMode::kThreaded : ExecMode::kFused;
  EXPECT_EQ(plan.resolve(3), want);
  // Explicit modes pass through untouched.
  EXPECT_EQ(PipelinePlan::fused().resolve(3), ExecMode::kFused);
  EXPECT_EQ(PipelinePlan::threaded().resolve(1), ExecMode::kThreaded);
  // And the pipeline reports the resolved mode, never kAuto.
  Pipeline pipe(scramble_crc_collect(), plan);
  EXPECT_NE(pipe.mode(), ExecMode::kAuto);
}

}  // namespace
}  // namespace plfsr
