// CLMUL folding engine: bit-exactness of both kernels against the table
// reference on every catalogue spec, forced-fallback equivalence under
// PLFSR_FORCE_PORTABLE, the fold constants against first-principles
// Gf2Poly arithmetic, and the software carry-less multiply against
// polynomial multiplication.
#include <gtest/gtest.h>

#include <cstdlib>

#include "crc/clmul_crc.hpp"
#include "crc/serial_crc.hpp"
#include "crc/table_crc.hpp"
#include "gf2/gf2_poly.hpp"
#include "support/cpu_features.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

bool accel_available() {
  return cpu_features().pclmul && cpu_features().sse41;
}

TEST(Clmul64Portable, MatchesGf2PolyProduct) {
  Rng rng(90);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = rng.next_u64();
    const Gf2Poly p = Gf2Poly::from_word(a) * Gf2Poly::from_word(b);
    const Clmul128 c = clmul64_portable(a, b);
    for (unsigned bit = 0; bit < 128; ++bit) {
      const bool got =
          bit < 64 ? (c.lo >> bit) & 1 : (c.hi >> (bit - 64)) & 1;
      ASSERT_EQ(got, p.coeff(bit)) << "a=" << a << " b=" << b
                                   << " bit=" << bit;
    }
  }
}

TEST(Clmul64Portable, EdgeOperands) {
  EXPECT_EQ(clmul64_portable(0, 0x123456789ABCDEFull).lo, 0u);
  EXPECT_EQ(clmul64_portable(1, 0xFFFFFFFFFFFFFFFFull).lo,
            0xFFFFFFFFFFFFFFFFull);
  // x^63 * x^63 = x^126.
  const Clmul128 sq = clmul64_portable(1ull << 63, 1ull << 63);
  EXPECT_EQ(sq.lo, 0u);
  EXPECT_EQ(sq.hi, 1ull << 62);
}

TEST(ClmulCrc, FoldConstantsComeFromTheGenerator) {
  // The exposed constants must be x^D mod g (bit-reflected x^{D-1} mod g
  // for reflected specs) — no hard-coded CRC-32 values.
  const unsigned dist[9] = {512, 576, 128, 192, 256, 320, 384, 448, 128};
  for (const CrcSpec& s : {crcspec::crc32_ethernet(), crcspec::crc32_mpeg2(),
                           crcspec::crc16_kermit(), crcspec::crc64_xz(),
                           crcspec::crc5_usb()}) {
    const ClmulCrc engine(s, ClmulKernel::kPortable);
    const Gf2Poly g = s.generator();
    for (int i = 0; i < 9; ++i) {
      const Gf2Poly r = Gf2Poly::x_pow_mod(
          s.reflect_in ? dist[i] - 1 : dist[i], g);
      std::uint64_t w = 0;
      for (unsigned bit = 0; bit < 64; ++bit)
        if (r.coeff(bit)) w |= std::uint64_t{1} << bit;
      if (s.reflect_in) w = reflect_bits(w, 64);
      EXPECT_EQ(engine.fold_constants()[static_cast<std::size_t>(i)], w)
          << s.name << " constant " << i;
    }
  }
}

TEST(ClmulCrc, PortableMatchesTableOnRandomLengths) {
  Rng rng(91);
  for (const CrcSpec& s : crcspec::all()) {
    const TableCrc ref(s);
    const ClmulCrc engine(s, ClmulKernel::kPortable);
    EXPECT_FALSE(engine.accelerated());
    EXPECT_STREQ(engine.kernel_name(), "portable");
    for (int i = 0; i < 24; ++i) {
      const auto msg = rng.next_bytes(rng.next_below(4097));
      EXPECT_EQ(engine.compute(msg), ref.compute(msg))
          << s.name << " len=" << msg.size();
    }
  }
}

TEST(ClmulCrc, AcceleratedMatchesPortableOnRandomLengths) {
  // The forced-fallback equivalence gate: identical CRCs from both
  // kernels on random lengths 0..4096 (block boundaries included by
  // construction: 64, 128, ... land in the range).
  if (!accel_available())
    GTEST_SKIP() << "no PCLMULQDQ on this machine";
  Rng rng(92);
  for (const CrcSpec& s : crcspec::all()) {
    const ClmulCrc acc(s, ClmulKernel::kAccelerated);
    const ClmulCrc port(s, ClmulKernel::kPortable);
    EXPECT_TRUE(acc.accelerated());
    EXPECT_STREQ(acc.kernel_name(), "pclmul");
    for (int i = 0; i < 32; ++i) {
      const auto msg = rng.next_bytes(rng.next_below(4097));
      EXPECT_EQ(acc.compute(msg), port.compute(msg))
          << s.name << " len=" << msg.size();
    }
    // Exact block-boundary lengths.
    for (std::size_t len : {63u, 64u, 65u, 71u, 72u, 127u, 128u, 4096u}) {
      const auto msg = rng.next_bytes(len);
      EXPECT_EQ(acc.compute(msg), port.compute(msg))
          << s.name << " len=" << len;
    }
  }
}

TEST(ClmulCrc, ForcePortableEnvDowngradesAutoKernel) {
  // kAuto under PLFSR_FORCE_PORTABLE=1 must select the portable kernel
  // and still produce identical CRCs.
  Rng rng(93);
  const CrcSpec s = crcspec::crc32_ethernet();
  const auto msg = rng.next_bytes(2048);

  ASSERT_EQ(setenv("PLFSR_FORCE_PORTABLE", "1", 1), 0);
  const ClmulCrc forced(s);
  EXPECT_FALSE(forced.accelerated());
  const std::uint64_t crc_forced = forced.compute(msg);
  ASSERT_EQ(unsetenv("PLFSR_FORCE_PORTABLE"), 0);

  const ClmulCrc auto_engine(s);
  EXPECT_EQ(auto_engine.accelerated(),
            accel_available());  // env veto lifted
  EXPECT_EQ(auto_engine.compute(msg), crc_forced);
  EXPECT_EQ(crc_forced, TableCrc(s).compute(msg));
}

TEST(ClmulCrc, ExplicitAcceleratedThrowsWithoutHardware) {
  if (accel_available())
    GTEST_SKIP() << "hardware present; nothing to refuse";
  EXPECT_THROW(ClmulCrc(crcspec::crc32_ethernet(),
                        ClmulKernel::kAccelerated),
               std::runtime_error);
}

TEST(ClmulCrc, StreamingSplitEqualsOneShotAcrossBlockBoundaries) {
  // Cuts on either side of the 64-byte block and 8-byte word boundaries
  // exercise every bulk/table hand-off in absorb().
  Rng rng(94);
  for (const CrcSpec& s : {crcspec::crc32_ethernet(), crcspec::crc32_mpeg2(),
                           crcspec::crc64_xz(), crcspec::crc16_kermit()}) {
    for (const ClmulKernel kind :
         {ClmulKernel::kPortable, ClmulKernel::kAuto}) {
      const ClmulCrc engine(s, kind);
      const auto msg = rng.next_bytes(517);
      const std::uint64_t expect = engine.compute(msg);
      EXPECT_EQ(expect, TableCrc(s).compute(msg)) << s.name;
      for (std::size_t cut : {0u, 1u, 7u, 8u, 63u, 64u, 65u, 128u, 200u,
                              511u, 517u}) {
        std::uint64_t st = engine.initial_state();
        st = engine.absorb(st, {msg.data(), cut});
        st = engine.absorb(st, {msg.data() + cut, msg.size() - cut});
        EXPECT_EQ(engine.finalize(st), expect)
            << s.name << " cut=" << cut << " kernel=" << engine.kernel_name();
      }
    }
  }
}

TEST(ClmulCrc, CheckValues) {
  const std::uint8_t kCheckMsg[] = {'1', '2', '3', '4', '5',
                                    '6', '7', '8', '9'};
  EXPECT_EQ(ClmulCrc(crcspec::crc32_ethernet()).compute(kCheckMsg),
            0xCBF43926u);
  EXPECT_EQ(ClmulCrc(crcspec::crc64_xz()).compute(kCheckMsg),
            0x995DC9BBDF1939FAull);
  EXPECT_EQ(ClmulCrc(crcspec::crc16_xmodem()).compute(kCheckMsg), 0x31C3u);
}

}  // namespace
}  // namespace plfsr
