#include "mapper/verilog_gen.hpp"

#include <gtest/gtest.h>

#include "lfsr/catalog.hpp"
#include "mapper/matrix_mapper.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(VerilogGen, CombinationalModuleStructure) {
  const Gf2Matrix m = Gf2Matrix::from_rows({"1100", "0110", "0000"});
  const XorNetlist nl = map_matrix(m);
  const std::string v = emit_combinational_module("xor_block", nl);

  EXPECT_NE(v.find("module xor_block ("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("input  wire [3:0] in"), std::string::npos);
  EXPECT_NE(v.find("output wire [2:0] out"), std::string::npos);
  // One wire declaration per gate; zero row emits the constant.
  EXPECT_EQ(count_occurrences(v, "  wire g_n"), nl.node_count());
  EXPECT_NE(v.find("assign out[2] = 1'b0;"), std::string::npos);
}

TEST(VerilogGen, GateCountMatchesNetlist) {
  Rng rng(1);
  Gf2Matrix m(12, 30);
  for (std::size_t r = 0; r < 12; ++r)
    for (std::size_t c = 0; c < 30; ++c) m.set(r, c, rng.next_bit());
  const XorNetlist nl = map_matrix(m);
  const std::string v = emit_combinational_module("u", nl);
  EXPECT_EQ(count_occurrences(v, "  wire g_n"), nl.node_count());
  EXPECT_EQ(count_occurrences(v, "  assign out["), 12u);
}

TEST(VerilogGen, Deterministic) {
  const Gf2Poly g = catalog::crc16_ccitt();
  EXPECT_EQ(emit_parallel_crc_module("crc16", g, 16),
            emit_parallel_crc_module("crc16", g, 16));
}

TEST(VerilogGen, ParallelCrcModulePorts) {
  const std::string v =
      emit_parallel_crc_module("crc32_m64", catalog::crc32_ethernet(), 64);
  for (const char* needle :
       {"module crc32_m64 (", "input  wire clk", "input  wire rst_n",
        "input  wire init_load", "input  wire [31:0] init_value",
        "input  wire chunk_valid", "input  wire [63:0] chunk",
        "output wire [31:0] crc_raw", "reg [31:0] xt",
        "always @(posedge clk or negedge rst_n)", "endmodule"})
    EXPECT_NE(v.find(needle), std::string::npos) << needle;
  // All 32 state bits are assigned in both branches.
  EXPECT_EQ(count_occurrences(v, "      xt["), 64u);
  // Header documents the Derby II = 1 property.
  EXPECT_NE(v.find("II = 1"), std::string::npos);
}

TEST(VerilogGen, ParallelScramblerModulePorts) {
  const std::string v = emit_parallel_scrambler_module(
      "scr80211_m32", catalog::scrambler_80211(), 32);
  for (const char* needle :
       {"module scr80211_m32 (", "input  wire [6:0] seed",
        "input  wire [31:0] data_in", "output wire [31:0] data_out",
        "reg [6:0] xt", "endmodule"})
    EXPECT_NE(v.find(needle), std::string::npos) << needle;
  EXPECT_EQ(count_occurrences(v, "  assign data_out["), 32u);
}

TEST(VerilogGen, NoDanglingSignalReferences) {
  // Every referenced intermediate wire must be declared: collect "u_nK"
  // uses and definitions and compare.
  const std::string v =
      emit_parallel_crc_module("c", catalog::crc8_atm(), 16);
  for (const std::string prefix : {"tinv_n", "op1_n", "op2_n"}) {
    std::size_t uses = 0, defs = 0;
    for (std::size_t pos = v.find(prefix); pos != std::string::npos;
         pos = v.find(prefix, pos + prefix.size()))
      ++uses;
    defs = count_occurrences(v, "  wire " + prefix);
    EXPECT_GE(uses, defs) << prefix;
    EXPECT_GT(defs, 0u) << prefix;
  }
}

}  // namespace
}  // namespace plfsr
