#include "mapper/matrix_mapper.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "lfsr/catalog.hpp"
#include "lfsr/derby.hpp"
#include "lfsr/linear_system.hpp"
#include "lfsr/lookahead.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

Gf2Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng,
                        unsigned density_percent = 50) {
  Gf2Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      m.set(r, c, rng.next_below(100) < density_percent);
  return m;
}

void expect_netlist_computes(const XorNetlist& nl, const Gf2Matrix& m,
                             Rng& rng, int trials = 20) {
  ASSERT_EQ(nl.n_inputs(), m.cols());
  ASSERT_EQ(nl.outputs().size(), m.rows());
  for (int t = 0; t < trials; ++t) {
    Gf2Vec z(m.cols());
    for (std::size_t i = 0; i < z.size(); ++i) z.set(i, rng.next_bit());
    EXPECT_EQ(nl.evaluate(z), m * z) << "trial " << t;
  }
}

TEST(XorTreeCells, KnownCounts) {
  EXPECT_EQ(xor_tree_cells(0, 10), 0u);
  EXPECT_EQ(xor_tree_cells(1, 10), 0u);
  EXPECT_EQ(xor_tree_cells(2, 10), 1u);
  EXPECT_EQ(xor_tree_cells(10, 10), 1u);
  EXPECT_EQ(xor_tree_cells(11, 10), 2u);  // 10 + passthrough, then 2
  EXPECT_EQ(xor_tree_cells(100, 10), 11u);
  EXPECT_EQ(xor_tree_cells(101, 10), 12u);
}

/// Mapped netlists must compute the matrix product for random matrices,
/// with and without sharing, across fan-in limits.
class MapperCorrectness
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(MapperCorrectness, EvaluatesToMatrixProduct) {
  const auto [fanin, share] = GetParam();
  Rng rng(fanin * 2 + share);
  MapperOptions opts;
  opts.max_fanin = static_cast<unsigned>(fanin);
  opts.share_patterns = share;
  for (int trial = 0; trial < 5; ++trial) {
    const Gf2Matrix m =
        random_matrix(8 + trial * 5, 12 + trial * 9, rng);
    MapperStats stats;
    const XorNetlist nl = map_matrix(m, opts, &stats);
    EXPECT_LE(nl.max_fanin(), static_cast<unsigned>(fanin));
    expect_netlist_computes(nl, m, rng);
  }
}

INSTANTIATE_TEST_SUITE_P(FaninAndSharing, MapperCorrectness,
                         ::testing::Combine(::testing::Values(2, 4, 10),
                                            ::testing::Values(false, true)));

TEST(Mapper, EmptyAndSingletonRows) {
  const Gf2Matrix m = Gf2Matrix::from_rows({"0000", "0100", "1111"});
  Rng rng(3);
  const XorNetlist nl = map_matrix(m);
  expect_netlist_computes(nl, m, rng);
  EXPECT_EQ(nl.outputs()[0], kZeroSignal);
  EXPECT_EQ(nl.outputs()[1], 1u);  // direct pass-through, no gate
}

TEST(Mapper, SharingNeverIncreasesCells) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const Gf2Matrix m = random_matrix(20, 40, rng, 60);
    MapperStats with, without;
    MapperOptions o;
    o.share_patterns = true;
    map_matrix(m, o, &with);
    o.share_patterns = false;
    map_matrix(m, o, &without);
    EXPECT_LE(with.cells, without.cells) << "trial " << trial;
    EXPECT_EQ(without.patterns_shared, 0u);
    EXPECT_EQ(without.cells, without.cells_without_sharing);
  }
}

TEST(Mapper, SharingFindsTheObviousPattern) {
  // Three 12-term rows share a 10-term pattern. Naive: 2 cells per row
  // (12 > fan-in 10). Shared: the pattern once (1 cell) + 1 cell per
  // row = 4 cells instead of 6.
  const Gf2Matrix m = Gf2Matrix::from_rows({
      "111111111111000000",
      "111111111100110000",
      "111111111100001100",
  });
  MapperStats stats;
  const XorNetlist nl = map_matrix(m, {}, &stats);
  EXPECT_GE(stats.patterns_shared, 1u);
  EXPECT_LT(stats.cells, stats.cells_without_sharing);
  EXPECT_LE(stats.cells, 4u);
  Rng rng(5);
  expect_netlist_computes(nl, m, rng);
}

TEST(Mapper, SharingDeclinesUnprofitablePatterns) {
  // With the exact cell-gain metric, a shared pattern inside rows that
  // already fit one cell each must NOT be extracted (it would only add
  // a gate).
  const Gf2Matrix m = Gf2Matrix::from_rows({
      "11110000",
      "11110011",
      "11111100",
  });
  MapperStats stats;
  const XorNetlist nl = map_matrix(m, {}, &stats);
  EXPECT_EQ(stats.patterns_shared, 0u);
  EXPECT_EQ(stats.cells, 3u);
  Rng rng(6);
  expect_netlist_computes(nl, m, rng);
}

TEST(Mapper, DerbyBmtMapsCorrectlyAtPaperScale) {
  // The actual workload: B_Mt of the Ethernet CRC at M = 128 (32 x 128).
  const LinearSystem sys = make_crc_system(catalog::crc32_ethernet());
  const LookAhead la(sys, 128);
  const DerbyTransform d(la);
  MapperStats stats;
  const XorNetlist nl = map_matrix(d.bmt(), {}, &stats);
  Rng rng(6);
  expect_netlist_computes(nl, d.bmt(), rng, 10);
  // Plausibility: the forest fits PiCoGA-scale budgets and the CSE did
  // something.
  EXPECT_LE(stats.cells, 384u);
  EXPECT_LE(stats.cells, stats.cells_without_sharing);
}

TEST(Mapper, MapMatrixIntoOffsetsInputs) {
  // Splice a 3x2 product into a 5-input netlist at offset 3.
  XorNetlist nl(5);
  const Gf2Matrix m = Gf2Matrix::from_rows({"11", "10", "00"});
  const auto roots = map_matrix_into(nl, m, 3);
  ASSERT_EQ(roots.size(), 3u);
  for (SignalId r : roots) nl.add_output(r);
  // Inputs 0..2 are unused; the product reads inputs 3,4.
  const Gf2Vec z = Gf2Vec::from_string("00011");
  EXPECT_EQ(nl.evaluate(z).to_string(), "010");
}

TEST(Mapper, MapMatrixIntoRejectsOverflow) {
  XorNetlist nl(3);
  EXPECT_THROW(map_matrix_into(nl, Gf2Matrix(2, 3), 1), std::invalid_argument);
}

}  // namespace
}  // namespace plfsr
