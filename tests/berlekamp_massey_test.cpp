#include "lfsr/berlekamp_massey.hpp"

#include <gtest/gtest.h>

#include "lfsr/catalog.hpp"
#include "lfsr/linear_system.hpp"
#include "scrambler/scrambler.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

TEST(BerlekampMassey, ZeroSequenceHasComplexityZero) {
  const auto syn = berlekamp_massey(BitStream(40));
  EXPECT_EQ(syn.complexity, 0u);
}

TEST(BerlekampMassey, RecoversEveryCatalogueScramblerGenerator) {
  // Keystream of a maximal-length LFSR of degree k has linear complexity
  // exactly k, and the synthesized connection polynomial is the
  // reciprocal-normalized generator — BM must reproduce it from 2k bits.
  for (const auto& [name, g] : catalog::all_scrambler_polys()) {
    const unsigned k = static_cast<unsigned>(g.degree());
    const LinearSystem sys = make_prbs_system(g);
    Gf2Vec x = Gf2Vec::from_word(k, 1);
    BitStream seq;
    for (unsigned i = 0; i < 4 * k; ++i) seq.push_back(sys.step(x, false));

    const auto syn = berlekamp_massey(seq);
    EXPECT_EQ(syn.complexity, k) << name;
    EXPECT_TRUE(generates(syn.connection, syn.complexity, seq)) << name;
  }
}

TEST(BerlekampMassey, ComplexityPlateausAfter2L) {
  const LinearSystem sys = make_prbs_system(catalog::prbs9());
  Gf2Vec x = Gf2Vec::from_word(9, 0x1A5);
  BitStream seq;
  for (int i = 0; i < 60; ++i) seq.push_back(sys.step(x, false));
  const auto profile = linear_complexity_profile(seq);
  // Once 2L = 18 bits are seen, the profile never grows again.
  for (std::size_t i = 18; i < profile.size(); ++i)
    EXPECT_EQ(profile[i], 9u) << "prefix " << i;
}

TEST(BerlekampMassey, RandomSequenceComplexityNearHalf) {
  Rng rng(1);
  const BitStream seq = rng.next_bits(200);
  const auto syn = berlekamp_massey(seq);
  EXPECT_GT(syn.complexity, 85u);
  EXPECT_LT(syn.complexity, 115u);
  EXPECT_TRUE(generates(syn.connection, syn.complexity, seq));
}

TEST(BerlekampMassey, PredictsScramblerKeystream) {
  // The attack: observe 4k keystream bits of the 802.11 scrambler (k=7),
  // predict the next 100 exactly.
  AdditiveScrambler s(catalog::scrambler_80211(), 0x55);
  const BitStream observed = s.keystream(28);
  const BitStream future = s.keystream(100);
  EXPECT_EQ(predict_continuation(observed, 100), future);
}

TEST(BerlekampMassey, PredictionNeedsEnoughBits) {
  AdditiveScrambler s(catalog::scrambler_dvb(), 0x7FF);  // k = 15
  const BitStream observed = s.keystream(20);            // < 2k
  EXPECT_THROW(predict_continuation(observed, 10), std::invalid_argument);
}

// --- The GF(2^m) generalisation -------------------------------------------

TEST(BerlekampMasseyGfm, BinaryFieldReproducesTheBitVersionExactly) {
  // Over GF(2^1) the field synthesis must agree with the classic bit
  // implementation symbol for symbol: same complexity, same connection
  // coefficients, on scrambler keystreams and random sequences alike.
  const GfmField& f2 = GfmField::of(1);
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    BitStream bits;
    std::vector<GfmField::Sym> syms;
    const std::size_t n = 10 + rng.next_below(120);
    for (std::size_t i = 0; i < n; ++i) {
      const bool b = rng.next_bit();
      bits.push_back(b);
      syms.push_back(b ? 1 : 0);
    }
    const LfsrSynthesis bit_syn = berlekamp_massey(bits);
    const GfmLfsrSynthesis sym_syn = berlekamp_massey(f2, syms);
    ASSERT_EQ(sym_syn.complexity, bit_syn.complexity) << "trial " << trial;
    ASSERT_EQ(sym_syn.connection.size(), bit_syn.complexity + 1);
    for (std::size_t i = 0; i < sym_syn.connection.size(); ++i)
      EXPECT_EQ(sym_syn.connection[i] != 0,
                bit_syn.connection.coeff(static_cast<unsigned>(i)))
          << "trial " << trial << " coeff " << i;
    EXPECT_TRUE(
        generates(f2, sym_syn.connection, sym_syn.complexity, syms));
  }
}

TEST(BerlekampMasseyGfm, RecoversAGf256LfsrFromTwiceItsLength) {
  // A degree-L recurrence over GF(256) is pinned down by 2L symbols;
  // the synthesized connection must regenerate the whole sequence.
  const GfmField& f = GfmField::of(8);
  Rng rng(78);
  for (const std::size_t L : {1u, 3u, 8u, 16u}) {
    std::vector<GfmField::Sym> c(L + 1, 0);
    c[0] = 1;
    for (std::size_t i = 1; i <= L; ++i)
      c[i] = static_cast<GfmField::Sym>(rng.next_below(256));
    c[L] = static_cast<GfmField::Sym>(1 + rng.next_below(255));  // full degree
    std::vector<GfmField::Sym> seq(L);
    for (auto& s : seq) s = static_cast<GfmField::Sym>(rng.next_below(256));
    for (std::size_t n = L; n < 6 * L; ++n) {
      GfmField::Sym next = 0;
      for (std::size_t i = 1; i <= L; ++i)
        next = f.add(next, f.mul(c[i], seq[n - i]));
      seq.push_back(next);
    }
    const GfmLfsrSynthesis syn = berlekamp_massey(f, seq);
    EXPECT_LE(syn.complexity, L) << "L=" << L;
    EXPECT_TRUE(generates(f, syn.connection, syn.complexity, seq))
        << "L=" << L;
  }
}

TEST(BerlekampMasseyGfm, RandomSymbolSequenceComplexityNearHalf) {
  const GfmField& f = GfmField::of(8);
  Rng rng(79);
  std::vector<GfmField::Sym> seq(120);
  for (auto& s : seq) s = static_cast<GfmField::Sym>(rng.next_below(256));
  const GfmLfsrSynthesis syn = berlekamp_massey(f, seq);
  EXPECT_GT(syn.complexity, 50u);
  EXPECT_LT(syn.complexity, 70u);
  EXPECT_TRUE(generates(f, syn.connection, syn.complexity, seq));
}

TEST(BerlekampMasseyGfm, ZeroAndEmptySequences) {
  const GfmField& f = GfmField::of(4);
  const std::vector<GfmField::Sym> zeros(32, 0);
  EXPECT_EQ(berlekamp_massey(f, zeros).complexity, 0u);
  const std::vector<GfmField::Sym> empty;
  EXPECT_EQ(berlekamp_massey(f, empty).complexity, 0u);
}

TEST(BerlekampMassey, CombinerKeystreamHasSumComplexity) {
  // XOR of two maximal-length LFSRs with coprime periods has linear
  // complexity k1 + k2 — the classic combiner result.
  const LinearSystem s7 = make_prbs_system(catalog::prbs7());
  const LinearSystem s9 = make_prbs_system(catalog::prbs9());
  Gf2Vec x7 = Gf2Vec::from_word(7, 0x11);
  Gf2Vec x9 = Gf2Vec::from_word(9, 0x23);
  BitStream seq;
  for (int i = 0; i < 120; ++i)
    seq.push_back(s7.step(x7, false) ^ s9.step(x9, false));
  EXPECT_EQ(berlekamp_massey(seq).complexity, 16u);
}

}  // namespace
}  // namespace plfsr
