#include "lfsr/berlekamp_massey.hpp"

#include <gtest/gtest.h>

#include "lfsr/catalog.hpp"
#include "lfsr/linear_system.hpp"
#include "scrambler/scrambler.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

TEST(BerlekampMassey, ZeroSequenceHasComplexityZero) {
  const auto syn = berlekamp_massey(BitStream(40));
  EXPECT_EQ(syn.complexity, 0u);
}

TEST(BerlekampMassey, RecoversEveryCatalogueScramblerGenerator) {
  // Keystream of a maximal-length LFSR of degree k has linear complexity
  // exactly k, and the synthesized connection polynomial is the
  // reciprocal-normalized generator — BM must reproduce it from 2k bits.
  for (const auto& [name, g] : catalog::all_scrambler_polys()) {
    const unsigned k = static_cast<unsigned>(g.degree());
    const LinearSystem sys = make_prbs_system(g);
    Gf2Vec x = Gf2Vec::from_word(k, 1);
    BitStream seq;
    for (unsigned i = 0; i < 4 * k; ++i) seq.push_back(sys.step(x, false));

    const auto syn = berlekamp_massey(seq);
    EXPECT_EQ(syn.complexity, k) << name;
    EXPECT_TRUE(generates(syn.connection, syn.complexity, seq)) << name;
  }
}

TEST(BerlekampMassey, ComplexityPlateausAfter2L) {
  const LinearSystem sys = make_prbs_system(catalog::prbs9());
  Gf2Vec x = Gf2Vec::from_word(9, 0x1A5);
  BitStream seq;
  for (int i = 0; i < 60; ++i) seq.push_back(sys.step(x, false));
  const auto profile = linear_complexity_profile(seq);
  // Once 2L = 18 bits are seen, the profile never grows again.
  for (std::size_t i = 18; i < profile.size(); ++i)
    EXPECT_EQ(profile[i], 9u) << "prefix " << i;
}

TEST(BerlekampMassey, RandomSequenceComplexityNearHalf) {
  Rng rng(1);
  const BitStream seq = rng.next_bits(200);
  const auto syn = berlekamp_massey(seq);
  EXPECT_GT(syn.complexity, 85u);
  EXPECT_LT(syn.complexity, 115u);
  EXPECT_TRUE(generates(syn.connection, syn.complexity, seq));
}

TEST(BerlekampMassey, PredictsScramblerKeystream) {
  // The attack: observe 4k keystream bits of the 802.11 scrambler (k=7),
  // predict the next 100 exactly.
  AdditiveScrambler s(catalog::scrambler_80211(), 0x55);
  const BitStream observed = s.keystream(28);
  const BitStream future = s.keystream(100);
  EXPECT_EQ(predict_continuation(observed, 100), future);
}

TEST(BerlekampMassey, PredictionNeedsEnoughBits) {
  AdditiveScrambler s(catalog::scrambler_dvb(), 0x7FF);  // k = 15
  const BitStream observed = s.keystream(20);            // < 2k
  EXPECT_THROW(predict_continuation(observed, 10), std::invalid_argument);
}

TEST(BerlekampMassey, CombinerKeystreamHasSumComplexity) {
  // XOR of two maximal-length LFSRs with coprime periods has linear
  // complexity k1 + k2 — the classic combiner result.
  const LinearSystem s7 = make_prbs_system(catalog::prbs7());
  const LinearSystem s9 = make_prbs_system(catalog::prbs9());
  Gf2Vec x7 = Gf2Vec::from_word(7, 0x11);
  Gf2Vec x9 = Gf2Vec::from_word(9, 0x23);
  BitStream seq;
  for (int i = 0; i < 120; ++i)
    seq.push_back(s7.step(x7, false) ^ s9.step(x9, false));
  EXPECT_EQ(berlekamp_massey(seq).complexity, 16u);
}

}  // namespace
}  // namespace plfsr
