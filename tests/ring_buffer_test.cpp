// SPSC ring buffer: FIFO order under a real producer/consumer pair,
// try-variant edge behaviour, close semantics (items before close are
// never lost, blocked callers wake), and the stall/occupancy accounting
// the pipeline's per-stage report is built from.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "pipeline/ring_buffer.hpp"

namespace plfsr {
namespace {

TEST(RingBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(RingBuffer, TryPushPopSingleThread) {
  RingBuffer<int> rb(2);
  EXPECT_EQ(rb.capacity(), 2u);
  int v = 1;
  EXPECT_TRUE(rb.try_push(v));
  v = 2;
  EXPECT_TRUE(rb.try_push(v));
  v = 3;
  EXPECT_FALSE(rb.try_push(v));  // full
  EXPECT_EQ(v, 3);               // not consumed on failure
  EXPECT_EQ(rb.size(), 2u);

  int out = 0;
  EXPECT_TRUE(rb.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(rb.try_pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(rb.try_pop(out));  // empty
  EXPECT_EQ(rb.size(), 0u);
}

TEST(RingBuffer, WrapsAroundManyTimes) {
  RingBuffer<std::uint64_t> rb(3);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(rb.push(i));
    std::uint64_t out = 0;
    EXPECT_TRUE(rb.pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(RingBuffer, FifoOrderAcrossThreads) {
  RingBuffer<std::uint64_t> rb(4);
  constexpr std::uint64_t kItems = 20000;
  std::vector<std::uint64_t> got;
  got.reserve(kItems);
  std::thread consumer([&] {
    std::uint64_t v;
    while (rb.pop(v)) got.push_back(v);
  });
  for (std::uint64_t i = 0; i < kItems; ++i) ASSERT_TRUE(rb.push(i));
  rb.close();
  consumer.join();
  ASSERT_EQ(got.size(), kItems);
  for (std::uint64_t i = 0; i < kItems; ++i) ASSERT_EQ(got[i], i);
}

TEST(RingBuffer, CloseDeliversQueuedItemsThenStops) {
  RingBuffer<int> rb(8);
  int v = 7;
  ASSERT_TRUE(rb.try_push(v));
  v = 8;
  ASSERT_TRUE(rb.try_push(v));
  rb.close();
  EXPECT_TRUE(rb.closed());
  v = 9;
  EXPECT_FALSE(rb.push(v));  // no pushes after close
  int out = 0;
  EXPECT_TRUE(rb.pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(rb.pop(out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(rb.pop(out));  // closed and drained
}

TEST(RingBuffer, CloseWakesBlockedConsumer) {
  RingBuffer<int> rb(1);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    rb.close();
  });
  int out = 0;
  EXPECT_FALSE(rb.pop(out));  // blocks until close, then reports drained
  closer.join();
}

TEST(RingBuffer, CloseWakesBlockedProducer) {
  RingBuffer<int> rb(1);
  int v = 1;
  ASSERT_TRUE(rb.try_push(v));
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    rb.close();
  });
  EXPECT_FALSE(rb.push(2));  // ring full; close unblocks with failure
  closer.join();
}

TEST(RingBuffer, StallAndHighWaterAccounting) {
  RingBuffer<int> rb(2);
  EXPECT_EQ(rb.push_stalls(), 0u);
  EXPECT_EQ(rb.pop_stalls(), 0u);
  EXPECT_EQ(rb.high_water(), 0u);

  ASSERT_TRUE(rb.push(1));
  EXPECT_EQ(rb.high_water(), 1u);
  ASSERT_TRUE(rb.push(2));
  EXPECT_EQ(rb.high_water(), 2u);
  EXPECT_EQ(rb.push_stalls(), 0u);  // no waiting happened yet

  // Consumer that drains slowly: the producer's third push must stall.
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    int out;
    while (rb.pop(out)) {
    }
  });
  ASSERT_TRUE(rb.push(3));
  EXPECT_GE(rb.push_stalls(), 1u);
  rb.close();
  consumer.join();
  EXPECT_LE(rb.high_water(), rb.capacity());
}

TEST(RingBuffer, MoveOnlyPayload) {
  RingBuffer<std::unique_ptr<int>> rb(2);
  ASSERT_TRUE(rb.push(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(rb.pop(out));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, 42);
}

}  // namespace
}  // namespace plfsr
