// Cross-engine equivalence: every parallelization method of §2 must agree
// bit-exactly with the serial reference on every spec, message length and
// look-ahead factor. This is the functional core of the reproduction.
#include <gtest/gtest.h>

#include <span>
#include <string>
#include <tuple>

#include "crc/clmul_crc.hpp"
#include "crc/engine.hpp"
#include "crc/engine_registry.hpp"
#include "crc/crc_spec.hpp"
#include "crc/derby_crc.hpp"
#include "crc/gfmac_crc.hpp"
#include "crc/matrix_crc.hpp"
#include "crc/serial_crc.hpp"
#include "crc/slicing_crc.hpp"
#include "crc/table_crc.hpp"
#include "crc/wide_table_crc.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

const std::uint8_t kCheckMsg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};

/// (spec index, M) sweep for the three parallel engines.
class ParallelEngines
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  CrcSpec spec() const {
    const auto all = crcspec::all();
    return all[static_cast<std::size_t>(std::get<0>(GetParam())) % all.size()];
  }
  std::size_t m() const {
    return static_cast<std::size_t>(std::get<1>(GetParam()));
  }
};

TEST_P(ParallelEngines, MatrixMatchesSerialOnBytes) {
  const CrcSpec s = spec();
  const MatrixCrc engine(s, m());
  Rng rng(1000 + std::get<0>(GetParam()));
  for (std::size_t len : {0u, 1u, 9u, 46u, 123u}) {
    const auto msg = rng.next_bytes(len);
    EXPECT_EQ(engine.compute(msg), serial_crc(s, msg))
        << s.name << " len=" << len << " M=" << m();
  }
}

TEST_P(ParallelEngines, MatrixMatchesSerialOnBitGranularLengths) {
  const CrcSpec s = spec();
  const MatrixCrc engine(s, m());
  Rng rng(2000 + std::get<1>(GetParam()));
  for (std::size_t nbits : {1u, 7u, 31u, 64u, 65u, 368u}) {
    const BitStream bits = rng.next_bits(nbits);
    const std::uint64_t expect =
        s.finalize(serial_crc_bits(bits, s.width, s.poly, s.init));
    EXPECT_EQ(engine.compute_bits(bits), expect)
        << s.name << " nbits=" << nbits << " M=" << m();
  }
}

TEST_P(ParallelEngines, DerbyMatchesMatrix) {
  const CrcSpec s = spec();
  if (!s.generator().is_squarefree() && m() > 1) {
    // A generator with a repeated factor (CRC-64/ECMA-182: (x+1)^2
    // divides it) makes every even power of A derogatory — Derby's
    // transform provably cannot exist. Checked explicitly in
    // Derby.RepeatedFactorGeneratorHasNoTransform.
    GTEST_SKIP() << s.name << " is not squarefree";
  }
  const MatrixCrc direct(s, m());
  const DerbyCrc derby(s, m());
  Rng rng(3000 + std::get<0>(GetParam()) * 7 + std::get<1>(GetParam()));
  for (std::size_t nbits : {8u, 63u, 128u, 368u}) {
    const BitStream bits = rng.next_bits(nbits);
    EXPECT_EQ(derby.compute_bits(bits), direct.compute_bits(bits))
        << s.name << " nbits=" << nbits << " M=" << m();
  }
}

TEST_P(ParallelEngines, GfmacBothOrdersMatchSerial) {
  const CrcSpec s = spec();
  const GfmacCrc engine(s, m());
  Rng rng(4000 + std::get<1>(GetParam()));
  for (std::size_t nbits : {5u, 64u, 129u, 368u}) {
    const BitStream bits = rng.next_bits(nbits);
    const std::uint64_t raw = serial_crc_bits(bits, s.width, s.poly, s.init);
    EXPECT_EQ(engine.raw_bits_horner(bits, s.init), raw)
        << s.name << " nbits=" << nbits;
    EXPECT_EQ(engine.raw_bits_parallel(bits, s.init), raw)
        << s.name << " nbits=" << nbits;
  }
}

// M restricted to powers of two in the shared sweep: for reducible
// generators A^M can lose a cyclic vector at other M (Derby's transform
// then has no valid f, by design, not by bug); squaring is a field
// automorphism so power-of-two M always preserves the minimal polynomial.
INSTANTIATE_TEST_SUITE_P(
    SpecsAndM, ParallelEngines,
    ::testing::Combine(::testing::Values(0, 2, 4, 6, 8, 10, 12, 14, 15),
                       ::testing::Values(1, 2, 8, 16, 32, 64, 128)));

TEST(MatrixCrc, OddLookAheadFactors) {
  // The direct look-ahead engine has no cyclic-vector requirement: any M.
  Rng rng(8);
  for (std::size_t m : {3u, 5u, 7u, 24u, 100u}) {
    const CrcSpec s = crcspec::crc32_ethernet();
    const MatrixCrc engine(s, m);
    const auto msg = rng.next_bytes(46);
    EXPECT_EQ(engine.compute(msg), serial_crc(s, msg)) << "M=" << m;
  }
}

TEST(GfmacCrc, OddChunkSizes) {
  Rng rng(9);
  for (std::size_t m : {3u, 5u, 24u, 100u}) {
    const CrcSpec s = crcspec::crc16_kermit();
    const GfmacCrc engine(s, m);
    const BitStream bits = rng.next_bits(368);
    EXPECT_EQ(engine.raw_bits_parallel(bits, s.init),
              serial_crc_bits(bits, s.width, s.poly, s.init))
        << "M=" << m;
  }
}

TEST(SlicingCrc, MatchesTableForReflectedSpecs) {
  Rng rng(5);
  for (const CrcSpec& s : crcspec::all()) {
    if (!s.reflect_in) continue;
    const TableCrc table(s);
    const SlicingBy4Crc s4(s);
    const SlicingBy8Crc s8(s);
    for (std::size_t len : {0u, 3u, 4u, 7u, 8u, 9u, 64u, 1500u}) {
      const auto msg = rng.next_bytes(len);
      const std::uint64_t expect = table.compute(msg);
      EXPECT_EQ(s4.compute(msg), expect) << s.name << " len=" << len;
      EXPECT_EQ(s8.compute(msg), expect) << s.name << " len=" << len;
    }
  }
}

TEST(SlicingCrc, CheckValues) {
  EXPECT_EQ(SlicingBy8Crc(crcspec::crc32_ethernet()).compute(kCheckMsg),
            0xCBF43926u);
  EXPECT_EQ(SlicingBy4Crc(crcspec::crc32c()).compute(kCheckMsg), 0xE3069283u);
  EXPECT_EQ(SlicingBy8Crc(crcspec::crc64_xz()).compute(kCheckMsg),
            0x995DC9BBDF1939FAull);
}

TEST(SlicingCrc, RejectsNonReflected) {
  EXPECT_THROW(SlicingBy8Crc(crcspec::crc32_mpeg2()), std::invalid_argument);
}

TEST(SlicingCrc, Crc64ThroughFourSlicesCarriesHighRegisterBytes) {
  // Width 64 > 8·4: state bytes beyond the 4-byte block must be carried
  // into the next block explicitly (the `state >> 8·Slices` path in
  // SlicingCrc::absorb). Regression for the carry with a fully populated
  // 64-bit register, both one-shot and across absorb() splits that leave
  // the register mid-message.
  const CrcSpec s = crcspec::crc64_xz();
  const SlicingBy4Crc s4(s);
  EXPECT_EQ(s4.compute(kCheckMsg), 0x995DC9BBDF1939FAull);
  const TableCrc ref(s);
  Rng rng(11);
  const auto msg = rng.next_bytes(129);
  const std::uint64_t expect = ref.compute(msg);
  EXPECT_EQ(s4.compute(msg), expect);
  for (std::size_t cut : {1u, 3u, 4u, 6u, 127u}) {
    std::uint64_t st = s4.initial_state();
    st = s4.absorb(st, {msg.data(), cut});
    st = s4.absorb(st, {msg.data() + cut, msg.size() - cut});
    EXPECT_EQ(s4.finalize(st), expect) << "cut=" << cut;
  }
}

/// Shared edge-length audit: every byte-wise engine must agree with the
/// bit-serial reference on the empty message and 1..8-byte inputs — the
/// sub-block tail paths (SlicingCrc's < Slices remainder, GfmacCrc's
/// short final chunk, MatrixCrc's serial head) all trigger in this range.
class EdgeLengths : public ::testing::TestWithParam<int> {};

/// absorb-from-initial_state + finalize must equal compute, and the
/// raw-register conversions must round-trip — for every engine exposing
/// the shared byte-streaming interface (MatrixCrc and GfmacCrc included
/// since they gained it).
template <typename Engine>
void check_streaming_interface(const Engine& e,
                               std::span<const std::uint8_t> msg,
                               std::uint64_t expect, const char* which,
                               const CrcSpec& s) {
  const std::uint64_t st = e.absorb(e.initial_state(), msg);
  EXPECT_EQ(e.finalize(st), expect)
      << which << " streaming " << s.name << " len=" << msg.size();
  EXPECT_EQ(e.state_from_raw(e.raw_register(st)), st)
      << which << " raw round-trip " << s.name;
}

TEST_P(EdgeLengths, RegistryEnginesAgreeWithSerialOnShortInputs) {
  // Registry-enumerated: every engine available on this host runs the
  // audit for every catalogue spec it claims to support. Registering a
  // new engine adds it here with no test edit.
  const std::size_t len = static_cast<std::size_t>(GetParam());
  Rng rng(6000 + GetParam());
  const EngineRegistry& reg = EngineRegistry::instance();
  for (const CrcSpec& s : crcspec::all()) {
    const auto msg = rng.next_bytes(len);
    const std::uint64_t expect = serial_crc(s, msg);
    std::size_t covered = 0;
    for (const std::string& name : reg.available_names()) {
      if (!reg.supports(name, s)) continue;
      ++covered;
      const CrcEngineHandle e = reg.make(name, s);
      EXPECT_EQ(e.compute(msg), expect)
          << name << " " << s.name << " len=" << len;
      check_streaming_interface(e, msg, expect, name.c_str(), s);
    }
    // serial, wide-table, matrix and gfmac gate on nothing, so no spec
    // can silently drop out of the audit.
    EXPECT_GE(covered, 4u) << s.name;
    // The portable CLMUL kernel is not a registry entry (the "clmul"
    // factory is the accelerated host path); keep it covered directly.
    const ClmulCrc clmul_port(s, ClmulKernel::kPortable);
    EXPECT_EQ(clmul_port.compute(msg), expect)
        << "ClmulCrc(portable) " << s.name << " len=" << len;
    check_streaming_interface(clmul_port, msg, expect, "ClmulCrc(portable)",
                              s);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths0To8, EdgeLengths, ::testing::Range(0, 9));

TEST(MatrixCrc, StreamingSplitEqualsOneShot) {
  // Chunked absorption from the raw-register state must match the
  // one-shot compute for every cut — the property ParallelCrc relies on.
  Rng rng(61);
  for (const CrcSpec& s : {crcspec::crc32_ethernet(), crcspec::crc32_mpeg2(),
                           crcspec::crc64_xz()}) {
    const MatrixCrc engine(s, 32);
    const auto msg = rng.next_bytes(73);
    const std::uint64_t expect = engine.compute(msg);
    for (std::size_t cut : {0u, 1u, 4u, 37u, 72u, 73u}) {
      std::uint64_t st = engine.initial_state();
      st = engine.absorb(st, {msg.data(), cut});
      st = engine.absorb(st, {msg.data() + cut, msg.size() - cut});
      EXPECT_EQ(engine.finalize(st), expect) << s.name << " cut=" << cut;
    }
  }
}

TEST(GfmacCrc, StreamingSplitEqualsOneShot) {
  Rng rng(62);
  for (const CrcSpec& s : {crcspec::crc32_ethernet(), crcspec::crc16_arc(),
                           crcspec::crc64_ecma()}) {
    const GfmacCrc engine(s, 32);
    const auto msg = rng.next_bytes(73);
    const std::uint64_t expect = engine.compute(msg);
    for (std::size_t cut : {0u, 1u, 4u, 37u, 72u, 73u}) {
      std::uint64_t st = engine.initial_state();
      st = engine.absorb(st, {msg.data(), cut});
      st = engine.absorb(st, {msg.data() + cut, msg.size() - cut});
      EXPECT_EQ(engine.finalize(st), expect) << s.name << " cut=" << cut;
    }
  }
}

TEST(TableCrc, StreamingSplitEqualsOneShot) {
  const TableCrc t(crcspec::crc32_ethernet());
  Rng rng(6);
  const auto msg = rng.next_bytes(100);
  std::uint64_t state = t.initial_state();
  state = t.absorb(state, {msg.data(), 10});
  state = t.absorb(state, {msg.data() + 10, 90});
  EXPECT_EQ(t.finalize(state), t.compute(msg));
}

TEST(MatrixCrc, InitRegisterIsRespected) {
  // raw_bits from a nonzero init must match the serial register run.
  const CrcSpec s = crcspec::crc16_ccitt_false();
  const MatrixCrc engine(s, 8);
  Rng rng(7);
  const BitStream bits = rng.next_bits(80);
  for (std::uint64_t init : {0x0000ull, 0xFFFFull, 0x1D0Full}) {
    EXPECT_EQ(engine.raw_bits(bits, init),
              serial_crc_bits(bits, s.width, s.poly, init));
  }
}

TEST(GfmacCrc, CycleModelMatchesPaperReference) {
  // [10]: 2-3 cycles for a 128-bit message on 16 GFMAC units (M = 8
  // chunks of the 128-bit message -> 16 chunks of 8 bits in one round
  // plus reduction).
  const std::uint64_t c = gfmac_cycles(128, 8, 16);
  EXPECT_GE(c, 2u);
  EXPECT_LE(c, 5u);
  // Degenerate cases.
  EXPECT_EQ(gfmac_cycles(0, 8, 16), 0u);
  EXPECT_EQ(gfmac_cycles(8, 8, 16), 1u);
}

TEST(GfmacCrc, CycleModelScalesWithUnits) {
  EXPECT_LT(gfmac_cycles(4096, 32, 16), gfmac_cycles(4096, 32, 4));
  EXPECT_LT(gfmac_cycles(4096, 32, 4), gfmac_cycles(4096, 32, 1));
}

}  // namespace
}  // namespace plfsr
