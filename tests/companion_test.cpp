#include "lfsr/companion.hpp"

#include <gtest/gtest.h>

#include "lfsr/catalog.hpp"

namespace plfsr {
namespace {

TEST(Companion, GaloisFormStructure) {
  const Gf2Poly g = Gf2Poly::from_exponents({4, 1, 0});  // x^4 + x + 1
  const Gf2Matrix a = companion_galois(g);
  ASSERT_EQ(a.rows(), 4u);
  // Paper layout: subdiagonal ones, last column = [g_0 g_1 g_2 g_3].
  EXPECT_EQ(a.to_string(),
            "0001\n"
            "1001\n"
            "0100\n"
            "0010\n");
  EXPECT_TRUE(a.is_companion());
}

TEST(Companion, InputVectorHoldsCoefficients) {
  const Gf2Poly g = Gf2Poly::from_exponents({4, 1, 0});
  EXPECT_EQ(crc_input_vector(g).to_string(), "1100");
}

TEST(Companion, FibonacciFormStructure) {
  const Gf2Poly g = catalog::scrambler_80211();  // x^7 + x^4 + 1
  const Gf2Matrix a = companion_fibonacci(g);
  ASSERT_EQ(a.rows(), 7u);
  // Feedback row reads taps x^4 -> cell 3 and x^7 -> cell 6.
  EXPECT_EQ(a.row(0).to_string(), "0001001");
  for (std::size_t i = 1; i < 7; ++i)
    for (std::size_t j = 0; j < 7; ++j)
      EXPECT_EQ(a.get(i, j), j == i - 1) << i << "," << j;
}

TEST(Companion, CharacteristicOrderMatchesPolynomialOrder) {
  // For a primitive g of degree k, A has multiplicative order 2^k - 1.
  for (const Gf2Poly& g :
       {catalog::scrambler_80211(), catalog::prbs9()}) {
    const std::uint64_t period =
        (std::uint64_t{1} << static_cast<unsigned>(g.degree())) - 1;
    for (const Gf2Matrix& a : {companion_galois(g), companion_fibonacci(g)}) {
      EXPECT_TRUE(a.pow(period).is_identity());
      EXPECT_FALSE(a.pow(period / distinct_prime_factors(period)[0])
                       .is_identity());
    }
  }
}

TEST(Companion, GaloisAndFibonacciAreSimilar) {
  // Same characteristic polynomial -> same order; verify via A^n stepping
  // an impulse through both forms yields sequences of equal period.
  const Gf2Poly g = catalog::prbs9();
  const Gf2Matrix ga = companion_galois(g);
  const Gf2Matrix fa = companion_fibonacci(g);
  EXPECT_EQ(ga.rank(), fa.rank());
  EXPECT_TRUE((ga.pow(511) * ga).operator==(ga));
  EXPECT_TRUE((fa.pow(511) * fa).operator==(fa));
}

TEST(Companion, RejectsDegenerateGenerator) {
  EXPECT_THROW(companion_galois(Gf2Poly::one()), std::invalid_argument);
  EXPECT_THROW(companion_galois(Gf2Poly()), std::invalid_argument);
  EXPECT_THROW(companion_fibonacci(Gf2Poly()), std::invalid_argument);
}

}  // namespace
}  // namespace plfsr
