#include "gf2/gf2_matrix.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace plfsr {
namespace {

Gf2Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Gf2Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m.set(r, c, rng.next_bit());
  return m;
}

TEST(Gf2Matrix, IdentityActsNeutrally) {
  Rng rng(1);
  const Gf2Matrix a = random_matrix(17, 17, rng);
  const Gf2Matrix i = Gf2Matrix::identity(17);
  EXPECT_EQ(a * i, a);
  EXPECT_EQ(i * a, a);
  EXPECT_TRUE(i.is_identity());
  EXPECT_FALSE(a.is_identity());
}

TEST(Gf2Matrix, AdditionSelfInverse) {
  Rng rng(2);
  const Gf2Matrix a = random_matrix(9, 13, rng);
  EXPECT_TRUE((a + a).is_zero());
}

TEST(Gf2Matrix, MultiplicationAssociative) {
  Rng rng(3);
  const Gf2Matrix a = random_matrix(8, 12, rng);
  const Gf2Matrix b = random_matrix(12, 5, rng);
  const Gf2Matrix c = random_matrix(5, 10, rng);
  EXPECT_EQ((a * b) * c, a * (b * c));
}

TEST(Gf2Matrix, MultiplicationDistributesOverAddition) {
  Rng rng(4);
  const Gf2Matrix a = random_matrix(6, 7, rng);
  const Gf2Matrix b = random_matrix(7, 9, rng);
  const Gf2Matrix c = random_matrix(7, 9, rng);
  EXPECT_EQ(a * (b + c), a * b + a * c);
}

TEST(Gf2Matrix, MatrixVectorAgreesWithMatrixMatrix) {
  Rng rng(5);
  const Gf2Matrix a = random_matrix(11, 6, rng);
  Gf2Vec v(6);
  for (std::size_t i = 0; i < 6; ++i) v.set(i, rng.next_bit());
  const Gf2Vec direct = a * v;
  const Gf2Matrix as_col = Gf2Matrix::from_columns({v});
  const Gf2Matrix prod = a * as_col;
  for (std::size_t i = 0; i < 11; ++i)
    EXPECT_EQ(direct.get(i), prod.get(i, 0));
}

TEST(Gf2Matrix, DimensionMismatchThrows) {
  EXPECT_THROW(Gf2Matrix(2, 3) * Gf2Matrix(2, 3), std::invalid_argument);
  EXPECT_THROW(Gf2Matrix(2, 3) + Gf2Matrix(3, 2), std::invalid_argument);
}

TEST(Gf2Matrix, PowMatchesRepeatedMultiplication) {
  Rng rng(6);
  const Gf2Matrix a = random_matrix(10, 10, rng);
  Gf2Matrix expect = Gf2Matrix::identity(10);
  for (unsigned e = 0; e <= 9; ++e) {
    EXPECT_EQ(a.pow(e), expect) << "exponent " << e;
    expect = expect * a;
  }
}

TEST(Gf2Matrix, PowZeroIsIdentity) {
  Rng rng(7);
  const Gf2Matrix a = random_matrix(5, 5, rng);
  EXPECT_TRUE(a.pow(0).is_identity());
}

TEST(Gf2Matrix, TransposeInvolution) {
  Rng rng(8);
  const Gf2Matrix a = random_matrix(7, 13, rng);
  EXPECT_EQ(a.transposed().transposed(), a);
  EXPECT_EQ(a.transposed().rows(), 13u);
}

TEST(Gf2Matrix, InverseRoundTrip) {
  Rng rng(9);
  // Random matrices over GF(2) are nonsingular with probability ~0.29;
  // retry until one is found, then check both products.
  for (int attempt = 0; attempt < 100; ++attempt) {
    const Gf2Matrix a = random_matrix(16, 16, rng);
    const auto inv = a.inverse();
    if (!inv) continue;
    EXPECT_TRUE((a * *inv).is_identity());
    EXPECT_TRUE((*inv * a).is_identity());
    return;
  }
  FAIL() << "no invertible matrix found in 100 draws";
}

TEST(Gf2Matrix, SingularHasNoInverse) {
  Gf2Matrix a(3, 3);  // zero matrix
  EXPECT_FALSE(a.inverse().has_value());
  a.set(0, 0, true);
  a.set(1, 0, true);  // dependent rows
  EXPECT_FALSE(a.inverse().has_value());
}

TEST(Gf2Matrix, RankProperties) {
  EXPECT_EQ(Gf2Matrix::identity(12).rank(), 12u);
  EXPECT_EQ(Gf2Matrix(4, 9).rank(), 0u);
  Gf2Matrix a(3, 3);
  a.set(0, 1, true);
  a.set(1, 1, true);  // two equal rows
  a.set(2, 2, true);
  EXPECT_EQ(a.rank(), 2u);
}

TEST(Gf2Matrix, RankInvariantUnderInvertibleMultiply) {
  Rng rng(10);
  Gf2Matrix p = random_matrix(8, 8, rng);
  while (!p.inverse()) p = random_matrix(8, 8, rng);
  const Gf2Matrix a = random_matrix(8, 8, rng);
  EXPECT_EQ((p * a).rank(), a.rank());
}

TEST(Gf2Matrix, HconcatLayout) {
  const Gf2Matrix a = Gf2Matrix::from_rows({"10", "01"});
  const Gf2Matrix b = Gf2Matrix::from_rows({"111", "000"});
  const Gf2Matrix c = a.hconcat(b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 5u);
  EXPECT_EQ(c.to_string(), "10111\n01000\n");
}

TEST(Gf2Matrix, CompanionPredicate) {
  // Paper-form companion: subdiagonal ones + arbitrary last column.
  const Gf2Matrix comp = Gf2Matrix::from_rows({"001", "101", "011"});
  EXPECT_TRUE(comp.is_companion());
  EXPECT_FALSE(Gf2Matrix::identity(3).is_companion());
  const Gf2Matrix off = Gf2Matrix::from_rows({"011", "101", "011"});
  EXPECT_FALSE(off.is_companion());
}

TEST(Gf2Matrix, RowWeightStats) {
  const Gf2Matrix a = Gf2Matrix::from_rows({"1110", "0001", "0000"});
  EXPECT_EQ(a.max_row_weight(), 3u);
  EXPECT_EQ(a.total_weight(), 4u);
}

TEST(Gf2Matrix, RowColumnAccessors) {
  Rng rng(11);
  const Gf2Matrix a = random_matrix(6, 70, rng);  // force multi-word rows
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 70; ++c) {
      EXPECT_EQ(a.row(r).get(c), a.get(r, c));
      EXPECT_EQ(a.column(c).get(r), a.get(r, c));
    }
}

TEST(Gf2Matrix, FromColumnsMatchesColumnAccessor) {
  Rng rng(12);
  std::vector<Gf2Vec> cols;
  for (int i = 0; i < 5; ++i) cols.push_back(Gf2Vec::from_word(9, rng.next_u64()));
  const Gf2Matrix m = Gf2Matrix::from_columns(cols);
  for (std::size_t c = 0; c < 5; ++c) EXPECT_EQ(m.column(c), cols[c]);
}

}  // namespace
}  // namespace plfsr
