#include <gtest/gtest.h>

#include "cipher/a51.hpp"
#include "cipher/combiner.hpp"
#include "lfsr/catalog.hpp"
#include "lfsr/lookahead.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

std::array<std::uint8_t, 8> test_key() {
  return {0x12, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF};
}

TEST(A51, ReferenceTestVector) {
  // The canonical published vector (reference a5-1 implementation):
  // key 12 23 45 67 89 AB CD EF, frame 0x134.
  const std::uint8_t kAtoB[15] = {0x53, 0x4E, 0xAA, 0x58, 0x2F,
                                  0xE8, 0x15, 0x1A, 0xB6, 0xE1,
                                  0x85, 0x5A, 0x72, 0x8C, 0x00};
  const std::uint8_t kBtoA[15] = {0x24, 0xFD, 0x35, 0xA3, 0x5D,
                                  0x5F, 0xB6, 0x52, 0x6D, 0x32,
                                  0xF9, 0x06, 0xDF, 0x1A, 0xC0};
  A51 a(test_key(), 0x134);
  const auto pack = [](const BitStream& s) {
    std::vector<std::uint8_t> out((s.size() + 7) / 8, 0);
    for (std::size_t i = 0; i < s.size(); ++i)
      if (s.get(i)) out[i / 8] |= std::uint8_t(1u << (7 - i % 8));
    return out;
  };
  const auto atob = pack(a.downlink());
  const auto btoa = pack(a.uplink());
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(atob[i], kAtoB[i]) << "AtoB byte " << i;
    EXPECT_EQ(btoa[i], kBtoA[i]) << "BtoA byte " << i;
  }
}

TEST(A51, DeterministicPerKeyAndFrame) {
  A51 a(test_key(), 0x134);
  A51 b(test_key(), 0x134);
  EXPECT_EQ(a.downlink(), b.downlink());
}

TEST(A51, FrameNumberChangesKeystream) {
  A51 a(test_key(), 0x134);
  A51 b(test_key(), 0x135);
  EXPECT_FALSE(a.downlink() == b.downlink());
}

TEST(A51, KeyChangesKeystream) {
  auto k2 = test_key();
  k2[0] ^= 1;
  A51 a(test_key(), 0x134);
  A51 b(k2, 0x134);
  EXPECT_FALSE(a.downlink() == b.downlink());
}

TEST(A51, DownlinkAndUplinkAre114Bits) {
  A51 a(test_key(), 0);
  EXPECT_EQ(a.downlink().size(), 114u);
  EXPECT_EQ(a.uplink().size(), 114u);
}

TEST(A51, UplinkRequiresDownlinkFirst) {
  A51 a(test_key(), 0);
  EXPECT_THROW(a.uplink(), std::logic_error);
  a.downlink();
  EXPECT_THROW(a.downlink(), std::logic_error);
}

TEST(A51, RegistersNonZeroAfterSetup) {
  // The mixing phase leaves all three registers loaded for any
  // reasonable key (the all-zero key + frame is the only degenerate one).
  A51 a(test_key(), 0x134);
  EXPECT_NE(a.r1() | a.r2() | a.r3(), 0u);
}

TEST(A51, FrameNumberRangeChecked) {
  EXPECT_THROW(A51(test_key(), 1u << 22), std::invalid_argument);
}

TEST(A51, KeystreamIsBalanced) {
  // Crude statistical check: over 10 frames the keystream ones-density
  // stays within 40-60%.
  std::size_t ones = 0, total = 0;
  for (std::uint32_t frame = 0; frame < 10; ++frame) {
    A51 a(test_key(), frame);
    const BitStream d = a.downlink();
    for (std::size_t i = 0; i < d.size(); ++i) ones += d.get(i);
    total += d.size();
  }
  EXPECT_GT(ones, total * 2 / 5);
  EXPECT_LT(ones, total * 3 / 5);
}

TEST(XorCombiner, EncryptDecryptIdentity) {
  const std::vector<Gf2Poly> gens = {catalog::a51_r1(), catalog::a51_r2(),
                                     catalog::a51_r3()};
  const std::vector<std::uint64_t> seeds = {0x111, 0x222, 0x333};
  XorCombiner tx(gens, seeds);
  XorCombiner rx(gens, seeds);
  Rng rng(1);
  const BitStream msg = rng.next_bits(500);
  EXPECT_EQ(rx.process(tx.process(msg)), msg);
}

TEST(XorCombiner, JointSystemReproducesKeystream) {
  // The combiner is linear: the block-diagonal joint LinearSystem must
  // emit the identical keystream — and therefore parallelizes with the
  // same look-ahead machinery as everything else in the paper.
  const std::vector<Gf2Poly> gens = {catalog::prbs7(), catalog::prbs9()};
  const std::vector<std::uint64_t> seeds = {0x41, 0x155};
  XorCombiner c(gens, seeds);
  const LinearSystem joint = c.joint_system();
  Gf2Vec x = c.joint_state();

  XorCombiner fresh(gens, seeds);
  const BitStream expect = fresh.keystream(300);
  const BitStream got = joint.run(x, BitStream(300));
  EXPECT_EQ(got, expect);
}

TEST(XorCombiner, JointSystemParallelizes) {
  const std::vector<Gf2Poly> gens = {catalog::prbs7(), catalog::prbs9()};
  const std::vector<std::uint64_t> seeds = {0x7F, 0x1FF};
  XorCombiner c(gens, seeds);
  const LinearSystem joint = c.joint_system();
  const LookAhead la(joint, 32);

  Gf2Vec xs = c.joint_state();
  Gf2Vec xb = xs;
  const BitStream serial = joint.run(xs, BitStream(320));
  const BitStream block = la.run(xb, BitStream(320));
  EXPECT_EQ(block, serial);
}

TEST(XorCombiner, RejectsBadConfig) {
  EXPECT_THROW(XorCombiner({}, {}), std::invalid_argument);
  EXPECT_THROW(XorCombiner({catalog::prbs7()}, {0}), std::invalid_argument);
  EXPECT_THROW(XorCombiner({catalog::prbs7()}, {1, 2}),
               std::invalid_argument);
}

TEST(AddWithCarryCombiner, Deterministic) {
  AddWithCarryCombiner a(0x123456789Aull);
  AddWithCarryCombiner b(0x123456789Aull);
  EXPECT_EQ(a.keystream(64), b.keystream(64));
}

TEST(AddWithCarryCombiner, KeySensitivity) {
  AddWithCarryCombiner a(0x123456789Aull);
  AddWithCarryCombiner b(0x123456789Bull);
  EXPECT_NE(a.keystream(64), b.keystream(64));
}

TEST(AddWithCarryCombiner, ZeroKeyStillRuns) {
  // The inserted '1' bits keep both LFSRs out of the all-zero state.
  AddWithCarryCombiner c(0);
  const auto ks = c.keystream(32);
  bool any_nonzero = false;
  for (std::uint8_t v : ks) any_nonzero |= v != 0;
  EXPECT_TRUE(any_nonzero);
}

}  // namespace
}  // namespace plfsr
