#include "picoga/routing.hpp"

#include <gtest/gtest.h>

#include "lfsr/catalog.hpp"
#include "mapper/op_builder.hpp"

namespace plfsr {
namespace {

TEST(Routing, SingleRowOpNeedsNoTracks) {
  XorNetlist nl(4);
  nl.add_output(nl.add_node({0, 1, 2, 3}));
  const PgaOp op("one_row", nl, 0, PicogaConstraints{});
  const RoutingReport rep = analyze_routing(op);
  EXPECT_TRUE(rep.feasible);
  EXPECT_EQ(rep.peak_granules_bitwise, 0u);
}

TEST(Routing, TwoLevelOpCountsCrossings) {
  // Level 1: two gates from 4 inputs; level 2: one gate over both.
  // Boundary 0 carries exactly the two intermediate signals (all inputs
  // are consumed in row 0).
  XorNetlist nl(4);
  const SignalId a = nl.add_node({0, 1});
  const SignalId b = nl.add_node({2, 3});
  nl.add_output(nl.add_node({a, b}));
  const PgaOp op("two_level", nl, 0, PicogaConstraints{});
  ASSERT_EQ(op.rows_used(), 2u);
  const RoutingReport rep = analyze_routing(op);
  ASSERT_EQ(rep.nets_per_boundary.size(), 1u);
  EXPECT_EQ(rep.nets_per_boundary[0], 2u);
  EXPECT_EQ(rep.peak_granules_paired, 1u);  // pairs into one 2-bit granule
  EXPECT_TRUE(rep.feasible);
}

TEST(Routing, InputConsumedLateCrossesEveryBoundary) {
  // in3 skips level 1 entirely and feeds the level-2 gate: it must be
  // counted on boundary 0.
  XorNetlist nl(4);
  const SignalId a = nl.add_node({0, 1});
  const SignalId b = nl.add_node({a, 2});
  nl.add_output(nl.add_node({b, 3}));
  const PgaOp op("late_input", nl, 0, PicogaConstraints{});
  ASSERT_EQ(op.rows_used(), 3u);
  const RoutingReport rep = analyze_routing(op);
  // Boundary 0: a (row0 -> row1) and in3 (enters -> row2), in2 (-> row1).
  EXPECT_EQ(rep.nets_per_boundary[0], 3u);
  // Boundary 1: b and in3.
  EXPECT_EQ(rep.nets_per_boundary[1], 2u);
}

TEST(Routing, PaperScaleOpsAreRoutable) {
  // The real CRC-32 operations at every feasible M must fit the channel
  // at the fabric's native 2-bit bundling; the fully bit-wise bound may
  // exceed it at M = 128 (the §3 "underutilization" cost made concrete).
  for (std::size_t m : {32u, 64u, 128u}) {
    const CrcOpPlan plan = build_derby_crc_ops(catalog::crc32_ethernet(), m);
    const PgaOp op1("op1", plan.op1.netlist, plan.width,
                    PicogaConstraints{});
    const RoutingReport rep = analyze_routing(op1);
    EXPECT_TRUE(rep.feasible) << "M=" << m << " paired peak "
                              << rep.peak_granules_paired;
    EXPECT_GE(rep.peak_granules_bitwise, 2 * rep.peak_granules_paired - 1);
  }
}

TEST(Routing, CongestionGrowsWithM) {
  auto peak = [](std::size_t m) {
    const CrcOpPlan plan = build_derby_crc_ops(catalog::crc32_ethernet(), m);
    const PgaOp op1("op1", plan.op1.netlist, plan.width,
                    PicogaConstraints{});
    return analyze_routing(op1).peak_granules_bitwise;
  };
  EXPECT_LT(peak(16), peak(128));
}

TEST(Routing, TinyChannelDetectsInfeasibility) {
  const CrcOpPlan plan = build_derby_crc_ops(catalog::crc32_ethernet(), 128);
  const PgaOp op1("op1", plan.op1.netlist, plan.width, PicogaConstraints{});
  RoutingChannel tiny;
  tiny.tracks = 4;
  EXPECT_FALSE(analyze_routing(op1, tiny).feasible);
}

}  // namespace
}  // namespace plfsr
