#include "picoga/crc_accelerator.hpp"

#include <gtest/gtest.h>

#include "crc/crc_spec.hpp"
#include "crc/serial_crc.hpp"
#include "dream/dream_model.hpp"
#include "dream/scrambler_model.hpp"
#include "lfsr/catalog.hpp"
#include "scrambler/scrambler.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

TEST(PicogaCrcAccelerator, ComputesTheEthernetCrc) {
  Rng rng(1);
  const CrcSpec spec = crcspec::crc32_ethernet();
  for (std::size_t m : {32u, 64u, 128u}) {
    PicogaCrcAccelerator acc(spec.generator(), m);
    const BitStream bits = rng.next_bits(m * 10);
    const auto res = acc.process(bits, spec.init);
    EXPECT_EQ(res.raw, serial_crc_bits(bits, spec.width, spec.poly, spec.init))
        << "M=" << m;
    EXPECT_GT(res.cycles, 10u / m + 1);
  }
}

TEST(PicogaCrcAccelerator, CyclesMatchAnalyticModel) {
  // The closed-form DreamCrcModel must agree cycle-for-cycle with the
  // event-driven array simulation — the cross-validation DESIGN.md
  // promises.
  Rng rng(2);
  const Gf2Poly g = catalog::crc32_ethernet();
  for (std::size_t m : {32u, 128u}) {
    PicogaCrcAccelerator acc(g, m);
    const DreamCrcModel model(g, m);
    for (std::size_t chunks : {1u, 4u, 96u}) {
      const BitStream bits = rng.next_bits(m * chunks);
      EXPECT_EQ(acc.process(bits, 0xFFFFFFFF).cycles,
                model.cycles_single(m * chunks))
          << "M=" << m << " chunks=" << chunks;
    }
  }
}

TEST(PicogaCrcAccelerator, InterleavedCyclesMatchAnalyticModel) {
  Rng rng(3);
  const Gf2Poly g = catalog::crc32_ethernet();
  PicogaCrcAccelerator acc(g, 64);
  const DreamCrcModel model(g, 64);
  for (std::size_t batch : {2u, 8u, 32u}) {
    std::vector<BitStream> msgs;
    for (std::size_t i = 0; i < batch; ++i)
      msgs.push_back(rng.next_bits(64 * 6));
    const auto res = acc.process_interleaved(msgs, 0xFFFFFFFF);
    EXPECT_EQ(res.cycles, model.cycles_interleaved(64 * 6, batch))
        << "batch=" << batch;
    // Every message's CRC is still exact.
    for (std::size_t i = 0; i < batch; ++i)
      EXPECT_EQ(res.raw[i],
                serial_crc_bits(msgs[i], 32, 0x04C11DB7, 0xFFFFFFFF));
  }
}

TEST(PicogaCrcAccelerator, InterleavingAmortizesOverhead) {
  const Gf2Poly g = catalog::crc32_ethernet();
  PicogaCrcAccelerator acc(g, 128);
  Rng rng(4);
  const std::size_t n = 512;  // short messages: overhead-dominated
  std::vector<BitStream> msgs;
  for (int i = 0; i < 32; ++i) msgs.push_back(rng.next_bits(n));

  std::uint64_t single_total = 0;
  for (const auto& msg : msgs)
    single_total += acc.process(msg, 0xFFFFFFFF).cycles;
  const std::uint64_t batch_total =
      acc.process_interleaved(msgs, 0xFFFFFFFF).cycles;
  EXPECT_LT(batch_total * 2, single_total);  // at least 2x better
}

TEST(PicogaCrcAccelerator, RejectsRaggedMessages) {
  PicogaCrcAccelerator acc(catalog::crc32_ethernet(), 32);
  EXPECT_THROW(acc.process(BitStream(33), 0), std::invalid_argument);
  EXPECT_THROW(acc.process_interleaved({}, 0), std::invalid_argument);
  EXPECT_THROW(
      acc.process_interleaved({BitStream(32), BitStream(64)}, 0),
      std::invalid_argument);
}

TEST(PicogaScramblerAccelerator, MatchesSerialScrambler) {
  Rng rng(5);
  const Gf2Poly g = catalog::scrambler_80211();
  for (std::size_t m : {32u, 128u}) {
    PicogaScramblerAccelerator acc(g, m);
    const BitStream data = rng.next_bits(m * 8);
    AdditiveScrambler ref(g, 0x7F);
    const auto res = acc.process(data, 0x7F);
    EXPECT_EQ(res.out, ref.process(data)) << "M=" << m;
  }
}

TEST(PicogaScramblerAccelerator, CyclesMatchAnalyticModel) {
  const Gf2Poly g = catalog::scrambler_80211();
  PicogaScramblerAccelerator acc(g, 64);
  const DreamScramblerModel model(g, 64);
  Rng rng(6);
  for (std::size_t chunks : {1u, 16u, 190u}) {
    const BitStream data = rng.next_bits(64 * chunks);
    EXPECT_EQ(acc.process(data, 0x7F).cycles, model.cycles(64 * chunks))
        << "chunks=" << chunks;
  }
}

TEST(PicogaCrcAccelerator, ConfigLoadIsChargedOnce) {
  PicogaCrcAccelerator acc(catalog::crc32_ethernet(), 64);
  EXPECT_GT(acc.config_cycles(), 100u);  // two whole-op bitstreams
  // And process() cycles do not include it.
  Rng rng(7);
  const BitStream bits = rng.next_bits(64);
  const auto r1 = acc.process(bits, 0);
  const auto r2 = acc.process(bits, 0);
  EXPECT_EQ(r1.cycles, r2.cycles);
}

}  // namespace
}  // namespace plfsr
