#include "scrambler/dvb.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace plfsr {
namespace {

TEST(Dvb, PrbsFirstByteIsStandard) {
  // EN 300 429: with the init sequence 100101010000000 the first PRBS
  // byte applied to the data is 0000 0011.
  const BitStream bits = dvb::prbs(8);
  EXPECT_EQ(bits.to_string(), "00000011");
}

TEST(Dvb, PrbsPeriodIsMaximal) {
  // 1 + x^14 + x^15 is primitive: period 2^15 - 1.
  const BitStream bits = dvb::prbs(2 * 32767);
  for (std::size_t i = 0; i < 32767; ++i)
    ASSERT_EQ(bits.get(i), bits.get(i + 32767)) << i;
  // And no shorter period at the obvious divisors of 2^15-1 = 7*31*151.
  bool differs = false;
  for (std::size_t i = 0; i < 2000 && !differs; ++i)
    differs = bits.get(i) != bits.get(i + 32767 / 7);
  EXPECT_TRUE(differs);
}

TEST(Dvb, RoundTrip) {
  const auto ts = dvb::make_test_stream(24, 1);
  const auto scrambled = dvb::randomize(ts);
  EXPECT_EQ(dvb::derandomize(scrambled), ts);
}

TEST(Dvb, SyncBytesHandledPerStandard) {
  const auto ts = dvb::make_test_stream(16, 2);
  const auto scrambled = dvb::randomize(ts);
  for (std::size_t p = 0; p < 16; ++p) {
    const std::uint8_t sync = scrambled[p * dvb::kPacketBytes];
    if (p % 8 == 0)
      EXPECT_EQ(sync, dvb::kInvertedSyncByte) << "packet " << p;
    else
      EXPECT_EQ(sync, dvb::kSyncByte) << "packet " << p;
  }
}

TEST(Dvb, PayloadActuallyRandomized) {
  // An all-0x47+zeros stream must come out with roughly balanced bits.
  std::vector<std::uint8_t> ts(8 * dvb::kPacketBytes, 0);
  for (std::size_t p = 0; p < 8; ++p)
    ts[p * dvb::kPacketBytes] = dvb::kSyncByte;
  const auto scrambled = dvb::randomize(ts);
  std::size_t ones = 0, payload_bits = 0;
  for (std::size_t i = 0; i < scrambled.size(); ++i) {
    if (i % dvb::kPacketBytes == 0) continue;  // skip sync bytes
    ones += static_cast<std::size_t>(__builtin_popcount(scrambled[i]));
    payload_bits += 8;
  }
  EXPECT_GT(ones, payload_bits * 2 / 5);
  EXPECT_LT(ones, payload_bits * 3 / 5);
}

TEST(Dvb, GroupsAreIndependent) {
  // The PRBS restarts at each 8-packet group: byte i of group 0 and the
  // corresponding byte of group 1 are XORed with the same keystream.
  Rng rng(3);
  const auto ts = dvb::make_test_stream(16, 4);
  const auto scrambled = dvb::randomize(ts);
  const std::size_t group = 8 * dvb::kPacketBytes;
  for (std::size_t i = 1; i < 400; ++i) {
    if (i % dvb::kPacketBytes == 0) continue;
    const std::uint8_t key0 = ts[i] ^ scrambled[i];
    const std::uint8_t key1 = ts[group + i] ^ scrambled[group + i];
    ASSERT_EQ(key0, key1) << "offset " << i;
  }
}

TEST(Dvb, RejectsMalformedStreams) {
  EXPECT_THROW(dvb::randomize(std::vector<std::uint8_t>(100)),
               std::invalid_argument);
  std::vector<std::uint8_t> bad(dvb::kPacketBytes, 0);  // no sync byte
  EXPECT_THROW(dvb::randomize(bad), std::invalid_argument);
  // Derandomize expects the inverted sync at group starts.
  std::vector<std::uint8_t> plain = dvb::make_test_stream(1, 5);
  EXPECT_THROW(dvb::derandomize(plain), std::invalid_argument);
}

}  // namespace
}  // namespace plfsr
