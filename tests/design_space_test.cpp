#include "mapper/design_space.hpp"

#include <gtest/gtest.h>

#include "lfsr/catalog.hpp"

namespace plfsr {
namespace {

TEST(DesignSpace, PaperHeadline128BitsPerCycle) {
  // §4: "we generated PiCoGA operations for different values of M,
  // finding that PiCoGA is able to elaborate up to 128 bit per cycle."
  EXPECT_EQ(max_feasible_m(catalog::crc32_ethernet()), 128u);
}

TEST(DesignSpace, EthernetSweepShape) {
  const auto pts = explore_crc_design_space(
      catalog::crc32_ethernet(), {8, 16, 32, 64, 128, 256});
  ASSERT_EQ(pts.size(), 6u);
  for (const auto& p : pts) {
    if (p.m <= 128) {
      EXPECT_TRUE(p.feasible) << "M=" << p.m;
      EXPECT_EQ(p.op1.ii, 1u) << "M=" << p.m;
    } else {
      EXPECT_FALSE(p.feasible) << "M=" << p.m;
      EXPECT_FALSE(p.limiting_factor.empty());
    }
  }
  // Cost grows with M; peak throughput is M * 200 Mbit/s.
  EXPECT_LT(pts[0].total_cells, pts[4].total_cells);
  EXPECT_NEAR(pts[4].peak_gbps, 25.6, 1e-9);
}

TEST(DesignSpace, SmallCrcsAreCheap) {
  const auto pts = explore_crc_design_space(catalog::crc8_atm(), {8, 32});
  for (const auto& p : pts) {
    EXPECT_TRUE(p.feasible);
    EXPECT_LT(p.total_cells, 80u) << "M=" << p.m;
  }
}

TEST(DesignSpace, FitOpRowPacking) {
  // A 40-gate single-level op needs ceil(40/16) = 3 rows.
  XorNetlist nl(80);
  for (SignalId i = 0; i < 80; i += 2) nl.add_node({i, i + 1});
  for (std::size_t i = 0; i < 40; ++i)
    nl.add_output(static_cast<SignalId>(80 + i));
  MappedOp op;
  op.netlist = nl;
  const OpFit fit = fit_op(op, PicogaConstraints{});
  EXPECT_EQ(fit.cells, 40u);
  EXPECT_EQ(fit.rows, 3u);
  EXPECT_EQ(fit.levels, 1u);
  EXPECT_TRUE(fit.fits);
}

TEST(DesignSpace, ScramblerFeasibleUpTo121) {
  // Single-op scrambler: y(M) plus nothing else leaves the array, so the
  // 128-bit output port allows M up to 128; cells stay modest because
  // k = 7.
  const auto pts = explore_scrambler_design_space(
      catalog::scrambler_80211(), {32, 64, 128});
  for (const auto& p : pts) {
    EXPECT_TRUE(p.feasible) << "M=" << p.m;
    EXPECT_EQ(p.op.ii, 1u);
  }
  EXPECT_NEAR(pts[2].peak_gbps, 25.6, 1e-9);
}

TEST(DesignSpace, FSeedInsensitivity) {
  // The paper "empirically analyzed the impact of the arbitrary vector f
  // ... didn't find significant difference in the complexity of T".
  const auto cells = sweep_f_complexity(catalog::crc32_ethernet(), 32, 8);
  ASSERT_GE(cells.size(), 4u);
  const auto [lo, hi] = std::minmax_element(cells.begin(), cells.end());
  // Spread within 2x counts as "no significant difference" at this scale.
  EXPECT_LE(*hi, *lo * 2) << "min=" << *lo << " max=" << *hi;
}

}  // namespace
}  // namespace plfsr
