#include "scrambler/spreader.hpp"

#include <gtest/gtest.h>

#include "lfsr/catalog.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

TEST(Spreader, RoundTripCleanChannel) {
  Rng rng(1);
  const BitStream data = rng.next_bits(300);
  for (std::size_t chips : {1u, 3u, 11u, 16u}) {
    Spreader tx(catalog::prbs15(), 0x1ACE, chips);
    Spreader rx(catalog::prbs15(), 0x1ACE, chips);
    const BitStream air = tx.spread(data);
    EXPECT_EQ(air.size(), data.size() * chips);
    EXPECT_EQ(rx.despread(air), data) << "chips=" << chips;
  }
}

TEST(Spreader, ExpandsBandwidthAndWhitens) {
  // Spreading an all-zero payload with 11 chips/bit must produce a
  // balanced chip stream (the PRBS shows through).
  Spreader tx(catalog::prbs23(), 0xBEEF, 11);
  const BitStream air = tx.spread(BitStream(400));
  const std::size_t ones = air.weight();
  EXPECT_GT(ones, air.size() * 2 / 5);
  EXPECT_LT(ones, air.size() * 3 / 5);
}

TEST(Spreader, ProcessingGainCorrectsChipErrors) {
  // With C = 11, up to 5 chip errors per bit are voted away.
  Rng rng(2);
  const BitStream data = rng.next_bits(100);
  Spreader tx(catalog::prbs15(), 0x7777, 11);
  Spreader rx(catalog::prbs15(), 0x7777, 11);
  BitStream air = tx.spread(data);
  // Flip 5 chips in every 11-chip group.
  for (std::size_t g = 0; g < data.size(); ++g)
    for (std::size_t j = 0; j < 5; ++j) {
      const std::size_t pos = g * 11 + (j * 2 + (g % 2));
      air.set(pos, !air.get(pos));
    }
  EXPECT_EQ(rx.despread(air), data);
}

TEST(Spreader, SixOfElevenErrorsFlipTheBit) {
  const BitStream data = BitStream(20);  // all zero
  Spreader tx(catalog::prbs15(), 0x123, 11);
  Spreader rx(catalog::prbs15(), 0x123, 11);
  BitStream air = tx.spread(data);
  for (std::size_t j = 0; j < 6; ++j)  // corrupt 6 chips of bit 0
    air.set(j, !air.get(j));
  const BitStream out = rx.despread(air);
  EXPECT_TRUE(out.get(0));   // majority flipped
  EXPECT_FALSE(out.get(1));  // neighbours unharmed
}

TEST(Spreader, SeedMismatchGarbles) {
  Rng rng(3);
  const BitStream data = rng.next_bits(200);
  Spreader tx(catalog::prbs15(), 0x1111, 11);
  Spreader rx(catalog::prbs15(), 0x2222, 11);
  const BitStream out = rx.despread(tx.spread(data));
  // Roughly half the bits decode wrong under a wrong code phase.
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < data.size(); ++i)
    wrong += out.get(i) != data.get(i);
  EXPECT_GT(wrong, data.size() / 5);
}

TEST(Spreader, ArgumentValidation) {
  EXPECT_THROW(Spreader(catalog::prbs15(), 0x1, 0), std::invalid_argument);
  EXPECT_THROW(Spreader(catalog::prbs15(), 0, 4), std::invalid_argument);
  Spreader s(catalog::prbs15(), 0x1, 4);
  EXPECT_THROW(s.despread(BitStream(6)), std::invalid_argument);
}

}  // namespace
}  // namespace plfsr
