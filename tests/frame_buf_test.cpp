// FrameBuf: the move-only descriptor contract. Moves transfer ownership
// in O(1) and empty the source; copies do not compile (deep copies are
// spelled clone()); span views alias the storage; and the shared arena
// backref lets a descriptor outlive a closed — or destroyed — arena,
// degrading to a plain heap free (the ASan target for the lifetime
// clause).
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <span>
#include <type_traits>
#include <vector>

#include "support/frame_arena.hpp"
#include "support/frame_buf.hpp"

namespace plfsr {
namespace {

// The whole point of the refactor, checked at compile time: descriptors
// move, payload copies cannot happen by accident.
static_assert(!std::is_copy_constructible_v<FrameBuf>);
static_assert(!std::is_copy_assignable_v<FrameBuf>);
static_assert(std::is_nothrow_move_constructible_v<FrameBuf>);
static_assert(std::is_nothrow_move_assignable_v<FrameBuf>);

std::vector<std::uint8_t> iota_bytes(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  std::iota(v.begin(), v.end(), std::uint8_t{0});
  return v;
}

TEST(FrameBuf, AdoptsVectorAndCompares) {
  const auto ref = iota_bytes(32);
  FrameBuf buf(iota_bytes(32));
  EXPECT_EQ(buf.size(), 32u);
  EXPECT_FALSE(buf.arena_backed());
  EXPECT_TRUE(buf == ref);
  EXPECT_EQ(buf.to_vector(), ref);
  EXPECT_EQ(buf[5], 5u);
}

TEST(FrameBuf, MoveTransfersStorageAndEmptiesSource) {
  FrameBuf a(iota_bytes(16));
  const std::uint8_t* p = a.data();
  FrameBuf b(std::move(a));
  EXPECT_EQ(b.data(), p);  // same storage, no copy
  EXPECT_EQ(b.size(), 16u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): contract

  FrameBuf c;
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move): contract
}

TEST(FrameBuf, CloneIsDeepAndHeapBacked) {
  FrameArena arena;
  FrameBuf buf;
  ASSERT_TRUE(arena.acquire(buf, 8));
  std::memset(buf.data(), 0xAB, buf.size());
  FrameBuf copy = buf.clone();
  EXPECT_TRUE(copy == buf);
  EXPECT_NE(copy.data(), buf.data());
  EXPECT_FALSE(copy.arena_backed());  // clones never recycle
  copy[0] = 0;                        // independent storage
  EXPECT_EQ(buf[0], 0xAB);
}

TEST(FrameBuf, SpanViewsAliasTheStorage) {
  FrameBuf buf(std::vector<std::uint8_t>(8, 0));
  std::span<std::uint8_t> w = buf.span();
  w[3] = 42;
  EXPECT_EQ(buf[3], 42u);
  // As a contiguous range, FrameBuf converts to read/write spans where
  // the engines expect them — no explicit .span() needed at call sites.
  std::span<const std::uint8_t> r = buf;
  EXPECT_EQ(r[3], 42u);
  EXPECT_EQ(r.data(), buf.data());
}

TEST(FrameBuf, ResetReleasesToArena) {
  FrameArena arena;
  FrameBuf buf;
  ASSERT_TRUE(arena.acquire(buf, 64));
  ASSERT_TRUE(buf.arena_backed());
  buf.reset();
  EXPECT_TRUE(buf.empty());
  EXPECT_FALSE(buf.arena_backed());
  EXPECT_EQ(arena.pooled(), 1u);
  EXPECT_EQ(arena.outstanding(), 0u);
}

TEST(FrameBuf, MoveAssignOverHeldBufferReleasesIt) {
  FrameArena arena;
  FrameBuf a, b;
  ASSERT_TRUE(arena.acquire(a, 64));
  ASSERT_TRUE(arena.acquire(b, 64));
  a = std::move(b);  // a's old storage must recycle, not leak
  EXPECT_EQ(arena.pooled(), 1u);
  EXPECT_EQ(arena.outstanding(), 1u);
}

TEST(FrameBuf, OutlivesClosedArena) {
  // A descriptor dropped after close() heap-frees; nothing pools.
  FrameArena arena;
  FrameBuf buf;
  ASSERT_TRUE(arena.acquire(buf, 128));
  arena.close();
  buf[0] = 1;  // storage still fully usable
  buf.reset();
  EXPECT_EQ(arena.pooled(), 0u);
}

TEST(FrameBuf, OutlivesDestroyedArena) {
  // The lifetime clause ASan enforces: the backref keeps the shared
  // state alive, so a straggler descriptor written to and destroyed
  // after the arena object is gone is a heap free — never a UAF.
  FrameBuf straggler;
  {
    FrameArena arena;
    ASSERT_TRUE(arena.acquire(straggler, 256));
  }
  std::memset(straggler.data(), 0x5A, straggler.size());
  EXPECT_EQ(straggler[255], 0x5A);
  straggler.reset();  // heap free under ASan's eye
  EXPECT_TRUE(straggler.empty());
}

TEST(FrameBuf, ResizeBeyondCapacityStaysArenaBacked) {
  // Growth past the class capacity reallocates, but the descriptor keeps
  // its backref: on drop the arena re-classifies by the new capacity.
  FrameArena arena;
  FrameBuf buf;
  ASSERT_TRUE(arena.acquire(buf, 64));
  buf.resize(4096);
  EXPECT_TRUE(buf.arena_backed());
  buf.reset();
  EXPECT_EQ(arena.pooled(), 1u);
  FrameBuf again;
  ASSERT_TRUE(arena.acquire(again, 4096));  // the grown buffer serves it
  EXPECT_EQ(arena.recycles(), 1u);
  EXPECT_EQ(arena.heap_allocations(), 1u);
}

}  // namespace
}  // namespace plfsr
