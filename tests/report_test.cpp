#include "support/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace plfsr {
namespace {

TEST(ReportTable, AlignedOutput) {
  ReportTable t({"N", "Gbps"});
  t.add_row({"368", "1.25"});
  t.add_row({"12144", "24.00"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("N"), std::string::npos);
  EXPECT_NE(out.find("12144"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(ReportTable, CsvOutput) {
  ReportTable t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(ReportTable, ArityEnforced) {
  ReportTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(ReportTable, NumberFormatting) {
  EXPECT_EQ(ReportTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(ReportTable::num(25.6, 1), "25.6");
}

}  // namespace
}  // namespace plfsr
