#include <gtest/gtest.h>

#include "picoga/array.hpp"
#include "picoga/pga_op.hpp"
#include "picoga/rlc_cell.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

// --- RLC cell -------------------------------------------------------------

TEST(RlcCell, XorModeParity) {
  const RlcCell c = RlcCell::make_xor(10);
  std::vector<bool> in(10, false);
  EXPECT_FALSE(c.eval_xor(in));
  in[3] = in[7] = in[9] = true;
  EXPECT_TRUE(c.eval_xor(in));
  in[0] = true;
  EXPECT_FALSE(c.eval_xor(in));
}

TEST(RlcCell, XorFaninBounds) {
  EXPECT_THROW(RlcCell::make_xor(0), std::invalid_argument);
  EXPECT_THROW(RlcCell::make_xor(11), std::invalid_argument);
  const RlcCell c = RlcCell::make_xor(3);
  EXPECT_THROW(c.eval_xor({true, false}), std::invalid_argument);
}

TEST(RlcCell, LutMode) {
  // Table: output = input + 1 mod 16.
  std::uint64_t table = 0;
  for (std::uint64_t i = 0; i < 16; ++i) table |= ((i + 1) & 0xF) << (4 * i);
  const RlcCell c = RlcCell::make_lut(table);
  for (std::uint8_t i = 0; i < 16; ++i)
    EXPECT_EQ(c.eval_lut(i), (i + 1) & 0xF);
}

TEST(RlcCell, AluAddWithCarryChain) {
  const RlcCell add = RlcCell::make_alu(CellMode::kAluAdd);
  auto r = add.eval_alu(0xF, 0x1, false);
  EXPECT_EQ(r.value, 0x0);
  EXPECT_TRUE(r.carry_out);
  r = add.eval_alu(0x7, 0x7, true);
  EXPECT_EQ(r.value, 0xF);
  EXPECT_FALSE(r.carry_out);
}

TEST(RlcCell, AluLogicOps) {
  EXPECT_EQ(RlcCell::make_alu(CellMode::kAluAnd).eval_alu(0xC, 0xA, 0).value,
            0x8);
  EXPECT_EQ(RlcCell::make_alu(CellMode::kAluOr).eval_alu(0xC, 0xA, 0).value,
            0xE);
  EXPECT_EQ(RlcCell::make_alu(CellMode::kAluXor).eval_alu(0xC, 0xA, 0).value,
            0x6);
  EXPECT_THROW(RlcCell::make_alu(CellMode::kXor), std::invalid_argument);
}

TEST(RlcCell, GfMulFieldAxioms) {
  const RlcCell gf = RlcCell::make_gfmul();
  // 1 is the identity; x * x^3 = x^4 = x + 1 = 0b0011 in GF(16)/x^4+x+1.
  for (std::uint8_t a = 0; a < 16; ++a) EXPECT_EQ(gf.eval_gfmul(a, 1), a);
  EXPECT_EQ(gf.eval_gfmul(0b0010, 0b1000), 0b0011);
  // Commutativity.
  for (std::uint8_t a = 0; a < 16; ++a)
    for (std::uint8_t b = 0; b < 16; ++b)
      EXPECT_EQ(gf.eval_gfmul(a, b), gf.eval_gfmul(b, a));
}

TEST(RlcCell, ModeMismatchThrows) {
  EXPECT_THROW(RlcCell::make_xor(2).eval_lut(0), std::logic_error);
  EXPECT_THROW(RlcCell::make_lut(0).eval_xor({true}), std::logic_error);
}

// --- PgaOp ------------------------------------------------------------------

XorNetlist tiny_netlist() {
  // 2 state bits, 2 data bits; state' = {s1 ^ d0, s0}; out = s0 ^ d1.
  XorNetlist nl(4);
  const SignalId a = nl.add_node({1, 2});
  const SignalId b = nl.add_node({0, 3});
  nl.add_output(a);   // state'0
  nl.add_output(0);   // state'1 = old s0
  nl.add_output(b);   // port out
  return nl;
}

TEST(PgaOp, CompilesAndReportsGeometry) {
  const PgaOp op("tiny", tiny_netlist(), 2, PicogaConstraints{});
  EXPECT_EQ(op.rows_used(), 1u);
  EXPECT_EQ(op.latency(), 1u);
  EXPECT_EQ(op.ii(), 1u);
  EXPECT_EQ(op.port_in_bits(), 2u);
  EXPECT_EQ(op.port_out_bits(), 1u);
}

TEST(PgaOp, EvaluateThroughCells) {
  const PgaOp op("tiny", tiny_netlist(), 2, PicogaConstraints{});
  const Gf2Vec out =
      op.evaluate(Gf2Vec::from_string("10"), Gf2Vec::from_string("01"));
  // state = s0=1 s1=0; data d0=0 d1=1.
  // state'0 = s1^d0 = 0; state'1 = s0 = 1; out = s0^d1 = 0.
  EXPECT_EQ(out.to_string(), "010");
}

TEST(PgaOp, RejectsOversizedOp) {
  PicogaConstraints tiny_geom;
  tiny_geom.rows = 1;
  tiny_geom.cells_per_row = 2;
  XorNetlist nl(8);
  for (SignalId i = 0; i < 8; i += 2) nl.add_node({i, i + 1});
  for (std::size_t i = 0; i < 4; ++i)
    nl.add_output(static_cast<SignalId>(8 + i));
  EXPECT_THROW(PgaOp("fat", nl, 0, tiny_geom), std::runtime_error);
}

TEST(PgaOp, RejectsIoOverflow) {
  PicogaConstraints geom;
  geom.max_in_bits = 4;
  XorNetlist nl(8);
  nl.add_output(nl.add_node({0, 7}));
  EXPECT_THROW(PgaOp("wide", nl, 0, geom), std::runtime_error);
}

TEST(PgaOp, PlacementRespectsRowWidth) {
  PicogaConstraints geom;
  geom.cells_per_row = 4;
  XorNetlist nl(20);
  for (SignalId i = 0; i < 20; i += 2) nl.add_node({i, i + 1});  // 10 gates
  for (std::size_t i = 0; i < 10; ++i)
    nl.add_output(static_cast<SignalId>(20 + i));
  const PgaOp op("spill", nl, 0, geom);
  EXPECT_EQ(op.rows_used(), 3u);  // ceil(10/4)
  for (const CellSite& site : op.placement()) {
    EXPECT_LT(site.row, 3u);
    EXPECT_LT(site.col, 4u);
  }
}

// --- PicogaArray ------------------------------------------------------------

PgaOp make_tiny_op() {
  return PgaOp("tiny", tiny_netlist(), 2, PicogaConstraints{});
}

TEST(PicogaArray, LoadCostsAndSwitchCosts) {
  PicogaArray arr;
  arr.load(0, make_tiny_op());
  const std::uint64_t after_load = arr.cycles();
  EXPECT_GT(after_load, 0u);  // configuration is not free
  arr.load(1, make_tiny_op());
  arr.reset_cycles();

  arr.activate(0);  // already active: free
  EXPECT_EQ(arr.cycles(), 0u);
  arr.activate(1);
  EXPECT_EQ(arr.cycles(), PicogaArray::kContextSwitchCycles);
  arr.activate(1);  // no-op
  EXPECT_EQ(arr.cycles(), PicogaArray::kContextSwitchCycles);
}

TEST(PicogaArray, StreamCycleAccounting) {
  PicogaArray arr;
  arr.load(0, make_tiny_op());
  arr.activate(0);
  arr.reset_cycles();
  arr.set_state(Gf2Vec(2));
  for (int i = 0; i < 10; ++i) arr.issue(Gf2Vec(2));
  // latency(1) + 9 * II(1).
  EXPECT_EQ(arr.cycles(), 10u);
  arr.drain();
  arr.issue(Gf2Vec(2));  // refill
  EXPECT_EQ(arr.cycles(), 11u);
}

TEST(PicogaArray, StatePersistsAcrossIssues) {
  PicogaArray arr;
  arr.load(0, make_tiny_op());
  arr.activate(0);
  arr.set_state(Gf2Vec::from_string("10"));
  arr.issue(Gf2Vec::from_string("00"));
  // state' = {s1^d0, s0} = {0, 1}.
  EXPECT_EQ(arr.state().to_string(), "01");
  arr.issue(Gf2Vec::from_string("10"));
  // state'' = {1^1, 0} = {0, 0}.
  EXPECT_EQ(arr.state().to_string(), "00");
}

TEST(PicogaArray, BankedIssueKeepsStatesApart) {
  PicogaArray arr;
  arr.load(0, make_tiny_op());
  arr.activate(0);
  arr.init_banks(2, Gf2Vec::from_string("10"));
  arr.issue_banked(0, Gf2Vec::from_string("00"));
  EXPECT_EQ(arr.bank_state(0).to_string(), "01");
  EXPECT_EQ(arr.bank_state(1).to_string(), "10");  // untouched
  EXPECT_THROW(arr.issue_banked(5, Gf2Vec(2)), std::invalid_argument);
}

TEST(PicogaArray, SaveRestoreChargesRegisterMoves) {
  PicogaArray arr;
  arr.load(0, make_tiny_op());
  arr.activate(0);
  arr.reset_cycles();
  const Gf2Vec saved = arr.save_state();
  arr.restore_state(saved);
  EXPECT_EQ(arr.cycles(), 2u);  // 2 bits -> one word each way
}

TEST(PicogaArray, ErrorsOnMisuse) {
  PicogaArray arr;
  EXPECT_THROW(arr.activate(9), std::invalid_argument);
  EXPECT_THROW(arr.activate(1), std::logic_error);  // nothing loaded
  EXPECT_THROW(arr.issue(Gf2Vec(2)), std::logic_error);
  arr.load(0, make_tiny_op());
  EXPECT_THROW(arr.set_state(Gf2Vec(5)), std::invalid_argument);
}

}  // namespace
}  // namespace plfsr
