#include "mapper/op_builder.hpp"

#include <gtest/gtest.h>

#include "crc/crc_spec.hpp"
#include "crc/serial_crc.hpp"
#include "lfsr/catalog.hpp"
#include "scrambler/scrambler.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

TEST(OpBuilder, DerbyOp1HasUnitLoopDepth) {
  // The core claim of the paper's mapping: with the state-space transform
  // the state-dependent logic is one cell deep, whatever M is.
  for (std::size_t m : {8u, 32u, 64u, 128u}) {
    const CrcOpPlan plan =
        build_derby_crc_ops(catalog::crc32_ethernet(), m);
    EXPECT_EQ(plan.op1.loop_depth, 1u) << "M=" << m;
  }
}

TEST(OpBuilder, DirectOpLoopDeepensWithM) {
  // Ablation: keeping A^M in the loop costs depth that grows with the
  // fan-in — this is what caps the direct method's throughput.
  const MappedOp m8 = build_direct_crc_op(catalog::crc32_ethernet(), 8);
  const MappedOp m128 = build_direct_crc_op(catalog::crc32_ethernet(), 128);
  EXPECT_GE(m8.loop_depth, 1u);
  EXPECT_GT(m128.loop_depth, 1u);
  EXPECT_GE(m128.loop_depth, m8.loop_depth);
}

TEST(OpBuilder, CrcPlanComputesTheCrc) {
  // Run the actual netlists chunk by chunk and compare against the
  // register-level serial CRC — the op partition is functionally exact.
  Rng rng(1);
  const CrcSpec spec = crcspec::crc32_ethernet();
  for (std::size_t m : {8u, 32u, 64u}) {
    const CrcOpPlan plan = build_derby_crc_ops(spec.generator(), m);
    for (int trial = 0; trial < 3; ++trial) {
      const BitStream bits = rng.next_bits(m * (3 + trial));
      EXPECT_EQ(plan.run(bits, spec.init),
                serial_crc_bits(bits, spec.width, spec.poly, spec.init))
          << "M=" << m;
    }
  }
}

TEST(OpBuilder, CrcPlanRejectsRaggedLength) {
  const CrcOpPlan plan = build_derby_crc_ops(catalog::crc8_atm(), 8);
  EXPECT_THROW(plan.run(BitStream(12), 0), std::invalid_argument);
}

TEST(OpBuilder, CrcPlanIoWidths) {
  const CrcOpPlan plan = build_derby_crc_ops(catalog::crc32_ethernet(), 128);
  EXPECT_EQ(plan.op1.in_bits, 128u);
  EXPECT_EQ(plan.op1.out_bits, 0u);
  EXPECT_EQ(plan.op2.in_bits, 0u);
  EXPECT_EQ(plan.op2.out_bits, 32u);
  EXPECT_EQ(plan.op1.netlist.n_inputs(), 32u + 128u);
  EXPECT_EQ(plan.op2.netlist.outputs().size(), 32u);
}

TEST(OpBuilder, SharingReducesOp1Cells) {
  MapperOptions with, without;
  without.share_patterns = false;
  const CrcOpPlan a =
      build_derby_crc_ops(catalog::crc32_ethernet(), 64, with);
  const CrcOpPlan b =
      build_derby_crc_ops(catalog::crc32_ethernet(), 64, without);
  EXPECT_LT(a.op1.stats.cells, b.op1.stats.cells);
  // Both remain functionally identical.
  Rng rng(2);
  const BitStream bits = rng.next_bits(64 * 4);
  EXPECT_EQ(a.run(bits, 0xFFFFFFFF), b.run(bits, 0xFFFFFFFF));
}

TEST(OpBuilder, ScramblerOpMatchesSerialScrambler) {
  Rng rng(3);
  const Gf2Poly g = catalog::scrambler_80211();
  for (std::size_t m : {8u, 32u, 121u}) {
    const ScramblerOpPlan plan = build_scrambler_op(g, m);
    EXPECT_EQ(plan.op.loop_depth, 1u) << "M=" << m;
    const BitStream data = rng.next_bits(m * 5);
    AdditiveScrambler ref(g, 0x7F);
    EXPECT_EQ(plan.run(data, 0x7F), ref.process(data)) << "M=" << m;
  }
}

TEST(OpBuilder, ScramblerOpOutputsOnlyY) {
  const ScramblerOpPlan plan =
      build_scrambler_op(catalog::scrambler_80211(), 32);
  EXPECT_EQ(plan.op.in_bits, 32u);
  EXPECT_EQ(plan.op.out_bits, 32u);
  // Netlist carries state outputs too (fed back internally).
  EXPECT_EQ(plan.op.netlist.outputs().size(), 7u + 32u);
}

TEST(OpBuilder, DvbScramblerPlanWorksToo) {
  Rng rng(4);
  const Gf2Poly g = catalog::scrambler_dvb();
  const ScramblerOpPlan plan = build_scrambler_op(g, 16);
  const BitStream data = rng.next_bits(16 * 8);
  AdditiveScrambler ref(g, 0x1ABC);
  EXPECT_EQ(plan.run(data, 0x1ABC), ref.process(data));
}

}  // namespace
}  // namespace plfsr
