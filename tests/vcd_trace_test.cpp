#include "picoga/vcd_trace.hpp"

#include <gtest/gtest.h>

namespace plfsr {
namespace {

TEST(VcdTrace, HeaderStructure) {
  VcdTrace t(5);
  const std::string v = t.render("dut");
  EXPECT_NE(v.find("$timescale 5ns $end"), std::string::npos);
  EXPECT_NE(v.find("$scope module dut $end"), std::string::npos);
  EXPECT_NE(v.find("$enddefinitions $end"), std::string::npos);
}

TEST(VcdTrace, EventsSortedByCycle) {
  VcdTrace t;
  t.record_issue(10, 3);
  t.record_context(2, 1);
  t.record_stall(5, true);
  const std::string v = t.render();
  const auto p2 = v.find("#2");
  const auto p5 = v.find("#5");
  const auto p10 = v.find("#10");
  ASSERT_NE(p2, std::string::npos);
  ASSERT_NE(p5, std::string::npos);
  ASSERT_NE(p10, std::string::npos);
  EXPECT_LT(p2, p5);
  EXPECT_LT(p5, p10);
  EXPECT_EQ(t.event_count(), 3u);
}

TEST(VcdTrace, ValueEncodings) {
  VcdTrace t;
  t.record_context(0, 5);   // 3-bit binary 101
  t.record_issue(0, 200);   // 8-bit binary 11001000
  t.record_stall(1, true);
  t.record_stall(2, false);
  const std::string v = t.render();
  EXPECT_NE(v.find("b101 c"), std::string::npos);
  EXPECT_NE(v.find("b11001000 r"), std::string::npos);
  EXPECT_NE(v.find("1s"), std::string::npos);
  EXPECT_NE(v.find("0s"), std::string::npos);
}

TEST(VcdTrace, TimestampEmittedOncePerCycle) {
  VcdTrace t;
  t.record_context(7, 0);
  t.record_issue(7, 1);
  const std::string v = t.render();
  std::size_t count = 0;
  for (std::size_t pos = v.find("#7"); pos != std::string::npos;
       pos = v.find("#7", pos + 2))
    ++count;
  EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace plfsr
