#include "crc/ethernet.hpp"

#include <gtest/gtest.h>

#include "crc/crc_spec.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

TEST(Ethernet, FcsOfCheckString) {
  const std::uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(ethernet::fcs(msg), 0xCBF43926u);
}

TEST(Ethernet, AppendThenVerify) {
  Rng rng(1);
  for (std::size_t len : {46u, 100u, 1500u}) {
    const auto frame = rng.next_bytes(len);
    const auto with_fcs = ethernet::append_fcs(frame);
    EXPECT_EQ(with_fcs.size(), len + 4);
    EXPECT_TRUE(ethernet::verify(with_fcs));
  }
}

TEST(Ethernet, ResidueConstant) {
  // CRC over (frame || FCS) is the fixed magic residue for any frame.
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    const auto frame = rng.next_bytes(64 + static_cast<std::size_t>(i) * 13);
    EXPECT_EQ(ethernet::fcs(ethernet::append_fcs(frame)), ethernet::kResidue);
  }
}

TEST(Ethernet, CorruptionIsDetected) {
  Rng rng(3);
  auto good = ethernet::append_fcs(rng.next_bytes(100));
  for (std::size_t byte : {0u, 50u, 100u, 103u}) {
    auto bad = good;
    bad[byte] ^= 0x01;
    EXPECT_FALSE(ethernet::verify(bad)) << "byte " << byte;
  }
  // Burst of up to 32 bits is always detected by CRC-32.
  auto burst = good;
  burst[10] ^= 0xFF;
  burst[11] ^= 0xFF;
  burst[12] ^= 0xFF;
  burst[13] ^= 0xFF;
  EXPECT_FALSE(ethernet::verify(burst));
}

TEST(Ethernet, TooShortNeverVerifies) {
  const std::uint8_t tiny[] = {0x01, 0x02, 0x03};
  EXPECT_FALSE(ethernet::verify(tiny));
}

TEST(Ethernet, TestFrameIsWellFormed) {
  const auto frame = ethernet::make_test_frame(46, 99);
  // 14 header bytes + 46 payload + 4 FCS.
  EXPECT_EQ(frame.size(), 64u);
  EXPECT_TRUE(ethernet::verify(frame));
  EXPECT_EQ(frame[0] & 0x01, 0);  // unicast DA
}

TEST(Ethernet, FrameWindowConstantsMatchThePaper) {
  EXPECT_EQ(ethernet::kMinFrameBits, 368u);
  EXPECT_EQ(ethernet::kMaxFrameBits, 12144u);
}

TEST(Ethernet, DeterministicBySeed) {
  EXPECT_EQ(ethernet::make_test_frame(100, 7), ethernet::make_test_frame(100, 7));
  EXPECT_NE(ethernet::make_test_frame(100, 7), ethernet::make_test_frame(100, 8));
}

TEST(Ethernet, PayloadClamping) {
  EXPECT_EQ(ethernet::make_test_frame(1, 1).size(), 14u + 46 + 4);
  EXPECT_EQ(ethernet::make_test_frame(9999, 1).size(), 14u + 1500 + 4);
}

}  // namespace
}  // namespace plfsr
