// FEC pipeline stages: encode -> corrupt -> decode must recover every
// frame bit-exactly when the injected impairment stays within the code's
// radius (2e + r <= n-k), at every batch size × queue depth — the
// frame-local determinism contract extended to a stage with a random
// channel. Beyond the radius the decode stage must count detected
// failures, never silently pass corrupt payload as recovered.
#include "pipeline/fec_stages.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "fec/fec_registry.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/stages.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

constexpr std::uint64_t kChannelSeed = 0xC0DE;

std::vector<Frame> make_frames(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Frame> frames(n);
  for (std::size_t i = 0; i < n; ++i) {
    frames[i].id = i;
    // Empty, 1-byte, sub-block and multi-block sizes all in the mix.
    std::size_t len;
    if (i == 0)
      len = 0;
    else if (i == 1)
      len = 1;
    else
      len = rng.next_below(1200);
    frames[i].bytes = rng.next_bytes(len);
  }
  return frames;
}

std::vector<std::unique_ptr<Stage>> fec_chain(std::size_t errors,
                                              std::size_t erasures) {
  const FecCodecHandle codec =
      FecRegistry::instance().best_for(fec::rs_204_188());
  std::vector<std::unique_ptr<Stage>> st;
  st.push_back(std::make_unique<RsEncodeStage>(codec));
  st.push_back(std::make_unique<FecCorruptStage>(codec, kChannelSeed, errors,
                                                 erasures));
  st.push_back(std::make_unique<RsDecodeStage>(codec));
  st.push_back(std::make_unique<CollectSink>());
  return st;
}

std::vector<Frame> clone_frames(const std::vector<Frame>& in) {
  std::vector<Frame> out;
  out.reserve(in.size());
  for (const Frame& f : in) out.push_back(f.clone());
  return out;
}

std::vector<Frame> serial_reference(std::vector<Frame> frames,
                                    std::size_t errors,
                                    std::size_t erasures) {
  auto st = fec_chain(errors, erasures);
  FrameBatch batch(std::make_move_iterator(frames.begin()),
                   std::make_move_iterator(frames.end()));
  for (std::size_t i = 0; i + 1 < st.size(); ++i) st[i]->process(batch);
  return batch;
}

void run_grid_case(std::size_t batch_size, std::size_t queue_depth,
                   std::size_t errors, std::size_t erasures) {
  const std::vector<Frame> input = make_frames(48, 99);
  const std::vector<Frame> expect =
      serial_reference(clone_frames(input), errors, erasures);

  auto stages = fec_chain(errors, erasures);
  auto* decode = static_cast<RsDecodeStage*>(stages[2].get());
  auto* sink = static_cast<CollectSink*>(stages.back().get());
  Pipeline pipe(std::move(stages), {.queue_depth = queue_depth});
  pipe.start();
  for (std::size_t i = 0; i < input.size(); i += batch_size) {
    FrameBatch batch;
    for (std::size_t j = i; j < std::min(i + batch_size, input.size()); ++j)
      batch.push_back(input[j].clone());
    ASSERT_TRUE(pipe.push(std::move(batch)));
  }
  pipe.close();
  pipe.wait();

  // Within the radius: every frame recovered, bit-exact with both the
  // original payload and the serial composition.
  EXPECT_TRUE(decode->ok());
  EXPECT_EQ(decode->failed_blocks(), 0u);
  const std::vector<Frame>& got = sink->frames();
  ASSERT_EQ(got.size(), input.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].bytes, input[i].bytes)
        << "frame " << i << " batch=" << batch_size
        << " depth=" << queue_depth;
    EXPECT_EQ(got[i].bytes, expect[i].bytes) << "frame " << i;
    EXPECT_TRUE(got[i].erasures.empty()) << "frame " << i;
  }
}

class FecPipelineGrid
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FecPipelineGrid, RecoversBitExactlyAtFullMixedRadius) {
  // RS(204,188): n-k = 16, so 6 errors + 4 erasures saturates 2e+r.
  run_grid_case(static_cast<std::size_t>(std::get<0>(GetParam())),
                static_cast<std::size_t>(std::get<1>(GetParam())),
                /*errors=*/6, /*erasures=*/4);
}

INSTANTIATE_TEST_SUITE_P(BatchAndDepth, FecPipelineGrid,
                         ::testing::Combine(::testing::Values(1, 3, 16),
                                            ::testing::Values(1, 2, 8)));

TEST(FecPipeline, ErrorOnlyAndErasureOnlyChannels) {
  run_grid_case(4, 2, /*errors=*/8, /*erasures=*/0);   // t errors exactly
  run_grid_case(4, 2, /*errors=*/0, /*erasures=*/16);  // n-k erasures
  run_grid_case(4, 2, /*errors=*/0, /*erasures=*/0);   // clean channel
}

TEST(FecPipeline, CorruptionPatternIsBatchSizeInvariant) {
  // The injector must be frame-local: the same frames pushed in batches
  // of 1 and of 16 see identical impairment (seed ^ frame.id), so the
  // corrupted bodies match byte for byte.
  const FecCodecHandle codec =
      FecRegistry::instance().best_for(fec::rs_204_188());
  std::vector<Frame> a = make_frames(32, 7);
  std::vector<Frame> b = clone_frames(a);
  {
    RsEncodeStage enc(codec);
    FecCorruptStage cor(codec, kChannelSeed, 3, 2);
    FrameBatch all(std::make_move_iterator(a.begin()),
                   std::make_move_iterator(a.end()));
    enc.process(all);
    cor.process(all);
    a.assign(std::make_move_iterator(all.begin()),
             std::make_move_iterator(all.end()));
  }
  {
    RsEncodeStage enc(codec);
    FecCorruptStage cor(codec, kChannelSeed, 3, 2);
    for (Frame& f : b) {
      FrameBatch one;
      one.push_back(std::move(f));
      enc.process(one);
      cor.process(one);
      f = std::move(one.front());
    }
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bytes, b[i].bytes) << "frame " << i;
    EXPECT_EQ(a[i].erasures, b[i].erasures) << "frame " << i;
  }
}

TEST(FecPipeline, BeyondRadiusFailuresAreDetectedAndCounted) {
  // 9 errors per block on a t=8 code: every block must fail, and the
  // decode stage must report it (payload passes through uncorrected).
  const FecCodecHandle codec =
      FecRegistry::instance().best_for(fec::rs_255_239());
  std::vector<Frame> input = make_frames(12, 5);
  RsEncodeStage enc(codec);
  FecCorruptStage cor(codec, kChannelSeed, /*errors=*/9, /*erasures=*/0);
  RsDecodeStage dec(codec);
  FrameBatch batch(std::make_move_iterator(input.begin()),
                   std::make_move_iterator(input.end()));
  enc.process(batch);
  cor.process(batch);
  dec.process(batch);
  EXPECT_FALSE(dec.ok());
  EXPECT_GT(dec.failed_blocks(), 0u);
  EXPECT_EQ(dec.frames(), batch.size());
  // Sizes still invert to the original payload length.
  Rng rng(5);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::size_t len;
    if (i == 0)
      len = 0;
    else if (i == 1)
      len = 1;
    else
      len = rng.next_below(1200);
    rng.next_bytes(len);  // keep the generator in lockstep with make_frames
    EXPECT_EQ(batch[i].bytes.size(), len) << "frame " << i;
  }
}

TEST(FecPipeline, CorruptStageRejectsOverfullImpairment) {
  const FecCodecHandle codec =
      FecRegistry::instance().best_for(fec::rs_204_188());
  EXPECT_THROW(FecCorruptStage(codec, 1, 10, 7), std::invalid_argument);
}

}  // namespace
}  // namespace plfsr
