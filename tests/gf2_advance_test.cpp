// Gf2Advance must agree with dense Gf2Matrix exponentiation for every
// packed map it claims to accelerate: random matrices, companion forms,
// the full [1, 64] dimension range, and huge step counts.
#include "gf2/gf2_advance.hpp"

#include <gtest/gtest.h>

#include "gf2/gf2_poly.hpp"
#include "lfsr/companion.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

Gf2Matrix random_matrix(std::size_t n, Rng& rng) {
  Gf2Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) m.set(r, c, rng.next_bit());
  return m;
}

std::uint64_t dense_apply(const Gf2Matrix& m, std::uint64_t v) {
  return (m * Gf2Vec::from_word(m.rows(), v)).to_word();
}

TEST(Gf2Advance, ApplyMatchesDenseProduct) {
  Rng rng(1);
  for (std::size_t n : {1u, 2u, 7u, 31u, 63u, 64u}) {
    const Gf2Matrix m = random_matrix(n, rng);
    const Gf2Advance adv(m);
    EXPECT_EQ(adv.dim(), n);
    for (int trial = 0; trial < 20; ++trial) {
      const std::uint64_t v = rng.next_u64() & adv.mask();
      EXPECT_EQ(adv.apply(v), dense_apply(m, v)) << "n=" << n;
    }
  }
}

TEST(Gf2Advance, AdvanceMatchesDensePower) {
  Rng rng(2);
  const Gf2Matrix m = random_matrix(17, rng);
  const Gf2Advance adv(m);
  for (const std::uint64_t steps : {0ull, 1ull, 2ull, 63ull, 64ull, 1000ull,
                                    (1ull << 40) + 12345ull}) {
    const std::uint64_t v = rng.next_u64() & adv.mask();
    EXPECT_EQ(adv.advance(v, steps), dense_apply(m.pow(steps), v))
        << "steps=" << steps;
  }
}

TEST(Gf2Advance, AdvanceComposes) {
  // A^{a+b} v == A^a (A^b v): the additive law the seek machinery relies
  // on, checked on a companion matrix (the case both CrcCombine and
  // BlockScrambler actually instantiate).
  const Gf2Poly g = Gf2Poly::from_exponents({15, 14, 0});
  const Gf2Advance adv(companion_fibonacci(g));
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t v = rng.next_u64() & adv.mask();
    const std::uint64_t a = rng.next_below(1 << 20);
    const std::uint64_t b = rng.next_below(1 << 20);
    EXPECT_EQ(adv.advance(v, a + b), adv.advance(adv.advance(v, b), a));
  }
}

TEST(Gf2Advance, MasksStateToDimension) {
  const Gf2Poly g = Gf2Poly::from_exponents({7, 4, 0});
  const Gf2Advance adv(companion_fibonacci(g));
  ASSERT_EQ(adv.dim(), 7u);
  EXPECT_EQ(adv.mask(), 0x7Fu);
  // Junk bits above the dimension must not leak into the result.
  EXPECT_EQ(adv.advance(0xFFFFFFFFFFFFFF80ull | 0x15ull, 123),
            adv.advance(0x15ull, 123));
}

TEST(Gf2Advance, RejectsBadShapes) {
  EXPECT_THROW(Gf2Advance(Gf2Matrix(3, 4)), std::invalid_argument);
  EXPECT_THROW(Gf2Advance(Gf2Matrix(65, 65)), std::invalid_argument);
  EXPECT_THROW(Gf2Advance(Gf2Matrix(0, 0)), std::invalid_argument);
}

}  // namespace
}  // namespace plfsr
