#include "support/rng.hpp"

#include <gtest/gtest.h>

namespace plfsr {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedSensitive) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, BitsRoughlyBalanced) {
  Rng rng(4);
  const BitStream bits = rng.next_bits(10000);
  std::size_t ones = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) ones += bits.get(i);
  EXPECT_GT(ones, 4700u);
  EXPECT_LT(ones, 5300u);
}

TEST(Rng, BytesHaveRequestedSize) {
  Rng rng(5);
  EXPECT_EQ(rng.next_bytes(0).size(), 0u);
  EXPECT_EQ(rng.next_bytes(77).size(), 77u);
}

TEST(Rng, NextBitsExactLength) {
  Rng rng(6);
  EXPECT_EQ(rng.next_bits(65).size(), 65u);
  EXPECT_EQ(rng.next_bits(0).size(), 0u);
}

}  // namespace
}  // namespace plfsr
