#include "crc/wide_table_crc.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "crc/serial_crc.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

/// (spec index, stride) sweep: the generalized Albertengo-Sisto table
/// engine must match the serial reference at every stride, including
/// strides wider than the register (CRC-5 with 8/16-bit lookups).
class WideTable : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WideTable, MatchesSerialReference) {
  const auto all = crcspec::all();
  const CrcSpec s =
      all[static_cast<std::size_t>(std::get<0>(GetParam())) % all.size()];
  const unsigned stride = static_cast<unsigned>(std::get<1>(GetParam()));
  const WideTableCrc engine(s, stride);
  EXPECT_EQ(engine.table_entries(), std::size_t{1} << stride);

  Rng rng(std::get<0>(GetParam()) * 31 + stride);
  for (std::size_t nbits : {0u, 1u, 7u, 16u, 65u, 368u}) {
    const BitStream bits = rng.next_bits(nbits);
    EXPECT_EQ(engine.raw_bits(bits, s.init),
              serial_crc_bits(bits, s.width, s.poly, s.init))
        << s.name << " stride=" << stride << " nbits=" << nbits;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SpecsAndStride, WideTable,
    ::testing::Combine(::testing::Values(0, 1, 4, 6, 9, 10, 13, 14),
                       ::testing::Values(1, 2, 3, 4, 8, 12, 16)));

TEST(WideTableCrc, CheckValues) {
  const std::uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  for (unsigned stride : {4u, 8u, 16u}) {
    EXPECT_EQ(WideTableCrc(crcspec::crc32_ethernet(), stride).compute(msg),
              0xCBF43926u)
        << stride;
    EXPECT_EQ(WideTableCrc(crcspec::crc16_xmodem(), stride).compute(msg),
              0x31C3u)
        << stride;
  }
}

TEST(WideTableCrc, Stride8EqualsSarwateTable) {
  // With stride 8 this IS the classic byte table, modulo register
  // orientation; the computed CRCs must coincide on random data.
  Rng rng(1);
  const auto msg = rng.next_bytes(333);
  const WideTableCrc wide(crcspec::crc32_bzip2(), 8);
  EXPECT_EQ(wide.compute(msg), serial_crc(crcspec::crc32_bzip2(), msg));
}

TEST(WideTableCrc, StrideBounds) {
  EXPECT_THROW(WideTableCrc(crcspec::crc8_smbus(), 0), std::invalid_argument);
  EXPECT_THROW(WideTableCrc(crcspec::crc8_smbus(), 17), std::invalid_argument);
}

}  // namespace
}  // namespace plfsr
