#include "gf2/gf2_poly.hpp"

#include <gtest/gtest.h>

#include "lfsr/catalog.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

Gf2Poly random_poly(int max_degree, Rng& rng) {
  Gf2Poly p;
  for (int i = 0; i <= max_degree; ++i)
    if (rng.next_bit()) p.set_coeff(static_cast<unsigned>(i), true);
  return p;
}

TEST(Gf2Poly, ZeroAndDegree) {
  EXPECT_TRUE(Gf2Poly().is_zero());
  EXPECT_EQ(Gf2Poly().degree(), -1);
  EXPECT_EQ(Gf2Poly::one().degree(), 0);
  EXPECT_EQ(Gf2Poly::x_pow(200).degree(), 200);
}

TEST(Gf2Poly, WithTopBitMatchesCrcNotation) {
  const Gf2Poly g = Gf2Poly::with_top_bit(32, 0x04C11DB7);
  EXPECT_EQ(g.degree(), 32);
  // x^32+x^26+x^23+x^22+x^16+x^12+x^11+x^10+x^8+x^7+x^5+x^4+x^2+x+1
  EXPECT_EQ(g.exponents(),
            (std::vector<unsigned>{32, 26, 23, 22, 16, 12, 11, 10, 8, 7, 5,
                                   4, 2, 1, 0}));
}

TEST(Gf2Poly, FromExponentsAndToString) {
  const Gf2Poly p = Gf2Poly::from_exponents({7, 4, 0});
  EXPECT_EQ(p.to_string(), "x^7 + x^4 + 1");
  EXPECT_EQ(p.weight(), 3u);
}

TEST(Gf2Poly, AdditionSelfInverse) {
  Rng rng(1);
  const Gf2Poly p = random_poly(90, rng);
  EXPECT_TRUE((p + p).is_zero());
}

TEST(Gf2Poly, MultiplicationCommutesAndAssociates) {
  Rng rng(2);
  const Gf2Poly a = random_poly(40, rng);
  const Gf2Poly b = random_poly(33, rng);
  const Gf2Poly c = random_poly(21, rng);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a * b) * c, a * (b * c));
}

TEST(Gf2Poly, MultiplicationDegreeAdds) {
  const Gf2Poly a = Gf2Poly::x_pow(70) + Gf2Poly::one();
  const Gf2Poly b = Gf2Poly::x_pow(65) + Gf2Poly::x_pow(1);
  EXPECT_EQ((a * b).degree(), 135);
}

TEST(Gf2Poly, DivModReconstructs) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const Gf2Poly a = random_poly(100, rng);
    Gf2Poly d = random_poly(30, rng);
    if (d.is_zero()) d = Gf2Poly::one();
    const auto dm = a.divmod(d);
    EXPECT_EQ(dm.quotient * d + dm.remainder, a);
    EXPECT_LT(dm.remainder.degree(), d.degree() == -1 ? 0 : d.degree());
  }
}

TEST(Gf2Poly, DivisionByZeroThrows) {
  EXPECT_THROW(Gf2Poly::one().divmod(Gf2Poly()), std::invalid_argument);
}

TEST(Gf2Poly, GcdDividesBoth) {
  Rng rng(4);
  const Gf2Poly g = random_poly(10, rng) + Gf2Poly::x_pow(11);
  const Gf2Poly a = g * (random_poly(7, rng) + Gf2Poly::x_pow(8));
  const Gf2Poly b = g * (random_poly(5, rng) + Gf2Poly::x_pow(6));
  const Gf2Poly d = Gf2Poly::gcd(a, b);
  EXPECT_TRUE((a % d).is_zero());
  EXPECT_TRUE((b % d).is_zero());
  EXPECT_TRUE((d % g).is_zero());  // g is a common divisor, so gcd >= g
}

TEST(Gf2Poly, XPowModMatchesNaive) {
  const Gf2Poly g = catalog::crc16_ccitt();
  for (std::uint64_t e : {0ull, 1ull, 15ull, 16ull, 17ull, 100ull, 1000ull}) {
    Gf2Poly naive = Gf2Poly::one();
    for (std::uint64_t i = 0; i < e; ++i)
      naive = (naive * Gf2Poly::x_pow(1)) % g;
    EXPECT_EQ(Gf2Poly::x_pow_mod(e, g), naive) << "e=" << e;
  }
}

TEST(Gf2Poly, PowModExponentLaw) {
  const Gf2Poly g = catalog::crc32_ethernet();
  const Gf2Poly a = Gf2Poly::x_pow_mod(12345, g);
  const Gf2Poly b = Gf2Poly::x_pow_mod(54321, g);
  EXPECT_EQ((a * b) % g, Gf2Poly::x_pow_mod(12345 + 54321, g));
}

TEST(Gf2Poly, IrreducibilityKnownCases) {
  EXPECT_TRUE(Gf2Poly::from_exponents({1, 0}).is_irreducible());   // x+1
  EXPECT_TRUE(Gf2Poly::from_exponents({2, 1, 0}).is_irreducible()); // x^2+x+1
  EXPECT_FALSE(Gf2Poly::from_exponents({2, 0}).is_irreducible());   // (x+1)^2
  EXPECT_TRUE(Gf2Poly::from_exponents({3, 1, 0}).is_irreducible());
  EXPECT_FALSE((Gf2Poly::from_exponents({3, 1, 0}) *
                Gf2Poly::from_exponents({2, 1, 0}))
                   .is_irreducible());
  // CRC-16/CCITT has even weight, so (x+1) divides it: reducible.
  EXPECT_FALSE(catalog::crc16_ccitt().is_irreducible());
}

TEST(Gf2Poly, Crc32GeneratorIsPrimitive) {
  EXPECT_TRUE(catalog::crc32_ethernet().is_irreducible());
  EXPECT_TRUE(catalog::crc32_ethernet().is_primitive());
}

TEST(Gf2Poly, ScramblerPolynomialsPrimitive) {
  // Maximal-length scrambler generators: period 2^k - 1.
  EXPECT_TRUE(catalog::scrambler_80211().is_primitive());
  EXPECT_TRUE(catalog::scrambler_sonet().is_primitive());
  EXPECT_TRUE(catalog::prbs9().is_primitive());
  EXPECT_TRUE(catalog::prbs23().is_primitive());
  EXPECT_TRUE(catalog::prbs31().is_primitive());
}

TEST(Gf2Poly, OrderOfXForPrimitive) {
  EXPECT_EQ(catalog::scrambler_80211().order_of_x(), 127u);
  EXPECT_EQ(catalog::prbs9().order_of_x(), 511u);
}

TEST(Gf2Poly, DistinctPrimeFactors) {
  EXPECT_EQ(distinct_prime_factors(1), std::vector<std::uint64_t>{});
  EXPECT_EQ(distinct_prime_factors(2), std::vector<std::uint64_t>{2});
  EXPECT_EQ(distinct_prime_factors(360),
            (std::vector<std::uint64_t>{2, 3, 5}));
  EXPECT_EQ(distinct_prime_factors((1ull << 31) - 1),
            std::vector<std::uint64_t>{2147483647ull});  // Mersenne prime
  EXPECT_EQ(distinct_prime_factors((1ull << 32) - 1),
            (std::vector<std::uint64_t>{3, 5, 17, 257, 65537}));
}

}  // namespace
}  // namespace plfsr
