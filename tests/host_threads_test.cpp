// host_threads(): the one sizing answer every pool/shard decision routes
// through. The contract under test: PLFSR_THREADS wins when usable, the
// cgroup quota caps the hardware report, a fractional quota rounds up,
// and the answer is never 0 — even when hardware_concurrency() reports 0
// and no quota is readable (the container-blind regression this fixes).
#include "support/host_threads.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace plfsr {
namespace {

using detail::parse_cfs;
using detail::parse_cpu_max;
using detail::resolve_host_threads;

/// Scoped PLFSR_THREADS override; restores the outer value on exit so the
/// suite composes with any harness-level setting.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* old = std::getenv("PLFSR_THREADS");
    had_ = old != nullptr;
    if (had_) saved_ = old;
    if (value)
      setenv("PLFSR_THREADS", value, 1);
    else
      unsetenv("PLFSR_THREADS");
  }
  ~ScopedThreadsEnv() {
    if (had_)
      setenv("PLFSR_THREADS", saved_.c_str(), 1);
    else
      unsetenv("PLFSR_THREADS");
  }

 private:
  bool had_ = false;
  std::string saved_;
};

TEST(HostThreads, ParseCpuMaxQuotaOverPeriod) {
  EXPECT_DOUBLE_EQ(parse_cpu_max("200000 100000"), 2.0);
  EXPECT_DOUBLE_EQ(parse_cpu_max("50000 100000"), 0.5);
  EXPECT_DOUBLE_EQ(parse_cpu_max("  150000 100000"), 1.5);
}

TEST(HostThreads, ParseCpuMaxUnlimitedOrGarbage) {
  EXPECT_LT(parse_cpu_max("max 100000"), 0.0);
  EXPECT_LT(parse_cpu_max(""), 0.0);
  EXPECT_LT(parse_cpu_max("banana"), 0.0);
  EXPECT_LT(parse_cpu_max("100000"), 0.0);    // missing period
  EXPECT_LT(parse_cpu_max("0 100000"), 0.0);  // zero quota is no signal
}

TEST(HostThreads, ParseCfsPair) {
  EXPECT_DOUBLE_EQ(parse_cfs(400000, 100000), 4.0);
  EXPECT_LT(parse_cfs(-1, 100000), 0.0);  // -1 quota = unlimited
  EXPECT_LT(parse_cfs(100000, 0), 0.0);
}

TEST(HostThreads, EnvOverrideWinsOutright) {
  EXPECT_EQ(resolve_host_threads("3", 64, 16.0), 3u);
  EXPECT_EQ(resolve_host_threads("128", 4, 1.0), 128u);  // beats every cap
}

TEST(HostThreads, UnusableEnvOverrideFallsThrough) {
  EXPECT_EQ(resolve_host_threads("0", 8, -1.0), 8u);
  EXPECT_EQ(resolve_host_threads("-2", 8, -1.0), 8u);
  EXPECT_EQ(resolve_host_threads("zzz", 8, -1.0), 8u);
  EXPECT_EQ(resolve_host_threads("", 8, -1.0), 8u);
}

TEST(HostThreads, QuotaCapsHardwareReport) {
  EXPECT_EQ(resolve_host_threads(nullptr, 64, 2.0), 2u);
  EXPECT_EQ(resolve_host_threads(nullptr, 4, 16.0), 4u);  // hw smaller: hw
}

TEST(HostThreads, FractionalQuotaRoundsUpNeverZero) {
  EXPECT_EQ(resolve_host_threads(nullptr, 64, 0.5), 1u);
  EXPECT_EQ(resolve_host_threads(nullptr, 64, 1.5), 2u);
}

TEST(HostThreads, ZeroHardwareReportFallsBackToOne) {
  // The standard allows hardware_concurrency() == 0; with no quota either
  // the answer must still be a runnable 1, never 0.
  EXPECT_EQ(resolve_host_threads(nullptr, 0, -1.0), 1u);
  // A quota alone is enough to size by.
  EXPECT_EQ(resolve_host_threads(nullptr, 0, 3.0), 3u);
}

TEST(HostThreads, PublicApiHonoursOverrideAndFloor) {
  {
    ScopedThreadsEnv env("5");
    EXPECT_EQ(host_threads(), 5u);
  }
  {
    ScopedThreadsEnv env("0");  // unusable override: heuristics, floor 1
    EXPECT_GE(host_threads(), 1u);
  }
  {
    ScopedThreadsEnv env(nullptr);
    EXPECT_GE(host_threads(), 1u);
  }
}

}  // namespace
}  // namespace plfsr
