#include "asicmodel/ucrc_model.hpp"

#include <gtest/gtest.h>

#include "dream/dream_model.hpp"
#include "lfsr/catalog.hpp"

namespace plfsr {
namespace {

TEST(UcrcModel, SerialClockIsRealistic65nm) {
  const double f = ucrc_serial_fmax_ghz(catalog::crc32_ethernet());
  EXPECT_GT(f, 0.8);
  EXPECT_LT(f, 2.0);
}

TEST(UcrcModel, ClockFallsAsLookAheadGrows) {
  const auto pts = ucrc_synthesis_curve(catalog::crc32_ethernet(),
                                        {2, 8, 32, 128, 512});
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i].f_max_ghz, pts[i - 1].f_max_ghz);
    EXPECT_GE(pts[i].max_loop_fanin, pts[i - 1].max_loop_fanin);
  }
}

TEST(UcrcModel, LoopFaninComesFromTheRealMatrices) {
  // For CRC-32 at M = 32 the [A^M | B_M] rows are roughly half dense over
  // 64 columns; the model must see that, not a made-up constant.
  const auto pts = ucrc_synthesis_curve(catalog::crc32_ethernet(), {32});
  EXPECT_GT(pts[0].max_loop_fanin, 20u);
  EXPECT_LT(pts[0].max_loop_fanin, 64u);
}

TEST(UcrcModel, ThroughputSaturates) {
  // The congestion term caps the ASIC's usable bandwidth: doubling M from
  // 256 to 512 must gain much less than 2x.
  const auto pts = ucrc_synthesis_curve(catalog::crc32_ethernet(),
                                        {256, 512});
  EXPECT_LT(pts[1].throughput_gbps, 1.3 * pts[0].throughput_gbps);
}

TEST(UcrcModel, TheoryCurvesOrdering) {
  // Derby theory = 2x Pei theory at every M, both anchored to the serial
  // clock (§5's construction).
  for (std::size_t m : {4u, 32u, 256u}) {
    const double derby = derby_theory_gbps(catalog::crc32_ethernet(), m);
    const double pei = pei_theory_gbps(catalog::crc32_ethernet(), m);
    EXPECT_NEAR(derby, 2 * pei, 1e-9) << "M=" << m;
  }
}

TEST(Fig6Shape, DreamOvertakesUcrcAtLargeM) {
  // The paper's Fig. 6 punchline: "for M = 128, DREAM achieves a peak
  // performance of ~25 Gbit/sec, that is greater [than] the performance
  // offered by UCRC"; at small M DREAM is limited by its fixed frequency.
  const auto ucrc =
      ucrc_synthesis_curve(catalog::crc32_ethernet(), {8, 128});
  const DreamCrcModel dream8(catalog::crc32_ethernet(), 8);
  const DreamCrcModel dream128(catalog::crc32_ethernet(), 128);
  EXPECT_LT(dream8.peak_gbps(), ucrc[0].throughput_gbps);    // small M: ASIC wins
  EXPECT_GT(dream128.peak_gbps(), ucrc[1].throughput_gbps);  // M=128: DREAM wins
}

TEST(Fig6Shape, TheoryBoundsRealSynthesis) {
  // The ideal Derby transform applied to a custom design upper-bounds the
  // real (congested) UCRC at every parallelization.
  for (std::size_t m : {16u, 64u, 256u}) {
    const auto pts = ucrc_synthesis_curve(catalog::crc32_ethernet(), {m});
    EXPECT_GT(derby_theory_gbps(catalog::crc32_ethernet(), m),
              pts[0].throughput_gbps)
        << "M=" << m;
  }
}

}  // namespace
}  // namespace plfsr
