// Batch CRC API equivalence: absorb_many / compute_many on every engine
// in the registry must be bit-exact with the sequential absorb loop on
// randomized batches — frame counts 0..64, lengths 0..4096 including the
// 0- and 1-byte frames that never reach a folding kernel, and mixed-size
// batches that split one interleave group between the lockstep prefix
// and the per-frame serial finish. The interleaved CLMUL kernel is also
// A/B-checked against the portable engine, and the batch entry points of
// CrcEngineHandle (default loop vs native override) and ParallelCrc
// (frame-count sharding) are pinned.
#include <gtest/gtest.h>

#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "crc/clmul_crc.hpp"
#include "crc/engine.hpp"
#include "crc/engine_registry.hpp"
#include "crc/crc_spec.hpp"
#include "crc/parallel_crc.hpp"
#include "crc/serial_crc.hpp"
#include "crc/table_crc.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

/// A batch of owned frames plus the view array the batch API takes.
struct Batch {
  std::vector<std::vector<std::uint8_t>> storage;
  std::vector<FrameView> views;

  void add(std::vector<std::uint8_t> bytes) {
    storage.push_back(std::move(bytes));
  }
  /// Build views after storage stops reallocating.
  std::span<const FrameView> finish() {
    views.clear();
    for (const auto& f : storage) views.emplace_back(f);
    return views;
  }
};

/// Deterministic batch with an adversarial length mix: zero/one-byte
/// frames, lengths straddling the 16-byte fold granule and the 64-byte
/// block, one long frame per batch to force the early-reduction handoff.
Batch make_batch(Rng& rng, std::size_t count) {
  static const std::size_t kLens[] = {0,  1,  2,  7,   8,   9,   15,  16,
                                      17, 31, 63, 64,  65,  100, 256, 511,
                                      512, 1518, 4096};
  Batch b;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t len =
        kLens[rng.next_u64() % (sizeof(kLens) / sizeof(kLens[0]))];
    b.add(rng.next_bytes(len));
  }
  return b;
}

/// Expected CRCs: independent serial reference per frame.
std::vector<std::uint64_t> serial_many(const CrcSpec& spec,
                                       std::span<const FrameView> frames) {
  std::vector<std::uint64_t> out;
  out.reserve(frames.size());
  for (const FrameView& f : frames) out.push_back(serial_crc(spec, f));
  return out;
}

TEST(BatchCrc, EveryRegistryEngineMatchesSequentialAbsorb) {
  EngineRegistry& reg = EngineRegistry::instance();
  Rng rng(0xBA7C);
  for (const CrcSpec& spec : crcspec::all()) {
    for (const std::string& name : reg.available_names()) {
      if (!reg.supports(name, spec)) continue;
      const CrcEngineHandle eng = reg.make(name, spec);
      for (const std::size_t count : {std::size_t{0}, std::size_t{1},
                                      std::size_t{2}, std::size_t{3},
                                      std::size_t{8}, std::size_t{17},
                                      std::size_t{64}}) {
        Batch b = make_batch(rng, count);
        const std::span<const FrameView> frames = b.finish();

        // absorb_many from randomized (valid) starting states must equal
        // the per-frame absorb loop from the same states.
        std::vector<std::uint64_t> states(count), expect(count);
        for (std::size_t i = 0; i < count; ++i) {
          states[i] = eng.state_from_raw(rng.next_u64() &
                                         ((spec.width >= 64)
                                              ? ~std::uint64_t{0}
                                              : (1ull << spec.width) - 1));
          expect[i] = eng.absorb(states[i], frames[i]);
        }
        eng.absorb_many(states, frames);
        for (std::size_t i = 0; i < count; ++i)
          ASSERT_EQ(states[i], expect[i])
              << name << " " << spec.name << " count=" << count
              << " frame=" << i << " len=" << frames[i].size();

        // compute_many must equal the serial reference end to end.
        std::vector<std::uint64_t> crcs(count);
        eng.compute_many(frames, crcs);
        const std::vector<std::uint64_t> want = serial_many(spec, frames);
        for (std::size_t i = 0; i < count; ++i)
          ASSERT_EQ(crcs[i], want[i])
              << name << " " << spec.name << " count=" << count
              << " frame=" << i << " len=" << frames[i].size();
      }
    }
  }
}

TEST(BatchCrc, InterleavedClmulMatchesPortableAB) {
  // Direct A/B of the interleaved PCLMULQDQ kernel against the portable
  // kernel of the same engine class, uniform-random lengths 0..4096.
  const ClmulCrc probe(crcspec::crc32_ethernet());
  if (!probe.accelerated())
    GTEST_SKIP() << "no PCLMULQDQ on this host (or portable forced)";
  Rng rng(0xAB);
  for (const CrcSpec& spec : crcspec::all()) {
    const ClmulCrc acc(spec, ClmulKernel::kAccelerated);
    const ClmulCrc port(spec, ClmulKernel::kPortable);
    Batch b;
    for (int i = 0; i < 48; ++i)
      b.add(rng.next_bytes(static_cast<std::size_t>(rng.next_u64() % 4097)));
    const std::span<const FrameView> frames = b.finish();
    std::vector<std::uint64_t> a(frames.size()), p(frames.size());
    acc.compute_many(frames, a);
    port.compute_many(frames, p);
    for (std::size_t i = 0; i < frames.size(); ++i)
      ASSERT_EQ(a[i], p[i])
          << spec.name << " frame=" << i << " len=" << frames[i].size();
  }
}

TEST(BatchCrc, InterleavedGroupsSurviveExtremeMixes) {
  // One interleave group mixing a 4 KiB frame with 1-byte frames: the
  // early-reduction cap must hand the long tail back to the streaming
  // path without disturbing its lane neighbours.
  const CrcSpec spec = crcspec::crc32_ethernet();
  const ClmulCrc eng(spec);
  Rng rng(0xE17);
  Batch b;
  for (const std::size_t len : {std::size_t{4096}, std::size_t{1},
                                std::size_t{16}, std::size_t{1},
                                std::size_t{2048}, std::size_t{24},
                                std::size_t{0}, std::size_t{4095}})
    b.add(rng.next_bytes(len));
  const std::span<const FrameView> frames = b.finish();
  std::vector<std::uint64_t> crcs(frames.size());
  eng.compute_many(frames, crcs);
  const std::vector<std::uint64_t> want = serial_many(spec, frames);
  EXPECT_EQ(crcs, want);
}

TEST(BatchCrc, HandleDefaultLoopServesEnginesWithoutNativeBatch) {
  // An engine with no absorb_many of its own (SerialCrc behind the
  // handle) still gets the full batch API via the concept-gated default.
  const CrcSpec spec = crcspec::crc16_ccitt_false();
  const CrcEngineHandle eng =
      EngineRegistry::instance().make("serial", spec);
  Rng rng(0x5E);
  Batch b = make_batch(rng, 9);
  const std::span<const FrameView> frames = b.finish();
  std::vector<std::uint64_t> crcs(frames.size());
  eng.compute_many(frames, crcs);
  EXPECT_EQ(crcs, serial_many(spec, frames));
}

TEST(BatchCrc, ParallelCrcBatchShardsByFrameCount) {
  // min_shard_bytes = 1 forces the sharded dispatch; every shard batches
  // a contiguous frame run through the wrapped engine's absorb_many.
  const CrcSpec spec = crcspec::crc32c();
  const ParallelCrc par(TableCrc(spec), 4, 1);
  Rng rng(0x9A);
  for (const std::size_t count : {std::size_t{0}, std::size_t{1},
                                  std::size_t{3}, std::size_t{4},
                                  std::size_t{5}, std::size_t{33}}) {
    Batch b = make_batch(rng, count);
    const std::span<const FrameView> frames = b.finish();
    std::vector<std::uint64_t> crcs(count);
    par.compute_many(frames, crcs);
    const std::vector<std::uint64_t> want = serial_many(spec, frames);
    for (std::size_t i = 0; i < count; ++i)
      ASSERT_EQ(crcs[i], want[i]) << "count=" << count << " frame=" << i;
  }
}

TEST(BatchCrc, MakeCachedSharesOneInstancePerSpec) {
  EngineRegistry& reg = EngineRegistry::instance();
  const CrcSpec spec = crcspec::crc32_ethernet();
  const CrcEngineHandle a = reg.make_cached("table", spec);
  const CrcEngineHandle b = reg.make_cached("table", spec);
  // Same spec -> same shared engine instance behind the handles.
  EXPECT_EQ(&a.spec(), &b.spec());
  // A different spec (or name) gets its own instance.
  const CrcEngineHandle c = reg.make_cached("table", crcspec::crc32c());
  EXPECT_NE(&a.spec(), &c.spec());
  EXPECT_EQ(a.compute(std::vector<std::uint8_t>{'1', '2', '3'}),
            b.compute(std::vector<std::uint8_t>{'1', '2', '3'}));
}

}  // namespace
}  // namespace plfsr
