// Pipeline subsystem: the pipelined execution must be bit-exact with the
// serial composition of the same stages for randomised frame sizes
// (including empty and 1-byte frames) at every batch size × queue depth,
// stage errors must abort cleanly and propagate through wait(), and the
// per-stage metrics must account for every frame and byte.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "crc/crc_spec.hpp"
#include "crc/parallel_crc.hpp"
#include "crc/slicing_crc.hpp"
#include "crc/table_crc.hpp"
#include "lfsr/catalog.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/stages.hpp"
#include "scrambler/scrambler.hpp"
#include "support/bitstream.hpp"
#include "support/frame_arena.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

constexpr std::uint64_t kSeed = 0x5D;

/// Random frames over the interesting size range, always including the
/// empty and 1-byte edge cases.
std::vector<Frame> make_frames(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Frame> frames(n);
  for (std::size_t i = 0; i < n; ++i) {
    frames[i].id = i;
    std::size_t len;
    if (i == 0)
      len = 0;
    else if (i == 1)
      len = 1;
    else
      len = rng.next_below(1519);
    frames[i].bytes = rng.next_bytes(len);
  }
  return frames;
}

/// The serial composition the pipeline must match: fresh instances of the
/// same stages, applied batch-by-batch on one thread.
std::vector<Frame> serial_reference(std::vector<Frame> frames,
                                    std::vector<std::unique_ptr<Stage>> st) {
  FrameBatch batch(std::make_move_iterator(frames.begin()),
                   std::make_move_iterator(frames.end()));
  for (auto& s : st) s->process(batch);
  return batch;
}

/// Deep copies (Frame is move-only: descriptor copies must be spelled).
std::vector<Frame> clone_frames(const std::vector<Frame>& in) {
  std::vector<Frame> out;
  out.reserve(in.size());
  for (const Frame& f : in) out.push_back(f.clone());
  return out;
}

FrameBatch clone_batch(const std::vector<Frame>& in) {
  FrameBatch batch;
  batch.reserve(in.size());
  for (const Frame& f : in) batch.push_back(f.clone());
  return batch;
}

FrameBatch one(const Frame& f) {
  FrameBatch batch;
  batch.push_back(f.clone());
  return batch;
}

std::vector<std::unique_ptr<Stage>> scramble_crc_collect() {
  std::vector<std::unique_ptr<Stage>> st;
  st.push_back(
      std::make_unique<ScrambleStage>(catalog::scrambler_80211(), kSeed));
  st.push_back(std::make_unique<FcsStage>(
      TableCrc(crcspec::crc32_ethernet())));
  st.push_back(std::make_unique<CollectSink>());
  return st;
}

void run_and_check(std::size_t batch_size, std::size_t queue_depth,
                   std::size_t n_frames) {
  const std::vector<Frame> input = make_frames(n_frames, 42);

  auto expect_stages = scramble_crc_collect();
  // Serial reference runs without the sink (CollectSink would just move).
  std::vector<std::unique_ptr<Stage>> serial_stages;
  serial_stages.push_back(std::move(expect_stages[0]));
  serial_stages.push_back(std::move(expect_stages[1]));
  const std::vector<Frame> expect =
      serial_reference(clone_frames(input), std::move(serial_stages));

  auto stages = scramble_crc_collect();
  CollectSink* sink = static_cast<CollectSink*>(stages.back().get());
  Pipeline pipe(std::move(stages), {.queue_depth = queue_depth});
  pipe.start();
  for (std::size_t i = 0; i < input.size(); i += batch_size) {
    FrameBatch batch;
    for (std::size_t j = i; j < std::min(i + batch_size, input.size()); ++j)
      batch.push_back(input[j].clone());
    ASSERT_TRUE(pipe.push(std::move(batch)));
  }
  pipe.close();
  pipe.wait();

  const std::vector<Frame>& got = sink->frames();
  ASSERT_EQ(got.size(), expect.size())
      << "batch=" << batch_size << " depth=" << queue_depth;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, expect[i].id) << "i=" << i;
    EXPECT_EQ(got[i].bytes, expect[i].bytes)
        << "i=" << i << " batch=" << batch_size << " depth=" << queue_depth;
    EXPECT_EQ(got[i].crc, expect[i].crc) << "i=" << i;
  }

  // Metrics: every stage saw every frame; occupancy respects the depth.
  for (const StageStats& s : pipe.stats()) {
    EXPECT_EQ(s.frames, input.size()) << s.name;
    EXPECT_LE(s.queue_high_water, queue_depth) << s.name;
  }
}

/// (batch size, queue depth) acceptance grid.
class PipelineGrid
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PipelineGrid, BitExactWithSerialComposition) {
  run_and_check(static_cast<std::size_t>(std::get<0>(GetParam())),
                static_cast<std::size_t>(std::get<1>(GetParam())),
                /*n_frames=*/64);
}

INSTANTIATE_TEST_SUITE_P(BatchAndDepth, PipelineGrid,
                         ::testing::Combine(::testing::Values(1, 3, 16),
                                            ::testing::Values(1, 2, 8)));

TEST(Pipeline, PinnedThreadsStayBitExact) {
  // pin_threads is a placement knob, not a semantics knob: the pinned
  // threaded plan must match the serial composition bit for bit, and be
  // a harmless no-op on hosts where affinity calls fail or are
  // unsupported (pinning errors are deliberately ignored).
  const std::vector<Frame> input = make_frames(64, 42);

  auto expect_stages = scramble_crc_collect();
  std::vector<std::unique_ptr<Stage>> serial_stages;
  serial_stages.push_back(std::move(expect_stages[0]));
  serial_stages.push_back(std::move(expect_stages[1]));
  const std::vector<Frame> expect =
      serial_reference(clone_frames(input), std::move(serial_stages));

  auto stages = scramble_crc_collect();
  auto* sink = static_cast<CollectSink*>(stages.back().get());
  Pipeline pipe(std::move(stages), PipelinePlan::pinned(/*depth=*/4));
  pipe.start();
  for (const Frame& f : input) ASSERT_TRUE(pipe.push(one(f)));
  pipe.close();
  pipe.wait();

  const std::vector<Frame>& got = sink->frames();
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].bytes, expect[i].bytes) << "i=" << i;
    EXPECT_EQ(got[i].crc, expect[i].crc) << "i=" << i;
  }
}

/// Sink that checks each frame's CRC against a precomputed table and
/// drops the batch — the descriptor drop recycles the jumbo buffers, so
/// a bounded arena can stream many more frames than it holds.
class ExpectCrcSink : public Stage {
 public:
  explicit ExpectCrcSink(std::vector<std::uint64_t> want)
      : want_(std::move(want)) {}
  const char* name() const override { return "expect-crc"; }
  void process(FrameBatch& batch) override {
    for (const Frame& f : batch) {
      ++frames_;
      if (f.id >= want_.size() || f.crc != want_[f.id]) ++mismatches_;
    }
    batch.clear();
  }
  std::uint64_t frames() const { return frames_; }
  std::uint64_t mismatches() const { return mismatches_; }

 private:
  std::vector<std::uint64_t> want_;
  std::uint64_t frames_ = 0;
  std::uint64_t mismatches_ = 0;
};

TEST(Pipeline, JumboFramesRecycleThroughThreadedExecutor) {
  // The other end of the size spectrum from the 64 B soak: 4 MiB frames
  // through a threaded executor on a bounded arena. Bit-exactness is
  // pinned per frame (CRC32 of the scrambled body vs a serial
  // reference) and the size-classed pool must keep heap traffic at the
  // bound — a few buffers serve the whole run.
  constexpr std::size_t kJumbo = 4u << 20;
  constexpr std::size_t kFrames = 10;
  constexpr std::size_t kCapacity = 3;
  FrameArena arena(kCapacity);

  // Serial reference: scramble a clone, CRC it — frame-synchronous, so
  // per-frame results are position-independent.
  Rng rng(31);
  std::vector<Frame> input(kFrames);
  for (std::size_t i = 0; i < kFrames; ++i) {
    input[i].id = i;
    input[i].bytes = rng.next_bytes(kJumbo);
  }
  const TableCrc ref(crcspec::crc32_ethernet());
  std::vector<std::uint64_t> want(kFrames);
  {
    ScrambleStage serial(catalog::scrambler_80211(), kSeed);
    for (std::size_t i = 0; i < kFrames; ++i) {
      FrameBatch b;
      b.push_back(input[i].clone());
      serial.process(b);
      want[i] = ref.compute(b[0].bytes);
    }
  }

  std::vector<std::unique_ptr<Stage>> stages;
  stages.push_back(
      std::make_unique<ScrambleStage>(catalog::scrambler_80211(), kSeed));
  stages.push_back(
      std::make_unique<FcsStage>(TableCrc(crcspec::crc32_ethernet())));
  stages.push_back(std::make_unique<ExpectCrcSink>(want));
  auto* sink = static_cast<ExpectCrcSink*>(stages.back().get());

  Pipeline pipe(std::move(stages), PipelinePlan::threaded(/*depth=*/2));
  pipe.start();
  for (std::size_t i = 0; i < kFrames; ++i) {
    Frame f;
    f.id = i;
    ASSERT_TRUE(arena.acquire(f.bytes, kJumbo));  // blocks at the bound
    std::copy(input[i].bytes.begin(), input[i].bytes.end(),
              f.bytes.begin());
    FrameBatch batch;
    batch.push_back(std::move(f));
    ASSERT_TRUE(pipe.push(std::move(batch)));
  }
  pipe.close();
  pipe.wait();

  EXPECT_EQ(sink->frames(), kFrames);
  EXPECT_EQ(sink->mismatches(), 0u);
  EXPECT_EQ(arena.outstanding(), 0u);
  // One size class: the bound alone caps heap traffic, no evictions.
  EXPECT_LE(arena.heap_allocations(), kCapacity);
  EXPECT_EQ(arena.evictions(), 0u);
  EXPECT_GE(arena.recycles(), kFrames - kCapacity);
}

TEST(Pipeline, VerifySinkConfirmsEveryFrame) {
  std::vector<std::unique_ptr<Stage>> stages;
  stages.push_back(
      std::make_unique<ScrambleStage>(catalog::scrambler_dvb(), 0x30D1));
  stages.push_back(std::make_unique<FcsStage>(
      SlicingBy8Crc(crcspec::crc32_ethernet())));
  stages.push_back(std::make_unique<VerifySink>(
      TableCrc(crcspec::crc32_ethernet()), /*stride=*/1));
  auto* sink = static_cast<VerifySink*>(stages.back().get());

  Pipeline pipe(std::move(stages), {.queue_depth = 4});
  pipe.start();
  const std::vector<Frame> input = make_frames(50, 7);
  std::uint64_t bytes = 0;
  for (const Frame& f : input) {
    bytes += f.bytes.size();
    ASSERT_TRUE(pipe.push(one(f)));
  }
  pipe.close();
  pipe.wait();
  EXPECT_EQ(sink->frames(), 50u);
  EXPECT_EQ(sink->bytes(), bytes);
  EXPECT_EQ(sink->checked(), 50u);
  EXPECT_EQ(sink->mismatches(), 0u);
  EXPECT_TRUE(sink->ok());
}

TEST(Pipeline, SpreadDespreadScrambleRoundTrip) {
  // TX: scramble -> spread; RX: despread -> descramble. The composition
  // is the identity on every frame body (additive scrambler involution +
  // majority-vote despreading with zero chip errors).
  const Gf2Poly g = catalog::prbs7();
  std::vector<std::unique_ptr<Stage>> stages;
  stages.push_back(
      std::make_unique<ScrambleStage>(catalog::scrambler_80211(), kSeed));
  stages.push_back(std::make_unique<SpreadStage>(g, 0x11, 8));
  stages.push_back(std::make_unique<DespreadStage>(g, 0x11, 8));
  stages.push_back(
      std::make_unique<ScrambleStage>(catalog::scrambler_80211(), kSeed));
  stages.push_back(std::make_unique<CollectSink>());
  auto* sink = static_cast<CollectSink*>(stages.back().get());

  Pipeline pipe(std::move(stages), {.queue_depth = 2});
  pipe.start();
  // Small frames: the spreader is bit-serial (it is an adapter, not a
  // throughput kernel), and each byte becomes chips_per_bit bytes.
  Rng rng(99);
  std::vector<Frame> input(12);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i].id = i;
    input[i].bytes = rng.next_bytes(i < 2 ? i : rng.next_below(97));
  }
  for (const Frame& f : input) ASSERT_TRUE(pipe.push(one(f)));
  pipe.close();
  pipe.wait();

  ASSERT_EQ(sink->frames().size(), input.size());
  for (std::size_t i = 0; i < input.size(); ++i)
    EXPECT_EQ(sink->frames()[i].bytes, input[i].bytes) << "i=" << i;
}

TEST(Pipeline, ParallelCrcComposesAsStageEngine) {
  // The sharded engine exposes the same absorb interface, so it drops
  // into the CRC stage — pipeline-over-pipeline composition.
  std::vector<std::unique_ptr<Stage>> stages;
  stages.push_back(std::make_unique<FcsStage>(
      ParallelCrc(TableCrc(crcspec::crc32_ethernet()), 2,
                            /*min_shard_bytes=*/1)));
  stages.push_back(std::make_unique<CollectSink>());
  auto* sink = static_cast<CollectSink*>(stages.back().get());

  Pipeline pipe(std::move(stages));
  pipe.start();
  const std::vector<Frame> input = make_frames(16, 5);
  ASSERT_TRUE(pipe.push(clone_batch(input)));
  pipe.close();
  pipe.wait();

  const TableCrc ref(crcspec::crc32_ethernet());
  ASSERT_EQ(sink->frames().size(), input.size());
  for (const Frame& f : sink->frames())
    EXPECT_EQ(f.crc, ref.compute(f.bytes)) << "id=" << f.id;
}

TEST(ScrambleStage, RisingFrameSizesStayBitExactAndLinear) {
  // Regression for the old cached-keystream design: its growth policy
  // (`want = max(nbytes, 4096)`) re-ran the bit-serial generator from
  // scratch at every new high-water mark, so a workload whose frame sizes
  // keep creeping upward paid O(frames * size) serial keystream work.
  // The word-parallel stage must (a) stay bit-exact with the serial
  // reference and (b) do work linear in the bytes processed — the
  // block-step counter is the proxy that pins (b).
  const Gf2Poly g = catalog::scrambler_80211();
  ScrambleStage stage(g, kSeed);

  std::uint64_t total_bytes = 0;
  std::size_t nframes = 0;
  Rng rng(21);
  for (std::size_t len = 4000; len <= 6000; len += 100) {  // rising sizes
    Frame f;
    f.id = nframes;
    f.bytes = rng.next_bytes(len);
    const std::vector<std::uint8_t> orig = f.bytes.to_vector();

    AdditiveScrambler ref(g, kSeed);
    const std::vector<std::uint8_t> want =
        ref.process(BitStream::from_bytes_lsb_first(orig))
            .to_bytes_lsb_first();

    FrameBatch batch;
    batch.push_back(std::move(f));
    stage.process(batch);
    ASSERT_EQ(batch[0].bytes, want) << "len=" << len;
    total_bytes += len;
    ++nframes;
  }
  // 64 keystream bits per block step; at most one extra step per frame for
  // the sub-word tail. A re-generation path would blow through this bound
  // by orders of magnitude.
  EXPECT_LE(stage.scrambler().block_steps(), total_bytes / 8 + nframes);
}

TEST(ScrambleStage, ApplyTwiceIsIdentity) {
  // Stage-level involution: the additive scrambler descrambles with the
  // same stage, frame-synchronously, for every frame in a batch.
  ScrambleStage stage(catalog::scrambler_sonet(), 0x41);
  const std::vector<Frame> input = make_frames(20, 8);
  FrameBatch batch = clone_batch(input);
  stage.process(batch);
  std::size_t changed = 0;
  for (std::size_t i = 0; i < batch.size(); ++i)
    changed += batch[i].bytes != input[i].bytes;
  EXPECT_GE(changed, 18u);  // empty frames excepted, bodies must change
  stage.process(batch);
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(batch[i].bytes, input[i].bytes) << "i=" << i;
}

TEST(SpreadStage, RoundTripsOddChipCountsAndFrameLengths) {
  // Regression for the spread -> despread length bug: when chips_per_bit
  // does not divide 8 * nbytes the chip stream's byte packing adds pad
  // bits, and the old stages (which inferred the bit count from the byte
  // size) either decoded pad chips into spurious payload bits or threw on
  // the indivisible chip count. Frame::bits carries the true length.
  Rng rng(22);
  for (const std::size_t chips : {3u, 5u, 7u, 8u, 11u}) {
    SpreadStage spread(catalog::prbs9(), 0x1B, chips);
    DespreadStage despread(catalog::prbs9(), 0x1B, chips);
    for (const std::size_t len : {0u, 1u, 2u, 3u, 17u, 97u}) {
      std::vector<Frame> input(1);
      input[0].id = 0;
      input[0].bytes = rng.next_bytes(len);
      FrameBatch batch = clone_batch(input);
      spread.process(batch);
      EXPECT_EQ(batch[0].bit_size(), 8 * len * chips)
          << "chips=" << chips << " len=" << len;
      despread.process(batch);
      ASSERT_EQ(batch[0].bytes, input[0].bytes)
          << "chips=" << chips << " len=" << len;
      EXPECT_EQ(batch[0].bit_size(), 8 * len) << "chips=" << chips;
    }
  }
}

TEST(SpreadStage, RoundTripsBitGranularFrames) {
  // Frames whose payload is not a whole number of bytes (Frame::bits set
  // below 8 * bytes.size()): the stages must spread/despread exactly that
  // many bits and keep the packing pad zeroed.
  Rng rng(23);
  for (const std::size_t chips : {3u, 5u, 11u}) {
    SpreadStage spread(catalog::prbs7(), 0x2D, chips);
    DespreadStage despread(catalog::prbs7(), 0x2D, chips);
    for (const std::uint64_t nbits : {1u, 7u, 9u, 100u}) {
      BitStream payload = rng.next_bits(nbits);
      Frame f;
      f.id = 0;
      f.bytes = payload.to_bytes_lsb_first();
      f.bits = nbits;
      FrameBatch batch;
      batch.push_back(std::move(f));
      spread.process(batch);
      EXPECT_EQ(batch[0].bit_size(), nbits * chips) << "chips=" << chips;
      despread.process(batch);
      EXPECT_EQ(batch[0].bit_size(), nbits) << "chips=" << chips;
      EXPECT_EQ(batch[0].bytes, payload.to_bytes_lsb_first())
          << "chips=" << chips << " nbits=" << nbits;
    }
  }
}

TEST(Frame, BitSizeDefaultsToWholeBytesAndClamps) {
  Frame f;
  f.bytes = std::vector<std::uint8_t>{0xAB, 0xCD, 0xEF};
  EXPECT_EQ(f.bit_size(), 24u);  // default: whole buffer
  f.bits = 21;
  EXPECT_EQ(f.bit_size(), 21u);  // explicit bit-granular length
  f.bits = 99;
  EXPECT_EQ(f.bit_size(), 24u);  // never larger than the buffer
}

/// Stage that throws once a given frame id passes through.
class BoomStage : public Stage {
 public:
  explicit BoomStage(std::uint64_t boom_id) : boom_id_(boom_id) {}
  const char* name() const override { return "boom"; }
  void process(FrameBatch& batch) override {
    for (const Frame& f : batch)
      if (f.id == boom_id_) throw std::runtime_error("boom");
  }

 private:
  std::uint64_t boom_id_;
};

TEST(Pipeline, StageErrorAbortsAndPropagates) {
  std::vector<std::unique_ptr<Stage>> stages;
  stages.push_back(
      std::make_unique<ScrambleStage>(catalog::scrambler_80211(), kSeed));
  stages.push_back(std::make_unique<BoomStage>(5));
  stages.push_back(std::make_unique<CollectSink>());

  Pipeline pipe(std::move(stages), {.queue_depth = 1});
  pipe.start();
  const std::vector<Frame> input = make_frames(200, 3);
  // Pushes start failing once the abort lands; that is the signal to stop
  // producing. No deadlock either way — rings close on abort.
  for (const Frame& f : input)
    if (!pipe.push(one(f))) break;
  pipe.close();
  EXPECT_THROW(pipe.wait(), std::runtime_error);
  EXPECT_TRUE(pipe.failed());
}

TEST(Pipeline, DestructorWithoutWaitShutsDownCleanly) {
  auto stages = scramble_crc_collect();
  Pipeline pipe(std::move(stages), {.queue_depth = 1});
  pipe.start();
  for (const Frame& f : make_frames(8, 1)) {
    if (!pipe.push(one(f))) break;
  }
  // No close()/wait(): the destructor must abort, drain and join.
}

TEST(Pipeline, RejectsEmptyStageList) {
  EXPECT_THROW(Pipeline(std::vector<std::unique_ptr<Stage>>{}),
               std::invalid_argument);
}

TEST(Pipeline, PushBeforeStartThrows) {
  auto stages = scramble_crc_collect();
  Pipeline pipe(std::move(stages));
  EXPECT_THROW(pipe.push(FrameBatch{}), std::logic_error);
}

TEST(Pipeline, StatsTableHasOneRowPerStage) {
  auto stages = scramble_crc_collect();
  Pipeline pipe(std::move(stages));
  pipe.start();
  const std::vector<Frame> input = make_frames(4, 11);
  ASSERT_TRUE(pipe.push(clone_batch(input)));
  pipe.close();
  pipe.wait();
  EXPECT_EQ(pipe.stats_table().rows(), pipe.num_stages());
}

}  // namespace
}  // namespace plfsr
