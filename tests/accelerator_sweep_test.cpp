// Wide parameterized sweep of the full hardware path: generator x M x
// message shape, with fault injection. Every combination builds the
// Derby plan, compiles it onto the simulated array, streams a message
// through the configured cells, and must agree with the bit-serial
// software reference — the deepest integration test in the suite.
#include <gtest/gtest.h>

#include <tuple>

#include "crc/crc_spec.hpp"
#include "crc/serial_crc.hpp"
#include "lfsr/catalog.hpp"
#include "picoga/crc_accelerator.hpp"
#include "plfsr.hpp"  // umbrella header must stay self-contained
#include "support/rng.hpp"

namespace plfsr {
namespace {

struct SweepSpec {
  const char* name;
  CrcSpec (*make)();
};

const SweepSpec kSpecs[] = {
    {"crc5", crcspec::crc5_usb},     {"crc8", crcspec::crc8_smbus},
    {"crc15", crcspec::crc15_can},   {"crc16", crcspec::crc16_ccitt_false},
    {"crc24", crcspec::crc24_openpgp}, {"crc32", crcspec::crc32_ethernet},
};

class AcceleratorSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  CrcSpec spec() const {
    return kSpecs[static_cast<std::size_t>(std::get<0>(GetParam()))].make();
  }
  std::size_t m() const {
    return static_cast<std::size_t>(std::get<1>(GetParam()));
  }
};

TEST_P(AcceleratorSweep, HardwarePathMatchesSoftware) {
  const CrcSpec s = spec();
  PicogaCrcAccelerator acc(s.generator(), m());
  Rng rng(std::get<0>(GetParam()) * 97 + std::get<1>(GetParam()));
  for (std::size_t chunks : {1u, 3u, 17u}) {
    const BitStream bits = rng.next_bits(m() * chunks);
    const auto res = acc.process(bits, s.init);
    EXPECT_EQ(res.raw, serial_crc_bits(bits, s.width, s.poly, s.init))
        << s.name << " M=" << m() << " chunks=" << chunks;
  }
}

TEST_P(AcceleratorSweep, HardwareDetectsInjectedErrors) {
  // Fault injection through the hardware path: every single flipped bit
  // must change the accelerator's checksum (the CRC guarantee, now
  // witnessed through the configured cells rather than software).
  const CrcSpec s = spec();
  PicogaCrcAccelerator acc(s.generator(), m());
  Rng rng(std::get<1>(GetParam()) * 131 + 5);
  const BitStream good = rng.next_bits(m() * 4);
  const std::uint64_t good_raw = acc.process(good, s.init).raw;
  for (int trial = 0; trial < 8; ++trial) {
    BitStream bad = good;
    const std::size_t pos = rng.next_below(bad.size());
    bad.set(pos, !bad.get(pos));
    EXPECT_NE(acc.process(bad, s.init).raw, good_raw)
        << s.name << " M=" << m() << " flipped bit " << pos;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolysAndM, AcceleratorSweep,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(8, 16, 32, 64, 128)),
    [](const auto& info) {
      return std::string(kSpecs[std::get<0>(info.param)].name) + "_M" +
             std::to_string(std::get<1>(info.param));
    });

TEST(AcceleratorSweep, ScramblerSweepAcrossPolys) {
  Rng rng(9);
  for (const auto& [name, g] : catalog::all_scrambler_polys()) {
    const std::uint64_t seed = (1ull << (g.degree() - 1)) | 1;
    for (std::size_t m : {16u, 64u}) {
      PicogaScramblerAccelerator acc(g, m);
      const BitStream data = rng.next_bits(m * 5);
      AdditiveScrambler ref(g, seed);
      EXPECT_EQ(acc.process(data, seed).out, ref.process(data))
          << name << " M=" << m;
    }
  }
}

}  // namespace
}  // namespace plfsr
