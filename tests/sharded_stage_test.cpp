// ShardedStage: N clones of a stage over contiguous batch slices must be
// bit-exact with the unsharded stage for every shard count × batch size
// (order preserved, frame-count-changing stages included), and a
// throwing shard must propagate without leaving workers running. The
// pipeline composition test is the TSan target for the nested
// parallelism (sharded stage inside a threaded executor).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "crc/crc_spec.hpp"
#include "crc/table_crc.hpp"
#include "lfsr/catalog.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/sharded_stage.hpp"
#include "pipeline/stages.hpp"
#include "support/bitstream.hpp"
#include "support/rng.hpp"

namespace plfsr {
namespace {

constexpr std::uint64_t kSeed = 0x5D;

std::vector<Frame> make_frames(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Frame> frames(n);
  for (std::size_t i = 0; i < n; ++i) {
    frames[i].id = i;
    const std::size_t len = i == 0 ? 0 : i == 1 ? 1 : rng.next_below(1519);
    frames[i].bytes = rng.next_bytes(len);
  }
  return frames;
}

FrameBatch clone_batch(const std::vector<Frame>& in) {
  FrameBatch batch;
  batch.reserve(in.size());
  for (const Frame& f : in) batch.push_back(f.clone());
  return batch;
}

TEST(ShardedStage, BitExactAcrossShardCountsAndBatchSizes) {
  for (const std::size_t shards : {1u, 2u, 3u, 8u}) {
    for (const std::size_t batch_size : {1u, 5u, 7u, 64u}) {
      const std::vector<Frame> input = make_frames(64, 42);

      // Unsharded reference: one scramble + one crc instance.
      FrameBatch expect = clone_batch(input);
      ScrambleStage ref_scr(catalog::scrambler_80211(), kSeed);
      FcsStage ref_crc{TableCrc(crcspec::crc32_ethernet())};
      ref_scr.process(expect);
      ref_crc.process(expect);

      ShardedStage scr(
          [] {
            return std::make_unique<ScrambleStage>(
                catalog::scrambler_80211(), kSeed);
          },
          shards);
      ShardedStage crc(
          [] {
            return std::make_unique<FcsStage>(
                TableCrc(crcspec::crc32_ethernet()));
          },
          shards);

      std::vector<Frame> got;
      for (std::size_t i = 0; i < input.size(); i += batch_size) {
        FrameBatch b;
        for (std::size_t j = i;
             j < std::min(i + batch_size, input.size()); ++j)
          b.push_back(input[j].clone());
        scr.process(b);
        crc.process(b);
        for (Frame& f : b) got.push_back(std::move(f));
      }

      ASSERT_EQ(got.size(), expect.size())
          << "shards=" << shards << " batch=" << batch_size;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expect[i].id) << "i=" << i;
        EXPECT_EQ(got[i].bytes, expect[i].bytes)
            << "i=" << i << " shards=" << shards << " batch=" << batch_size;
        EXPECT_EQ(got[i].crc, expect[i].crc) << "i=" << i;
      }
    }
  }
}

TEST(ShardedStage, FrameCountChangingStageKeepsSliceOrder) {
  // The spreader grows every frame (bit -> C chips); sharding it must
  // still produce the same frame sequence as the unsharded stage, and
  // the spread -> despread round trip must hold at every shard count.
  for (const std::size_t shards : {2u, 5u}) {
    ShardedStage spread(
        [] { return std::make_unique<SpreadStage>(catalog::prbs9(), 0x1B, 5); },
        shards);
    ShardedStage despread(
        [] {
          return std::make_unique<DespreadStage>(catalog::prbs9(), 0x1B, 5);
        },
        shards);

    Rng rng(9);
    std::vector<Frame> input(13);
    for (std::size_t i = 0; i < input.size(); ++i) {
      input[i].id = i;
      input[i].bytes = rng.next_bytes(i < 2 ? i : rng.next_below(97));
    }
    FrameBatch batch = clone_batch(input);
    spread.process(batch);
    ASSERT_EQ(batch.size(), input.size()) << "shards=" << shards;
    despread.process(batch);
    ASSERT_EQ(batch.size(), input.size()) << "shards=" << shards;
    for (std::size_t i = 0; i < batch.size(); ++i)
      EXPECT_EQ(batch[i].bytes, input[i].bytes)
          << "i=" << i << " shards=" << shards;
  }
}

TEST(ShardedStage, BitGranularFramesSurviveSharding) {
  // Frames with Frame::bits below 8*size: each shard clone must respect
  // the bit-granular payload exactly as the unsharded stage does.
  ShardedStage spread(
      [] { return std::make_unique<SpreadStage>(catalog::prbs7(), 0x2D, 3); },
      3);
  ShardedStage despread(
      [] {
        return std::make_unique<DespreadStage>(catalog::prbs7(), 0x2D, 3);
      },
      3);
  Rng rng(23);
  FrameBatch batch;
  std::vector<std::vector<std::uint8_t>> want;
  const std::uint64_t nbits[] = {1, 7, 9, 100, 33};
  for (std::size_t i = 0; i < 5; ++i) {
    BitStream payload = rng.next_bits(nbits[i]);
    Frame f;
    f.id = i;
    f.bytes = payload.to_bytes_lsb_first();
    f.bits = nbits[i];
    want.push_back(f.bytes.to_vector());
    batch.push_back(std::move(f));
  }
  spread.process(batch);
  despread.process(batch);
  ASSERT_EQ(batch.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(batch[i].bit_size(), nbits[i]) << "i=" << i;
    EXPECT_EQ(batch[i].bytes, want[i]) << "i=" << i;
  }
}

TEST(ShardedStage, NamesReportShardCount) {
  ShardedStage s(
      [] {
        return std::make_unique<ScrambleStage>(catalog::scrambler_80211(),
                                               kSeed);
      },
      4);
  EXPECT_STREQ(s.name(), "scramble x4");
  EXPECT_EQ(s.workers(), 4u);
  // workers == 0 promotes to 1 rather than throwing.
  ShardedStage one(
      [] {
        return std::make_unique<ScrambleStage>(catalog::scrambler_80211(),
                                               kSeed);
      },
      0);
  EXPECT_EQ(one.workers(), 1u);
}

class BoomStage : public Stage {
 public:
  explicit BoomStage(std::uint64_t boom_id) : boom_id_(boom_id) {}
  const char* name() const override { return "boom"; }
  void process(FrameBatch& batch) override {
    for (const Frame& f : batch)
      if (f.id == boom_id_) throw std::runtime_error("boom");
  }

 private:
  std::uint64_t boom_id_;
};

TEST(ShardedStage, ShardExceptionPropagates) {
  // Frame 50 lands in a pool-side shard (4 shards x 64 frames: slice 3);
  // the throw must surface from process() after every shard joined.
  ShardedStage s([] { return std::make_unique<BoomStage>(50); }, 4);
  std::vector<Frame> input = make_frames(64, 3);
  FrameBatch batch(std::make_move_iterator(input.begin()),
                   std::make_move_iterator(input.end()));
  EXPECT_THROW(s.process(batch), std::runtime_error);
}

TEST(ShardedStage, ComposesInsideThreadedPipeline) {
  // The bottleneck-widening configuration the bench sweeps: a sharded
  // scramble row feeding a single crc row, on the threaded executor,
  // bit-exact with the serial unsharded composition.
  const std::vector<Frame> input = make_frames(96, 11);
  FrameBatch expect = clone_batch(input);
  ScrambleStage ref_scr(catalog::scrambler_80211(), kSeed);
  FcsStage ref_crc{TableCrc(crcspec::crc32_ethernet())};
  ref_scr.process(expect);
  ref_crc.process(expect);

  std::vector<std::unique_ptr<Stage>> stages;
  stages.push_back(std::make_unique<ShardedStage>(
      [] {
        return std::make_unique<ScrambleStage>(catalog::scrambler_80211(),
                                               kSeed);
      },
      2));
  stages.push_back(
      std::make_unique<FcsStage>(TableCrc(crcspec::crc32_ethernet())));
  stages.push_back(std::make_unique<CollectSink>());
  auto* sink = static_cast<CollectSink*>(stages.back().get());

  Pipeline pipe(std::move(stages), PipelinePlan::threaded(4));
  pipe.start();
  for (std::size_t i = 0; i < input.size(); i += 16) {
    FrameBatch b;
    for (std::size_t j = i; j < std::min(i + 16, input.size()); ++j)
      b.push_back(input[j].clone());
    ASSERT_TRUE(pipe.push(std::move(b)));
  }
  pipe.close();
  pipe.wait();

  ASSERT_EQ(sink->frames().size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(sink->frames()[i].bytes, expect[i].bytes) << "i=" << i;
    EXPECT_EQ(sink->frames()[i].crc, expect[i].crc) << "i=" << i;
  }
}

}  // namespace
}  // namespace plfsr
