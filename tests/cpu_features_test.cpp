// Runtime CPU dispatch layer: probe stability, the PLFSR_FORCE_PORTABLE
// veto, and (on x86) agreement with the compiler's own CPU probe.
#include <gtest/gtest.h>

#include <cstdlib>

#include "support/cpu_features.hpp"

namespace plfsr {
namespace {

TEST(CpuFeatures, ProbeIsCachedAndStable) {
  const CpuFeatures& a = cpu_features();
  const CpuFeatures& b = cpu_features();
  EXPECT_EQ(&a, &b);  // one cached probe per process
  EXPECT_EQ(a.pclmul, b.pclmul);
  EXPECT_EQ(a.sse41, b.sse41);
}

#if defined(__x86_64__) || defined(__i386__)
TEST(CpuFeatures, AgreesWithCompilerBuiltinProbe) {
  EXPECT_EQ(cpu_features().pclmul,
            static_cast<bool>(__builtin_cpu_supports("pclmul")));
  EXPECT_EQ(cpu_features().sse41,
            static_cast<bool>(__builtin_cpu_supports("sse4.1")));
}
#else
TEST(CpuFeatures, AllFalseOffX86) {
  EXPECT_FALSE(cpu_features().pclmul);
  EXPECT_FALSE(cpu_features().sse41);
}
#endif

TEST(CpuFeatures, ForcePortableFollowsTheEnvironment) {
  ASSERT_EQ(unsetenv("PLFSR_FORCE_PORTABLE"), 0);
  EXPECT_FALSE(force_portable());

  ASSERT_EQ(setenv("PLFSR_FORCE_PORTABLE", "1", 1), 0);
  EXPECT_TRUE(force_portable());
  EXPECT_FALSE(clmul_allowed());  // veto regardless of hardware

  // "0" and the empty string mean "not forced" — the documented knob is
  // boolean-ish, not merely set/unset.
  ASSERT_EQ(setenv("PLFSR_FORCE_PORTABLE", "0", 1), 0);
  EXPECT_FALSE(force_portable());
  ASSERT_EQ(setenv("PLFSR_FORCE_PORTABLE", "", 1), 0);
  EXPECT_FALSE(force_portable());

  ASSERT_EQ(setenv("PLFSR_FORCE_PORTABLE", "yes", 1), 0);
  EXPECT_TRUE(force_portable());

  ASSERT_EQ(unsetenv("PLFSR_FORCE_PORTABLE"), 0);
  EXPECT_FALSE(force_portable());
}

TEST(CpuFeatures, ClmulAllowedRequiresBothFeatureBits) {
  ASSERT_EQ(unsetenv("PLFSR_FORCE_PORTABLE"), 0);
  const CpuFeatures& f = cpu_features();
  EXPECT_EQ(clmul_allowed(), f.pclmul && f.sse41);
}

}  // namespace
}  // namespace plfsr
