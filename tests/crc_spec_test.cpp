#include "crc/crc_spec.hpp"

#include <gtest/gtest.h>

#include "crc/serial_crc.hpp"
#include "crc/table_crc.hpp"

namespace plfsr {
namespace {

const std::uint8_t kCheckMsg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};

TEST(ReflectBits, KnownValues) {
  EXPECT_EQ(reflect_bits(0b1, 1), 0b1u);
  EXPECT_EQ(reflect_bits(0b001, 3), 0b100u);
  EXPECT_EQ(reflect_bits(0x04C11DB7, 32), 0xEDB88320u);
  EXPECT_EQ(reflect_bits(0xFFFFFFFF, 32), 0xFFFFFFFFu);
}

TEST(ReflectBits, Involution) {
  for (std::uint64_t v : {0x12345678ull, 0xDEADBEEFull, 0x1ull})
    EXPECT_EQ(reflect_bits(reflect_bits(v, 32), 32), v & 0xFFFFFFFF);
}

TEST(CrcSpec, MaskWidths) {
  EXPECT_EQ(crcspec::crc5_usb().mask(), 0x1Fu);
  EXPECT_EQ(crcspec::crc32_ethernet().mask(), 0xFFFFFFFFu);
  EXPECT_EQ(crcspec::crc64_xz().mask(), ~std::uint64_t{0});
}

TEST(CrcSpec, GeneratorDegreeEqualsWidth) {
  for (const CrcSpec& s : crcspec::all())
    EXPECT_EQ(s.generator().degree(), static_cast<int>(s.width)) << s.name;
}

/// Every catalogue entry's check value, via the bit-serial reference.
class CheckValues : public ::testing::TestWithParam<CrcSpec> {};

TEST_P(CheckValues, SerialEngine) {
  const CrcSpec& spec = GetParam();
  EXPECT_EQ(serial_crc(spec, kCheckMsg), spec.check) << spec.name;
}

TEST_P(CheckValues, TableEngine) {
  const CrcSpec& spec = GetParam();
  EXPECT_EQ(TableCrc(spec).compute(kCheckMsg), spec.check) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, CheckValues,
                         ::testing::ValuesIn(crcspec::all()),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (char& c : n)
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return n;
                         });

TEST(CrcSpec, EmptyMessage) {
  // Empty input: the register stays at init; finalization still applies.
  const CrcSpec s = crcspec::crc32_ethernet();
  EXPECT_EQ(serial_crc(s, {}),
            s.finalize(s.init));
  EXPECT_EQ(TableCrc(s).compute({}), serial_crc(s, {}));
}

TEST(CrcSpec, MessageBitsRespectsReflection) {
  const std::uint8_t b[] = {0x01};
  EXPECT_EQ(crcspec::crc32_ethernet().message_bits(b).to_string(),
            "10000000");  // reflected: LSB first
  EXPECT_EQ(crcspec::crc32_mpeg2().message_bits(b).to_string(),
            "00000001");  // non-reflected: MSB first
}

TEST(CrcSpec, EthernetAndMpeg2ShareGenerator) {
  // The paper: "the 32-bit CRC defined for the Ethernet standard (but it
  // is the same defined for MPEG-2)".
  EXPECT_EQ(crcspec::crc32_ethernet().poly, crcspec::crc32_mpeg2().poly);
  EXPECT_NE(crcspec::crc32_ethernet().check, crcspec::crc32_mpeg2().check);
}

}  // namespace
}  // namespace plfsr
