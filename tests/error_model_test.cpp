#include "crc/error_model.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace plfsr {
namespace {

using namespace crc_analysis;

/// Property sweep across the spec catalogue.
class ErrorDetection : public ::testing::TestWithParam<CrcSpec> {};

TEST_P(ErrorDetection, AllSingleBitErrorsDetected) {
  EXPECT_TRUE(detects_all_single_bit(GetParam(), 256));
}

TEST_P(ErrorDetection, AllBurstsUpToWidthDetected) {
  // Exhaustive over every interior pattern; keep the message short so
  // the wide specs stay tractable (positions x 2^(width-2) patterns).
  const CrcSpec& s = GetParam();
  if (s.width > 16) GTEST_SKIP() << "burst exhaustion too wide";
  EXPECT_TRUE(detects_all_bursts(s, 40));
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, ErrorDetection,
                         ::testing::ValuesIn(crcspec::all()),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (char& c : n)
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return n;
                         });

TEST(ErrorModel, Crc32BurstsSpotChecked) {
  // The 32-bit specs can't be exhausted; spot-check every burst length
  // with random interiors.
  const CrcSpec s = crcspec::crc32_ethernet();
  Rng rng(1);
  for (std::size_t b = 1; b <= 32; ++b) {
    for (int trial = 0; trial < 20; ++trial) {
      BitStream e(368);
      const std::size_t p = rng.next_below(368 - b + 1);
      e.set(p, true);
      if (b >= 2) e.set(p + b - 1, true);
      for (std::size_t j = p + 1; j + 1 < p + b; ++j)
        e.set(j, rng.next_bit());
      EXPECT_TRUE(pattern_detectable(s, e)) << "burst len " << b;
    }
  }
}

TEST(ErrorModel, TwoBitHorizonEthernetIsFullPeriod) {
  // Primitive degree-32 generator: every two-bit error within 2^32 - 1
  // bits is caught — far beyond any real frame.
  EXPECT_EQ(two_bit_error_horizon(crcspec::crc32_ethernet()),
            (1ull << 32) - 1);
}

TEST(ErrorModel, TwoBitHorizonMatchesAnActualMiss) {
  // CRC-5/USB: order of x mod g is small enough to exhibit the blind
  // spot — a two-bit error spaced exactly ord(x) apart must slip through.
  const CrcSpec s = crcspec::crc5_usb();
  const std::uint64_t horizon = two_bit_error_horizon(s);
  EXPECT_LE(horizon, 31u);
  BitStream e(static_cast<std::size_t>(horizon) + 1);
  e.set(0, true);
  e.set(static_cast<std::size_t>(horizon), true);
  EXPECT_FALSE(pattern_detectable(s, e));
  // One bit closer: detected.
  BitStream e2(static_cast<std::size_t>(horizon) + 1);
  e2.set(0, true);
  e2.set(static_cast<std::size_t>(horizon) - 1, true);
  EXPECT_TRUE(pattern_detectable(s, e2));
}

TEST(ErrorModel, ErrorDetectedAgreesWithPatternDetectable) {
  // Linearity: detection depends only on the error pattern.
  const CrcSpec s = crcspec::crc16_ccitt_false();
  Rng rng(2);
  for (int t = 0; t < 50; ++t) {
    const BitStream msg = rng.next_bits(128);
    BitStream e(128);
    for (int b = 0; b < 3; ++b)
      e.set(rng.next_below(128), true);
    if (e.weight() == 0) continue;
    EXPECT_EQ(error_detected(s, msg, e), pattern_detectable(s, e));
  }
}

TEST(ErrorModel, ResidualRateApproaches2ToMinusK) {
  // Heavy random garble slips past CRC-8 at ~2^-8; CRC-16 at ~2^-16
  // (statistically zero at this sample count).
  const double rate8 = sampled_undetected_rate(crcspec::crc8_smbus(), 256,
                                               40, 20000, 7);
  EXPECT_GT(rate8, 1.0 / 256 / 3);
  EXPECT_LT(rate8, 3.0 / 256);
  const double rate16 = sampled_undetected_rate(
      crcspec::crc16_ccitt_false(), 256, 40, 5000, 8);
  EXPECT_LT(rate16, 0.002);
}

TEST(ErrorModel, ArgumentValidation) {
  const CrcSpec s = crcspec::crc8_smbus();
  EXPECT_THROW(error_detected(s, BitStream(8), BitStream(9)),
               std::invalid_argument);
  EXPECT_THROW(sampled_undetected_rate(s, 16, 0, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(sampled_undetected_rate(s, 16, 17, 10, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace plfsr
