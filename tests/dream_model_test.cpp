#include "dream/dream_model.hpp"

#include <gtest/gtest.h>

#include "dream/scrambler_model.hpp"
#include "lfsr/catalog.hpp"

namespace plfsr {
namespace {

TEST(DreamCrcModel, PeakIs25GbpsAtM128) {
  const DreamCrcModel model(catalog::crc32_ethernet(), 128);
  EXPECT_NEAR(model.peak_gbps(), 25.6, 1e-9);
  EXPECT_EQ(model.ii(), 1u);
}

TEST(DreamCrcModel, ThroughputSaturatesTowardsPeak) {
  const DreamCrcModel model(catalog::crc32_ethernet(), 128);
  const double t_short = model.throughput_single_gbps(384);
  const double t_ethernet_max = model.throughput_single_gbps(12160);
  const double t_long = model.throughput_single_gbps(1 << 20);
  EXPECT_LT(t_short, t_ethernet_max);
  EXPECT_LT(t_ethernet_max, t_long);
  EXPECT_LT(t_long, model.peak_gbps());
  EXPECT_GT(t_long, 0.99 * model.peak_gbps());
}

TEST(DreamCrcModel, GbpsAcrossTheEthernetWindow) {
  // §5: "in a message window compliant with Ethernet standard we can
  // perform transfers at the Gbit/sec speed for M equal to 32, 64, 128".
  for (std::size_t m : {32u, 64u, 128u}) {
    const DreamCrcModel model(catalog::crc32_ethernet(), m);
    EXPECT_GE(model.throughput_single_gbps(384), 1.0) << "M=" << m;
    EXPECT_GE(model.throughput_single_gbps(12160), 1.0) << "M=" << m;
  }
}

TEST(DreamCrcModel, InterleavingBeatsSingleForShortMessages) {
  const DreamCrcModel model(catalog::crc32_ethernet(), 128);
  for (std::uint64_t n : {384u, 1536u}) {
    const double single = model.throughput_single_gbps(n);
    const double inter = model.throughput_interleaved_gbps(n, 32);
    EXPECT_GT(inter, single) << "N=" << n;
  }
  // And interleaved short messages approach the peak (per-message
  // readout is the residual cost, ~28% at 12 chunks/message).
  EXPECT_GT(model.throughput_interleaved_gbps(1536, 32),
            0.7 * model.peak_gbps());
}

TEST(DreamCrcModel, MonotoneInM) {
  double prev = 0;
  for (std::size_t m : {8u, 16u, 32u, 64u, 128u}) {
    const DreamCrcModel model(catalog::crc32_ethernet(), m);
    const double t = model.throughput_single_gbps(12160);
    EXPECT_GT(t, prev) << "M=" << m;
    prev = t;
  }
}

TEST(DreamCrcModel, RejectsInfeasibleM) {
  EXPECT_THROW(DreamCrcModel(catalog::crc32_ethernet(), 256),
               std::invalid_argument);
}

TEST(DreamCrcModel, RejectsRaggedLength) {
  const DreamCrcModel model(catalog::crc32_ethernet(), 32);
  EXPECT_THROW(model.cycles_single(33), std::invalid_argument);
  EXPECT_THROW(model.cycles_single(0), std::invalid_argument);
  EXPECT_THROW(model.cycles_interleaved(64, 0), std::invalid_argument);
}

TEST(RiscModel, TableBeatsBitSerial) {
  const RiscModel risc;
  EXPECT_LT(risc.crc_cycles_table(12144), risc.crc_cycles_bitserial(12144));
  // A 200 MHz RISC with a 7-cycle/byte loop sustains ~0.23 Gbit/s.
  const double gbps = risc.throughput_table_gbps(1 << 20);
  EXPECT_GT(gbps, 0.1);
  EXPECT_LT(gbps, 0.5);
}

TEST(Table1, SpeedupsGrowWithMAndLength) {
  // The shape of Table 1: speed-up vs. the software CRC increases with
  // both the look-ahead factor and the message length, reaching two
  // orders of magnitude at M = 128 on long messages.
  const RiscModel risc;
  double prev_m = 0;
  for (std::size_t m : {32u, 64u, 128u}) {
    const DreamCrcModel dream(catalog::crc32_ethernet(), m);
    double prev_n = 0;
    for (std::uint64_t n : {512u, 12160u, 1u << 20}) {
      const double speedup =
          static_cast<double>(risc.crc_cycles_table(n)) /
          static_cast<double>(dream.cycles_single(n));
      EXPECT_GT(speedup, prev_n) << "M=" << m << " N=" << n;
      prev_n = speedup;
    }
    const double long_speedup =
        static_cast<double>(risc.crc_cycles_table(1 << 20)) /
        static_cast<double>(dream.cycles_single(1 << 20));
    EXPECT_GT(long_speedup, prev_m);
    prev_m = long_speedup;
  }
  // M = 128, long message: ~ (7/8 cycles per bit) / (1/128 per bit) ~ 112.
  const DreamCrcModel dream(catalog::crc32_ethernet(), 128);
  const double s = static_cast<double>(risc.crc_cycles_table(1 << 20)) /
                   static_cast<double>(dream.cycles_single(1 << 20));
  EXPECT_GT(s, 80.0);
  EXPECT_LT(s, 150.0);
}

TEST(EnergyModel, DreamSitsInThePapersBand) {
  // Fig. 7: DREAM is 5-60x better than the ~400 pJ/bit RISC across the
  // Ethernet window and beyond.
  const EnergyModel energy;
  for (std::size_t m : {32u, 64u, 128u}) {
    const DreamCrcModel dream(catalog::crc32_ethernet(), m);
    for (std::uint64_t n : {384u, 1536u, 12160u}) {
      const std::uint64_t padded = (n + m - 1) / m * m;
      const double ratio =
          energy.ratio_vs_risc(dream.cycles_single(padded), padded);
      EXPECT_GE(ratio, 2.0) << "M=" << m << " N=" << n;
      EXPECT_LE(ratio, 70.0) << "M=" << m << " N=" << n;
    }
  }
  // Saturated M = 128 streaming approaches the strong end.
  const DreamCrcModel dream(catalog::crc32_ethernet(), 128);
  const double best = energy.ratio_vs_risc(dream.cycles_single(1 << 20),
                                           1 << 20);
  EXPECT_GT(best, 40.0);
  EXPECT_LT(best, 70.0);
}

TEST(DreamScramblerModel, NoContextSwitchPenalty) {
  const DreamScramblerModel model(catalog::scrambler_80211(), 128);
  EXPECT_NEAR(model.peak_gbps(), 25.6, 1e-9);
  // Only fill + control dilute the streaming rate: ~40 overhead cycles,
  // so a 512-chunk block already runs above 90% of peak and even a
  // 32-chunk block stays within ~2.5x of it (the CRC at that length is
  // much further off because of its switch + anti-transform).
  EXPECT_GT(model.throughput_gbps(128 * 512), 0.9 * model.peak_gbps());
  EXPECT_GT(model.throughput_gbps(128 * 32), 0.4 * model.peak_gbps());
}

TEST(DreamScramblerModel, FasterThanCrcAtEqualShortLength) {
  // One op vs. two ops: for short payloads the scrambler's lack of a
  // context switch shows up directly.
  const DreamCrcModel crc(catalog::crc32_ethernet(), 64);
  const DreamScramblerModel scr(catalog::scrambler_80211(), 64);
  EXPECT_LT(scr.cycles(640), crc.cycles_single(640));
}

}  // namespace
}  // namespace plfsr
