
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/accelerator_sweep_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/accelerator_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/accelerator_sweep_test.cpp.o.d"
  "/root/repo/tests/berlekamp_massey_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/berlekamp_massey_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/berlekamp_massey_test.cpp.o.d"
  "/root/repo/tests/bitstream_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/bitstream_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/bitstream_test.cpp.o.d"
  "/root/repo/tests/catalog_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/catalog_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/catalog_test.cpp.o.d"
  "/root/repo/tests/cipher_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/cipher_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/cipher_test.cpp.o.d"
  "/root/repo/tests/companion_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/companion_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/companion_test.cpp.o.d"
  "/root/repo/tests/context_schedule_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/context_schedule_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/context_schedule_test.cpp.o.d"
  "/root/repo/tests/crc_accelerator_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/crc_accelerator_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/crc_accelerator_test.cpp.o.d"
  "/root/repo/tests/crc_engines_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/crc_engines_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/crc_engines_test.cpp.o.d"
  "/root/repo/tests/crc_spec_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/crc_spec_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/crc_spec_test.cpp.o.d"
  "/root/repo/tests/derby_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/derby_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/derby_test.cpp.o.d"
  "/root/repo/tests/design_space_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/design_space_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/design_space_test.cpp.o.d"
  "/root/repo/tests/dream_model_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/dream_model_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/dream_model_test.cpp.o.d"
  "/root/repo/tests/dvb_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/dvb_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/dvb_test.cpp.o.d"
  "/root/repo/tests/e0_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/e0_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/e0_test.cpp.o.d"
  "/root/repo/tests/error_model_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/error_model_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/error_model_test.cpp.o.d"
  "/root/repo/tests/ethernet_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/ethernet_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/ethernet_test.cpp.o.d"
  "/root/repo/tests/gf2_matrix_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/gf2_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/gf2_matrix_test.cpp.o.d"
  "/root/repo/tests/gf2_poly_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/gf2_poly_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/gf2_poly_test.cpp.o.d"
  "/root/repo/tests/gf2_vec_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/gf2_vec_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/gf2_vec_test.cpp.o.d"
  "/root/repo/tests/griffy_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/griffy_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/griffy_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/linear_system_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/linear_system_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/linear_system_test.cpp.o.d"
  "/root/repo/tests/lookahead_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/lookahead_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/lookahead_test.cpp.o.d"
  "/root/repo/tests/matrix_mapper_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/matrix_mapper_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/matrix_mapper_test.cpp.o.d"
  "/root/repo/tests/op_builder_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/op_builder_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/op_builder_test.cpp.o.d"
  "/root/repo/tests/picoga_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/picoga_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/picoga_test.cpp.o.d"
  "/root/repo/tests/report_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/report_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/report_test.cpp.o.d"
  "/root/repo/tests/rng_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/rng_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/rng_test.cpp.o.d"
  "/root/repo/tests/routing_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/routing_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/routing_test.cpp.o.d"
  "/root/repo/tests/scrambler_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/scrambler_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/scrambler_test.cpp.o.d"
  "/root/repo/tests/spreader_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/spreader_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/spreader_test.cpp.o.d"
  "/root/repo/tests/ucrc_model_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/ucrc_model_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/ucrc_model_test.cpp.o.d"
  "/root/repo/tests/vcd_trace_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/vcd_trace_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/vcd_trace_test.cpp.o.d"
  "/root/repo/tests/verilog_gen_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/verilog_gen_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/verilog_gen_test.cpp.o.d"
  "/root/repo/tests/wide_table_crc_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/wide_table_crc_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/wide_table_crc_test.cpp.o.d"
  "/root/repo/tests/wifi_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/wifi_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/wifi_test.cpp.o.d"
  "/root/repo/tests/xor_netlist_test.cpp" "tests/CMakeFiles/plfsr_tests.dir/xor_netlist_test.cpp.o" "gcc" "tests/CMakeFiles/plfsr_tests.dir/xor_netlist_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dream/CMakeFiles/plfsr_dream.dir/DependInfo.cmake"
  "/root/repo/build/src/picoga/CMakeFiles/plfsr_picoga.dir/DependInfo.cmake"
  "/root/repo/build/src/asicmodel/CMakeFiles/plfsr_asicmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/mapper/CMakeFiles/plfsr_mapper.dir/DependInfo.cmake"
  "/root/repo/build/src/crc/CMakeFiles/plfsr_crc.dir/DependInfo.cmake"
  "/root/repo/build/src/scrambler/CMakeFiles/plfsr_scrambler.dir/DependInfo.cmake"
  "/root/repo/build/src/cipher/CMakeFiles/plfsr_cipher.dir/DependInfo.cmake"
  "/root/repo/build/src/lfsr/CMakeFiles/plfsr_lfsr.dir/DependInfo.cmake"
  "/root/repo/build/src/gf2/CMakeFiles/plfsr_gf2.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/plfsr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
