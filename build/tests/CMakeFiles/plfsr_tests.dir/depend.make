# Empty dependencies file for plfsr_tests.
# This may be replaced when dependencies are built.
