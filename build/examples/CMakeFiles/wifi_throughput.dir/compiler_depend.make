# Empty compiler generated dependencies file for wifi_throughput.
# This may be replaced when dependencies are built.
