file(REMOVE_RECURSE
  "CMakeFiles/wifi_throughput.dir/wifi_throughput.cpp.o"
  "CMakeFiles/wifi_throughput.dir/wifi_throughput.cpp.o.d"
  "wifi_throughput"
  "wifi_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wifi_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
