# Empty dependencies file for ethernet_offload.
# This may be replaced when dependencies are built.
