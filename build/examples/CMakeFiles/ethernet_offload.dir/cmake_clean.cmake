file(REMOVE_RECURSE
  "CMakeFiles/ethernet_offload.dir/ethernet_offload.cpp.o"
  "CMakeFiles/ethernet_offload.dir/ethernet_offload.cpp.o.d"
  "ethernet_offload"
  "ethernet_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethernet_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
