file(REMOVE_RECURSE
  "CMakeFiles/scrambler_recovery.dir/scrambler_recovery.cpp.o"
  "CMakeFiles/scrambler_recovery.dir/scrambler_recovery.cpp.o.d"
  "scrambler_recovery"
  "scrambler_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrambler_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
