# Empty compiler generated dependencies file for scrambler_recovery.
# This may be replaced when dependencies are built.
