# Empty compiler generated dependencies file for gsm_privacy.
# This may be replaced when dependencies are built.
