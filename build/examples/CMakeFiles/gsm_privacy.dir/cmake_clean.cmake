file(REMOVE_RECURSE
  "CMakeFiles/gsm_privacy.dir/gsm_privacy.cpp.o"
  "CMakeFiles/gsm_privacy.dir/gsm_privacy.cpp.o.d"
  "gsm_privacy"
  "gsm_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsm_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
