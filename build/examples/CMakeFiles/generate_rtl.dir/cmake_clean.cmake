file(REMOVE_RECURSE
  "CMakeFiles/generate_rtl.dir/generate_rtl.cpp.o"
  "CMakeFiles/generate_rtl.dir/generate_rtl.cpp.o.d"
  "generate_rtl"
  "generate_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
