file(REMOVE_RECURSE
  "CMakeFiles/multistandard_modem.dir/multistandard_modem.cpp.o"
  "CMakeFiles/multistandard_modem.dir/multistandard_modem.cpp.o.d"
  "multistandard_modem"
  "multistandard_modem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multistandard_modem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
