# Empty dependencies file for multistandard_modem.
# This may be replaced when dependencies are built.
