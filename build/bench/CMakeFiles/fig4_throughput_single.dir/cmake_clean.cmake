file(REMOVE_RECURSE
  "CMakeFiles/fig4_throughput_single.dir/fig4_throughput_single.cpp.o"
  "CMakeFiles/fig4_throughput_single.dir/fig4_throughput_single.cpp.o.d"
  "fig4_throughput_single"
  "fig4_throughput_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_throughput_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
