file(REMOVE_RECURSE
  "CMakeFiles/ablation_derby_cse.dir/ablation_derby_cse.cpp.o"
  "CMakeFiles/ablation_derby_cse.dir/ablation_derby_cse.cpp.o.d"
  "ablation_derby_cse"
  "ablation_derby_cse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_derby_cse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
