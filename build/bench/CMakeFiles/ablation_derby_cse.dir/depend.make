# Empty dependencies file for ablation_derby_cse.
# This may be replaced when dependencies are built.
