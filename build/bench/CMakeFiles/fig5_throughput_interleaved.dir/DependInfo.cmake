
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_throughput_interleaved.cpp" "bench/CMakeFiles/fig5_throughput_interleaved.dir/fig5_throughput_interleaved.cpp.o" "gcc" "bench/CMakeFiles/fig5_throughput_interleaved.dir/fig5_throughput_interleaved.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dream/CMakeFiles/plfsr_dream.dir/DependInfo.cmake"
  "/root/repo/build/src/picoga/CMakeFiles/plfsr_picoga.dir/DependInfo.cmake"
  "/root/repo/build/src/asicmodel/CMakeFiles/plfsr_asicmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/mapper/CMakeFiles/plfsr_mapper.dir/DependInfo.cmake"
  "/root/repo/build/src/crc/CMakeFiles/plfsr_crc.dir/DependInfo.cmake"
  "/root/repo/build/src/scrambler/CMakeFiles/plfsr_scrambler.dir/DependInfo.cmake"
  "/root/repo/build/src/cipher/CMakeFiles/plfsr_cipher.dir/DependInfo.cmake"
  "/root/repo/build/src/lfsr/CMakeFiles/plfsr_lfsr.dir/DependInfo.cmake"
  "/root/repo/build/src/gf2/CMakeFiles/plfsr_gf2.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/plfsr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
