# Empty compiler generated dependencies file for fig5_throughput_interleaved.
# This may be replaced when dependencies are built.
