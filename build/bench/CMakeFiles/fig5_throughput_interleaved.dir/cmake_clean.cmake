file(REMOVE_RECURSE
  "CMakeFiles/fig5_throughput_interleaved.dir/fig5_throughput_interleaved.cpp.o"
  "CMakeFiles/fig5_throughput_interleaved.dir/fig5_throughput_interleaved.cpp.o.d"
  "fig5_throughput_interleaved"
  "fig5_throughput_interleaved.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_throughput_interleaved.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
