# Empty compiler generated dependencies file for fig8_scrambler.
# This may be replaced when dependencies are built.
