file(REMOVE_RECURSE
  "CMakeFiles/fig8_scrambler.dir/fig8_scrambler.cpp.o"
  "CMakeFiles/fig8_scrambler.dir/fig8_scrambler.cpp.o.d"
  "fig8_scrambler"
  "fig8_scrambler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_scrambler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
