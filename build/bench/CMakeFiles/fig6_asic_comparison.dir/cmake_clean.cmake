file(REMOVE_RECURSE
  "CMakeFiles/fig6_asic_comparison.dir/fig6_asic_comparison.cpp.o"
  "CMakeFiles/fig6_asic_comparison.dir/fig6_asic_comparison.cpp.o.d"
  "fig6_asic_comparison"
  "fig6_asic_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_asic_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
