# Empty dependencies file for fig6_asic_comparison.
# This may be replaced when dependencies are built.
