# Empty compiler generated dependencies file for bench_crc_engines.
# This may be replaced when dependencies are built.
