file(REMOVE_RECURSE
  "CMakeFiles/bench_crc_engines.dir/bench_crc_engines.cpp.o"
  "CMakeFiles/bench_crc_engines.dir/bench_crc_engines.cpp.o.d"
  "bench_crc_engines"
  "bench_crc_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crc_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
