# Empty compiler generated dependencies file for ablation_cell_width.
# This may be replaced when dependencies are built.
