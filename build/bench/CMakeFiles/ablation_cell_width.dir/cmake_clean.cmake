file(REMOVE_RECURSE
  "CMakeFiles/ablation_cell_width.dir/ablation_cell_width.cpp.o"
  "CMakeFiles/ablation_cell_width.dir/ablation_cell_width.cpp.o.d"
  "ablation_cell_width"
  "ablation_cell_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cell_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
