# Empty dependencies file for mapper_design_space.
# This may be replaced when dependencies are built.
