file(REMOVE_RECURSE
  "CMakeFiles/mapper_design_space.dir/mapper_design_space.cpp.o"
  "CMakeFiles/mapper_design_space.dir/mapper_design_space.cpp.o.d"
  "mapper_design_space"
  "mapper_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapper_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
