# Empty compiler generated dependencies file for table1_speedup.
# This may be replaced when dependencies are built.
