file(REMOVE_RECURSE
  "CMakeFiles/table1_speedup.dir/table1_speedup.cpp.o"
  "CMakeFiles/table1_speedup.dir/table1_speedup.cpp.o.d"
  "table1_speedup"
  "table1_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
