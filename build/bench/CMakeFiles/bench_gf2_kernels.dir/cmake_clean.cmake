file(REMOVE_RECURSE
  "CMakeFiles/bench_gf2_kernels.dir/bench_gf2_kernels.cpp.o"
  "CMakeFiles/bench_gf2_kernels.dir/bench_gf2_kernels.cpp.o.d"
  "bench_gf2_kernels"
  "bench_gf2_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gf2_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
