# Empty dependencies file for bench_gf2_kernels.
# This may be replaced when dependencies are built.
