
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scrambler/dvb.cpp" "src/scrambler/CMakeFiles/plfsr_scrambler.dir/dvb.cpp.o" "gcc" "src/scrambler/CMakeFiles/plfsr_scrambler.dir/dvb.cpp.o.d"
  "/root/repo/src/scrambler/scrambler.cpp" "src/scrambler/CMakeFiles/plfsr_scrambler.dir/scrambler.cpp.o" "gcc" "src/scrambler/CMakeFiles/plfsr_scrambler.dir/scrambler.cpp.o.d"
  "/root/repo/src/scrambler/spreader.cpp" "src/scrambler/CMakeFiles/plfsr_scrambler.dir/spreader.cpp.o" "gcc" "src/scrambler/CMakeFiles/plfsr_scrambler.dir/spreader.cpp.o.d"
  "/root/repo/src/scrambler/wifi.cpp" "src/scrambler/CMakeFiles/plfsr_scrambler.dir/wifi.cpp.o" "gcc" "src/scrambler/CMakeFiles/plfsr_scrambler.dir/wifi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lfsr/CMakeFiles/plfsr_lfsr.dir/DependInfo.cmake"
  "/root/repo/build/src/gf2/CMakeFiles/plfsr_gf2.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/plfsr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
