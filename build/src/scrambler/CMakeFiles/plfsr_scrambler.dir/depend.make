# Empty dependencies file for plfsr_scrambler.
# This may be replaced when dependencies are built.
