file(REMOVE_RECURSE
  "libplfsr_scrambler.a"
)
