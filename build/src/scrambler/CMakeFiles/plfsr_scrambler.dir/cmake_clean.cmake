file(REMOVE_RECURSE
  "CMakeFiles/plfsr_scrambler.dir/dvb.cpp.o"
  "CMakeFiles/plfsr_scrambler.dir/dvb.cpp.o.d"
  "CMakeFiles/plfsr_scrambler.dir/scrambler.cpp.o"
  "CMakeFiles/plfsr_scrambler.dir/scrambler.cpp.o.d"
  "CMakeFiles/plfsr_scrambler.dir/spreader.cpp.o"
  "CMakeFiles/plfsr_scrambler.dir/spreader.cpp.o.d"
  "CMakeFiles/plfsr_scrambler.dir/wifi.cpp.o"
  "CMakeFiles/plfsr_scrambler.dir/wifi.cpp.o.d"
  "libplfsr_scrambler.a"
  "libplfsr_scrambler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plfsr_scrambler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
