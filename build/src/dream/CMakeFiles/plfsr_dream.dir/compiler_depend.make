# Empty compiler generated dependencies file for plfsr_dream.
# This may be replaced when dependencies are built.
