file(REMOVE_RECURSE
  "libplfsr_dream.a"
)
