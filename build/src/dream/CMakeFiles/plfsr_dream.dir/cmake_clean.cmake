file(REMOVE_RECURSE
  "CMakeFiles/plfsr_dream.dir/context_schedule.cpp.o"
  "CMakeFiles/plfsr_dream.dir/context_schedule.cpp.o.d"
  "CMakeFiles/plfsr_dream.dir/dream_model.cpp.o"
  "CMakeFiles/plfsr_dream.dir/dream_model.cpp.o.d"
  "CMakeFiles/plfsr_dream.dir/scrambler_model.cpp.o"
  "CMakeFiles/plfsr_dream.dir/scrambler_model.cpp.o.d"
  "libplfsr_dream.a"
  "libplfsr_dream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plfsr_dream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
