# Empty dependencies file for plfsr_lfsr.
# This may be replaced when dependencies are built.
