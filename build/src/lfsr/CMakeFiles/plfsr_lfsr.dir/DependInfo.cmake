
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lfsr/berlekamp_massey.cpp" "src/lfsr/CMakeFiles/plfsr_lfsr.dir/berlekamp_massey.cpp.o" "gcc" "src/lfsr/CMakeFiles/plfsr_lfsr.dir/berlekamp_massey.cpp.o.d"
  "/root/repo/src/lfsr/catalog.cpp" "src/lfsr/CMakeFiles/plfsr_lfsr.dir/catalog.cpp.o" "gcc" "src/lfsr/CMakeFiles/plfsr_lfsr.dir/catalog.cpp.o.d"
  "/root/repo/src/lfsr/companion.cpp" "src/lfsr/CMakeFiles/plfsr_lfsr.dir/companion.cpp.o" "gcc" "src/lfsr/CMakeFiles/plfsr_lfsr.dir/companion.cpp.o.d"
  "/root/repo/src/lfsr/derby.cpp" "src/lfsr/CMakeFiles/plfsr_lfsr.dir/derby.cpp.o" "gcc" "src/lfsr/CMakeFiles/plfsr_lfsr.dir/derby.cpp.o.d"
  "/root/repo/src/lfsr/linear_system.cpp" "src/lfsr/CMakeFiles/plfsr_lfsr.dir/linear_system.cpp.o" "gcc" "src/lfsr/CMakeFiles/plfsr_lfsr.dir/linear_system.cpp.o.d"
  "/root/repo/src/lfsr/lookahead.cpp" "src/lfsr/CMakeFiles/plfsr_lfsr.dir/lookahead.cpp.o" "gcc" "src/lfsr/CMakeFiles/plfsr_lfsr.dir/lookahead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gf2/CMakeFiles/plfsr_gf2.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/plfsr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
