file(REMOVE_RECURSE
  "libplfsr_lfsr.a"
)
