file(REMOVE_RECURSE
  "CMakeFiles/plfsr_lfsr.dir/berlekamp_massey.cpp.o"
  "CMakeFiles/plfsr_lfsr.dir/berlekamp_massey.cpp.o.d"
  "CMakeFiles/plfsr_lfsr.dir/catalog.cpp.o"
  "CMakeFiles/plfsr_lfsr.dir/catalog.cpp.o.d"
  "CMakeFiles/plfsr_lfsr.dir/companion.cpp.o"
  "CMakeFiles/plfsr_lfsr.dir/companion.cpp.o.d"
  "CMakeFiles/plfsr_lfsr.dir/derby.cpp.o"
  "CMakeFiles/plfsr_lfsr.dir/derby.cpp.o.d"
  "CMakeFiles/plfsr_lfsr.dir/linear_system.cpp.o"
  "CMakeFiles/plfsr_lfsr.dir/linear_system.cpp.o.d"
  "CMakeFiles/plfsr_lfsr.dir/lookahead.cpp.o"
  "CMakeFiles/plfsr_lfsr.dir/lookahead.cpp.o.d"
  "libplfsr_lfsr.a"
  "libplfsr_lfsr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plfsr_lfsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
