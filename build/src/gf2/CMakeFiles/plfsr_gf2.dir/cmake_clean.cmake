file(REMOVE_RECURSE
  "CMakeFiles/plfsr_gf2.dir/gf2_matrix.cpp.o"
  "CMakeFiles/plfsr_gf2.dir/gf2_matrix.cpp.o.d"
  "CMakeFiles/plfsr_gf2.dir/gf2_poly.cpp.o"
  "CMakeFiles/plfsr_gf2.dir/gf2_poly.cpp.o.d"
  "CMakeFiles/plfsr_gf2.dir/gf2_vec.cpp.o"
  "CMakeFiles/plfsr_gf2.dir/gf2_vec.cpp.o.d"
  "libplfsr_gf2.a"
  "libplfsr_gf2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plfsr_gf2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
