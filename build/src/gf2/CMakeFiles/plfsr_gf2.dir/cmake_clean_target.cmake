file(REMOVE_RECURSE
  "libplfsr_gf2.a"
)
