# Empty dependencies file for plfsr_gf2.
# This may be replaced when dependencies are built.
