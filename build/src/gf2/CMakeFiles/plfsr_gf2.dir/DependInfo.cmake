
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gf2/gf2_matrix.cpp" "src/gf2/CMakeFiles/plfsr_gf2.dir/gf2_matrix.cpp.o" "gcc" "src/gf2/CMakeFiles/plfsr_gf2.dir/gf2_matrix.cpp.o.d"
  "/root/repo/src/gf2/gf2_poly.cpp" "src/gf2/CMakeFiles/plfsr_gf2.dir/gf2_poly.cpp.o" "gcc" "src/gf2/CMakeFiles/plfsr_gf2.dir/gf2_poly.cpp.o.d"
  "/root/repo/src/gf2/gf2_vec.cpp" "src/gf2/CMakeFiles/plfsr_gf2.dir/gf2_vec.cpp.o" "gcc" "src/gf2/CMakeFiles/plfsr_gf2.dir/gf2_vec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/plfsr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
