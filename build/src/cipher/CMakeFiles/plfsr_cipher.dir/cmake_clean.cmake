file(REMOVE_RECURSE
  "CMakeFiles/plfsr_cipher.dir/a51.cpp.o"
  "CMakeFiles/plfsr_cipher.dir/a51.cpp.o.d"
  "CMakeFiles/plfsr_cipher.dir/combiner.cpp.o"
  "CMakeFiles/plfsr_cipher.dir/combiner.cpp.o.d"
  "CMakeFiles/plfsr_cipher.dir/e0.cpp.o"
  "CMakeFiles/plfsr_cipher.dir/e0.cpp.o.d"
  "libplfsr_cipher.a"
  "libplfsr_cipher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plfsr_cipher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
