file(REMOVE_RECURSE
  "libplfsr_cipher.a"
)
