# Empty dependencies file for plfsr_cipher.
# This may be replaced when dependencies are built.
