
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cipher/a51.cpp" "src/cipher/CMakeFiles/plfsr_cipher.dir/a51.cpp.o" "gcc" "src/cipher/CMakeFiles/plfsr_cipher.dir/a51.cpp.o.d"
  "/root/repo/src/cipher/combiner.cpp" "src/cipher/CMakeFiles/plfsr_cipher.dir/combiner.cpp.o" "gcc" "src/cipher/CMakeFiles/plfsr_cipher.dir/combiner.cpp.o.d"
  "/root/repo/src/cipher/e0.cpp" "src/cipher/CMakeFiles/plfsr_cipher.dir/e0.cpp.o" "gcc" "src/cipher/CMakeFiles/plfsr_cipher.dir/e0.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lfsr/CMakeFiles/plfsr_lfsr.dir/DependInfo.cmake"
  "/root/repo/build/src/gf2/CMakeFiles/plfsr_gf2.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/plfsr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
