# Empty compiler generated dependencies file for plfsr_support.
# This may be replaced when dependencies are built.
