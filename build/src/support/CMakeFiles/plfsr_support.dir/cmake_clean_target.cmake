file(REMOVE_RECURSE
  "libplfsr_support.a"
)
