file(REMOVE_RECURSE
  "CMakeFiles/plfsr_support.dir/bitstream.cpp.o"
  "CMakeFiles/plfsr_support.dir/bitstream.cpp.o.d"
  "CMakeFiles/plfsr_support.dir/report.cpp.o"
  "CMakeFiles/plfsr_support.dir/report.cpp.o.d"
  "libplfsr_support.a"
  "libplfsr_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plfsr_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
