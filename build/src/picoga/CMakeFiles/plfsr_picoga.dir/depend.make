# Empty dependencies file for plfsr_picoga.
# This may be replaced when dependencies are built.
