file(REMOVE_RECURSE
  "CMakeFiles/plfsr_picoga.dir/array.cpp.o"
  "CMakeFiles/plfsr_picoga.dir/array.cpp.o.d"
  "CMakeFiles/plfsr_picoga.dir/crc_accelerator.cpp.o"
  "CMakeFiles/plfsr_picoga.dir/crc_accelerator.cpp.o.d"
  "CMakeFiles/plfsr_picoga.dir/pga_op.cpp.o"
  "CMakeFiles/plfsr_picoga.dir/pga_op.cpp.o.d"
  "CMakeFiles/plfsr_picoga.dir/rlc_cell.cpp.o"
  "CMakeFiles/plfsr_picoga.dir/rlc_cell.cpp.o.d"
  "CMakeFiles/plfsr_picoga.dir/routing.cpp.o"
  "CMakeFiles/plfsr_picoga.dir/routing.cpp.o.d"
  "CMakeFiles/plfsr_picoga.dir/vcd_trace.cpp.o"
  "CMakeFiles/plfsr_picoga.dir/vcd_trace.cpp.o.d"
  "libplfsr_picoga.a"
  "libplfsr_picoga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plfsr_picoga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
