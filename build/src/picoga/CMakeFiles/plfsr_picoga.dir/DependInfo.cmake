
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/picoga/array.cpp" "src/picoga/CMakeFiles/plfsr_picoga.dir/array.cpp.o" "gcc" "src/picoga/CMakeFiles/plfsr_picoga.dir/array.cpp.o.d"
  "/root/repo/src/picoga/crc_accelerator.cpp" "src/picoga/CMakeFiles/plfsr_picoga.dir/crc_accelerator.cpp.o" "gcc" "src/picoga/CMakeFiles/plfsr_picoga.dir/crc_accelerator.cpp.o.d"
  "/root/repo/src/picoga/pga_op.cpp" "src/picoga/CMakeFiles/plfsr_picoga.dir/pga_op.cpp.o" "gcc" "src/picoga/CMakeFiles/plfsr_picoga.dir/pga_op.cpp.o.d"
  "/root/repo/src/picoga/rlc_cell.cpp" "src/picoga/CMakeFiles/plfsr_picoga.dir/rlc_cell.cpp.o" "gcc" "src/picoga/CMakeFiles/plfsr_picoga.dir/rlc_cell.cpp.o.d"
  "/root/repo/src/picoga/routing.cpp" "src/picoga/CMakeFiles/plfsr_picoga.dir/routing.cpp.o" "gcc" "src/picoga/CMakeFiles/plfsr_picoga.dir/routing.cpp.o.d"
  "/root/repo/src/picoga/vcd_trace.cpp" "src/picoga/CMakeFiles/plfsr_picoga.dir/vcd_trace.cpp.o" "gcc" "src/picoga/CMakeFiles/plfsr_picoga.dir/vcd_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapper/CMakeFiles/plfsr_mapper.dir/DependInfo.cmake"
  "/root/repo/build/src/lfsr/CMakeFiles/plfsr_lfsr.dir/DependInfo.cmake"
  "/root/repo/build/src/gf2/CMakeFiles/plfsr_gf2.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/plfsr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
