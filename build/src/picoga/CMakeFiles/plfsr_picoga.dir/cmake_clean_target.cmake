file(REMOVE_RECURSE
  "libplfsr_picoga.a"
)
