
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asicmodel/ucrc_model.cpp" "src/asicmodel/CMakeFiles/plfsr_asicmodel.dir/ucrc_model.cpp.o" "gcc" "src/asicmodel/CMakeFiles/plfsr_asicmodel.dir/ucrc_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lfsr/CMakeFiles/plfsr_lfsr.dir/DependInfo.cmake"
  "/root/repo/build/src/gf2/CMakeFiles/plfsr_gf2.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/plfsr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
