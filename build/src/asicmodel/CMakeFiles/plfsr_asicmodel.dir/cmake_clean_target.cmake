file(REMOVE_RECURSE
  "libplfsr_asicmodel.a"
)
