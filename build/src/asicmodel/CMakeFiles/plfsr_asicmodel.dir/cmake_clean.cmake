file(REMOVE_RECURSE
  "CMakeFiles/plfsr_asicmodel.dir/ucrc_model.cpp.o"
  "CMakeFiles/plfsr_asicmodel.dir/ucrc_model.cpp.o.d"
  "libplfsr_asicmodel.a"
  "libplfsr_asicmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plfsr_asicmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
