# Empty compiler generated dependencies file for plfsr_asicmodel.
# This may be replaced when dependencies are built.
