# Empty compiler generated dependencies file for plfsr_crc.
# This may be replaced when dependencies are built.
