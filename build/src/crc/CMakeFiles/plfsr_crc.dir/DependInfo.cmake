
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crc/crc_spec.cpp" "src/crc/CMakeFiles/plfsr_crc.dir/crc_spec.cpp.o" "gcc" "src/crc/CMakeFiles/plfsr_crc.dir/crc_spec.cpp.o.d"
  "/root/repo/src/crc/derby_crc.cpp" "src/crc/CMakeFiles/plfsr_crc.dir/derby_crc.cpp.o" "gcc" "src/crc/CMakeFiles/plfsr_crc.dir/derby_crc.cpp.o.d"
  "/root/repo/src/crc/error_model.cpp" "src/crc/CMakeFiles/plfsr_crc.dir/error_model.cpp.o" "gcc" "src/crc/CMakeFiles/plfsr_crc.dir/error_model.cpp.o.d"
  "/root/repo/src/crc/ethernet.cpp" "src/crc/CMakeFiles/plfsr_crc.dir/ethernet.cpp.o" "gcc" "src/crc/CMakeFiles/plfsr_crc.dir/ethernet.cpp.o.d"
  "/root/repo/src/crc/gfmac_crc.cpp" "src/crc/CMakeFiles/plfsr_crc.dir/gfmac_crc.cpp.o" "gcc" "src/crc/CMakeFiles/plfsr_crc.dir/gfmac_crc.cpp.o.d"
  "/root/repo/src/crc/matrix_crc.cpp" "src/crc/CMakeFiles/plfsr_crc.dir/matrix_crc.cpp.o" "gcc" "src/crc/CMakeFiles/plfsr_crc.dir/matrix_crc.cpp.o.d"
  "/root/repo/src/crc/serial_crc.cpp" "src/crc/CMakeFiles/plfsr_crc.dir/serial_crc.cpp.o" "gcc" "src/crc/CMakeFiles/plfsr_crc.dir/serial_crc.cpp.o.d"
  "/root/repo/src/crc/slicing_crc.cpp" "src/crc/CMakeFiles/plfsr_crc.dir/slicing_crc.cpp.o" "gcc" "src/crc/CMakeFiles/plfsr_crc.dir/slicing_crc.cpp.o.d"
  "/root/repo/src/crc/table_crc.cpp" "src/crc/CMakeFiles/plfsr_crc.dir/table_crc.cpp.o" "gcc" "src/crc/CMakeFiles/plfsr_crc.dir/table_crc.cpp.o.d"
  "/root/repo/src/crc/wide_table_crc.cpp" "src/crc/CMakeFiles/plfsr_crc.dir/wide_table_crc.cpp.o" "gcc" "src/crc/CMakeFiles/plfsr_crc.dir/wide_table_crc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lfsr/CMakeFiles/plfsr_lfsr.dir/DependInfo.cmake"
  "/root/repo/build/src/gf2/CMakeFiles/plfsr_gf2.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/plfsr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
