file(REMOVE_RECURSE
  "libplfsr_crc.a"
)
