file(REMOVE_RECURSE
  "CMakeFiles/plfsr_crc.dir/crc_spec.cpp.o"
  "CMakeFiles/plfsr_crc.dir/crc_spec.cpp.o.d"
  "CMakeFiles/plfsr_crc.dir/derby_crc.cpp.o"
  "CMakeFiles/plfsr_crc.dir/derby_crc.cpp.o.d"
  "CMakeFiles/plfsr_crc.dir/error_model.cpp.o"
  "CMakeFiles/plfsr_crc.dir/error_model.cpp.o.d"
  "CMakeFiles/plfsr_crc.dir/ethernet.cpp.o"
  "CMakeFiles/plfsr_crc.dir/ethernet.cpp.o.d"
  "CMakeFiles/plfsr_crc.dir/gfmac_crc.cpp.o"
  "CMakeFiles/plfsr_crc.dir/gfmac_crc.cpp.o.d"
  "CMakeFiles/plfsr_crc.dir/matrix_crc.cpp.o"
  "CMakeFiles/plfsr_crc.dir/matrix_crc.cpp.o.d"
  "CMakeFiles/plfsr_crc.dir/serial_crc.cpp.o"
  "CMakeFiles/plfsr_crc.dir/serial_crc.cpp.o.d"
  "CMakeFiles/plfsr_crc.dir/slicing_crc.cpp.o"
  "CMakeFiles/plfsr_crc.dir/slicing_crc.cpp.o.d"
  "CMakeFiles/plfsr_crc.dir/table_crc.cpp.o"
  "CMakeFiles/plfsr_crc.dir/table_crc.cpp.o.d"
  "CMakeFiles/plfsr_crc.dir/wide_table_crc.cpp.o"
  "CMakeFiles/plfsr_crc.dir/wide_table_crc.cpp.o.d"
  "libplfsr_crc.a"
  "libplfsr_crc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plfsr_crc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
