# Empty dependencies file for plfsr_mapper.
# This may be replaced when dependencies are built.
