file(REMOVE_RECURSE
  "libplfsr_mapper.a"
)
