
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapper/design_space.cpp" "src/mapper/CMakeFiles/plfsr_mapper.dir/design_space.cpp.o" "gcc" "src/mapper/CMakeFiles/plfsr_mapper.dir/design_space.cpp.o.d"
  "/root/repo/src/mapper/griffy.cpp" "src/mapper/CMakeFiles/plfsr_mapper.dir/griffy.cpp.o" "gcc" "src/mapper/CMakeFiles/plfsr_mapper.dir/griffy.cpp.o.d"
  "/root/repo/src/mapper/matrix_mapper.cpp" "src/mapper/CMakeFiles/plfsr_mapper.dir/matrix_mapper.cpp.o" "gcc" "src/mapper/CMakeFiles/plfsr_mapper.dir/matrix_mapper.cpp.o.d"
  "/root/repo/src/mapper/op_builder.cpp" "src/mapper/CMakeFiles/plfsr_mapper.dir/op_builder.cpp.o" "gcc" "src/mapper/CMakeFiles/plfsr_mapper.dir/op_builder.cpp.o.d"
  "/root/repo/src/mapper/verilog_gen.cpp" "src/mapper/CMakeFiles/plfsr_mapper.dir/verilog_gen.cpp.o" "gcc" "src/mapper/CMakeFiles/plfsr_mapper.dir/verilog_gen.cpp.o.d"
  "/root/repo/src/mapper/xor_netlist.cpp" "src/mapper/CMakeFiles/plfsr_mapper.dir/xor_netlist.cpp.o" "gcc" "src/mapper/CMakeFiles/plfsr_mapper.dir/xor_netlist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lfsr/CMakeFiles/plfsr_lfsr.dir/DependInfo.cmake"
  "/root/repo/build/src/gf2/CMakeFiles/plfsr_gf2.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/plfsr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
