file(REMOVE_RECURSE
  "CMakeFiles/plfsr_mapper.dir/design_space.cpp.o"
  "CMakeFiles/plfsr_mapper.dir/design_space.cpp.o.d"
  "CMakeFiles/plfsr_mapper.dir/griffy.cpp.o"
  "CMakeFiles/plfsr_mapper.dir/griffy.cpp.o.d"
  "CMakeFiles/plfsr_mapper.dir/matrix_mapper.cpp.o"
  "CMakeFiles/plfsr_mapper.dir/matrix_mapper.cpp.o.d"
  "CMakeFiles/plfsr_mapper.dir/op_builder.cpp.o"
  "CMakeFiles/plfsr_mapper.dir/op_builder.cpp.o.d"
  "CMakeFiles/plfsr_mapper.dir/verilog_gen.cpp.o"
  "CMakeFiles/plfsr_mapper.dir/verilog_gen.cpp.o.d"
  "CMakeFiles/plfsr_mapper.dir/xor_netlist.cpp.o"
  "CMakeFiles/plfsr_mapper.dir/xor_netlist.cpp.o.d"
  "libplfsr_mapper.a"
  "libplfsr_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plfsr_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
