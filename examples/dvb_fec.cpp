// DVB outer-code chain on the host engines: MPEG transport-stream
// packets run through the EN 300 429 energy-dispersal randomizer and the
// RS(204,188) outer code — the exact scrambler + FEC pairing of the
// paper's "Digital Broadcasting" domain, with every 188-byte TS packet
// becoming one shortened RS block (the real DVB framing).
//
// Two receivers process the same impaired channel stream:
//   - the sharded batch codec (ParallelFec): the whole multiplex decoded
//     across worker threads, blocks being independent codewords;
//   - the streaming pipeline (src/pipeline): randomized packet groups
//     flowing through fec-encode -> fec-corrupt -> fec-decode stages on
//     dedicated threads, the software analogue of the PiCoGA row
//     pipeline, with the channel injector itself a pipeline stage.
//
// The channel saturates the code's mixed radius (6 symbol errors + 4
// marked erasures per block; 2e + r = n - k = 16), so the decoder works
// for every single packet. Both receivers must hand back the original
// transport stream bit-exactly after derandomizing; any mismatch (or a
// failed block, or an impairment count that disagrees with what was
// injected) exits nonzero.
//
//   $ ./dvb_fec
#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <vector>

#include "fec/fec_registry.hpp"
#include "fec/parallel_fec.hpp"
#include "pipeline/fec_stages.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/stages.hpp"
#include "scrambler/dvb.hpp"
#include "support/report.hpp"
#include "support/rng.hpp"

namespace {

using namespace plfsr;

constexpr std::size_t kPackets = 512;  // 64 dispersal groups, ~94 KiB
constexpr std::size_t kErrorsPerBlock = 6;
constexpr std::size_t kErasuresPerBlock = 4;  // 2*6 + 4 == n - k
constexpr std::uint64_t kChannelSeed = 0xD7B;

std::vector<std::uint32_t> distinct_positions(Rng& rng, std::size_t len,
                                              std::size_t count) {
  std::vector<std::uint32_t> out;
  while (out.size() < count) {
    const auto p = static_cast<std::uint32_t>(rng.next_below(len));
    if (std::find(out.begin(), out.end(), p) == out.end()) out.push_back(p);
  }
  return out;
}

double mbps(std::size_t bytes, std::chrono::steady_clock::time_point t0) {
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return bytes / 1e6 / s;
}

}  // namespace

int main() {
  bool ok = true;
  ReportTable table({"path", "payload MB/s", "corrected", "erasures"});

  // --- Transmitter: TS multiplex -> energy dispersal -> RS(204,188) ----
  const std::vector<std::uint8_t> ts = dvb::make_test_stream(kPackets, 2026);
  const std::vector<std::uint8_t> randomized = dvb::randomize(ts);

  const FecCodecHandle codec =
      FecRegistry::instance().best_for(fec::rs_204_188());
  const ParallelFec fec(codec, 4);
  std::vector<std::uint8_t> channel(fec.encoded_size(randomized.size()));
  fec.encode(randomized, channel);

  // Every TS packet is exactly one RS block (data_bytes == 188), the
  // real DVB outer-code framing.
  const std::size_t blocks = fec_block_count(*codec, channel.size());
  if (blocks != kPackets) {
    std::cout << "FAIL: expected one RS block per TS packet, got " << blocks
              << " blocks for " << kPackets << " packets\n";
    return 1;
  }

  // --- Channel: saturate the mixed radius in every block ---------------
  Rng rng(kChannelSeed);
  std::vector<std::uint32_t> erasures;
  const std::size_t cb = codec->code_bytes();
  for (std::size_t b = 0; b < blocks; ++b) {
    const auto pos = distinct_positions(
        rng, cb, kErrorsPerBlock + kErasuresPerBlock);
    for (std::size_t i = 0; i < kErrorsPerBlock; ++i)
      channel[b * cb + pos[i]] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
    for (std::size_t i = kErrorsPerBlock; i < pos.size(); ++i) {
      channel[b * cb + pos[i]] = static_cast<std::uint8_t>(rng.next_u64());
      erasures.push_back(static_cast<std::uint32_t>(b * cb + pos[i]));
    }
  }

  // --- Receiver 1: sharded batch decode + derandomize ------------------
  {
    std::vector<std::uint8_t> recovered(fec.decoded_size(channel.size()));
    const auto t0 = std::chrono::steady_clock::now();
    const ParallelFecResult r = fec.decode(channel, recovered, erasures);
    const double rate = mbps(recovered.size(), t0);
    const std::vector<std::uint8_t> ts_out = dvb::derandomize(recovered);
    const bool pass = r.ok && r.failed_blocks == 0 &&
                      r.corrected_errors == blocks * kErrorsPerBlock &&
                      r.corrected_erasures == blocks * kErasuresPerBlock &&
                      ts_out == ts;
    table.add_row({"ParallelFec x4 batch", ReportTable::num(rate, 1),
                   std::to_string(r.corrected_errors),
                   std::to_string(r.corrected_erasures)});
    if (!pass) {
      std::cout << "FAIL: batch receiver (ok=" << r.ok << " failed_blocks="
                << r.failed_blocks << " match=" << (ts_out == ts) << ")\n";
      ok = false;
    }
  }

  // --- Receiver 2: the pipeline form, channel injector included --------
  // One frame per dispersal group (8 packets); the randomizer reseeds at
  // each group boundary, so per-group randomize equals the stream form.
  {
    std::vector<std::unique_ptr<Stage>> stages;
    stages.push_back(std::make_unique<RsEncodeStage>(codec));
    stages.push_back(std::make_unique<FecCorruptStage>(
        codec, kChannelSeed, kErrorsPerBlock, kErasuresPerBlock));
    stages.push_back(std::make_unique<RsDecodeStage>(codec));
    stages.push_back(std::make_unique<CollectSink>());
    auto* decode = static_cast<RsDecodeStage*>(stages[2].get());
    auto* sink = static_cast<CollectSink*>(stages.back().get());

    constexpr std::size_t kGroupBytes =
        dvb::kPacketBytes * dvb::kPacketsPerGroup;
    const std::size_t groups = ts.size() / kGroupBytes;
    const auto t0 = std::chrono::steady_clock::now();
    Pipeline pipe(std::move(stages), {.queue_depth = 4});
    pipe.start();
    for (std::size_t g = 0; g < groups; ++g) {
      Frame f;
      f.id = g;
      f.bytes.assign(randomized.begin() + g * kGroupBytes,
                     randomized.begin() + (g + 1) * kGroupBytes);
      FrameBatch batch;
      batch.push_back(std::move(f));
      if (!pipe.push(std::move(batch))) {
        std::cout << "FAIL: pipeline rejected a frame\n";
        return 1;
      }
    }
    pipe.close();
    pipe.wait();
    const double rate = mbps(randomized.size(), t0);

    bool pass = decode->ok() && sink->frames().size() == groups;
    if (pass) {
      std::vector<std::uint8_t> rec;
      rec.reserve(randomized.size());
      for (const Frame& f : sink->frames())
        rec.insert(rec.end(), f.bytes.begin(), f.bytes.end());
      pass = dvb::derandomize(rec) == ts;
    }
    table.add_row({"pipeline (4 stages)", ReportTable::num(rate, 1),
                   std::to_string(decode->corrected_errors()),
                   std::to_string(decode->corrected_erasures())});
    if (!pass) {
      std::cout << "FAIL: pipeline receiver (decode ok=" << decode->ok()
                << " failed_blocks=" << decode->failed_blocks() << ")\n";
      ok = false;
    }
  }

  std::cout << "DVB outer code: " << kPackets << " TS packets, RS(204,188), "
            << kErrorsPerBlock << " errors + " << kErasuresPerBlock
            << " erasures per block (2e+r = 16, radius-saturating)\n\n";
  table.print(std::cout);
  std::cout << "\n" << (ok ? "all packets recovered bit-exactly" : "FAILED")
            << "\n";
  return ok ? 0 : 1;
}
