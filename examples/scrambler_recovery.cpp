// Why scrambling is not encryption — the security subtext of the paper's
// stream-cipher domain. A bare LFSR scrambler of degree k is fully
// recovered from 2k known keystream bits by Berlekamp–Massey; this demo
// "attacks" the 802.11 and DVB scramblers (known-plaintext), predicts
// their keystreams exactly, and then shows how the linear complexity of
// a combined multi-LFSR generator grows — the reason A5/1, E0 and CSS
// combine registers nonlinearly.
//
//   $ ./scrambler_recovery
#include <iostream>

#include "cipher/combiner.hpp"
#include "lfsr/berlekamp_massey.hpp"
#include "lfsr/catalog.hpp"
#include "scrambler/scrambler.hpp"
#include "support/rng.hpp"

int main() {
  using namespace plfsr;

  std::cout << "Known-plaintext attack on linear scramblers\n\n";
  struct Target {
    const char* name;
    Gf2Poly poly;
    std::uint64_t seed;
  };
  const Target targets[] = {
      {"802.11 (x^7+x^4+1)", catalog::scrambler_80211(), 0x5B},
      {"DVB (x^15+x^14+1)", catalog::scrambler_dvb(), 0x30D1},
      {"PRBS-23 (x^23+x^18+1)", catalog::prbs23(), 0x19ABCD},
  };
  bool all_ok = true;
  for (const Target& t : targets) {
    const unsigned k = static_cast<unsigned>(t.poly.degree());
    AdditiveScrambler victim(t.poly, t.seed);
    // Attacker sees plaintext & ciphertext => keystream, for 2k bits.
    const BitStream observed = victim.keystream(2 * k);
    const auto syn = berlekamp_massey(observed);
    const BitStream predicted = predict_continuation(observed, 256);
    const BitStream actual = victim.keystream(256);
    all_ok &= predicted == actual;
    std::cout << "  " << t.name << ": observed " << 2 * k
              << " bits -> complexity " << syn.complexity << ", C(x) = "
              << syn.connection.to_string() << "\n    next 256 bits "
              << (predicted == actual ? "predicted exactly" : "MISPREDICTED")
              << "\n";
  }

  std::cout << "\nLinear complexity of combined generators (profile after "
               "400 bits):\n";
  {
    XorCombiner two({catalog::prbs7(), catalog::prbs9()}, {0x11, 0x23});
    std::cout << "  XOR of 7+9 bit LFSRs      : "
              << berlekamp_massey(two.keystream(400)).complexity
              << "  (= 16: still linear, just bigger)\n";
    AddWithCarryCombiner css(0xDEADBEEF42ull);
    BitStream cs;
    for (std::uint8_t b : css.keystream(50))
      for (int i = 7; i >= 0; --i) cs.push_back((b >> i) & 1);
    std::cout << "  CSS add-with-carry (40-bit): "
              << berlekamp_massey(cs).complexity
              << "  (~n/2: the carry nonlinearity defeats BM)\n";
  }
  std::cout << "\nMoral: run-time reconfigurability (new polynomials, new\n"
            << "combiners) is a security feature — the paper's argument\n"
            << "for programmable LFSR fabrics over fixed ASIC scramblers.\n";
  if (!all_ok) {
    std::cout << "\nVERIFICATION FAILED: a keystream was mispredicted\n";
    return 1;
  }
  return 0;
}
