// 802.11e scrambling at Gbit/s rates (the paper's second application,
// Fig. 8): scramble a stream of MPDUs with the parallel scrambler at
// several look-ahead factors, verify against the serial reference and
// the standard's published 127-bit sequence, and print the throughput
// profile of the single-op PiCoGA mapping.
//
//   $ ./wifi_throughput
#include <iostream>
#include <vector>

#include "dream/scrambler_model.hpp"
#include "lfsr/catalog.hpp"
#include "scrambler/wifi.hpp"
#include "support/report.hpp"
#include "support/rng.hpp"

int main() {
  using namespace plfsr;

  // Sanity anchor: the standard's own reference vector.
  AdditiveScrambler ref = wifi::make_scrambler(0x7F);
  const bool seq_ok =
      ref.keystream(127).to_string() == wifi::kReferenceSequence127;
  std::cout << "802.11 reference sequence check: "
            << (seq_ok ? "match" : "MISMATCH") << "\n\n";

  // Scramble/descramble a frame at every parallelization, verifying the
  // round trip each time.
  Rng rng(1);
  const BitStream mpdu = rng.next_bits(8 * 1536);
  bool all_ok = seq_ok;
  ReportTable table({"M", "round trip", "DREAM cycles (12k block)",
                     "Gbit/s", "peak Gbit/s"});
  for (std::size_t m : {8u, 16u, 32u, 64u, 128u}) {
    ParallelScrambler tx = wifi::make_parallel_scrambler(m, 0x5D);
    ParallelScrambler rx = wifi::make_parallel_scrambler(m, 0x5D);
    const bool ok = rx.process(tx.process(mpdu)) == mpdu;
    all_ok &= ok;

    const DreamScramblerModel model(catalog::scrambler_80211(), m);
    const std::uint64_t block = 12288 / m * m;
    table.add_row({std::to_string(m), ok ? "ok" : "FAIL",
                   std::to_string(model.cycles(block)),
                   ReportTable::num(model.throughput_gbps(block), 2),
                   ReportTable::num(model.peak_gbps(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nAt M = 128 the scrambler saturates the array's output\n"
            << "bandwidth (~25 Gbit/s) — usable as the keystream engine of\n"
            << "a stream cipher, as §5 notes.\n";
  if (!all_ok) {
    std::cout << "\nVERIFICATION FAILED\n";
    return 1;
  }
  return 0;
}
