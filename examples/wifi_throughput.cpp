// 802.11e scrambling at Gbit/s rates (the paper's second application,
// Fig. 8): scramble a stream of MPDUs with the parallel scrambler at
// several look-ahead factors, verify against the serial reference and
// the standard's published 127-bit sequence, and print the throughput
// profile of the single-op PiCoGA mapping.
//
//   $ ./wifi_throughput
#include <chrono>
#include <iostream>
#include <vector>

#include "crc/crc_spec.hpp"
#include "crc/engine_registry.hpp"
#include "crc/serial_crc.hpp"
#include "dream/scrambler_model.hpp"
#include "lfsr/catalog.hpp"
#include "scrambler/block_scrambler.hpp"
#include "scrambler/wifi.hpp"
#include "support/report.hpp"
#include "support/rng.hpp"

int main() {
  using namespace plfsr;

  // Sanity anchor: the standard's own reference vector.
  AdditiveScrambler ref = wifi::make_scrambler(0x7F);
  const bool seq_ok =
      ref.keystream(127).to_string() == wifi::kReferenceSequence127;
  std::cout << "802.11 reference sequence check: "
            << (seq_ok ? "match" : "MISMATCH") << "\n\n";

  // Scramble/descramble a frame at every parallelization, verifying the
  // round trip each time.
  Rng rng(1);
  const BitStream mpdu = rng.next_bits(8 * 1536);
  bool all_ok = seq_ok;
  ReportTable table({"M", "round trip", "DREAM cycles (12k block)",
                     "Gbit/s", "peak Gbit/s"});
  for (std::size_t m : {8u, 16u, 32u, 64u, 128u}) {
    ParallelScrambler tx = wifi::make_parallel_scrambler(m, 0x5D);
    ParallelScrambler rx = wifi::make_parallel_scrambler(m, 0x5D);
    const bool ok = rx.process(tx.process(mpdu)) == mpdu;
    all_ok &= ok;

    const DreamScramblerModel model(catalog::scrambler_80211(), m);
    const std::uint64_t block = 12288 / m * m;
    table.add_row({std::to_string(m), ok ? "ok" : "FAIL",
                   std::to_string(model.cycles(block)),
                   ReportTable::num(model.throughput_gbps(block), 2),
                   ReportTable::num(model.peak_gbps(), 1)});
  }
  table.print(std::cout);

  // Host execution of the same block form: BlockScrambler runs the M = 64
  // word step as mask-parity gathers. Round-trip an MPDU byte buffer,
  // measure the rate, and use seek() to join the keystream mid-PPDU (the
  // receiver-side resync a bit-serial scrambler would have to step to).
  {
    std::vector<std::uint8_t> frame = Rng(2).next_bytes(1536);
    const std::vector<std::uint8_t> orig = frame;
    BlockScrambler tx(catalog::scrambler_80211(), 0x5D);
    BlockScrambler rx(catalog::scrambler_80211(), 0x5D);
    tx.process(frame);
    rx.process(frame);
    const bool host_ok = frame == orig;
    all_ok &= host_ok;

    constexpr std::size_t kOff = 1000;  // resume descrambling here
    tx.seek(0);
    tx.process(frame);
    rx.seek(8 * kOff);
    rx.process(frame.data() + kOff, frame.size() - kOff);
    bool seek_ok = true;
    for (std::size_t i = kOff; i < frame.size(); ++i)
      seek_ok &= frame[i] == orig[i];
    all_ok &= seek_ok;

    double best_gbps = 0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      constexpr int kIters = 2000;
      for (int i = 0; i < kIters; ++i) {
        tx.seek(0);
        tx.process(frame);
      }
      const double s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      best_gbps = std::max(best_gbps, 8.0 * kIters * frame.size() / s / 1e9);
    }
    std::cout << "\nHost BlockScrambler (word-parallel M = 64): round trip "
              << (host_ok ? "ok" : "FAIL") << ", mid-frame seek resync "
              << (seek_ok ? "ok" : "FAIL") << ", "
              << ReportTable::num(best_gbps, 2)
              << " Gbit/s on 1536-byte MPDUs\n";

    // FCS over the scrambled MPDU: one registry call picks the fastest
    // CRC-32 engine this host runs (PLFSR_ENGINE overrides), checked
    // against the bit-serial reference.
    const CrcSpec fcs_spec = crcspec::crc32_ethernet();
    const CrcEngineHandle fcs = EngineRegistry::instance().best_for(fcs_spec);
    const bool fcs_ok = fcs.compute(frame) == serial_crc(fcs_spec, frame);
    all_ok &= fcs_ok;
    std::cout << "Host FCS via registry engine \"" << fcs.engine_name()
              << "\": " << (fcs_ok ? "ok" : "FAIL") << "\n";
  }

  std::cout << "\nAt M = 128 the scrambler saturates the array's output\n"
            << "bandwidth (~25 Gbit/s) — usable as the keystream engine of\n"
            << "a stream cipher, as §5 notes.\n";
  if (!all_ok) {
    std::cout << "\nVERIFICATION FAILED\n";
    return 1;
  }
  return 0;
}
