// offload_client — load generator and bit-exact verifier for
// offload_server.
//
//   $ ./offload_client --port N [--host 127.0.0.1] [--connections N]
//                      [--depth N] [--frames N] [--quick] [--json]
//
// Opens `connections` concurrent TCP connections (default 1024), keeps
// `depth` requests pipelined on each, and drives every connection
// through `frames` requests drawn from a fixed op × frame-size mix
// (ping/CRC/scramble/FEC-encode/FEC-decode over 0 B .. 64 KiB
// payloads, plus kPipeline multi-op chains that fold a scramble → CRC
// or scramble → FEC sequence into one round trip). Every reply is
// verified *bit-exactly*: the expected wire
// bytes are precomputed by running the same OffloadDispatcher the
// server uses, so a verification pass proves the network path changed
// nothing. Reports p50/p99/p99.9 submission-to-reply latency,
// frames/sec and bytes/sec; --json additionally writes
// BENCH_offload.json. Exit status is nonzero on any mismatch, timeout
// or connect failure — the CI soak gates on it.
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "offload/dispatch.hpp"
#include "offload/net.hpp"
#include "offload/protocol.hpp"
#include "support/host_threads.hpp"
#include "support/report.hpp"

using namespace plfsr;
using namespace plfsr::offload;
using Clock = std::chrono::steady_clock;

namespace {

/// One precomputed request with its golden reply (full wire bytes,
/// length prefixes included). Shared read-only by every thread.
struct Template {
  std::string label;
  std::vector<std::uint8_t> req;
  std::vector<std::uint8_t> resp;
};

std::vector<std::uint8_t> pseudo_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> out(n);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (std::size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out[i] = static_cast<std::uint8_t>(x);
  }
  return out;
}

Template make_template(const OffloadDispatcher& d, std::string label, Op op,
                       std::string name, std::uint64_t param,
                       std::vector<std::uint8_t> payload) {
  Request req;
  req.op = op;
  req.param = param;
  req.name = std::move(name);
  req.payload = std::move(payload);
  const Response golden = d.dispatch(req);
  if (golden.status != Status::kOk) {
    std::cerr << "offload_client: template '" << label
              << "' fails local dispatch: " << status_name(golden.status)
              << "\n";
    std::exit(2);
  }
  return {std::move(label), encode_request(req), encode_response(golden)};
}

/// A kPipeline chain template. The golden reply is cross-checked
/// against the serial composition of the same ops as single-op
/// dispatches before the template is admitted, so the soak also guards
/// the chain == composition invariant on every run.
Template make_chain_template(const OffloadDispatcher& d, std::string label,
                             const std::vector<PipelineOp>& ops,
                             std::vector<std::uint8_t> data) {
  const Request chain = make_pipeline_request(ops, data);
  const Response golden = d.dispatch(chain);
  if (golden.status != Status::kOk) {
    std::cerr << "offload_client: chain template '" << label
              << "' fails local dispatch: " << status_name(golden.status)
              << "\n";
    std::exit(2);
  }
  std::vector<std::uint8_t> cur = std::move(data);
  std::uint64_t last_crc = 0;
  bool saw_crc = false;
  for (const PipelineOp& op : ops) {
    Request r;
    r.op = op.op;
    r.param = op.param;
    r.name = op.name;
    r.payload = cur;
    const Response res = d.dispatch(r);
    if (res.status != Status::kOk) {
      std::cerr << "offload_client: chain template '" << label
                << "' composition step fails: " << status_name(res.status)
                << "\n";
      std::exit(2);
    }
    if (op.op == Op::kCrc) {
      last_crc = res.result;
      saw_crc = true;
    } else {
      cur = res.payload;
    }
  }
  if (golden.payload != cur || (saw_crc && golden.result != last_crc)) {
    std::cerr << "offload_client: chain template '" << label
              << "' diverges from its serial composition\n";
    std::exit(2);
  }
  return {std::move(label), encode_request(chain), encode_response(golden)};
}

/// The op × size mix: mostly small control-plane-sized frames, a
/// line-rate MTU class, and one jumbo per family so the 64 KiB path
/// stays exercised without dominating memory at 1k connections.
std::vector<Template> build_templates(const OffloadDispatcher& d) {
  std::vector<Template> t;
  t.push_back(make_template(d, "ping/0", Op::kPing, "", 0, {}));
  t.push_back(make_template(d, "ping/64", Op::kPing, "", 0,
                            pseudo_bytes(64, 1)));
  t.push_back(make_template(d, "crc32/64", Op::kCrc, "CRC-32/ETHERNET", 0,
                            pseudo_bytes(64, 2)));
  t.push_back(make_template(d, "crc32/1518", Op::kCrc, "CRC-32/ETHERNET", 0,
                            pseudo_bytes(1518, 3)));
  t.push_back(make_template(d, "crc32c/65536", Op::kCrc, "CRC-32C", 0,
                            pseudo_bytes(65536, 4)));
  t.push_back(make_template(d, "crc16/64", Op::kCrc, "CRC-16/CCITT-FALSE", 0,
                            pseudo_bytes(64, 5)));
  t.push_back(make_template(d, "scramble-wifi/64", Op::kScramble,
                            "802.11 (x7+x4+1)", 0x5B, pseudo_bytes(64, 6)));
  t.push_back(make_template(d, "scramble-dvb/1518", Op::kScramble,
                            "DVB (x15+x14+1)", 0x1A5A,
                            pseudo_bytes(1518, 7)));
  t.push_back(make_template(d, "rs204-enc/1504", Op::kFecEncode,
                            "RS(204,188)", 0, pseudo_bytes(1504, 8)));
  t.push_back(make_template(d, "bch-enc/512", Op::kFecEncode,
                            "BCH(255,239,t=2)", 0, pseudo_bytes(512, 9)));
  {
    // FEC decode with real work: encode locally, flip one byte per
    // block, let the server correct it. The golden reply's result word
    // (corrected/failed counts) is part of the bit-exact check.
    Request enc;
    enc.op = Op::kFecEncode;
    enc.name = "RS(204,188)";
    enc.payload = pseudo_bytes(1504, 10);
    Response code = d.dispatch(enc);
    for (std::size_t off = 7; off < code.payload.size(); off += 204)
      code.payload[off] ^= 0x41;
    t.push_back(make_template(d, "rs204-dec/1632", Op::kFecDecode,
                              "RS(204,188)", 0, std::move(code.payload)));
  }
  // Multi-op chains: a scramble → CRC (and scramble → FEC) sequence
  // folded into one kPipeline round trip through the server's cached
  // fused pipeline.
  t.push_back(make_chain_template(d, "chain-scr-crc/64",
                                  {{Op::kScramble, 0x5B, "802.11 (x7+x4+1)"},
                                   {Op::kCrc, 0, "CRC-32/ETHERNET"}},
                                  pseudo_bytes(64, 11)));
  t.push_back(make_chain_template(d, "chain-scr-crc/1518",
                                  {{Op::kScramble, 0x1A5A, "DVB (x15+x14+1)"},
                                   {Op::kCrc, 0, "CRC-32C"}},
                                  pseudo_bytes(1518, 12)));
  t.push_back(make_chain_template(d, "chain-scr-rs204/1504",
                                  {{Op::kScramble, 0x2A, "SONET (x7+x6+1)"},
                                   {Op::kFecEncode, 0, "RS(204,188)"}},
                                  pseudo_bytes(1504, 13)));
  return t;
}

struct Pending {
  std::size_t tmpl;
  Clock::time_point t0;
};

struct LConn {
  Socket sock;
  std::vector<std::uint8_t> out;  // unsent request bytes
  std::size_t out_off = 0;
  std::vector<std::uint8_t> in;  // reply accumulation
  std::deque<Pending> pending;
  int sent = 0;
  int recvd = 0;
  std::size_t next = 0;  // template rotation cursor
  bool failed = false;
};

struct ThreadStats {
  std::vector<double> lat_us;
  std::uint64_t tx = 0, rx = 0;
  std::uint64_t mismatches = 0, timeouts = 0, io_errors = 0;
  std::uint64_t frames = 0;
};

struct Config {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t connections = 1024;
  std::size_t depth = 4;
  int frames = 64;  // per connection
  int timeout_ms = 15000;
  bool json = false;
};

void run_shard(const Config& cfg, const std::vector<Template>& tmpl,
               std::size_t first_conn, std::size_t n_conns,
               ThreadStats& stats) {
  std::vector<LConn> conns(n_conns);
  for (std::size_t i = 0; i < n_conns; ++i) {
    conns[i].sock = connect_tcp(cfg.host, cfg.port, cfg.timeout_ms);
    if (!conns[i].sock.valid()) {
      ++stats.io_errors;
      conns[i].failed = true;
      continue;
    }
    set_nodelay(conns[i].sock.fd(), true);
    set_nonblocking(conns[i].sock.fd(), true);
    // Stagger the template rotation so the global mix is uniform at
    // every instant instead of all connections hitting the jumbo
    // template in lockstep.
    conns[i].next = (first_conn + i) % tmpl.size();
  }

  const auto fill = [&](LConn& c) {
    while (!c.failed && c.sent < cfg.frames &&
           c.pending.size() < cfg.depth) {
      const Template& t = tmpl[c.next];
      c.next = (c.next + 1) % tmpl.size();
      c.out.insert(c.out.end(), t.req.begin(), t.req.end());
      c.pending.push_back(
          {static_cast<std::size_t>(&t - tmpl.data()), Clock::now()});
      ++c.sent;
    }
  };
  for (LConn& c : conns) fill(c);

  std::vector<struct pollfd> pfds;
  std::vector<LConn*> polled;
  auto last_progress = Clock::now();
  for (;;) {
    pfds.clear();
    polled.clear();
    std::size_t active = 0;
    for (LConn& c : conns) {
      if (c.failed || (c.recvd == cfg.frames && c.pending.empty())) continue;
      ++active;
      short ev = 0;
      if (c.out_off < c.out.size()) ev |= POLLOUT;
      if (!c.pending.empty()) ev |= POLLIN;
      if (ev == 0) continue;
      pfds.push_back({c.sock.fd(), ev, 0});
      polled.push_back(&c);
    }
    if (active == 0) break;
    if (pfds.empty()) break;  // defensive: active conns must have events

    const int rc = ::poll(pfds.data(), pfds.size(), 250);
    if (rc < 0 && errno != EINTR) {
      ++stats.io_errors;
      break;
    }
    const auto now = Clock::now();
    if (rc <= 0) {
      if (now - last_progress > std::chrono::milliseconds(cfg.timeout_ms)) {
        for (LConn* c : polled) stats.timeouts += c->pending.size();
        break;
      }
      continue;
    }
    last_progress = now;

    for (std::size_t i = 0; i < pfds.size(); ++i) {
      LConn& c = *polled[i];
      const short re = pfds[i].revents;
      if (re == 0) continue;
      if (re & (POLLERR | POLLNVAL)) {
        ++stats.io_errors;
        c.failed = true;
        continue;
      }
      if (re & POLLOUT) {
        while (c.out_off < c.out.size()) {
          const ssize_t n = ::send(c.sock.fd(), c.out.data() + c.out_off,
                                   c.out.size() - c.out_off, MSG_NOSIGNAL);
          if (n > 0) {
            c.out_off += static_cast<std::size_t>(n);
            stats.tx += static_cast<std::uint64_t>(n);
            continue;
          }
          if (n < 0 && errno == EINTR) continue;
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          ++stats.io_errors;
          c.failed = true;
          break;
        }
        if (c.out_off == c.out.size()) {
          c.out.clear();
          c.out_off = 0;
        }
      }
      if (c.failed || (re & POLLIN) == 0) continue;
      std::uint8_t buf[8192];
      for (;;) {
        const ssize_t n = ::recv(c.sock.fd(), buf, sizeof(buf), 0);
        if (n > 0) {
          stats.rx += static_cast<std::uint64_t>(n);
          c.in.insert(c.in.end(), buf, buf + n);
          continue;
        }
        if (n == 0) {
          // Early EOF with replies outstanding is a server fault.
          if (!c.pending.empty()) ++stats.io_errors;
          c.failed = true;
          break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        ++stats.io_errors;
        c.failed = true;
        break;
      }
      // Peel complete replies off the front of the accumulator.
      std::size_t off = 0;
      while (!c.failed && c.in.size() - off >= kLenBytes) {
        const std::uint32_t blen =
            static_cast<std::uint32_t>(c.in[off]) |
            (static_cast<std::uint32_t>(c.in[off + 1]) << 8) |
            (static_cast<std::uint32_t>(c.in[off + 2]) << 16) |
            (static_cast<std::uint32_t>(c.in[off + 3]) << 24);
        if (c.in.size() - off < kLenBytes + blen) break;
        if (c.pending.empty()) {
          ++stats.mismatches;  // unsolicited reply
          c.failed = true;
          break;
        }
        const Pending p = c.pending.front();
        c.pending.pop_front();
        const std::vector<std::uint8_t>& want = tmpl[p.tmpl].resp;
        const std::size_t got_len = kLenBytes + blen;
        if (got_len != want.size() ||
            std::memcmp(c.in.data() + off, want.data(), want.size()) != 0)
          ++stats.mismatches;
        stats.lat_us.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - p.t0)
                .count());
        ++stats.frames;
        ++c.recvd;
        off += got_len;
      }
      if (off > 0) c.in.erase(c.in.begin(), c.in.begin() + off);
      fill(c);
    }
  }

  // Anything still unanswered when the loop exits is a timeout/failure.
  for (LConn& c : conns)
    if (!c.failed) stats.timeouts += c.pending.size();
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(q * (sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> long {
      return i + 1 < argc ? std::atol(argv[++i]) : 0;
    };
    if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc)
      cfg.host = argv[++i];
    else if (std::strcmp(argv[i], "--port") == 0)
      cfg.port = static_cast<std::uint16_t>(next());
    else if (std::strcmp(argv[i], "--connections") == 0)
      cfg.connections = static_cast<std::size_t>(next());
    else if (std::strcmp(argv[i], "--depth") == 0)
      cfg.depth = static_cast<std::size_t>(next());
    else if (std::strcmp(argv[i], "--frames") == 0)
      cfg.frames = static_cast<int>(next());
    else if (std::strcmp(argv[i], "--timeout-ms") == 0)
      cfg.timeout_ms = static_cast<int>(next());
    else if (std::strcmp(argv[i], "--quick") == 0)
      cfg.frames = 12;
    else if (std::strcmp(argv[i], "--json") == 0)
      cfg.json = true;
    else {
      std::cerr << "usage: offload_client --port N [--host H] "
                   "[--connections N] [--depth N] [--frames N] "
                   "[--timeout-ms N] [--quick] [--json]\n";
      return 2;
    }
  }
  if (cfg.port == 0) {
    std::cerr << "offload_client: --port is required\n";
    return 2;
  }

  // One fd per connection plus headroom; soft limits commonly sit at
  // 1024, below the default 1024-connection soak.
  struct rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 &&
      rl.rlim_cur < cfg.connections + 64) {
    rl.rlim_cur = rl.rlim_max < cfg.connections + 64
                      ? rl.rlim_max
                      : static_cast<rlim_t>(cfg.connections + 64);
    ::setrlimit(RLIMIT_NOFILE, &rl);
  }

  const OffloadDispatcher dispatcher;
  const std::vector<Template> templates = build_templates(dispatcher);

  const std::size_t n_threads =
      std::min<std::size_t>(std::max<std::size_t>(host_threads(), 1), 8);
  std::vector<ThreadStats> stats(n_threads);
  std::vector<std::thread> threads;
  std::cout << "offload_client: " << cfg.connections << " connections x "
            << cfg.depth << " in flight x " << cfg.frames
            << " frames each, " << templates.size() << " templates, "
            << n_threads << " threads\n";

  const auto t0 = Clock::now();
  std::size_t first = 0;
  for (std::size_t t = 0; t < n_threads; ++t) {
    const std::size_t n =
        cfg.connections / n_threads + (t < cfg.connections % n_threads);
    threads.emplace_back(run_shard, std::cref(cfg), std::cref(templates),
                         first, n, std::ref(stats[t]));
    first += n;
  }
  for (std::thread& th : threads) th.join();
  const double secs =
      std::chrono::duration<double>(Clock::now() - t0).count();

  ThreadStats total;
  for (const ThreadStats& s : stats) {
    total.lat_us.insert(total.lat_us.end(), s.lat_us.begin(),
                        s.lat_us.end());
    total.tx += s.tx;
    total.rx += s.rx;
    total.mismatches += s.mismatches;
    total.timeouts += s.timeouts;
    total.io_errors += s.io_errors;
    total.frames += s.frames;
  }
  std::sort(total.lat_us.begin(), total.lat_us.end());
  const double p50 = percentile(total.lat_us, 0.50);
  const double p99 = percentile(total.lat_us, 0.99);
  const double p999 = percentile(total.lat_us, 0.999);
  const double fps = secs > 0 ? total.frames / secs : 0;
  const double mbps = secs > 0 ? (total.tx + total.rx) / secs / 1e6 : 0;

  ReportTable table({"metric", "value"});
  table.add_row({"connections", std::to_string(cfg.connections)});
  table.add_row({"in-flight depth", std::to_string(cfg.depth)});
  table.add_row({"frames verified", std::to_string(total.frames)});
  table.add_row({"frames/s", ReportTable::num(fps, 0)});
  table.add_row({"MB/s (tx+rx)", ReportTable::num(mbps, 1)});
  table.add_row({"p50 latency (us)", ReportTable::num(p50, 0)});
  table.add_row({"p99 latency (us)", ReportTable::num(p99, 0)});
  table.add_row({"p99.9 latency (us)", ReportTable::num(p999, 0)});
  table.add_row({"mismatches", std::to_string(total.mismatches)});
  table.add_row({"timeouts", std::to_string(total.timeouts)});
  table.add_row({"io errors", std::to_string(total.io_errors)});
  table.print(std::cout);

  const bool ok = total.mismatches == 0 && total.timeouts == 0 &&
                  total.io_errors == 0 &&
                  total.frames ==
                      static_cast<std::uint64_t>(cfg.frames) *
                          cfg.connections;
  std::cout << (ok ? "every reply bit-exact\n"
                   : "FAILED: mismatched/missing replies\n");

  if (cfg.json) {
    std::ofstream out("BENCH_offload.json");
    out << "{\n  \"bench\": \"offload\",\n  \"connections\": "
        << cfg.connections << ",\n  \"depth\": " << cfg.depth
        << ",\n  \"frames\": " << total.frames
        << ",\n  \"frames_per_s\": " << ReportTable::num(fps, 0)
        << ",\n  \"mb_per_s\": " << ReportTable::num(mbps, 1)
        << ",\n  \"p50_us\": " << ReportTable::num(p50, 0)
        << ",\n  \"p99_us\": " << ReportTable::num(p99, 0)
        << ",\n  \"p999_us\": " << ReportTable::num(p999, 0)
        << ",\n  \"mismatches\": " << total.mismatches
        << ",\n  \"timeouts\": " << total.timeouts
        << ",\n  \"correctness_ok\": " << (ok ? "true" : "false")
        << "\n}\n";
    std::cout << "wrote BENCH_offload.json\n";
  }
  return ok ? 0 : 1;
}
