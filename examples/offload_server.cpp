// offload_server — the LFSR offload service as a standalone daemon.
//
//   $ ./offload_server [--port N] [--workers N] [--max-frame BYTES] [--list]
//
// Binds 127.0.0.1:<port> (0 = ephemeral) and prints
// "listening on port <N>" on stdout — the CI soak and the load client
// parse that line to find an ephemeral port. SIGTERM/SIGINT trigger a
// graceful drain: the listener closes, every frame already received is
// answered, then the process exits 0 with a stats line.
#include <signal.h>

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <thread>

#include "offload/server.hpp"
#include "support/host_threads.hpp"

using namespace plfsr;
using namespace plfsr::offload;

int main(int argc, char** argv) {
  ServerOptions opts;
  bool list = false;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> long {
      return i + 1 < argc ? std::atol(argv[++i]) : 0;
    };
    if (std::strcmp(argv[i], "--port") == 0)
      opts.port = static_cast<std::uint16_t>(next());
    else if (std::strcmp(argv[i], "--workers") == 0)
      opts.workers = static_cast<std::size_t>(next());
    else if (std::strcmp(argv[i], "--max-frame") == 0)
      opts.max_frame = static_cast<std::size_t>(next());
    else if (std::strcmp(argv[i], "--list") == 0)
      list = true;
    else {
      std::cerr << "usage: offload_server [--port N] [--workers N] "
                   "[--max-frame BYTES] [--list]\n";
      return 2;
    }
  }

  // Block the shutdown signals in every thread *before* any is spawned;
  // a dedicated watcher thread then collects them with sigwait and runs
  // the (not async-signal-safe) drain from ordinary thread context.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  OffloadServer server(opts);
  if (list) {
    const OffloadDispatcher& d = server.dispatcher();
    std::cout << "crc specs:\n";
    for (const std::string& n : d.crc_names()) std::cout << "  " << n << "\n";
    std::cout << "scrambler polynomials:\n";
    for (const std::string& n : d.scrambler_names())
      std::cout << "  " << n << "\n";
    std::cout << "fec codes:\n";
    for (const std::string& n : d.fec_names()) std::cout << "  " << n << "\n";
    return 0;
  }
  if (!server.start()) {
    std::cerr << "offload_server: cannot bind 127.0.0.1:" << opts.port
              << "\n";
    return 1;
  }
  std::cout << "listening on port " << server.port() << "\n" << std::flush;
  std::cout << "workers: "
            << (opts.workers == 0 ? host_threads() : opts.workers)
            << ", max frame: " << opts.max_frame << " bytes\n"
            << std::flush;

  std::thread watcher([&] {
    int sig = 0;
    sigwait(&sigs, &sig);
    std::cout << "caught " << (sig == SIGTERM ? "SIGTERM" : "SIGINT")
              << ", draining\n"
              << std::flush;
    server.stop();
  });
  watcher.join();

  std::cout << "served " << server.frames_served() << " frames ("
            << server.error_replies() << " error replies) on "
            << server.connections_accepted() << " connections\n";
  const FrameArena& req = server.request_arena();
  const FrameArena& rep = server.dispatcher().reply_arena();
  std::cout << "request arena: " << req.recycles() << " recycles, "
            << req.heap_allocations() << " heap allocations; reply arena: "
            << rep.recycles() << " recycles, " << rep.heap_allocations()
            << " heap allocations\n";
  return 0;
}
