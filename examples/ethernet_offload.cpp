// Ethernet FCS offload on the simulated DREAM: a burst of synthetic
// 802.3 frames is pushed through the PiCoGA CRC accelerator (M = 128,
// the paper's peak configuration); every result is verified bit-exactly
// against the software reference, and the cycle ledger of the array
// simulation is converted to line rate. The same burst is then run with
// 32-way message interleaving (Fig. 5) to show the overhead amortisation.
//
//   $ ./ethernet_offload
#include <iostream>
#include <vector>

#include "crc/crc_spec.hpp"
#include "crc/ethernet.hpp"
#include "crc/serial_crc.hpp"
#include "picoga/crc_accelerator.hpp"
#include "support/report.hpp"

int main() {
  using namespace plfsr;
  constexpr std::size_t kM = 128;
  constexpr std::size_t kFrames = 32;
  constexpr std::size_t kPayload = 256;  // bytes

  const CrcSpec spec = crcspec::crc32_ethernet();
  PicogaCrcAccelerator acc(spec.generator(), kM);
  std::cout << "PiCoGA CRC accelerator: M = " << kM
            << ", configuration load = " << acc.config_cycles()
            << " cycles (paid once)\n\n";

  // Build frames; the accelerator sees the frame body (sans FCS) in wire
  // bit order, zero-padded to a chunk multiple — the control processor's
  // job in the real system.
  std::vector<BitStream> messages;
  for (std::size_t i = 0; i < kFrames; ++i) {
    const auto frame = ethernet::make_test_frame(kPayload, /*seed=*/i);
    const std::vector<std::uint8_t> body(frame.begin(), frame.end() - 4);
    BitStream bits = spec.message_bits(body);
    while (bits.size() % kM != 0) bits.push_back(false);
    messages.push_back(std::move(bits));
  }

  // One-by-one processing (the Fig. 4 operating point), verifying each
  // raw register against the bit-serial software reference.
  std::uint64_t single_cycles = 0;
  std::size_t verified = 0;
  for (const BitStream& bits : messages) {
    const auto res = acc.process(bits, spec.init);
    single_cycles += res.cycles;
    if (res.raw == serial_crc_bits(bits, spec.width, spec.poly, spec.init))
      ++verified;
  }
  std::cout << "functional check    : " << verified << "/" << kFrames
            << " frames match the software CRC\n";

  const double ns_per_cycle = 5.0;
  const double bits_total =
      static_cast<double>(kFrames) * (kPayload + 18) * 8;
  std::cout << "single-message mode : " << single_cycles << " cycles for "
            << kFrames << " frames  ->  "
            << ReportTable::num(bits_total / (single_cycles * ns_per_cycle),
                                2)
            << " Gbit/s\n";

  // Kong/Parhi interleaving (the Fig. 5 operating point).
  const auto batch = acc.process_interleaved(messages, spec.init);
  std::size_t batch_verified = 0;
  for (std::size_t i = 0; i < kFrames; ++i)
    if (batch.raw[i] ==
        serial_crc_bits(messages[i], spec.width, spec.poly, spec.init))
      ++batch_verified;
  std::cout << "32-way interleaved  : " << batch.cycles << " cycles ("
            << batch_verified << "/" << kFrames << " verified)  ->  "
            << ReportTable::num(bits_total / (batch.cycles * ns_per_cycle), 2)
            << " Gbit/s  (x"
            << ReportTable::num(
                   static_cast<double>(single_cycles) / batch.cycles, 2)
            << " fewer cycles)\n";
  return 0;
}
