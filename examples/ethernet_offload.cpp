// Ethernet FCS offload on the simulated DREAM: a burst of synthetic
// 802.3 frames is pushed through the PiCoGA CRC accelerator (M = 128,
// the paper's peak configuration); every result is verified bit-exactly
// against the software reference, and the cycle ledger of the array
// simulation is converted to line rate. The same burst is then run with
// 32-way message interleaving (Fig. 5) to show the overhead amortisation.
//
// The host side then runs the same FCS workload three ways:
//   - the sharded multi-core engine (ParallelCrc): a jumbo aggregate split
//     across worker threads, partials merged with the GF(2) combine
//     operator — the message-level dual of the array's bit-level look-ahead;
//   - the batched small-frame path (compute_many): thousands of
//     independent minimum-size frames folded through interleaved lanes in
//     one call, the software mirror of the Fig. 5 message interleaving;
//   - the streaming pipeline (src/pipeline): a frame stream flowing through
//     scramble → CRC → verify stages on dedicated threads with bounded
//     rings, the software analogue of the PiCoGA row pipeline, checked
//     bit-exactly against the serial composition and reported with the
//     per-stage metrics table.
//
// Exits nonzero if any verification fails.
//
//   $ ./ethernet_offload
#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <vector>

#include "crc/crc_spec.hpp"
#include "crc/engine_registry.hpp"
#include "crc/ethernet.hpp"
#include "crc/parallel_crc.hpp"
#include "crc/serial_crc.hpp"
#include "crc/slicing_crc.hpp"
#include "lfsr/catalog.hpp"
#include "picoga/crc_accelerator.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/stages.hpp"
#include "support/cpu_features.hpp"
#include "support/report.hpp"
#include "support/rng.hpp"

namespace {

// The sharded-aggregate section over the type-erased engine handle the
// registry hands out — one implementation for every engine kind.
bool run_sharded(const plfsr::CrcEngineHandle& proto,
                 const std::vector<std::uint8_t>& aggregate,
                 std::uint64_t want) {
  using namespace plfsr;
  bool ok = true;
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    const ParallelCrc par(proto, shards);
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t got = 0;
    constexpr int kReps = 8;
    for (int r = 0; r < kReps; ++r) got = par.compute(aggregate);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec =
        std::chrono::duration<double>(t1 - t0).count() / kReps;
    std::cout << "  shards = " << shards << " : "
              << ReportTable::num(
                     static_cast<double>(aggregate.size()) * 8 / sec / 1e9, 2)
              << " Gbit/s  (" << (got == want ? "crc ok" : "CRC MISMATCH")
              << ")\n";
    if (got != want) ok = false;
  }
  return ok;
}

}  // namespace

int main() {
  using namespace plfsr;
  constexpr std::size_t kM = 128;
  constexpr std::size_t kFrames = 32;
  constexpr std::size_t kPayload = 256;  // bytes
  bool all_ok = true;

  const CrcSpec spec = crcspec::crc32_ethernet();
  PicogaCrcAccelerator acc(spec.generator(), kM);
  std::cout << "PiCoGA CRC accelerator: M = " << kM
            << ", configuration load = " << acc.config_cycles()
            << " cycles (paid once)\n\n";

  // Build frames; the accelerator sees the frame body (sans FCS) in wire
  // bit order, zero-padded to a chunk multiple — the control processor's
  // job in the real system.
  std::vector<BitStream> messages;
  for (std::size_t i = 0; i < kFrames; ++i) {
    const auto frame = ethernet::make_test_frame(kPayload, /*seed=*/i);
    const std::vector<std::uint8_t> body(frame.begin(), frame.end() - 4);
    BitStream bits = spec.message_bits(body);
    while (bits.size() % kM != 0) bits.push_back(false);
    messages.push_back(std::move(bits));
  }

  // One-by-one processing (the Fig. 4 operating point), verifying each
  // raw register against the bit-serial software reference.
  std::uint64_t single_cycles = 0;
  std::size_t verified = 0;
  for (const BitStream& bits : messages) {
    const auto res = acc.process(bits, spec.init);
    single_cycles += res.cycles;
    if (res.raw == serial_crc_bits(bits, spec.width, spec.poly, spec.init))
      ++verified;
  }
  std::cout << "functional check    : " << verified << "/" << kFrames
            << " frames match the software CRC\n";
  if (verified != kFrames) all_ok = false;

  const double ns_per_cycle = 5.0;
  const double bits_total =
      static_cast<double>(kFrames) * (kPayload + 18) * 8;
  std::cout << "single-message mode : " << single_cycles << " cycles for "
            << kFrames << " frames  ->  "
            << ReportTable::num(bits_total / (single_cycles * ns_per_cycle),
                                2)
            << " Gbit/s\n";

  // Kong/Parhi interleaving (the Fig. 5 operating point).
  const auto batch = acc.process_interleaved(messages, spec.init);
  std::size_t batch_verified = 0;
  for (std::size_t i = 0; i < kFrames; ++i)
    if (batch.raw[i] ==
        serial_crc_bits(messages[i], spec.width, spec.poly, spec.init))
      ++batch_verified;
  std::cout << "32-way interleaved  : " << batch.cycles << " cycles ("
            << batch_verified << "/" << kFrames << " verified)  ->  "
            << ReportTable::num(bits_total / (batch.cycles * ns_per_cycle), 2)
            << " Gbit/s  (x"
            << ReportTable::num(
                   static_cast<double>(single_cycles) / batch.cycles, 2)
            << " fewer cycles)\n";
  if (batch_verified != kFrames) all_ok = false;

  // Host-side sharded CRC over a jumbo aggregate: one 4 MiB buffer,
  // shard counts 1/2/4/8 merged with the GF(2) combine operator. The
  // inner loop is whatever the engine registry's capability-aware
  // policy picks for this host (the CLMUL folding engine where
  // PCLMULQDQ exists, slicing-by-8 otherwise; PLFSR_ENGINE overrides),
  // and every result is checked against the one-thread slicing engine
  // before the timing is reported.
  Rng rng(2024);
  const auto aggregate = rng.next_bytes(4 << 20);
  const SlicingBy8Crc serial_engine(spec);
  const std::uint64_t want = serial_engine.compute(aggregate);
  {
    const CrcEngineHandle best = EngineRegistry::instance().best_for(spec);
    std::cout << "\nhost-side sharded CRC (ParallelCrc over registry engine \""
              << best.engine_name() << "\", 4 MiB aggregate):\n";
    if (!run_sharded(best, aggregate, want)) all_ok = false;
  }

  // Host-side batched small-frame CRC: many independent minimum-size
  // frames pushed through compute_many in one call — the software form
  // of the paper's 32-way message interleaving, where the fold latency
  // of one frame hides behind the independent chains of the others.
  // make_cached() shares one constructed engine across call sites, so
  // the per-batch cost is the frames themselves, not table/constant
  // setup. Every batch result is checked against the per-frame serial
  // reference.
  std::cout << "\nhost-side batched small-frame CRC (compute_many, 4096 "
               "frames x 64 B):\n";
  {
    constexpr std::size_t kSmall = 4096;
    constexpr std::size_t kSmallBytes = 64;
    Rng srng(77);
    const auto pool = srng.next_bytes(kSmall * kSmallBytes);
    std::vector<FrameView> frames(kSmall);
    for (std::size_t i = 0; i < kSmall; ++i)
      frames[i] = FrameView(pool.data() + i * kSmallBytes, kSmallBytes);

    const CrcEngineHandle best = EngineRegistry::instance().best_for(spec);
    const CrcEngineHandle cached =
        EngineRegistry::instance().make_cached(best.engine_name(), spec);
    std::vector<std::uint64_t> got(kSmall);
    constexpr int kBatchReps = 64;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kBatchReps; ++r) cached.compute_many(frames, got);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec =
        std::chrono::duration<double>(t1 - t0).count() / kBatchReps;

    std::size_t small_ok = 0;
    for (std::size_t i = 0; i < kSmall; ++i)
      if (got[i] == serial_engine.compute(frames[i])) ++small_ok;
    std::cout << "  engine \"" << cached.engine_name() << "\" : "
              << ReportTable::num(static_cast<double>(kSmall) / sec / 1e6, 2)
              << " Mframes/s  ("
              << ReportTable::num(static_cast<double>(kSmall) * kSmallBytes *
                                      8 / sec / 1e9,
                                  2)
              << " Gbit/s, " << small_ok << "/" << kSmall << " verified)\n";
    if (small_ok != kSmall) all_ok = false;
  }

  // Host-side streaming pipeline: a 2048-frame stream through
  // scramble → CRC → collect on dedicated stage threads. The collected
  // output is compared bit-exactly against the serial composition of
  // fresh instances of the same stages, then the per-stage metrics table
  // shows where the time and the backpressure went.
  std::cout << "\nhost-side streaming pipeline (scramble -> crc, 2048 "
               "frames x 1500 B):\n";
  {
    constexpr std::size_t kStreamFrames = 2048;
    constexpr std::size_t kFrameBytes = 1500;
    constexpr std::uint64_t kSeed = 0x5D;
    Rng frng(31);
    std::vector<Frame> input(kStreamFrames);
    for (std::size_t i = 0; i < kStreamFrames; ++i) {
      input[i].id = i;
      input[i].bytes = frng.next_bytes(kFrameBytes);
    }

    // Serial composition = the expected bit pattern. Frames are move-only
    // descriptors now, so the reference set is built from deep clones.
    FrameBatch expect;
    expect.reserve(input.size());
    for (const Frame& f : input) expect.push_back(f.clone());
    ScrambleStage ref_scramble(catalog::scrambler_80211(), kSeed);
    FcsStage ref_crc{SlicingBy8Crc(spec)};
    ref_scramble.process(expect);
    ref_crc.process(expect);

    std::vector<std::unique_ptr<Stage>> stages;
    stages.push_back(
        std::make_unique<ScrambleStage>(catalog::scrambler_80211(), kSeed));
    // The pipelined CRC stage runs the registry's pick for this host;
    // the serial reference above stays slicing-by-8, so a pass here is
    // also a cross-engine equivalence check.
    stages.push_back(std::make_unique<FcsStage>(
        EngineRegistry::instance().best_for(spec)));
    stages.push_back(std::make_unique<CollectSink>());
    CollectSink* sink = static_cast<CollectSink*>(stages.back().get());

    // kAuto picks the executor for this host: threaded rows behind SPSC
    // rings when there are spare cores, the single-thread fused loop
    // otherwise.
    PipelinePlan plan;
    plan.queue_depth = 8;
    Pipeline pipe(std::move(stages), plan);
    std::cout << "  executor : "
              << (pipe.fused() ? "fused (single thread)"
                               : "threaded (one row per stage)")
              << "\n";
    const auto t0 = std::chrono::steady_clock::now();
    pipe.start();
    constexpr std::size_t kBatch = 16;
    for (std::size_t i = 0; i < input.size(); i += kBatch) {
      FrameBatch b;
      for (std::size_t j = i; j < std::min(i + kBatch, input.size()); ++j)
        b.push_back(input[j].clone());
      pipe.push(std::move(b));
    }
    pipe.wait();
    const double sec = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

    const std::vector<Frame>& got = sink->frames();
    bool exact = got.size() == expect.size();
    for (std::size_t i = 0; exact && i < got.size(); ++i)
      exact = got[i].id == expect[i].id && got[i].bytes == expect[i].bytes &&
              got[i].crc == expect[i].crc;
    if (!exact) all_ok = false;

    std::cout << "  bit-exact vs serial composition : "
              << (exact ? "yes" : "NO — MISMATCH") << "\n  throughput : "
              << ReportTable::num(static_cast<double>(kStreamFrames) *
                                      kFrameBytes * 8 / sec / 1e9,
                                  2)
              << " Gbit/s\n\n";
    pipe.stats_table().print(std::cout);
  }

  if (!all_ok) {
    std::cout << "\nVERIFICATION FAILED\n";
    return 1;
  }
  return 0;
}
