// Ethernet FCS offload on the simulated DREAM: a burst of synthetic
// 802.3 frames is pushed through the PiCoGA CRC accelerator (M = 128,
// the paper's peak configuration); every result is verified bit-exactly
// against the software reference, and the cycle ledger of the array
// simulation is converted to line rate. The same burst is then run with
// 32-way message interleaving (Fig. 5) to show the overhead amortisation.
//
// Finally the same FCS workload is run on the *host* side with the
// sharded multi-core engine (ParallelCrc): a jumbo aggregate is split
// across worker threads and the partial registers are merged with the
// GF(2) combine operator — the message-level dual of the array's bit-level
// look-ahead.
//
//   $ ./ethernet_offload
#include <chrono>
#include <iostream>
#include <vector>

#include "crc/crc_spec.hpp"
#include "crc/ethernet.hpp"
#include "crc/parallel_crc.hpp"
#include "crc/serial_crc.hpp"
#include "crc/slicing_crc.hpp"
#include "crc/table_crc.hpp"
#include "picoga/crc_accelerator.hpp"
#include "support/report.hpp"
#include "support/rng.hpp"

int main() {
  using namespace plfsr;
  constexpr std::size_t kM = 128;
  constexpr std::size_t kFrames = 32;
  constexpr std::size_t kPayload = 256;  // bytes

  const CrcSpec spec = crcspec::crc32_ethernet();
  PicogaCrcAccelerator acc(spec.generator(), kM);
  std::cout << "PiCoGA CRC accelerator: M = " << kM
            << ", configuration load = " << acc.config_cycles()
            << " cycles (paid once)\n\n";

  // Build frames; the accelerator sees the frame body (sans FCS) in wire
  // bit order, zero-padded to a chunk multiple — the control processor's
  // job in the real system.
  std::vector<BitStream> messages;
  for (std::size_t i = 0; i < kFrames; ++i) {
    const auto frame = ethernet::make_test_frame(kPayload, /*seed=*/i);
    const std::vector<std::uint8_t> body(frame.begin(), frame.end() - 4);
    BitStream bits = spec.message_bits(body);
    while (bits.size() % kM != 0) bits.push_back(false);
    messages.push_back(std::move(bits));
  }

  // One-by-one processing (the Fig. 4 operating point), verifying each
  // raw register against the bit-serial software reference.
  std::uint64_t single_cycles = 0;
  std::size_t verified = 0;
  for (const BitStream& bits : messages) {
    const auto res = acc.process(bits, spec.init);
    single_cycles += res.cycles;
    if (res.raw == serial_crc_bits(bits, spec.width, spec.poly, spec.init))
      ++verified;
  }
  std::cout << "functional check    : " << verified << "/" << kFrames
            << " frames match the software CRC\n";

  const double ns_per_cycle = 5.0;
  const double bits_total =
      static_cast<double>(kFrames) * (kPayload + 18) * 8;
  std::cout << "single-message mode : " << single_cycles << " cycles for "
            << kFrames << " frames  ->  "
            << ReportTable::num(bits_total / (single_cycles * ns_per_cycle),
                                2)
            << " Gbit/s\n";

  // Kong/Parhi interleaving (the Fig. 5 operating point).
  const auto batch = acc.process_interleaved(messages, spec.init);
  std::size_t batch_verified = 0;
  for (std::size_t i = 0; i < kFrames; ++i)
    if (batch.raw[i] ==
        serial_crc_bits(messages[i], spec.width, spec.poly, spec.init))
      ++batch_verified;
  std::cout << "32-way interleaved  : " << batch.cycles << " cycles ("
            << batch_verified << "/" << kFrames << " verified)  ->  "
            << ReportTable::num(bits_total / (batch.cycles * ns_per_cycle), 2)
            << " Gbit/s  (x"
            << ReportTable::num(
                   static_cast<double>(single_cycles) / batch.cycles, 2)
            << " fewer cycles)\n";

  // Host-side sharded CRC over a jumbo aggregate: one 4 MiB buffer, the
  // slicing-by-8 inner loop, shard counts 1/2/4/8 merged with the GF(2)
  // combine operator. Every result is checked against the one-thread
  // engine before the timing is reported.
  std::cout << "\nhost-side sharded CRC (ParallelCrc<SlicingBy8Crc>, 4 MiB "
               "aggregate):\n";
  Rng rng(2024);
  const auto aggregate = rng.next_bytes(4 << 20);
  const SlicingBy8Crc serial_engine(spec);
  const std::uint64_t want = serial_engine.compute(aggregate);
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    const ParallelCrc<SlicingBy8Crc> par(SlicingBy8Crc(spec), shards);
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t got = 0;
    constexpr int kReps = 8;
    for (int r = 0; r < kReps; ++r) got = par.compute(aggregate);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec =
        std::chrono::duration<double>(t1 - t0).count() / kReps;
    std::cout << "  shards = " << shards << " : "
              << ReportTable::num(
                     static_cast<double>(aggregate.size()) * 8 / sec / 1e9, 2)
              << " Gbit/s  (" << (got == want ? "crc ok" : "CRC MISMATCH")
              << ")\n";
  }
  return 0;
}
