// Stream ciphers — the third LFSR domain of the paper's introduction:
// "the A5/1 standard which ensures communication privacy of GSM
// telephones ... or the content scramble system ... which uses a 40-bit
// stream cipher."
//
// Encrypt a GSM voice frame with A5/1, show per-frame keystream rotation,
// then run the CSS-style 40-bit add-with-carry combiner, and close with
// the linear XOR-combiner whose joint state-space form parallelizes with
// the very same look-ahead machinery as the paper's CRC and scrambler.
//
//   $ ./gsm_privacy
#include <iomanip>
#include <iostream>

#include "cipher/a51.hpp"
#include "cipher/combiner.hpp"
#include "cipher/e0.hpp"
#include "lfsr/catalog.hpp"
#include "lfsr/lookahead.hpp"
#include "support/rng.hpp"

int main() {
  using namespace plfsr;

  // --- A5/1 over two GSM frames -------------------------------------
  const std::array<std::uint8_t, 8> key = {0x12, 0x23, 0x45, 0x67,
                                           0x89, 0xAB, 0xCD, 0xEF};
  Rng rng(1);
  const BitStream voice = rng.next_bits(114);  // one downlink burst

  bool all_ok = true;
  std::cout << "A5/1: encrypting one 114-bit burst per frame\n";
  for (std::uint32_t frame = 0x134; frame < 0x137; ++frame) {
    A51 tx(key, frame);
    const BitStream ks = tx.downlink();
    BitStream cipher;
    for (std::size_t i = 0; i < voice.size(); ++i)
      cipher.push_back(voice.get(i) ^ ks.get(i));

    A51 rx(key, frame);
    const BitStream ks2 = rx.downlink();
    BitStream plain;
    for (std::size_t i = 0; i < cipher.size(); ++i)
      plain.push_back(cipher.get(i) ^ ks2.get(i));

    all_ok &= plain == voice;
    std::cout << "  frame 0x" << std::hex << frame << std::dec
              << "  keystream[0..15]=" << ks.to_string().substr(0, 16)
              << "  decrypt " << (plain == voice ? "ok" : "FAIL") << "\n";
  }

  // --- E0-style Bluetooth summation combiner --------------------------
  {
    E0 tx({0x155F0F5, 0x12345678, 0x1DEADBEEF, 0x2CAFEF00D});
    E0 rx({0x155F0F5, 0x12345678, 0x1DEADBEEF, 0x2CAFEF00D});
    Rng erng(7);
    const BitStream payload = erng.next_bits(2745);  // one BT baseband max
    const bool ok = rx.process(tx.process(payload)) == payload;
    all_ok &= ok;
    std::cout << "\nE0 (Bluetooth-style, 4 LFSRs + summation combiner): "
              << "2745-bit payload decrypt " << (ok ? "ok" : "FAIL") << "\n";
  }

  // --- CSS-style 40-bit combiner -------------------------------------
  std::cout << "\nCSS-style add-with-carry combiner (40-bit key):\n  ";
  AddWithCarryCombiner css(0x123456789Aull);
  for (std::uint8_t b : css.keystream(16))
    std::cout << std::hex << std::setw(2) << std::setfill('0') << int(b);
  std::cout << std::dec << "\n";

  // --- Linear combiner stays in the paper's framework ----------------
  const std::vector<Gf2Poly> gens = {catalog::a51_r1(), catalog::a51_r2(),
                                     catalog::a51_r3()};
  XorCombiner lin(gens, {0x111, 0x222, 0x333});
  const LinearSystem joint = lin.joint_system();
  const LookAhead la(joint, 64);
  std::cout << "\nLinear 3-LFSR XOR combiner: joint state dim = "
            << joint.dim() << "; 64-level look-ahead built (B_64 "
            << la.bm().rows() << "x" << la.bm().cols()
            << ") — regular clocking keeps even multi-register ciphers\n"
            << "inside the paper's parallel LFSR framework; A5/1's\n"
            << "majority clocking is what breaks linearity (and is left\n"
            << "to the processor, as the paper does with control code).\n";
  if (!all_ok) {
    std::cout << "\nVERIFICATION FAILED\n";
    return 1;
  }
  return 0;
}
