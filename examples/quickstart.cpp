// Quickstart: compute the Ethernet CRC-32 three ways — byte-table
// software, M-bit-parallel matrix engine, and the Derby-transformed
// two-operation form the paper maps onto PiCoGA — and peek at the
// matrices that make the parallel forms work.
//
//   $ ./quickstart
#include <iostream>

#include "crc/crc_spec.hpp"
#include "crc/derby_crc.hpp"
#include "crc/matrix_crc.hpp"
#include "crc/table_crc.hpp"
#include "lfsr/derby.hpp"
#include "lfsr/linear_system.hpp"
#include "support/report.hpp"

int main() {
  using namespace plfsr;

  // 1. The CRC standard: IEEE 802.3 (reflected, init/xorout all-ones).
  const CrcSpec spec = crcspec::crc32_ethernet();
  const std::uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};

  // 2. Conventional software CRC (the processors' baseline).
  const TableCrc table(spec);
  std::cout << "CRC-32(\"123456789\")\n";
  std::cout << "  byte-table engine : " << std::hex << table.compute(msg)
            << "\n";

  // 3. The paper's parallel form: M = 64 bits per step.
  const MatrixCrc matrix(spec, 64);
  const DerbyCrc derby(spec, 64);
  std::cout << "  matrix engine M=64: " << matrix.compute(msg) << "\n";
  std::cout << "  derby  engine M=64: " << derby.compute(msg) << std::dec
            << "  (expected 0xcbf43926)\n\n";

  // All three engines must land on the check value of the standard.
  constexpr std::uint64_t kCheck = 0xcbf43926;
  const bool ok = table.compute(msg) == kCheck &&
                  matrix.compute(msg) == kCheck &&
                  derby.compute(msg) == kCheck;

  // 4. Why the Derby form maps well onto a pipelined fabric: the
  //    feedback matrix is companion again (<= 2 ones per row), while the
  //    dense work migrated into the pipelineable input matrix.
  const LinearSystem sys = make_crc_system(spec.generator());
  const LookAhead la(sys, 64);
  const DerbyTransform& t = derby.transform();
  std::cout << "look-ahead M=64 over GF(2):\n";
  std::cout << "  A^M   max ones/row : " << la.am().max_row_weight()
            << "   (dense — stuck inside the feedback loop)\n";
  std::cout << "  A_Mt  max ones/row : " << t.amt().max_row_weight()
            << "   (companion — trivial loop, after the transform)\n";
  std::cout << "  B_Mt  total ones   : " << t.bmt().total_weight()
            << "  (dense but feed-forward: freely pipelineable)\n";
  std::cout << "  T anti-transform   : applied once per message\n";
  if (!ok) {
    std::cout << "\nVERIFICATION FAILED: an engine missed 0xcbf43926\n";
    return 1;
  }
  return 0;
}
