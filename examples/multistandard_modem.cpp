// Multi-standard modem — the flexibility story of the paper's
// introduction: "multi-mode devices need to handle this in a flexible
// way, requiring a dedicated circuit for each supported standard or a
// reconfigurable/reprogrammable implementation."
//
// One PiCoGA serves four protocol personalities in sequence — Ethernet
// CRC-32, Bluetooth-style CRC-16/CCITT, CRC-24/OPENPGP, and an 802.11
// scrambler — by reconfiguring between bursts. The run prints, for each
// personality, the mapped footprint, the reconfiguration cost, and a
// verified burst; an ASIC would have needed four parallel fixed blocks.
//
//   $ ./multistandard_modem
#include <iostream>
#include <vector>

#include "crc/crc_spec.hpp"
#include "crc/engine_registry.hpp"
#include "crc/serial_crc.hpp"
#include "lfsr/catalog.hpp"
#include "picoga/crc_accelerator.hpp"
#include "scrambler/block_scrambler.hpp"
#include "scrambler/scrambler.hpp"
#include "support/report.hpp"
#include "support/rng.hpp"

namespace {

using namespace plfsr;

bool run_crc_personality(const CrcSpec& spec, std::size_t m,
                         std::size_t burst_bits) {
  PicogaCrcAccelerator acc(spec.generator(), m);
  Rng rng(spec.width);
  BitStream bits = rng.next_bits(burst_bits - burst_bits % m);
  const auto res = acc.process(bits, spec.init);
  const bool ok =
      res.raw == serial_crc_bits(bits, spec.width, spec.poly, spec.init);
  std::cout << "  " << spec.name << "  M=" << m
            << "  reconfig=" << acc.config_cycles() << " cyc"
            << "  burst=" << bits.size() << " b in " << res.cycles
            << " cyc  ->  "
            << ReportTable::num(
                   static_cast<double>(bits.size()) / (res.cycles * 5.0), 2)
            << " Gbit/s  [" << (ok ? "verified" : "MISMATCH") << "]\n";

  // Host-side personality switch, same story in software: the registry's
  // name->configuration lookup hands out the best engine this host runs
  // for the same spec, and the result must agree with the bit-serial
  // reference on a byte burst.
  const CrcEngineHandle host = EngineRegistry::instance().best_for(spec);
  const auto msg = Rng(spec.width + 1).next_bytes(burst_bits / 8);
  const bool host_ok = host.compute(msg) == serial_crc(spec, msg);
  std::cout << "    host engine \"" << host.engine_name() << "\"  ["
            << (host_ok ? "verified" : "MISMATCH") << "]\n";
  return ok && host_ok;
}

}  // namespace

int main() {
  using namespace plfsr;
  std::cout << "Reconfigurable multi-standard front end on one PiCoGA\n"
            << "(each personality is a full reconfiguration; within a\n"
            << " personality, op1/op2 share the 4-context cache)\n\n";

  bool all_ok = true;
  all_ok &= run_crc_personality(crcspec::crc32_ethernet(), 128, 12144);
  all_ok &=
      run_crc_personality(crcspec::crc16_ccitt_false(), 64, 2048);  // BT-ish
  all_ok &= run_crc_personality(crcspec::crc24_openpgp(), 64, 4096);
  all_ok &= run_crc_personality(crcspec::crc5_usb(), 16, 1024);

  // Scrambler personality (single op, no context switch).
  PicogaScramblerAccelerator scr(catalog::scrambler_80211(), 128);
  Rng rng(99);
  const BitStream payload = rng.next_bits(128 * 64);
  const auto res = scr.process(payload, 0x7F);
  AdditiveScrambler ref(catalog::scrambler_80211(), 0x7F);
  const bool scr_ok = res.out == ref.process(payload);
  all_ok &= scr_ok;
  std::cout << "  802.11 scrambler  M=128  reconfig=" << scr.config_cycles()
            << " cyc  burst=" << payload.size() << " b in " << res.cycles
            << " cyc  ->  "
            << ReportTable::num(
                   static_cast<double>(payload.size()) / (res.cycles * 5.0),
                   2)
            << " Gbit/s  [" << (scr_ok ? "verified" : "MISMATCH") << "]\n";

  // Host cross-check of the same burst: the word-parallel BlockScrambler
  // must land on the identical keystream the accelerator model produced.
  BlockScrambler host(catalog::scrambler_80211(), 0x7F);
  std::vector<std::uint8_t> host_bytes = payload.to_bytes_lsb_first();
  host.process(host_bytes);
  const bool host_ok = host_bytes == res.out.to_bytes_lsb_first();
  all_ok &= host_ok;
  std::cout << "  host cross-check  BlockScrambler (word-parallel M=64) on "
               "the same burst  ["
            << (host_ok ? "verified" : "MISMATCH") << "]\n";

  std::cout << "\nThe same silicon served 5 standards; run-time updates\n"
            << "(new polynomial, new standard) are a configuration write,\n"
            << "not a respin — the added value the paper argues for.\n";
  if (!all_ok) {
    std::cout << "\nVERIFICATION FAILED\n";
    return 1;
  }
  return 0;
}
