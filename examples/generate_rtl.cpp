// RTL export: emit synthesizable Verilog for the Derby-form parallel
// CRC-32 (M = 64) and the 802.11 parallel scrambler (M = 32) — the same
// netlists that configure the PiCoGA simulator, emitted the way the
// paper's ASIC comparator (OpenCores UCRC) is distributed. Files are
// written next to the binary; the module text is also summarized here.
//
//   $ ./generate_rtl
#include <algorithm>
#include <fstream>
#include <iostream>

#include "lfsr/catalog.hpp"
#include "mapper/verilog_gen.hpp"

int main() {
  using namespace plfsr;

  const std::string crc =
      emit_parallel_crc_module("crc32_derby_m64", catalog::crc32_ethernet(),
                               64);
  const std::string scr = emit_parallel_scrambler_module(
      "scrambler_80211_m32", catalog::scrambler_80211(), 32);

  std::ofstream crc_out("crc32_derby_m64.v");
  crc_out << crc;
  crc_out.close();
  std::ofstream scr_out("scrambler_80211_m32.v");
  scr_out << scr;
  scr_out.close();
  const bool wrote_ok = !crc.empty() && !scr.empty() && crc_out.good() &&
                        scr_out.good();

  auto lines = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '\n');
  };
  std::cout << "wrote crc32_derby_m64.v        (" << lines(crc)
            << " lines)\n";
  std::cout << "wrote scrambler_80211_m32.v    (" << lines(scr)
            << " lines)\n\n";
  std::cout << "crc32_derby_m64.v header:\n";
  std::cout << crc.substr(0, crc.find(");\n") + 3) << "...\n";
  if (!wrote_ok) {
    std::cout << "\nVERIFICATION FAILED: RTL emission or file write failed\n";
    return 1;
  }
  return 0;
}
