#include "gf2/gf2_advance.hpp"

#include <bit>
#include <stdexcept>

namespace plfsr {

Gf2Advance::Gf2Advance(const Gf2Matrix& a) : dim_(a.rows()) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("Gf2Advance: matrix must be square");
  if (dim_ == 0 || dim_ > 64)
    throw std::invalid_argument("Gf2Advance: dimension must be in [1, 64]");
  mask_ = dim_ == 64 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << dim_) - 1;
  for (std::size_t j = 0; j < dim_; ++j)
    pow_[0][j] = a.column(j).to_word();
  // (A^{2^i})^2 column j = A^{2^i} applied to its own column j.
  for (std::size_t i = 1; i < pow_.size(); ++i)
    for (std::size_t j = 0; j < dim_; ++j)
      pow_[i][j] = gather(pow_[i - 1], pow_[i - 1][j]);
}

std::uint64_t Gf2Advance::gather(const std::array<std::uint64_t, 64>& cols,
                                 std::uint64_t v) {
  std::uint64_t y = 0;
  while (v) {
    y ^= cols[static_cast<std::size_t>(std::countr_zero(v))];
    v &= v - 1;
  }
  return y;
}

std::uint64_t Gf2Advance::advance(std::uint64_t v, std::uint64_t n) const {
  v &= mask_;
  for (std::size_t i = 0; n != 0; n >>= 1, ++i)
    if (n & 1) v = gather(pow_[i], v);
  return v;
}

}  // namespace plfsr
