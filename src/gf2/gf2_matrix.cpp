#include "gf2/gf2_matrix.hpp"

#include <bit>
#include <stdexcept>

#include "gf2/gf2_poly.hpp"

namespace plfsr {

Gf2Matrix::Gf2Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), wpr_((cols + 63) / 64), words_(rows * wpr_, 0) {}

Gf2Matrix Gf2Matrix::identity(std::size_t n) {
  Gf2Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.set(i, i, true);
  return m;
}

Gf2Matrix Gf2Matrix::zero(std::size_t rows, std::size_t cols) {
  return Gf2Matrix(rows, cols);
}

Gf2Matrix Gf2Matrix::from_rows(const std::vector<std::string>& rows) {
  if (rows.empty()) return {};
  Gf2Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_)
      throw std::invalid_argument("Gf2Matrix::from_rows: ragged rows");
    for (std::size_t c = 0; c < m.cols_; ++c) {
      if (rows[r][c] == '1')
        m.set(r, c, true);
      else if (rows[r][c] != '0')
        throw std::invalid_argument("Gf2Matrix::from_rows: non-binary char");
    }
  }
  return m;
}

Gf2Matrix Gf2Matrix::from_columns(const std::vector<Gf2Vec>& cols) {
  if (cols.empty()) return {};
  Gf2Matrix m(cols[0].size(), cols.size());
  for (std::size_t c = 0; c < cols.size(); ++c) {
    if (cols[c].size() != m.rows_)
      throw std::invalid_argument("Gf2Matrix::from_columns: ragged columns");
    for (std::size_t r = 0; r < m.rows_; ++r) m.set(r, c, cols[c].get(r));
  }
  return m;
}

Gf2Vec Gf2Matrix::row(std::size_t r) const {
  Gf2Vec v(cols_);
  for (std::size_t w = 0; w < wpr_; ++w) v.words()[w] = words_[r * wpr_ + w];
  return v;
}

Gf2Vec Gf2Matrix::column(std::size_t c) const {
  Gf2Vec v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v.set(r, get(r, c));
  return v;
}

void Gf2Matrix::set_row(std::size_t r, const Gf2Vec& v) {
  if (v.size() != cols_)
    throw std::invalid_argument("Gf2Matrix::set_row: dimension mismatch");
  for (std::size_t w = 0; w < wpr_; ++w) words_[r * wpr_ + w] = v.words()[w];
}

void Gf2Matrix::set_column(std::size_t c, const Gf2Vec& v) {
  if (v.size() != rows_)
    throw std::invalid_argument("Gf2Matrix::set_column: dimension mismatch");
  for (std::size_t r = 0; r < rows_; ++r) set(r, c, v.get(r));
}

Gf2Matrix Gf2Matrix::operator+(const Gf2Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("Gf2Matrix::+: dimension mismatch");
  Gf2Matrix out = *this;
  for (std::size_t i = 0; i < words_.size(); ++i)
    out.words_[i] ^= other.words_[i];
  return out;
}

Gf2Matrix Gf2Matrix::operator*(const Gf2Matrix& other) const {
  if (cols_ != other.rows_)
    throw std::invalid_argument("Gf2Matrix::*: dimension mismatch");
  Gf2Matrix out(rows_, other.cols_);
  // out.row(r) = XOR over set bits c of this.row(r) of other.row(c):
  // word-parallel in the result width.
  for (std::size_t r = 0; r < rows_; ++r) {
    std::uint64_t* dst = &out.words_[r * out.wpr_];
    for (std::size_t w = 0; w < wpr_; ++w) {
      std::uint64_t bits = words_[r * wpr_ + w];
      while (bits) {
        const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::size_t c = (w << 6) + b;
        const std::uint64_t* src = &other.words_[c * other.wpr_];
        for (std::size_t ow = 0; ow < other.wpr_; ++ow) dst[ow] ^= src[ow];
      }
    }
  }
  return out;
}

Gf2Vec Gf2Matrix::operator*(const Gf2Vec& v) const {
  if (cols_ != v.size())
    throw std::invalid_argument("Gf2Matrix::*vec: dimension mismatch");
  Gf2Vec out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    std::uint64_t acc = 0;
    for (std::size_t w = 0; w < wpr_; ++w)
      acc ^= words_[r * wpr_ + w] & v.words()[w];
    out.set(r, std::popcount(acc) & 1);
  }
  return out;
}

bool Gf2Matrix::operator==(const Gf2Matrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ && words_ == other.words_;
}

Gf2Matrix Gf2Matrix::pow(std::uint64_t e) const {
  if (rows_ != cols_)
    throw std::invalid_argument("Gf2Matrix::pow: matrix not square");
  Gf2Matrix result = identity(rows_);
  Gf2Matrix base = *this;
  while (e) {
    if (e & 1) result = result * base;
    base = base * base;
    e >>= 1;
  }
  return result;
}

Gf2Matrix Gf2Matrix::transposed() const {
  Gf2Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t w = 0; w < wpr_; ++w) {
      std::uint64_t bits = words_[r * wpr_ + w];
      while (bits) {
        const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        out.set((w << 6) + b, r, true);
      }
    }
  return out;
}

std::optional<Gf2Matrix> Gf2Matrix::inverse() const {
  if (rows_ != cols_)
    throw std::invalid_argument("Gf2Matrix::inverse: matrix not square");
  const std::size_t n = rows_;
  Gf2Matrix a = *this;
  Gf2Matrix inv = identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot row at or below `col`.
    std::size_t pivot = col;
    while (pivot < n && !a.get(pivot, col)) ++pivot;
    if (pivot == n) return std::nullopt;
    if (pivot != col) {
      for (std::size_t w = 0; w < wpr_; ++w) {
        std::swap(a.words_[pivot * wpr_ + w], a.words_[col * wpr_ + w]);
        std::swap(inv.words_[pivot * wpr_ + w], inv.words_[col * wpr_ + w]);
      }
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r != col && a.get(r, col)) {
        for (std::size_t w = 0; w < wpr_; ++w) {
          a.words_[r * wpr_ + w] ^= a.words_[col * wpr_ + w];
          inv.words_[r * wpr_ + w] ^= inv.words_[col * wpr_ + w];
        }
      }
    }
  }
  return inv;
}

std::size_t Gf2Matrix::rank() const {
  Gf2Matrix a = *this;
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols_ && rank < rows_; ++col) {
    std::size_t pivot = rank;
    while (pivot < rows_ && !a.get(pivot, col)) ++pivot;
    if (pivot == rows_) continue;
    if (pivot != rank)
      for (std::size_t w = 0; w < wpr_; ++w)
        std::swap(a.words_[pivot * wpr_ + w], a.words_[rank * wpr_ + w]);
    for (std::size_t r = 0; r < rows_; ++r)
      if (r != rank && a.get(r, col))
        for (std::size_t w = 0; w < wpr_; ++w)
          a.words_[r * wpr_ + w] ^= a.words_[rank * wpr_ + w];
    ++rank;
  }
  return rank;
}

Gf2Matrix Gf2Matrix::hconcat(const Gf2Matrix& right) const {
  if (rows_ != right.rows_)
    throw std::invalid_argument("Gf2Matrix::hconcat: row count mismatch");
  Gf2Matrix out(rows_, cols_ + right.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out.set(r, c, get(r, c));
    for (std::size_t c = 0; c < right.cols_; ++c)
      out.set(r, cols_ + c, right.get(r, c));
  }
  return out;
}

bool Gf2Matrix::is_identity() const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      if (get(r, c) != (r == c)) return false;
  return true;
}

bool Gf2Matrix::is_zero() const {
  for (std::uint64_t w : words_)
    if (w) return false;
  return true;
}

bool Gf2Matrix::is_companion() const {
  if (rows_ != cols_ || rows_ == 0) return false;
  const std::size_t n = rows_;
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c + 1 < n; ++c)
      if (get(r, c) != (r == c + 1)) return false;
  return true;
}

std::size_t Gf2Matrix::max_row_weight() const {
  std::size_t best = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    std::size_t w = 0;
    for (std::size_t i = 0; i < wpr_; ++i)
      w += std::popcount(words_[r * wpr_ + i]);
    if (w > best) best = w;
  }
  return best;
}

std::size_t Gf2Matrix::total_weight() const {
  std::size_t w = 0;
  for (std::uint64_t word : words_) w += std::popcount(word);
  return w;
}

Gf2Matrix poly_mult_matrix(const Gf2Poly& p, const Gf2Poly& g) {
  const int k = g.degree();
  if (k < 1)
    throw std::invalid_argument("poly_mult_matrix: deg g must be >= 1");
  const std::size_t n = static_cast<std::size_t>(k);
  Gf2Matrix m(n, n);
  Gf2Poly col = p % g;
  const Gf2Poly x = Gf2Poly::x_pow(1);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i)
      m.set(i, j, col.coeff(static_cast<unsigned>(i)));
    if (j + 1 < n) col = (col * x) % g;
  }
  return m;
}

std::string Gf2Matrix::to_string() const {
  std::string out;
  out.reserve(rows_ * (cols_ + 1));
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c)
      out.push_back(get(r, c) ? '1' : '0');
    out.push_back('\n');
  }
  return out;
}

}  // namespace plfsr
