// Dense matrix over GF(2).
//
// The whole parallelization theory of the paper is matrix algebra over
// GF(2): companion matrices A, the look-ahead powers A^M, the input
// matrices B_M = [b Ab ... A^{M-1} b], and Derby's similarity transform
// A_Mt = T^{-1} A^M T. This class provides exactly those operations:
// multiplication, exponentiation, inversion (Gauss-Jordan), rank, and
// structural predicates (companion form, identity, ...).
//
// Rows are stored as packed 64-bit words; multiplication is the standard
// row-by-matrix XOR accumulation (the "method of the four Russians" is not
// needed at k <= 64-ish dimensions used here, but the row-XOR kernel is
// already word-parallel).
#pragma once

#include <cstdint>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "gf2/gf2_vec.hpp"

namespace plfsr {

/// Dense rows×cols matrix over GF(2).
class Gf2Matrix {
 public:
  Gf2Matrix() = default;
  Gf2Matrix(std::size_t rows, std::size_t cols);

  static Gf2Matrix identity(std::size_t n);
  static Gf2Matrix zero(std::size_t rows, std::size_t cols);

  /// Build from '0'/'1' row strings (all rows the same length).
  static Gf2Matrix from_rows(const std::vector<std::string>& rows);

  /// Matrix whose columns are the given vectors (all the same dimension).
  /// This is how Derby's T = [f  A^M f ... A^{(k-1)M} f] is assembled.
  static Gf2Matrix from_columns(const std::vector<Gf2Vec>& cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  bool get(std::size_t r, std::size_t c) const {
    return (words_[r * wpr_ + (c >> 6)] >> (c & 63)) & 1u;
  }

  void set(std::size_t r, std::size_t c, bool v) {
    const std::uint64_t m = std::uint64_t{1} << (c & 63);
    if (v)
      words_[r * wpr_ + (c >> 6)] |= m;
    else
      words_[r * wpr_ + (c >> 6)] &= ~m;
  }

  Gf2Vec row(std::size_t r) const;
  Gf2Vec column(std::size_t c) const;
  void set_row(std::size_t r, const Gf2Vec& v);
  void set_column(std::size_t c, const Gf2Vec& v);

  /// GF(2) addition (elementwise XOR).
  Gf2Matrix operator+(const Gf2Matrix& other) const;

  /// Matrix product over GF(2).
  Gf2Matrix operator*(const Gf2Matrix& other) const;

  /// Matrix-vector product over GF(2).
  Gf2Vec operator*(const Gf2Vec& v) const;

  bool operator==(const Gf2Matrix& other) const;

  /// Square-and-multiply exponentiation; *this must be square, e >= 0
  /// (e == 0 yields the identity).
  Gf2Matrix pow(std::uint64_t e) const;

  Gf2Matrix transposed() const;

  /// Gauss–Jordan inverse; nullopt if singular.
  std::optional<Gf2Matrix> inverse() const;

  /// Rank via Gaussian elimination.
  std::size_t rank() const;

  /// Horizontal concatenation [*this | right]; row counts must match.
  /// Used to map the combined state-update [A_Mt | B_Mt]·[x; u].
  Gf2Matrix hconcat(const Gf2Matrix& right) const;

  bool is_identity() const;
  bool is_zero() const;

  /// Companion-matrix predicate in the paper's convention: the strict
  /// subdiagonal is all ones, the last column is arbitrary (the polynomial
  /// coefficients), and everything else is zero. A matrix in this form has
  /// at most one XOR feeding each next-state bit beyond the shift — the
  /// "minimal loop complexity" Derby's transform guarantees.
  bool is_companion() const;

  /// Max/total number of ones per row — the fan-in statistics that drive
  /// both the XOR10 mapper and the ASIC critical-path model.
  std::size_t max_row_weight() const;
  std::size_t total_weight() const;

  std::string to_string() const;

 private:
  std::size_t rows_ = 0, cols_ = 0, wpr_ = 0;  // wpr_: words per row
  std::vector<std::uint64_t> words_;

  friend class Gf2MatrixTestPeer;
};

class Gf2Poly;

/// Matrix of the linear map "multiply by p(x) mod g(x)" on the quotient
/// ring GF(2)[x]/g(x) in the monomial basis 1, x, ..., x^{k-1} (k = deg g):
/// column j holds the coefficients of x^j · p(x) mod g(x). For p = x this
/// is exactly the Galois companion matrix of g; its powers x^{2^i} mod g
/// are the advance matrices the CRC shard-combine operator precomputes.
/// g must have degree >= 1.
Gf2Matrix poly_mult_matrix(const Gf2Poly& p, const Gf2Poly& g);

}  // namespace plfsr
