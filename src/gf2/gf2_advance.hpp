// Log-time state advance for packed GF(2) linear maps — the shared home
// of the x^{2^i} advance machinery that CrcCombine introduced for the
// shard-combine operator and that BlockScrambler reuses for seekable
// keystreams.
//
// Any k-dimensional (k <= 64) linear map A over GF(2) is stored as 64
// packed column words per power: level i holds the columns of A^{2^i},
// built by repeated squaring at construction. Applying a level to a
// packed state is an XOR gather over the set bits of the state, so
// advancing a state by n steps costs O(popcount(n)) gathers — zlib's
// crc32_combine trick generalised to every companion-form matrix in the
// repo (Galois CRC registers and Fibonacci scrambler registers alike).
#pragma once

#include <array>
#include <cstdint>

#include "gf2/gf2_matrix.hpp"

namespace plfsr {

/// Precomputed A^{2^i} column tables for a square GF(2) matrix of
/// dimension <= 64; states are packed words (bit j = state element j).
class Gf2Advance {
 public:
  Gf2Advance() = default;

  /// Build the 64 squared-power levels of `a` (square, dim <= 64).
  explicit Gf2Advance(const Gf2Matrix& a);

  std::size_t dim() const { return dim_; }
  std::uint64_t mask() const { return mask_; }

  /// A · v (one gather). Bits of `v` beyond dim() are ignored.
  std::uint64_t apply(std::uint64_t v) const { return gather(pow_[0], v); }

  /// A^n · v in O(popcount(n)) gathers.
  std::uint64_t advance(std::uint64_t v, std::uint64_t n) const;

 private:
  static std::uint64_t gather(const std::array<std::uint64_t, 64>& cols,
                              std::uint64_t v);

  std::size_t dim_ = 0;
  std::uint64_t mask_ = 0;
  // pow_[i][j] = column j of A^{2^i}, packed (bit r = entry (r, j)).
  std::array<std::array<std::uint64_t, 64>, 64> pow_{};
};

}  // namespace plfsr
