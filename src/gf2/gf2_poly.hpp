// Polynomials over GF(2).
//
// The generator polynomial g(x) defines the LFSR feedback taps; the GFMAC
// CRC method (Ji/Killian) works directly in the quotient ring GF(2)[x]/g(x),
// where the per-chunk constants beta_i = x^{iM+M} mod g(x) live. This class
// provides the polynomial arithmetic for both: multiplication, division
// with remainder, modular exponentiation of x, gcd, and the classical
// irreducibility / primitivity tests used to validate scrambler generators.
//
// Representation: coefficient bitset, bit i = coefficient of x^i, arbitrary
// degree (CRC-64 needs degree 64, i.e. 65 coefficients).
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace plfsr {

/// Polynomial over GF(2) with arbitrary degree.
class Gf2Poly {
 public:
  /// The zero polynomial.
  Gf2Poly() = default;

  /// From packed coefficients, bit i of words[i/64] = coeff of x^i.
  static Gf2Poly from_coeff_words(std::vector<std::uint64_t> words);

  /// From a 64-bit coefficient word (degree <= 63).
  static Gf2Poly from_word(std::uint64_t coeffs);

  /// x^degree + (low-order coefficients in `low`): the natural way to
  /// write CRC generators, whose leading coefficient is implicit in the
  /// usual "0x04C11DB7" notation. E.g. crc32 = with_top_bit(32, 0x04C11DB7).
  static Gf2Poly with_top_bit(unsigned degree, std::uint64_t low);

  /// From explicit exponents, e.g. {7,4,0} = x^7 + x^4 + 1 (802.11).
  static Gf2Poly from_exponents(const std::vector<unsigned>& exps);

  /// The monomial x^e.
  static Gf2Poly x_pow(unsigned e);

  static Gf2Poly one() { return x_pow(0); }

  bool is_zero() const { return words_.empty(); }

  /// Degree; -1 for the zero polynomial.
  int degree() const;

  bool coeff(unsigned i) const;
  void set_coeff(unsigned i, bool v);

  /// Number of nonzero coefficients.
  std::size_t weight() const;

  Gf2Poly operator+(const Gf2Poly& other) const;  // == subtraction in GF(2)
  Gf2Poly operator*(const Gf2Poly& other) const;

  /// Quotient and remainder of *this / divisor. divisor must be nonzero.
  /// (Defined right after the class — members of the class type cannot be
  /// declared while it is still incomplete.)
  struct DivMod;
  DivMod divmod(const Gf2Poly& divisor) const;

  Gf2Poly operator%(const Gf2Poly& divisor) const;

  bool operator==(const Gf2Poly& other) const;

  static Gf2Poly gcd(Gf2Poly a, Gf2Poly b);

  /// x^e mod modulus (square-and-multiply; e may be huge, e.g. 2^k - 1
  /// intermediate steps use repeated squaring of x^(2^i) mod g).
  static Gf2Poly x_pow_mod(std::uint64_t e, const Gf2Poly& modulus);

  /// base^e mod modulus.
  static Gf2Poly pow_mod(const Gf2Poly& base, std::uint64_t e,
                         const Gf2Poly& modulus);

  /// Formal derivative (over GF(2): only odd-exponent terms survive).
  Gf2Poly derivative() const;

  /// True iff g has no repeated irreducible factor (gcd(g, g') == 1).
  /// Squarefree-ness is exactly the condition under which Derby's
  /// transform exists at every power-of-two look-ahead: over GF(2),
  /// p(x)^2 = p(x^2), so a repeated factor p of g makes A^2 (and every
  /// even power of A) derogatory — no cyclic vector f can exist.
  bool is_squarefree() const;

  /// Rabin irreducibility test (exact, deterministic): g of degree k is
  /// irreducible iff x^(2^k) == x (mod g) and gcd(x^(2^(k/p)) - x, g) == 1
  /// for every prime p | k.
  bool is_irreducible() const;

  /// Primitive iff irreducible and the order of x mod g is 2^k - 1
  /// (checked via the prime factorization of 2^k - 1; k <= 62 supported).
  bool is_primitive() const;

  /// Multiplicative order of x modulo *this (requires irreducible *this,
  /// degree k <= 62): smallest e > 0 with x^e == 1 (mod g).
  std::uint64_t order_of_x() const;

  /// Human-readable form "x^32 + x^26 + ... + 1".
  std::string to_string() const;

  /// Exponents of nonzero terms, descending.
  std::vector<unsigned> exponents() const;

 private:
  void trim();
  // bit i of words_[i/64] = coefficient of x^i; invariant: no trailing
  // zero words (so degree() is O(1) off the last word).
  std::vector<std::uint64_t> words_;
};

struct Gf2Poly::DivMod {
  Gf2Poly quotient;
  Gf2Poly remainder;
};

/// Deterministic factorization of n (trial division + Pollard rho),
/// returning the distinct prime factors in ascending order. Exposed for
/// tests; used by the primitivity check on 2^k - 1.
std::vector<std::uint64_t> distinct_prime_factors(std::uint64_t n);

}  // namespace plfsr
