// Fixed-length vector over GF(2).
//
// This is the state/input vector type of the LFSR state-space formulation
// x(n+1) = A x(n) + b u(n). Addition is XOR; there is no subtraction
// distinct from addition and no scalar field beyond {0,1}.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace plfsr {

/// Bit vector of fixed dimension with word-parallel XOR and dot product.
class Gf2Vec {
 public:
  Gf2Vec() = default;
  explicit Gf2Vec(std::size_t n) : size_(n), words_((n + 63) / 64, 0) {}

  /// Vector with a single 1 at `index` (e.g. the paper's f = [1 0 ... 0]).
  static Gf2Vec unit(std::size_t n, std::size_t index);

  /// Parse '0'/'1' string, element 0 first.
  static Gf2Vec from_string(const std::string& bits);

  /// Low `n` bits of `word`, bit i -> element i.
  static Gf2Vec from_word(std::size_t n, std::uint64_t word);

  std::size_t size() const { return size_; }

  bool get(std::size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1u; }

  void set(std::size_t i, bool v) {
    const std::uint64_t m = std::uint64_t{1} << (i & 63);
    if (v)
      words_[i >> 6] |= m;
    else
      words_[i >> 6] &= ~m;
  }

  /// GF(2) addition (XOR). Dimensions must match.
  Gf2Vec operator+(const Gf2Vec& other) const;
  Gf2Vec& operator+=(const Gf2Vec& other);

  /// GF(2) inner product: parity of AND.
  bool dot(const Gf2Vec& other) const;

  /// Number of 1 elements.
  std::size_t weight() const;

  bool is_zero() const;

  bool operator==(const Gf2Vec& other) const;

  /// Pack elements 0..min(64,size)-1 into a word, element i -> bit i.
  std::uint64_t to_word() const;

  std::string to_string() const;

  /// Direct word access for the matrix kernels (words beyond size are 0).
  const std::vector<std::uint64_t>& words() const { return words_; }
  std::vector<std::uint64_t>& words() { return words_; }

 private:
  void mask_tail();
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace plfsr
