#include "gf2/gf2_vec.hpp"

#include <bit>
#include <stdexcept>

namespace plfsr {

Gf2Vec Gf2Vec::unit(std::size_t n, std::size_t index) {
  if (index >= n) throw std::out_of_range("Gf2Vec::unit: index out of range");
  Gf2Vec v(n);
  v.set(index, true);
  return v;
}

Gf2Vec Gf2Vec::from_string(const std::string& bits) {
  Gf2Vec v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1')
      v.set(i, true);
    else if (bits[i] != '0')
      throw std::invalid_argument("Gf2Vec::from_string: non-binary char");
  }
  return v;
}

Gf2Vec Gf2Vec::from_word(std::size_t n, std::uint64_t word) {
  Gf2Vec v(n);
  for (std::size_t i = 0; i < n && i < 64; ++i) v.set(i, (word >> i) & 1);
  return v;
}

Gf2Vec Gf2Vec::operator+(const Gf2Vec& other) const {
  Gf2Vec out = *this;
  out += other;
  return out;
}

Gf2Vec& Gf2Vec::operator+=(const Gf2Vec& other) {
  if (size_ != other.size_)
    throw std::invalid_argument("Gf2Vec::+=: dimension mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

bool Gf2Vec::dot(const Gf2Vec& other) const {
  if (size_ != other.size_)
    throw std::invalid_argument("Gf2Vec::dot: dimension mismatch");
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < words_.size(); ++i)
    acc ^= words_[i] & other.words_[i];
  return std::popcount(acc) & 1;
}

std::size_t Gf2Vec::weight() const {
  std::size_t w = 0;
  for (std::uint64_t word : words_) w += std::popcount(word);
  return w;
}

bool Gf2Vec::is_zero() const {
  for (std::uint64_t word : words_)
    if (word) return false;
  return true;
}

bool Gf2Vec::operator==(const Gf2Vec& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

std::uint64_t Gf2Vec::to_word() const {
  return words_.empty() ? 0 : words_[0];
}

std::string Gf2Vec::to_string() const {
  std::string out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(get(i) ? '1' : '0');
  return out;
}

void Gf2Vec::mask_tail() {
  const unsigned tail = size_ & 63;
  if (tail && !words_.empty())
    words_.back() &= (std::uint64_t{1} << tail) - 1;
}

}  // namespace plfsr
