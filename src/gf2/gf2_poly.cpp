#include "gf2/gf2_poly.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>

namespace plfsr {

namespace {

std::uint64_t mulmod_u64(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % m);
}

std::uint64_t powmod_u64(std::uint64_t a, std::uint64_t e, std::uint64_t m) {
  std::uint64_t r = 1 % m;
  a %= m;
  while (e) {
    if (e & 1) r = mulmod_u64(r, a, m);
    a = mulmod_u64(a, a, m);
    e >>= 1;
  }
  return r;
}

bool is_prime_u64(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    if (n % p == 0) return n == p;
  }
  // Deterministic Miller-Rabin for 64-bit with the standard witness set.
  std::uint64_t d = n - 1;
  int s = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++s;
  }
  for (std::uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    std::uint64_t x = powmod_u64(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 1; i < s; ++i) {
      x = mulmod_u64(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

std::uint64_t pollard_rho(std::uint64_t n) {
  if ((n & 1) == 0) return 2;
  for (std::uint64_t c = 1;; ++c) {
    auto f = [&](std::uint64_t x) { return (mulmod_u64(x, x, n) + c) % n; };
    std::uint64_t x = 2, y = 2, d = 1;
    while (d == 1) {
      x = f(x);
      y = f(f(y));
      const std::uint64_t diff = x > y ? x - y : y - x;
      d = std::gcd(diff, n);
    }
    if (d != n) return d;
  }
}

void factor_into(std::uint64_t n, std::vector<std::uint64_t>& out) {
  if (n < 2) return;
  if (is_prime_u64(n)) {
    out.push_back(n);
    return;
  }
  for (std::uint64_t p = 2; p < 100; p += (p == 2 ? 1 : 2)) {
    if (n % p == 0) {
      out.push_back(p);
      while (n % p == 0) n /= p;
      factor_into(n, out);
      return;
    }
  }
  const std::uint64_t d = pollard_rho(n);
  factor_into(d, out);
  std::uint64_t rest = n;
  while (rest % d == 0) rest /= d;
  factor_into(rest, out);
}

}  // namespace

std::vector<std::uint64_t> distinct_prime_factors(std::uint64_t n) {
  std::vector<std::uint64_t> out;
  factor_into(n, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Gf2Poly Gf2Poly::from_coeff_words(std::vector<std::uint64_t> words) {
  Gf2Poly p;
  p.words_ = std::move(words);
  p.trim();
  return p;
}

Gf2Poly Gf2Poly::from_word(std::uint64_t coeffs) {
  return from_coeff_words({coeffs});
}

Gf2Poly Gf2Poly::with_top_bit(unsigned degree, std::uint64_t low) {
  Gf2Poly p = from_word(low);
  p.set_coeff(degree, true);
  return p;
}

Gf2Poly Gf2Poly::from_exponents(const std::vector<unsigned>& exps) {
  Gf2Poly p;
  for (unsigned e : exps) p.set_coeff(e, !p.coeff(e));
  return p;
}

Gf2Poly Gf2Poly::x_pow(unsigned e) {
  Gf2Poly p;
  p.set_coeff(e, true);
  return p;
}

int Gf2Poly::degree() const {
  if (words_.empty()) return -1;
  const std::uint64_t top = words_.back();
  return static_cast<int>((words_.size() - 1) * 64 + 63 -
                          std::countl_zero(top));
}

bool Gf2Poly::coeff(unsigned i) const {
  const std::size_t w = i >> 6;
  if (w >= words_.size()) return false;
  return (words_[w] >> (i & 63)) & 1u;
}

void Gf2Poly::set_coeff(unsigned i, bool v) {
  const std::size_t w = i >> 6;
  if (w >= words_.size()) {
    if (!v) return;
    words_.resize(w + 1, 0);
  }
  const std::uint64_t m = std::uint64_t{1} << (i & 63);
  if (v)
    words_[w] |= m;
  else
    words_[w] &= ~m;
  trim();
}

std::size_t Gf2Poly::weight() const {
  std::size_t w = 0;
  for (std::uint64_t word : words_) w += std::popcount(word);
  return w;
}

Gf2Poly Gf2Poly::operator+(const Gf2Poly& other) const {
  Gf2Poly out;
  out.words_.resize(std::max(words_.size(), other.words_.size()), 0);
  for (std::size_t i = 0; i < words_.size(); ++i) out.words_[i] ^= words_[i];
  for (std::size_t i = 0; i < other.words_.size(); ++i)
    out.words_[i] ^= other.words_[i];
  out.trim();
  return out;
}

Gf2Poly Gf2Poly::operator*(const Gf2Poly& other) const {
  if (is_zero() || other.is_zero()) return {};
  Gf2Poly out;
  out.words_.resize(words_.size() + other.words_.size(), 0);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t bits = words_[w];
    while (bits) {
      const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
      bits &= bits - 1;
      const std::size_t shift = (w << 6) + b;
      const std::size_t ws = shift >> 6;
      const unsigned bs = shift & 63;
      for (std::size_t i = 0; i < other.words_.size(); ++i) {
        out.words_[ws + i] ^= other.words_[i] << bs;
        if (bs)
          out.words_[ws + i + 1] ^= other.words_[i] >> (64 - bs);
      }
    }
  }
  out.trim();
  return out;
}

Gf2Poly::DivMod Gf2Poly::divmod(const Gf2Poly& divisor) const {
  if (divisor.is_zero())
    throw std::invalid_argument("Gf2Poly::divmod: division by zero");
  DivMod dm;
  dm.remainder = *this;
  const int dd = divisor.degree();
  int rd = dm.remainder.degree();
  while (rd >= dd) {
    const unsigned shift = static_cast<unsigned>(rd - dd);
    dm.quotient.set_coeff(shift, true);
    dm.remainder = dm.remainder + divisor * x_pow(shift);
    rd = dm.remainder.degree();
  }
  return dm;
}

Gf2Poly Gf2Poly::operator%(const Gf2Poly& divisor) const {
  return divmod(divisor).remainder;
}

bool Gf2Poly::operator==(const Gf2Poly& other) const {
  return words_ == other.words_;
}

Gf2Poly Gf2Poly::gcd(Gf2Poly a, Gf2Poly b) {
  while (!b.is_zero()) {
    Gf2Poly r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

Gf2Poly Gf2Poly::pow_mod(const Gf2Poly& base, std::uint64_t e,
                         const Gf2Poly& modulus) {
  Gf2Poly result = one() % modulus;
  Gf2Poly b = base % modulus;
  while (e) {
    if (e & 1) result = (result * b) % modulus;
    b = (b * b) % modulus;
    e >>= 1;
  }
  return result;
}

Gf2Poly Gf2Poly::x_pow_mod(std::uint64_t e, const Gf2Poly& modulus) {
  return pow_mod(x_pow(1), e, modulus);
}

Gf2Poly Gf2Poly::derivative() const {
  Gf2Poly d;
  for (int i = 1; i <= degree(); i += 2)
    if (coeff(static_cast<unsigned>(i)))
      d.set_coeff(static_cast<unsigned>(i - 1), true);
  return d;
}

bool Gf2Poly::is_squarefree() const {
  if (is_zero()) return false;
  const Gf2Poly d = derivative();
  // Over GF(2) a zero derivative means g(x) = h(x^2) = h(x)^2: a square.
  if (d.is_zero()) return degree() == 0;
  return gcd(*this, d).degree() == 0;
}

bool Gf2Poly::is_irreducible() const {
  const int k = degree();
  if (k <= 0) return false;
  if (k == 1) return true;
  // x^(2^k) mod g must equal x: compute by k repeated squarings.
  Gf2Poly t = x_pow(1) % *this;
  for (int i = 0; i < k; ++i) t = (t * t) % *this;
  if (!(t == x_pow(1) % *this)) return false;
  // For each prime p | k: gcd(x^(2^(k/p)) + x, g) must be 1.
  for (std::uint64_t p : distinct_prime_factors(static_cast<std::uint64_t>(k))) {
    const int e = static_cast<int>(k / static_cast<int>(p));
    Gf2Poly s = x_pow(1) % *this;
    for (int i = 0; i < e; ++i) s = (s * s) % *this;
    const Gf2Poly g = gcd(s + (x_pow(1) % *this), *this);
    if (g.degree() != 0) return false;
  }
  return true;
}

std::uint64_t Gf2Poly::order_of_x() const {
  const int k = degree();
  if (k <= 0 || k > 62)
    throw std::invalid_argument("Gf2Poly::order_of_x: degree out of range");
  if (!coeff(0))
    throw std::invalid_argument("Gf2Poly::order_of_x: x divides g");
  const std::uint64_t group = (std::uint64_t{1} << k) - 1;
  // order divides 2^k - 1 when g is irreducible; start from the group
  // order and strip primes while x^(ord/p) == 1 still holds.
  std::uint64_t ord = group;
  if (!(x_pow_mod(ord, *this) == one())) {
    // Not irreducible: fall back to brute-force order search (bounded by
    // 2^k - 1, only sensible for small k in tests).
    Gf2Poly t = x_pow(1) % *this;
    const Gf2Poly unit = one();
    for (std::uint64_t e = 1; e <= group; ++e) {
      if (t == unit) return e;
      t = (t * x_pow(1)) % *this;
    }
    throw std::runtime_error("Gf2Poly::order_of_x: x is not invertible mod g");
  }
  for (std::uint64_t p : distinct_prime_factors(group)) {
    while (ord % p == 0 && x_pow_mod(ord / p, *this) == one()) ord /= p;
  }
  return ord;
}

bool Gf2Poly::is_primitive() const {
  const int k = degree();
  if (k <= 0 || k > 62) return false;
  if (!is_irreducible()) return false;
  return order_of_x() == (std::uint64_t{1} << k) - 1;
}

std::vector<unsigned> Gf2Poly::exponents() const {
  std::vector<unsigned> out;
  for (int i = degree(); i >= 0; --i)
    if (coeff(static_cast<unsigned>(i))) out.push_back(static_cast<unsigned>(i));
  return out;
}

std::string Gf2Poly::to_string() const {
  if (is_zero()) return "0";
  std::string out;
  for (unsigned e : exponents()) {
    if (!out.empty()) out += " + ";
    if (e == 0)
      out += "1";
    else if (e == 1)
      out += "x";
    else
      out += "x^" + std::to_string(e);
  }
  return out;
}

void Gf2Poly::trim() {
  while (!words_.empty() && words_.back() == 0) words_.pop_back();
}

}  // namespace plfsr
