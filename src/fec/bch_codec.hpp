// Binary BCH codec: bit-correcting block code with GF(2^m) syndrome
// decoding.
//
// The generator g(x) over GF(2) is the LCM of the minimal polynomials of
// alpha, alpha^2, ..., alpha^2t — built here from the conjugacy classes
// {e·2^j mod 2^m-1} by expanding prod (x - alpha^(e·2^j)) over GF(2^m)
// and checking the coefficients collapse to {0, 1}. Encoding is then the
// plain CRC remainder loop over GF(2) (the parity bits are
// d(x)·x^deg(g) mod g(x)); decoding computes 2t syndromes S_j =
// R(alpha^j) in GF(2^m), runs the shared Berlekamp–Massey synthesis over
// the field, Chien-searches the error locator, and flips the located
// bits — no Forney step, because a binary error value is always 1.
//
// Bit convention: stream bit b lives in byte b/8 at mask 0x80 >> (b%8)
// (MSB-first, matching the CRC engines), and is the coefficient of
// x^(Nbits-1-b). Byte-block transport requires deg(g) % 8 == 0 (true
// for the catalogue entries); shorter payloads are shortened codes
// exactly as in RsCodec.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "fec/fec_codec.hpp"
#include "gfm/gfm_field.hpp"

namespace plfsr {

/// Binary BCH over GF(2)[x]/g(x) with designed distance 2t+1,
/// n = 2^m - 1 bits. Requires m in [3, 16], t >= 1, deg(g) <= 64 and
/// k >= 1; byte-block transport additionally requires deg(g) % 8 == 0.
class BchCodec : public FecCodec {
 public:
  using Sym = GfmField::Sym;

  /// spec.family must be kBch with t set; n/k, if nonzero, must match
  /// the derived geometry (n = 2^m - 1, k = n - deg g). Throws
  /// std::invalid_argument on any violation.
  explicit BchCodec(const FecSpec& spec);

  const FecSpec& spec() const override { return spec_; }
  /// Payload capacity in whole bytes: floor(k / 8).
  std::size_t data_bytes() const override { return spec_.k / 8; }
  std::size_t parity_bytes() const override { return parity_bits_ / 8; }
  std::size_t max_errors() const override { return spec_.t; }
  /// BCH here has no erasure channel: marked positions carry no
  /// bit-level information (an erased *byte* is 8 unknown bits), so
  /// decode treats them as ordinary errors and this reports 0.
  std::size_t max_erasures() const override { return 0; }

  const GfmField& field() const { return field_; }
  /// Generator polynomial over GF(2), degree parity_bits().
  const Gf2Poly& generator() const { return gen_; }
  std::size_t parity_bits() const { return parity_bits_; }

  void encode_block(std::span<const std::uint8_t> data,
                    std::span<std::uint8_t> out) const override;

  /// Decode in place. `erasures` is accepted for interface uniformity
  /// and ignored (see max_erasures); corrected_errors counts flipped
  /// *bits*.
  FecDecodeResult decode_block(
      std::span<std::uint8_t> code,
      std::span<const std::uint32_t> erasures = {}) const override;

 private:
  FecSpec spec_;
  const GfmField& field_;
  Gf2Poly gen_;
  std::size_t parity_bits_ = 0;
  std::uint64_t gen_low_ = 0;  // g without its top bit, for the CRC loop
};

}  // namespace plfsr
