// Runtime registry of FEC codec engines, mirroring crc/engine_registry:
// a stable name ("rs-swar", "rs-table", "bch") maps to a factory that
// builds the codec for a FecSpec behind the shared FecCodec contract.
// Like the CRC registry this is the software analogue of PiCoGA's
// multi-context configuration cache — the host picks a decode/encode
// personality by name, and everything above the registry (the shared
// audit in tests, bench_fec, the examples) enumerates the catalogue, so
// a new codec engine is automatically audited and regression-gated.
//
// best_for(spec) returns the highest-preference available entry that
// supports the spec; the PLFSR_FEC_ENGINE environment variable (read
// per call, never cached) overrides the policy by name.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fec/fec_codec.hpp"

namespace plfsr {

using FecCodecHandle = std::shared_ptr<const FecCodec>;

/// One registered codec engine: stable name, factory and gates.
struct FecEngineInfo {
  std::string name;         ///< stable registry key, e.g. "rs-swar"
  std::string description;  ///< one-line human description
  /// Runtime capability gate; evaluated per call.
  std::function<bool()> available;
  /// Spec envelope: can this engine be constructed for `spec`?
  std::function<bool(const FecSpec&)> supports;
  /// Build the codec configured for `spec`.
  std::function<FecCodecHandle(const FecSpec&)> make;
  /// best_for() rank; higher wins.
  int preference = 0;
};

/// Name-keyed codec catalogue; instance() has the built-ins registered.
class FecRegistry {
 public:
  /// The shared registry. Not synchronized: register additional engines
  /// during start-up, before concurrent use.
  static FecRegistry& instance();

  FecRegistry() = default;

  /// Register an engine under info.name. Throws std::invalid_argument on
  /// an empty or duplicate name or missing callbacks.
  void register_engine(FecEngineInfo info);

  /// All registered names, in registration order.
  std::vector<std::string> names() const;

  /// Names whose capability gate passes right now.
  std::vector<std::string> available_names() const;

  /// Entry lookup; nullptr if the name is unknown.
  const FecEngineInfo* find(const std::string& name) const;

  /// True iff `name` is registered, available, and supports `spec`.
  bool supports(const std::string& name, const FecSpec& spec) const;

  /// Construct engine `name` for `spec`. Throws std::invalid_argument on
  /// an unknown name (the message lists the known ones) and
  /// std::runtime_error if the engine does not support the spec.
  FecCodecHandle make(const std::string& name, const FecSpec& spec) const;

  /// The best available engine for `spec`, or the one named by
  /// PLFSR_FEC_ENGINE if set (unknown / unsuitable names throw). Throws
  /// std::runtime_error if no engine can serve the spec.
  FecCodecHandle best_for(const FecSpec& spec) const;

 private:
  std::vector<FecEngineInfo> entries_;
};

/// Value of the PLFSR_FEC_ENGINE override ("" when unset/empty). Read
/// from the environment on every call.
std::string fec_engine_override();

}  // namespace plfsr
