#include "fec/rs_codec.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "gfm/gf256.hpp"
#include "lfsr/berlekamp_massey.hpp"

namespace plfsr {

namespace {

// Stack bound for the SWAR encoder's parity register: parity <= 254
// symbols for m = 8, padded up to a whole number of 8-byte lanes.
constexpr std::size_t kMaxParityPadded = 256;

}  // namespace

RsCodec::RsCodec(const FecSpec& spec, RsKernel kernel)
    : spec_(spec), field_(GfmField::of(spec.m)), kernel_(kernel) {
  if (spec.family != FecFamily::kReedSolomon)
    throw std::invalid_argument("RsCodec: spec family is not Reed-Solomon");
  if (spec.m < 2 || spec.m > 16)
    throw std::invalid_argument("RsCodec: m must be in [2, 16]");
  const std::size_t nmax = field_.order() - 1;
  if (spec.n < 2 || spec.n > nmax || spec.k == 0 || spec.k >= spec.n)
    throw std::invalid_argument("RsCodec: need 0 < k < n <= 2^m - 1 for " +
                                spec.name());
  parity_ = spec.n - spec.k;
  spec_.t = static_cast<unsigned>(parity_ / 2);

  if (kernel_ == RsKernel::kAuto)
    kernel_ = spec.m == 8 ? RsKernel::kSwar : RsKernel::kTable;
  if (kernel_ == RsKernel::kSwar && spec.m != 8)
    throw std::invalid_argument(
        "RsCodec: the SWAR kernel is GF(256)-only (m == 8)");

  // g(x) = prod_{i=0}^{parity-1} (x + alpha^(fcr+i)), monic of degree
  // parity. Built by repeated multiplication with the linear factors.
  gen_ = {1};
  for (std::size_t i = 0; i < parity_; ++i) {
    const std::vector<Sym> factor{field_.alpha_pow(spec_.fcr + i), 1};
    gen_ = field_.poly_mul(gen_, factor);
  }

  // Remainder-slot view: slot j of the parity register accumulates
  // fb * gen[parity-1-j]; the SWAR view packs those bytes 8 per word
  // (zero-padded — padding lanes contribute nothing).
  gen_by_slot_.resize(parity_);
  for (std::size_t j = 0; j < parity_; ++j)
    gen_by_slot_[j] = gen_[parity_ - 1 - j];
  if (spec.m == 8) {
    const std::size_t words = (parity_ + 7) / 8;
    std::vector<std::uint8_t> padded(words * 8, 0);
    for (std::size_t j = 0; j < parity_; ++j)
      padded[j] = static_cast<std::uint8_t>(gen_by_slot_[j]);
    gen_swar_.resize(words);
    std::memcpy(gen_swar_.data(), padded.data(), padded.size());
  }
}

// --- Encoding --------------------------------------------------------------

void RsCodec::encode_symbols(std::span<const Sym> data,
                             std::span<Sym> out) const {
  if (data.empty() || data.size() > spec_.k)
    throw std::invalid_argument("RsCodec::encode_symbols: data length " +
                                std::to_string(data.size()) +
                                " not in [1, k]");
  if (out.size() != data.size() + parity_)
    throw std::invalid_argument(
        "RsCodec::encode_symbols: out must be data + parity symbols");
  std::vector<Sym> r(parity_, 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = data[i];
    const Sym fb = field_.add(data[i], r[0]);
    for (std::size_t j = 0; j + 1 < parity_; ++j)
      r[j] = field_.add(r[j + 1], field_.mul(fb, gen_by_slot_[j]));
    r[parity_ - 1] = field_.mul(fb, gen_[0]);
  }
  std::copy(r.begin(), r.end(), out.begin() + data.size());
}

void RsCodec::encode_block(std::span<const std::uint8_t> data,
                           std::span<std::uint8_t> out) const {
  if (spec_.m != 8)
    throw std::logic_error(
        "RsCodec: byte-block transport requires m == 8; use the symbol "
        "API for " + spec_.name());
  if (data.empty() || data.size() > spec_.k)
    throw std::invalid_argument("RsCodec::encode_block: data length " +
                                std::to_string(data.size()) +
                                " not in [1, k]");
  if (out.size() != data.size() + parity_)
    throw std::invalid_argument(
        "RsCodec::encode_block: out must be data.size() + parity bytes");
  if (!data.empty())
    std::memcpy(out.data(), data.data(), data.size());

  if (kernel_ == RsKernel::kSwar) {
    // Parity register as padded byte lanes; per input symbol one feedback
    // byte is broadcast and folded into all generator lanes with
    // gf256::mul8 — (n-k)/8 word ops instead of n-k scalar multiplies.
    const std::size_t words = gen_swar_.size();
    std::uint8_t r[kMaxParityPadded] = {0};
    for (const std::uint8_t d : data) {
      const std::uint8_t fb = d ^ r[0];
      std::memmove(r, r + 1, parity_ - 1);
      r[parity_ - 1] = 0;
      if (fb == 0) continue;
      const std::uint64_t fbs = gf256::splat(fb);
      for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t lane;
        std::memcpy(&lane, r + 8 * w, 8);
        lane ^= gf256::mul8(fbs, gen_swar_[w]);
        std::memcpy(r + 8 * w, &lane, 8);
      }
    }
    std::memcpy(out.data() + data.size(), r, parity_);
    return;
  }

  // Table kernel: exp/log multiply per generator slot.
  std::vector<std::uint8_t> r(parity_, 0);
  for (const std::uint8_t d : data) {
    const std::uint8_t fb = d ^ r[0];
    if (fb == 0) {
      std::memmove(r.data(), r.data() + 1, parity_ - 1);
      r[parity_ - 1] = 0;
      continue;
    }
    for (std::size_t j = 0; j + 1 < parity_; ++j)
      r[j] = static_cast<std::uint8_t>(
          r[j + 1] ^ field_.mul(fb, gen_by_slot_[j]));
    r[parity_ - 1] = static_cast<std::uint8_t>(field_.mul(fb, gen_[0]));
  }
  std::memcpy(out.data() + data.size(), r.data(), parity_);
}

// --- Decoding --------------------------------------------------------------

namespace {

using Sym = GfmField::Sym;

/// Berlekamp–Massey initialised with the erasure locator: returns the
/// combined errata locator psi = Lambda * Gamma directly (degree
/// erasures + located errors). With no erasures this is plain BM over
/// the syndromes — the path below routes that case through the shared
/// lfsr/berlekamp_massey synthesis instead, and the registry audit pins
/// the two against each other implicitly via round-trips.
std::vector<Sym> errata_locator(const GfmField& f,
                                const std::vector<Sym>& syn,
                                const std::vector<Sym>& gamma,
                                std::size_t n_erasures) {
  const std::size_t p = syn.size();
  std::vector<Sym> lambda = gamma;
  lambda.resize(p + 1, 0);
  std::vector<Sym> b = lambda;
  std::vector<Sym> t(p + 1, 0);
  std::size_t el = n_erasures;
  for (std::size_t r = n_erasures + 1; r <= p; ++r) {
    Sym discr = 0;
    for (std::size_t i = 0; i < r; ++i)
      discr = f.add(discr, f.mul(lambda[i], syn[r - i - 1]));
    if (discr == 0) {
      // b *= x
      for (std::size_t i = p; i > 0; --i) b[i] = b[i - 1];
      b[0] = 0;
      continue;
    }
    t[0] = lambda[0];
    for (std::size_t i = 0; i < p; ++i)
      t[i + 1] = f.add(lambda[i + 1], f.mul(discr, b[i]));
    if (2 * el <= r + n_erasures - 1) {
      el = r + n_erasures - el;
      for (std::size_t i = 0; i <= p; ++i) b[i] = f.div(lambda[i], discr);
    } else {
      for (std::size_t i = p; i > 0; --i) b[i] = b[i - 1];
      b[0] = 0;
    }
    lambda = t;
  }
  return lambda;
}

int poly_degree(const std::vector<Sym>& p) {
  for (std::size_t i = p.size(); i-- > 0;)
    if (p[i] != 0) return static_cast<int>(i);
  return -1;
}

}  // namespace

template <typename SymT>
FecDecodeResult RsCodec::decode_impl(
    std::span<SymT> code, std::span<const std::uint32_t> erasures) const {
  const std::size_t len = code.size();
  if (len <= parity_ || len > spec_.n)
    throw std::invalid_argument("RsCodec::decode: block length " +
                                std::to_string(len) + " not in [n-k+1, n]");
  std::vector<char> erased(len, 0);
  for (const std::uint32_t e : erasures) {
    if (e >= len)
      throw std::invalid_argument("RsCodec::decode: erasure offset " +
                                  std::to_string(e) + " out of block");
    if (erased[e])
      throw std::invalid_argument("RsCodec::decode: duplicate erasure at " +
                                  std::to_string(e));
    erased[e] = 1;
  }
  if (erasures.size() > parity_) return {};  // beyond capacity: detected

  const GfmField& f = field_;
  // Syndromes S_j = R(alpha^(fcr+j)), Horner over the received symbols
  // (symbol i is the coefficient of x^(len-1-i)).
  std::vector<Sym> syn(parity_, 0);
  bool clean = true;
  for (std::size_t j = 0; j < parity_; ++j) {
    const Sym a = f.alpha_pow(spec_.fcr + j);
    Sym s = 0;
    for (std::size_t i = 0; i < len; ++i) s = f.add(f.mul(s, a), code[i]);
    syn[j] = s;
    clean = clean && s == 0;
  }
  if (clean) return {true, 0, 0};  // already a codeword (erasures correct)

  // Combined errata locator psi(x) = Lambda(x) * Gamma(x). Positions are
  // exponents: symbol index i <-> position len-1-i, X = alpha^position.
  std::vector<Sym> psi;
  if (erasures.empty()) {
    // Errors only: the shared GF(2^m) Berlekamp–Massey synthesis.
    const GfmLfsrSynthesis syn_fit = berlekamp_massey(f, syn);
    if (2 * syn_fit.complexity > parity_) return {};  // beyond t: detected
    psi = syn_fit.connection;
    if (poly_degree(psi) != static_cast<int>(syn_fit.complexity))
      return {};  // degenerate locator: detected failure
  } else {
    std::vector<Sym> gamma{1};
    for (std::size_t i = 0; i < len; ++i) {
      if (!erased[i]) continue;
      const Sym x = f.alpha_pow(len - 1 - i);
      psi = {1, x};  // (1 + X x)
      gamma = f.poly_mul(gamma, psi);
    }
    psi = errata_locator(f, syn, gamma, erasures.size());
  }
  const int deg = poly_degree(psi);
  if (deg <= 0) return {};  // nonzero syndromes but empty locator

  // Chien search over the block's real positions (a shortened code's
  // virtual leading zeros can never host a root; a locator pointing
  // there shows up as a root-count mismatch).
  std::vector<std::uint32_t> positions;
  for (std::size_t pos = 0; pos < len; ++pos) {
    if (f.poly_eval(psi, f.alpha_pow_neg(pos)) == 0)
      positions.push_back(static_cast<std::uint32_t>(pos));
  }
  if (positions.size() != static_cast<std::size_t>(deg)) return {};

  // Forney: Omega = S * psi mod x^parity; error value at X = alpha^pos is
  // X^(1-fcr) * Omega(X^-1) / psi'(X^-1).
  std::vector<Sym> omega = f.poly_mul(syn, psi);
  omega.resize(parity_);
  const std::vector<Sym> dpsi = f.poly_derivative(psi);
  FecDecodeResult res;
  for (const std::uint32_t pos : positions) {
    const Sym xinv = f.alpha_pow_neg(pos);
    const Sym denom = f.poly_eval(dpsi, xinv);
    if (denom == 0) return {};  // repeated root: detected failure
    const std::uint64_t qm1 = f.order() - 1;
    // X^(1-fcr) as an alpha exponent, reduced into [0, q-1).
    const long long expo =
        ((1 - static_cast<long long>(spec_.fcr)) * static_cast<long long>(pos)) %
        static_cast<long long>(qm1);
    const Sym xfac =
        f.alpha_pow(static_cast<std::uint64_t>(expo < 0 ? expo + qm1 : expo));
    const Sym value = f.mul(xfac, f.div(f.poly_eval(omega, xinv), denom));
    const std::size_t idx = len - 1 - pos;
    code[idx] = static_cast<SymT>(code[idx] ^ value);
    if (erased[idx])
      ++res.corrected_erasures;
    else
      ++res.corrected_errors;
  }

  // Post-correction recheck: the corrected word must be a codeword. This
  // is what turns every mis-location beyond the correction radius into a
  // *detected* failure instead of silent corruption.
  for (std::size_t j = 0; j < parity_; ++j) {
    const Sym a = f.alpha_pow(spec_.fcr + j);
    Sym s = 0;
    for (std::size_t i = 0; i < len; ++i) s = f.add(f.mul(s, a), code[i]);
    if (s != 0) return {};
  }
  res.ok = true;
  return res;
}

FecDecodeResult RsCodec::decode_symbols(
    std::span<Sym> code, std::span<const std::uint32_t> erasures) const {
  return decode_impl<Sym>(code, erasures);
}

FecDecodeResult RsCodec::decode_block(
    std::span<std::uint8_t> code,
    std::span<const std::uint32_t> erasures) const {
  if (spec_.m != 8)
    throw std::logic_error(
        "RsCodec: byte-block transport requires m == 8; use the symbol "
        "API for " + spec_.name());
  return decode_impl<std::uint8_t>(code, erasures);
}

}  // namespace plfsr
