// Shard-parallel FEC: batch encode/decode of a byte stream's blocks
// across the worker pool — the same decomposition ParallelCrc and
// ParallelScramble apply to their workloads, but with a twist that makes
// FEC the *easy* case: blocks are independent codewords, so there is no
// combine fold at all. Shard i takes a contiguous near-equal run of
// whole blocks (support/sharding.hpp policy), encodes or decodes them
// with the shared immutable codec, and the only cross-shard work is
// summing the correction counters afterwards.
//
// Stream geometry is the header-free block layout of fec_codec.hpp: all
// blocks full except possibly the last (shortened, >= 1 data byte), so
// block i's payload starts at i*data_bytes() and its codeword at
// i*code_bytes() — shard boundaries are pure arithmetic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "fec/fec_codec.hpp"
#include "fec/fec_registry.hpp"
#include "support/thread_pool.hpp"

namespace plfsr {

/// Aggregate outcome of a sharded decode (or encode, where only
/// `blocks` is meaningful).
struct ParallelFecResult {
  bool ok = true;                      ///< every block recovered
  std::size_t blocks = 0;              ///< blocks processed
  std::size_t failed_blocks = 0;       ///< blocks beyond correction radius
  std::size_t corrected_errors = 0;    ///< summed over blocks
  std::size_t corrected_erasures = 0;  ///< summed over blocks
};

/// Shard-parallel wrapper around a FecCodec.
class ParallelFec {
 public:
  /// Streams shorter than shards * min_blocks_per_shard blocks are
  /// processed serially on the calling thread.
  static constexpr std::size_t kDefaultMinBlocksPerShard = 2;

  /// `shards` >= 1; shard 0 runs on the calling thread, shards-1 pool
  /// workers take the rest. The codec is shared (immutable), never
  /// copied per shard.
  explicit ParallelFec(
      FecCodecHandle codec, std::size_t shards,
      std::size_t min_blocks_per_shard = kDefaultMinBlocksPerShard);

  const FecCodec& codec() const { return *codec_; }
  std::size_t shards() const { return shards_; }

  /// Encoded/decoded sizes for this codec (see fec_codec.hpp).
  std::size_t encoded_size(std::size_t data_len) const {
    return fec_encoded_size(*codec_, data_len);
  }
  std::size_t decoded_size(std::size_t code_len) const {
    return fec_decoded_size(*codec_, code_len);
  }

  /// Encode a stream: out.size() must equal encoded_size(data.size()).
  /// Returns the block count in `blocks`.
  ParallelFecResult encode(std::span<const std::uint8_t> data,
                           std::span<std::uint8_t> out) const;

  /// Decode a stream: out.size() must equal decoded_size(code.size()).
  /// `erasures` are byte offsets into `code` (any order, no duplicates).
  /// A block that fails to decode copies its received payload bytes to
  /// `out` unchanged (best effort) and counts in failed_blocks.
  ParallelFecResult decode(std::span<const std::uint8_t> code,
                           std::span<std::uint8_t> out,
                           std::span<const std::uint32_t> erasures = {}) const;

 private:
  FecCodecHandle codec_;
  std::size_t shards_;
  std::size_t min_blocks_per_shard_;
  std::unique_ptr<ThreadPool> pool_;  // shards_ - 1 workers
};

}  // namespace plfsr
