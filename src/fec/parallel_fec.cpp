#include "fec/parallel_fec.hpp"

#include <algorithm>
#include <cstring>
#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/sharding.hpp"

namespace plfsr {

ParallelFec::ParallelFec(FecCodecHandle codec, std::size_t shards,
                         std::size_t min_blocks_per_shard)
    : codec_(std::move(codec)),
      shards_(shards),
      min_blocks_per_shard_(min_blocks_per_shard) {
  if (!codec_) throw std::invalid_argument("ParallelFec: null codec");
  if (shards_ == 0)
    throw std::invalid_argument("ParallelFec: shards must be >= 1");
  if (shards_ > 1) pool_ = std::make_unique<ThreadPool>(shards_ - 1);
}

ParallelFecResult ParallelFec::encode(std::span<const std::uint8_t> data,
                                      std::span<std::uint8_t> out) const {
  if (out.size() != fec_encoded_size(*codec_, data.size()))
    throw std::invalid_argument(
        "ParallelFec::encode: out must be encoded_size(data) bytes");
  ParallelFecResult res;
  if (data.empty()) return res;

  const std::size_t d = codec_->data_bytes();
  const std::size_t c = codec_->code_bytes();
  const std::size_t nb = (data.size() + d - 1) / d;
  res.blocks = nb;

  auto encode_range = [&](std::size_t first, std::size_t count) {
    for (std::size_t b = first; b < first + count; ++b) {
      const std::size_t dlen = std::min(d, data.size() - b * d);
      codec_->encode_block(data.subspan(b * d, dlen),
                           out.subspan(b * c, dlen + codec_->parity_bytes()));
    }
  };

  if (shards_ == 1 || nb < shards_ * min_blocks_per_shard_) {
    encode_range(0, nb);
    return res;
  }
  const auto slices = near_equal_slices(nb, shards_);
  std::vector<std::future<void>> pending;
  for (std::size_t s = 1; s < slices.size(); ++s)
    pending.push_back(pool_->submit(
        [&, s] { encode_range(slices[s].offset, slices[s].length); }));
  encode_range(slices[0].offset, slices[0].length);
  for (auto& f : pending) f.get();
  return res;
}

ParallelFecResult ParallelFec::decode(
    std::span<const std::uint8_t> code, std::span<std::uint8_t> out,
    std::span<const std::uint32_t> erasures) const {
  if (out.size() != fec_decoded_size(*codec_, code.size()))
    throw std::invalid_argument(
        "ParallelFec::decode: out must be decoded_size(code) bytes");
  ParallelFecResult res;
  if (code.empty()) return res;

  const std::size_t d = codec_->data_bytes();
  const std::size_t c = codec_->code_bytes();
  const std::size_t p = codec_->parity_bytes();
  const std::size_t nb = fec_block_count(*codec_, code.size());
  res.blocks = nb;

  // Bucket the stream-offset erasures by block: sort once, then each
  // block slices its contiguous run and rebases to block-local offsets.
  std::vector<std::uint32_t> sorted(erasures.begin(), erasures.end());
  std::sort(sorted.begin(), sorted.end());
  if (!sorted.empty() && sorted.back() >= code.size())
    throw std::invalid_argument("ParallelFec::decode: erasure offset " +
                                std::to_string(sorted.back()) +
                                " outside the encoded stream");

  std::vector<ParallelFecResult> partial(shards_);
  auto decode_range = [&](std::size_t shard, std::size_t first,
                          std::size_t count) {
    ParallelFecResult& acc = partial[shard];
    std::vector<std::uint8_t> block;
    std::vector<std::uint32_t> local;
    for (std::size_t b = first; b < first + count; ++b) {
      const std::size_t off = b * c;
      const std::size_t clen = std::min(c, code.size() - off);
      block.assign(code.begin() + off, code.begin() + off + clen);
      local.clear();
      const auto lo = std::lower_bound(sorted.begin(), sorted.end(), off);
      const auto hi =
          std::lower_bound(sorted.begin(), sorted.end(), off + clen);
      for (auto it = lo; it != hi; ++it)
        local.push_back(*it - static_cast<std::uint32_t>(off));
      const FecDecodeResult r = codec_->decode_block(block, local);
      acc.corrected_errors += r.corrected_errors;
      acc.corrected_erasures += r.corrected_erasures;
      const std::size_t dlen = clen - p;
      if (r.ok) {
        std::memcpy(out.data() + b * d, block.data(), dlen);
      } else {
        acc.ok = false;
        ++acc.failed_blocks;
        std::memcpy(out.data() + b * d, code.data() + off, dlen);
      }
    }
  };

  if (shards_ == 1 || nb < shards_ * min_blocks_per_shard_) {
    decode_range(0, 0, nb);
  } else {
    const auto slices = near_equal_slices(nb, shards_);
    std::vector<std::future<void>> pending;
    for (std::size_t s = 1; s < slices.size(); ++s)
      pending.push_back(pool_->submit(
          [&, s] { decode_range(s, slices[s].offset, slices[s].length); }));
    decode_range(0, slices[0].offset, slices[0].length);
    for (auto& f : pending) f.get();
  }
  for (const ParallelFecResult& pr : partial) {
    res.ok = res.ok && pr.ok;
    res.failed_blocks += pr.failed_blocks;
    res.corrected_errors += pr.corrected_errors;
    res.corrected_erasures += pr.corrected_erasures;
  }
  return res;
}

}  // namespace plfsr
