#include "fec/bch_codec.hpp"

#include <stdexcept>
#include <string>

#include "lfsr/berlekamp_massey.hpp"

namespace plfsr {

namespace {

// Minimal polynomial of alpha^e over GF(2): expand
// prod_j (x + alpha^(e·2^j)) across the conjugacy class of e. The
// product is Frobenius-stable, so every coefficient must collapse into
// the prime field {0, 1}.
Gf2Poly minimal_polynomial(const GfmField& f, std::uint32_t e) {
  using Sym = GfmField::Sym;
  const std::uint32_t n = f.order() - 1;
  std::vector<Sym> poly{1};
  std::uint32_t c = e % n;
  do {
    poly = f.poly_mul(poly, {f.alpha_pow(c), 1});
    c = (c * 2) % n;
  } while (c != e % n);
  Gf2Poly out;
  for (std::size_t i = 0; i < poly.size(); ++i) {
    if (poly[i] > 1)
      throw std::logic_error(
          "minimal_polynomial: conjugacy product left the prime field");
    if (poly[i]) out.set_coeff(static_cast<unsigned>(i), true);
  }
  return out;
}

}  // namespace

BchCodec::BchCodec(const FecSpec& spec)
    : spec_(spec), field_(GfmField::of(spec.m)) {
  if (spec.family != FecFamily::kBch)
    throw std::invalid_argument("BchCodec: spec family is not BCH");
  if (spec.m < 3 || spec.m > 16)
    throw std::invalid_argument("BchCodec: m must be in [3, 16]");
  if (spec.t == 0)
    throw std::invalid_argument("BchCodec: t must be >= 1");

  // g = LCM of the minimal polynomials of alpha^1 .. alpha^2t. Conjugacy
  // classes are closed under squaring, so it suffices to take each odd
  // exponent's class once.
  const std::uint32_t n_bits = field_.order() - 1;
  std::vector<char> covered(n_bits, 0);
  gen_ = Gf2Poly::one();
  for (std::uint32_t e = 1; e <= 2 * spec.t; ++e) {
    std::uint32_t c = e % n_bits;
    if (c == 0 || covered[c]) continue;
    for (std::uint32_t x = c; !covered[x]; x = (x * 2) % n_bits)
      covered[x] = 1;
    gen_ = gen_ * minimal_polynomial(field_, c);
  }

  parity_bits_ = static_cast<std::size_t>(gen_.degree());
  if (parity_bits_ == 0 || parity_bits_ > 64)
    throw std::invalid_argument(
        "BchCodec: generator degree " + std::to_string(parity_bits_) +
        " outside the supported (0, 64] range");
  if (parity_bits_ >= n_bits)
    throw std::invalid_argument("BchCodec: t too large, no payload left");
  const std::size_t k_bits = n_bits - parity_bits_;
  if ((spec.n != 0 && spec.n != n_bits) || (spec.k != 0 && spec.k != k_bits))
    throw std::invalid_argument(
        "BchCodec: spec n/k disagree with the derived geometry " +
        std::to_string(n_bits) + "/" + std::to_string(k_bits));
  spec_.n = n_bits;
  spec_.k = k_bits;

  if (parity_bits_ % 8 != 0)
    throw std::invalid_argument(
        "BchCodec: byte-block transport needs deg(g) % 8 == 0, got " +
        std::to_string(parity_bits_));
  if (data_bytes() == 0)
    throw std::invalid_argument("BchCodec: payload shorter than one byte");

  gen_low_ = 0;
  for (unsigned i = 0; i < parity_bits_; ++i)
    if (gen_.coeff(i)) gen_low_ |= std::uint64_t{1} << i;
}

void BchCodec::encode_block(std::span<const std::uint8_t> data,
                            std::span<std::uint8_t> out) const {
  if (data.empty() || data.size() > data_bytes())
    throw std::invalid_argument("BchCodec::encode_block: data length " +
                                std::to_string(data.size()) +
                                " not in [1, data_bytes]");
  if (out.size() != data.size() + parity_bytes())
    throw std::invalid_argument(
        "BchCodec::encode_block: out must be data.size() + parity bytes");

  // CRC remainder loop over GF(2): rem holds d(x)·x^p mod g(x) with the
  // coefficient of x^(p-1) at the register's top bit.
  const std::uint64_t top = std::uint64_t{1} << (parity_bits_ - 1);
  const std::uint64_t mask =
      parity_bits_ == 64 ? ~std::uint64_t{0}
                         : (std::uint64_t{1} << parity_bits_) - 1;
  std::uint64_t rem = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = data[i];
    for (int b = 7; b >= 0; --b) {
      const bool fb = (((data[i] >> b) & 1u) != 0) != ((rem & top) != 0);
      rem = (rem << 1) & mask;
      if (fb) rem ^= gen_low_;
    }
  }
  for (std::size_t j = 0; j < parity_bytes(); ++j)
    out[data.size() + j] = static_cast<std::uint8_t>(
        rem >> (parity_bits_ - 8 * (j + 1)));
}

FecDecodeResult BchCodec::decode_block(
    std::span<std::uint8_t> code, std::span<const std::uint32_t>) const {
  if (code.size() <= parity_bytes() || code.size() > code_bytes())
    throw std::invalid_argument("BchCodec::decode_block: block length " +
                                std::to_string(code.size()) +
                                " not in [parity+1, code_bytes]");
  const GfmField& f = field_;
  const std::size_t nbits = code.size() * 8;
  const std::size_t n_syn = 2 * spec_.t;

  // S_j = R(alpha^j), j = 1..2t: Horner over the received bits, MSB of
  // byte 0 first (that bit is the coefficient of x^(nbits-1)).
  std::vector<Sym> syn(n_syn, 0);
  bool clean = true;
  for (std::size_t j = 0; j < n_syn; ++j) {
    const Sym a = f.alpha_pow(j + 1);
    Sym s = 0;
    for (std::size_t i = 0; i < code.size(); ++i) {
      const std::uint8_t byte = code[i];
      for (int b = 7; b >= 0; --b)
        s = f.add(f.mul(s, a), static_cast<Sym>((byte >> b) & 1u));
    }
    syn[j] = s;
    clean = clean && s == 0;
  }
  if (clean) return {true, 0, 0};

  // Shared GF(2^m) Berlekamp–Massey; a fit longer than t bits is beyond
  // the designed distance — detected failure.
  const GfmLfsrSynthesis fit = berlekamp_massey(f, syn);
  if (fit.complexity > spec_.t) return {};
  const std::vector<Sym>& lambda = fit.connection;
  int deg = -1;
  for (std::size_t i = lambda.size(); i-- > 0;)
    if (lambda[i] != 0) {
      deg = static_cast<int>(i);
      break;
    }
  if (deg != static_cast<int>(fit.complexity) || deg <= 0) return {};

  // Chien search over the real bit positions; binary code, so a root at
  // alpha^-pos just flips the bit with exponent pos.
  FecDecodeResult res;
  for (std::size_t pos = 0; pos < nbits; ++pos) {
    if (f.poly_eval(lambda, f.alpha_pow_neg(pos)) != 0) continue;
    const std::size_t bit = nbits - 1 - pos;
    code[bit / 8] ^= static_cast<std::uint8_t>(0x80u >> (bit % 8));
    ++res.corrected_errors;
  }
  if (res.corrected_errors != static_cast<std::size_t>(deg)) return {};

  // Post-correction recheck.
  for (std::size_t j = 0; j < n_syn; ++j) {
    const Sym a = f.alpha_pow(j + 1);
    Sym s = 0;
    for (std::size_t i = 0; i < code.size(); ++i)
      for (int b = 7; b >= 0; --b)
        s = f.add(f.mul(s, a), static_cast<Sym>((code[i] >> b) & 1u));
    if (s != 0) return {};
  }
  res.ok = true;
  return res;
}

}  // namespace plfsr
