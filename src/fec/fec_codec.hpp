// Forward error correction — the contract shared by the Reed–Solomon and
// BCH codecs, plus the code-parameter catalogue.
//
// FEC is the third workload family on this repo's linear-system core:
// where a CRC *detects* channel errors and a scrambler shapes the
// spectrum, an RS/BCH code *corrects* them — and all three are built
// from the same LFSR algebra (systematic encoding is polynomial division
// by a generator, exactly the CRC remainder loop; decoding runs
// Berlekamp–Massey, the same synthesis that recovers scrambler taps in
// lfsr/berlekamp_massey). The codecs speak GF(2^m) symbols internally
// (src/gfm); this header fixes the byte-level block contract the
// streaming pipeline, the sharded batch wrapper and the registry all
// code against.
//
// Block model: a codec turns up to data_bytes() of payload into payload
// + parity_bytes() of codeword. Shorter payloads encode as *shortened*
// codes (the omitted leading symbols are implicit zeros — standard
// practice, e.g. DVB's RS(204,188) is shortened RS(255,239)). decode
// corrects in place and reports whether the block was recovered; beyond
// the code's correction radius the failure is detected (post-correction
// syndrome recheck), never silently wrong within the decoder's power.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace plfsr {

enum class FecFamily {
  kReedSolomon,  ///< symbol-correcting RS(n, k) over GF(2^m)
  kBch,          ///< bit-correcting binary BCH with GF(2^m) syndromes
};

/// Code parameters — the FEC analogue of CrcSpec. For Reed–Solomon,
/// n/k are symbol counts (n <= 2^m - 1; n < 2^m - 1 is a shortened
/// code) and fcr is the first consecutive root exponent b of the
/// generator g(x) = prod_{i=0}^{n-k-1} (x - alpha^(b+i)). For BCH, t is
/// the designed correction capability; n = 2^m - 1 and k = n - deg g
/// are derived from it (leave n = k = 0 to accept the derived values).
struct FecSpec {
  FecFamily family = FecFamily::kReedSolomon;
  unsigned m = 8;      ///< symbol field GF(2^m)
  std::size_t n = 0;   ///< codeword length (symbols for RS, bits for BCH)
  std::size_t k = 0;   ///< payload length (symbols for RS, bits for BCH)
  unsigned fcr = 0;    ///< RS first consecutive root exponent
  unsigned t = 0;      ///< BCH designed errors (RS derives t = (n-k)/2)

  /// Human-readable form, e.g. "RS(255,223)" or "BCH(255,231,t=3)".
  std::string name() const;
};

/// Outcome of decoding one block.
struct FecDecodeResult {
  bool ok = false;                   ///< block recovered (syndromes clean)
  std::size_t corrected_errors = 0;  ///< corrected at unmarked positions
  std::size_t corrected_erasures = 0;  ///< corrected at marked positions
};

/// Uniform byte-block codec interface (the symbol-level APIs of the
/// concrete codecs remain available for generic-m work; this is the
/// transport-facing contract where symbols ride in bytes). Implementations
/// are immutable after construction and safe to share across threads.
class FecCodec {
 public:
  virtual ~FecCodec() = default;

  virtual const FecSpec& spec() const = 0;

  /// Payload capacity of one full block, bytes.
  virtual std::size_t data_bytes() const = 0;
  /// Parity appended to every block (full or shortened), bytes.
  virtual std::size_t parity_bytes() const = 0;
  /// Full-block codeword size: data_bytes() + parity_bytes().
  std::size_t code_bytes() const { return data_bytes() + parity_bytes(); }

  /// Correction radius per block: symbols (= bytes) for RS, bits for BCH.
  virtual std::size_t max_errors() const = 0;
  /// Erasure capacity per block (RS: n - k with 2e + r <= n - k; BCH
  /// treats marked positions as ordinary errors and reports 0 here).
  virtual std::size_t max_erasures() const = 0;

  /// Encode one (possibly shortened) block: out = data || parity.
  /// data.size() must be in [1, data_bytes()] and out.size() ==
  /// data.size() + parity_bytes(). Throws std::invalid_argument on a
  /// size violation.
  virtual void encode_block(std::span<const std::uint8_t> data,
                            std::span<std::uint8_t> out) const = 0;

  /// Decode one block in place. code.size() must be in
  /// [parity_bytes() + 1, code_bytes()]. `erasures` lists byte offsets
  /// within `code` the channel marked unreliable (order irrelevant,
  /// duplicates invalid). On ok the first code.size() - parity_bytes()
  /// bytes are the recovered payload; on failure the buffer contents are
  /// unspecified (the caller keeps its own copy if it needs the
  /// uncorrected symbols).
  virtual FecDecodeResult decode_block(
      std::span<std::uint8_t> code,
      std::span<const std::uint32_t> erasures = {}) const = 0;
};

// --- Stream <-> block geometry -------------------------------------------
//
// A byte stream of length L is cut into ceil(L / data_bytes()) blocks:
// all full except possibly the last, which keeps >= 1 data byte
// (shortened). Each block carries parity_bytes() of parity, so the
// encoded length determines the payload length and block count uniquely
// — no length header needed on the wire.

/// Encoded size of a payload of `data_len` bytes (0 stays 0).
std::size_t fec_encoded_size(const FecCodec& codec, std::size_t data_len);

/// Payload size recovered from an encoded length. Throws
/// std::invalid_argument if `code_len` cannot result from
/// fec_encoded_size (e.g. a trailing fragment of parity_bytes() or
/// less).
std::size_t fec_decoded_size(const FecCodec& codec, std::size_t code_len);

/// Number of blocks in an encoded buffer of `code_len` bytes.
std::size_t fec_block_count(const FecCodec& codec, std::size_t code_len);

// --- Parameter catalogue --------------------------------------------------

namespace fec {

FecSpec rs(unsigned m, std::size_t n, std::size_t k, unsigned fcr = 0);
FecSpec bch(unsigned m, unsigned t);

FecSpec rs_255_223();  ///< t = 16 — the deep-space workhorse geometry
FecSpec rs_255_239();  ///< t = 8 — the optical-transport / DVB mother code
FecSpec rs_204_188();  ///< DVB outer code: RS(255,239) shortened to a TS packet
FecSpec rs_15_11();    ///< GF(16) toy code, t = 2 (CD-class subcode)
FecSpec bch_255_t2();  ///< BCH(255,239), 2-bit correcting
FecSpec bch_255_t4();  ///< BCH(255,223), 4-bit correcting

/// The specs above — the sweep the registry audit, bench_fec and the
/// examples enumerate (every entry must round-trip on every engine that
/// claims it).
std::vector<FecSpec> all_fec_specs();

}  // namespace fec

}  // namespace plfsr
