#include "fec/fec_codec.hpp"

#include <stdexcept>

namespace plfsr {

std::string FecSpec::name() const {
  switch (family) {
    case FecFamily::kReedSolomon:
      return "RS(" + std::to_string(n) + "," + std::to_string(k) + ")";
    case FecFamily::kBch:
      return "BCH(" + std::to_string(n) + "," + std::to_string(k) +
             ",t=" + std::to_string(t) + ")";
  }
  return "FEC(?)";
}

std::size_t fec_encoded_size(const FecCodec& codec, std::size_t data_len) {
  if (data_len == 0) return 0;
  const std::size_t d = codec.data_bytes();
  const std::size_t blocks = (data_len + d - 1) / d;
  return data_len + blocks * codec.parity_bytes();
}

std::size_t fec_block_count(const FecCodec& codec, std::size_t code_len) {
  if (code_len == 0) return 0;
  const std::size_t c = codec.code_bytes();
  return (code_len + c - 1) / c;
}

std::size_t fec_decoded_size(const FecCodec& codec, std::size_t code_len) {
  if (code_len == 0) return 0;
  const std::size_t blocks = fec_block_count(codec, code_len);
  // Every block carries parity plus at least one data byte, and only the
  // last block may be short of a full codeword — so the trailing
  // fragment must itself exceed one block's parity.
  const std::size_t last = code_len - (blocks - 1) * codec.code_bytes();
  if (last <= codec.parity_bytes())
    throw std::invalid_argument(
        "fec_decoded_size: " + std::to_string(code_len) +
        " bytes is not a valid encoded length for " + codec.spec().name());
  return code_len - blocks * codec.parity_bytes();
}

namespace fec {

FecSpec rs(unsigned m, std::size_t n, std::size_t k, unsigned fcr) {
  FecSpec s;
  s.family = FecFamily::kReedSolomon;
  s.m = m;
  s.n = n;
  s.k = k;
  s.fcr = fcr;
  s.t = static_cast<unsigned>((n - k) / 2);
  return s;
}

FecSpec bch(unsigned m, unsigned t) {
  FecSpec s;
  s.family = FecFamily::kBch;
  s.m = m;
  s.t = t;
  return s;
}

FecSpec rs_255_223() { return rs(8, 255, 223); }
FecSpec rs_255_239() { return rs(8, 255, 239); }
FecSpec rs_204_188() { return rs(8, 204, 188); }
FecSpec rs_15_11() { return rs(4, 15, 11); }

FecSpec bch_255_t2() {
  FecSpec s = bch(8, 2);
  s.n = 255;
  s.k = 239;
  return s;
}

FecSpec bch_255_t4() {
  FecSpec s = bch(8, 4);
  s.n = 255;
  s.k = 223;
  return s;
}

std::vector<FecSpec> all_fec_specs() {
  return {rs_255_223(), rs_255_239(), rs_204_188(), rs_15_11(),
          bch_255_t2(), bch_255_t4()};
}

}  // namespace fec

}  // namespace plfsr
