#include "fec/fec_registry.hpp"

#include <cstdlib>
#include <stdexcept>

#include "fec/bch_codec.hpp"
#include "fec/rs_codec.hpp"

namespace plfsr {

namespace {

// The registry serves the byte-block FecCodec contract, so its RS
// entries are GF(256) codes only; other symbol widths go through
// RsCodec's symbol-level API directly.
bool rs_spec_ok(const FecSpec& s) {
  if (s.family != FecFamily::kReedSolomon || s.m != 8) return false;
  return s.n >= 2 && s.n <= 255 && s.k >= 1 && s.k < s.n;
}

bool bch_spec_ok(const FecSpec& s) {
  if (s.family != FecFamily::kBch) return false;
  if (s.m < 3 || s.m > 16 || s.t == 0) return false;
  try {
    BchCodec probe(s);  // geometry (deg g, byte alignment) needs the build
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

FecRegistry& FecRegistry::instance() {
  static FecRegistry* reg = [] {
    auto* r = new FecRegistry();
    r->register_engine({
        .name = "rs-swar",
        .description =
            "Reed-Solomon over GF(256), gf256::mul8 SWAR encoder lanes",
        .available = [] { return true; },
        .supports = rs_spec_ok,
        .make =
            [](const FecSpec& s) -> FecCodecHandle {
              return std::make_shared<RsCodec>(s, RsKernel::kSwar);
            },
        .preference = 20,
    });
    r->register_engine({
        .name = "rs-table",
        .description = "Reed-Solomon over GF(256), exp/log table multiplies",
        .available = [] { return true; },
        .supports = rs_spec_ok,
        .make =
            [](const FecSpec& s) -> FecCodecHandle {
              return std::make_shared<RsCodec>(s, RsKernel::kTable);
            },
        .preference = 10,
    });
    r->register_engine({
        .name = "bch",
        .description = "binary BCH, CRC-loop encoder + GF(2^m) syndromes",
        .available = [] { return true; },
        .supports = bch_spec_ok,
        .make =
            [](const FecSpec& s) -> FecCodecHandle {
              return std::make_shared<BchCodec>(s);
            },
        .preference = 10,
    });
    return r;
  }();
  return *reg;
}

void FecRegistry::register_engine(FecEngineInfo info) {
  if (info.name.empty())
    throw std::invalid_argument("FecRegistry: engine name must be nonempty");
  if (!info.available || !info.supports || !info.make)
    throw std::invalid_argument("FecRegistry: engine \"" + info.name +
                                "\" is missing callbacks");
  if (find(info.name) != nullptr)
    throw std::invalid_argument("FecRegistry: duplicate engine name \"" +
                                info.name + "\"");
  entries_.push_back(std::move(info));
}

std::vector<std::string> FecRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

std::vector<std::string> FecRegistry::available_names() const {
  std::vector<std::string> out;
  for (const auto& e : entries_)
    if (e.available()) out.push_back(e.name);
  return out;
}

const FecEngineInfo* FecRegistry::find(const std::string& name) const {
  for (const auto& e : entries_)
    if (e.name == name) return &e;
  return nullptr;
}

bool FecRegistry::supports(const std::string& name,
                           const FecSpec& spec) const {
  const FecEngineInfo* e = find(name);
  return e != nullptr && e->available() && e->supports(spec);
}

FecCodecHandle FecRegistry::make(const std::string& name,
                                 const FecSpec& spec) const {
  const FecEngineInfo* e = find(name);
  if (e == nullptr) {
    std::string known;
    for (const auto& n : names()) known += (known.empty() ? "" : ", ") + n;
    throw std::invalid_argument("FecRegistry: unknown engine \"" + name +
                                "\" (known: " + known + ")");
  }
  if (!e->available() || !e->supports(spec))
    throw std::runtime_error("FecRegistry: engine \"" + name +
                             "\" cannot serve " + spec.name());
  return e->make(spec);
}

FecCodecHandle FecRegistry::best_for(const FecSpec& spec) const {
  const std::string forced = fec_engine_override();
  if (!forced.empty()) return make(forced, spec);
  const FecEngineInfo* best = nullptr;
  for (const auto& e : entries_) {
    if (!e.available() || !e.supports(spec)) continue;
    if (best == nullptr || e.preference > best->preference) best = &e;
  }
  if (best == nullptr)
    throw std::runtime_error("FecRegistry: no engine can serve " +
                             spec.name());
  return best->make(spec);
}

std::string fec_engine_override() {
  const char* v = std::getenv("PLFSR_FEC_ENGINE");
  return v == nullptr ? std::string() : std::string(v);
}

}  // namespace plfsr
