// Reed–Solomon codec over GF(2^m): generator-polynomial systematic
// encoding, syndrome computation, Berlekamp–Massey (the shared
// lfsr/berlekamp_massey synthesis, run over the field), Chien search and
// the Forney value formula, with erasure-location decoding folded in
// through the modified-syndrome construction.
//
// The encoder is the exact CRC shape lifted to symbols: the parity of a
// message M(x) is M(x)·x^(n-k) mod g(x), computed by the same feedback
// shift register the CRC engines implement over GF(2) — per input symbol
// one feedback tap and n-k multiply-accumulates against the generator
// coefficients. For the GF(256) fast path those n-k multiplies collapse
// to (n-k)/8 SWAR words (gf256::mul8: eight field products per 64-bit
// op), the same lane-parallelism the paper's PiCoGA rows apply to the
// CRC; a table kernel (exp/log) is kept as the portable/reference pair,
// selectable per instance and A/B-checked by the registry audit.
//
// Conventions: codeword symbols c_0..c_{N-1} with c_i the coefficient of
// x^(N-1-i) (c_0 transmitted first); generator roots alpha^fcr ..
// alpha^(fcr+n-k-1); N <= n, and N < n is the standard shortened code
// (virtual leading zeros). Erasure positions are symbol indices into the
// block. Decoding succeeds iff 2·errors + erasures <= n - k; beyond
// that the failure is detected by construction-validity checks plus a
// post-correction syndrome recheck (a mis-located correction can never
// return ok).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "fec/fec_codec.hpp"
#include "gfm/gfm_field.hpp"

namespace plfsr {

/// Which multiply kernel drives the encoder's parity feedback loop.
enum class RsKernel {
  kAuto,   ///< SWAR when the field is the gf256 default, else table
  kTable,  ///< exp/log multiply (any m)
  kSwar,   ///< gf256::mul8 byte lanes (m == 8, field 0x11D only)
};

/// RS(n, k) over GF(2^m), byte-block transport for m == 8 plus a
/// symbol-level API for every m in [2, 16].
class RsCodec : public FecCodec {
 public:
  using Sym = GfmField::Sym;

  /// spec.family must be kReedSolomon with 2 <= m <= 16,
  /// 0 < k < n <= 2^m - 1. Throws std::invalid_argument otherwise, or if
  /// `kernel` is kSwar and the field is not the GF(256) default.
  explicit RsCodec(const FecSpec& spec, RsKernel kernel = RsKernel::kAuto);

  const FecSpec& spec() const override { return spec_; }
  std::size_t data_bytes() const override { return spec_.k; }
  std::size_t parity_bytes() const override { return parity_; }
  std::size_t max_errors() const override { return parity_ / 2; }
  std::size_t max_erasures() const override { return parity_; }

  const GfmField& field() const { return field_; }
  RsKernel kernel() const { return kernel_; }
  /// Generator coefficients g_0..g_{n-k} (monic, index = power).
  const std::vector<Sym>& generator() const { return gen_; }

  // --- Byte blocks (m == 8; throws std::logic_error otherwise) ----------

  void encode_block(std::span<const std::uint8_t> data,
                    std::span<std::uint8_t> out) const override;

  FecDecodeResult decode_block(
      std::span<std::uint8_t> code,
      std::span<const std::uint32_t> erasures = {}) const override;

  // --- Symbols (any m) ---------------------------------------------------

  /// Encode data.size() in [1, k] symbols; out.size() must be
  /// data.size() + (n - k). out = data || parity.
  void encode_symbols(std::span<const Sym> data, std::span<Sym> out) const;

  /// Decode in place; code.size() in [n-k+1, n]. `erasures` are symbol
  /// indices into `code`.
  FecDecodeResult decode_symbols(
      std::span<Sym> code, std::span<const std::uint32_t> erasures = {}) const;

 private:
  template <typename SymT>
  FecDecodeResult decode_impl(std::span<SymT> code,
                              std::span<const std::uint32_t> erasures) const;

  FecSpec spec_;
  const GfmField& field_;
  RsKernel kernel_;
  std::size_t parity_;          // n - k
  std::vector<Sym> gen_;        // generator, ascending powers, monic
  // Encoder views of the generator: coefficient for remainder slot j is
  // gen_[parity-1-j]; the SWAR path packs those bytes 8 per word.
  std::vector<Sym> gen_by_slot_;
  std::vector<std::uint64_t> gen_swar_;
};

}  // namespace plfsr
