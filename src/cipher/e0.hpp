// E0-style summation-combiner keystream generator — the Bluetooth cipher
// the paper cites ("E0 standard for the Bluetooth"). Four maximal-length
// LFSRs (25 + 31 + 33 + 39 = 128 state bits) drive a 4-bit summation
// combiner with two bits of blend memory; the integer carry is what
// makes the keystream nonlinear (a plain XOR of the four registers would
// fall to Berlekamp–Massey at complexity 128 — the tests demonstrate
// both sides).
//
// We implement the published datapath (registers, output taps, T1/T2
// blend) seeded directly with register states; Bluetooth's key-schedule
// (which shifts the session key through the registers) is out of scope —
// the paper's concern is the LFSR datapath throughput, not pairing.
#pragma once

#include <array>
#include <cstdint>

#include "support/bitstream.hpp"

namespace plfsr {

/// E0-style keystream generator.
class E0 {
 public:
  /// Register lengths, LSB-first packing per register; seeds must be
  /// nonzero in every register.
  static constexpr std::array<unsigned, 4> kLengths = {25, 31, 33, 39};

  explicit E0(const std::array<std::uint64_t, 4>& seeds,
              unsigned initial_carry = 0);

  /// Next keystream bit: clock all four registers, combine.
  bool next_bit();

  BitStream keystream(std::size_t n);

  /// XOR-encrypt/decrypt.
  BitStream process(const BitStream& in);

  /// Current 2+2-bit blend state (c_t, c_{t-1}) — exposed for tests.
  unsigned carry_state() const { return (c_prev_ << 2) | c_; }

 private:
  bool clock_register(int i);
  std::array<std::uint64_t, 4> reg_{};
  unsigned c_ = 0, c_prev_ = 0;  // 2-bit blend values c_t, c_{t-1}
};

}  // namespace plfsr
