#include "cipher/combiner.hpp"

#include <stdexcept>

namespace plfsr {

XorCombiner::XorCombiner(const std::vector<Gf2Poly>& gens,
                         const std::vector<std::uint64_t>& seeds) {
  if (gens.empty() || gens.size() != seeds.size())
    throw std::invalid_argument("XorCombiner: need matching gens/seeds");
  for (std::size_t i = 0; i < gens.size(); ++i) {
    sys_.push_back(make_prbs_system(gens[i]));
    Gf2Vec x = Gf2Vec::from_word(sys_.back().dim(), seeds[i]);
    if (x.is_zero())
      throw std::invalid_argument("XorCombiner: seed must be nonzero");
    x_.push_back(std::move(x));
  }
}

bool XorCombiner::next_bit() {
  bool y = false;
  for (std::size_t i = 0; i < sys_.size(); ++i)
    y ^= sys_[i].step(x_[i], false);
  return y;
}

BitStream XorCombiner::keystream(std::size_t n) {
  BitStream out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(next_bit());
  return out;
}

BitStream XorCombiner::process(const BitStream& in) {
  BitStream out;
  for (std::size_t i = 0; i < in.size(); ++i)
    out.push_back(in.get(i) ^ next_bit());
  return out;
}

LinearSystem XorCombiner::joint_system() const {
  std::size_t total = 0;
  for (const auto& s : sys_) total += s.dim();
  LinearSystem joint;
  joint.a = Gf2Matrix(total, total);
  joint.b = Gf2Vec(total);
  joint.c = Gf2Vec(total);
  joint.d = false;
  std::size_t off = 0;
  for (const auto& s : sys_) {
    const std::size_t k = s.dim();
    for (std::size_t r = 0; r < k; ++r)
      for (std::size_t c = 0; c < k; ++c)
        joint.a.set(off + r, off + c, s.a.get(r, c));
    for (std::size_t i = 0; i < k; ++i) joint.c.set(off + i, s.c.get(i));
    off += k;
  }
  return joint;
}

Gf2Vec XorCombiner::joint_state() const {
  std::size_t total = 0;
  for (const auto& x : x_) total += x.size();
  Gf2Vec joint(total);
  std::size_t off = 0;
  for (const auto& x : x_) {
    for (std::size_t i = 0; i < x.size(); ++i) joint.set(off + i, x.get(i));
    off += x.size();
  }
  return joint;
}

AddWithCarryCombiner::AddWithCarryCombiner(std::uint64_t key40) {
  // Seed LFSR-17 from the low 16 key bits with a forced 1 at position 8,
  // LFSR-25 from the high 24 bits with a forced 1 at position 21 — the
  // published CSS trick that rules out the all-zero state.
  const std::uint32_t k17 = static_cast<std::uint32_t>(key40 & 0xFFFF);
  const std::uint32_t k25 =
      static_cast<std::uint32_t>((key40 >> 16) & 0xFFFFFF);
  r17_ = ((k17 & 0xFF00) << 1) | (1u << 8) | (k17 & 0xFF);
  r25_ = ((k25 & 0xFFE000) << 1) | (1u << 21) | (k25 & 0x1FFF);
}

std::uint8_t AddWithCarryCombiner::lfsr17_byte() {
  std::uint8_t out = 0;
  for (int i = 0; i < 8; ++i) {
    // Taps x^17 + x^14 + 1: feedback from cells 16 and 13.
    const unsigned fb = ((r17_ >> 16) ^ (r17_ >> 13)) & 1;
    r17_ = ((r17_ << 1) | fb) & ((1u << 17) - 1);
    out = static_cast<std::uint8_t>((out << 1) | fb);
  }
  return out;
}

std::uint8_t AddWithCarryCombiner::lfsr25_byte() {
  std::uint8_t out = 0;
  for (int i = 0; i < 8; ++i) {
    // Taps x^25 + x^24 + x^23 + x^22 + 1 -> cells 24,23,22,21.
    const unsigned fb =
        ((r25_ >> 24) ^ (r25_ >> 23) ^ (r25_ >> 22) ^ (r25_ >> 21)) & 1;
    r25_ = ((r25_ << 1) | fb) & ((1u << 25) - 1);
    out = static_cast<std::uint8_t>((out << 1) | fb);
  }
  return out;
}

std::uint8_t AddWithCarryCombiner::next_byte() {
  const unsigned sum = lfsr17_byte() + lfsr25_byte() + carry_;
  carry_ = sum >> 8;
  return static_cast<std::uint8_t>(sum);
}

std::vector<std::uint8_t> AddWithCarryCombiner::keystream(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = next_byte();
  return out;
}

}  // namespace plfsr
