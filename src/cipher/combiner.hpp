// LFSR combination generators — the "combination of the bit streams of
// one or more LFSRs working in parallel" the paper describes as the basis
// of stream ciphers (§1).
//
// Two classic combiners are provided:
//  * XorCombiner     — linear: XOR of several LFSR outputs. Still linear,
//                      so it parallelizes with the same look-ahead
//                      machinery as the scrambler (the product system has
//                      A = diag(A_1..A_r), c = [c_1 .. c_r]).
//  * AddWithCarryCombiner — nonlinear byte combiner in the style of the
//                      DVD Content Scramble System's 40-bit cipher (two
//                      LFSRs whose byte outputs are added with carry);
//                      this models the workloads where only the LFSR taps
//                      map onto the reconfigurable fabric and the
//                      combiner runs on the processor.
#pragma once

#include <cstdint>
#include <vector>

#include "gf2/gf2_poly.hpp"
#include "lfsr/linear_system.hpp"
#include "support/bitstream.hpp"

namespace plfsr {

/// XOR of r independent LFSR keystreams. Linear in the joint state.
class XorCombiner {
 public:
  /// One (generator, seed) pair per register; seeds must be nonzero.
  XorCombiner(const std::vector<Gf2Poly>& gens,
              const std::vector<std::uint64_t>& seeds);

  /// Next combined keystream bit.
  bool next_bit();

  BitStream keystream(std::size_t n);

  /// XOR-encrypt/decrypt a bit stream.
  BitStream process(const BitStream& in);

  /// The equivalent single LinearSystem over the joint state (block
  /// diagonal A) — proves the combiner stays inside the paper's
  /// parallelization framework; tests check it bit-exactly.
  LinearSystem joint_system() const;
  Gf2Vec joint_state() const;

 private:
  std::vector<LinearSystem> sys_;
  std::vector<Gf2Vec> x_;
};

/// CSS-style 40-bit byte cipher: a 17-bit and a 25-bit LFSR each emit a
/// byte per step; the bytes are added with the carry from the previous
/// addition. Nonlinear, byte-oriented. (Structure per the published CSS
/// descriptions; we do not claim interoperability with DVD players —
/// this is the representative workload, per DESIGN.md's substitutions.)
class AddWithCarryCombiner {
 public:
  /// 40-bit key: 16 bits seed LFSR-17, 24 bits seed LFSR-25 (both made
  /// nonzero by the standard's inserted '1' bit).
  explicit AddWithCarryCombiner(std::uint64_t key40);

  std::uint8_t next_byte();

  std::vector<std::uint8_t> keystream(std::size_t n);

 private:
  std::uint8_t lfsr17_byte();
  std::uint8_t lfsr25_byte();
  std::uint32_t r17_ = 0, r25_ = 0;
  unsigned carry_ = 0;
};

}  // namespace plfsr
