// A5/1 — the GSM stream cipher the paper's introduction cites as the
// canonical LFSR-based cipher ("the A5/1 standard which ensures
// communication privacy of GSM telephones").
//
// Three LFSRs (19, 22, 23 bits; generators in lfsr/catalog.hpp) are
// clocked with the majority rule: each register steps only when its
// clocking bit agrees with the majority of the three clocking bits. The
// irregular clocking is what makes A5/1 nonlinear — it cannot be captured
// by the look-ahead matrix framework (a point the paper implicitly makes
// by mapping only the *linear* kernels onto PiCoGA and leaving control to
// the processor); we implement it bit-serially as the realistic "cipher
// workload" for the examples and the RISC energy comparisons.
//
// Test vector (widely published): key 12 23 45 67 89 AB CD EF,
// frame 0x134 -> downlink keystream begins 53 4E AA 58 2F E8 15 1A B6 E1 ...
#pragma once

#include <array>
#include <cstdint>

#include "support/bitstream.hpp"

namespace plfsr {

/// A5/1 keystream generator.
class A51 {
 public:
  /// Initialise with the 64-bit session key (byte 0 loaded first, LSB
  /// first) and the 22-bit frame number, running the standard 64+22
  /// regularly-clocked loading steps and 100 majority-clocked mixing steps.
  A51(const std::array<std::uint8_t, 8>& key, std::uint32_t frame_number);

  /// Next keystream bit (majority-clocked).
  bool next_bit();

  /// The standard per-frame output: 114 downlink + 114 uplink bits.
  BitStream downlink();  ///< first 114 bits
  BitStream uplink();    ///< next 114 bits

  /// Raw register access for tests.
  std::uint32_t r1() const { return r1_; }
  std::uint32_t r2() const { return r2_; }
  std::uint32_t r3() const { return r3_; }

 private:
  void clock_all(bool bit);     // regular clocking with key/frame injection
  void clock_majority();

  std::uint32_t r1_ = 0, r2_ = 0, r3_ = 0;
  bool downlink_taken_ = false;
};

}  // namespace plfsr
