#include "cipher/e0.hpp"

#include <stdexcept>

namespace plfsr {

namespace {
// Feedback tap masks (bit j = cell that entered j+1 clocks ago; tap x^e
// reads cell e-1) for the four generator polynomials of the Bluetooth
// specification:
//   t1: x^25 + x^20 + x^12 + x^8  + 1
//   t2: x^31 + x^24 + x^16 + x^12 + 1
//   t3: x^33 + x^28 + x^24 + x^4  + 1
//   t4: x^39 + x^36 + x^28 + x^4  + 1
constexpr std::uint64_t tap_mask(std::initializer_list<unsigned> exps) {
  std::uint64_t m = 0;
  for (unsigned e : exps) m |= std::uint64_t{1} << (e - 1);
  return m;
}
constexpr std::uint64_t kTaps[4] = {
    tap_mask({25, 20, 12, 8}),
    tap_mask({31, 24, 16, 12}),
    tap_mask({33, 28, 24, 4}),
    tap_mask({39, 36, 28, 4}),
};
// Output points: the spec reads the registers at cells 24, 24, 32, 32
// (1-indexed), i.e. state bits 23, 23, 31, 31.
constexpr unsigned kOutBit[4] = {23, 23, 31, 31};

// The blend bijections on 2-bit values: T1 is the identity, T2 swaps and
// mixes: T2(x1 x0) = (x0, x1 ^ x0).
constexpr unsigned t1(unsigned x) { return x & 3; }
constexpr unsigned t2(unsigned x) {
  const unsigned x0 = x & 1, x1 = (x >> 1) & 1;
  return ((x0) << 1) | (x1 ^ x0);
}
}  // namespace

E0::E0(const std::array<std::uint64_t, 4>& seeds, unsigned initial_carry) {
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t mask = (std::uint64_t{1} << kLengths[i]) - 1;
    reg_[i] = seeds[i] & mask;
    if (reg_[i] == 0)
      throw std::invalid_argument("E0: register seed must be nonzero");
  }
  c_ = initial_carry & 3;
  c_prev_ = 0;
}

bool E0::clock_register(int i) {
  const std::uint64_t mask = (std::uint64_t{1} << kLengths[i]) - 1;
  const bool fb = __builtin_popcountll(reg_[i] & kTaps[i]) & 1;
  reg_[i] = ((reg_[i] << 1) | (fb ? 1 : 0)) & mask;
  return ((reg_[i] >> kOutBit[i]) & 1) != 0;
}

bool E0::next_bit() {
  unsigned sum = 0;
  unsigned parity = 0;
  for (int i = 0; i < 4; ++i) {
    const bool x = clock_register(i);
    sum += x;
    parity ^= x;
  }
  const bool z = (parity ^ c_) & 1;
  // Summation update: s_{t+1} = floor((sum + c_t) / 2), then blend with
  // the two delayed carries.
  const unsigned s = (sum + c_) >> 1;
  const unsigned next_c = (s ^ t1(c_) ^ t2(c_prev_)) & 3;
  c_prev_ = c_;
  c_ = next_c;
  return z;
}

BitStream E0::keystream(std::size_t n) {
  BitStream out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(next_bit());
  return out;
}

BitStream E0::process(const BitStream& in) {
  BitStream out;
  for (std::size_t i = 0; i < in.size(); ++i)
    out.push_back(in.get(i) ^ next_bit());
  return out;
}

}  // namespace plfsr
