#include "cipher/a51.hpp"

#include <stdexcept>

namespace plfsr {

namespace {
// Register sizes and masks.
constexpr std::uint32_t kMask1 = (1u << 19) - 1;
constexpr std::uint32_t kMask2 = (1u << 22) - 1;
constexpr std::uint32_t kMask3 = (1u << 23) - 1;
// Feedback taps (bit numbers of cells XORed to form the new bit 0):
// R1: x^19+x^18+x^17+x^14+1 -> cells 18,17,16,13
// R2: x^22+x^21+1           -> cells 21,20
// R3: x^23+x^22+x^21+x^8+1  -> cells 22,21,20,7
constexpr std::uint32_t kTaps1 = (1u << 18) | (1u << 17) | (1u << 16) | (1u << 13);
constexpr std::uint32_t kTaps2 = (1u << 21) | (1u << 20);
constexpr std::uint32_t kTaps3 = (1u << 22) | (1u << 21) | (1u << 20) | (1u << 7);
// Clocking bits.
constexpr std::uint32_t kClk1 = 1u << 8;
constexpr std::uint32_t kClk2 = 1u << 10;
constexpr std::uint32_t kClk3 = 1u << 10;

bool parity(std::uint32_t v) { return __builtin_popcount(v) & 1; }

std::uint32_t step(std::uint32_t reg, std::uint32_t taps, std::uint32_t mask,
                   bool inject) {
  const bool fb = parity(reg & taps) ^ inject;
  return ((reg << 1) | (fb ? 1u : 0u)) & mask;
}
}  // namespace

A51::A51(const std::array<std::uint8_t, 8>& key, std::uint32_t frame_number) {
  if (frame_number >= (1u << 22))
    throw std::invalid_argument("A51: frame number must be 22 bits");
  // Load the key: 64 regular clocks, key bit XORed into every feedback.
  for (int i = 0; i < 64; ++i)
    clock_all((key[i / 8] >> (i % 8)) & 1);
  // Load the frame number: 22 regular clocks.
  for (int i = 0; i < 22; ++i)
    clock_all((frame_number >> i) & 1);
  // Mix: 100 majority-clocked steps, output discarded.
  for (int i = 0; i < 100; ++i) clock_majority();
}

void A51::clock_all(bool bit) {
  r1_ = step(r1_, kTaps1, kMask1, bit);
  r2_ = step(r2_, kTaps2, kMask2, bit);
  r3_ = step(r3_, kTaps3, kMask3, bit);
}

void A51::clock_majority() {
  const bool c1 = r1_ & kClk1, c2 = r2_ & kClk2, c3 = r3_ & kClk3;
  const bool maj = (c1 + c2 + c3) >= 2;
  if (c1 == maj) r1_ = step(r1_, kTaps1, kMask1, false);
  if (c2 == maj) r2_ = step(r2_, kTaps2, kMask2, false);
  if (c3 == maj) r3_ = step(r3_, kTaps3, kMask3, false);
}

bool A51::next_bit() {
  clock_majority();
  return parity(r1_ & (1u << 18)) ^ parity(r2_ & (1u << 21)) ^
         parity(r3_ & (1u << 22));
}

BitStream A51::downlink() {
  if (downlink_taken_)
    throw std::logic_error("A51::downlink: already consumed");
  downlink_taken_ = true;
  BitStream out;
  for (int i = 0; i < 114; ++i) out.push_back(next_bit());
  return out;
}

BitStream A51::uplink() {
  if (!downlink_taken_)
    throw std::logic_error("A51::uplink: take downlink first");
  BitStream out;
  for (int i = 0; i < 114; ++i) out.push_back(next_bit());
  return out;
}

}  // namespace plfsr
