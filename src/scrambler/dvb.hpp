// DVB/MPEG-TS energy-dispersal randomizer (ETSI EN 300 429 / DVB-C,
// DVB-S): the framed scrambler the paper's "Digital Broadcasting" domain
// refers to. Unlike the free-running 802.11 scrambler, DVB reinitialises
// the PRBS (1 + x^14 + x^15, seed 100101010000000) at the start of every
// group of eight 188-byte transport-stream packets, inverts the first
// sync byte (0x47 -> 0xB8), leaves the other seven sync bytes
// unscrambled (but keeps the PRBS clocking through them) — real framing
// logic on top of the LFSR core, which is exactly the processor/fabric
// split the paper advocates: framing on the RISC, PRBS on PiCoGA.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/bitstream.hpp"

namespace plfsr::dvb {

inline constexpr std::size_t kPacketBytes = 188;
inline constexpr std::size_t kPacketsPerGroup = 8;
inline constexpr std::uint8_t kSyncByte = 0x47;
inline constexpr std::uint8_t kInvertedSyncByte = 0xB8;

/// Scramble (== descramble) a sequence of whole TS packets. Input length
/// must be a multiple of 188 bytes and every packet must begin with the
/// sync byte 0x47 on scramble (0x47/0xB8 accepted on descramble).
std::vector<std::uint8_t> randomize(std::span<const std::uint8_t> packets);
std::vector<std::uint8_t> derandomize(std::span<const std::uint8_t> packets);

/// The PRBS sequence itself (bit per call order), exposed so tests can
/// pin the standard's generator and seed.
BitStream prbs(std::size_t n_bits);

/// Build `count` well-formed TS packets with pseudo-random payloads.
std::vector<std::uint8_t> make_test_stream(std::size_t count,
                                           std::uint64_t seed);

}  // namespace plfsr::dvb
