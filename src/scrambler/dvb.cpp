#include "scrambler/dvb.hpp"

#include <stdexcept>

#include "support/rng.hpp"

namespace plfsr::dvb {

namespace {

/// The EN 300 429 PRBS: 1 + x^14 + x^15, registers loaded with the init
/// sequence 100101010000000 (register 1 first). Bit i of `reg` holds
/// register i+1; the output/feedback is reg14 XOR reg15.
class Prbs {
 public:
  void reset() { reg_ = 0x00A9; }  // regs 1,4,6,8 = 1
  bool step() {
    const bool fb = (((reg_ >> 13) ^ (reg_ >> 14)) & 1) != 0;
    reg_ = static_cast<std::uint16_t>(((reg_ << 1) | (fb ? 1 : 0)) & 0x7FFF);
    return fb;
  }
  std::uint8_t step_byte(bool use_output) {
    std::uint8_t out = 0;
    for (int i = 0; i < 8; ++i)
      out = static_cast<std::uint8_t>((out << 1) | (step() ? 1 : 0));
    return use_output ? out : 0;
  }

 private:
  std::uint16_t reg_ = 0x00A9;
};

std::vector<std::uint8_t> process(std::span<const std::uint8_t> packets,
                                  bool scrambling) {
  if (packets.size() % kPacketBytes != 0)
    throw std::invalid_argument("dvb: stream must be whole 188-byte packets");
  const std::size_t n_packets = packets.size() / kPacketBytes;
  std::vector<std::uint8_t> out(packets.size());
  Prbs prbs;
  for (std::size_t p = 0; p < n_packets; ++p) {
    const std::size_t base = p * kPacketBytes;
    const bool group_start = p % kPacketsPerGroup == 0;
    const std::uint8_t sync = packets[base];
    if (group_start) {
      // Inverted sync byte marks the group; the PRBS restarts and its
      // first bit applies to the byte AFTER the sync byte.
      const std::uint8_t want = scrambling ? kSyncByte : kInvertedSyncByte;
      if (sync != want)
        throw std::invalid_argument("dvb: bad sync byte at group start");
      out[base] = scrambling ? kInvertedSyncByte : kSyncByte;
      prbs.reset();
    } else {
      if (sync != kSyncByte)
        throw std::invalid_argument("dvb: bad sync byte");
      out[base] = kSyncByte;
      // PRBS keeps clocking through non-inverted sync bytes, output
      // disabled (EN 300 429 §8).
      prbs.step_byte(false);
    }
    for (std::size_t i = 1; i < kPacketBytes; ++i)
      out[base + i] =
          static_cast<std::uint8_t>(packets[base + i] ^ prbs.step_byte(true));
  }
  return out;
}

}  // namespace

std::vector<std::uint8_t> randomize(std::span<const std::uint8_t> packets) {
  return process(packets, /*scrambling=*/true);
}

std::vector<std::uint8_t> derandomize(std::span<const std::uint8_t> packets) {
  return process(packets, /*scrambling=*/false);
}

BitStream prbs(std::size_t n_bits) {
  Prbs p;
  BitStream out;
  for (std::size_t i = 0; i < n_bits; ++i) out.push_back(p.step());
  return out;
}

std::vector<std::uint8_t> make_test_stream(std::size_t count,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out;
  out.reserve(count * kPacketBytes);
  for (std::size_t p = 0; p < count; ++p) {
    out.push_back(kSyncByte);
    const auto payload = rng.next_bytes(kPacketBytes - 1);
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

}  // namespace plfsr::dvb
