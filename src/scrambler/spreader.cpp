#include "scrambler/spreader.hpp"

#include <stdexcept>

namespace plfsr {

Spreader::Spreader(const Gf2Poly& g, std::uint64_t seed,
                   std::size_t chips_per_bit)
    : sys_(make_prbs_system(g)), x_(sys_.dim()), c_(chips_per_bit) {
  if (c_ == 0) throw std::invalid_argument("Spreader: chips_per_bit >= 1");
  reseed(seed);
}

void Spreader::reseed(std::uint64_t seed) {
  x_ = Gf2Vec::from_word(sys_.dim(), seed);
  if (x_.is_zero())
    throw std::invalid_argument("Spreader: seed must be nonzero");
}

BitStream Spreader::spread(const BitStream& data) {
  BitStream out;
  for (std::size_t i = 0; i < data.size(); ++i)
    for (std::size_t j = 0; j < c_; ++j)
      out.push_back(data.get(i) ^ sys_.step(x_, false));
  return out;
}

BitStream Spreader::despread(const BitStream& chips) {
  if (chips.size() % c_ != 0)
    throw std::invalid_argument("Spreader: chip stream not a bit multiple");
  BitStream out;
  for (std::size_t i = 0; i < chips.size(); i += c_) {
    std::size_t votes = 0;
    for (std::size_t j = 0; j < c_; ++j)
      votes += chips.get(i + j) ^ sys_.step(x_, false);
    out.push_back(2 * votes > c_);
  }
  return out;
}

}  // namespace plfsr
