#include "scrambler/scrambler.hpp"

#include <stdexcept>

namespace plfsr {

AdditiveScrambler::AdditiveScrambler(const Gf2Poly& g, std::uint64_t seed)
    : sys_(make_scrambler_system(g)), x_(sys_.dim()) {
  reseed(seed);
}

void AdditiveScrambler::reseed(std::uint64_t seed) {
  x_ = Gf2Vec::from_word(sys_.dim(), seed);
  if (x_.is_zero())
    throw std::invalid_argument("AdditiveScrambler: seed must be nonzero");
}

BitStream AdditiveScrambler::process(const BitStream& in) {
  return sys_.run(x_, in);
}

BitStream AdditiveScrambler::keystream(std::size_t n) {
  return process(BitStream(n));
}

ParallelScrambler::ParallelScrambler(const Gf2Poly& g, std::size_t m,
                                     std::uint64_t seed)
    : sys_(make_scrambler_system(g)), la_(sys_, m), x_(sys_.dim()) {
  reseed(seed);
}

void ParallelScrambler::reseed(std::uint64_t seed) {
  x_ = Gf2Vec::from_word(sys_.dim(), seed);
  if (x_.is_zero())
    throw std::invalid_argument("ParallelScrambler: seed must be nonzero");
}

BitStream ParallelScrambler::process(const BitStream& in) {
  BitStream out;
  const std::size_t m = la_.m();
  std::size_t pos = 0;
  for (; pos + m <= in.size(); pos += m) {
    const Gf2Vec u = chunk_to_vec(in, pos, m);
    const Gf2Vec y = la_.step(x_, u);
    for (std::size_t i = 0; i < m; ++i) out.push_back(y.get(i));
  }
  for (; pos < in.size(); ++pos)  // serial tail, keeps the state exact
    out.push_back(sys_.step(x_, in.get(pos)));
  return out;
}

MultiplicativeScrambler::MultiplicativeScrambler(const Gf2Poly& g) : g_(g) {
  const int deg = g.degree();
  if (deg <= 0 || deg > 63)
    throw std::invalid_argument("MultiplicativeScrambler: bad generator");
  k_ = static_cast<unsigned>(deg);
  // Tap x^j reads the register cell j-1 (the bit that entered j clocks
  // ago), exactly as in the Fibonacci companion convention.
  for (unsigned j = 1; j <= k_; ++j)
    if (g.coeff(j)) taps_ |= std::uint64_t{1} << (j - 1);
}

void MultiplicativeScrambler::reset() { reg_scr_ = reg_des_ = 0; }

BitStream MultiplicativeScrambler::scramble(const BitStream& in) {
  BitStream out;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const bool fb = __builtin_parityll(reg_scr_ & taps_);
    const bool y = in.get(i) ^ fb;
    reg_scr_ = ((reg_scr_ << 1) | (y ? 1u : 0u)) &
               ((std::uint64_t{1} << k_) - 1);
    out.push_back(y);
  }
  return out;
}

BitStream MultiplicativeScrambler::descramble(const BitStream& in) {
  BitStream out;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const bool fb = __builtin_parityll(reg_des_ & taps_);
    const bool y = in.get(i) ^ fb;
    reg_des_ = ((reg_des_ << 1) | (in.get(i) ? 1u : 0u)) &
               ((std::uint64_t{1} << k_) - 1);
    out.push_back(y);
  }
  return out;
}

}  // namespace plfsr
