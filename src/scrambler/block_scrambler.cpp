#include "scrambler/block_scrambler.hpp"

#include <cstring>
#include <stdexcept>

#include "lfsr/linear_system.hpp"
#include "lfsr/lookahead.hpp"
#include "support/host_threads.hpp"
#include "support/sharding.hpp"

namespace plfsr {

BlockScrambler::BlockScrambler(const Gf2Poly& g, std::uint64_t seed) {
  const LinearSystem sys = make_scrambler_system(g);
  k_ = sys.dim();
  if (k_ > 64)
    throw std::invalid_argument("BlockScrambler: generator degree must be <= 64");
  const LookAhead la(sys, 64);
  for (std::size_t j = 0; j < k_; ++j) {
    out_cols_[0][j] = la.output_column_word(j);
    hop_cols_[j] = la.state_column_word(j);
  }
  // Lane l reads 64 bits ahead of lane l-1: its output masks are the
  // columns of C_64 · A^{64l}.
  Gf2Matrix a_pow = la.am();  // A^{64l}, starting at l = 1
  for (std::size_t l = 1; l < kLanes; ++l) {
    const Gf2Matrix cm_l = la.cm() * a_pow;
    for (std::size_t j = 0; j < k_; ++j)
      out_cols_[l][j] = cm_l.column(j).to_word();
    a_pow = a_pow * la.am();
  }
  for (std::size_t j = 0; j < k_; ++j)
    hop8_cols_[j] = a_pow.column(j).to_word();  // A^{64·kLanes}
  adv_ = Gf2Advance(sys.a);
  reseed(seed);
}

void BlockScrambler::reseed(std::uint64_t seed) {
  seed &= adv_.mask();
  if (seed == 0)
    throw std::invalid_argument("BlockScrambler: seed must be nonzero");
  seed_ = seed;
  x_ = seed;
  pos_ = 0;
}

void BlockScrambler::seek(std::uint64_t bit_pos) {
  if (bit_pos == pos_) return;
  if (bit_pos == 0) {
    x_ = seed_;
    pos_ = 0;
    return;
  }
  // advance() costs one matrix-apply per set bit of the exponent, so hop
  // from whichever anchor (live state or seed) reaches bit_pos in fewer
  // applies. Both are exact: x_ = A^pos_ seed_ implies
  // A^(bit_pos-pos_) x_ = A^bit_pos seed_.
  if (bit_pos > pos_ &&
      __builtin_popcountll(bit_pos - pos_) < __builtin_popcountll(bit_pos)) {
    x_ = adv_.advance(x_, bit_pos - pos_);
  } else {
    x_ = adv_.advance(seed_, bit_pos);
  }
  pos_ = bit_pos;
}

std::uint64_t BlockScrambler::keystream_word() {
  const std::uint64_t w = gather(out_cols_[0], x_);
  x_ = gather(hop_cols_, x_);
  pos_ += 64;
  ++block_steps_;
  return w;
}

template <bool kXor>
void BlockScrambler::run(std::uint8_t* data, std::size_t n) {
  std::size_t i = 0;
  // 64-byte superstep: kLanes independent out-gathers from one state,
  // one loop-carried hop gather per chunk.
  for (; i + 8 * kLanes <= n; i += 8 * kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      std::uint64_t w = gather(out_cols_[l], x_);
      if constexpr (kXor) {
        std::uint64_t d;
        std::memcpy(&d, data + i + 8 * l, 8);
        w ^= d;
      }
      std::memcpy(data + i + 8 * l, &w, 8);
    }
    x_ = gather(hop8_cols_, x_);
    block_steps_ += kLanes;
  }
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w = gather(out_cols_[0], x_);
    if constexpr (kXor) {
      std::uint64_t d;
      std::memcpy(&d, data + i, 8);
      w ^= d;
    }
    std::memcpy(data + i, &w, 8);
    x_ = gather(hop_cols_, x_);
    ++block_steps_;
  }
  if (i < n) {
    std::uint64_t w = gather(out_cols_[0], x_);
    for (; i < n; ++i, w >>= 8) {
      const std::uint8_t k = static_cast<std::uint8_t>(w);
      data[i] = kXor ? data[i] ^ k : k;
    }
    // Hop the state by just the consumed tail bits so a subsequent call
    // continues the exact serial sequence.
    x_ = adv_.advance(x_, (n & 7) * 8);
    ++block_steps_;
  }
  pos_ += 8 * static_cast<std::uint64_t>(n);
}

void BlockScrambler::process(std::uint8_t* data, std::size_t n) {
  run<true>(data, n);
}

void BlockScrambler::keystream_into(std::uint8_t* out, std::size_t n) {
  run<false>(out, n);
}

std::vector<std::uint8_t> BlockScrambler::keystream_bytes(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  keystream_into(out.data(), n);
  return out;
}

ParallelScramble::ParallelScramble(const Gf2Poly& g, std::uint64_t seed,
                                   std::size_t shards,
                                   std::size_t min_shard_bytes,
                                   bool cap_to_host)
    : min_shard_bytes_(min_shard_bytes == 0 ? 1 : min_shard_bytes) {
  if (shards == 0)
    throw std::invalid_argument("ParallelScramble: shards must be >= 1");
  if (cap_to_host) {
    // host_threads(), not hardware_concurrency(): inside a cgroup quota
    // the machine's core count over-reports what this process may run,
    // and on hosts where the report is 0 the old clamp silently did
    // nothing at all.
    const std::size_t hw = host_threads();
    if (shards > hw) shards = hw;
  }
  engines_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) engines_.emplace_back(g, seed);
  if (shards > 1) pool_ = std::make_unique<ThreadPool>(shards - 1);
}

void ParallelScramble::process(std::uint8_t* data, std::size_t n) {
  const std::size_t shards = effective_shards(n);
  if (shards == 1) {
    engines_[0].seek(0);
    engines_[0].process(data, n);
    return;
  }
  // Near-equal split (shared policy with ParallelCrc, sharding.hpp): the
  // first n % shards slices get one extra byte, instead of the old
  // `n / shards`-per-shard split that dumped up to shards-1 extra bytes
  // on the last slice. Every slice is non-empty here: effective_shards
  // guarantees shards <= n / min_shard_bytes_ <= n.
  const std::vector<ShardSlice> slices = near_equal_slices(n, shards);
  std::vector<std::future<void>> pending;
  pending.reserve(shards - 1);
  for (std::size_t s = 1; s < shards; ++s) {
    const ShardSlice sl = slices[s];
    pending.push_back(pool_->submit([this, s, data, sl] {
      engines_[s].seek(8 * static_cast<std::uint64_t>(sl.offset));
      engines_[s].process(data + sl.offset, sl.length);
    }));
  }
  engines_[0].seek(0);
  engines_[0].process(data, slices[0].length);
  for (auto& f : pending) f.get();
}

}  // namespace plfsr
