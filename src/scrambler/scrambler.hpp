// Additive (synchronous) and multiplicative (self-synchronizing)
// scramblers, serial and M-bit-parallel.
//
// The additive scrambler is the paper's second application (§2, Fig. 1
// right; §5, Fig. 8): an autonomous LFSR whose output sequence is XORed
// onto the data. Descrambling is the identical operation with the same
// seed. The parallel form uses the same M-level look-ahead block matrices
// as the CRC — with b = 0 the state recursion is x(n+M) = A^M x(n) and
// the M output bits are y_M = C_M x + D_M u_M; the whole computation is
// feed-forward except the state hop, so it maps onto a *single* PiCoGA
// operation (no context switch), which is why Fig. 8 shows no
// short-message penalty beyond the fill latency.
#pragma once

#include <cstdint>

#include "lfsr/lookahead.hpp"
#include "lfsr/linear_system.hpp"
#include "support/bitstream.hpp"

namespace plfsr {

/// Serial additive scrambler: y(n) = taps(x(n)) XOR u(n), autonomous LFSR.
class AdditiveScrambler {
 public:
  /// `seed` packs the initial LFSR state (bit i = state cell i; cell 0 is
  /// the most recently fed-back bit in the Fibonacci drawing).
  AdditiveScrambler(const Gf2Poly& g, std::uint64_t seed);

  std::size_t order() const { return sys_.dim(); }

  /// Scramble (== descramble) a bit stream, advancing the LFSR.
  BitStream process(const BitStream& in);

  /// Produce `n` keystream bits without data (u = 0).
  BitStream keystream(std::size_t n);

  /// Current LFSR state packed into a word.
  std::uint64_t state() const { return x_.to_word(); }
  void reseed(std::uint64_t seed);

 private:
  LinearSystem sys_;
  Gf2Vec x_;
};

/// M-bit-parallel additive scrambler using the look-ahead block form.
class ParallelScrambler {
 public:
  ParallelScrambler(const Gf2Poly& g, std::size_t m, std::uint64_t seed);

  std::size_t m() const { return la_.m(); }
  const LookAhead& lookahead() const { return la_; }

  /// Scramble a stream, M bits per block step (tail handled serially).
  BitStream process(const BitStream& in);

  std::uint64_t state() const { return x_.to_word(); }
  void reseed(std::uint64_t seed);

 private:
  LinearSystem sys_;
  LookAhead la_;
  Gf2Vec x_;
};

/// Multiplicative (self-synchronizing) scrambler: the shift register is
/// fed by the *scrambled* output, so a receiver recovers alignment after
/// k correct bits with no seed agreement (used e.g. in SONET payloads).
class MultiplicativeScrambler {
 public:
  explicit MultiplicativeScrambler(const Gf2Poly& g);

  BitStream scramble(const BitStream& in);
  BitStream descramble(const BitStream& in);
  void reset();

 private:
  Gf2Poly g_;
  std::uint64_t taps_ = 0;  // tap mask over the shift register
  unsigned k_ = 0;
  std::uint64_t reg_scr_ = 0, reg_des_ = 0;
};

}  // namespace plfsr
