// IEEE 802.11 frame-synchronous scrambler (the "802.11e scrambler" of the
// paper's Fig. 8): additive scrambler with generator S(x) = x^7 + x^4 + 1.
//
// State convention: bit i of the seed is the register cell that entered
// i+1 clocks ago in the standard's Fig. 151 drawing (cell X1 = bit 0 ...
// X7 = bit 6); the all-ones seed 0x7F reproduces the standard's published
// 127-bit reference sequence, which tests/scrambler_test.cpp checks
// verbatim.
#pragma once

#include <cstdint>

#include "scrambler/scrambler.hpp"
#include "support/bitstream.hpp"

namespace plfsr::wifi {

/// The 127-bit keystream generated from the all-ones seed, as printed in
/// the IEEE 802.11 standard.
extern const char kReferenceSequence127[128];

/// Serial 802.11 scrambler.
AdditiveScrambler make_scrambler(std::uint64_t seed = 0x7F);

/// M-bit-parallel 802.11 scrambler (the Fig. 8 configuration).
ParallelScrambler make_parallel_scrambler(std::size_t m,
                                          std::uint64_t seed = 0x7F);

/// Scramble a PPDU payload with a fresh per-frame seed (as 802.11 does);
/// descrambling is the same call with the same seed.
BitStream scramble_frame(const BitStream& payload, std::uint64_t seed);

}  // namespace plfsr::wifi
