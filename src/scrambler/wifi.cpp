#include "scrambler/wifi.hpp"

#include "lfsr/catalog.hpp"

namespace plfsr::wifi {

// IEEE 802.11-2007 §17.3.5.4: scrambler output for the all-ones state.
const char kReferenceSequence127[128] =
    "0000111011110010110010010000001000100110001011101011011000001100"
    "110101001110011110110100001010101111101001010001101110001111111";

AdditiveScrambler make_scrambler(std::uint64_t seed) {
  return AdditiveScrambler(catalog::scrambler_80211(), seed);
}

ParallelScrambler make_parallel_scrambler(std::size_t m, std::uint64_t seed) {
  return ParallelScrambler(catalog::scrambler_80211(), m, seed);
}

BitStream scramble_frame(const BitStream& payload, std::uint64_t seed) {
  AdditiveScrambler s = make_scrambler(seed);
  return s.process(payload);
}

}  // namespace plfsr::wifi
