// Word-parallel additive scrambler with a seekable keystream.
//
// The additive scrambler is autonomous (b = 0), so the M-level look-ahead
// block form collapses: B_M = 0, D_M = I, and the M output bits are pure
// feed-forward from the state, y_M(n) = C_M x(n) with row i of C_M = c A^i
// (lookahead.hpp). At M = 64 that makes one keystream word the parity of
// the state against 64 mask rows — or, transposed, the XOR of the C_64
// *columns* selected by the set bits of the state. With k <= 64 state
// bits packed into a word, 64 keystream bits cost one XOR gather over at
// most k column words, and the state hop x(n+64) = A^64 x(n) is a second
// gather over the A^64 columns: no bit loop anywhere (Tsaban–Vishne
// word-oriented LFSR stepping; Dubrova's feedforward output collapsing).
//
// Because the keystream depends only on the state, position n is
// addressable in O(log n): x(n) = A^n x(0) through the same x^{2^i}
// advance tables the CRC shard-combine operator uses (Gf2Advance). Seek
// is what makes the scrambler shardable — ParallelScramble cuts a buffer
// into S slices, seeks an engine to each slice's bit offset and scrambles
// the slices concurrently on the shared ThreadPool, bit-exact with the
// serial AdditiveScrambler.
//
// This is the software shape of the paper's single-PiCoGA-operation
// scrambler claim (§5, Fig. 8): the whole computation is one feed-forward
// operation per 64-bit block — no context switch between state update and
// output, unlike the CRC's two-op schedule.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "gf2/gf2_advance.hpp"
#include "gf2/gf2_poly.hpp"
#include "support/thread_pool.hpp"

namespace plfsr {

/// Word-parallel additive scrambler: 64 keystream bits per step via
/// precomputed per-state-bit output/hop masks, O(log n) seek, byte-buffer
/// XOR application. Bit-exact with AdditiveScrambler under the repo's
/// LSB-first byte packing (keystream bit i lands on bit i%8 of byte i/8,
/// the `to_bytes_lsb_first` convention the pipeline stages use).
class BlockScrambler {
 public:
  /// `g` is the scrambler generator (degree 1..64); `seed` packs the
  /// initial LFSR state exactly as AdditiveScrambler's seed does.
  BlockScrambler(const Gf2Poly& g, std::uint64_t seed);

  std::size_t order() const { return k_; }

  /// Current LFSR state packed into a word (same convention as
  /// AdditiveScrambler::state()).
  std::uint64_t state() const { return x_; }

  /// Current keystream position in bits from the seed state.
  std::uint64_t position() const { return pos_; }

  /// Restart from `seed` at position 0. Throws on a zero state.
  void reseed(std::uint64_t seed);

  /// Jump to absolute keystream bit position `bit_pos` (counted from the
  /// seed state): one O(popcount) advance, equivalent to discarding
  /// bit_pos keystream bits. Seeking to the current position is free,
  /// and a forward seek advances from the live state when the hop
  /// distance has fewer set bits than the absolute position — the
  /// repeated fixed-offset seeks of ParallelScramble::process stay
  /// cheap instead of re-deriving every slice state from bit 0.
  void seek(std::uint64_t bit_pos);

  /// The next 64 keystream bits (bit i = keystream bit position()+i);
  /// advances the position by 64.
  std::uint64_t keystream_word();

  /// Scramble (== descramble) `n` bytes in place: XOR the keystream from
  /// the current position over the buffer, LSB-first per byte.
  void process(std::uint8_t* data, std::size_t n);
  void process(std::vector<std::uint8_t>& data) {
    process(data.data(), data.size());
  }

  /// Write `n` keystream bytes from the current position into `out`.
  void keystream_into(std::uint8_t* out, std::size_t n);
  std::vector<std::uint8_t> keystream_bytes(std::size_t n);

  /// Diagnostic: total 64-bit block steps taken (tail chunks count one).
  /// Work must stay linear in the bytes processed — the regression tests
  /// use this to pin that no serial re-generation path creeps back in.
  std::uint64_t block_steps() const { return block_steps_; }

 private:
  // The state recurrence is the only loop-carried dependency, so the
  // inner loop emits kLanes words per hop: lane l's output masks are the
  // columns of C_64 · A^{64l} (all lanes gather from the *same* state,
  // independent work for the out-of-order core), and the state hops by
  // A^{64·kLanes} once per 64-byte chunk instead of once per word.
  static constexpr std::size_t kLanes = 8;

  static std::uint64_t gather(const std::array<std::uint64_t, 64>& cols,
                              std::uint64_t v) {
    std::uint64_t y = 0;
    while (v) {
      y ^= cols[static_cast<std::size_t>(__builtin_ctzll(v))];
      v &= v - 1;
    }
    return y;
  }

  template <bool kXor>
  void run(std::uint8_t* data, std::size_t n);

  std::size_t k_ = 0;
  // out_cols_[l] = columns of C_64 · A^{64l} (lane-l output masks);
  // out_cols_[0] is plain C_64, used by the word-at-a-time paths.
  std::array<std::array<std::uint64_t, 64>, kLanes> out_cols_{};
  std::array<std::uint64_t, 64> hop_cols_{};   // A^64 columns
  std::array<std::uint64_t, 64> hop8_cols_{};  // A^{64·kLanes} columns
  Gf2Advance adv_;                             // A^{2^i}: seek + tail hops
  std::uint64_t seed_ = 0;
  std::uint64_t x_ = 0;
  std::uint64_t pos_ = 0;
  std::uint64_t block_steps_ = 0;
};

/// Shard-parallel frame scrambler: seek makes the keystream position-
/// addressable, so a buffer splits into S contiguous slices scrambled
/// concurrently — the message-level dual of the CRC shard-combine, except
/// the scrambler needs no combine step at all (pure feed-forward).
/// Every process() call scrambles from keystream position 0, the
/// frame-synchronous convention of the pipeline's ScrambleStage.
class ParallelScramble {
 public:
  /// Per-shard slice floor: a shard only exists once it has at least this
  /// many bytes to itself. The scrambler runs at a few GB/s, so a slice
  /// has to amortize a pool hand-off (~tens of µs of wake-up latency) —
  /// the measured knee on the reference host sits around 64 KiB; below it
  /// extra shards scale *backwards* (the BENCH regression this replaces:
  /// 2876 MB/s at 1 shard -> 1386 MB/s at 8 on a 64 KiB buffer, every
  /// slice too small to pay for its wake-up).
  static constexpr std::size_t kDefaultMinShardBytes = std::size_t{1} << 16;

  /// `shards` >= 1; shard 0 runs on the calling thread, shards-1 pool
  /// workers handle the rest. With `cap_to_host` (the default) the shard
  /// count is clamped to host_threads() (cgroup-quota aware, PLFSR_THREADS
  /// override) — threads beyond what the process may actually run only
  /// add hand-off and scheduling cost to a compute-bound kernel. Tests
  /// pass min_shard_bytes = 1 and cap_to_host = false to force the full
  /// split on any machine.
  ParallelScramble(const Gf2Poly& g, std::uint64_t seed, std::size_t shards,
                   std::size_t min_shard_bytes = kDefaultMinShardBytes,
                   bool cap_to_host = true);

  std::size_t shards() const { return engines_.size(); }
  std::size_t order() const { return engines_.front().order(); }

  /// Shards a process(n) call will actually use: every slice must clear
  /// min_shard_bytes, so small buffers ramp up gradually instead of
  /// flipping from 1 to shards() at one threshold.
  std::size_t effective_shards(std::size_t n) const {
    const std::size_t by_size = n / min_shard_bytes_;
    const std::size_t cap = by_size < 1 ? 1 : by_size;
    return cap < engines_.size() ? cap : engines_.size();
  }

  /// Scramble (== descramble) the buffer in place from keystream
  /// position 0.
  void process(std::uint8_t* data, std::size_t n);
  void process(std::vector<std::uint8_t>& data) {
    process(data.data(), data.size());
  }

 private:
  std::vector<BlockScrambler> engines_;  // one per shard, reused per call
  std::size_t min_shard_bytes_;
  std::unique_ptr<ThreadPool> pool_;     // shards - 1 workers
};

}  // namespace plfsr
