#include "gfm/gfm_field.hpp"

#include <array>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "gfm/gf256.hpp"

namespace plfsr {

GfmField::GfmField(const Gf2Poly& primitive) : poly_(primitive) {
  const int deg = primitive.degree();
  if (deg < 1 || deg > 16)
    throw std::invalid_argument("GfmField: degree must be in [1, 16], got " +
                                std::to_string(deg));
  if (!primitive.is_primitive())
    throw std::invalid_argument("GfmField: " + primitive.to_string() +
                                " is not primitive over GF(2)");
  m_ = static_cast<unsigned>(deg);
  q_ = 1u << m_;

  // Packed low coefficients of the polynomial: the reduction mask applied
  // when a product overflows bit m.
  std::uint32_t poly_bits = 0;
  for (unsigned i = 0; i < m_; ++i)
    if (poly_.coeff(i)) poly_bits |= 1u << i;

  exp_.assign(2 * (q_ - 1), 0);
  log_.assign(q_, 0);
  std::uint32_t x = 1;
  for (std::uint32_t i = 0; i < q_ - 1; ++i) {
    exp_[i] = static_cast<Sym>(x);
    exp_[i + q_ - 1] = static_cast<Sym>(x);
    log_[x] = i;
    x <<= 1;                       // multiply by alpha = x ...
    if (x & q_) x ^= q_ | poly_bits;  // ... and reduce mod the polynomial
  }
  // Primitivity guarantees the orbit of alpha covered every nonzero
  // element; x has returned to 1.
}

const GfmField& GfmField::of(unsigned m) {
  if (m < 1 || m > 16)
    throw std::invalid_argument("GfmField::of: m must be in [1, 16], got " +
                                std::to_string(m));
  static std::array<std::unique_ptr<const GfmField>, 17> fields;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  if (!fields[m])
    fields[m] = std::make_unique<const GfmField>(default_primitive_poly(m));
  return *fields[m];
}

std::vector<GfmField::Sym> GfmField::poly_mul(
    const std::vector<Sym>& a, const std::vector<Sym>& b) const {
  if (a.empty() || b.empty()) return {};
  std::vector<Sym> out(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    for (std::size_t j = 0; j < b.size(); ++j)
      out[i + j] = add(out[i + j], mul(a[i], b[j]));
  }
  return out;
}

std::vector<GfmField::Sym> GfmField::poly_derivative(
    const std::vector<Sym>& p) const {
  if (p.size() <= 1) return {};
  std::vector<Sym> out(p.size() - 1, 0);
  for (std::size_t i = 1; i < p.size(); i += 2) out[i - 1] = p[i];
  return out;
}

Gf2Poly default_primitive_poly(unsigned m) {
  // Conventional primitive polynomials (coefficients below the explicit
  // top bit). m = 8 is 0x11D, the DVB / CCSDS Reed–Solomon field shared
  // with the constexpr gf256 kernel; tests/catalog_test.cpp proves
  // primitivity of every entry with the exact Gf2Poly tests.
  static constexpr std::uint32_t kLow[17] = {
      0,       // m = 0: unused
      0x1,     // x + 1
      0x3,     // x^2 + x + 1
      0x3,     // x^3 + x + 1
      0x3,     // x^4 + x + 1
      0x5,     // x^5 + x^2 + 1
      0x3,     // x^6 + x + 1
      0x9,     // x^7 + x^3 + 1
      0x1D,    // x^8 + x^4 + x^3 + x^2 + 1  (0x11D)
      0x11,    // x^9 + x^4 + 1
      0x9,     // x^10 + x^3 + 1
      0x5,     // x^11 + x^2 + 1
      0x53,    // x^12 + x^6 + x^4 + x + 1
      0x1B,    // x^13 + x^4 + x^3 + x + 1
      0x443,   // x^14 + x^10 + x^6 + x + 1
      0x3,     // x^15 + x + 1
      0x100B,  // x^16 + x^12 + x^3 + x + 1
  };
  if (m < 1 || m > 16)
    throw std::invalid_argument(
        "default_primitive_poly: m must be in [1, 16], got " +
        std::to_string(m));
  return Gf2Poly::with_top_bit(m, kLow[m]);
}

}  // namespace plfsr
