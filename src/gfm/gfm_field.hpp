// GF(2^m) field arithmetic for m <= 16 — the q-valued generalisation of
// the GF(2) machinery everything else in this repo runs on.
//
// A field instance is built from a *primitive* degree-m polynomial over
// GF(2) (validated with the exact Gf2Poly irreducibility/primitivity
// tests): elements are the residues mod that polynomial, packed into a
// std::uint16_t with bit i = coefficient of x^i; addition is XOR;
// multiplication goes through exp/log tables of the primitive element
// alpha = x. The doubled exp table lets mul() skip the mod-(q-1) of the
// log sum.
//
// This is the symbol algebra the FEC subsystem (src/fec) computes in:
// Reed–Solomon codewords are polynomials over GF(2^m), BCH syndromes are
// evaluated in it, and Berlekamp–Massey generalises from bits to field
// symbols with the same recurrence once discrepancies can be divided
// (lfsr/berlekamp_massey.hpp). GF(256) additionally has a compile-time
// twin with SWAR byte-lane kernels in gf256.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gf2/gf2_poly.hpp"

namespace plfsr {

/// Finite field GF(2^m), m in [1, 16], as residues mod a primitive
/// polynomial. Immutable after construction and therefore freely
/// shareable across threads.
class GfmField {
 public:
  /// Element representation: low m bits significant.
  using Sym = std::uint16_t;

  /// Build the field from `primitive` (degree m in [1, 16]). Throws
  /// std::invalid_argument if the degree is out of range or the
  /// polynomial fails the exact Gf2Poly primitivity test.
  explicit GfmField(const Gf2Poly& primitive);

  /// The process-wide field over default_primitive_poly(m) — one shared
  /// instance per m, built on first use. Throws on m outside [1, 16].
  static const GfmField& of(unsigned m);

  unsigned m() const { return m_; }
  /// Field size q = 2^m.
  std::uint32_t order() const { return q_; }
  /// The generator polynomial the field was built from.
  const Gf2Poly& poly() const { return poly_; }
  /// The primitive element alpha = x (packed representation 2; for
  /// m == 1 the field has only {0, 1} and alpha = 1).
  Sym alpha() const { return m_ == 1 ? 1 : 2; }

  Sym add(Sym a, Sym b) const { return a ^ b; }
  Sym sub(Sym a, Sym b) const { return a ^ b; }

  Sym mul(Sym a, Sym b) const {
    if (a == 0 || b == 0) return 0;
    return exp_[log_[a] + log_[b]];
  }

  /// Multiplicative inverse; a must be nonzero.
  Sym inv(Sym a) const { return exp_[q_ - 1 - log_[a]]; }

  /// a / b; b must be nonzero. div(0, b) == 0.
  Sym div(Sym a, Sym b) const {
    if (a == 0) return 0;
    return exp_[log_[a] + q_ - 1 - log_[b]];
  }

  /// alpha^i for any i >= 0 (reduced mod q-1).
  Sym alpha_pow(std::uint64_t i) const { return exp_[i % (q_ - 1)]; }

  /// alpha^(-i) for any i >= 0.
  Sym alpha_pow_neg(std::uint64_t i) const {
    const std::uint32_t r = static_cast<std::uint32_t>(i % (q_ - 1));
    return exp_[(q_ - 1 - r) % (q_ - 1)];
  }

  /// a^e (a == 0 yields 0 for e > 0, 1 for e == 0).
  Sym pow(Sym a, std::uint64_t e) const {
    if (e == 0) return 1;
    if (a == 0) return 0;
    return exp_[(static_cast<std::uint64_t>(log_[a]) * (e % (q_ - 1))) %
                (q_ - 1)];
  }

  /// Discrete log of a nonzero element: a == alpha^log(a).
  std::uint32_t log(Sym a) const { return log_[a]; }

  /// Horner evaluation of p(x) = sum p[i] x^i at `x`.
  Sym poly_eval(const std::vector<Sym>& p, Sym x) const {
    Sym acc = 0;
    for (std::size_t i = p.size(); i-- > 0;) acc = add(mul(acc, x), p[i]);
    return acc;
  }

  /// Product of two coefficient vectors (index = power). Empty operands
  /// yield the empty (zero) polynomial.
  std::vector<Sym> poly_mul(const std::vector<Sym>& a,
                            const std::vector<Sym>& b) const;

  /// Formal derivative: in characteristic 2 only odd-power terms
  /// survive, with coefficient carried down unchanged.
  std::vector<Sym> poly_derivative(const std::vector<Sym>& p) const;

 private:
  unsigned m_ = 0;
  std::uint32_t q_ = 0;
  Gf2Poly poly_;
  std::vector<Sym> exp_;        // size 2*(q-1): doubled, no mod in mul
  std::vector<std::uint32_t> log_;  // size q; log_[0] unused
};

/// The catalogue default primitive polynomial for GF(2^m), m in [1, 16]
/// (the conventional choices: 0x11D for m = 8, x^16+x^12+x^3+x+1 for
/// m = 16, ...). lfsr/catalog re-exports the FEC-relevant subset; tests
/// prove primitivity of every entry through Gf2Poly. Throws on m outside
/// [1, 16].
Gf2Poly default_primitive_poly(unsigned m);

}  // namespace plfsr
