// Compile-time GF(256) kernel: constexpr exp/log tables and a SWAR
// multiplier over the standard FEC field polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D, the DVB / CCSDS Reed–Solomon field).
//
// This is the hot-loop sibling of the general GfmField (gfm_field.hpp):
// the field is fixed at compile time, so the tables are constexpr (no
// startup cost, shareable .rodata) and the byte lanes of a 64-bit word
// can be multiplied in parallel with plain integer ops — eight GF(256)
// products per call, the same "one operation, many symbols" shape the
// paper's PiCoGA rows give an LFSR. The RS(255,k) encoder packs eight
// generator coefficients per word and folds the feedback symbol into all
// of them with one mul8 (src/fec/rs_codec.cpp).
//
// mul8 requires bit 7 of the reduced polynomial byte to be clear (the
// per-lane reduction masks with 0x7f before shifting); 0x11D satisfies
// this, as the static_assert pins.
#pragma once

#include <array>
#include <cstdint>

namespace plfsr::gf256 {

/// The field polynomial, coefficient bit i = x^i (top bit explicit).
inline constexpr std::uint16_t kPoly = 0x11D;
/// Low byte of the polynomial — the XOR mask of the byte-wise reduction.
inline constexpr std::uint8_t kPolyLow = kPoly & 0xFF;
static_assert((kPolyLow & 0x80) == 0,
              "mul8's per-lane reduction needs bit 7 of the reduced "
              "polynomial clear");

/// Bitwise shift-and-add product (the table-free reference the constexpr
/// tables are built from; also the cross-check in tests).
constexpr std::uint8_t mul_bitwise(std::uint8_t a, std::uint8_t b) {
  std::uint8_t r = 0;
  for (int i = 7; i >= 0; --i) {
    r = static_cast<std::uint8_t>((r << 1) ^ ((r & 0x80) ? kPolyLow : 0));
    if (a & (1u << i)) r ^= b;
  }
  return r;
}

namespace detail {
struct Tables {
  // exp doubled so mul can skip the mod-255: log a + log b <= 508.
  std::array<std::uint8_t, 510> exp{};
  std::array<std::uint8_t, 256> log{};

  constexpr Tables() {
    std::uint8_t x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      exp[i] = x;
      exp[i + 255] = x;
      log[x] = static_cast<std::uint8_t>(i);
      x = mul_bitwise(x, 2);  // alpha = x is primitive for 0x11D
    }
  }
};
inline constexpr Tables kTables{};
}  // namespace detail

/// alpha^i for i in [0, 510) (doubled table, callers may add two logs).
constexpr std::uint8_t exp(unsigned i) { return detail::kTables.exp[i]; }

/// Discrete log base alpha; log(0) is undefined (returns 0 — callers
/// must test for zero first, as mul/div/inv do).
constexpr std::uint8_t log(std::uint8_t a) { return detail::kTables.log[a]; }

constexpr std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return detail::kTables.exp[detail::kTables.log[a] + detail::kTables.log[b]];
}

constexpr std::uint8_t inv(std::uint8_t a) {
  return detail::kTables.exp[255 - detail::kTables.log[a]];
}

constexpr std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  if (a == 0) return 0;
  return detail::kTables
      .exp[detail::kTables.log[a] + 255 - detail::kTables.log[b]];
}

/// Broadcast one symbol to all eight lanes of a word.
constexpr std::uint64_t splat(std::uint8_t b) {
  return b * 0x0101010101010101ULL;
}

/// Lane-wise GF(256) product: byte i of the result is
/// mul(byte i of a, byte i of b). Eight multiplies in ~8 shift/mask
/// rounds — the SWAR form of the field multiplier.
constexpr std::uint64_t mul8(std::uint64_t a, std::uint64_t b) {
  constexpr std::uint64_t kHi = 0x8080808080808080ULL;
  constexpr std::uint64_t kLo = 0x7F7F7F7F7F7F7F7FULL;
  constexpr std::uint64_t kLsb = 0x0101010101010101ULL;
  constexpr std::uint64_t kPoly8 = kPolyLow * kLsb;
  std::uint64_t r = 0;
  for (int i = 7; i >= 0; --i) {
    std::uint64_t m = r & kHi;
    m = m - (m >> 7);  // per-lane 0x80 -> 0x7F: covers kPolyLow (bit 7 clear)
    r = ((r & kLo) << 1) ^ (kPoly8 & m);
    std::uint64_t n = (a & (kLsb << i)) >> i;
    n = (n << 8) - n;  // lane bit -> full-byte mask
    r ^= b & n;
  }
  return r;
}

}  // namespace plfsr::gf256
