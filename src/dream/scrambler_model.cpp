#include "dream/scrambler_model.hpp"

#include <stdexcept>

namespace plfsr {

DreamScramblerModel::DreamScramblerModel(const Gf2Poly& g, std::size_t m,
                                         const PicogaConstraints& geom,
                                         const ControlCosts& costs,
                                         const MapperOptions& opts)
    : m_(m), costs_(costs), freq_hz_(geom.freq_mhz * 1e6) {
  const ScramblerOpPlan plan = build_scrambler_op(g, m, opts);
  l_ = plan.op.netlist.depth();
  ii_ = plan.op.loop_depth > 0 ? plan.op.loop_depth : 1;
  const auto pts = explore_scrambler_design_space(g, {m}, geom, opts);
  if (!pts[0].feasible)
    throw std::invalid_argument(
        "DreamScramblerModel: M infeasible on this PiCoGA geometry");
}

std::uint64_t DreamScramblerModel::cycles(std::uint64_t n_bits) const {
  if (n_bits == 0 || n_bits % m_ != 0)
    throw std::invalid_argument("DreamScramblerModel: n_bits must be k*M");
  const std::uint64_t chunks = n_bits / m_;
  return costs_.per_batch + costs_.per_message + l_ + (chunks - 1) * ii_;
}

double DreamScramblerModel::throughput_gbps(std::uint64_t n_bits) const {
  return static_cast<double>(n_bits) /
         (static_cast<double>(cycles(n_bits)) / freq_hz_) / 1e9;
}

double DreamScramblerModel::peak_gbps() const {
  return static_cast<double>(m_) * freq_hz_ / ii_ / 1e9;
}

}  // namespace plfsr
