#include "dream/context_schedule.hpp"

#include <algorithm>
#include <stdexcept>

namespace plfsr {

ContextScheduler::ContextScheduler(std::size_t contexts,
                                   std::uint64_t switch_cycles)
    : contexts_(contexts), switch_cycles_(switch_cycles) {
  if (contexts == 0)
    throw std::invalid_argument("ContextScheduler: need >= 1 context");
}

void ContextScheduler::register_kernel(const KernelConfig& k) {
  kernels_[k.name] = k;
}

bool ContextScheduler::is_cached(const std::string& name) const {
  return std::find(cache_.begin(), cache_.end(), name) != cache_.end();
}

std::uint64_t ContextScheduler::activate(const std::string& name) {
  const auto it = kernels_.find(name);
  if (it == kernels_.end())
    throw std::invalid_argument("ContextScheduler: unknown kernel " + name);
  if (name == active_) return 0;

  std::uint64_t cost = switch_cycles_;
  const auto pos = std::find(cache_.begin(), cache_.end(), name);
  if (pos != cache_.end()) {
    ++hits_;
    cache_.erase(pos);
  } else {
    ++reloads_;
    cost += it->second.load_cycles;
    if (cache_.size() == contexts_) cache_.pop_back();  // evict LRU
  }
  cache_.insert(cache_.begin(), name);
  active_ = name;
  total_ += cost;
  return cost;
}

std::uint64_t ContextScheduler::run_sequence(
    const std::vector<std::string>& seq) {
  std::uint64_t cycles = 0;
  for (const std::string& name : seq) cycles += activate(name);
  return cycles;
}

}  // namespace plfsr
