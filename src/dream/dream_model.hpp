// Analytic DREAM timing model for the paper's throughput figures.
//
// The array simulator (src/picoga) charges cycles event by event; this
// model reproduces the same totals in closed form so the figure benches
// can sweep thousands of (N, M, batch) points instantly. The unit tests
// cross-validate the two cycle-for-cycle.
//
// Single message of C = N/M chunks (§5, Fig. 4):
//   cycles = ctrl + readout                      (processor overhead)
//          + L1 + (C - 1) * II                   (op1 fill + streaming)
//          + 2 + L2                              (context switch + op2)
//          + 2                                   (switch back for next msg)
//
// B interleaved messages (§5, Fig. 5, after Kong & Parhi [13]):
//   cycles = ctrl + B * readout
//          + L1 + (B * C - 1) * II               (round-robin rotation)
//          + 2 + L2 + (B - 1)                    (one switch, B op2 issues)
//          + 2
//
// Throughput = bits / (cycles * 5 ns); as N grows both converge to
// M * 200 Mbit/s — 25.6 Gbit/s at M = 128, the paper's peak.
#pragma once

#include <cstdint>
#include <cstddef>

#include "gf2/gf2_poly.hpp"
#include "mapper/op_builder.hpp"
#include "mapper/design_space.hpp"
#include "picoga/crc_accelerator.hpp"

namespace plfsr {

/// Closed-form DREAM CRC timing for one (generator, M) configuration.
class DreamCrcModel {
 public:
  DreamCrcModel(const Gf2Poly& g, std::size_t m,
                const PicogaConstraints& geom = {},
                const ControlCosts& costs = {},
                const MapperOptions& opts = {});

  std::size_t m() const { return m_; }
  unsigned op1_latency() const { return l1_; }
  unsigned op2_latency() const { return l2_; }
  unsigned ii() const { return ii_; }
  double freq_hz() const { return freq_hz_; }

  /// Cycles for one message of n_bits (must be a multiple of M).
  std::uint64_t cycles_single(std::uint64_t n_bits) const;

  /// Cycles for `batch` equal messages of n_bits each, interleaved.
  std::uint64_t cycles_interleaved(std::uint64_t n_bits,
                                   std::size_t batch) const;

  /// Sustained throughput (Gbit/s) for the two modes.
  double throughput_single_gbps(std::uint64_t n_bits) const;
  double throughput_interleaved_gbps(std::uint64_t n_bits,
                                     std::size_t batch) const;

  /// Kernel-only peak (no control, no switches): M * f / II — the number
  /// the paper quotes against the ASICs in Fig. 6.
  double peak_gbps() const;

 private:
  std::size_t m_;
  unsigned l1_, l2_, ii_;
  ControlCosts costs_;
  double freq_hz_;
};

/// In-order RISC software baseline at the same 200 MHz clock — the
/// reference of Table 1 ("Fast software CRC", byte-table Sarwate in the
/// style of Albertengo & Sisto [8]) plus the naive bit-serial variant.
struct RiscModel {
  double freq_hz = 200e6;
  // Per-byte cost of the table loop on a single-issue core: load byte,
  // XOR, index, load table word, XOR, store/rotate, loop bookkeeping.
  std::uint64_t cycles_per_byte_table = 7;
  std::uint64_t cycles_per_bit_serial = 9;
  std::uint64_t setup_cycles = 30;
  std::uint64_t finalize_cycles = 4;

  std::uint64_t crc_cycles_table(std::uint64_t n_bits) const {
    return setup_cycles + (n_bits + 7) / 8 * cycles_per_byte_table +
           finalize_cycles;
  }
  std::uint64_t crc_cycles_bitserial(std::uint64_t n_bits) const {
    return setup_cycles + n_bits * cycles_per_bit_serial + finalize_cycles;
  }
  double throughput_table_gbps(std::uint64_t n_bits) const {
    return static_cast<double>(n_bits) /
           (static_cast<double>(crc_cycles_table(n_bits)) / freq_hz) / 1e9;
  }
};

/// Energy model for Fig. 7. The paper anchors the RISC at ~400 pJ/bit
/// (length-independent) and reports DREAM 5-60x better in 90 nm; we model
/// DREAM as a fixed energy per active cycle (core + array) so short
/// messages — which burn overhead cycles per bit — land at the weak end
/// of that band and saturated M = 128 streaming at the strong end.
struct EnergyModel {
  double risc_pj_per_bit = 400.0;
  double dream_nj_per_cycle = 0.85;  ///< ~170 mW at 200 MHz, 90 nm class

  double dream_pj_per_bit(std::uint64_t cycles, std::uint64_t n_bits) const {
    return dream_nj_per_cycle * 1e3 * static_cast<double>(cycles) /
           static_cast<double>(n_bits);
  }
  double ratio_vs_risc(std::uint64_t cycles, std::uint64_t n_bits) const {
    return risc_pj_per_bit / dream_pj_per_bit(cycles, n_bits);
  }
};

}  // namespace plfsr
