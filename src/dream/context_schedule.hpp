// Configuration-cache scheduling for multi-kernel workloads.
//
// PiCoGA caches 4 configuration layers; switching among cached layers
// costs 2 cycles, but a kernel whose configuration was evicted pays the
// full bitstream reload. A multi-standard device (the paper's
// motivation) hops between kernels — this module models the cache with
// an LRU policy and accounts the switch/reload cycles of an arbitrary
// kernel sequence, so the examples and tests can quantify when 4
// contexts are enough (the CRC pair + scrambler fit; a fifth standard
// starts thrashing).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace plfsr {

/// One reconfigurable kernel: its id and configuration footprint.
struct KernelConfig {
  std::string name;
  std::uint64_t load_cycles = 0;  ///< full bitstream load cost
};

/// LRU-managed configuration cache.
class ContextScheduler {
 public:
  explicit ContextScheduler(std::size_t contexts = 4,
                            std::uint64_t switch_cycles = 2);

  /// Declare a kernel (idempotent by name).
  void register_kernel(const KernelConfig& k);

  /// Make `name` active; returns the cycles charged for this activation
  /// (0 if already active, switch cost if cached, switch + reload if
  /// evicted/cold). Throws for unknown kernels.
  std::uint64_t activate(const std::string& name);

  /// Run a whole activation sequence; returns total cycles.
  std::uint64_t run_sequence(const std::vector<std::string>& seq);

  std::uint64_t total_cycles() const { return total_; }
  std::uint64_t reloads() const { return reloads_; }
  std::uint64_t hits() const { return hits_; }
  bool is_cached(const std::string& name) const;

 private:
  std::size_t contexts_;
  std::uint64_t switch_cycles_;
  std::map<std::string, KernelConfig> kernels_;
  std::vector<std::string> cache_;  // front = most recently used
  std::string active_;
  std::uint64_t total_ = 0, reloads_ = 0, hits_ = 0;
};

}  // namespace plfsr
