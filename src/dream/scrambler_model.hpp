// Analytic DREAM scrambler timing (Fig. 8): single PiCoGA operation, so
// no context switch ever occurs — "the implementation requires a single
// operation on PiCoGA" (§5). Only the control overhead and the pipeline
// fill dilute the M bits/cycle streaming rate, which is why the scrambler
// reaches the full 25.6 Gbit/s at M = 128 even for modest block lengths.
#pragma once

#include <cstdint>
#include <cstddef>

#include "gf2/gf2_poly.hpp"
#include "mapper/op_builder.hpp"
#include "mapper/design_space.hpp"
#include "picoga/crc_accelerator.hpp"

namespace plfsr {

/// Closed-form DREAM scrambler timing for one (generator, M).
class DreamScramblerModel {
 public:
  DreamScramblerModel(const Gf2Poly& g, std::size_t m,
                      const PicogaConstraints& geom = {},
                      const ControlCosts& costs = {},
                      const MapperOptions& opts = {});

  std::size_t m() const { return m_; }
  unsigned latency() const { return l_; }
  unsigned ii() const { return ii_; }

  /// Cycles for one block of n_bits (multiple of M).
  std::uint64_t cycles(std::uint64_t n_bits) const;

  double throughput_gbps(std::uint64_t n_bits) const;
  double peak_gbps() const;

 private:
  std::size_t m_;
  unsigned l_, ii_;
  ControlCosts costs_;
  double freq_hz_;
};

}  // namespace plfsr
