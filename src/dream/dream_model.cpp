#include "dream/dream_model.hpp"

#include <stdexcept>

namespace plfsr {

DreamCrcModel::DreamCrcModel(const Gf2Poly& g, std::size_t m,
                             const PicogaConstraints& geom,
                             const ControlCosts& costs,
                             const MapperOptions& opts)
    : m_(m), costs_(costs), freq_hz_(geom.freq_mhz * 1e6) {
  const CrcOpPlan plan = build_derby_crc_ops(g, m, opts);
  l1_ = plan.op1.netlist.depth();
  l2_ = plan.op2.netlist.depth();
  ii_ = plan.op1.loop_depth > 0 ? plan.op1.loop_depth : 1;
  // Feasibility gate: the model must describe a mapping that exists.
  const auto pts = explore_crc_design_space(g, {m}, geom, opts);
  if (!pts[0].feasible)
    throw std::invalid_argument(
        "DreamCrcModel: M infeasible on this PiCoGA geometry");
}

std::uint64_t DreamCrcModel::cycles_single(std::uint64_t n_bits) const {
  if (n_bits == 0 || n_bits % m_ != 0)
    throw std::invalid_argument("DreamCrcModel: n_bits must be k*M, k>=1");
  const std::uint64_t chunks = n_bits / m_;
  return costs_.per_batch + costs_.per_message + costs_.result_readout +
         l1_ + (chunks - 1) * ii_ + PicogaArray::kContextSwitchCycles + l2_ +
         PicogaArray::kContextSwitchCycles;
}

std::uint64_t DreamCrcModel::cycles_interleaved(std::uint64_t n_bits,
                                                std::size_t batch) const {
  if (batch == 0) throw std::invalid_argument("DreamCrcModel: empty batch");
  if (n_bits == 0 || n_bits % m_ != 0)
    throw std::invalid_argument("DreamCrcModel: n_bits must be k*M, k>=1");
  const std::uint64_t chunks = n_bits / m_;
  return costs_.per_batch + costs_.per_message +
         batch * costs_.result_readout + l1_ +
         (batch * chunks - 1) * ii_ + PicogaArray::kContextSwitchCycles +
         l2_ + (batch - 1) + PicogaArray::kContextSwitchCycles;
}

double DreamCrcModel::throughput_single_gbps(std::uint64_t n_bits) const {
  return static_cast<double>(n_bits) /
         (static_cast<double>(cycles_single(n_bits)) / freq_hz_) / 1e9;
}

double DreamCrcModel::throughput_interleaved_gbps(std::uint64_t n_bits,
                                                  std::size_t batch) const {
  return static_cast<double>(n_bits) * static_cast<double>(batch) /
         (static_cast<double>(cycles_interleaved(n_bits, batch)) / freq_hz_) /
         1e9;
}

double DreamCrcModel::peak_gbps() const {
  return static_cast<double>(m_) * freq_hz_ / ii_ / 1e9;
}

}  // namespace plfsr
