// Structural timing model of an application-specific parallel CRC in the
// style of OpenCores "Ultimate CRC" (UCRC), synthesized on a 65 nm LP
// standard-cell library — the comparator of the paper's Fig. 6.
//
// UCRC keeps the dense look-ahead matrix A^M *inside* the feedback loop,
// so its maximum clock falls as M grows. We derive the loop complexity
// from the real matrices: the feedback cone of state bit i has fan-in
// weight(row i of [A^M | B_M]); the critical path is
//
//   delay(M) = t_reg + t_xor2 * ceil(log2(Fmax)) + t_congestion * M
//
// where the log term is the ideally balanced XOR tree of the widest cone
// and the linear term models the net-length / fan-out / placement
// congestion of the M-bit-wide unrolled cone that synthesis cannot
// balance away (calibrated so the serial point and the large-M
// saturation match the published UCRC results the paper plots; see
// EXPERIMENTS.md). Throughput = M / delay.
//
// The two theory curves of Fig. 6 are reproduced exactly as the paper
// builds them: take the *serial* UCRC clock from the same delay model,
// then apply the ideal speed-up of each method — x M for Derby [7]
// (companion loop: the clock never degrades) and x 0.5 M for
// Pei-Zukowski [6] (optimized exponentiation halves the rate).
#pragma once

#include <cstddef>
#include <vector>

#include "gf2/gf2_poly.hpp"

namespace plfsr {

/// 65 nm LP class delay parameters (ns).
struct AsicDelayModel {
  double t_reg = 0.30;         ///< clk->Q + setup + clock skew margin
  double t_route_base = 0.45;  ///< fixed routing/mux overhead of the loop
  double t_xor2 = 0.08;        ///< one balanced 2-input XOR level
  double t_congestion = 0.040; ///< per look-ahead bit, wide-cone penalty
};

/// One evaluated UCRC synthesis point.
struct UcrcPoint {
  std::size_t m = 0;
  std::size_t max_loop_fanin = 0;  ///< widest feedback cone (from A^M|B_M)
  unsigned xor_levels = 0;         ///< balanced-tree depth of that cone
  double f_max_ghz = 0.0;
  double throughput_gbps = 0.0;
};

/// Evaluate the UCRC model for generator g at each look-ahead in `ms`.
std::vector<UcrcPoint> ucrc_synthesis_curve(const Gf2Poly& g,
                                            const std::vector<std::size_t>& ms,
                                            const AsicDelayModel& d = {});

/// Serial (M = 1) clock of the same implementation — the anchor for the
/// theory curves.
double ucrc_serial_fmax_ghz(const Gf2Poly& g, const AsicDelayModel& d = {});

/// Fig. 6 theory curves: ideal Derby (M x serial) and Pei (0.5 M x serial)
/// applied to the serial UCRC bandwidth, per the paper's §5.
double derby_theory_gbps(const Gf2Poly& g, std::size_t m,
                         const AsicDelayModel& d = {});
double pei_theory_gbps(const Gf2Poly& g, std::size_t m,
                       const AsicDelayModel& d = {});

}  // namespace plfsr
