#include "asicmodel/ucrc_model.hpp"

#include <cmath>

#include "lfsr/linear_system.hpp"
#include "lfsr/lookahead.hpp"

namespace plfsr {

namespace {
unsigned ceil_log2(std::size_t n) {
  unsigned levels = 0;
  std::size_t v = 1;
  while (v < n) {
    v <<= 1;
    ++levels;
  }
  return levels;
}
}  // namespace

std::vector<UcrcPoint> ucrc_synthesis_curve(const Gf2Poly& g,
                                            const std::vector<std::size_t>& ms,
                                            const AsicDelayModel& d) {
  const LinearSystem sys = make_crc_system(g);
  std::vector<UcrcPoint> out;
  for (std::size_t m : ms) {
    const LookAhead la(sys, m);
    UcrcPoint p;
    p.m = m;
    p.max_loop_fanin = la.am().hconcat(la.bm()).max_row_weight();
    p.xor_levels = ceil_log2(p.max_loop_fanin == 0 ? 1 : p.max_loop_fanin);
    const double delay_ns = d.t_reg + d.t_route_base +
                            d.t_xor2 * p.xor_levels +
                            d.t_congestion * static_cast<double>(m);
    p.f_max_ghz = 1.0 / delay_ns;
    p.throughput_gbps = static_cast<double>(m) * p.f_max_ghz;
    out.push_back(p);
  }
  return out;
}

double ucrc_serial_fmax_ghz(const Gf2Poly& g, const AsicDelayModel& d) {
  return ucrc_synthesis_curve(g, {1}, d)[0].f_max_ghz;
}

double derby_theory_gbps(const Gf2Poly& g, std::size_t m,
                         const AsicDelayModel& d) {
  return static_cast<double>(m) * ucrc_serial_fmax_ghz(g, d);
}

double pei_theory_gbps(const Gf2Poly& g, std::size_t m,
                       const AsicDelayModel& d) {
  return 0.5 * static_cast<double>(m) * ucrc_serial_fmax_ghz(g, d);
}

}  // namespace plfsr
