#include "picoga/routing.hpp"

#include <algorithm>

namespace plfsr {

RoutingReport analyze_routing(const PgaOp& op, const RoutingChannel& channel) {
  const XorNetlist& nl = op.netlist();
  const std::size_t rows = op.rows_used();
  RoutingReport rep;
  if (rows <= 1) {
    rep.feasible = true;
    return rep;
  }

  // Row where each signal is produced (inputs at "row -1", i.e. they
  // cross every boundary down to their last consumer) and last consumed.
  const std::size_t n_sigs = nl.n_inputs() + nl.node_count();
  std::vector<long> produced(n_sigs, -1);
  std::vector<long> last_use(n_sigs, -1);
  for (std::size_t i = 0; i < nl.node_count(); ++i) {
    const long row = static_cast<long>(op.placement()[i].row);
    produced[nl.n_inputs() + i] = row;
    for (SignalId s : nl.nodes()[i].inputs)
      last_use[s] = std::max(last_use[s], row);
  }
  // Outputs are consumed at the bottom of the array (output ports).
  for (SignalId s : nl.outputs())
    if (s != kZeroSignal)
      last_use[s] = static_cast<long>(rows - 1);

  // Boundary b sits between row b and row b+1; a signal crosses it when
  // produced[row] <= b and last_use[row] > b.
  rep.nets_per_boundary.assign(rows - 1, 0);
  for (std::size_t s = 0; s < n_sigs; ++s) {
    if (last_use[s] < 0) continue;
    const long from = produced[s];  // -1 for primary inputs
    for (long b = std::max(from, 0L); b < last_use[s]; ++b)
      ++rep.nets_per_boundary[static_cast<std::size_t>(b)];
  }

  for (std::size_t nets : rep.nets_per_boundary) {
    rep.peak_granules_bitwise = std::max(rep.peak_granules_bitwise, nets);
    rep.peak_granules_paired = std::max(
        rep.peak_granules_paired,
        (nets + channel.granularity - 1) / channel.granularity);
  }
  // Feasibility is judged at the fabric's native 2-bit bundling (the
  // router pairs nets wherever possible); the bit-wise figure is the
  // pessimistic bound the §3 "underutilization" remark warns about.
  rep.feasible = rep.peak_granules_paired <= channel.tracks;
  return rep;
}

}  // namespace plfsr
