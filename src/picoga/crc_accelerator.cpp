#include "picoga/crc_accelerator.hpp"

#include <stdexcept>

namespace plfsr {

PicogaCrcAccelerator::PicogaCrcAccelerator(const Gf2Poly& g, std::size_t m,
                                           const PicogaConstraints& geom,
                                           const ControlCosts& costs,
                                           const MapperOptions& opts)
    : plan_(build_derby_crc_ops(g, m, opts)), costs_(costs), array_(geom) {
  array_.load(0, PgaOp("crc_op1_state_update", plan_.op1.netlist,
                       plan_.width, geom));
  array_.load(1, PgaOp("crc_op2_anti_transform", plan_.op2.netlist, 0, geom));
  config_cycles_ = array_.cycles();
  array_.reset_cycles();
}

PicogaCrcAccelerator::Result PicogaCrcAccelerator::process(
    const BitStream& bits, std::uint64_t init_register) {
  if (bits.size() % plan_.m != 0)
    throw std::invalid_argument(
        "PicogaCrcAccelerator: length must be a multiple of M");
  array_.reset_cycles();
  Result res;

  // Control processor: message setup.
  std::uint64_t ctrl = costs_.per_batch + costs_.per_message;

  // op1: stream the chunks.
  array_.activate(0);
  array_.set_state(plan_.derby.transform_state(
      Gf2Vec::from_word(plan_.width, init_register)));
  const std::size_t m = plan_.m;
  for (std::size_t pos = 0; pos < bits.size(); pos += m)
    array_.issue(chunk_to_vec(bits, pos, m));
  array_.drain();
  const Gf2Vec xt = array_.state();

  // op2: context switch (the paper's "pipeline break"), anti-transform.
  array_.activate(1);
  const Gf2Vec x = array_.issue(xt);
  array_.drain();
  array_.activate(0);  // ready for the next message, as the runtime does

  res.raw = x.to_word();
  res.cycles = array_.cycles() + ctrl + costs_.result_readout;
  return res;
}

PicogaCrcAccelerator::BatchResult PicogaCrcAccelerator::process_interleaved(
    const std::vector<BitStream>& messages, std::uint64_t init_register) {
  if (messages.empty())
    throw std::invalid_argument("process_interleaved: empty batch");
  const std::size_t m = plan_.m;
  std::size_t chunks = messages[0].size() / m;
  for (const BitStream& msg : messages) {
    if (msg.size() % m != 0)
      throw std::invalid_argument(
          "process_interleaved: length must be a multiple of M");
    if (msg.size() / m != chunks)
      throw std::invalid_argument(
          "process_interleaved: equal-length messages required (the "
          "interleaver rotates fixed slots)");
  }
  array_.reset_cycles();
  const std::size_t b = messages.size();

  array_.activate(0);
  array_.init_banks(b, plan_.derby.transform_state(Gf2Vec::from_word(
                           plan_.width, init_register)));
  // Round-robin chunk rotation: one issue per cycle, no swap cost.
  for (std::size_t c = 0; c < chunks; ++c)
    for (std::size_t i = 0; i < b; ++i)
      array_.issue_banked(i, chunk_to_vec(messages[i], c * m, m));
  array_.drain();

  // One context switch for the whole batch, then B pipelined op2 issues.
  std::vector<Gf2Vec> finals;
  finals.reserve(b);
  for (std::size_t i = 0; i < b; ++i) finals.push_back(array_.bank_state(i));
  array_.activate(1);
  BatchResult res;
  for (std::size_t i = 0; i < b; ++i)
    res.raw.push_back(array_.issue(finals[i]).to_word());
  array_.drain();
  array_.activate(0);

  res.cycles = array_.cycles() + costs_.per_batch +
               costs_.per_message +  // one setup for the whole rotation
               b * costs_.result_readout;
  return res;
}

PicogaScramblerAccelerator::PicogaScramblerAccelerator(
    const Gf2Poly& g, std::size_t m, const PicogaConstraints& geom,
    const ControlCosts& costs, const MapperOptions& opts)
    : plan_(build_scrambler_op(g, m, opts)), costs_(costs), array_(geom) {
  array_.load(0, PgaOp("scrambler_op", plan_.op.netlist, plan_.derby.dim(),
                       geom));
  config_cycles_ = array_.cycles();
  array_.reset_cycles();
}

PicogaScramblerAccelerator::Result PicogaScramblerAccelerator::process(
    const BitStream& in, std::uint64_t seed) {
  if (in.size() % plan_.m != 0)
    throw std::invalid_argument(
        "PicogaScramblerAccelerator: length must be a multiple of M");
  array_.reset_cycles();
  array_.activate(0);
  array_.set_state(plan_.derby.transform_state(
      Gf2Vec::from_word(plan_.derby.dim(), seed)));
  Result res;
  const std::size_t m = plan_.m;
  for (std::size_t pos = 0; pos < in.size(); pos += m) {
    const Gf2Vec y = array_.issue(chunk_to_vec(in, pos, m));
    for (std::size_t i = 0; i < m; ++i) res.out.push_back(y.get(i));
  }
  array_.drain();
  res.cycles = array_.cycles() + costs_.per_batch + costs_.per_message;
  return res;
}

}  // namespace plfsr
