// End-to-end CRC and scrambler accelerators: the mapped operations of
// src/mapper loaded into the PicogaArray simulator and driven the way the
// STxP70 control code drives the real DREAM (§4-§5).
//
// These classes are the measurement substrate of the paper's figures:
// every cycle they report comes out of the array simulator (configuration
// loads, the 2-cycle context switches between op1 and op2, pipeline fill,
// per-chunk issues), plus an explicit processor-control overhead
// parameter — "the variation is due to the control overhead introduced by
// the processor and the pipeline break caused by the configuration
// switch" (§5).
#pragma once

#include <cstdint>
#include <vector>

#include "gf2/gf2_poly.hpp"
#include "mapper/op_builder.hpp"
#include "picoga/array.hpp"
#include "support/bitstream.hpp"

namespace plfsr {

/// Processor-side per-message costs (cycles at the shared 200 MHz clock).
struct ControlCosts {
  std::uint64_t per_message = 16;  ///< message setup: DMA programming, loop
  std::uint64_t per_batch = 24;    ///< one-off batch/kernel entry cost
  std::uint64_t result_readout = 2;  ///< move the checksum to the core
};

/// CRC accelerator: op1 (state update) + op2 (anti-transform) in two
/// configuration contexts.
class PicogaCrcAccelerator {
 public:
  PicogaCrcAccelerator(const Gf2Poly& g, std::size_t m,
                       const PicogaConstraints& geom = {},
                       const ControlCosts& costs = {},
                       const MapperOptions& opts = {});

  std::size_t m() const { return plan_.m; }
  unsigned width() const { return plan_.width; }
  const CrcOpPlan& plan() const { return plan_; }

  /// Cycles spent loading the two configurations (paid once at startup).
  std::uint64_t config_cycles() const { return config_cycles_; }

  struct Result {
    std::uint64_t raw = 0;      ///< raw register (spec finalization is
                                ///< the caller's framing concern)
    std::uint64_t cycles = 0;   ///< cycles for this call (excl. config load)
  };

  /// One message; length must be a multiple of M (the control processor
  /// pads the head — Ethernet frames are byte-aligned so M <= 128 needs
  /// only zero-padding that the caller applies, as the paper's runs do).
  Result process(const BitStream& bits, std::uint64_t init_register);

  /// A batch of messages interleaved Kong/Parhi style [13]: chunks are
  /// issued round-robin so the op1/op2 context switch and the batch
  /// control overhead are paid once per batch instead of per message.
  struct BatchResult {
    std::vector<std::uint64_t> raw;
    std::uint64_t cycles = 0;
  };
  BatchResult process_interleaved(const std::vector<BitStream>& messages,
                                  std::uint64_t init_register);

 private:
  CrcOpPlan plan_;
  ControlCosts costs_;
  PicogaArray array_;
  std::uint64_t config_cycles_ = 0;
};

/// Scrambler accelerator: a single op, a single context, no switches.
class PicogaScramblerAccelerator {
 public:
  PicogaScramblerAccelerator(const Gf2Poly& g, std::size_t m,
                             const PicogaConstraints& geom = {},
                             const ControlCosts& costs = {},
                             const MapperOptions& opts = {});

  std::size_t m() const { return plan_.m; }
  std::uint64_t config_cycles() const { return config_cycles_; }

  struct Result {
    BitStream out;
    std::uint64_t cycles = 0;
  };

  /// Scramble one block (length must be a multiple of M); `seed` is the
  /// untransformed LFSR state.
  Result process(const BitStream& in, std::uint64_t seed);

 private:
  ScramblerOpPlan plan_;
  ControlCosts costs_;
  PicogaArray array_;
  std::uint64_t config_cycles_ = 0;
};

}  // namespace plfsr
