// VCD (Value Change Dump) trace writer for the PiCoGA array simulator —
// the observability layer an EDA-flavoured simulator is expected to
// ship. Records context switches, issues, pipeline occupancy and stall
// state per cycle and emits a standard IEEE 1364 VCD file that any
// waveform viewer opens.
//
// The tracer is deliberately decoupled from PicogaArray: callers record
// events against the array's own cycle counter, so any driver (the
// accelerators, tests, user code) can produce waveforms without the
// array knowing about files.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace plfsr {

/// Event recorder + VCD emitter for one simulation run.
class VcdTrace {
 public:
  /// `timescale_ns` is the real duration of one cycle (5 ns at 200 MHz).
  explicit VcdTrace(unsigned timescale_ns = 5);

  // --- recording (cycle = the array's cycle counter at the event) -----
  void record_context(std::uint64_t cycle, unsigned slot);
  void record_issue(std::uint64_t cycle, unsigned rows_active);
  void record_stall(std::uint64_t cycle, bool stalled);

  std::size_t event_count() const { return events_.size(); }

  /// Render the full VCD text (header + sorted value changes).
  std::string render(const std::string& module_name = "picoga") const;

 private:
  enum class Kind { kContext, kIssue, kStall };
  struct Event {
    std::uint64_t cycle;
    Kind kind;
    std::uint64_t value;
  };
  unsigned timescale_ns_;
  std::vector<Event> events_;
};

}  // namespace plfsr
