// A compiled PiCoGA operation: an XOR netlist placed onto the array.
//
// PiCoGA is row-pipelined (§3): "each PiCoGA row is the basic element for
// building a pipeline stage, under the supervision of a dedicated
// programmable pipeline control unit". Compilation therefore assigns
// every gate level of the netlist to one or more rows (a level wider than
// 16 cells spills into additional rows of the same stage), inserts
// pipeline registers between stages, and records the latency (rows) and
// initiation interval (the depth of the state-feedback recurrence).
//
// Ops with `state_bits > 0` are *looped*: their first state_bits inputs
// are fed from the op's state registers and the first state_bits outputs
// write them back each issue — this is how op1 of the CRC keeps x_t on
// the array between chunks.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "gf2/gf2_vec.hpp"
#include "mapper/design_space.hpp"
#include "mapper/xor_netlist.hpp"
#include "picoga/rlc_cell.hpp"

namespace plfsr {

/// Physical location of one configured cell.
struct CellSite {
  std::size_t row = 0;
  std::size_t col = 0;
};

/// Compiled, placed operation.
class PgaOp {
 public:
  /// Compile `netlist` for an array described by `geom`. Throws
  /// std::runtime_error (with a human-readable reason) if the op does not
  /// fit the rows/cells/I-O budget.
  PgaOp(std::string name, XorNetlist netlist, std::size_t state_bits,
        const PicogaConstraints& geom);

  const std::string& name() const { return name_; }
  const XorNetlist& netlist() const { return netlist_; }
  std::size_t state_bits() const { return state_bits_; }

  /// Bits consumed from the input ports per issue (inputs minus state).
  std::size_t port_in_bits() const {
    return netlist_.n_inputs() - state_bits_;
  }
  /// Bits produced on the output ports per issue (outputs minus state).
  std::size_t port_out_bits() const {
    return netlist_.outputs().size() - state_bits_;
  }

  std::size_t rows_used() const { return rows_used_; }
  unsigned latency() const { return latency_; }
  unsigned ii() const { return ii_; }

  /// Placement of node i.
  const std::vector<CellSite>& placement() const { return placement_; }
  /// The configured cell for node i (always an XOR here).
  const std::vector<RlcCell>& cells() const { return cells_; }

  /// Functional evaluation of one issue given the current state and the
  /// port inputs; returns all outputs (state first). Evaluation goes
  /// through the *configured cells*, not the netlist shortcut, so tests
  /// validate the placement pipeline end to end.
  Gf2Vec evaluate(const Gf2Vec& state, const Gf2Vec& port_in) const;

 private:
  std::string name_;
  XorNetlist netlist_;
  std::size_t state_bits_;
  std::vector<CellSite> placement_;
  std::vector<RlcCell> cells_;
  std::size_t rows_used_ = 0;
  unsigned latency_ = 0;
  unsigned ii_ = 1;
};

}  // namespace plfsr
