#include "picoga/array.hpp"

namespace plfsr {

PicogaArray::PicogaArray(const PicogaConstraints& geom)
    : geom_(geom), slots_(geom.contexts) {}

PicogaArray::Slot& PicogaArray::active() {
  Slot& s = slots_[active_slot_];
  if (!s.op) throw std::logic_error("PicogaArray: no op in the active slot");
  return s;
}

const PicogaArray::Slot& PicogaArray::active() const {
  const Slot& s = slots_[active_slot_];
  if (!s.op) throw std::logic_error("PicogaArray: no op in the active slot");
  return s;
}

std::uint64_t PicogaArray::config_load_cycles(const PgaOp& op,
                                              const PicogaConstraints& geom) {
  // The configuration bus writes one row's worth of cell configuration
  // per group of cycles; a practical figure is ~4 cycles per cell
  // (PiCoGA streams multi-word bitstreams per cell). Rows are loaded
  // whole, used cells or not.
  return static_cast<std::uint64_t>(op.rows_used()) * geom.cells_per_row * 4;
}

void PicogaArray::load(std::size_t slot, PgaOp op) {
  if (slot >= slots_.size())
    throw std::invalid_argument("PicogaArray::load: bad slot");
  cycles_ += config_load_cycles(op, geom_);
  slots_[slot].state = Gf2Vec(op.state_bits());
  slots_[slot].op = std::move(op);
  if (slot == active_slot_) pipeline_filled_ = false;
}

void PicogaArray::activate(std::size_t slot) {
  if (slot >= slots_.size())
    throw std::invalid_argument("PicogaArray::activate: bad slot");
  if (!slots_[slot].op)
    throw std::logic_error("PicogaArray::activate: slot not loaded");
  if (slot != active_slot_) {
    cycles_ += kContextSwitchCycles;
    active_slot_ = slot;
    pipeline_filled_ = false;
  }
}

void PicogaArray::set_state(const Gf2Vec& state) {
  Slot& s = active();
  if (state.size() != s.op->state_bits())
    throw std::invalid_argument("PicogaArray::set_state: size mismatch");
  s.state = state;
}

Gf2Vec PicogaArray::state() const { return active().state; }

Gf2Vec PicogaArray::save_state() {
  const Slot& s = active();
  cycles_ += (s.op->state_bits() + 31) / 32;
  return s.state;
}

void PicogaArray::restore_state(const Gf2Vec& state) {
  set_state(state);
  cycles_ += (active().op->state_bits() + 31) / 32;
}

Gf2Vec PicogaArray::issue_on(Gf2Vec& state, const Gf2Vec& port_in) {
  Slot& s = active();
  if (!pipeline_filled_) {
    cycles_ += s.op->latency();  // fill
    pipeline_filled_ = true;
  } else {
    cycles_ += s.op->ii();
  }
  const Gf2Vec all = s.op->evaluate(state, port_in);
  const std::size_t sb = s.op->state_bits();
  Gf2Vec next_state(sb);
  for (std::size_t i = 0; i < sb; ++i) next_state.set(i, all.get(i));
  state = std::move(next_state);
  Gf2Vec out(all.size() - sb);
  for (std::size_t i = sb; i < all.size(); ++i) out.set(i - sb, all.get(i));
  return out;
}

Gf2Vec PicogaArray::issue(const Gf2Vec& port_in) {
  return issue_on(active().state, port_in);
}

void PicogaArray::init_banks(std::size_t count, const Gf2Vec& init) {
  Slot& s = active();
  if (init.size() != s.op->state_bits())
    throw std::invalid_argument("PicogaArray::init_banks: size mismatch");
  s.banks.assign(count, init);
}

Gf2Vec PicogaArray::issue_banked(std::size_t bank, const Gf2Vec& port_in) {
  Slot& s = active();
  if (bank >= s.banks.size())
    throw std::invalid_argument("PicogaArray::issue_banked: bad bank");
  return issue_on(s.banks[bank], port_in);
}

const Gf2Vec& PicogaArray::bank_state(std::size_t bank) const {
  const Slot& s = active();
  if (bank >= s.banks.size())
    throw std::invalid_argument("PicogaArray::bank_state: bad bank");
  return s.banks[bank];
}

void PicogaArray::drain() { pipeline_filled_ = false; }

}  // namespace plfsr
