#include "picoga/rlc_cell.hpp"

namespace plfsr {

RlcCell RlcCell::make_xor(unsigned fanin) {
  if (fanin == 0 || fanin > kMaxXorFanin)
    throw std::invalid_argument("RlcCell: XOR fan-in must be 1..10");
  RlcCell c;
  c.mode_ = CellMode::kXor;
  c.fanin_ = fanin;
  return c;
}

RlcCell RlcCell::make_lut(std::uint64_t table64) {
  RlcCell c;
  c.mode_ = CellMode::kLut;
  c.lut_ = table64;
  return c;
}

RlcCell RlcCell::make_alu(CellMode op) {
  switch (op) {
    case CellMode::kAluAdd:
    case CellMode::kAluAnd:
    case CellMode::kAluOr:
    case CellMode::kAluXor:
      break;
    default:
      throw std::invalid_argument("RlcCell::make_alu: not an ALU mode");
  }
  RlcCell c;
  c.mode_ = op;
  return c;
}

RlcCell RlcCell::make_gfmul() {
  RlcCell c;
  c.mode_ = CellMode::kGfMul;
  return c;
}

bool RlcCell::eval_xor(const std::vector<bool>& inputs) const {
  if (mode_ != CellMode::kXor)
    throw std::logic_error("RlcCell: not in XOR mode");
  if (inputs.size() != fanin_)
    throw std::invalid_argument("RlcCell: XOR input count mismatch");
  bool v = false;
  for (bool b : inputs) v ^= b;
  return v;
}

std::uint8_t RlcCell::eval_lut(std::uint8_t in4) const {
  if (mode_ != CellMode::kLut)
    throw std::logic_error("RlcCell: not in LUT mode");
  return static_cast<std::uint8_t>((lut_ >> (4 * (in4 & 0xF))) & 0xF);
}

RlcCell::AluResult RlcCell::eval_alu(std::uint8_t a4, std::uint8_t b4,
                                     bool carry_in) const {
  a4 &= 0xF;
  b4 &= 0xF;
  switch (mode_) {
    case CellMode::kAluAdd: {
      const unsigned s = a4 + b4 + (carry_in ? 1u : 0u);
      return {static_cast<std::uint8_t>(s & 0xF), (s >> 4) != 0};
    }
    case CellMode::kAluAnd:
      return {static_cast<std::uint8_t>(a4 & b4), false};
    case CellMode::kAluOr:
      return {static_cast<std::uint8_t>(a4 | b4), false};
    case CellMode::kAluXor:
      return {static_cast<std::uint8_t>(a4 ^ b4), false};
    default:
      throw std::logic_error("RlcCell: not in ALU mode");
  }
}

std::uint8_t RlcCell::eval_gfmul(std::uint8_t a4, std::uint8_t b4) const {
  if (mode_ != CellMode::kGfMul)
    throw std::logic_error("RlcCell: not in GF mode");
  // Carry-less multiply then reduce mod x^4 + x + 1 (GF(16)).
  unsigned prod = 0;
  for (int i = 0; i < 4; ++i)
    if ((a4 >> i) & 1) prod ^= static_cast<unsigned>(b4 & 0xF) << i;
  for (int i = 7; i >= 4; --i)
    if ((prod >> i) & 1) prod ^= (0x13u << (i - 4));  // x^4 == x + 1
  return static_cast<std::uint8_t>(prod & 0xF);
}

}  // namespace plfsr
