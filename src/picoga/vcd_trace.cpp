#include "picoga/vcd_trace.hpp"

#include <algorithm>
#include <sstream>

namespace plfsr {

VcdTrace::VcdTrace(unsigned timescale_ns) : timescale_ns_(timescale_ns) {}

void VcdTrace::record_context(std::uint64_t cycle, unsigned slot) {
  events_.push_back({cycle, Kind::kContext, slot});
}

void VcdTrace::record_issue(std::uint64_t cycle, unsigned rows_active) {
  events_.push_back({cycle, Kind::kIssue, rows_active});
}

void VcdTrace::record_stall(std::uint64_t cycle, bool stalled) {
  events_.push_back({cycle, Kind::kStall, stalled ? 1u : 0u});
}

std::string VcdTrace::render(const std::string& module_name) const {
  std::ostringstream os;
  os << "$timescale " << timescale_ns_ << "ns $end\n";
  os << "$scope module " << module_name << " $end\n";
  os << "$var wire 3 c context $end\n";
  os << "$var wire 8 r rows_active $end\n";
  os << "$var wire 1 s stall $end\n";
  os << "$upscope $end\n$enddefinitions $end\n";

  std::vector<Event> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event& a, const Event& b) {
                     return a.cycle < b.cycle;
                   });

  auto bin = [](std::uint64_t v, int width) {
    std::string s;
    for (int i = width - 1; i >= 0; --i)
      s.push_back(((v >> i) & 1) ? '1' : '0');
    return s;
  };

  std::uint64_t current = ~std::uint64_t{0};
  for (const Event& e : sorted) {
    if (e.cycle != current) {
      os << "#" << e.cycle << "\n";
      current = e.cycle;
    }
    switch (e.kind) {
      case Kind::kContext:
        os << "b" << bin(e.value, 3) << " c\n";
        break;
      case Kind::kIssue:
        os << "b" << bin(e.value, 8) << " r\n";
        break;
      case Kind::kStall:
        os << (e.value ? "1" : "0") << "s\n";
        break;
    }
  }
  return os.str();
}

}  // namespace plfsr
