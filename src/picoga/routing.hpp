// Routing feasibility model for placed PiCoGA operations.
//
// §3: "Routing architecture features 2-bit granularity segmented wires,
// although bit-wise interconnection is allowed with resource
// underutilization." Placement (pga_op.cpp) only checks cell and row
// budgets; this module checks the third resource: vertical routing
// tracks. For every row boundary it counts the distinct signals that are
// produced above the boundary and consumed at or below it (primary
// inputs enter at row 0 and route down too), rounds each signal up to a
// 2-bit granule (the paper's under-utilization for bit-wise nets), and
// compares the busiest boundary against the channel capacity.
#pragma once

#include <cstddef>
#include <vector>

#include "picoga/pga_op.hpp"

namespace plfsr {

/// Channel description: vertical tracks crossing each row boundary.
struct RoutingChannel {
  std::size_t tracks = 192;     ///< 2-bit granules per row boundary
  unsigned granularity = 2;     ///< wire bundle width in bits
};

/// Per-boundary utilisation of one placed op.
struct RoutingReport {
  std::vector<std::size_t> nets_per_boundary;  ///< signals crossing
  /// Worst case: every net routed bit-wise, one granule each (the
  /// "resource underutilization" §3 mentions).
  std::size_t peak_granules_bitwise = 0;
  /// Best case: nets perfectly paired into `granularity`-bit bundles.
  std::size_t peak_granules_paired = 0;
  bool feasible = false;  ///< paired (native-granularity) case fits
};

/// Analyse signal crossings of `op` against `channel`.
RoutingReport analyze_routing(const PgaOp& op,
                              const RoutingChannel& channel = {});

}  // namespace plfsr
