#include "picoga/pga_op.hpp"

#include <stdexcept>

namespace plfsr {

PgaOp::PgaOp(std::string name, XorNetlist netlist, std::size_t state_bits,
             const PicogaConstraints& geom)
    : name_(std::move(name)),
      netlist_(std::move(netlist)),
      state_bits_(state_bits) {
  if (state_bits_ > netlist_.n_inputs() ||
      state_bits_ > netlist_.outputs().size())
    throw std::invalid_argument("PgaOp: state bits exceed netlist I/O");
  if (netlist_.max_fanin() > RlcCell::kMaxXorFanin)
    throw std::invalid_argument("PgaOp: netlist fan-in exceeds the cell");

  // Level-by-level placement: level l starts on a fresh row; wide levels
  // spill into further rows of the same pipeline stage.
  const std::vector<std::size_t> hist = netlist_.level_histogram();
  std::vector<std::size_t> level_first_row(hist.size() + 1, 0);
  std::size_t row = 0;
  for (std::size_t l = 0; l < hist.size(); ++l) {
    level_first_row[l] = row;
    row += (hist[l] + geom.cells_per_row - 1) / geom.cells_per_row;
  }
  rows_used_ = row;
  latency_ = static_cast<unsigned>(netlist_.depth());

  if (rows_used_ > geom.rows)
    throw std::runtime_error("PgaOp '" + name_ + "': needs " +
                             std::to_string(rows_used_) + " rows, array has " +
                             std::to_string(geom.rows));
  if (port_in_bits() > geom.max_in_bits)
    throw std::runtime_error("PgaOp '" + name_ + "': input ports exceeded");
  if (port_out_bits() > geom.max_out_bits)
    throw std::runtime_error("PgaOp '" + name_ + "': output ports exceeded");

  // Assign sites in level order.
  std::vector<std::size_t> next_in_level(hist.size(), 0);
  placement_.resize(netlist_.node_count());
  cells_.reserve(netlist_.node_count());
  for (std::size_t i = 0; i < netlist_.node_count(); ++i) {
    const unsigned level = netlist_.signal_depth(
        static_cast<SignalId>(netlist_.n_inputs() + i));
    const std::size_t idx = next_in_level[level - 1]++;
    placement_[i] = {level_first_row[level - 1] + idx / geom.cells_per_row,
                     idx % geom.cells_per_row};
    cells_.push_back(RlcCell::make_xor(
        static_cast<unsigned>(netlist_.nodes()[i].inputs.size())));
  }

  // Initiation interval = state-feedback depth (1 if stateless).
  if (state_bits_ > 0) {
    std::vector<bool> mask(netlist_.n_inputs(), false);
    for (std::size_t i = 0; i < state_bits_; ++i) mask[i] = true;
    const unsigned loop =
        netlist_.depth_from(mask, 0, state_bits_);
    ii_ = loop > 0 ? loop : 1;
  }
}

Gf2Vec PgaOp::evaluate(const Gf2Vec& state, const Gf2Vec& port_in) const {
  if (state.size() != state_bits_ || port_in.size() != port_in_bits())
    throw std::invalid_argument("PgaOp::evaluate: I/O size mismatch");
  std::vector<bool> value(netlist_.n_inputs() + netlist_.node_count());
  for (std::size_t i = 0; i < state_bits_; ++i) value[i] = state.get(i);
  for (std::size_t i = 0; i < port_in.size(); ++i)
    value[state_bits_ + i] = port_in.get(i);
  // Drive each configured cell with its routed inputs, in placement order
  // (placement is level-ordered, so operands are always ready).
  for (std::size_t i = 0; i < netlist_.node_count(); ++i) {
    std::vector<bool> ins;
    ins.reserve(netlist_.nodes()[i].inputs.size());
    for (SignalId s : netlist_.nodes()[i].inputs) ins.push_back(value[s]);
    value[netlist_.n_inputs() + i] = cells_[i].eval_xor(ins);
  }
  const auto& outs = netlist_.outputs();
  Gf2Vec out(outs.size());
  for (std::size_t i = 0; i < outs.size(); ++i)
    out.set(i, outs[i] == kZeroSignal ? false : value[outs[i]]);
  return out;
}

}  // namespace plfsr
