// Reconfigurable Logic Cell (RLC) model.
//
// PiCoGA's cell is mixed-grain (§3): a 4-bit ALU, a 64-bit look-up table
// (4 inputs x 4 outputs), carry/conditional support, Galois-field helpers
// — and, crucially for this paper, a wide-XOR mode that evaluates a
// 10-input XOR in a single cell. The CRC/scrambler mappings use only the
// XOR mode; the other modes are modelled (and tested) so the simulator is
// a credible PiCoGA, not a bespoke XOR machine.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace plfsr {

/// Cell operating modes.
enum class CellMode {
  kXor,    ///< up to 10 single-bit inputs -> 1 bit (parity)
  kLut,    ///< 4-bit input -> 4-bit output through a 64-bit table
  kAluAdd, ///< 4-bit a + b + carry-in -> 4-bit sum, carry-out
  kAluAnd,
  kAluOr,
  kAluXor,
  kGfMul,  ///< GF(16) multiply (x^4+x+1): the "Galois facilities"
};

/// One configured RLC.
class RlcCell {
 public:
  RlcCell() = default;

  /// Configure as a wide XOR with `fanin` inputs (1..10).
  static RlcCell make_xor(unsigned fanin);

  /// Configure as a LUT; table bit (4*in + j) gives output bit j.
  static RlcCell make_lut(std::uint64_t table64);

  /// Configure as an ALU op.
  static RlcCell make_alu(CellMode op);

  /// Configure as the GF(16) multiplier.
  static RlcCell make_gfmul();

  CellMode mode() const { return mode_; }
  unsigned fanin() const { return fanin_; }

  /// Evaluate the XOR mode.
  bool eval_xor(const std::vector<bool>& inputs) const;

  /// Evaluate LUT / ALU / GF modes on 4-bit operands.
  struct AluResult {
    std::uint8_t value;  // low 4 bits
    bool carry_out;
  };
  std::uint8_t eval_lut(std::uint8_t in4) const;
  AluResult eval_alu(std::uint8_t a4, std::uint8_t b4, bool carry_in) const;
  std::uint8_t eval_gfmul(std::uint8_t a4, std::uint8_t b4) const;

  /// Maximum XOR fan-in of one cell — the constant the whole mapping
  /// strategy of the paper is built around.
  static constexpr unsigned kMaxXorFanin = 10;

 private:
  CellMode mode_ = CellMode::kXor;
  unsigned fanin_ = 0;
  std::uint64_t lut_ = 0;
};

}  // namespace plfsr
