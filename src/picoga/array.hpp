// PiCoGA array simulator: configuration cache, context switching, and
// cycle accounting for streams of operation issues.
//
// §3: "a 4-context internal configuration cache that allows exchanging
// the active layer in only 2 clock cycles". Loading a configuration from
// scratch is far more expensive (it streams the whole bitstream through
// the configuration bus); once cached, switching is 2 cycles — this
// asymmetry is exactly what the message-interleaving experiment (Fig. 5)
// amortises away, so the simulator models both costs explicitly.
//
// Timing model of a stream of n issues on one op (row-pipelined array,
// one row per stage):  latency + (n - 1) * II  cycles from first issue to
// last result, with II = 1 for Derby-form ops. The array keeps per-slot
// state registers so a looped op resumes where it left off — that is how
// interleaved messages coexist (each message's x_t lives in its slot's
// register file, swapped by the control processor in the real system; we
// expose save/restore to model that at its 1-cycle-per-32-bit-word cost).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "picoga/pga_op.hpp"

namespace plfsr {

/// Cycle-accounting PiCoGA with a 4-context configuration cache.
class PicogaArray {
 public:
  explicit PicogaArray(const PicogaConstraints& geom = {});

  const PicogaConstraints& geometry() const { return geom_; }

  /// Load an op into a cache slot (evicting its previous content).
  /// Costs the full configuration-load time.
  void load(std::size_t slot, PgaOp op);

  /// Make a cached slot active; 2 cycles if it was not already active.
  void activate(std::size_t slot);

  /// Reset the active op's state registers to `state`.
  void set_state(const Gf2Vec& state);
  Gf2Vec state() const;

  /// Save/restore the active op's state registers to/from the processor
  /// (used when interleaving more messages than slots); costs one cycle
  /// per started 32-bit word, like any register-file move on DREAM.
  Gf2Vec save_state();
  void restore_state(const Gf2Vec& state);

  /// Issue one input token into the active op's pipeline; returns the op
  /// outputs (port outputs only — state is retained internally).
  /// Back-to-back issues cost II cycles each; the first issue after
  /// activation or after a drain also pays the fill latency.
  Gf2Vec issue(const Gf2Vec& port_in);

  /// Provision `count` extra state banks for the active slot, each
  /// initialised to `init`. Banks model the Kong/Parhi interleaving [13]:
  /// with at least `latency` messages rotating round-robin at II = 1,
  /// each message's state update retires before its next chunk arrives,
  /// so the rotation costs no extra cycles — the registers of the loop
  /// row simply hold one state per in-flight message.
  void init_banks(std::size_t count, const Gf2Vec& init);

  /// Issue against a specific bank's state.
  Gf2Vec issue_banked(std::size_t bank, const Gf2Vec& port_in);

  /// Read a bank's state (e.g. to feed the anti-transform op).
  const Gf2Vec& bank_state(std::size_t bank) const;

  /// Wait for the pipeline to empty (results of all issued tokens
  /// architecturally visible). Idempotent.
  void drain();

  /// Total cycles consumed so far (5 ns each at the fixed 200 MHz).
  std::uint64_t cycles() const { return cycles_; }
  void reset_cycles() { cycles_ = 0; }

  /// Configuration-load cost model: one cycle per cell bitstream word.
  static std::uint64_t config_load_cycles(const PgaOp& op,
                                          const PicogaConstraints& geom);

  /// Context-switch cost (the paper's headline number).
  static constexpr std::uint64_t kContextSwitchCycles = 2;

 private:
  struct Slot {
    std::optional<PgaOp> op;
    Gf2Vec state;
    std::vector<Gf2Vec> banks;
  };
  Gf2Vec issue_on(Gf2Vec& state, const Gf2Vec& port_in);
  Slot& active();
  const Slot& active() const;

  PicogaConstraints geom_;
  std::vector<Slot> slots_;
  std::size_t active_slot_ = 0;
  bool pipeline_filled_ = false;
  std::uint64_t cycles_ = 0;
};

}  // namespace plfsr
