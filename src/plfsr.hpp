// Umbrella header: the full public API of the library.
//
// Fine-grained headers remain the preferred include style (they keep
// rebuilds small); this header exists for quick experiments and as the
// canonical index of the API surface.
#pragma once

// Support
#include "support/bitstream.hpp"
#include "support/cpu_features.hpp"
#include "support/report.hpp"
#include "support/rng.hpp"

// GF(2) algebra
#include "gf2/gf2_matrix.hpp"
#include "gf2/gf2_poly.hpp"
#include "gf2/gf2_vec.hpp"

// GF(2^m) symbol fields
#include "gfm/gf256.hpp"
#include "gfm/gfm_field.hpp"

// LFSR theory
#include "lfsr/berlekamp_massey.hpp"
#include "lfsr/catalog.hpp"
#include "lfsr/companion.hpp"
#include "lfsr/derby.hpp"
#include "lfsr/linear_system.hpp"
#include "lfsr/lookahead.hpp"

// CRC engines & analysis
#include "crc/clmul_crc.hpp"
#include "crc/crc_combine.hpp"
#include "crc/crc_spec.hpp"
#include "crc/derby_crc.hpp"
#include "crc/parallel_crc.hpp"
#include "crc/error_model.hpp"
#include "crc/ethernet.hpp"
#include "crc/gfmac_crc.hpp"
#include "crc/matrix_crc.hpp"
#include "crc/serial_crc.hpp"
#include "crc/slicing_crc.hpp"
#include "crc/table_crc.hpp"
#include "crc/wide_table_crc.hpp"

// Forward error correction
#include "fec/bch_codec.hpp"
#include "fec/fec_codec.hpp"
#include "fec/fec_registry.hpp"
#include "fec/parallel_fec.hpp"
#include "fec/rs_codec.hpp"

// Scramblers
#include "scrambler/dvb.hpp"
#include "scrambler/scrambler.hpp"
#include "scrambler/wifi.hpp"

// Stream ciphers
#include "cipher/a51.hpp"
#include "cipher/combiner.hpp"
#include "cipher/e0.hpp"

// Mapping flow
#include "mapper/design_space.hpp"
#include "mapper/griffy.hpp"
#include "mapper/matrix_mapper.hpp"
#include "mapper/op_builder.hpp"
#include "mapper/verilog_gen.hpp"
#include "mapper/xor_netlist.hpp"

// PiCoGA simulator
#include "picoga/array.hpp"
#include "picoga/crc_accelerator.hpp"
#include "picoga/pga_op.hpp"
#include "picoga/rlc_cell.hpp"
#include "picoga/vcd_trace.hpp"

// DREAM platform & comparators
#include "asicmodel/ucrc_model.hpp"
#include "dream/context_schedule.hpp"
#include "dream/dream_model.hpp"
#include "dream/scrambler_model.hpp"
