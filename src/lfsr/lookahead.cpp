#include "lfsr/lookahead.hpp"

#include <stdexcept>

namespace plfsr {

LookAhead::LookAhead(const LinearSystem& sys, std::size_t m) : m_(m) {
  if (m == 0) throw std::invalid_argument("LookAhead: M must be >= 1");
  const std::size_t k = sys.dim();

  am_ = sys.a.pow(m);

  // Natural order: column j of B_M is A^{M-1-j} b (input u(n+j) is hit by
  // M-1-j further state updates before x(n+M) is read).
  bm_ = Gf2Matrix(k, m);
  Gf2Vec acc = sys.b;  // A^0 b
  for (std::size_t j = m; j-- > 0;) {
    bm_.set_column(j, acc);
    if (j > 0) acc = sys.a * acc;
  }

  cm_ = Gf2Matrix(m, k);
  const Gf2Matrix at = sys.a.transposed();  // row-vector * A == A^T * column
  Gf2Vec crow = sys.c;                      // c A^0
  for (std::size_t i = 0; i < m; ++i) {
    cm_.set_row(i, crow);
    if (i + 1 < m) crow = at * crow;
  }

  dm_ = Gf2Matrix(m, m);
  // Precompute the impulse-response taps h_t = c A^t b for t in [0, M-2].
  std::vector<bool> h(m > 1 ? m - 1 : 0);
  Gf2Vec ab = sys.b;
  for (std::size_t t = 0; t + 1 < m; ++t) {
    h[t] = sys.c.dot(ab);
    ab = sys.a * ab;
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (sys.d) dm_.set(i, i, true);
    for (std::size_t j = 0; j < i; ++j) dm_.set(i, j, h[i - 1 - j]);
  }
}

Gf2Matrix LookAhead::paper_input_matrix() const {
  Gf2Matrix out(bm_.rows(), bm_.cols());
  for (std::size_t c = 0; c < bm_.cols(); ++c)
    out.set_column(c, bm_.column(bm_.cols() - 1 - c));
  return out;
}

std::uint64_t LookAhead::output_column_word(std::size_t j) const {
  if (m_ > 64)
    throw std::invalid_argument(
        "LookAhead::output_column_word: M must be <= 64");
  return cm_.column(j).to_word();
}

std::uint64_t LookAhead::state_column_word(std::size_t j) const {
  if (dim() > 64)
    throw std::invalid_argument(
        "LookAhead::state_column_word: dim must be <= 64");
  return am_.column(j).to_word();
}

Gf2Vec LookAhead::step(Gf2Vec& x, const Gf2Vec& u) const {
  if (u.size() != m_)
    throw std::invalid_argument("LookAhead::step: input chunk size mismatch");
  Gf2Vec y = cm_ * x + dm_ * u;
  x = am_ * x + bm_ * u;
  return y;
}

void LookAhead::step_state(Gf2Vec& x, const Gf2Vec& u) const {
  if (u.size() != m_)
    throw std::invalid_argument("LookAhead::step_state: chunk size mismatch");
  x = am_ * x + bm_ * u;
}

BitStream LookAhead::run(Gf2Vec& x, const BitStream& input) const {
  BitStream out;
  for (std::size_t pos = 0; pos < input.size(); pos += m_) {
    const Gf2Vec u = chunk_to_vec(input, pos, m_);
    const Gf2Vec y = step(x, u);
    const std::size_t valid = std::min(m_, input.size() - pos);
    for (std::size_t i = 0; i < valid; ++i) out.push_back(y.get(i));
  }
  return out;
}

Gf2Vec chunk_to_vec(const BitStream& input, std::size_t pos, std::size_t m) {
  Gf2Vec u(m);
  for (std::size_t i = 0; i < m && pos + i < input.size(); ++i)
    u.set(i, input.get(pos + i));
  return u;
}

}  // namespace plfsr
