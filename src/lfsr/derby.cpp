#include "lfsr/derby.hpp"

#include <stdexcept>
#include <vector>

#include "support/rng.hpp"

namespace plfsr {

std::optional<DerbyTransform> DerbyTransform::with_f(const LookAhead& la,
                                                     const Gf2Vec& f) {
  const std::size_t k = la.dim();
  if (f.size() != k)
    throw std::invalid_argument("DerbyTransform: f dimension mismatch");

  // Krylov columns of A^M seeded at f.
  std::vector<Gf2Vec> cols;
  cols.reserve(k);
  Gf2Vec v = f;
  for (std::size_t i = 0; i < k; ++i) {
    cols.push_back(v);
    if (i + 1 < k) v = la.am() * v;
  }
  Gf2Matrix t = Gf2Matrix::from_columns(cols);
  auto tinv = t.inverse();
  if (!tinv) return std::nullopt;

  DerbyTransform d;
  d.m_ = la.m();
  d.f_ = f;
  d.t_ = std::move(t);
  d.tinv_ = std::move(*tinv);
  d.amt_ = d.tinv_ * la.am() * d.t_;
  d.bmt_ = d.tinv_ * la.bm();
  if (!d.amt_.is_companion())
    throw std::logic_error(
        "DerbyTransform: Krylov similarity did not yield companion form");
  return d;
}

DerbyTransform::DerbyTransform(const LookAhead& la) {
  const std::size_t k = la.dim();
  // Paper's choice first: f = [1 0 ... 0]; then the other unit vectors,
  // then deterministic pseudo-random vectors.
  for (std::size_t i = 0; i < k; ++i) {
    if (auto d = with_f(la, Gf2Vec::unit(k, i))) {
      *this = std::move(*d);
      return;
    }
  }
  Rng rng(0x9E3779B9u);
  for (int attempt = 0; attempt < 256; ++attempt) {
    Gf2Vec f(k);
    for (std::size_t i = 0; i < k; ++i) f.set(i, rng.next_bit());
    if (f.is_zero()) continue;
    if (auto d = with_f(la, f)) {
      *this = std::move(*d);
      return;
    }
  }
  throw std::runtime_error(
      "DerbyTransform: no f found — A^M appears derogatory");
}

void DerbyTransform::step_state(Gf2Vec& xt, const Gf2Vec& u) const {
  if (u.size() != m_)
    throw std::invalid_argument("DerbyTransform::step_state: chunk mismatch");
  xt = amt_ * xt + bmt_ * u;
}

void DerbyTransform::run_state(Gf2Vec& xt, const BitStream& input) const {
  for (std::size_t pos = 0; pos < input.size(); pos += m_)
    step_state(xt, chunk_to_vec(input, pos, m_));
}

}  // namespace plfsr
