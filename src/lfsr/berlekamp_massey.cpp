#include "lfsr/berlekamp_massey.hpp"

#include <stdexcept>

namespace plfsr {

LfsrSynthesis berlekamp_massey(const BitStream& seq) {
  // Massey's algorithm over GF(2). C is the current connection
  // polynomial, B the one before the last length change.
  Gf2Poly c = Gf2Poly::one();
  Gf2Poly b = Gf2Poly::one();
  std::size_t l = 0;
  std::size_t m = 1;  // steps since last length change

  for (std::size_t n = 0; n < seq.size(); ++n) {
    // Discrepancy d = s_n + sum_{i=1..L} c_i s_{n-i}.
    bool d = seq.get(n);
    for (std::size_t i = 1; i <= l; ++i)
      if (c.coeff(static_cast<unsigned>(i)) && seq.get(n - i)) d = !d;

    if (!d) {
      ++m;
    } else if (2 * l <= n) {
      const Gf2Poly t = c;
      c = c + b * Gf2Poly::x_pow(static_cast<unsigned>(m));
      l = n + 1 - l;
      b = t;
      m = 1;
    } else {
      c = c + b * Gf2Poly::x_pow(static_cast<unsigned>(m));
      ++m;
    }
  }
  return {c, l};
}

std::vector<std::size_t> linear_complexity_profile(const BitStream& seq) {
  std::vector<std::size_t> profile;
  profile.reserve(seq.size());
  BitStream prefix;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    prefix.push_back(seq.get(i));
    profile.push_back(berlekamp_massey(prefix).complexity);
  }
  return profile;
}

bool generates(const Gf2Poly& connection, std::size_t complexity,
               const BitStream& seq) {
  for (std::size_t n = complexity; n < seq.size(); ++n) {
    bool v = false;
    for (std::size_t i = 1; i <= complexity; ++i)
      if (connection.coeff(static_cast<unsigned>(i)) && seq.get(n - i))
        v = !v;
    if (v != seq.get(n)) return false;
  }
  return true;
}

GfmLfsrSynthesis berlekamp_massey(const GfmField& f,
                                  std::span<const GfmField::Sym> seq) {
  // Massey's algorithm over a general field: identical control flow to
  // the GF(2) version above, but the update term is scaled by d/b (the
  // current discrepancy over the one at the last length change) instead
  // of being a bare XOR — over GF(2) d = b = 1 whenever they matter, so
  // the binary case degenerates to the version above exactly.
  using Sym = GfmField::Sym;
  std::vector<Sym> c{1};
  std::vector<Sym> bpoly{1};
  std::size_t l = 0;
  std::size_t m = 1;  // steps since last length change
  Sym b = 1;          // discrepancy at the last length change

  for (std::size_t n = 0; n < seq.size(); ++n) {
    // Discrepancy d = s_n + sum_{i=1..L} c_i s_{n-i}.
    Sym d = seq[n];
    for (std::size_t i = 1; i <= l && i < c.size(); ++i)
      d = f.add(d, f.mul(c[i], seq[n - i]));

    if (d == 0) {
      ++m;
      continue;
    }
    // C(x) -= (d/b) x^m B(x).
    const Sym coef = f.div(d, b);
    std::vector<Sym> next = c;
    if (next.size() < bpoly.size() + m) next.resize(bpoly.size() + m, 0);
    for (std::size_t i = 0; i < bpoly.size(); ++i)
      next[i + m] = f.add(next[i + m], f.mul(coef, bpoly[i]));
    if (2 * l <= n) {
      bpoly = std::move(c);
      b = d;
      l = n + 1 - l;
      m = 1;
    } else {
      ++m;
    }
    c = std::move(next);
  }
  c.resize(l + 1, 0);
  return {std::move(c), l};
}

bool generates(const GfmField& f,
               const std::vector<GfmField::Sym>& connection,
               std::size_t complexity, std::span<const GfmField::Sym> seq) {
  for (std::size_t n = complexity; n < seq.size(); ++n) {
    GfmField::Sym v = 0;
    for (std::size_t i = 1; i <= complexity && i < connection.size(); ++i)
      v = f.add(v, f.mul(connection[i], seq[n - i]));
    if (v != seq[n]) return false;
  }
  return true;
}

BitStream predict_continuation(const BitStream& observed, std::size_t n_more) {
  const LfsrSynthesis syn = berlekamp_massey(observed);
  if (observed.size() < 2 * syn.complexity)
    throw std::invalid_argument(
        "predict_continuation: need >= 2L observed bits");
  BitStream all = observed;
  for (std::size_t k = 0; k < n_more; ++k) {
    const std::size_t n = all.size();
    bool v = false;
    for (std::size_t i = 1; i <= syn.complexity; ++i)
      if (syn.connection.coeff(static_cast<unsigned>(i)) && all.get(n - i))
        v = !v;
    all.push_back(v);
  }
  BitStream out;
  for (std::size_t i = observed.size(); i < all.size(); ++i)
    out.push_back(all.get(i));
  return out;
}

}  // namespace plfsr
