#include "lfsr/catalog.hpp"

#include "gfm/gfm_field.hpp"

namespace plfsr::catalog {

Gf2Poly crc32_ethernet() { return Gf2Poly::with_top_bit(32, 0x04C11DB7); }
Gf2Poly crc32c() { return Gf2Poly::with_top_bit(32, 0x1EDC6F41); }
Gf2Poly crc16_ccitt() { return Gf2Poly::with_top_bit(16, 0x1021); }
Gf2Poly crc16_ibm() { return Gf2Poly::with_top_bit(16, 0x8005); }
Gf2Poly crc24_openpgp() { return Gf2Poly::with_top_bit(24, 0x864CFB); }
Gf2Poly crc15_can() { return Gf2Poly::with_top_bit(15, 0x4599); }
Gf2Poly crc8_atm() { return Gf2Poly::with_top_bit(8, 0x07); }
Gf2Poly crc8_maxim() { return Gf2Poly::with_top_bit(8, 0x31); }
Gf2Poly crc7_mmc() { return Gf2Poly::with_top_bit(7, 0x09); }
Gf2Poly crc5_usb() { return Gf2Poly::with_top_bit(5, 0x05); }
Gf2Poly crc64_ecma() {
  return Gf2Poly::with_top_bit(64, 0x42F0E1EBA9EA3693ULL);
}

Gf2Poly scrambler_80211() { return Gf2Poly::from_exponents({7, 4, 0}); }
Gf2Poly scrambler_sonet() { return Gf2Poly::from_exponents({7, 6, 0}); }
Gf2Poly scrambler_dvb() { return Gf2Poly::from_exponents({15, 14, 0}); }
Gf2Poly prbs7() { return Gf2Poly::from_exponents({7, 6, 0}); }
Gf2Poly prbs9() { return Gf2Poly::from_exponents({9, 5, 0}); }
Gf2Poly prbs15() { return Gf2Poly::from_exponents({15, 14, 0}); }
Gf2Poly prbs23() { return Gf2Poly::from_exponents({23, 18, 0}); }
Gf2Poly prbs31() { return Gf2Poly::from_exponents({31, 28, 0}); }

Gf2Poly gfm_primitive(unsigned m) { return default_primitive_poly(m); }
Gf2Poly gf16_field() { return default_primitive_poly(4); }
Gf2Poly gf256_field() { return default_primitive_poly(8); }
Gf2Poly gf1024_field() { return default_primitive_poly(10); }
Gf2Poly gf4096_field() { return default_primitive_poly(12); }
Gf2Poly gf65536_field() { return default_primitive_poly(16); }

Gf2Poly a51_r1() { return Gf2Poly::from_exponents({19, 18, 17, 14, 0}); }
Gf2Poly a51_r2() { return Gf2Poly::from_exponents({22, 21, 0}); }
Gf2Poly a51_r3() { return Gf2Poly::from_exponents({23, 22, 21, 8, 0}); }

std::vector<NamedPoly> all_crc_polys() {
  return {
      {"CRC-32/ETHERNET", crc32_ethernet()},
      {"CRC-32C", crc32c()},
      {"CRC-16/CCITT", crc16_ccitt()},
      {"CRC-16/IBM", crc16_ibm()},
      {"CRC-24/OPENPGP", crc24_openpgp()},
      {"CRC-15/CAN", crc15_can()},
      {"CRC-8/ATM", crc8_atm()},
      {"CRC-8/MAXIM", crc8_maxim()},
      {"CRC-7/MMC", crc7_mmc()},
      {"CRC-5/USB", crc5_usb()},
      {"CRC-64/ECMA", crc64_ecma()},
  };
}

std::vector<NamedPoly> all_scrambler_polys() {
  return {
      {"802.11 (x7+x4+1)", scrambler_80211()},
      {"SONET (x7+x6+1)", scrambler_sonet()},
      {"DVB (x15+x14+1)", scrambler_dvb()},
      {"PRBS-9", prbs9()},
      {"PRBS-23", prbs23()},
      {"PRBS-31", prbs31()},
  };
}

std::vector<NamedPoly> all_gfm_field_polys() {
  return {
      {"GF(16)", gf16_field()},
      {"GF(256)", gf256_field()},
      {"GF(1024)", gf1024_field()},
      {"GF(4096)", gf4096_field()},
      {"GF(65536)", gf65536_field()},
  };
}

}  // namespace plfsr::catalog
