// M-level look-ahead (§2 of the paper).
//
// Applying the state update M times and collecting the M inputs into a
// vector u_M(n) gives
//
//   x(n+M)  = A^M x(n) + B_M u_M(n)
//   y_M(n)  = C_M x(n) + D_M u_M(n)
//
// The paper orders u_M(n) = [u(n+M-1) ... u(n+1) u(n)]^T, which makes
// B_M = [b  A b  A^2 b ... A^{M-1} b]. We store the matrices in *natural*
// input order instead — column j multiplies u(n+j) — because that is the
// order bits arrive in a BitStream chunk; `paper_input_matrix()` returns
// the column-reversed form to match the paper's equations one-to-one.
//
// The output block is M x k / M x M:
//   row i of C_M = c A^i                       (y(n+i) from the state)
//   D_M[i][j]    = d        if j == i
//                = c A^{i-1-j} b  if j <  i    (input u(n+j) reaching y(n+i))
//                = 0        if j >  i          (causality)
#pragma once

#include <cstddef>

#include "gf2/gf2_matrix.hpp"
#include "lfsr/linear_system.hpp"
#include "support/bitstream.hpp"

namespace plfsr {

/// Precomputed M-step block form of a LinearSystem.
class LookAhead {
 public:
  /// Build the M-level look-ahead of `sys`. M >= 1.
  LookAhead(const LinearSystem& sys, std::size_t m);

  std::size_t m() const { return m_; }
  std::size_t dim() const { return am_.rows(); }

  const Gf2Matrix& am() const { return am_; }  ///< A^M (feedback block)
  const Gf2Matrix& bm() const { return bm_; }  ///< k x M, natural order
  const Gf2Matrix& cm() const { return cm_; }  ///< M x k
  const Gf2Matrix& dm() const { return dm_; }  ///< M x M lower-triangular

  /// B_M in the paper's reversed-input order [b Ab ... A^{M-1} b].
  Gf2Matrix paper_input_matrix() const;

  /// Column j of C_M packed into a word (bit i = C_M(i, j), i.e. the
  /// contribution of state bit j to output bit y(n+i)). Requires M <= 64.
  /// These are the per-state-bit output masks of the word-parallel
  /// scrambler: the M-bit output block is the XOR of the columns selected
  /// by the set bits of the state.
  std::uint64_t output_column_word(std::size_t j) const;

  /// Column j of A^M packed into a word (bit i = (A^M)(i, j)) — the
  /// per-state-bit hop masks of the same word-parallel step. Requires
  /// dim <= 64.
  std::uint64_t state_column_word(std::size_t j) const;

  /// One M-bit step: consume `u` (element j = u(n+j)), advance the state,
  /// return the M output bits (element i = y(n+i)).
  Gf2Vec step(Gf2Vec& x, const Gf2Vec& u) const;

  /// State-only step (CRC use: outputs are not needed until message end).
  void step_state(Gf2Vec& x, const Gf2Vec& u) const;

  /// Run a whole bit stream through the block form; the input is consumed
  /// M bits at a time (the final partial chunk is zero-padded on the
  /// *high* side, and only the valid output bits are emitted, after which
  /// the state corresponds to the *padded* length — callers that care
  /// about exact state for non-multiple lengths should pad explicitly,
  /// as the paper's processor-side control code does).
  BitStream run(Gf2Vec& x, const BitStream& input) const;

 private:
  std::size_t m_;
  Gf2Matrix am_, bm_, cm_, dm_;
};

/// Chunk `input` bits [pos, pos+m) into a Gf2Vec (missing bits read 0).
Gf2Vec chunk_to_vec(const BitStream& input, std::size_t pos, std::size_t m);

}  // namespace plfsr
