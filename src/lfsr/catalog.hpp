// Catalog of generator polynomials used across the telecom standards the
// paper's introduction surveys ("only in the Wikipedia, ~25 standards are
// reported"). CRC parameter sets (init/xorout/reflection) live in
// crc/crc_spec.hpp; this file is the polynomial layer shared by the CRC,
// scrambler and cipher modules.
#pragma once

#include <string>
#include <vector>

#include "gf2/gf2_poly.hpp"

namespace plfsr::catalog {

/// Named generator polynomial.
struct NamedPoly {
  std::string name;
  Gf2Poly poly;
};

// --- CRC generator polynomials (normal form, explicit top bit) ----------

Gf2Poly crc32_ethernet();   ///< x^32+... (0x04C11DB7) — IEEE 802.3 / MPEG-2
Gf2Poly crc32c();           ///< Castagnoli 0x1EDC6F41 (iSCSI)
Gf2Poly crc16_ccitt();      ///< 0x1021 (X.25, Bluetooth, XMODEM, ...)
Gf2Poly crc16_ibm();        ///< 0x8005 (ARC, USB data)
Gf2Poly crc24_openpgp();    ///< 0x864CFB
Gf2Poly crc15_can();        ///< 0x4599
Gf2Poly crc8_atm();         ///< 0x07
Gf2Poly crc8_maxim();       ///< 0x31
Gf2Poly crc7_mmc();         ///< 0x09
Gf2Poly crc5_usb();         ///< 0x05
Gf2Poly crc64_ecma();       ///< 0x42F0E1EBA9EA3693

// --- Scrambler / PRBS polynomials ----------------------------------------

Gf2Poly scrambler_80211();  ///< x^7 + x^4 + 1 (802.11 a/b/g/e)
Gf2Poly scrambler_sonet();  ///< x^7 + x^6 + 1 (SONET/SDH frame scrambler)
Gf2Poly scrambler_dvb();    ///< x^15 + x^14 + 1 (DVB / 802.16 randomizer)
Gf2Poly prbs7();            ///< x^7 + x^6 + 1
Gf2Poly prbs9();            ///< x^9 + x^5 + 1 (ITU O.150)
Gf2Poly prbs15();           ///< x^15 + x^14 + 1
Gf2Poly prbs23();           ///< x^23 + x^18 + 1
Gf2Poly prbs31();           ///< x^31 + x^28 + 1

// --- GF(2^m) field-generator polynomials ---------------------------------
//
// Primitive polynomials defining the symbol fields of the FEC subsystem
// (src/gfm, src/fec): GF(2^m) = GF(2)[x]/p(x) with alpha = x primitive.
// These delegate to gfm's default_primitive_poly so the catalogue and the
// field constructor can never disagree; tests/catalog_test.cpp proves
// primitivity of each through the exact Gf2Poly tests.

Gf2Poly gfm_primitive(unsigned m);  ///< default primitive poly, m in [1,16]
Gf2Poly gf16_field();       ///< x^4 + x + 1 — GF(16), RS(15,k) examples
Gf2Poly gf256_field();      ///< x^8+x^4+x^3+x^2+1 (0x11D) — DVB/CCSDS RS
Gf2Poly gf1024_field();     ///< x^10 + x^3 + 1 — GF(1024)
Gf2Poly gf4096_field();     ///< x^12 + x^6 + x^4 + x + 1 — GF(4096)
Gf2Poly gf65536_field();    ///< x^16 + x^12 + x^3 + x + 1 — GF(65536)

// --- A5/1 (GSM) register polynomials --------------------------------------

Gf2Poly a51_r1();           ///< x^19 + x^18 + x^17 + x^14 + 1
Gf2Poly a51_r2();           ///< x^22 + x^21 + 1
Gf2Poly a51_r3();           ///< x^23 + x^22 + x^21 + x^8 + 1

/// All CRC generators above, for parameterized sweeps.
std::vector<NamedPoly> all_crc_polys();

/// All scrambler/PRBS generators above.
std::vector<NamedPoly> all_scrambler_polys();

/// The GF(2^m) field generators above (m in {4, 8, 10, 12, 16}), for
/// parameterized FEC/field sweeps.
std::vector<NamedPoly> all_gfm_field_polys();

}  // namespace plfsr::catalog
