#include "lfsr/companion.hpp"

#include <stdexcept>

namespace plfsr {

namespace {
std::size_t checked_degree(const Gf2Poly& g) {
  const int k = g.degree();
  if (k <= 0)
    throw std::invalid_argument("companion: generator must have degree >= 1");
  return static_cast<std::size_t>(k);
}
}  // namespace

Gf2Matrix companion_galois(const Gf2Poly& g) {
  const std::size_t k = checked_degree(g);
  Gf2Matrix a(k, k);
  for (std::size_t i = 1; i < k; ++i) a.set(i, i - 1, true);
  for (std::size_t i = 0; i < k; ++i)
    if (g.coeff(static_cast<unsigned>(i))) a.set(i, k - 1, true);
  return a;
}

Gf2Matrix companion_fibonacci(const Gf2Poly& g) {
  const std::size_t k = checked_degree(g);
  Gf2Matrix a(k, k);
  for (std::size_t i = 1; i < k; ++i) a.set(i, i - 1, true);
  // Feedback into x_0: tap x^j in the polynomial reads the register cell
  // holding the bit that entered j clocks ago, i.e. state index j-1; the
  // x^k term reads the oldest cell, index k-1.
  for (unsigned j = 1; j <= k; ++j)
    if (g.coeff(j)) a.set(0, j - 1, a.get(0, j - 1) ^ 1);
  return a;
}

Gf2Vec crc_input_vector(const Gf2Poly& g) {
  const std::size_t k = checked_degree(g);
  Gf2Vec b(k);
  for (std::size_t i = 0; i < k; ++i)
    b.set(i, g.coeff(static_cast<unsigned>(i)));
  return b;
}

}  // namespace plfsr
