// The paper's unified state-space description of LFSR applications (§2):
//
//   x(n+1) = A x(n) + b u(n)
//   y(n)   = c x(n) + d u(n)
//
// with everything over GF(2). The CRC instance has c = 0 row / d = 0 (the
// checksum is read from the state at the end), and the scrambler instance
// has b = 0 (autonomous LFSR) with y the tap parity XORed with the input.
//
// The paper writes the output equation with a k x k selection matrix C; we
// use the single-output row form c because every application in the paper
// emits one bit per serial step — the M-output generalisation appears in
// the look-ahead matrices C_M / D_M (see lookahead.hpp).
#pragma once

#include "gf2/gf2_matrix.hpp"
#include "gf2/gf2_poly.hpp"
#include "support/bitstream.hpp"

namespace plfsr {

/// Single-input single-output linear system over GF(2).
struct LinearSystem {
  Gf2Matrix a;  ///< k x k state-update matrix
  Gf2Vec b;     ///< k input-injection column
  Gf2Vec c;     ///< k output-selection row (stored as a vector)
  bool d = false;  ///< input feed-through into the output

  std::size_t dim() const { return b.size(); }

  /// One serial step: returns y(n) and advances x to x(n+1).
  bool step(Gf2Vec& x, bool u) const;

  /// Run the whole input through the system from state x; the produced
  /// output bits are returned and x holds the final state.
  BitStream run(Gf2Vec& x, const BitStream& input) const;

  /// Advance the state n steps with zero input (autonomous evolution).
  void advance_free(Gf2Vec& x, std::uint64_t n) const;
};

/// CRC system in Galois form: A = companion_galois(g), b = [g_0..g_{k-1}],
/// no output path (checksum = final state). One step consumes one message
/// bit; starting from x = 0 and feeding the N message bits, the final
/// state holds (message(x) * x^k) mod g — the raw CRC remainder.
LinearSystem make_crc_system(const Gf2Poly& g);

/// Additive (synchronous) scrambler: autonomous Fibonacci LFSR, output =
/// feedback parity XOR input (d = 1). Matches the conventional drawings
/// of the 802.11 / DVB scramblers.
LinearSystem make_scrambler_system(const Gf2Poly& g);

/// Pseudo-random bit generator: autonomous LFSR, output = oldest cell,
/// no input feed-through. Used by the stream-cipher components.
LinearSystem make_prbs_system(const Gf2Poly& g);

}  // namespace plfsr
