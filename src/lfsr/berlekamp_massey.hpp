// Berlekamp–Massey: the shortest LFSR that generates a given sequence.
//
// Two roles in this library:
//  * Validation — recovering the generator polynomial from the keystream
//    of every catalogue scrambler is a strong end-to-end test of the
//    whole LFSR stack (companion forms, state packing, sequences).
//  * The security observation behind the paper's stream-cipher domain —
//    a bare LFSR scrambler of degree k is broken by 2k known keystream
//    bits; that is exactly why A5/1/E0/CSS combine several registers
//    nonlinearly, and why "scrambling" is not encryption.
//
// The synthesis also generalises beyond bits: over GF(2^m) the same
// recurrence (with the discrepancy *divided* by the previous one, which
// is where a field is actually required) is the error-locator step of
// Reed–Solomon and BCH decoding — src/fec calls the GF(2^m) overload on
// syndrome sequences. The GF(2) entry points below are unchanged and the
// binary case of the field form reproduces them exactly (pinned by
// tests/berlekamp_massey_test.cpp).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "gf2/gf2_poly.hpp"
#include "gfm/gfm_field.hpp"
#include "support/bitstream.hpp"

namespace plfsr {

/// Result of the synthesis.
struct LfsrSynthesis {
  /// Connection polynomial C(x) = 1 + c_1 x + ... + c_L x^L such that
  /// s_n = sum_{i=1..L} c_i s_{n-i} for all n >= L.
  Gf2Poly connection;
  /// Linear complexity L of the sequence.
  std::size_t complexity = 0;
};

/// Run Berlekamp–Massey over the bits of `seq`.
LfsrSynthesis berlekamp_massey(const BitStream& seq);

/// Linear complexity after each prefix — the "linear complexity profile"
/// used to distinguish LFSR output (plateaus at L once 2L bits are seen)
/// from combiner/cipher output (keeps climbing ~n/2).
std::vector<std::size_t> linear_complexity_profile(const BitStream& seq);

/// Check that `connection` actually generates `seq` (every bit after the
/// first `complexity` satisfies the recurrence).
bool generates(const Gf2Poly& connection, std::size_t complexity,
               const BitStream& seq);

/// Predict the continuation of a sequence from its synthesized LFSR: the
/// attack on linear scramblers. Requires seq.size() >= 2 * complexity to
/// be reliable (Massey's bound).
BitStream predict_continuation(const BitStream& observed, std::size_t n_more);

// --- Sequences over GF(2^m) ----------------------------------------------

/// Result of the synthesis over a GF(2^m) symbol sequence.
struct GfmLfsrSynthesis {
  /// Connection polynomial C(x) = 1 + c_1 x + ... + c_L x^L such that
  /// s_n = -sum_{i=1..L} c_i s_{n-i} for all n >= L (signs vanish in
  /// characteristic 2). connection[i] = c_i; connection[0] == 1.
  std::vector<GfmField::Sym> connection;
  /// Linear complexity L of the sequence.
  std::size_t complexity = 0;
};

/// Berlekamp–Massey over the symbols of `seq` in field `f`. The binary
/// case (f = GfmField::of(1)) reproduces the BitStream overload exactly.
GfmLfsrSynthesis berlekamp_massey(const GfmField& f,
                                  std::span<const GfmField::Sym> seq);

/// Check that `connection` generates `seq` over `f` (every symbol after
/// the first `complexity` satisfies the recurrence).
bool generates(const GfmField& f,
               const std::vector<GfmField::Sym>& connection,
               std::size_t complexity, std::span<const GfmField::Sym> seq);

}  // namespace plfsr
