#include "lfsr/linear_system.hpp"

#include <stdexcept>

#include "lfsr/companion.hpp"

namespace plfsr {

bool LinearSystem::step(Gf2Vec& x, bool u) const {
  if (x.size() != dim())
    throw std::invalid_argument("LinearSystem::step: state dimension mismatch");
  bool y = c.dot(x) ^ (d && u);
  Gf2Vec next = a * x;
  if (u) next += b;
  x = std::move(next);
  return y;
}

BitStream LinearSystem::run(Gf2Vec& x, const BitStream& input) const {
  BitStream out;
  for (std::size_t i = 0; i < input.size(); ++i)
    out.push_back(step(x, input.get(i)));
  return out;
}

void LinearSystem::advance_free(Gf2Vec& x, std::uint64_t n) const {
  x = a.pow(n) * x;
}

LinearSystem make_crc_system(const Gf2Poly& g) {
  LinearSystem s;
  s.a = companion_galois(g);
  s.b = crc_input_vector(g);
  s.c = Gf2Vec(s.b.size());  // zero row: CRC has no per-bit output
  s.d = false;
  return s;
}

LinearSystem make_scrambler_system(const Gf2Poly& g) {
  LinearSystem s;
  s.a = companion_fibonacci(g);
  const std::size_t k = s.a.rows();
  s.b = Gf2Vec(k);  // autonomous
  // Output = the same tap parity that feeds back (row 0 of A).
  s.c = s.a.row(0);
  s.d = true;
  return s;
}

LinearSystem make_prbs_system(const Gf2Poly& g) {
  LinearSystem s;
  s.a = companion_fibonacci(g);
  const std::size_t k = s.a.rows();
  s.b = Gf2Vec(k);
  s.c = Gf2Vec::unit(k, k - 1);  // oldest cell shifts out
  s.d = false;
  return s;
}

}  // namespace plfsr
