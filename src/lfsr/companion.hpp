// Companion-matrix builders for LFSR generator polynomials.
//
// The paper's state-update matrix A (its eq. in §2) is the Galois-form
// companion matrix: ones on the strict subdiagonal, the generator
// coefficients g_0..g_{k-1} in the last column. State bit x_i is the
// coefficient of x^i in the CRC register; one A-step is one serial LFSR
// clock with the feedback tap pattern of g(x).
//
// The Fibonacci form (feedback computed as a tap parity and shifted into
// one end) generates the same output sequences under a change of state
// basis; scramblers are conventionally specified in this form (e.g. the
// 802.11 x^7 + x^4 + 1 scrambler).
#pragma once

#include "gf2/gf2_matrix.hpp"
#include "gf2/gf2_poly.hpp"

namespace plfsr {

/// Galois (paper) form: A[i][i-1] = 1 for i >= 1, A[i][k-1] += g_i.
/// Precisely: column k-1 is [g_0 .. g_{k-1}]^T XORed onto the shift.
Gf2Matrix companion_galois(const Gf2Poly& g);

/// Fibonacci form: next x_0 = parity of taps (g_i selects x_{k-1-i}?  No:
/// next x_0 = sum_i g_i * x_i interpretation below), next x_i = x_{i-1}.
/// Convention used here: feedback = XOR over all i in [0,k) with
/// g_i = 1 of state bit x_{k-1-i}; equivalently row 0 of A holds the
/// reversed coefficient pattern. This matches the usual scrambler
/// drawings where tap "x^j" reads the cell j shifts back from the input.
Gf2Matrix companion_fibonacci(const Gf2Poly& g);

/// The paper's input-injection vector b = [g_0 g_1 ... g_{k-1}]^T.
Gf2Vec crc_input_vector(const Gf2Poly& g);

}  // namespace plfsr
