// Derby's state-space transformation (J.H. Derby, "High-speed CRC
// computation using state-space transformations", GLOBECOM 2001) — the
// parallelization method the paper selects for PiCoGA (§2, §4).
//
// The M-level look-ahead leaves the dense matrix A^M inside the feedback
// loop, limiting the clock. Derby observes that A^M is similar to a
// companion matrix: choosing a vector f such that the Krylov vectors
// f, A^M f, A^{2M} f, ..., A^{(k-1)M} f are linearly independent and using
// them as the columns of T gives
//
//   A_Mt = T^{-1} A^M T   (companion — minimal feedback complexity)
//   B_Mt = T^{-1} B_M     (dense, but OUTSIDE the loop: pipelineable)
//   y    = T x_t          (anti-transformation, applied once per message)
//
// with the transformed recursion x_t(n+M) = A_Mt x_t(n) + B_Mt u_M(n) and
// initial state x_t(0) = T^{-1} x(0).
//
// The paper notes T is not unique; it empirically found the complexity of
// T insensitive to the choice of f and settled on f = [1 0 ... 0]. We do
// the same by default and fall back to the other unit vectors, then to
// deterministic pseudo-random vectors, if the Krylov matrix is singular
// (which happens when the minimal polynomial of A^M relative to f has
// degree < k).
#pragma once

#include <cstddef>
#include <optional>

#include "gf2/gf2_matrix.hpp"
#include "lfsr/lookahead.hpp"
#include "support/bitstream.hpp"

namespace plfsr {

/// The transformed M-step system.
class DerbyTransform {
 public:
  /// Empty transform (dim 0) — exists so plan structs can default-build
  /// and be assigned; every accessor on an empty transform is meaningless.
  DerbyTransform() = default;

  /// Build from a look-ahead block form. Throws if no suitable f exists
  /// (cannot happen for the CRC generators in the catalog, all of which
  /// have A^M non-derogatory for the M values of interest).
  explicit DerbyTransform(const LookAhead& la);

  /// Try a specific f; nullopt if the Krylov vectors are dependent.
  static std::optional<DerbyTransform> with_f(const LookAhead& la,
                                              const Gf2Vec& f);

  std::size_t m() const { return m_; }
  std::size_t dim() const { return t_.rows(); }

  const Gf2Matrix& t() const { return t_; }        ///< T
  const Gf2Matrix& t_inv() const { return tinv_; } ///< T^{-1}
  const Gf2Matrix& amt() const { return amt_; }    ///< A_Mt (companion)
  const Gf2Matrix& bmt() const { return bmt_; }    ///< B_Mt = T^{-1} B_M
  const Gf2Vec& f() const { return f_; }           ///< chosen seed vector

  /// x_t(0) = T^{-1} x(0).
  Gf2Vec transform_state(const Gf2Vec& x) const { return tinv_ * x; }

  /// x = T x_t — the second PiCoGA operation of the paper's partition.
  Gf2Vec anti_transform(const Gf2Vec& xt) const { return t_ * xt; }

  /// One M-bit step in the transformed space.
  void step_state(Gf2Vec& xt, const Gf2Vec& u) const;

  /// Process a whole message (padded to a multiple of M with zeros on the
  /// tail — callers that need exact non-multiple handling should pre-pad
  /// the head instead, as the CRC engines do).
  void run_state(Gf2Vec& xt, const BitStream& input) const;

 private:
  std::size_t m_ = 0;
  Gf2Vec f_;
  Gf2Matrix t_, tinv_, amt_, bmt_;
};

}  // namespace plfsr
