// FrameBuf — the buffer descriptor the zero-copy pipeline passes around.
//
// The paper's processor↔PiCoGA hand-off moves a *reference* into shared
// register/memory space, never the data: the array's rows all work on the
// same block the processor deposited. FrameBuf is that hand-off in
// software: a move-only descriptor {data, capacity, arena backref} that
// travels through ring slots, stage batches and worker queues while the
// payload bytes stay put. Moving a FrameBuf moves a few words; copying is
// deleted — a deep copy must be spelled clone(), so an accidental
// payload copy cannot compile.
//
// Ownership closes the recycling loop without any explicit release call:
// a FrameBuf handed out by a FrameArena carries a shared backref to the
// arena's state, and its destructor returns the storage to the arena's
// size-classed pool (drop the descriptor anywhere — sink, error path,
// abandoned batch — and the buffer is recycled). Arena-less descriptors
// (default-constructed, adopted from a std::vector, clone()d) have a
// null backref and fall back to plain heap free, so every call site that
// just wants "a frame body" keeps working. Because the backref is
// shared, a descriptor may even outlive its arena: once the arena closed
// (or was destroyed), the destructor degrades to the heap free — never a
// use-after-free, never a leak.
//
// FrameBuf models a contiguous range (data/size/begin/end), so anything
// that consumes std::span<const std::uint8_t> — CRC engines, the
// spreader's bit unpacking, ParallelFec — takes one directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace plfsr {

namespace detail {
struct ArenaState;
/// Return `storage` to the arena that issued it (or drop it on the heap
/// if the arena has closed). Defined in frame_arena.cpp.
void arena_release(const std::shared_ptr<ArenaState>& home,
                   std::vector<std::uint8_t>&& storage) noexcept;
}  // namespace detail

/// Move-only frame-body descriptor; see file comment.
class FrameBuf {
 public:
  FrameBuf() = default;

  /// Adopt a heap vector as the storage (null backref: destructor frees).
  /// Implicit on purpose — `f.bytes = stream.to_bytes_lsb_first();` is
  /// the natural way a stage installs a freshly built body.
  FrameBuf(std::vector<std::uint8_t> bytes) : buf_(std::move(bytes)) {}

  ~FrameBuf() { reset(); }

  FrameBuf(FrameBuf&& other) noexcept
      : buf_(std::move(other.buf_)), home_(std::move(other.home_)) {
    other.buf_.clear();
    other.home_.reset();
  }

  FrameBuf& operator=(FrameBuf&& other) noexcept {
    if (this != &other) {
      reset();
      buf_ = std::move(other.buf_);
      home_ = std::move(other.home_);
      other.buf_.clear();
      other.home_.reset();
    }
    return *this;
  }

  FrameBuf(const FrameBuf&) = delete;  // copies must be spelled clone()
  FrameBuf& operator=(const FrameBuf&) = delete;

  std::uint8_t* data() { return buf_.data(); }
  const std::uint8_t* data() const { return buf_.data(); }
  std::size_t size() const { return buf_.size(); }
  std::size_t capacity() const { return buf_.capacity(); }
  bool empty() const { return buf_.empty(); }

  auto begin() { return buf_.begin(); }
  auto begin() const { return buf_.begin(); }
  auto end() { return buf_.end(); }
  auto end() const { return buf_.end(); }

  std::uint8_t& operator[](std::size_t i) { return buf_[i]; }
  const std::uint8_t& operator[](std::size_t i) const { return buf_[i]; }

  /// Grow/shrink the logical size. Within capacity this is free (the
  /// arena hands out buffers whose capacity covers their size class);
  /// beyond it the storage reallocates on the heap — the descriptor
  /// stays arena-backed, and on release the arena re-classifies it by
  /// its new capacity.
  void resize(std::size_t n) { buf_.resize(n); }
  void clear() { buf_.clear(); }

  template <typename It>
  void assign(It first, It last) {
    buf_.assign(first, last);
  }

  std::span<std::uint8_t> span() { return {buf_.data(), buf_.size()}; }
  std::span<const std::uint8_t> span() const {
    return {buf_.data(), buf_.size()};
  }

  /// True when the destructor will recycle into a FrameArena (the arena
  /// may have closed since — then the release degrades to a heap free).
  bool arena_backed() const { return home_ != nullptr; }

  /// Deep copy onto the heap (never into an arena).
  FrameBuf clone() const { return FrameBuf(buf_); }

  std::vector<std::uint8_t> to_vector() const { return buf_; }

  /// Release the storage now (to the arena, or the heap); the descriptor
  /// becomes empty and arena-less.
  void reset() noexcept {
    if (home_) {
      detail::arena_release(home_, std::move(buf_));
      home_.reset();
    }
    buf_ = std::vector<std::uint8_t>();
  }

  friend bool operator==(const FrameBuf& a, const FrameBuf& b) {
    return a.buf_ == b.buf_;
  }
  friend bool operator==(const FrameBuf& a,
                         const std::vector<std::uint8_t>& b) {
    return a.buf_ == b;
  }

 private:
  friend class FrameArena;

  std::vector<std::uint8_t> buf_;
  std::shared_ptr<detail::ArenaState> home_;  // null = heap-backed
};

}  // namespace plfsr
