// Runtime CPU feature detection for the dispatching CRC engines.
//
// The CLMUL folding engine compiles both an accelerated x86 kernel
// (PCLMULQDQ + SSE4.1, behind __attribute__((target))) and a portable
// scalar kernel into every binary; at construction it asks this module
// which one the machine can actually run. Detection is one CPUID probe,
// cached for the process. Setting the environment variable
// PLFSR_FORCE_PORTABLE (to anything but "" or "0") vetoes the
// accelerated kernels — the escape hatch for A/B testing and for the
// forced-fallback equivalence tests.
#pragma once

namespace plfsr {

/// Instruction-set capabilities relevant to the GF(2) hot paths.
struct CpuFeatures {
  bool pclmul = false;  ///< PCLMULQDQ (carry-less multiply)
  bool sse41 = false;   ///< SSE4.1 (implies SSSE3/SSE2 shuffles and loads)
};

/// CPUID-derived features of this machine (probed once, then cached).
/// All-false on non-x86 builds.
const CpuFeatures& cpu_features();

/// True iff PLFSR_FORCE_PORTABLE is set to a non-empty value other than
/// "0". Read from the environment on every call (not cached) so tests
/// can flip it between engine constructions.
bool force_portable();

/// True iff the CLMUL kernels may be used: hardware support present and
/// not vetoed by PLFSR_FORCE_PORTABLE.
bool clmul_allowed();

}  // namespace plfsr
