// Lightweight table/series printer used by the figure-reproduction benches.
//
// Every bench binary prints (a) a human-readable aligned table matching the
// rows/series the paper reports and (b) optionally a CSV block for plotting.
// Keeping the format in one place makes the bench outputs uniform.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace plfsr {

/// Column-aligned text table with an optional CSV dump.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers);

  /// Add one row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 2);

  /// Render aligned, with a rule under the header.
  void print(std::ostream& os) const;

  /// Render as CSV (comma-separated, no quoting — cells must be plain).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace plfsr
