#include "support/frame_arena.hpp"

namespace plfsr {

bool FrameArena::grab_locked(std::vector<std::uint8_t>& out,
                             std::size_t size) {
  if (!pool_.empty()) {
    out = std::move(pool_.back());
    pool_.pop_back();
    out.resize(size);
    ++recycles_;
  } else {
    out.assign(size, 0);
    ++heap_allocations_;
  }
  ++outstanding_;
  ++acquires_;
  return true;
}

bool FrameArena::acquire(std::vector<std::uint8_t>& out, std::size_t size) {
  std::unique_lock<std::mutex> lk(mu_);
  const bool bounded = capacity_ != 0;
  if (bounded && pool_.empty() && outstanding_ >= capacity_ && !closed_)
    ++acquire_stalls_;
  cv_.wait(lk, [&] {
    return closed_ || !bounded || !pool_.empty() || outstanding_ < capacity_;
  });
  // Drain semantics after close(): recycled buffers keep serving (the
  // in-flight producer keeps its zero-alloc guarantee to the last frame),
  // but the arena never blocks and never grows — an empty pool means the
  // hand-out is over.
  if (closed_ && pool_.empty()) return false;
  return grab_locked(out, size);
}

bool FrameArena::try_acquire(std::vector<std::uint8_t>& out,
                             std::size_t size) {
  std::lock_guard<std::mutex> lk(mu_);
  if (closed_ && pool_.empty()) return false;
  if (!closed_ && capacity_ != 0 && pool_.empty() &&
      outstanding_ >= capacity_)
    return false;
  return grab_locked(out, size);
}

void FrameArena::release(std::vector<std::uint8_t> buf) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (outstanding_ > 0) --outstanding_;
    if (closed_) return;  // shutdown path: let the heap take it
    pool_.push_back(std::move(buf));
  }
  cv_.notify_one();
}

void FrameArena::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
    // The pool is deliberately kept: a draining producer may still
    // acquire() the recycled buffers until they run out. (An earlier
    // version cleared it here, which silently demoted the tail of a
    // drain to heap churn — or to a hard stop for acquire-driven
    // producers.)
  }
  cv_.notify_all();
}

std::size_t FrameArena::outstanding() const {
  std::lock_guard<std::mutex> lk(mu_);
  return outstanding_;
}

std::size_t FrameArena::pooled() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pool_.size();
}

std::uint64_t FrameArena::acquires() const {
  std::lock_guard<std::mutex> lk(mu_);
  return acquires_;
}

std::uint64_t FrameArena::recycles() const {
  std::lock_guard<std::mutex> lk(mu_);
  return recycles_;
}

std::uint64_t FrameArena::heap_allocations() const {
  std::lock_guard<std::mutex> lk(mu_);
  return heap_allocations_;
}

std::uint64_t FrameArena::acquire_stalls() const {
  std::lock_guard<std::mutex> lk(mu_);
  return acquire_stalls_;
}

}  // namespace plfsr
