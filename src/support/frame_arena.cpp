#include "support/frame_arena.hpp"

#include <bit>

namespace plfsr {

namespace detail {

void arena_release(const std::shared_ptr<ArenaState>& home,
                   std::vector<std::uint8_t>&& storage) noexcept {
  std::vector<std::uint8_t> buf = std::move(storage);
  {
    std::lock_guard<std::mutex> lk(home->mu);
    if (home->outstanding > 0) --home->outstanding;
    if (home->closed) return;  // shutdown path: let the heap take it
    // Re-classify by what the buffer can actually hold — a descriptor
    // that grew on the heap returns to the bigger class it now serves.
    const std::size_t cls =
        buf.capacity() < FrameArena::kMinClassBytes
            ? FrameArena::kMinClassBytes
            : std::bit_floor(buf.capacity());
    home->pools[cls].push_back(std::move(buf));
    ++home->pooled;
  }
  home->cv.notify_one();
}

}  // namespace detail

FrameArena::FrameArena(std::size_t capacity)
    : state_(std::make_shared<detail::ArenaState>()) {
  state_->capacity = capacity;
}

FrameArena::~FrameArena() { close(); }

std::size_t FrameArena::size_class(std::size_t size) {
  return size <= kMinClassBytes ? kMinClassBytes : std::bit_ceil(size);
}

bool FrameArena::grab_locked(FrameBuf& out, std::size_t size,
                             std::size_t cls) {
  detail::ArenaState& s = *state_;
  const auto it = s.pools.find(cls);
  if (it != s.pools.end() && !it->second.empty()) {
    // Recycled buffer: its capacity covers the class (>= size) by
    // construction, so this resize never touches the heap.
    out.buf_ = std::move(it->second.back());
    it->second.pop_back();
    if (it->second.empty()) s.pools.erase(it);
    --s.pooled;
    out.buf_.resize(size);
    ++s.recycles;
  } else {
    if (s.capacity != 0 && s.outstanding + s.pooled >= s.capacity) {
      // At the bound with only wrong-class buffers pooled: evict one to
      // stay within budget, then allocate the class we actually need.
      // (The caller's wait predicate guarantees pooled > 0 here.)
      auto victim = s.pools.begin();
      victim->second.pop_back();
      if (victim->second.empty()) s.pools.erase(victim);
      --s.pooled;
      ++s.evictions;
    }
    out.buf_.reserve(cls);
    out.buf_.resize(size);
    ++s.heap_allocations;
  }
  ++s.outstanding;
  ++s.acquires;
  out.home_ = state_;
  return true;
}

bool FrameArena::acquire(FrameBuf& out, std::size_t size) {
  // Drop any buffer the caller still holds *before* blocking on the
  // bound — re-acquiring into a held descriptor must not deadlock a
  // capacity-1 arena.
  out.reset();
  const std::size_t cls = size_class(size);
  detail::ArenaState& s = *state_;
  std::unique_lock<std::mutex> lk(s.mu);
  const bool bounded = s.capacity != 0;
  const auto ready = [&] {
    return s.closed || !bounded || s.pooled > 0 ||
           s.outstanding + s.pooled < s.capacity;
  };
  if (!ready()) ++s.acquire_stalls;
  s.cv.wait(lk, ready);
  if (s.closed) {
    // Drain semantics: the class pool keeps serving (the in-flight
    // producer keeps its zero-alloc guarantee to the last frame), but
    // the arena never blocks and never grows — an empty class pool
    // means the hand-out is over.
    const auto it = s.pools.find(cls);
    if (it == s.pools.end() || it->second.empty()) return false;
  }
  return grab_locked(out, size, cls);
}

bool FrameArena::try_acquire(FrameBuf& out, std::size_t size) {
  out.reset();
  const std::size_t cls = size_class(size);
  detail::ArenaState& s = *state_;
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.closed) {
    const auto it = s.pools.find(cls);
    if (it == s.pools.end() || it->second.empty()) return false;
  } else if (s.capacity != 0 && s.pooled == 0 &&
             s.outstanding + s.pooled >= s.capacity) {
    return false;
  }
  return grab_locked(out, size, cls);
}

void FrameArena::close() {
  {
    std::lock_guard<std::mutex> lk(state_->mu);
    state_->closed = true;
    // The pools are deliberately kept: a draining producer may still
    // acquire() the recycled buffers until they run out. (An earlier
    // version cleared them here, which silently demoted the tail of a
    // drain to heap churn — or to a hard stop for acquire-driven
    // producers.)
  }
  state_->cv.notify_all();
}

std::size_t FrameArena::outstanding() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->outstanding;
}

std::size_t FrameArena::pooled() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->pooled;
}

std::size_t FrameArena::pooled_classes() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->pools.size();
}

std::uint64_t FrameArena::acquires() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->acquires;
}

std::uint64_t FrameArena::recycles() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->recycles;
}

std::uint64_t FrameArena::heap_allocations() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->heap_allocations;
}

std::uint64_t FrameArena::acquire_stalls() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->acquire_stalls;
}

std::uint64_t FrameArena::evictions() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->evictions;
}

}  // namespace plfsr
