#include "support/bitstream.hpp"

#include <stdexcept>

namespace plfsr {

BitStream BitStream::from_bytes_msb_first(std::span<const std::uint8_t> bytes) {
  BitStream s;
  for (std::uint8_t b : bytes)
    for (int i = 7; i >= 0; --i) s.push_back((b >> i) & 1);
  return s;
}

BitStream BitStream::from_bytes_lsb_first(std::span<const std::uint8_t> bytes) {
  BitStream s;
  for (std::uint8_t b : bytes)
    for (int i = 0; i < 8; ++i) s.push_back((b >> i) & 1);
  return s;
}

BitStream BitStream::from_string(const std::string& bits) {
  BitStream s;
  for (char c : bits) {
    if (c == '0')
      s.push_back(false);
    else if (c == '1')
      s.push_back(true);
    else
      throw std::invalid_argument("BitStream::from_string: non-binary char");
  }
  return s;
}

void BitStream::append(const BitStream& other) {
  for (std::size_t i = 0; i < other.size(); ++i) push_back(other.get(i));
}

std::uint64_t BitStream::chunk(std::size_t pos, unsigned count) const {
  if (count > 64) throw std::invalid_argument("BitStream::chunk: count > 64");
  std::uint64_t v = 0;
  for (unsigned i = 0; i < count; ++i) {
    const std::size_t idx = pos + i;
    if (idx < size_ && get(idx)) v |= std::uint64_t{1} << i;
  }
  return v;
}

std::size_t BitStream::weight() const {
  std::size_t w = 0;
  for (std::size_t i = 0; i < size_; ++i) w += get(i);
  return w;
}

std::string BitStream::to_string() const {
  std::string out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(get(i) ? '1' : '0');
  return out;
}

std::vector<std::uint8_t> BitStream::to_bytes_lsb_first() const {
  std::vector<std::uint8_t> out((size_ + 7) / 8, 0);
  for (std::size_t i = 0; i < size_; ++i)
    if (get(i)) out[i >> 3] |= std::uint8_t(1u << (i & 7));
  return out;
}

std::vector<std::uint8_t> BitStream::to_bytes_msb_first() const {
  std::vector<std::uint8_t> out((size_ + 7) / 8, 0);
  for (std::size_t i = 0; i < size_; ++i)
    if (get(i)) out[i >> 3] |= std::uint8_t(1u << (7 - (i & 7)));
  return out;
}

bool BitStream::operator==(const BitStream& other) const {
  if (size_ != other.size_) return false;
  for (std::size_t i = 0; i < size_; ++i)
    if (get(i) != other.get(i)) return false;
  return true;
}

}  // namespace plfsr
