#include "support/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace plfsr {

ReportTable::ReportTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void ReportTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("ReportTable::add_row: arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string ReportTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void ReportTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << cells[c];
      os << (c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

void ReportTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << cells[c] << (c + 1 == cells.size() ? "\n" : ",");
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace plfsr
