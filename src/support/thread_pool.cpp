#include "support/thread_pool.hpp"

#include "support/host_threads.hpp"

namespace plfsr {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::ThreadPool() : ThreadPool(host_threads()) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  if (workers_.empty()) {
    task();
    return fut;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace plfsr
