// Deterministic pseudo-random generator for tests, benches and workload
// generation. All experiments in the repo must be reproducible run-to-run,
// so everything that needs randomness takes an explicit seed and uses this
// generator (a SplitMix64 / xoshiro256** pair, self-contained so results do
// not depend on the standard library's unspecified distributions).
#pragma once

#include <cstdint>
#include <vector>

#include "support/bitstream.hpp"

namespace plfsr {

/// xoshiro256** seeded via SplitMix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 to spread the seed over the full state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Multiply-shift rejection-free mapping (small bias negligible here).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  bool next_bit() { return next_u64() & 1; }

  /// Random message of n bits.
  BitStream next_bits(std::size_t n) {
    BitStream s(n);
    for (std::size_t i = 0; i < n; i += 64) {
      const std::uint64_t w = next_u64();
      for (std::size_t j = i; j < n && j < i + 64; ++j)
        s.set(j, (w >> (j - i)) & 1);
    }
    return s;
  }

  /// Random byte buffer of n bytes.
  std::vector<std::uint8_t> next_bytes(std::size_t n) {
    std::vector<std::uint8_t> out(n);
    for (auto& b : out) b = static_cast<std::uint8_t>(next_u64());
    return out;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace plfsr
