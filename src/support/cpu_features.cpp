#include "support/cpu_features.hpp"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define PLFSR_X86 1
#endif

namespace plfsr {

namespace {

CpuFeatures probe() {
  CpuFeatures f;
#ifdef PLFSR_X86
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.pclmul = (ecx & bit_PCLMUL) != 0;
    f.sse41 = (ecx & bit_SSE4_1) != 0;
  }
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = probe();
  return f;
}

bool force_portable() {
  const char* v = std::getenv("PLFSR_FORCE_PORTABLE");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

bool clmul_allowed() {
  const CpuFeatures& f = cpu_features();
  return f.pclmul && f.sse41 && !force_portable();
}

}  // namespace plfsr
