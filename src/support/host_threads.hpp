// How many threads this process should actually spread work across.
//
// std::thread::hardware_concurrency() answers a different question — how
// many logical CPUs the *machine* has — and it answers even that one
// unreliably: the standard allows 0 ("not computable"), and inside a
// cgroup-quota'd container (every CI runner, every Kubernetes pod — and
// the deployment target of the offload server) it reports the host's
// core count while the kernel throttles the cgroup to a fraction of it.
// A pool sized from the raw value oversubscribes the quota and turns the
// sharded kernels' hand-offs into scheduler thrash.
//
// host_threads() is the one shared answer every sizing decision in this
// repo routes through (Pipeline's kAuto resolve, ParallelScramble's
// host cap, ThreadPool's default size, the offload server's worker
// count):
//
//   1. PLFSR_THREADS, when set to a positive integer, wins outright —
//      the operator's word beats every heuristic (read per call, like
//      the other PLFSR_* knobs, so tests can flip it).
//   2. Otherwise the smaller of hardware_concurrency() and the cgroup
//      CPU quota (v2 cpu.max, else v1 cfs_quota_us/cfs_period_us; a
//      fractional quota rounds up — half a core still runs one thread).
//   3. Never 0: with no usable signal at all the answer is 1.
#pragma once

#include <cstddef>
#include <string_view>

namespace plfsr {

/// Threads worth of CPU this process can actually use (see file comment).
/// Always >= 1.
std::size_t host_threads();

namespace detail {

/// Parse a cgroup v2 cpu.max line ("<quota> <period>" in microseconds, or
/// "max <period>"): cores granted, or a value < 0 when unlimited /
/// unparseable.
double parse_cpu_max(std::string_view text);

/// cgroup v1 cfs pair -> cores granted, or < 0 when unlimited / invalid
/// (quota -1 means "no limit").
double parse_cfs(long long quota_us, long long period_us);

/// The combining rule, separated from the /sys and env probing so the
/// policy is unit-testable: `env` is the raw PLFSR_THREADS value (nullptr
/// when unset), `hw` the hardware_concurrency() report (0 allowed),
/// `quota_cores` the cgroup grant (< 0 when none). Always returns >= 1.
std::size_t resolve_host_threads(const char* env, unsigned hw,
                                 double quota_cores);

/// The cgroup CPU grant of the calling process, in cores; < 0 when the
/// host imposes none (or none is readable).
double cgroup_quota_cores();

}  // namespace detail

}  // namespace plfsr
