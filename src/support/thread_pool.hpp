// Fixed-size worker pool for the data-parallel engines (sharded CRC, and
// any future batch workload). Deliberately minimal: a locked deque of
// type-erased tasks, submit() returning a std::future, no work stealing.
// The shard fan-out this repo needs is a handful of coarse tasks per call,
// so queue contention is irrelevant next to the per-shard work.
//
// A pool constructed with 0 threads degrades to inline execution on the
// submitting thread — callers can size the pool from the host core count
// without special-casing single-core machines.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace plfsr {

/// Fixed-size thread pool; tasks run FIFO across the workers.
class ThreadPool {
 public:
  /// Spawn `threads` workers (0 = run every task inline in submit()).
  explicit ThreadPool(std::size_t threads);

  /// Host-sized pool: one worker per thread of CPU the process can
  /// actually use (host_threads() — cgroup-quota aware, PLFSR_THREADS
  /// override, never 0), not per logical CPU of the machine.
  ThreadPool();

  /// Drains nothing: joins after finishing whatever was already queued.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the future resolves when it has run (exceptions
  /// propagate through the future).
  std::future<void> submit(std::function<void()> fn);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace plfsr
