// Shared shard-split policy for the data-parallel wrappers.
//
// ParallelCrc and ParallelScramble both cut a contiguous extent into S
// slices for the worker pool. They used to disagree on where the
// remainder went (ParallelCrc spread it one byte per leading shard,
// ParallelScramble dumped all of it on the last shard — up to S-1 extra
// bytes of imbalance on the slowest-to-finish slice). This header is the
// single policy both use: near-equal slices, the first n % S slices one
// item longer, degenerate inputs (n == 0, n < S) yielding empty tail
// slices rather than surprises.
#pragma once

#include <cstddef>
#include <vector>

namespace plfsr {

/// One contiguous slice of a sharded extent.
struct ShardSlice {
  std::size_t offset = 0;
  std::size_t length = 0;
};

/// Cut `n` items into exactly `parts` contiguous near-equal slices
/// covering [0, n): slice lengths differ by at most one, the first
/// n % parts slices taking the extra item. parts == 0 returns no slices;
/// n < parts leaves the trailing slices empty (length 0 at offset n).
inline std::vector<ShardSlice> near_equal_slices(std::size_t n,
                                                 std::size_t parts) {
  std::vector<ShardSlice> out;
  out.reserve(parts);
  const std::size_t base = parts == 0 ? 0 : n / parts;
  const std::size_t extra = parts == 0 ? 0 : n % parts;
  std::size_t off = 0;
  for (std::size_t i = 0; i < parts; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    out.push_back({off, len});
    off += len;
  }
  return out;
}

}  // namespace plfsr
