// Bit-granular message container used throughout the library.
//
// LFSR applications consume and produce streams of individual bits; the
// paper's figures sweep message lengths that are not byte multiples
// (e.g. the 368-bit lower edge of the Ethernet window is 46 bytes, but the
// look-ahead engines consume M-bit chunks for M up to 128). BitStream
// stores bits MSB-first-per-push in a compact word array and offers both
// bit-level and chunk-level accessors.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace plfsr {

/// Dynamically sized sequence of bits with O(1) append and random access.
///
/// Bit i is the i-th bit pushed; no byte/bit-order reflection is applied
/// here — engines that need reflected (LSB-first) byte semantics (e.g. the
/// Ethernet CRC) perform the reflection themselves via `from_bytes_lsb_first`.
class BitStream {
 public:
  BitStream() = default;

  /// Construct with `n` bits, all zero.
  explicit BitStream(std::size_t n) : size_(n), words_((n + 63) / 64, 0) {}

  /// Each byte contributes its bits MSB first (bit 7 of byte 0 is stream
  /// bit 0). This is the transmission order of most non-reflected protocols.
  static BitStream from_bytes_msb_first(std::span<const std::uint8_t> bytes);

  /// Each byte contributes its bits LSB first (bit 0 of byte 0 is stream
  /// bit 0). This is the wire order of Ethernet (IEEE 802.3) and the
  /// convention of all "reflected" CRCs.
  static BitStream from_bytes_lsb_first(std::span<const std::uint8_t> bytes);

  /// Parse a string of '0'/'1' characters; anything else throws.
  static BitStream from_string(const std::string& bits);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::size_t i, bool v) {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  void push_back(bool v) {
    if ((size_ & 63) == 0) words_.push_back(0);
    if (v) words_.back() |= std::uint64_t{1} << (size_ & 63);
    ++size_;
  }

  /// Append all bits of `other` in order.
  void append(const BitStream& other);

  /// Read `count` (≤ 64) bits starting at `pos`, bit `pos` in the LSB.
  /// Bits beyond the end of the stream read as zero (look-ahead engines
  /// use this for the final partial chunk).
  std::uint64_t chunk(std::size_t pos, unsigned count) const;

  /// Number of set bits.
  std::size_t weight() const;

  /// Render as a '0'/'1' string (for diagnostics and tests).
  std::string to_string() const;

  /// Pack back into bytes, LSB-first per byte (inverse of
  /// `from_bytes_lsb_first`); the trailing partial byte is zero-padded.
  std::vector<std::uint8_t> to_bytes_lsb_first() const;

  /// Pack back into bytes, MSB-first per byte.
  std::vector<std::uint8_t> to_bytes_msb_first() const;

  bool operator==(const BitStream& other) const;

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace plfsr
