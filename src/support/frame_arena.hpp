// Recycling pool of frame byte-buffers — the allocator the zero-copy
// pipeline runs on.
//
// A streaming pipeline that allocates a fresh std::vector per frame pays
// one heap round-trip per frame at the producer and one at the sink; at
// millions of 64 B frames per second the allocator, not the kernels,
// becomes the bottleneck row. The arena closes that loop: the sink
// releases each drained frame's buffer back to the pool, the producer's
// next acquire() reuses it (capacity intact, so steady state does no
// heap work at all), and the frames in flight between them carry only
// the vector's heap descriptor through the rings — payload bytes are
// written once by the producer and never copied again.
//
// A bounded arena (capacity > 0) doubles as end-to-end backpressure:
// once `capacity` buffers are in flight, acquire() blocks until the sink
// releases one — the producer is throttled by pipeline drain rate, the
// way a MAC's descriptor ring throttles its DMA engine.
//
// Shutdown is a *drain*, not a hard stop: close() unblocks every waiter
// and stops all heap growth, but buffers already sitting in the pool
// keep serving acquire() until they run out — an in-flight producer
// finishing its tail keeps the zero-alloc guarantee to the last frame.
// Once the pool is empty (or immediately, if it was), acquire() returns
// false and never blocks again. Buffers release()d after close are
// dropped (their consumers are gone), so the drain is bounded by the
// buffers pooled at close time.
//
// Thread-safety: all members are safe to call concurrently (mutex +
// condvar; the arena's operations are per-frame and amortized by the
// pipeline's batch slots, so the lock is not on the per-byte path).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace plfsr {

/// Bounded (or unbounded) recycling pool of byte buffers.
class FrameArena {
 public:
  /// `capacity` bounds the buffers alive at once (acquired and not yet
  /// released); 0 means unbounded (acquire never blocks).
  explicit FrameArena(std::size_t capacity = 0) : capacity_(capacity) {}

  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Blocking acquire of a buffer resized to `size` (contents
  /// unspecified — recycled buffers keep their old bytes). Returns false
  /// iff the arena was close()d and the pool has drained dry (after
  /// close the pooled buffers still serve, but nothing blocks or hits
  /// the heap).
  bool acquire(std::vector<std::uint8_t>& out, std::size_t size);

  /// Non-blocking acquire; false when the bound is reached (or closed
  /// with an empty pool).
  bool try_acquire(std::vector<std::uint8_t>& out, std::size_t size);

  /// Return a buffer to the pool (capacity kept for reuse) and wake one
  /// blocked acquirer. Releasing into a closed arena just drops the
  /// buffer.
  void release(std::vector<std::uint8_t> buf);

  /// Begin the drain: unblock every waiter, stop heap growth and new
  /// pooling; acquires keep succeeding from the existing pool until it
  /// is empty, then fail. Idempotent.
  void close();

  /// Buffers currently acquired and not yet released.
  std::size_t outstanding() const;
  /// Buffers sitting in the pool ready for reuse.
  std::size_t pooled() const;

  // --- counters (monotonic; read anytime) ---------------------------
  std::uint64_t acquires() const;        ///< successful acquire/try_acquire
  std::uint64_t recycles() const;        ///< acquires served from the pool
  std::uint64_t heap_allocations() const;  ///< acquires that hit the heap
  std::uint64_t acquire_stalls() const;  ///< acquires that had to wait

 private:
  bool grab_locked(std::vector<std::uint8_t>& out, std::size_t size);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::vector<std::uint8_t>> pool_;
  std::size_t outstanding_ = 0;
  bool closed_ = false;
  std::uint64_t acquires_ = 0;
  std::uint64_t recycles_ = 0;
  std::uint64_t heap_allocations_ = 0;
  std::uint64_t acquire_stalls_ = 0;
};

}  // namespace plfsr
