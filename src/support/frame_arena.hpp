// Recycling pool of frame buffers — the allocator the zero-copy
// pipeline runs on, handing out FrameBuf descriptors instead of raw
// vectors.
//
// A streaming pipeline that allocates a fresh buffer per frame pays one
// heap round-trip per frame at the producer and one at the sink; at
// millions of 64 B frames per second the allocator, not the kernels,
// becomes the bottleneck row. The arena closes that loop: every acquired
// FrameBuf carries a backref, its *destructor* returns the storage to
// the pool (no explicit release call anywhere — dropping the frame at
// the sink is the release), and the producer's next acquire() reuses it
// with capacity intact, so steady state does no heap work at all. The
// frames in flight between them carry only the descriptor through the
// rings — payload bytes are written once by the producer and never
// copied again.
//
// Pools are *size-classed* (power-of-two capacity classes, floor 64 B):
// a 4 MiB jumbo aggregate and a 64 B telemetry frame recycle through
// separate pools, so a mixed workload stays allocation-free at both
// extremes. (The single-pool design this replaces recycled whichever
// buffer was released last; a jumbo request landing on a 64 B buffer
// silently reallocated — the "recycle" counter said zero-alloc while
// every frame paid a 4 MiB heap trip. A recycled buffer's capacity now
// always covers the request, by construction.) When the bound is
// reached and only wrong-class buffers are pooled, one is evicted to
// make room (counted in evictions()) — the pool's class mix adapts to
// the workload instead of deadlocking it.
//
// A bounded arena (capacity > 0) doubles as end-to-end backpressure:
// `capacity` caps the buffers in existence (outstanding + pooled, so
// heap_allocations() <= capacity() + evictions() always holds); once
// every buffer is outstanding, acquire() blocks until a descriptor
// drops — the producer is throttled by pipeline drain rate, the way a
// MAC's descriptor ring throttles its DMA engine.
//
// Shutdown is a *drain*, not a hard stop: close() unblocks every waiter
// and stops all heap growth, but buffers already pooled keep serving
// acquire() (per size class) until they run out — an in-flight producer
// finishing its tail keeps the zero-alloc guarantee to the last frame.
// Once the class pool is empty (or immediately, if it was), acquire()
// returns false and never blocks again. Descriptors dropped after close
// free their storage on the heap (their consumers are gone). Because the
// state is shared with every outstanding FrameBuf, descriptors may even
// outlive the arena object itself — destruction closes the arena, and
// the stragglers heap-free safely.
//
// Thread-safety: all members are safe to call concurrently (mutex +
// condvar; the arena's operations are per-frame and amortized by the
// pipeline's batch slots, so the lock is not on the per-byte path).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "support/frame_buf.hpp"

namespace plfsr {

namespace detail {
/// The arena guts, shared (shared_ptr) with every outstanding FrameBuf
/// so a descriptor can release safely after the arena object is gone.
struct ArenaState {
  mutable std::mutex mu;
  std::condition_variable cv;
  // size class (power-of-two slot capacity) -> recycled storage
  std::map<std::size_t, std::vector<std::vector<std::uint8_t>>> pools;
  std::size_t pooled = 0;       // buffers across all pools
  std::size_t outstanding = 0;  // buffers acquired and not yet released
  std::size_t capacity = 0;     // bound on outstanding + pooled; 0 = none
  bool closed = false;
  std::uint64_t acquires = 0;
  std::uint64_t recycles = 0;
  std::uint64_t heap_allocations = 0;
  std::uint64_t acquire_stalls = 0;
  std::uint64_t evictions = 0;
};
}  // namespace detail

/// Bounded (or unbounded) size-classed recycling pool of FrameBufs.
class FrameArena {
 public:
  /// Smallest size class; every class is a power of two at or above it.
  static constexpr std::size_t kMinClassBytes = 64;

  /// `capacity` bounds the buffers in existence at once (acquired plus
  /// pooled); 0 means unbounded (acquire never blocks).
  explicit FrameArena(std::size_t capacity = 0);

  /// Destruction close()s; outstanding descriptors heap-free later.
  ~FrameArena();

  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  std::size_t capacity() const { return state_->capacity; }

  /// The size class serving a request of `size` bytes (the capacity the
  /// handed-out buffer is guaranteed to have).
  static std::size_t size_class(std::size_t size);

  /// Blocking acquire of a buffer resized to `size` (contents
  /// unspecified — recycled buffers keep their old bytes). Any buffer
  /// `out` already holds is released first. Returns false iff the arena
  /// was close()d and `size`'s class pool has drained dry (after close
  /// the pooled buffers still serve, but nothing blocks or hits the
  /// heap).
  bool acquire(FrameBuf& out, std::size_t size);

  /// Non-blocking acquire; false when the bound is reached with nothing
  /// pooled (or closed with an empty class pool).
  bool try_acquire(FrameBuf& out, std::size_t size);

  /// Begin the drain: unblock every waiter, stop heap growth and new
  /// pooling; acquires keep succeeding from the existing class pools
  /// until they empty, then fail. Idempotent.
  void close();

  /// Buffers currently acquired and not yet released.
  std::size_t outstanding() const;
  /// Buffers sitting in the pools ready for reuse.
  std::size_t pooled() const;
  /// Distinct size classes currently pooled.
  std::size_t pooled_classes() const;

  // --- counters (monotonic; read anytime) ---------------------------
  std::uint64_t acquires() const;        ///< successful acquire/try_acquire
  std::uint64_t recycles() const;        ///< acquires served from a pool
  std::uint64_t heap_allocations() const;  ///< acquires that hit the heap
  std::uint64_t acquire_stalls() const;  ///< acquires that had to wait
  std::uint64_t evictions() const;       ///< wrong-class buffers dropped
                                         ///< to make room at the bound

 private:
  bool grab_locked(FrameBuf& out, std::size_t size, std::size_t cls);

  std::shared_ptr<detail::ArenaState> state_;
};

}  // namespace plfsr
