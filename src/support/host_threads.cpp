#include "support/host_threads.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

namespace plfsr {
namespace detail {

namespace {

/// Leading decimal integer of `text` (skipping leading spaces); false if
/// none is there.
bool parse_ll(std::string_view text, long long& out) {
  std::size_t i = 0;
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
  const char* first = text.data() + i;
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr != first;
}

/// First line of a small /sys file; empty when unreadable.
std::string read_line(const char* path) {
  std::ifstream in(path);
  std::string line;
  if (!in || !std::getline(in, line)) return {};
  return line;
}

}  // namespace

double parse_cpu_max(std::string_view text) {
  // cgroup v2: "$MAX $PERIOD" with MAX either "max" (unlimited) or the
  // quota in microseconds per period.
  std::size_t i = 0;
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
  if (text.substr(i, 3) == "max") return -1.0;
  long long quota = 0;
  if (!parse_ll(text.substr(i), quota)) return -1.0;
  const std::size_t sp = text.find(' ', i);
  if (sp == std::string_view::npos) return -1.0;
  long long period = 0;
  if (!parse_ll(text.substr(sp + 1), period)) return -1.0;
  return parse_cfs(quota, period);
}

double parse_cfs(long long quota_us, long long period_us) {
  if (quota_us <= 0 || period_us <= 0) return -1.0;  // -1 quota = no limit
  return static_cast<double>(quota_us) / static_cast<double>(period_us);
}

double cgroup_quota_cores() {
  // v2 first (the unified hierarchy every current distro mounts), then
  // the v1 cpu controller split across two files.
  const std::string v2 = read_line("/sys/fs/cgroup/cpu.max");
  if (!v2.empty()) {
    const double cores = parse_cpu_max(v2);
    if (cores > 0) return cores;
  }
  const std::string q = read_line("/sys/fs/cgroup/cpu/cpu.cfs_quota_us");
  const std::string p = read_line("/sys/fs/cgroup/cpu/cpu.cfs_period_us");
  if (!q.empty() && !p.empty()) {
    long long quota = 0, period = 0;
    if (parse_ll(q, quota) && parse_ll(p, period))
      return parse_cfs(quota, period);
  }
  return -1.0;
}

std::size_t resolve_host_threads(const char* env, unsigned hw,
                                 double quota_cores) {
  if (env != nullptr) {
    long long n = 0;
    if (parse_ll(env, n) && n > 0) return static_cast<std::size_t>(n);
    // A set-but-unusable override (empty, 0, negative, garbage) falls
    // through to the heuristics rather than crippling the process.
  }
  std::size_t threads = hw;  // 0 allowed ("not computable")
  if (quota_cores > 0) {
    // Round the quota up: a 0.5-core cgroup still runs one thread.
    const auto by_quota = static_cast<std::size_t>(std::ceil(quota_cores));
    if (threads == 0 || by_quota < threads) threads = by_quota;
  }
  return threads == 0 ? 1 : threads;
}

}  // namespace detail

std::size_t host_threads() {
  return detail::resolve_host_threads(std::getenv("PLFSR_THREADS"),
                                      std::thread::hardware_concurrency(),
                                      detail::cgroup_quota_cores());
}

}  // namespace plfsr
