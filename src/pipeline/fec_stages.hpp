// FEC stages for the streaming pipeline: encode, channel-impairment
// injection, decode. Together they model the outer-code leg of a
// broadcast transmitter/receiver (DVB: scramble -> RS(204,188) encode ->
// channel -> RS decode -> descramble), and they keep the pipeline's
// frame-locality contract — every stage derives everything it needs from
// the frame itself (the injector seeds its Rng from seed ^ frame.id), so
// the pipelined run stays bit-exact with the serial composition at every
// batch size x queue depth, impairments included.
//
// Geometry: RsEncodeStage grows a frame body from L to
// L + ceil(L / data_bytes) * parity_bytes; RsDecodeStage inverts that
// from the encoded length alone (fec_codec.hpp stream geometry — no
// header on the wire). Decode failures beyond the code's radius are
// counted, never silently passed: the failed block's payload bytes flow
// through uncorrected, exactly what an outer decoder hands the
// de-interleaver in a real receiver chain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "fec/fec_codec.hpp"
#include "fec/fec_registry.hpp"
#include "pipeline/stage.hpp"
#include "support/rng.hpp"

namespace plfsr {

/// Block-encodes every frame body with a shared FEC codec (registry
/// handle: any engine that serves the spec plugs in).
class RsEncodeStage : public Stage {
 public:
  explicit RsEncodeStage(FecCodecHandle codec);

  const char* name() const override { return "fec-encode"; }
  void process(FrameBatch& batch) override;

  const FecCodec& codec() const { return *codec_; }

 private:
  FecCodecHandle codec_;
};

/// Channel impairment injector: flips symbols and marks erasures in each
/// frame body, deterministically per frame (Rng seeded from
/// seed ^ frame.id, so the impairment pattern is independent of batching
/// and queue depth). Per block of the codec's geometry it corrupts
/// exactly `errors` unmarked byte positions and `erasures` marked ones
/// (erased bytes are overwritten with random values and their offsets
/// appended to Frame::erasures) — with 2*errors + erasures <= n-k the
/// downstream decoder must recover every frame bit-exactly.
class FecCorruptStage : public Stage {
 public:
  /// `codec` fixes the block geometry (must match the encode stage).
  /// Throws std::invalid_argument if errors + erasures exceeds the
  /// parity symbol count (more distinct positions than a block holds).
  FecCorruptStage(FecCodecHandle codec, std::uint64_t seed,
                  std::size_t errors, std::size_t erasures);

  const char* name() const override { return "fec-corrupt"; }
  void process(FrameBatch& batch) override;

  std::uint64_t frames() const { return frames_; }
  std::uint64_t symbols_corrupted() const { return symbols_corrupted_; }
  std::uint64_t symbols_erased() const { return symbols_erased_; }

 private:
  FecCodecHandle codec_;
  std::uint64_t seed_;
  std::size_t errors_;
  std::size_t erasures_;
  std::uint64_t frames_ = 0;
  std::uint64_t symbols_corrupted_ = 0;
  std::uint64_t symbols_erased_ = 0;
};

/// Decodes every frame body back to its payload, consuming (and
/// clearing) Frame::erasures. Counters are read after Pipeline::wait().
class RsDecodeStage : public Stage {
 public:
  explicit RsDecodeStage(FecCodecHandle codec);

  const char* name() const override { return "fec-decode"; }
  void process(FrameBatch& batch) override;

  const FecCodec& codec() const { return *codec_; }
  std::uint64_t frames() const { return frames_; }
  std::uint64_t blocks() const { return blocks_; }
  std::uint64_t failed_blocks() const { return failed_blocks_; }
  std::uint64_t corrected_errors() const { return corrected_errors_; }
  std::uint64_t corrected_erasures() const { return corrected_erasures_; }
  bool ok() const { return failed_blocks_ == 0; }

 private:
  FecCodecHandle codec_;
  std::uint64_t frames_ = 0;
  std::uint64_t blocks_ = 0;
  std::uint64_t failed_blocks_ = 0;
  std::uint64_t corrected_errors_ = 0;
  std::uint64_t corrected_erasures_ = 0;
};

}  // namespace plfsr
