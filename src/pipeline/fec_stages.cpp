#include "pipeline/fec_stages.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <vector>

#include "fec/parallel_fec.hpp"

namespace plfsr {

RsEncodeStage::RsEncodeStage(FecCodecHandle codec)
    : codec_(std::move(codec)) {
  if (!codec_) throw std::invalid_argument("RsEncodeStage: null codec");
}

void RsEncodeStage::process(FrameBatch& batch) {
  const std::size_t d = codec_->data_bytes();
  const std::size_t c = codec_->code_bytes();
  for (Frame& f : batch) {
    if (f.bytes.empty()) continue;
    std::vector<std::uint8_t> out(fec_encoded_size(*codec_, f.bytes.size()));
    const std::size_t nb = (f.bytes.size() + d - 1) / d;
    for (std::size_t b = 0; b < nb; ++b) {
      const std::size_t dlen = std::min(d, f.bytes.size() - b * d);
      codec_->encode_block(
          std::span<const std::uint8_t>(f.bytes).subspan(b * d, dlen),
          std::span<std::uint8_t>(out).subspan(
              b * c, dlen + codec_->parity_bytes()));
    }
    f.bytes = std::move(out);
    f.bits = Frame::kWholeBytes;  // byte-aligned by construction
  }
}

FecCorruptStage::FecCorruptStage(FecCodecHandle codec, std::uint64_t seed,
                                 std::size_t errors, std::size_t erasures)
    : codec_(std::move(codec)),
      seed_(seed),
      errors_(errors),
      erasures_(erasures) {
  if (!codec_) throw std::invalid_argument("FecCorruptStage: null codec");
  if (errors_ + erasures_ > codec_->parity_bytes())
    throw std::invalid_argument(
        "FecCorruptStage: errors + erasures exceeds the parity symbol "
        "count — even the shortest block cannot host that many distinct "
        "positions");
}

void FecCorruptStage::process(FrameBatch& batch) {
  const std::size_t c = codec_->code_bytes();
  const std::size_t hits = errors_ + erasures_;
  std::vector<std::uint32_t> picked;
  for (Frame& f : batch) {
    ++frames_;
    if (f.bytes.empty() || hits == 0) continue;
    Rng rng(seed_ ^ f.id);  // frame-local: batching cannot shift patterns
    const std::size_t nb = fec_block_count(*codec_, f.bytes.size());
    for (std::size_t b = 0; b < nb; ++b) {
      const std::size_t off = b * c;
      const std::size_t clen = std::min(c, f.bytes.size() - off);
      picked.clear();
      while (picked.size() < hits) {
        const auto pos = static_cast<std::uint32_t>(rng.next_below(clen));
        bool dup = false;
        for (const std::uint32_t p : picked) dup = dup || p == pos;
        if (!dup) picked.push_back(pos);
      }
      for (std::size_t i = 0; i < errors_; ++i) {
        // Guaranteed symbol change: XOR with a nonzero byte.
        f.bytes[off + picked[i]] ^=
            static_cast<std::uint8_t>(1 + rng.next_below(255));
        ++symbols_corrupted_;
      }
      for (std::size_t i = errors_; i < hits; ++i) {
        // An erased symbol is overwritten wholesale; the replacement may
        // coincide with the original — the decoder still counts it.
        f.bytes[off + picked[i]] = static_cast<std::uint8_t>(rng.next_u64());
        f.erasures.push_back(static_cast<std::uint32_t>(off + picked[i]));
        ++symbols_erased_;
      }
    }
  }
}

RsDecodeStage::RsDecodeStage(FecCodecHandle codec) : codec_(std::move(codec)) {
  if (!codec_) throw std::invalid_argument("RsDecodeStage: null codec");
}

void RsDecodeStage::process(FrameBatch& batch) {
  // Serial ParallelFec: the stage already owns a pipeline thread, and the
  // stream decode (block split, erasure bucketing, failed-block
  // passthrough) is exactly ParallelFec's per-shard loop.
  const ParallelFec dec(codec_, 1);
  for (Frame& f : batch) {
    ++frames_;
    if (f.bytes.empty()) continue;
    std::vector<std::uint8_t> out(fec_decoded_size(*codec_, f.bytes.size()));
    const ParallelFecResult r = dec.decode(f.bytes, out, f.erasures);
    blocks_ += r.blocks;
    failed_blocks_ += r.failed_blocks;
    corrected_errors_ += r.corrected_errors;
    corrected_erasures_ += r.corrected_erasures;
    f.bytes = std::move(out);
    f.bits = Frame::kWholeBytes;
    f.erasures.clear();
  }
}

}  // namespace plfsr
