#include "pipeline/stages.hpp"

#include <bit>
#include <cstring>
#include <span>

#include "support/bitstream.hpp"

namespace plfsr {

namespace {

/// The first `nbits` bits of `bytes`, LSB-first per byte — the byte
/// buffer with its packing pad stripped.
BitStream payload_bits(std::span<const std::uint8_t> bytes,
                       std::uint64_t nbits) {
  const BitStream all = BitStream::from_bytes_lsb_first(bytes);
  if (nbits >= all.size()) return all;
  BitStream out;
  for (std::uint64_t i = 0; i < nbits; ++i) out.push_back(all.get(i));
  return out;
}

}  // namespace

ScrambleStage::ScrambleStage(const Gf2Poly& g, std::uint64_t seed)
    : scr_(g, seed) {}

void ScrambleStage::grow_cache(std::size_t nbytes) {
  // Geometric growth (power-of-two, floor 4 KiB): the generator runs
  // only on the new suffix, so total extension work is O(max frame size)
  // over the stage's lifetime, not O(frames x size).
  std::size_t want = std::bit_ceil(nbytes);
  if (want < 4096) want = 4096;
  const std::size_t old = key_.size();
  key_.resize(want);
  scr_.seek(8 * static_cast<std::uint64_t>(old));
  scr_.keystream_into(key_.data() + old, want - old);
}

void ScrambleStage::apply(std::span<std::uint8_t> bytes) {
  // Frame-synchronous: every frame XORs the same keystream prefix, so
  // the scramble is a straight word-wide XOR against the cache.
  const std::size_t n = bytes.size();
  if (n > key_.size()) grow_cache(n);
  std::uint8_t* p = bytes.data();
  const std::uint8_t* k = key_.data();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, p + i, 8);
    std::memcpy(&b, k + i, 8);
    a ^= b;
    std::memcpy(p + i, &a, 8);
  }
  for (; i < n; ++i) p[i] ^= k[i];
}

void ScrambleStage::process(FrameBatch& batch) {
  for (Frame& f : batch) apply(f.bytes);
}

SpreadStage::SpreadStage(const Gf2Poly& g, std::uint64_t seed,
                         std::size_t chips_per_bit)
    : spreader_(g, seed, chips_per_bit), seed_(seed) {}

void SpreadStage::process(FrameBatch& batch) {
  for (Frame& f : batch) {
    spreader_.reseed(seed_);  // frame-synchronous: every frame restarts
    const BitStream chips =
        spreader_.spread(payload_bits(f.bytes, f.bit_size()));
    f.bytes = chips.to_bytes_lsb_first();
    f.bits = chips.size();
  }
}

DespreadStage::DespreadStage(const Gf2Poly& g, std::uint64_t seed,
                             std::size_t chips_per_bit)
    : spreader_(g, seed, chips_per_bit), seed_(seed) {}

void DespreadStage::process(FrameBatch& batch) {
  for (Frame& f : batch) {
    spreader_.reseed(seed_);
    const BitStream data =
        spreader_.despread(payload_bits(f.bytes, f.bit_size()));
    f.bytes = data.to_bytes_lsb_first();
    f.bits = data.size();
  }
}

}  // namespace plfsr
