#include "pipeline/stages.hpp"

#include "support/bitstream.hpp"

namespace plfsr {

namespace {

/// The first `nbits` bits of `bytes`, LSB-first per byte — the byte
/// buffer with its packing pad stripped.
BitStream payload_bits(const std::vector<std::uint8_t>& bytes,
                       std::uint64_t nbits) {
  const BitStream all = BitStream::from_bytes_lsb_first(bytes);
  if (nbits >= all.size()) return all;
  BitStream out;
  for (std::uint64_t i = 0; i < nbits; ++i) out.push_back(all.get(i));
  return out;
}

}  // namespace

ScrambleStage::ScrambleStage(const Gf2Poly& g, std::uint64_t seed)
    : scr_(g, seed) {}

void ScrambleStage::apply(std::vector<std::uint8_t>& bytes) {
  scr_.seek(0);  // frame-synchronous: every frame restarts at the seed
  scr_.process(bytes);
}

void ScrambleStage::process(FrameBatch& batch) {
  for (Frame& f : batch) apply(f.bytes);
}

SpreadStage::SpreadStage(const Gf2Poly& g, std::uint64_t seed,
                         std::size_t chips_per_bit)
    : spreader_(g, seed, chips_per_bit), seed_(seed) {}

void SpreadStage::process(FrameBatch& batch) {
  for (Frame& f : batch) {
    spreader_.reseed(seed_);  // frame-synchronous: every frame restarts
    const BitStream chips =
        spreader_.spread(payload_bits(f.bytes, f.bit_size()));
    f.bytes = chips.to_bytes_lsb_first();
    f.bits = chips.size();
  }
}

DespreadStage::DespreadStage(const Gf2Poly& g, std::uint64_t seed,
                             std::size_t chips_per_bit)
    : spreader_(g, seed, chips_per_bit), seed_(seed) {}

void DespreadStage::process(FrameBatch& batch) {
  for (Frame& f : batch) {
    spreader_.reseed(seed_);
    const BitStream data =
        spreader_.despread(payload_bits(f.bytes, f.bit_size()));
    f.bytes = data.to_bytes_lsb_first();
    f.bits = data.size();
  }
}

}  // namespace plfsr
