#include "pipeline/stages.hpp"

#include <algorithm>
#include <cstring>

#include "support/bitstream.hpp"

namespace plfsr {

namespace {

/// dst ^= src over n bytes, eight at a time (memcpy keeps it alias-safe;
/// the compiler lowers the loop to full-width vector XORs). While XOR-ing,
/// paces one prefetch of the *next* frame per cache line processed — frames
/// are separate heap blocks, so the hardware prefetcher restarts cold at
/// every frame boundary, and a paced software stream hides that latency
/// without flooding the miss queue.
void xor_bytes(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
               const std::uint8_t* pf = nullptr, std::size_t pf_n = 0) {
  std::size_t i = 0, p = 0;
  for (; i + 8 <= n; i += 8) {
    if ((i & 63) == 0 && p < pf_n) {
      __builtin_prefetch(pf + p, /*rw=*/1);
      p += 64;
    }
    std::uint64_t a, b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; p < pf_n; p += 64) __builtin_prefetch(pf + p, /*rw=*/1);
  for (; i < n; ++i) dst[i] ^= src[i];
}

}  // namespace

ScrambleStage::ScrambleStage(const Gf2Poly& g, std::uint64_t seed)
    : gen_(g, seed) {}

void ScrambleStage::ensure_keystream(std::size_t nbytes) {
  if (keystream_.size() >= nbytes) return;
  // Grow in sizeable steps: the generator is the exact bit-serial
  // scrambler, paid once per distinct length high-water mark.
  const std::size_t want = std::max<std::size_t>(nbytes, 4096);
  const std::size_t add = want - keystream_.size();
  const BitStream ks = gen_.keystream(add * 8);
  const std::vector<std::uint8_t> packed = ks.to_bytes_lsb_first();
  keystream_.insert(keystream_.end(), packed.begin(), packed.end());
}

void ScrambleStage::apply(std::vector<std::uint8_t>& bytes) {
  ensure_keystream(bytes.size());
  xor_bytes(bytes.data(), keystream_.data(), bytes.size());
}

void ScrambleStage::process(FrameBatch& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::vector<std::uint8_t>& cur = batch[i].bytes;
    ensure_keystream(cur.size());
    const std::uint8_t* pf = nullptr;
    std::size_t pf_n = 0;
    if (i + 1 < batch.size()) {
      pf = batch[i + 1].bytes.data();
      pf_n = batch[i + 1].bytes.size();
    }
    xor_bytes(cur.data(), keystream_.data(), cur.size(), pf, pf_n);
  }
}

SpreadStage::SpreadStage(const Gf2Poly& g, std::uint64_t seed,
                         std::size_t chips_per_bit)
    : spreader_(g, seed, chips_per_bit), seed_(seed) {}

void SpreadStage::process(FrameBatch& batch) {
  for (Frame& f : batch) {
    spreader_.reseed(seed_);  // frame-synchronous: every frame restarts
    const BitStream bits = BitStream::from_bytes_lsb_first(f.bytes);
    f.bytes = spreader_.spread(bits).to_bytes_lsb_first();
  }
}

DespreadStage::DespreadStage(const Gf2Poly& g, std::uint64_t seed,
                             std::size_t chips_per_bit)
    : spreader_(g, seed, chips_per_bit), seed_(seed) {}

void DespreadStage::process(FrameBatch& batch) {
  for (Frame& f : batch) {
    spreader_.reseed(seed_);
    const BitStream chips = BitStream::from_bytes_lsb_first(f.bytes);
    f.bytes = spreader_.despread(chips).to_bytes_lsb_first();
  }
}

}  // namespace plfsr
