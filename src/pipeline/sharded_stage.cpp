#include "pipeline/sharded_stage.hpp"

#include <exception>
#include <future>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "support/sharding.hpp"

namespace plfsr {

ShardedStage::ShardedStage(const StageFactory& make, std::size_t workers) {
  if (!make) throw std::invalid_argument("ShardedStage: null factory");
  if (workers == 0) workers = 1;
  shards_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    shards_.push_back(make());
    if (!shards_.back())
      throw std::invalid_argument("ShardedStage: factory returned null");
  }
  scratch_.resize(workers);
  // Shard 0 runs on the calling (stage) thread, so the pool only needs
  // workers-1 threads; a 1-shard stage spawns nothing.
  pool_ = std::make_unique<ThreadPool>(workers - 1);
  name_ = std::string(shards_[0]->name()) + " x" + std::to_string(workers);
}

void ShardedStage::process(FrameBatch& batch) {
  const std::size_t w = shards_.size();
  if (w == 1) {
    shards_[0]->process(batch);
    return;
  }
  const std::vector<ShardSlice> slices = near_equal_slices(batch.size(), w);

  // Move each slice's frames into the shard's scratch batch (vector
  // moves: buffer descriptors change hands, payload bytes do not).
  for (std::size_t i = 0; i < w; ++i) {
    scratch_[i].clear();
    const ShardSlice& s = slices[i];
    scratch_[i].insert(
        scratch_[i].end(),
        std::make_move_iterator(batch.begin() +
                                static_cast<std::ptrdiff_t>(s.offset)),
        std::make_move_iterator(batch.begin() + static_cast<std::ptrdiff_t>(
                                                    s.offset + s.length)));
  }

  // Shards 1..w-1 on the pool, shard 0 inline; every future is always
  // harvested so a throwing shard cannot leave a task running into a
  // destroyed scratch batch.
  std::vector<std::future<void>> futs;
  futs.reserve(w - 1);
  for (std::size_t i = 1; i < w; ++i) {
    if (scratch_[i].empty()) continue;
    futs.push_back(pool_->submit(
        [this, i] { shards_[i]->process(scratch_[i]); }));
  }
  std::exception_ptr err;
  try {
    if (!scratch_[0].empty()) shards_[0]->process(scratch_[0]);
  } catch (...) {
    err = std::current_exception();
  }
  for (std::future<void>& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!err) err = std::current_exception();
    }
  }
  if (err) std::rethrow_exception(err);

  // Reassemble in slice order — the output sequence matches the
  // unsharded stage's exactly (slices are contiguous and in order).
  batch.clear();
  for (std::size_t i = 0; i < w; ++i) {
    batch.insert(batch.end(),
                 std::make_move_iterator(scratch_[i].begin()),
                 std::make_move_iterator(scratch_[i].end()));
    scratch_[i].clear();
  }
}

}  // namespace plfsr
