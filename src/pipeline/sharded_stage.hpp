// Multi-worker stage: N shards of the same stage behind one Stage slot —
// the software form of widening the bottleneck PiCoGA row instead of
// deepening the whole pipeline.
//
// A chain of single-threaded stages sustains the throughput of its
// slowest row; when one stage (say the scrambler) is the bottleneck, the
// fix is not more pipeline depth but more copies of that row working on
// different frames. ShardedStage wraps W independent clones of a stage
// (each with its own internal state — the Stage contract already demands
// frame-locality, so clones never need to talk) and splits every ring
// slot's batch into W contiguous near-equal slices, processed
// concurrently on a private worker pool and reassembled in slice order.
// This is the ParallelCrc discipline lifted from bytes-of-one-message to
// frames-of-one-batch — and because stages are frame-local, no combine
// fold is needed at the join at all (the easy case of the paper's
// parallelization taxonomy, like the scrambler's pure feed-forward).
//
// Order and bit-exactness: slices are contiguous and reassembled in
// order, so the output frame sequence is identical to the unsharded
// stage's for any shard count × batch size — the invariant
// tests/sharded_stage_test.cpp sweeps. Stages that change the frame
// count (spreaders, sinks) remain legal: each slice's output is
// concatenated in slice order.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pipeline/stage.hpp"
#include "support/thread_pool.hpp"

namespace plfsr {

/// Runs W clones of a stage over contiguous slices of each batch.
class ShardedStage : public Stage {
 public:
  using StageFactory = std::function<std::unique_ptr<Stage>()>;

  /// `make` is invoked `workers` times, once per shard clone (each clone
  /// carries its own state). workers == 0 is promoted to 1; workers == 1
  /// degenerates to a plain pass-through wrapper.
  ShardedStage(const StageFactory& make, std::size_t workers);

  const char* name() const override { return name_.c_str(); }
  void process(FrameBatch& batch) override;

  std::size_t workers() const { return shards_.size(); }

  /// Shard clone i (tests read per-shard counters through this).
  Stage& shard(std::size_t i) { return *shards_[i]; }

 private:
  std::vector<std::unique_ptr<Stage>> shards_;
  std::vector<FrameBatch> scratch_;   // per-shard slices, reused per call
  std::unique_ptr<ThreadPool> pool_;  // workers-1 threads; shard 0 inline
  std::string name_;
};

}  // namespace plfsr
