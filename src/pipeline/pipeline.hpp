// Pipeline executor: the software PiCoGA datapath, in two operating
// points selected by a PipelinePlan policy:
//
//  - kThreaded: every stage gets a dedicated worker (reusing the support
//    ThreadPool) and a bounded input ring; batches flow producer →
//    stage 0 → ... → stage N-1 with blocking backpressure, exactly the
//    way rows of the array hand words down the pipeline at a fixed issue
//    rate. Right when stages can actually run concurrently (enough
//    cores) and each ring slot carries enough work to amortize the
//    hand-off.
//  - kFused: all stages run back-to-back on the *caller's* thread inside
//    push() — the whole graph collapsed into one row, no rings, no
//    context switches. Right for short graphs or low-core-count hosts,
//    where the hand-off overhead would dominate; this is the software
//    form of the paper's single-PiCoGA-operation fusion (the scrambler's
//    one-op claim applied to the whole chain).
//  - kAuto (the default plan) picks: fused when the host cannot give
//    every stage (plus the producer) its own core, threaded otherwise.
//
// Both modes share every interface and invariant — push/close/wait,
// error propagation, per-stage stats — so tests can pin fused-vs-
// threaded bit-exactness by flipping one enum. The run is observable the
// way the paper's per-row utilisation is: every stage reports frames,
// bytes, busy time, input/output stalls and its queue's occupancy
// high-water mark through a ReportTable (stall/occupancy columns are
// structurally zero in fused mode).
//
// Lifecycle:  Pipeline p(stages, plan);  p.start();
//             while (...) p.push(batch);
//             p.close();  p.wait();            // rethrows stage errors
//             p.stats() / p.stats_table()
//
// Error handling: a throwing stage aborts the run — all rings close, in-
// flight batches are drained and discarded, every worker exits, and
// wait() rethrows the first exception. Stop is always clean: no worker
// blocks forever on a dead neighbour.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pipeline/ring_buffer.hpp"
#include "pipeline/stage.hpp"
#include "support/report.hpp"
#include "support/thread_pool.hpp"

namespace plfsr {

/// How the stage graph executes.
enum class ExecMode {
  kAuto,      ///< fused when cores < stages + 1, threaded otherwise
  kThreaded,  ///< one worker per stage, SPSC rings between them
  kFused,     ///< all stages inline on the caller's thread, no rings
};

/// Execution policy: mode + ring geometry + thread placement.
struct PipelinePlan {
  /// Ring capacity between consecutive stages, in batches (threaded
  /// mode; fused mode has no rings).
  std::size_t queue_depth = 8;
  ExecMode mode = ExecMode::kAuto;

  /// Pin each stage worker to its own CPU (stage i to the i-th core the
  /// process may run on, round-robin) via pthread_setaffinity_np —
  /// steadier ring hand-off latency on dedicated hosts, at the price of
  /// fighting the scheduler on shared ones. Best-effort: a no-op on
  /// platforms without the call or when the kernel refuses, and ignored
  /// in fused mode (there are no workers to pin). Output is bit-exact
  /// either way — pinning is pure placement.
  bool pin_threads = false;

  static PipelinePlan threaded(std::size_t depth = 8) {
    return {depth, ExecMode::kThreaded};
  }
  static PipelinePlan fused() { return {1, ExecMode::kFused}; }
  static PipelinePlan pinned(std::size_t depth = 8) {
    return {depth, ExecMode::kThreaded, /*pin_threads=*/true};
  }

  /// The kAuto decision for a graph of `num_stages` stages: threaded
  /// only when the host can give every stage plus the producer its own
  /// core; a 1-stage graph always fuses (a ring hand-off to a single
  /// worker buys nothing).
  ExecMode resolve(std::size_t num_stages) const;
};

/// Backwards-compatible name: the plan grew out of the v1 config.
using PipelineConfig = PipelinePlan;

/// Post-run per-stage counters (valid after wait()).
struct StageStats {
  std::string name;
  std::uint64_t batches = 0;
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;         ///< bytes entering the stage
  std::uint64_t busy_ns = 0;       ///< time inside process()
  std::uint64_t pop_stalls = 0;    ///< waits for input (starved)
  std::uint64_t push_stalls = 0;   ///< waits for output space (backpressure)
  std::uint64_t queue_high_water = 0;  ///< input ring peak occupancy
};

/// Stage-graph executor (threaded or fused per the plan).
class Pipeline {
 public:
  explicit Pipeline(std::vector<std::unique_ptr<Stage>> stages,
                    PipelinePlan plan = {});
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  std::size_t num_stages() const { return stages_.size(); }

  /// The resolved execution mode (never kAuto).
  ExecMode mode() const { return mode_; }
  bool fused() const { return mode_ == ExecMode::kFused; }

  /// Spawn the stage workers (threaded) / arm the inline path (fused).
  /// Must precede push().
  void start();

  /// Feed one batch into the first stage (blocking under backpressure;
  /// in fused mode the batch runs through every stage before returning).
  /// Returns false if the pipeline aborted — stop producing.
  bool push(FrameBatch batch);

  /// Declare end of input; workers drain and exit in cascade.
  void close();

  /// Emergency stop: close every ring, discard in-flight batches.
  void abort();

  /// close() + join all workers; rethrows the first stage exception.
  void wait();

  bool failed() const { return aborted_.load(std::memory_order_relaxed); }

  /// Times the producer's push() had to wait on a full first ring
  /// (always 0 in fused mode — there is no ring to fill).
  std::uint64_t producer_stalls() const {
    return rings_.empty() ? 0 : rings_[0]->push_stalls();
  }

  /// Per-stage counters; call after wait().
  const std::vector<StageStats>& stats() const { return stats_; }

  /// The metrics report printed by every bench/example run: one row per
  /// stage — batches, frames, bytes, busy ms, busy-side MB/s, in-stalls
  /// (pops that waited), out-stalls (pushes that waited), q-hi (input
  /// ring occupancy high-water / depth).
  ReportTable stats_table() const;

  /// Direct access to a stage (e.g. to read a sink after wait()).
  Stage& stage(std::size_t i) { return *stages_[i]; }

 private:
  void run_stage(std::size_t i);
  bool push_fused(FrameBatch& batch);

  std::vector<std::unique_ptr<Stage>> stages_;
  PipelinePlan plan_;
  ExecMode mode_ = ExecMode::kThreaded;
  bool started_ = false;
  std::vector<std::unique_ptr<RingBuffer<FrameBatch>>> rings_;  // input of i
  std::vector<StageStats> stats_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::future<void>> futures_;
  std::atomic<bool> aborted_{false};
  std::mutex error_mu_;
  std::exception_ptr error_;
};

}  // namespace plfsr
