// Pipeline executor: the software PiCoGA datapath. Every stage gets a
// dedicated worker (reusing the support ThreadPool) and a bounded input
// ring; batches flow producer → stage 0 → ... → stage N-1 with blocking
// backpressure, exactly the way rows of the array hand words down the
// pipeline at a fixed issue rate. The run is observable the way the
// paper's per-row utilisation is: every stage reports frames, bytes, busy
// time, input/output stalls and its queue's occupancy high-water mark
// through a ReportTable.
//
// Lifecycle:  Pipeline p(stages);  p.start();
//             while (...) p.push(batch);
//             p.close();  p.wait();            // rethrows stage errors
//             p.stats() / p.stats_table()
//
// Error handling: a throwing stage aborts the run — all rings close, in-
// flight batches are drained and discarded, every worker exits, and
// wait() rethrows the first exception. Stop is always clean: no worker
// blocks forever on a dead neighbour.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pipeline/ring_buffer.hpp"
#include "pipeline/stage.hpp"
#include "support/report.hpp"
#include "support/thread_pool.hpp"

namespace plfsr {

struct PipelineConfig {
  /// Ring capacity between consecutive stages, in batches.
  std::size_t queue_depth = 8;
};

/// Post-run per-stage counters (valid after wait()).
struct StageStats {
  std::string name;
  std::uint64_t batches = 0;
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;         ///< bytes entering the stage
  std::uint64_t busy_ns = 0;       ///< time inside process()
  std::uint64_t pop_stalls = 0;    ///< waits for input (starved)
  std::uint64_t push_stalls = 0;   ///< waits for output space (backpressure)
  std::uint64_t queue_high_water = 0;  ///< input ring peak occupancy
};

/// Stage-graph executor: one thread per stage, SPSC rings between them.
class Pipeline {
 public:
  explicit Pipeline(std::vector<std::unique_ptr<Stage>> stages,
                    PipelineConfig cfg = {});
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  std::size_t num_stages() const { return stages_.size(); }

  /// Spawn the stage workers. Must precede push().
  void start();

  /// Feed one batch into the first stage (blocking under backpressure).
  /// Returns false if the pipeline aborted — stop producing.
  bool push(FrameBatch batch);

  /// Declare end of input; workers drain and exit in cascade.
  void close();

  /// Emergency stop: close every ring, discard in-flight batches.
  void abort();

  /// close() + join all workers; rethrows the first stage exception.
  void wait();

  bool failed() const { return aborted_.load(std::memory_order_relaxed); }

  /// Times the producer's push() had to wait on a full first ring.
  std::uint64_t producer_stalls() const { return rings_[0]->push_stalls(); }

  /// Per-stage counters; call after wait().
  const std::vector<StageStats>& stats() const { return stats_; }

  /// The metrics report printed by every bench/example run: one row per
  /// stage — batches, frames, bytes, busy ms, busy-side MB/s, in-stalls
  /// (pops that waited), out-stalls (pushes that waited), q-hi (input
  /// ring occupancy high-water / depth).
  ReportTable stats_table() const;

  /// Direct access to a stage (e.g. to read a sink after wait()).
  Stage& stage(std::size_t i) { return *stages_[i]; }

 private:
  void run_stage(std::size_t i);

  std::vector<std::unique_ptr<Stage>> stages_;
  PipelineConfig cfg_;
  std::vector<std::unique_ptr<RingBuffer<FrameBatch>>> rings_;  // input of i
  std::vector<StageStats> stats_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::future<void>> futures_;
  std::atomic<bool> aborted_{false};
  std::mutex error_mu_;
  std::exception_ptr error_;
};

}  // namespace plfsr
