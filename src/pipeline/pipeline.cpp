#include "pipeline/pipeline.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include <chrono>
#include <stdexcept>

#include "support/host_threads.hpp"

namespace plfsr {

namespace {

/// Best-effort pin of the calling thread to the `idx`-th CPU the process
/// is allowed on (round-robin over the allowed set, so a cgroup cpuset
/// is respected instead of raw CPU ids). No-op where unsupported or on
/// kernel refusal — pinning is an optimization hint, never a failure.
void pin_self_to_cpu([[maybe_unused]] std::size_t idx) {
#if defined(__linux__)
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return;
  const int n = CPU_COUNT(&allowed);
  if (n <= 0) return;
  int want = static_cast<int>(idx % static_cast<std::size_t>(n));
  int cpu = -1;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (!CPU_ISSET(c, &allowed)) continue;
    if (want-- == 0) {
      cpu = c;
      break;
    }
  }
  if (cpu < 0) return;
  cpu_set_t one;
  CPU_ZERO(&one);
  CPU_SET(cpu, &one);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(one), &one);
#endif
}

}  // namespace

ExecMode PipelinePlan::resolve(std::size_t num_stages) const {
  if (mode != ExecMode::kAuto) return mode;
  if (num_stages < 2) return ExecMode::kFused;
  // Threaded needs a core per stage plus one for the producer to win.
  // host_threads() (not hardware_concurrency()) so a cgroup-quota'd
  // container counts the cores it may actually run on, and a host that
  // cannot report at all resolves as a 1-core machine (fused) instead of
  // whatever 0 would compare as.
  const std::size_t cores = host_threads();
  return cores >= num_stages + 1 ? ExecMode::kThreaded : ExecMode::kFused;
}

Pipeline::Pipeline(std::vector<std::unique_ptr<Stage>> stages,
                   PipelinePlan plan)
    : stages_(std::move(stages)), plan_(plan) {
  if (stages_.empty())
    throw std::invalid_argument("Pipeline: need at least one stage");
  if (plan_.queue_depth == 0) plan_.queue_depth = 1;
  mode_ = plan_.resolve(stages_.size());
  stats_.resize(stages_.size());
  for (std::size_t i = 0; i < stages_.size(); ++i)
    stats_[i].name = stages_[i]->name();
  if (mode_ == ExecMode::kThreaded) {
    rings_.reserve(stages_.size());
    for (std::size_t i = 0; i < stages_.size(); ++i)
      rings_.push_back(
          std::make_unique<RingBuffer<FrameBatch>>(plan_.queue_depth));
  }
}

Pipeline::~Pipeline() {
  if (started_) {
    abort();
    try {
      wait();
    } catch (...) {
      // Destruction swallows stage errors; wait() is the reporting path.
    }
  }
}

void Pipeline::start() {
  if (started_) throw std::logic_error("Pipeline::start: already started");
  started_ = true;
  if (mode_ == ExecMode::kFused) return;  // nothing to spawn
  pool_ = std::make_unique<ThreadPool>(stages_.size());
  futures_.reserve(stages_.size());
  for (std::size_t i = 0; i < stages_.size(); ++i)
    futures_.push_back(pool_->submit([this, i] { run_stage(i); }));
}

bool Pipeline::push(FrameBatch batch) {
  if (!started_) throw std::logic_error("Pipeline::push before start()");
  if (mode_ == ExecMode::kFused) return push_fused(batch);
  return rings_[0]->push(std::move(batch));
}

bool Pipeline::push_fused(FrameBatch& batch) {
  if (aborted_.load(std::memory_order_relaxed)) return false;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    StageStats& st = stats_[i];
    std::uint64_t in_bytes = 0;
    for (const Frame& f : batch) in_bytes += f.bytes.size();
    const std::uint64_t in_frames = batch.size();
    const auto t0 = std::chrono::steady_clock::now();
    try {
      stages_[i]->process(batch);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(error_mu_);
        if (!error_) error_ = std::current_exception();
      }
      aborted_.store(true, std::memory_order_relaxed);
      return false;
    }
    st.busy_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    ++st.batches;
    st.frames += in_frames;
    st.bytes += in_bytes;
  }
  return true;
}

void Pipeline::close() {
  if (!rings_.empty()) rings_[0]->close();
}

void Pipeline::abort() {
  aborted_.store(true, std::memory_order_relaxed);
  for (auto& r : rings_) r->close();
}

void Pipeline::wait() {
  if (!started_) return;
  close();
  for (std::future<void>& f : futures_) f.get();  // runners do not throw
  futures_.clear();
  pool_.reset();
  // Harvest ring counters: stage i's input is ring i; its output pushes
  // land on ring i+1 (the last stage has no output ring). Fused mode has
  // no rings — the zeros already in stats_ are the truth.
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    stats_[i].pop_stalls = rings_[i]->pop_stalls();
    stats_[i].queue_high_water = rings_[i]->high_water();
    stats_[i].push_stalls =
        i + 1 < rings_.size() ? rings_[i + 1]->push_stalls() : 0;
  }
  if (error_) std::rethrow_exception(error_);
}

void Pipeline::run_stage(std::size_t i) {
  if (plan_.pin_threads) pin_self_to_cpu(i);
  RingBuffer<FrameBatch>& in = *rings_[i];
  RingBuffer<FrameBatch>* out =
      i + 1 < rings_.size() ? rings_[i + 1].get() : nullptr;
  StageStats& st = stats_[i];
  FrameBatch batch;
  while (in.pop(batch)) {
    if (aborted_.load(std::memory_order_relaxed)) {
      batch.clear();  // drain-and-discard keeps upstream unblocked
      continue;
    }
    std::uint64_t in_bytes = 0;
    for (const Frame& f : batch) in_bytes += f.bytes.size();
    const std::uint64_t in_frames = batch.size();
    const auto t0 = std::chrono::steady_clock::now();
    try {
      stages_[i]->process(batch);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(error_mu_);
        if (!error_) error_ = std::current_exception();
      }
      abort();
      batch.clear();
      continue;
    }
    st.busy_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    ++st.batches;
    st.frames += in_frames;
    st.bytes += in_bytes;
    if (out) {
      out->push(std::move(batch));  // false only when aborted: discard
      batch = FrameBatch();
    } else {
      batch.clear();
    }
  }
  if (out) out->close();
}

ReportTable Pipeline::stats_table() const {
  ReportTable table({"stage", "batches", "frames", "bytes", "busy ms",
                     "MB/s", "in-stalls", "out-stalls", "q-hi"});
  for (const StageStats& s : stats_) {
    const double ms = static_cast<double>(s.busy_ns) / 1e6;
    const double mbs = s.busy_ns == 0
                           ? 0.0
                           : static_cast<double>(s.bytes) /
                                 (static_cast<double>(s.busy_ns) / 1e9) /
                                 1e6;
    table.add_row({s.name, std::to_string(s.batches),
                   std::to_string(s.frames), std::to_string(s.bytes),
                   ReportTable::num(ms, 2), ReportTable::num(mbs, 1),
                   std::to_string(s.pop_stalls),
                   std::to_string(s.push_stalls),
                   std::to_string(s.queue_high_water) + "/" +
                       std::to_string(plan_.queue_depth)});
  }
  return table;
}

}  // namespace plfsr
