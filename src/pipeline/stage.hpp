// Stage abstraction of the streaming pipeline — the software PiCoGA row.
//
// A pipeline stage transforms batches of frames in place; the executor
// gives every stage its own thread and a bounded ring on each side, so a
// chain of stages behaves like the paper's row-pipelined datapath: each
// row does a fixed piece of work per issue, and the whole chain sustains
// the throughput of its slowest row while the rings absorb jitter.
//
// Stages must be frame-local (the output of a frame depends only on that
// frame and on state the stage re-derives per frame, e.g. a per-frame
// scrambler seed). Frame-locality is what makes the pipelined execution
// bit-exact with the serial composition of the same stages — the property
// tests/pipeline_test.cpp pins.
#pragma once

#include <cstdint>
#include <vector>

namespace plfsr {

/// One unit of streamed work: a frame body plus per-frame results.
struct Frame {
  std::uint64_t id = 0;               ///< stream position (seeds, spot checks)
  std::vector<std::uint8_t> bytes;    ///< body; stages transform it in place
  std::uint64_t crc = 0;              ///< FCS recorded by a CRC stage
};

/// Frames move through the pipeline in batches to amortise ring traffic;
/// the producer picks the batch size (the bench sweeps it).
using FrameBatch = std::vector<Frame>;

/// Interface every pipeline stage implements. process() is called from
/// the stage's dedicated thread, one batch at a time, in stream order —
/// a stage may therefore keep unsynchronized internal state (keystream
/// caches, counters, collected output).
class Stage {
 public:
  virtual ~Stage() = default;

  /// Short name used in the per-stage metrics report.
  virtual const char* name() const = 0;

  /// Transform one batch in place (bodies, CRCs, even the frame count —
  /// a spreader changes sizes, a sink may consume frames entirely).
  virtual void process(FrameBatch& batch) = 0;
};

}  // namespace plfsr
