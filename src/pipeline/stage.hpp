// Stage abstraction of the streaming pipeline — the software PiCoGA row.
//
// A pipeline stage transforms batches of frames in place; the executor
// gives every stage its own thread and a bounded ring on each side, so a
// chain of stages behaves like the paper's row-pipelined datapath: each
// row does a fixed piece of work per issue, and the whole chain sustains
// the throughput of its slowest row while the rings absorb jitter.
//
// Stages must be frame-local (the output of a frame depends only on that
// frame and on state the stage re-derives per frame, e.g. a per-frame
// scrambler seed). Frame-locality is what makes the pipelined execution
// bit-exact with the serial composition of the same stages — the property
// tests/pipeline_test.cpp pins.
#pragma once

#include <cstdint>
#include <vector>

#include "support/frame_buf.hpp"

namespace plfsr {

/// One unit of streamed work: a frame body plus per-frame results.
///
/// The body is a FrameBuf descriptor, so a Frame is *move-only*: it
/// changes hands through ring slots and shard scratch batches at
/// descriptor cost regardless of payload size, and an accidental payload
/// copy cannot compile — duplication must be spelled clone(). Dropping a
/// Frame releases its buffer (back to the arena that issued it, or the
/// heap).
struct Frame {
  /// Sentinel for `bits`: the whole byte buffer is payload.
  static constexpr std::uint64_t kWholeBytes = ~std::uint64_t{0};

  std::uint64_t id = 0;               ///< stream position (seeds, spot checks)
  FrameBuf bytes;                     ///< body; stages transform it in place
  std::uint64_t crc = 0;              ///< FCS recorded by a CRC stage

  /// True payload length in bits (LSB-first within `bytes`). Byte-packing
  /// zero-pads the final byte, and a stage that changes the bit length by
  /// a non-multiple of 8 (the spreader, whose chip count is bits x C)
  /// must not let that padding masquerade as payload: the despreader
  /// would decode the pad chips into spurious trailing bits and grow the
  /// frame. Defaults to kWholeBytes (= 8 * bytes.size()), so byte-aligned
  /// producers never touch it.
  std::uint64_t bits = kWholeBytes;

  /// Byte offsets into `bytes` the channel marked unreliable — the
  /// demodulator-confidence side channel an erasure decoder consumes.
  /// Written by the corruption injector (FecCorruptStage), consumed and
  /// cleared by RsDecodeStage; empty for every other stage.
  std::vector<std::uint32_t> erasures;

  /// Payload bit length with the sentinel resolved (and clamped to the
  /// buffer, so a stale `bits` can never read past the bytes).
  std::uint64_t bit_size() const {
    const std::uint64_t whole = 8 * static_cast<std::uint64_t>(bytes.size());
    return bits == kWholeBytes ? whole : (bits < whole ? bits : whole);
  }

  /// Deep copy (heap-backed body) — the only way to duplicate a frame.
  Frame clone() const {
    Frame f;
    f.id = id;
    f.bytes = bytes.clone();
    f.crc = crc;
    f.bits = bits;
    f.erasures = erasures;
    return f;
  }
};

/// Frames move through the pipeline in batches to amortise ring traffic;
/// the producer picks the batch size (the bench sweeps it).
using FrameBatch = std::vector<Frame>;

/// Interface every pipeline stage implements. process() is called from
/// the stage's dedicated thread, one batch at a time, in stream order —
/// a stage may therefore keep unsynchronized internal state (keystream
/// caches, counters, collected output).
class Stage {
 public:
  virtual ~Stage() = default;

  /// Short name used in the per-stage metrics report.
  virtual const char* name() const = 0;

  /// Transform one batch in place (bodies, CRCs, even the frame count —
  /// a spreader changes sizes, a sink may consume frames entirely).
  virtual void process(FrameBatch& batch) = 0;
};

}  // namespace plfsr
