// Bounded single-producer / single-consumer ring buffer — the software
// analogue of the pipeline registers between PiCoGA rows. Each ring
// decouples two pipeline stages: the producer row pushes finished batches,
// the consumer row pops them, and when the ring fills the producer stalls
// — exactly the backpressure a row-pipelined array applies upstream when
// a downstream row cannot issue (the paper's II > 1 operating points).
//
// Lock-free in the fast path: one atomic head (consumer-owned) and one
// atomic tail (producer-owned), both monotonic counters, with the slot
// array indexed modulo the capacity. Blocking push/pop spin briefly, then
// yield; every blocked call is counted, and the producer tracks the
// occupancy high-water mark, so a drained pipeline can report exactly
// where it stalled — the per-row utilisation view of the paper's Fig. 4/5
// discussion, recovered in software.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

namespace plfsr {

/// Bounded SPSC queue of T with stall/occupancy accounting.
///
/// Exactly one thread may push and one thread may pop (they may be the
/// same thread when using the try_ forms). close() may be called from any
/// thread: it wakes blocked callers; items already in the ring stay
/// poppable until drained.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : cap_(capacity), slots_(capacity) {
    if (capacity == 0)
      throw std::invalid_argument("RingBuffer: capacity must be >= 1");
  }

  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  std::size_t capacity() const { return cap_; }

  /// Items currently queued (approximate while both ends are active).
  std::size_t size() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

  /// Non-blocking push; moves from `item` only on success.
  bool try_push(T& item) {
    if (closed_.load(std::memory_order_acquire)) return false;
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) >= cap_) return false;
    slots_[tail % cap_] = std::move(item);
    publish(tail);
    return true;
  }

  /// Blocking push. Returns false iff the ring was closed (the item is
  /// then dropped — close-side discard is the abort path's job).
  bool push(T item) {
    std::uint64_t spins = 0;
    for (;;) {
      if (closed_.load(std::memory_order_acquire)) return false;
      const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
      if (tail - head_.load(std::memory_order_acquire) < cap_) {
        slots_[tail % cap_] = std::move(item);
        publish(tail);
        return true;
      }
      if (spins == 0) push_stalls_.fetch_add(1, std::memory_order_relaxed);
      backoff(++spins);
    }
  }

  /// Non-blocking pop into `out`.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == head) return false;
    out = std::move(slots_[head % cap_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Blocking pop. Returns false iff the ring is closed AND drained —
  /// items pushed before close() are always delivered.
  bool pop(T& out) {
    std::uint64_t spins = 0;
    for (;;) {
      const std::uint64_t head = head_.load(std::memory_order_relaxed);
      if (tail_.load(std::memory_order_acquire) != head) {
        out = std::move(slots_[head % cap_]);
        head_.store(head + 1, std::memory_order_release);
        return true;
      }
      // Re-read tail after observing closed: a push that completed just
      // before close() must not be lost.
      if (closed_.load(std::memory_order_acquire) &&
          tail_.load(std::memory_order_acquire) == head)
        return false;
      if (spins == 0) pop_stalls_.fetch_add(1, std::memory_order_relaxed);
      backoff(++spins);
    }
  }

  /// No more pushes will succeed; blocked callers wake up. Idempotent,
  /// callable from any thread (the pipeline's abort path closes every
  /// ring at once).
  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Number of push() calls that had to wait for space at least once.
  std::uint64_t push_stalls() const {
    return push_stalls_.load(std::memory_order_relaxed);
  }
  /// Number of pop() calls that had to wait for an item at least once.
  std::uint64_t pop_stalls() const {
    return pop_stalls_.load(std::memory_order_relaxed);
  }
  /// Highest occupancy ever observed right after a push.
  std::uint64_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  void publish(std::uint64_t tail) {
    tail_.store(tail + 1, std::memory_order_release);
    const std::uint64_t occ =
        tail + 1 - head_.load(std::memory_order_acquire);
    std::uint64_t hw = high_water_.load(std::memory_order_relaxed);
    while (occ > hw && !high_water_.compare_exchange_weak(
                           hw, occ, std::memory_order_relaxed)) {
    }
  }

  static void backoff(std::uint64_t spins) {
    // Brief hot spin, then yield; after ~a scheduling quantum of yields,
    // sleep so a stalled stage does not starve the working one on
    // low-core-count hosts.
    if (spins < 16) return;
    if (spins < 2048) {
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  const std::size_t cap_;
  std::vector<T> slots_;
  std::atomic<std::uint64_t> head_{0};  ///< next slot to pop (consumer)
  std::atomic<std::uint64_t> tail_{0};  ///< next slot to fill (producer)
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> push_stalls_{0};
  std::atomic<std::uint64_t> pop_stalls_{0};
  std::atomic<std::uint64_t> high_water_{0};
};

}  // namespace plfsr
