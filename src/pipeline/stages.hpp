// Stage adapters over the existing kernels — scrambler, spreader, any
// CRC engine behind the unified LinearEngine contract — plus the
// terminal sinks. The kernels plug in unmodified: the CRC adapters take
// a type-erased CrcEngineHandle (crc/engine.hpp), so one FcsStage /
// VerifySink implementation serves every engine in the EngineRegistry
// (the handle's virtual boundary is per frame-buffer, never per byte).
// The scrambler/spreader adapters re-derive their LFSR state per frame
// (frame-synchronous operation, as 802.11 scrambles each PPDU from a
// fresh seed), which keeps every stage frame-local and the pipelined run
// bit-exact with the serial one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "crc/engine.hpp"
#include "gf2/gf2_poly.hpp"
#include "pipeline/stage.hpp"
#include "scrambler/block_scrambler.hpp"
#include "scrambler/spreader.hpp"

namespace plfsr {

/// Frame-synchronous additive scrambler stage. Every frame is scrambled
/// from the same seed (the 802.11 per-PPDU convention), which makes the
/// per-frame keystream a *fixed* byte pattern — so the stage keeps a
/// keystream prefix cache and scrambling a frame is one word-wide XOR
/// sweep at memcpy-class speed, no LFSR stepping on the frame path at
/// all. The cache grows geometrically (power-of-two, floor 4 KiB) and is
/// filled by the word-parallel BlockScrambler, so extension work is
/// amortized O(1) per byte ever scrambled. (An earlier design's cache
/// was removed because it grew by exact high-water mark *and* refilled
/// with the bit-serial generator — creeping frame sizes paid thousands
/// of full serial regenerations. Geometric growth plus the 64-bit block
/// generator removes both failure modes; the block_steps() bound in
/// tests/pipeline_test.cpp pins the work stays linear.)
/// Applying the stage twice restores the input (additive = involution).
class ScrambleStage : public Stage {
 public:
  ScrambleStage(const Gf2Poly& g, std::uint64_t seed);

  const char* name() const override { return "scramble"; }
  void process(FrameBatch& batch) override;

  /// Scramble one body in place through its span view (shared with the
  /// serial reference; a FrameBuf passes directly).
  void apply(std::span<std::uint8_t> bytes);

  /// The word-parallel engine (tests read its work counters).
  const BlockScrambler& scrambler() const { return scr_; }

  /// Current keystream cache size in bytes (tests pin the growth policy).
  std::size_t cached_keystream_bytes() const { return key_.size(); }

 private:
  void grow_cache(std::size_t nbytes);

  BlockScrambler scr_;
  std::vector<std::uint8_t> key_;  // keystream prefix from the seed
};

/// Direct-sequence spreading stage: each frame body is expanded bit -> C
/// chips against the stage's LFSR sequence (reseeded per frame). A frame
/// of n payload bits becomes n*C chips; Frame::bits carries the true chip
/// count so the despreader can strip the byte-packing pad.
class SpreadStage : public Stage {
 public:
  SpreadStage(const Gf2Poly& g, std::uint64_t seed, std::size_t chips_per_bit);

  const char* name() const override { return "spread"; }
  void process(FrameBatch& batch) override;

 private:
  Spreader spreader_;
  std::uint64_t seed_;
};

/// Inverse of SpreadStage: majority-vote despreading, reseeded per frame
/// with the same seed so spread -> despread round-trips bit-exactly. Only
/// Frame::bit_size() chips are decoded — the zero padding that
/// to_bytes_lsb_first adds when C does not divide the packed bit count
/// would otherwise decode into spurious trailing bits and grow the frame.
class DespreadStage : public Stage {
 public:
  DespreadStage(const Gf2Poly& g, std::uint64_t seed,
                std::size_t chips_per_bit);

  const char* name() const override { return "despread"; }
  void process(FrameBatch& batch) override;

 private:
  Spreader spreader_;
  std::uint64_t seed_;
};

/// Frame-check-sequence stage over any LinearEngine (type-erased behind
/// CrcEngineHandle — registry engines, ParallelCrc, ad-hoc wraps all
/// qualify). Records the finalized CRC of each frame body into
/// Frame::crc.
class FcsStage : public Stage {
 public:
  explicit FcsStage(CrcEngineHandle engine) : engine_(std::move(engine)) {}

  template <typename Engine>
    requires(LinearEngine<std::remove_cvref_t<Engine>> &&
             !std::same_as<std::remove_cvref_t<Engine>, CrcEngineHandle>)
  explicit FcsStage(Engine&& engine)
      : engine_(CrcEngineHandle(std::forward<Engine>(engine))) {}

  const char* name() const override { return "crc"; }

  /// One compute_many per ring slot: the batch-of-frames the ring
  /// already carries maps 1:1 onto the engine's batch API, so a batch of
  /// short frames rides the interleaved kernel instead of paying one
  /// latency chain per frame.
  void process(FrameBatch& batch) override {
    views_.clear();
    for (const Frame& f : batch) views_.emplace_back(f.bytes);
    crcs_.resize(batch.size());
    engine_.compute_many(views_, crcs_);
    for (std::size_t i = 0; i < batch.size(); ++i) batch[i].crc = crcs_[i];
  }

  const CrcEngineHandle& engine() const { return engine_; }

 private:
  CrcEngineHandle engine_;
  // Stage-local scratch (process() runs on the stage's own thread).
  std::vector<FrameView> views_;
  std::vector<std::uint64_t> crcs_;
};

/// Terminal stage: re-derives the FCS of every `stride`-th frame with an
/// independent reference engine and counts mismatches — the pipeline's
/// on-line functional check (stride 1 = verify everything, as the tests
/// do; the bench spot-checks). Counters are read after Pipeline::wait().
///
/// The sink *consumes* frames: the batch is cleared after checking, and
/// dropping each frame's descriptor is the whole recycle path — an
/// arena-acquired buffer returns to its pool right here, so a producer
/// acquiring from the same arena recycles instead of allocating (and a
/// bounded arena backpressures it end to end) with the sink knowing
/// nothing about the arena at all.
class VerifySink : public Stage {
 public:
  explicit VerifySink(CrcEngineHandle ref, std::uint64_t stride = 1)
      : ref_(std::move(ref)), stride_(stride == 0 ? 1 : stride) {}

  template <typename Engine>
    requires(LinearEngine<std::remove_cvref_t<Engine>> &&
             !std::same_as<std::remove_cvref_t<Engine>, CrcEngineHandle>)
  explicit VerifySink(Engine&& ref, std::uint64_t stride = 1)
      : VerifySink(CrcEngineHandle(std::forward<Engine>(ref)), stride) {}

  const char* name() const override { return "verify"; }

  /// Re-derives the checked frames' FCS in one batch per ring slot —
  /// the reference engine gets the same interleaving the FcsStage under
  /// test does, so verification keeps up with a batched producer.
  void process(FrameBatch& batch) override {
    views_.clear();
    checked_idx_.clear();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ++frames_;
      bytes_ += batch[i].bytes.size();
      if (batch[i].id % stride_ != 0) continue;
      views_.emplace_back(batch[i].bytes);
      checked_idx_.push_back(i);
    }
    if (!views_.empty()) {
      checked_ += views_.size();
      crcs_.resize(views_.size());
      ref_.compute_many(views_, crcs_);
      for (std::size_t j = 0; j < checked_idx_.size(); ++j)
        if (crcs_[j] != batch[checked_idx_[j]].crc) ++mismatches_;
    }
    // Descriptor drop IS the recycle: clearing the batch destroys every
    // FrameBuf, and each arena-backed one returns to its pool.
    batch.clear();
  }

  std::uint64_t frames() const { return frames_; }
  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t checked() const { return checked_; }
  std::uint64_t mismatches() const { return mismatches_; }
  bool ok() const { return mismatches_ == 0; }

 private:
  CrcEngineHandle ref_;
  std::uint64_t stride_;
  std::uint64_t frames_ = 0, bytes_ = 0, checked_ = 0, mismatches_ = 0;
  // Stage-local scratch (process() runs on the stage's own thread).
  std::vector<FrameView> views_;
  std::vector<std::size_t> checked_idx_;
  std::vector<std::uint64_t> crcs_;
};

/// Terminal stage that keeps every frame — the tests' window into the
/// pipeline's exact output. frames() is safe to read after wait().
class CollectSink : public Stage {
 public:
  const char* name() const override { return "collect"; }

  void process(FrameBatch& batch) override {
    for (Frame& f : batch) out_.push_back(std::move(f));
    batch.clear();
  }

  const std::vector<Frame>& frames() const { return out_; }

  /// Move the collected frames out (and reset for the next run) — how a
  /// request/reply caller of a cached fused pipeline harvests its frame
  /// without copying the payload.
  std::vector<Frame> take() {
    std::vector<Frame> out;
    out.swap(out_);
    return out;
  }

 private:
  std::vector<Frame> out_;
};

}  // namespace plfsr
