#include "offload/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "support/frame_buf.hpp"
#include "support/host_threads.hpp"
#include "support/thread_pool.hpp"

namespace plfsr::offload {

using Clock = std::chrono::steady_clock;

/// Per-connection state. Owned by the event thread; while `busy` a pool
/// worker additionally touches the socket (reply write) and `broken` —
/// the connection is out of the poll set for that whole window, so the
/// two threads never race on the read-side fields.
struct OffloadServer::Conn {
  Socket sock;
  std::vector<std::uint8_t> hdr;  // partial length prefix (< 4 bytes)
  FrameBuf body;      // partial body (arena descriptor, size = bytes read)
  FrameBuf inflight;  // body handed to the worker (ThreadPool's task type
                      // must be copyable, so the move-only descriptor
                      // rides on the Conn — safe: the connection is out
                      // of the poll set for the whole busy window)
  std::uint32_t body_len = 0;
  bool have_len = false;
  std::uint64_t discard_left = 0;  // > 0: draining an over-cap body
  std::uint8_t discard_op = 0;     // first drained byte = op (echo)
  bool discard_op_set = false;
  bool busy = false;
  std::atomic<bool> broken{false};  // worker-side write failure
  Clock::time_point last_rx = Clock::now();

  bool mid_frame() const {
    return have_len || !hdr.empty() || discard_left > 0;
  }
  void reset_frame() {
    hdr.clear();
    body.clear();
    body_len = 0;
    have_len = false;
    discard_left = 0;
    discard_op_set = false;
  }
};

struct OffloadServer::Impl {
  Socket listener;
  int wake_rd = -1;  // self-pipe: workers wake the event thread
  int wake_wr = -1;
  std::map<int, std::unique_ptr<Conn>> conns;  // keyed by fd
  std::mutex rearm_mu;
  std::deque<Conn*> rearm;

  ~Impl() {
    if (wake_rd >= 0) ::close(wake_rd);
    if (wake_wr >= 0) ::close(wake_wr);
  }
};

OffloadServer::OffloadServer(ServerOptions opts)
    : opts_(opts), impl_(std::make_unique<Impl>()) {}

OffloadServer::~OffloadServer() { stop(); }

bool OffloadServer::start() {
  if (started_) return true;
  impl_->listener = listen_tcp(opts_.port, opts_.backlog);
  if (!impl_->listener.valid()) return false;
  port_ = local_port(impl_->listener.fd());
  int pipefd[2];
  if (::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) != 0) {
    impl_->listener.reset();
    return false;
  }
  impl_->wake_rd = pipefd[0];
  impl_->wake_wr = pipefd[1];
  set_nonblocking(impl_->listener.fd(), true);
  pool_ = std::make_unique<ThreadPool>(
      opts_.workers == 0 ? host_threads() : opts_.workers);
  thread_ = std::thread([this] { run(); });
  started_ = true;
  return true;
}

void OffloadServer::stop() {
  if (!started_) return;
  stopping_.store(true);
  // Wake the event thread; it drains (answers every frame already
  // received) and exits.
  const char b = 0;
  [[maybe_unused]] ssize_t rc = ::write(impl_->wake_wr, &b, 1);
  if (!joined_.exchange(true)) thread_.join();
  pool_.reset();  // joins workers (all tasks already re-armed)
}

void OffloadServer::rearm(Conn* c) {
  {
    std::lock_guard<std::mutex> lock(impl_->rearm_mu);
    impl_->rearm.push_back(c);
  }
  const char b = 0;
  [[maybe_unused]] ssize_t rc = ::write(impl_->wake_wr, &b, 1);
}

void OffloadServer::work(Conn* c, Status pre_status) {
  // Take ownership of the request body; when it drops at the end of this
  // function its storage recycles through the server arena.
  FrameBuf body = std::move(c->inflight);
  WireReply rep;
  if (pre_status != Status::kOk) {
    // Transport-level refusal (over-cap frame) decided by the event
    // thread; the body was drained, only the op byte survives.
    rep.status = pre_status;
    rep.op = static_cast<Op>(body.empty() ? 0 : body[0]);
  } else {
    RequestView view;
    const Status st = decode_request_view(body.span(), view);
    if (st == Status::kOk)
      rep = dispatcher_.execute(view);
    else
      rep = WireReply{st, view.op, 0, {}};
  }
  if (rep.status != Status::kOk) error_replies_.fetch_add(1);
  // Gather write: the 16-byte header plus the payload straight from the
  // reply descriptor — no concatenated wire buffer.
  const std::vector<std::uint8_t> hdr = encode_response_header(
      rep.status, rep.op, rep.result, rep.payload.size());
  const ConstBuf bufs[] = {{hdr.data(), hdr.size()},
                           {rep.payload.data(), rep.payload.size()}};
  if (write_full_vec(c->sock.fd(), bufs, opts_.write_timeout_ms) !=
      IoResult::kOk)
    c->broken.store(true);
  frames_.fetch_add(1);
  rearm(c);
}

void OffloadServer::run() {
  auto& conns = impl_->conns;
  std::vector<struct pollfd> pfds;
  std::vector<int> to_close;
  std::uint8_t scratch[4096];
  std::size_t busy_count = 0;

  // Hand a complete frame (or a transport refusal) to the pool. The
  // connection leaves the poll set until the worker re-arms it, which
  // both bounds per-connection memory to one frame and keeps replies in
  // request order.
  const auto submit = [&](Conn* c, FrameBuf body, Status pre) {
    c->reset_frame();
    c->inflight = std::move(body);
    c->busy = true;
    ++busy_count;
    pool_->submit([this, c, pre] { work(c, pre); });
  };

  // Pump one connection's read side. Reads never cross the current
  // frame's boundary (recv is capped at the bytes the phase still
  // needs), so pipelined requests wait in the kernel buffer and POLLIN
  // stays level-triggered-correct. Returns false when the connection
  // must close (EOF / hard error mid-stream).
  const auto pump = [&](Conn* c) -> bool {
    for (;;) {
      if (c->busy) return true;  // frame handed off this iteration
      std::size_t want;
      std::uint8_t* dst;
      if (c->discard_left > 0) {
        want = c->discard_left < sizeof(scratch)
                   ? static_cast<std::size_t>(c->discard_left)
                   : sizeof(scratch);
        dst = scratch;
      } else if (!c->have_len) {
        want = kLenBytes - c->hdr.size();
        dst = scratch;
      } else {
        const std::size_t got = c->body.size();
        want = c->body_len - got;
        if (want == 0) {  // zero-length body: complete already
          submit(c, FrameBuf{}, Status::kOk);
          return true;
        }
        // resize stays within the capacity acquired when the length
        // prefix completed — no reallocation mid-frame.
        c->body.resize(c->body_len);
        dst = c->body.data() + got;
      }
      const ssize_t rc = ::recv(c->sock.fd(), dst, want, 0);
      if (rc == 0) return false;  // EOF
      if (rc < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        return false;
      }
      c->last_rx = Clock::now();
      const auto n = static_cast<std::size_t>(rc);
      if (c->discard_left > 0) {
        if (!c->discard_op_set) {
          c->discard_op = scratch[0];
          c->discard_op_set = true;
        }
        c->discard_left -= n;
        if (c->discard_left == 0)
          submit(c, FrameBuf(std::vector<std::uint8_t>{c->discard_op}),
                 Status::kFrameTooLarge);
      } else if (!c->have_len) {
        c->hdr.insert(c->hdr.end(), scratch, scratch + n);
        if (c->hdr.size() == kLenBytes) {
          c->body_len = static_cast<std::uint32_t>(
              c->hdr[0] | (c->hdr[1] << 8) | (c->hdr[2] << 16) |
              (static_cast<std::uint32_t>(c->hdr[3]) << 24));
          c->have_len = true;
          c->hdr.clear();
          if (c->body_len > opts_.max_frame) {
            // Drain the declared body to keep the stream in sync, then
            // refuse it — the connection survives its own mistake.
            c->discard_left = c->body_len;
            c->have_len = false;
          } else if (c->body_len > 0) {
            // Acquire the whole body up front from the arena (steady
            // state a recycled descriptor, not an allocation), then
            // track arrival progress through the descriptor's size.
            arena_.acquire(c->body, c->body_len);
            c->body.resize(0);
          }
        }
      } else {
        // recv wrote into body directly; trim to what actually arrived.
        c->body.resize(c->body.size() - (want - n));
        if (c->body.size() == c->body_len) submit(c, std::move(c->body),
                                                  Status::kOk);
      }
    }
  };

  const auto process_rearms = [&] {
    std::deque<Conn*> ready;
    {
      std::lock_guard<std::mutex> lock(impl_->rearm_mu);
      ready.swap(impl_->rearm);
    }
    for (Conn* c : ready) {
      c->busy = false;
      --busy_count;
      if (c->broken.load()) {
        to_close.push_back(c->sock.fd());
      } else if (stopping_.load() && !pump(c)) {
        // Draining: answer any further frames the kernel already
        // buffered before the connection goes away.
        to_close.push_back(c->sock.fd());
      }
    }
  };

  const auto accept_all = [&] {
    for (;;) {
      const int cfd = ::accept4(impl_->listener.fd(), nullptr, nullptr,
                                SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (cfd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN or transient accept failure
      }
      set_nodelay(cfd, true);
      auto c = std::make_unique<Conn>();
      c->sock = Socket(cfd);
      conns.emplace(cfd, std::move(c));
      accepted_.fetch_add(1);
    }
  };

  bool drain_pumped = false;
  for (;;) {
    if (stopping_.load()) {
      if (!drain_pumped) {
        // One sweep: first collect connections still sitting in the
        // accept backlog (their frames were delivered before stop()),
        // then pump every idle connection — frames already buffered get
        // their reply, and pump reads only what has arrived (EAGAIN
        // ends it), so new traffic cannot extend the drain.
        drain_pumped = true;
        accept_all();
        for (auto it = conns.begin(); it != conns.end();) {
          Conn* c = it->second.get();
          if (!c->busy && !pump(c))
            it = conns.erase(it);
          else
            ++it;
        }
      }
      // The drain finishes once every in-flight frame is answered.
      if (busy_count == 0) break;
    }

    pfds.clear();
    pfds.push_back({impl_->wake_rd, POLLIN, 0});
    if (!stopping_.load())
      pfds.push_back({impl_->listener.fd(), POLLIN, 0});
    int timeout = -1;
    const Clock::time_point now = Clock::now();
    for (auto& [fd, c] : conns) {
      if (c->busy) continue;
      if (!stopping_.load()) pfds.push_back({fd, POLLIN, 0});
      if (opts_.read_timeout_ms > 0 && c->mid_frame()) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            c->last_rx + std::chrono::milliseconds(opts_.read_timeout_ms) -
            now);
        const int ms = left.count() < 0 ? 0 : static_cast<int>(left.count());
        if (timeout < 0 || ms < timeout) timeout = ms;
      }
    }
    if (stopping_.load() && timeout < 0) timeout = 50;  // re-check drain

    const int rc = ::poll(pfds.data(), pfds.size(), timeout);
    if (rc < 0 && errno != EINTR) break;

    to_close.clear();
    process_rearms();

    if (rc > 0) {
      for (const struct pollfd& p : pfds) {
        if ((p.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        if (p.fd == impl_->wake_rd) {
          while (::read(impl_->wake_rd, scratch, sizeof(scratch)) > 0) {
          }
          process_rearms();
        } else if (p.fd == impl_->listener.fd()) {
          accept_all();
        } else {
          const auto it = conns.find(p.fd);
          if (it != conns.end() && !it->second->busy &&
              !pump(it->second.get()))
            to_close.push_back(p.fd);
        }
      }
    }

    // Mid-frame stall reaping (a half-sent frame cannot be answered;
    // idle-between-frames connections are never reaped).
    if (opts_.read_timeout_ms > 0) {
      const Clock::time_point reap_now = Clock::now();
      for (auto& [fd, c] : conns) {
        if (c->busy || !c->mid_frame()) continue;
        if (reap_now - c->last_rx >=
            std::chrono::milliseconds(opts_.read_timeout_ms))
          to_close.push_back(fd);
      }
    }

    for (const int fd : to_close) {
      const auto it = conns.find(fd);
      if (it != conns.end() && !it->second->busy) conns.erase(it);
    }
  }

  // Drained: every accepted frame is answered; close what remains.
  conns.clear();
  impl_->listener.reset();
}

}  // namespace plfsr::offload
