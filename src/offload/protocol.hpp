// Wire protocol of the LFSR offload service.
//
// The paper's PiCoGA is an *offload engine*: the processor hands a block
// of bytes across a boundary, the array runs the LFSR-heavy loop at line
// rate, and a result comes back. This header is that boundary as a wire
// format — a length-prefixed binary frame carrying one operation (CRC,
// scramble, FEC encode/decode) over one payload, the byte-block
// transport geometry of Tsaban–Vishne's word-oriented LFSR framing: the
// unit of exchange is a block of bytes, never a bit stream.
//
// Request frame (all integers little-endian):
//
//   u32  body_len            bytes after this field; bounded by the
//                            server's max-frame cap
//   u8   op                  Op below
//   u8   name_len            length of the spec name that follows
//   u16  flags               reserved, must be 0
//   u64  param               op-specific (scramble: the LFSR seed)
//   ...  name                name_len bytes, a catalogue spec name —
//                            "CRC-32/ETHERNET", "802.11 (x7+x4+1)",
//                            "RS(204,188)", ... (what the dispatcher's
//                            name tables list)
//   ...  payload             body_len - 12 - name_len bytes
//
// Response frame:
//
//   u32  body_len
//   u8   status              Status below (kOk or the error class)
//   u8   op                  echo of the request op
//   u16  reserved            0
//   u64  result              op-specific: CRC value; FEC decode's
//                            corrected/failed counts (see result_*
//                            helpers); payload size for ping
//   ...  payload             scramble/FEC: the transformed bytes;
//                            CRC: empty; error replies: empty
//
// Multi-op requests (op = kPipeline): the outer name is empty and the
// payload opens with a chain header — the serial composition the client
// would otherwise issue as N round trips, executed server-side through
// one fused pipeline pass over one buffer:
//
//   u8   op_count            1..kMaxPipelineOps chained ops
//   op_count times:
//     u8   op                kCrc / kScramble / kFecEncode / kFecDecode
//     u8   name_len
//     u16  reserved          must be 0
//     u64  param             op-specific (scramble seed, ...)
//     ...  name              name_len bytes
//   ...  payload             the data the chain transforms, in order
//
// The reply payload is the fully transformed data; result is the CRC
// recorded by the *last* kCrc op in the chain (0 if none). A malformed
// chain (empty, too long, truncated mid-header, reserved bits set) is
// kBadFrame; a non-chainable op byte (kPing, nested kPipeline, anything
// unknown) is kUnknownOp — in every case an error reply, never a
// disconnect.
//
// Error handling is part of the protocol, not an afterthought: every
// malformed body (short header, inconsistent name_len, nonzero reserved
// flags, unknown op or name, a payload the op cannot accept) produces an
// *error reply* on the same connection, which stays usable — the server
// never answers garbage with a disconnect. The sole transport-level
// escape is a frame larger than the negotiated cap, which the server
// drains and refuses with kFrameTooLarge, keeping the stream in sync.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace plfsr::offload {

/// Operation selector of a request frame.
enum class Op : std::uint8_t {
  kPing = 0,       ///< echo the payload (liveness / latency floor)
  kCrc = 1,        ///< result = CRC of payload under the named spec
  kScramble = 2,   ///< payload XOR keystream(name, seed=param) from bit 0
  kFecEncode = 3,  ///< payload -> blocks of data||parity (named FEC spec)
  kFecDecode = 4,  ///< inverse of kFecEncode; corrects in flight
  kPipeline = 5,   ///< ordered op chain over one payload, one round trip
                   ///< (see the multi-op sub-format below)
};

/// Reply status. kOk carries results; everything else is an error reply
/// with an empty payload.
enum class Status : std::uint8_t {
  kOk = 0,
  kBadFrame = 1,       ///< body too short / inconsistent / reserved bits set
  kFrameTooLarge = 2,  ///< declared body_len exceeds the server's cap
  kUnknownOp = 3,      ///< op byte outside the table above
  kUnknownName = 4,    ///< spec name not in the dispatcher's catalogue
  kBadPayload = 5,     ///< payload invalid for the op (e.g. not an encoded
                       ///< length for kFecDecode, zero scramble seed)
  kInternal = 6,       ///< server-side failure; connection stays up
  kShuttingDown = 7,   ///< server is draining; retry elsewhere
};

/// Bytes of the leading length prefix.
inline constexpr std::size_t kLenBytes = 4;
/// Fixed request/response body bytes before name/payload.
inline constexpr std::size_t kFixedBodyBytes = 12;
/// Default max body_len a server accepts (1 MiB + protocol overhead —
/// comfortably above the 64 KiB jumbo-payload class the benches sweep).
inline constexpr std::size_t kDefaultMaxFrame = (1u << 20) + 512;
/// Longest op chain a kPipeline request may carry.
inline constexpr std::size_t kMaxPipelineOps = 8;
/// Per-op header bytes inside a kPipeline chain (mirrors the fixed body).
inline constexpr std::size_t kPipelineOpBytes = 12;

/// One decoded request.
struct Request {
  Op op = Op::kPing;
  std::uint16_t flags = 0;
  std::uint64_t param = 0;
  std::string name;
  std::vector<std::uint8_t> payload;
};

/// One decoded response.
struct Response {
  Status status = Status::kOk;
  Op op = Op::kPing;
  std::uint64_t result = 0;
  std::vector<std::uint8_t> payload;
};

/// Zero-copy view of a request body: name and payload borrow the body
/// buffer (keep it alive while the view is in use). This is what the
/// server worker decodes — the payload bytes are never copied into a
/// Request just to be read once by the dispatcher.
struct RequestView {
  Op op = Op::kPing;
  std::uint16_t flags = 0;
  std::uint64_t param = 0;
  std::string_view name;
  std::span<const std::uint8_t> payload;
};

/// One link of a kPipeline chain.
struct PipelineOp {
  Op op = Op::kCrc;
  std::uint64_t param = 0;
  std::string name;
};

/// Serialize (length prefix included).
std::vector<std::uint8_t> encode_request(const Request& req);
std::vector<std::uint8_t> encode_response(const Response& resp);

/// The length prefix + fixed response body announcing `payload_len`
/// payload bytes to follow — the worker writes this header and then the
/// payload straight from its frame descriptor (gather write, no
/// concatenated copy). encode_response == header + payload.
std::vector<std::uint8_t> encode_response_header(Status status, Op op,
                                                 std::uint64_t result,
                                                 std::size_t payload_len);

/// Build a kPipeline request: `ops` applied in order to `payload`.
Request make_pipeline_request(const std::vector<PipelineOp>& ops,
                              std::vector<std::uint8_t> payload);

/// Parse a request *body* (the bytes after the length prefix; the
/// transport already enforced the cap and read exactly body_len bytes).
/// Returns kOk and fills `out`, or the error Status describing why the
/// body is unusable (`out` then holds at least the op byte when one was
/// readable, so the error reply can echo it).
Status decode_request_body(std::span<const std::uint8_t> body, Request& out);

/// Zero-copy variant of decode_request_body: `out` borrows `body`.
Status decode_request_view(std::span<const std::uint8_t> body,
                           RequestView& out);

/// Parse a kPipeline request's payload into its op chain and the data
/// the chain transforms (`data` borrows `payload`). Structural errors
/// (empty/oversized chain, headers or names overflowing the payload,
/// reserved bits set) return kBadFrame; a chain link whose op cannot be
/// chained (kPing, nested kPipeline, unknown bytes) returns kUnknownOp.
Status decode_pipeline_ops(std::span<const std::uint8_t> payload,
                           std::vector<PipelineOp>& ops,
                           std::span<const std::uint8_t>& data);

/// Parse a response body. False when structurally invalid.
bool decode_response_body(std::span<const std::uint8_t> body, Response& out);

/// FEC-decode result word: corrected symbol/bit count in the low 32
/// bits, failed (beyond-radius) block count in the next 16.
std::uint64_t make_fec_result(std::uint64_t corrected,
                              std::uint64_t failed_blocks);
std::uint32_t fec_result_corrected(std::uint64_t result);
std::uint16_t fec_result_failed_blocks(std::uint64_t result);

/// Stable display name of a status ("ok", "bad-frame", ...).
const char* status_name(Status s);

}  // namespace plfsr::offload
