#include "offload/protocol.hpp"

namespace plfsr::offload {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_request(const Request& req) {
  const std::size_t body =
      kFixedBodyBytes + req.name.size() + req.payload.size();
  std::vector<std::uint8_t> out;
  out.reserve(kLenBytes + body);
  put_u32(out, static_cast<std::uint32_t>(body));
  out.push_back(static_cast<std::uint8_t>(req.op));
  out.push_back(static_cast<std::uint8_t>(req.name.size()));
  put_u16(out, req.flags);
  put_u64(out, req.param);
  out.insert(out.end(), req.name.begin(), req.name.end());
  out.insert(out.end(), req.payload.begin(), req.payload.end());
  return out;
}

std::vector<std::uint8_t> encode_response_header(Status status, Op op,
                                                 std::uint64_t result,
                                                 std::size_t payload_len) {
  std::vector<std::uint8_t> out;
  out.reserve(kLenBytes + kFixedBodyBytes);
  put_u32(out, static_cast<std::uint32_t>(kFixedBodyBytes + payload_len));
  out.push_back(static_cast<std::uint8_t>(status));
  out.push_back(static_cast<std::uint8_t>(op));
  put_u16(out, 0);
  put_u64(out, result);
  return out;
}

std::vector<std::uint8_t> encode_response(const Response& resp) {
  std::vector<std::uint8_t> out = encode_response_header(
      resp.status, resp.op, resp.result, resp.payload.size());
  out.insert(out.end(), resp.payload.begin(), resp.payload.end());
  return out;
}

Request make_pipeline_request(const std::vector<PipelineOp>& ops,
                              std::vector<std::uint8_t> payload) {
  Request req;
  req.op = Op::kPipeline;
  std::vector<std::uint8_t> chain;
  chain.push_back(static_cast<std::uint8_t>(ops.size()));
  for (const PipelineOp& o : ops) {
    chain.push_back(static_cast<std::uint8_t>(o.op));
    chain.push_back(static_cast<std::uint8_t>(o.name.size()));
    put_u16(chain, 0);
    put_u64(chain, o.param);
    chain.insert(chain.end(), o.name.begin(), o.name.end());
  }
  chain.insert(chain.end(), payload.begin(), payload.end());
  req.payload = std::move(chain);
  return req;
}

Status decode_request_view(std::span<const std::uint8_t> body,
                           RequestView& out) {
  out = RequestView{};
  if (!body.empty()) out.op = static_cast<Op>(body[0]);  // best-effort echo
  if (body.size() < kFixedBodyBytes) return Status::kBadFrame;
  const std::uint8_t op = body[0];
  const std::size_t name_len = body[1];
  out.flags = get_u16(body.data() + 2);
  out.param = get_u64(body.data() + 4);
  if (op > static_cast<std::uint8_t>(Op::kPipeline))
    return Status::kUnknownOp;
  // Reserved bits must round-trip as zero so they can ever mean
  // something: a client setting them speaks a future dialect.
  if (out.flags != 0) return Status::kBadFrame;
  // The name must fit inside the body the length prefix declared — a
  // name_len pointing past the end is the classic truncated/corrupt
  // header shape.
  if (kFixedBodyBytes + name_len > body.size()) return Status::kBadFrame;
  out.op = static_cast<Op>(op);
  out.name = std::string_view(
      reinterpret_cast<const char*>(body.data()) + kFixedBodyBytes, name_len);
  out.payload = body.subspan(kFixedBodyBytes + name_len);
  return Status::kOk;
}

Status decode_request_body(std::span<const std::uint8_t> body, Request& out) {
  RequestView view;
  const Status st = decode_request_view(body, view);
  out = Request{};
  out.op = view.op;
  out.flags = view.flags;
  out.param = view.param;
  if (st != Status::kOk) return st;
  out.name.assign(view.name);
  out.payload.assign(view.payload.begin(), view.payload.end());
  return Status::kOk;
}

Status decode_pipeline_ops(std::span<const std::uint8_t> payload,
                           std::vector<PipelineOp>& ops,
                           std::span<const std::uint8_t>& data) {
  ops.clear();
  data = {};
  if (payload.empty()) return Status::kBadFrame;
  const std::size_t count = payload[0];
  if (count == 0 || count > kMaxPipelineOps) return Status::kBadFrame;
  std::size_t off = 1;
  for (std::size_t i = 0; i < count; ++i) {
    // Every length is checked against what the payload actually holds —
    // a name_len (or a chain of them) pointing past the end is the
    // cross-op overflow shape the fuzz corpus probes.
    if (off + kPipelineOpBytes > payload.size()) return Status::kBadFrame;
    PipelineOp o;
    const std::uint8_t op = payload[off];
    const std::size_t name_len = payload[off + 1];
    if (get_u16(payload.data() + off + 2) != 0) return Status::kBadFrame;
    o.param = get_u64(payload.data() + off + 4);
    off += kPipelineOpBytes;
    if (off + name_len > payload.size()) return Status::kBadFrame;
    // Only transform ops chain: a ping adds nothing and a nested
    // pipeline is a loop waiting to happen.
    if (op < static_cast<std::uint8_t>(Op::kCrc) ||
        op > static_cast<std::uint8_t>(Op::kFecDecode))
      return Status::kUnknownOp;
    o.op = static_cast<Op>(op);
    o.name.assign(reinterpret_cast<const char*>(payload.data()) + off,
                  name_len);
    off += name_len;
    ops.push_back(std::move(o));
  }
  data = payload.subspan(off);
  return Status::kOk;
}

bool decode_response_body(std::span<const std::uint8_t> body, Response& out) {
  if (body.size() < kFixedBodyBytes) return false;
  out.status = static_cast<Status>(body[0]);
  out.op = static_cast<Op>(body[1]);
  out.result = get_u64(body.data() + 4);
  out.payload.assign(body.begin() + kFixedBodyBytes, body.end());
  return true;
}

std::uint64_t make_fec_result(std::uint64_t corrected,
                              std::uint64_t failed_blocks) {
  if (corrected > 0xFFFFFFFFull) corrected = 0xFFFFFFFFull;
  if (failed_blocks > 0xFFFFull) failed_blocks = 0xFFFFull;
  return corrected | (failed_blocks << 32);
}

std::uint32_t fec_result_corrected(std::uint64_t result) {
  return static_cast<std::uint32_t>(result);
}

std::uint16_t fec_result_failed_blocks(std::uint64_t result) {
  return static_cast<std::uint16_t>(result >> 32);
}

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kBadFrame: return "bad-frame";
    case Status::kFrameTooLarge: return "frame-too-large";
    case Status::kUnknownOp: return "unknown-op";
    case Status::kUnknownName: return "unknown-name";
    case Status::kBadPayload: return "bad-payload";
    case Status::kInternal: return "internal-error";
    case Status::kShuttingDown: return "shutting-down";
  }
  return "unknown-status";
}

}  // namespace plfsr::offload
