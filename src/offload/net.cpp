#include "offload/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace plfsr::offload {

namespace {

using Clock = std::chrono::steady_clock;

/// Absolute deadline for a whole transfer; max() = no deadline.
Clock::time_point deadline_from(int timeout_ms) {
  if (timeout_ms <= 0) return Clock::time_point::max();
  return Clock::now() + std::chrono::milliseconds(timeout_ms);
}

/// Milliseconds left before `deadline` (>= 0), or -1 for "forever".
int ms_left(Clock::time_point deadline) {
  if (deadline == Clock::time_point::max()) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() < 0 ? 0 : static_cast<int>(left.count());
}

/// Park `fd` until readable/writable or the deadline passes. Returns
/// kOk to retry the transfer, kTimeout, or kError.
IoResult wait_for(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    const int left = ms_left(deadline);
    if (left == 0) return IoResult::kTimeout;
    struct pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int rc = ::poll(&pfd, 1, left);
    if (rc > 0) return IoResult::kOk;  // ready (or error — surfaces in io)
    if (rc == 0) return IoResult::kTimeout;
    if (errno == EINTR) continue;
    return IoResult::kError;
  }
}

}  // namespace

IoResult read_full(int fd, void* buf, std::size_t n, int timeout_ms) {
  const auto deadline = deadline_from(timeout_ms);
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t rc = ::recv(fd, p + done, n - done, 0);
    if (rc > 0) {
      done += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) return IoResult::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const IoResult w = wait_for(fd, POLLIN, deadline);
      if (w != IoResult::kOk) return w;
      continue;
    }
    return IoResult::kError;
  }
  return IoResult::kOk;
}

IoResult write_full(int fd, const void* buf, std::size_t n, int timeout_ms) {
  const auto deadline = deadline_from(timeout_ms);
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t rc = ::send(fd, p + done, n - done, MSG_NOSIGNAL);
    if (rc > 0) {
      done += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const IoResult w = wait_for(fd, POLLOUT, deadline);
      if (w != IoResult::kOk) return w;
      continue;
    }
    return IoResult::kError;  // includes EPIPE: peer is gone
  }
  return IoResult::kOk;
}

IoResult write_full_vec(int fd, std::span<const ConstBuf> bufs,
                        int timeout_ms) {
  const auto deadline = deadline_from(timeout_ms);
  // Mutable iovec copy; advanced in place as bytes drain.
  struct iovec iov[8];
  std::size_t niov = 0;
  for (const ConstBuf& b : bufs) {
    if (b.len == 0) continue;
    if (niov == sizeof(iov) / sizeof(iov[0])) return IoResult::kError;
    iov[niov].iov_base = const_cast<void*>(b.data);
    iov[niov].iov_len = b.len;
    ++niov;
  }
  std::size_t first = 0;
  while (first < niov) {
    struct msghdr msg{};
    msg.msg_iov = iov + first;
    msg.msg_iovlen = niov - first;
    const ssize_t rc = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (rc > 0) {
      auto n = static_cast<std::size_t>(rc);
      while (first < niov && n >= iov[first].iov_len) {
        n -= iov[first].iov_len;
        ++first;
      }
      if (first < niov && n > 0) {
        iov[first].iov_base = static_cast<std::uint8_t*>(iov[first].iov_base) + n;
        iov[first].iov_len -= n;
      }
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const IoResult w = wait_for(fd, POLLOUT, deadline);
      if (w != IoResult::kOk) return w;
      continue;
    }
    return IoResult::kError;  // includes EPIPE: peer is gone
  }
  return IoResult::kOk;
}

IoResult discard_full(int fd, std::uint64_t n, int timeout_ms) {
  std::uint8_t bin[4096];
  const auto deadline = deadline_from(timeout_ms);
  while (n > 0) {
    const std::size_t chunk =
        n < sizeof(bin) ? static_cast<std::size_t>(n) : sizeof(bin);
    // Reuse the partial-read loop with the *remaining* deadline so the
    // whole discard shares one budget.
    const IoResult r = read_full(fd, bin, chunk, ms_left(deadline));
    if (r != IoResult::kOk) return r;
    n -= chunk;
  }
  return IoResult::kOk;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Socket::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::reset() {
  if (fd_ >= 0) {
    int rc;
    do {
      rc = ::close(fd_);
    } while (rc != 0 && errno == EINTR);
    fd_ = -1;
  }
}

Socket listen_tcp(std::uint16_t port, int backlog) {
  Socket s(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!s.valid()) return {};
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(s.fd(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0)
    return {};
  if (::listen(s.fd(), backlog) != 0) return {};
  return s;
}

std::uint16_t local_port(int fd) {
  struct sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0)
    return 0;
  return ntohs(addr.sin_port);
}

Socket connect_tcp(const std::string& host, std::uint16_t port,
                   int timeout_ms) {
  Socket s(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!s.valid()) return {};
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return {};
  // Nonblocking connect + poll: a blocking connect() ignores deadlines.
  if (!set_nonblocking(s.fd(), true)) return {};
  const auto deadline = deadline_from(timeout_ms);
  int rc;
  do {
    rc = ::connect(s.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (errno != EINPROGRESS) return {};
    if (wait_for(s.fd(), POLLOUT, deadline) != IoResult::kOk) return {};
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(s.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0)
      return {};
  }
  if (!set_nonblocking(s.fd(), false)) return {};
  return s;
}

bool set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

bool set_nodelay(int fd, bool on) {
  const int v = on ? 1 : 0;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &v, sizeof(v)) == 0;
}

}  // namespace plfsr::offload
