// Minimal POSIX TCP plumbing for the offload service — the part every
// hand-rolled server gets subtly wrong, kept in one audited place:
//
//  - read_full/write_full/discard_full run *partial*-transfer loops:
//    short reads and writes are resumed, EINTR restarts the call, and
//    EAGAIN parks the fd on poll() until the deadline runs out — so the
//    callers above (server worker, load client) reason in whole frames
//    only.
//  - Deadlines are absolute: `timeout_ms` bounds the whole transfer, not
//    each syscall, so a byte-at-a-time peer cannot hold a worker
//    hostage (<= 0 means no deadline).
//  - SIGPIPE is disabled per send (MSG_NOSIGNAL); a vanished peer is a
//    return code, never a process kill.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace plfsr::offload {

/// Outcome of a full-transfer loop.
enum class IoResult {
  kOk,       ///< all n bytes moved
  kEof,      ///< peer closed before n bytes (reads only)
  kTimeout,  ///< deadline expired mid-transfer
  kError,    ///< hard socket error (errno-level)
};

/// Read exactly `n` bytes into `buf`; blocking with deadline, EINTR- and
/// partial-read-safe. Works on blocking and nonblocking fds alike.
IoResult read_full(int fd, void* buf, std::size_t n, int timeout_ms);

/// Write exactly `n` bytes from `buf` under the same rules.
IoResult write_full(int fd, const void* buf, std::size_t n, int timeout_ms);

/// One segment of a gather write.
struct ConstBuf {
  const void* data = nullptr;
  std::size_t len = 0;
};

/// Write every segment, in order, as one logical transfer (sendmsg
/// scatter-gather under the partial/EINTR/deadline rules above) — how a
/// reply header and a payload held in a frame descriptor go out without
/// being concatenated into a third buffer first.
IoResult write_full_vec(int fd, std::span<const ConstBuf> bufs,
                        int timeout_ms);

/// Read and throw away exactly `n` bytes — how a server skips an
/// over-cap frame body while keeping the stream's framing in sync.
IoResult discard_full(int fd, std::uint64_t n, int timeout_ms);

/// Owning fd wrapper (move-only; closes on destruction, EINTR-safe).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { reset(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();   ///< give up ownership
  void reset();    ///< close now (idempotent)

 private:
  int fd_ = -1;
};

/// Listening IPv4 socket on 127.0.0.1:`port` (0 = ephemeral; read the
/// outcome back with local_port). SO_REUSEADDR set. Invalid Socket plus
/// errno on failure.
Socket listen_tcp(std::uint16_t port, int backlog);

/// The port a bound socket actually listens on (0 on error).
std::uint16_t local_port(int fd);

/// Blocking-connect with deadline to `host`:`port` (numeric IPv4 only —
/// the loopback/lab addresses this service targets). Invalid on failure.
Socket connect_tcp(const std::string& host, std::uint16_t port,
                   int timeout_ms);

/// O_NONBLOCK on/off; false on fcntl failure.
bool set_nonblocking(int fd, bool nonblocking);

/// TCP_NODELAY on/off (the request/reply pattern is latency-bound; Nagle
/// only adds 40 ms cliffs); false on failure.
bool set_nodelay(int fd, bool on);

}  // namespace plfsr::offload
