// Request dispatcher of the offload service: the bridge from protocol
// frames to the repo's compute registries. One dispatcher instance is
// shared by every server worker (and by the load client, which runs the
// same dispatch locally to produce golden replies for bit-exact
// verification — the server and its verifier share one code path by
// construction).
//
// Name resolution is catalogue-driven: the spec name carried in a
// request is looked up in tables built once from crcspec::all(),
// catalog::all_scrambler_polys() and fec::all_fec_specs(), so every
// spec the repo's registries audit is reachable over the wire and
// nothing else is (unknown names are an error reply, kUnknownName).
//
// Engine reuse policy, per op family:
//  - CRC: EngineRegistry::make_cached(best_name_for(spec), spec) — the
//    registry memoizes construction; engines are immutable and shared
//    across all workers. PLFSR_ENGINE is honoured per request.
//  - FEC: codecs are immutable (FecCodecHandle = shared_ptr<const>),
//    so one mutex-guarded name-keyed cache serves every worker. The
//    PLFSR_FEC_ENGINE override is read on first use of each name.
//  - Scramble: BlockScrambler is *stateful* (seek/process mutate it),
//    so instances are cached per worker thread (thread_local, keyed by
//    poly name — the mask precomputation depends only on the
//    generator; reseed(seed) re-keys it per request for free).
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "crc/crc_spec.hpp"
#include "fec/fec_codec.hpp"
#include "fec/fec_registry.hpp"
#include "gf2/gf2_poly.hpp"
#include "offload/protocol.hpp"

namespace plfsr::offload {

class OffloadDispatcher {
 public:
  /// Builds the name tables from the repo catalogues.
  OffloadDispatcher();

  /// Execute one decoded request and produce its reply. Thread-safe;
  /// never throws — internal failures become kInternal error replies.
  Response dispatch(const Request& req) const;

  /// The names dispatch() accepts per op family (sorted), for --list
  /// output and the protocol tests.
  std::vector<std::string> crc_names() const;
  std::vector<std::string> scrambler_names() const;
  std::vector<std::string> fec_names() const;

 private:
  Response do_crc(const Request& req) const;
  Response do_scramble(const Request& req) const;
  Response do_fec(const Request& req, bool encode) const;

  /// Shared FEC codec for `name` (built on first use, then cached).
  FecCodecHandle fec_codec(const std::string& name, const FecSpec& spec) const;

  std::map<std::string, CrcSpec> crc_specs_;
  std::map<std::string, Gf2Poly> scrambler_polys_;
  std::map<std::string, FecSpec> fec_specs_;

  mutable std::mutex fec_mu_;
  mutable std::map<std::string, FecCodecHandle> fec_cache_;
};

}  // namespace plfsr::offload
