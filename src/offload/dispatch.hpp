// Request dispatcher of the offload service: the bridge from protocol
// frames to the repo's compute registries. One dispatcher instance is
// shared by every server worker (and by the load client, which runs the
// same dispatch locally to produce golden replies for bit-exact
// verification — the server and its verifier share one code path by
// construction).
//
// The hot path is descriptor-based: a worker decodes a zero-copy
// RequestView over the connection's body buffer and calls execute(),
// which builds its reply payload in a FrameBuf acquired from the
// dispatcher's size-classed arena — FEC kernels encode/decode straight
// from the request span into the reply descriptor, scramble pays one
// memcpy then transforms in place, and the server serializes the reply
// with a gather write from the descriptor. Steady state, the reply
// buffers of every worker recycle through the arena: no per-request
// allocation on either side of the boundary. dispatch(Request) remains
// as the copying convenience wrapper (tests, golden-reply generation).
//
// Name resolution is catalogue-driven: the spec name carried in a
// request is looked up in tables built once from crcspec::all(),
// catalog::all_scrambler_polys() and fec::all_fec_specs(), so every
// spec the repo's registries audit is reachable over the wire and
// nothing else is (unknown names are an error reply, kUnknownName).
//
// Engine reuse policy, per op family:
//  - CRC: EngineRegistry::make_cached(best_name_for(spec), spec) — the
//    registry memoizes construction; engines are immutable and shared
//    across all workers. PLFSR_ENGINE is honoured per request.
//  - FEC: codecs are immutable (FecCodecHandle = shared_ptr<const>),
//    so one mutex-guarded name-keyed cache serves every worker. The
//    PLFSR_FEC_ENGINE override is read on first use of each name.
//  - Scramble: BlockScrambler is *stateful* (seek/process mutate it),
//    so instances are cached per worker thread (thread_local, keyed by
//    poly name — the mask precomputation depends only on the
//    generator; reseed(seed) re-keys it per request for free).
//  - kPipeline: the op chain is compiled into a *fused* Pipeline
//    (ScrambleStage/FcsStage/Rs{En,De}codeStage + CollectSink) and
//    cached per worker thread keyed by the chain signature — repeat
//    chains reuse the stages' keystream caches and engine handles, and
//    the frame flows through every op in one buffer, one round trip,
//    zero intermediate copies.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "crc/crc_spec.hpp"
#include "fec/fec_codec.hpp"
#include "fec/fec_registry.hpp"
#include "gf2/gf2_poly.hpp"
#include "offload/protocol.hpp"
#include "support/frame_arena.hpp"
#include "support/frame_buf.hpp"

namespace plfsr::offload {

/// A reply ready for the wire: the fixed fields plus the payload as a
/// descriptor (arena-backed on the hot path) — the server writes
/// encode_response_header(...) then payload.span(), no concatenation.
struct WireReply {
  Status status = Status::kOk;
  Op op = Op::kPing;
  std::uint64_t result = 0;
  FrameBuf payload;
};

class OffloadDispatcher {
 public:
  /// Builds the name tables from the repo catalogues.
  OffloadDispatcher();

  /// Execute one request through its zero-copy view and produce a
  /// descriptor reply. Thread-safe; never throws — internal failures
  /// become kInternal error replies. `req`'s name/payload must outlive
  /// the call (the reply's payload is a separate buffer).
  WireReply execute(const RequestView& req) const;

  /// Copying convenience wrapper over execute() (golden replies, tests).
  Response dispatch(const Request& req) const;

  /// The names dispatch() accepts per op family (sorted), for --list
  /// output and the protocol tests.
  std::vector<std::string> crc_names() const;
  std::vector<std::string> scrambler_names() const;
  std::vector<std::string> fec_names() const;

  /// The reply-buffer arena (size-classed, unbounded); exposed so
  /// servers and examples can report recycle rates.
  const FrameArena& reply_arena() const { return arena_; }

 private:
  WireReply do_crc(const RequestView& req) const;
  WireReply do_scramble(const RequestView& req) const;
  WireReply do_fec(const RequestView& req, bool encode) const;
  WireReply do_pipeline(const RequestView& req) const;

  /// Shared FEC codec for `name` (built on first use, then cached).
  FecCodecHandle fec_codec(const std::string& name, const FecSpec& spec) const;

  std::map<std::string, CrcSpec> crc_specs_;
  std::map<std::string, Gf2Poly> scrambler_polys_;
  std::map<std::string, FecSpec> fec_specs_;

  mutable std::mutex fec_mu_;
  mutable std::map<std::string, FecCodecHandle> fec_cache_;

  mutable FrameArena arena_;  // reply/working buffers, recycled per class
};

}  // namespace plfsr::offload
