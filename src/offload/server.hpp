// The offload server: a TCP front-end over OffloadDispatcher, shaped
// like the paper's processor/PiCoGA boundary — clients hand byte blocks
// across, the LFSR-heavy loop runs on the other side, results come
// back. One *event thread* owns every connection: it accepts, reads
// nonblockingly, and accumulates exactly one frame per connection; a
// complete frame flips the connection to `busy` (out of the poll set,
// so replies stay ordered) and is handed to the shared ThreadPool,
// where a worker decodes, dispatches and writes the reply, then
// re-arms the connection through a self-pipe. A few threads therefore
// serve thousands of connections — concurrency is per in-flight
// *frame*, not per connection.
//
// The data path is descriptor-based end to end: request bodies land in
// FrameBufs recycled through a server-owned size-classed arena, the
// worker decodes a zero-copy RequestView over that buffer, the
// dispatcher builds its reply in another recycled descriptor, and the
// reply goes out as a gather write (header + payload spans) — steady
// state, a request/reply cycle allocates nothing.
//
// Robustness contract (tests/offload_test.cpp enforces each clause):
//  - Malformed input is answered, not dropped: short/inconsistent
//    bodies, unknown ops/names and unusable payloads each produce an
//    error reply on a connection that stays usable.
//  - A frame above max_frame is drained (keeping the stream framing in
//    sync) and refused with kFrameTooLarge — still no disconnect.
//  - The only disconnects: peer EOF, a reply write that fails or
//    times out, and a connection stalled *mid-frame* past
//    read_timeout_ms (an idle connection between frames lives
//    forever — keep-alive is free).
//  - stop() drains gracefully: the listener closes, every frame
//    already received gets its reply, then connections close. The
//    offload_server example wires SIGTERM to stop().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "offload/dispatch.hpp"
#include "offload/net.hpp"
#include "support/frame_arena.hpp"

namespace plfsr {
class ThreadPool;
}

namespace plfsr::offload {

struct ServerOptions {
  std::uint16_t port = 0;      ///< 0 = ephemeral; read back via port()
  std::size_t max_frame = kDefaultMaxFrame;  ///< body_len cap, bytes
  int write_timeout_ms = 10000;  ///< per-reply write deadline
  int read_timeout_ms = 10000;   ///< mid-frame stall deadline (<=0: off)
  std::size_t workers = 0;       ///< pool size; 0 = host_threads()
  int backlog = 1024;
};

class OffloadServer {
 public:
  explicit OffloadServer(ServerOptions opts = {});
  ~OffloadServer();  ///< stop()s if still running

  OffloadServer(const OffloadServer&) = delete;
  OffloadServer& operator=(const OffloadServer&) = delete;

  /// Bind, listen and start the event thread. False (with the server
  /// unstarted) when the port cannot be bound.
  bool start();

  /// The port actually listening (after start(); 0 before).
  std::uint16_t port() const { return port_; }

  /// Graceful drain (see file comment). Idempotent; safe from any
  /// thread — the offload_server example calls it from a signal-watcher
  /// thread on SIGTERM/SIGINT.
  void stop();

  /// The dispatcher (shared with tests for golden-reply computation).
  const OffloadDispatcher& dispatcher() const { return dispatcher_; }

  // --- Counters (monotonic, racy-read safe) ---
  std::uint64_t connections_accepted() const { return accepted_.load(); }
  std::uint64_t frames_served() const { return frames_.load(); }
  std::uint64_t error_replies() const { return error_replies_.load(); }

  /// The arena request bodies are acquired from — exposes the
  /// recycle/heap counters so callers can assert the steady state
  /// allocates nothing.
  const FrameArena& request_arena() const { return arena_; }

 private:
  struct Conn;
  struct Impl;

  void run();  // event-thread body
  void work(Conn* c, Status pre_status);
  void rearm(Conn* c);

  ServerOptions opts_;
  OffloadDispatcher dispatcher_;
  FrameArena arena_;  // request-body descriptors, recycled per class
  std::unique_ptr<Impl> impl_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread thread_;
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> joined_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> error_replies_{0};
};

}  // namespace plfsr::offload
