#include "offload/dispatch.hpp"

#include <exception>
#include <stdexcept>
#include <utility>

#include "crc/engine.hpp"
#include "crc/engine_registry.hpp"
#include "fec/parallel_fec.hpp"
#include "lfsr/catalog.hpp"
#include "scrambler/block_scrambler.hpp"

namespace plfsr::offload {

OffloadDispatcher::OffloadDispatcher() {
  for (const CrcSpec& s : crcspec::all()) crc_specs_.emplace(s.name, s);
  for (const catalog::NamedPoly& p : catalog::all_scrambler_polys())
    scrambler_polys_.emplace(p.name, p.poly);
  for (const FecSpec& s : fec::all_fec_specs())
    fec_specs_.emplace(s.name(), s);
}

namespace {

template <typename Map>
std::vector<std::string> keys_of(const Map& m) {
  std::vector<std::string> out;
  out.reserve(m.size());
  for (const auto& [k, v] : m) out.push_back(k);
  return out;  // std::map iterates sorted
}

Response error_reply(const Request& req, Status status) {
  Response r;
  r.status = status;
  r.op = req.op;
  return r;
}

}  // namespace

std::vector<std::string> OffloadDispatcher::crc_names() const {
  return keys_of(crc_specs_);
}
std::vector<std::string> OffloadDispatcher::scrambler_names() const {
  return keys_of(scrambler_polys_);
}
std::vector<std::string> OffloadDispatcher::fec_names() const {
  return keys_of(fec_specs_);
}

Response OffloadDispatcher::dispatch(const Request& req) const {
  try {
    switch (req.op) {
      case Op::kPing: {
        Response r;
        r.op = Op::kPing;
        r.result = req.payload.size();
        r.payload = req.payload;
        return r;
      }
      case Op::kCrc:
        return do_crc(req);
      case Op::kScramble:
        return do_scramble(req);
      case Op::kFecEncode:
        return do_fec(req, /*encode=*/true);
      case Op::kFecDecode:
        return do_fec(req, /*encode=*/false);
    }
    return error_reply(req, Status::kUnknownOp);
  } catch (const std::invalid_argument&) {
    // The compute layer vetoed the inputs (bad sizes, zero seed, ...):
    // the client's fault, not ours.
    return error_reply(req, Status::kBadPayload);
  } catch (const std::exception&) {
    return error_reply(req, Status::kInternal);
  }
}

Response OffloadDispatcher::do_crc(const Request& req) const {
  const auto it = crc_specs_.find(req.name);
  if (it == crc_specs_.end()) return error_reply(req, Status::kUnknownName);
  const EngineRegistry& reg = EngineRegistry::instance();
  const CrcEngineHandle engine =
      reg.make_cached(reg.best_name_for(it->second), it->second);
  Response r;
  r.op = Op::kCrc;
  r.result = engine.compute(req.payload);
  return r;
}

Response OffloadDispatcher::do_scramble(const Request& req) const {
  const auto it = scrambler_polys_.find(req.name);
  if (it == scrambler_polys_.end())
    return error_reply(req, Status::kUnknownName);
  if (req.param == 0) return error_reply(req, Status::kBadPayload);
  // Stateful engines cannot be shared across workers; one per thread per
  // generator, re-aimed with reseed() (cheap — the per-bit mask tables
  // depend only on the generator, not the seed).
  thread_local std::map<std::string, BlockScrambler> engines;
  auto eng = engines.find(req.name);
  if (eng == engines.end())
    eng = engines
              .emplace(req.name, BlockScrambler(it->second,
                                                /*seed=*/req.param))
              .first;
  // reseed throws std::invalid_argument when the seed's in-register bits
  // are all zero — dispatch() maps that to kBadPayload.
  eng->second.reseed(req.param);
  Response r;
  r.op = Op::kScramble;
  r.payload = req.payload;
  eng->second.process(r.payload);
  return r;
}

FecCodecHandle OffloadDispatcher::fec_codec(const std::string& name,
                                            const FecSpec& spec) const {
  {
    std::lock_guard<std::mutex> lock(fec_mu_);
    const auto it = fec_cache_.find(name);
    if (it != fec_cache_.end()) return it->second;
  }
  // Construct outside the lock: codec construction precomputes field
  // tables and must not serialize other workers (nor poison the cache
  // when best_for throws).
  FecCodecHandle codec = FecRegistry::instance().best_for(spec);
  std::lock_guard<std::mutex> lock(fec_mu_);
  return fec_cache_.try_emplace(name, std::move(codec)).first->second;
}

Response OffloadDispatcher::do_fec(const Request& req, bool encode) const {
  const auto it = fec_specs_.find(req.name);
  if (it == fec_specs_.end()) return error_reply(req, Status::kUnknownName);
  const FecCodecHandle codec = fec_codec(req.name, it->second);
  // Serial ParallelFec: concurrency comes from the server's worker pool
  // (one worker per in-flight request), not from splitting one request.
  const ParallelFec fec(codec, 1);
  Response r;
  r.op = encode ? Op::kFecEncode : Op::kFecDecode;
  if (encode) {
    r.payload.resize(fec_encoded_size(*codec, req.payload.size()));
    const ParallelFecResult res = fec.encode(req.payload, r.payload);
    r.result = res.blocks;
    return r;
  }
  // fec_decoded_size throws std::invalid_argument on a length no encode
  // could have produced -> kBadPayload via dispatch(). A block beyond
  // the correction radius is *data*, not an error: the reply stays kOk
  // and the failure shows up in the result word.
  r.payload.resize(fec_decoded_size(*codec, req.payload.size()));
  const ParallelFecResult res = fec.decode(req.payload, r.payload);
  r.result = make_fec_result(res.corrected_errors + res.corrected_erasures,
                             res.failed_blocks);
  return r;
}

}  // namespace plfsr::offload
